// Package repro is a Go reproduction of "Mockingbird: Flexible Stub
// Compilation from Pairs of Declarations" (Auerbach, Barton, Chu-Carroll,
// Raghavachari; IBM Research / ICDCS 1999).
//
// The library lives under internal/ (see DESIGN.md for the package
// inventory); cmd/mbird is the command-line tool; examples/ holds
// runnable scenarios; bench_test.go regenerates the paper's experiments
// (EXPERIMENTS.md records the outcomes).
package repro
