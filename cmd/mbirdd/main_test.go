package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/resil"
	"repro/internal/value"
)

// bigStruct renders a C struct with n fields of rotating scalar types.
// Field names carry the given prefix so the two universes' sources differ
// textually while lowering to the same Mtype shape.
func bigStruct(name, prefix string, n int) string {
	var sb strings.Builder
	sb.WriteString("typedef struct {\n")
	kinds := []string{"int", "float", "short", "double"}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  %s %s%d;\n", kinds[i%len(kinds)], prefix, i)
	}
	fmt.Fprintf(&sb, "} %s;\n", name)
	return sb.String()
}

// The end-to-end acceptance test: an in-process daemon on a real TCP
// socket, 32 concurrent clients comparing and converting, then the cache
// accounting and cold/warm latency checks.
func TestDaemonEndToEnd(t *testing.T) {
	srv, b, _, err := serve(config{addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const nClients = 32
	srcA := "typedef struct { float r; int n; } mix;\n" +
		"typedef struct { int a; struct { float x; char c; } inner; } outerA;\n" +
		bigStruct("bigA", "f", 1500)
	srcB := "typedef struct { int count; float ratio; } pair;\n" +
		"typedef struct { struct { float u; char v; } nested; int num; } outerB;\n" +
		bigStruct("bigB", "g", 1500)

	// One seed client loads both universes and times the cold compare of
	// the 1500-field pair (lowering + full structural comparison).
	seed, err := broker.DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	if _, existed, err := seed.Load("a", "c", "ilp32", srcA, ""); err != nil || existed {
		t.Fatalf("load a: existed=%v err=%v", existed, err)
	}
	if _, _, err := seed.Load("b", "c", "ilp32", srcB, ""); err != nil {
		t.Fatal(err)
	}
	coldStart := time.Now()
	v, err := seed.Compare("a", "bigA", "b", "bigB")
	cold := time.Since(coldStart)
	if err != nil || v.Relation != core.RelEquivalent || v.Cached {
		t.Fatalf("cold big compare = %+v err=%v", v, err)
	}

	// Mtypes for client-side CDR marshaling, shared read-only.
	mtMix, err := b.Mtype("a", "mix")
	if err != nil {
		t.Fatal(err)
	}
	mtPair, err := b.Mtype("b", "pair")
	if err != nil {
		t.Fatal(err)
	}
	mtOuterA, err := b.Mtype("a", "outerA")
	if err != nil {
		t.Fatal(err)
	}
	mtOuterB, err := b.Mtype("b", "outerB")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("client %d: "+format, append([]any{i}, args...)...)
			}
			c, err := broker.DialClient(srv.Addr())
			if err != nil {
				fail("dial: %v", err)
				return
			}
			defer c.Close()
			// Loads race with every other client; the universe name is
			// the identity, so all but the first are no-ops.
			if _, _, err := c.Load("a", "c", "ilp32", srcA, ""); err != nil {
				fail("load: %v", err)
				return
			}
			if _, _, err := c.Load("b", "c", "ilp32", srcB, ""); err != nil {
				fail("load: %v", err)
				return
			}
			if v, err := c.Compare("a", "bigA", "b", "bigB"); err != nil || v.Relation != core.RelEquivalent {
				fail("big compare = %+v err=%v", v, err)
				return
			}
			if v, err := c.Compare("a", "mix", "b", "pair"); err != nil || v.Relation != core.RelEquivalent {
				fail("mix/pair = %+v err=%v", v, err)
				return
			}
			if v, err := c.Compare("a", "outerA", "b", "outerB"); err != nil || v.Relation != core.RelEquivalent {
				fail("outer = %+v err=%v", v, err)
				return
			}
			in := value.NewRecord(value.Real{V: 0.5 + float64(i)}, value.NewInt(int64(i)))
			out, err := c.Convert("a", "mix", "b", "pair", mtMix, mtPair, in)
			if err != nil {
				fail("convert: %v", err)
				return
			}
			rec, ok := out.(value.Record)
			if !ok || len(rec.Fields) != 2 {
				fail("convert out = %v", out)
				return
			}
			if n, _ := rec.Fields[0].(value.Int).Int64(); n != int64(i) {
				fail("crossed int = %v", rec.Fields[0])
				return
			}
			if r := rec.Fields[1].(value.Real).V; r != 0.5+float64(i) {
				fail("crossed real = %v", rec.Fields[1])
				return
			}
			nested := value.NewRecord(value.NewInt(int64(i)),
				value.NewRecord(value.Real{V: 1.25}, value.Char{R: 'q'}))
			out, err = c.Convert("a", "outerA", "b", "outerB", mtOuterA, mtOuterB, nested)
			if err != nil {
				fail("nested convert: %v", err)
				return
			}
			want := value.NewRecord(
				value.NewRecord(value.Real{V: 1.25}, value.Char{R: 'q'}),
				value.NewInt(int64(i)))
			if !value.Equal(out, want) {
				fail("nested out = %v, want %v", out, want)
				return
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Cache accounting over the whole run: three distinct canonical pairs
	// were compared (big, mix/pair, outerA/outerB) and two distinct exact
	// pairs were converted — exactly one comparison run and one transcoder
	// compile each, no matter how many clients raced (singleflight). Both
	// pairs are fusible records, so every conversion rode the wire fast
	// path and no tree converter was ever compiled.
	st, err := seed.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CompareRuns != 3 {
		t.Errorf("CompareRuns = %d, want 3", st.CompareRuns)
	}
	if st.XcodeCompiles != 2 {
		t.Errorf("XcodeCompiles = %d, want 2", st.XcodeCompiles)
	}
	if st.Compiles != 0 {
		t.Errorf("Compiles = %d, want 0 (fast path should bypass tree converters)", st.Compiles)
	}
	if want := int64(2 * nClients); st.FastConverts != want || st.TreeConverts != 0 {
		t.Errorf("FastConverts = %d TreeConverts = %d, want %d/0", st.FastConverts, st.TreeConverts, want)
	}
	// 1 seed compare + 3 compares per client reached the verdict cache.
	wantLookups := int64(1 + 3*nClients)
	if got := st.CompareHits + st.CompareMisses + st.CompareCoalesced; got != wantLookups {
		t.Errorf("compare lookups = %d (h=%d m=%d c=%d), want %d",
			got, st.CompareHits, st.CompareMisses, st.CompareCoalesced, wantLookups)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after quiesce", st.InFlight)
	}

	// Warm-cache compare must be measurably faster than the cold one: the
	// cold path lowered and structurally compared two 1500-field records,
	// the warm path is a fingerprint lookup plus one round trip.
	warms := make([]time.Duration, 0, 9)
	for k := 0; k < 9; k++ {
		start := time.Now()
		v, err := seed.Compare("a", "bigA", "b", "bigB")
		warms = append(warms, time.Since(start))
		if err != nil || !v.Cached || v.Relation != core.RelEquivalent {
			t.Fatalf("warm big compare = %+v err=%v", v, err)
		}
	}
	sort.Slice(warms, func(i, j int) bool { return warms[i] < warms[j] })
	warm := warms[len(warms)/2]
	t.Logf("cold=%v warm(median)=%v", cold, warm)
	if warm >= cold {
		t.Errorf("warm compare %v not faster than cold %v", warm, cold)
	}
}

// TestChaosDaemonResilience drives a real daemon through the chaos proxy
// with the resil client: a degraded-but-working network first, then a
// black-holed one (fail fast on the client's deadline), then a healed one
// (transparent re-dial, warm caches answer instantly).
func TestChaosDaemonResilience(t *testing.T) {
	srv, _, _, err := serve(config{addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := chaos.New("127.0.0.1:0", srv.Addr(), chaos.Faults{
		Latency:   2 * time.Millisecond,
		Jitter:    time.Millisecond,
		ChunkSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rc := resil.New(p.Addr(), resil.Options{
		PoolSize:    2,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		CallTimeout: 10 * time.Second,
	})
	c := broker.NewTransportClient(rc)
	defer c.Close()

	// Phase 1: slow, chunked network — everything still works.
	if _, _, err := c.Load("a", "c", "ilp32", "typedef struct { float r; int n; } mix;", ""); err != nil {
		t.Fatalf("load through degraded network: %v", err)
	}
	if _, _, err := c.Load("b", "c", "ilp32", "typedef struct { int count; float ratio; } pair;", ""); err != nil {
		t.Fatal(err)
	}
	v, err := c.Compare("a", "mix", "b", "pair")
	if err != nil || v.Relation != core.RelEquivalent {
		t.Fatalf("compare through degraded network = %+v err=%v", v, err)
	}

	// Phase 2: the network black-holes. The budget is long spent on the
	// pooled connections, so the next call hangs at the proxy; the
	// client-side deadline must cut it loose with a typed error.
	p.SetFaults(chaos.Faults{BlackholeAfter: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	start := time.Now()
	_, err = c.CompareContext(ctx, "a", "mix", "b", "pair")
	cancel()
	if !errors.Is(err, orb.ErrDeadline) {
		t.Fatalf("black-holed compare err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("black-holed compare took %v, want fail-fast near 300ms", elapsed)
	}

	// Phase 3: the network heals. The condemned connection is replaced by
	// a fresh dial through the healed proxy and the cached verdict comes
	// straight back.
	p.SetFaults(chaos.Faults{})
	v, err = c.Compare("a", "mix", "b", "pair")
	if err != nil || v.Relation != core.RelEquivalent || !v.Cached {
		t.Fatalf("post-heal compare = %+v err=%v", v, err)
	}
	st := rc.Stats()
	if st.Dials < 2 {
		t.Errorf("resil stats = %+v, want a re-dial after the heal", st)
	}
}

// reservePort grabs an ephemeral port and frees it so serve() can bind
// it — including a second time, after a simulated restart.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestClusterServeWarmSync boots a 3-daemon fleet through the real
// serve() path (-cluster flags), warms it with client traffic, restarts
// one daemon, and checks the restart warm-synced from its peers before
// taking traffic — the rolling-restart contract.
func TestClusterServeWarmSync(t *testing.T) {
	members := []string{reservePort(t), reservePort(t), reservePort(t)}
	list := strings.Join(members, ",")

	type daemon struct {
		srv *orb.Server
		b   *broker.Broker
		n   *cluster.Node
	}
	start := func(i int) *daemon {
		srv, b, n, err := serve(config{
			addr: members[i], cluster: list, warm: true, warmTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if n == nil {
			t.Fatal("cluster config did not produce a cluster node")
		}
		return &daemon{srv: srv, b: b, n: n}
	}
	stop := func(d *daemon) {
		_ = d.srv.Close()
		_ = d.n.Close()
	}
	daemons := make([]*daemon, len(members))
	for i := range members {
		daemons[i] = start(i)
	}
	t.Cleanup(func() {
		for _, d := range daemons {
			stop(d)
		}
	})

	bt := cluster.Dial(members, cluster.Options{Resil: resil.Options{
		MaxAttempts: 2, DialTimeout: 2 * time.Second, CallTimeout: 5 * time.Second,
	}})
	c := broker.NewTransportClient(bt)
	defer c.Close()
	if _, _, err := c.Load("ux", "c", "ilp32", "typedef struct { float r; int n; } mix;", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Load("uy", "c", "ilp32", "typedef struct { int count; float ratio; } pair;", ""); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Compare("ux", "mix", "uy", "pair"); err != nil || v.Relation != core.RelEquivalent {
		t.Fatalf("compare = %+v err=%v", v, err)
	}
	// Wait for the verdict to replicate so the restart victim's peers
	// can answer its warm sync regardless of which member compared.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fills := int64(0)
		for _, d := range daemons {
			fills += d.b.Stats().WarmFills
		}
		if fills > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("verdict never replicated to a peer")
		}
		time.Sleep(5 * time.Millisecond)
	}

	stop(daemons[1])
	daemons[1] = start(1)
	if daemons[1].n.Status().Synced == 0 {
		t.Fatal("restarted daemon synced nothing from its peers")
	}
	if daemons[1].b.Stats().WarmFills == 0 {
		t.Fatal("restarted daemon holds no warm fills")
	}
	if _, ok := daemons[1].b.PeekVerdict("ux", "mix", "uy", "pair"); !ok {
		t.Fatal("restarted daemon is missing the fleet's verdict")
	}
	// The fleet as a whole still answers, and without a fresh compare.
	runs := int64(0)
	for _, d := range daemons {
		runs += d.b.Stats().CompareRuns
	}
	if v, err := c.Compare("ux", "mix", "uy", "pair"); err != nil || v.Relation != core.RelEquivalent {
		t.Fatalf("post-restart compare = %+v err=%v", v, err)
	}
	after := int64(0)
	for _, d := range daemons {
		after += d.b.Stats().CompareRuns
	}
	if after != runs {
		t.Fatalf("post-restart compare re-ran %d comparisons, want 0", after-runs)
	}
}

// Bad cluster flags must fail serve() with a clear error, not a
// half-started daemon.
func TestClusterServeConfigErrors(t *testing.T) {
	_, _, _, err := serve(config{
		addr:        "127.0.0.1:0",
		cluster:     "127.0.0.1:7001,127.0.0.1:7002",
		clusterSelf: "127.0.0.1:9999", // not in the member list
	})
	if err == nil || !strings.Contains(err.Error(), "-cluster-self") {
		t.Fatalf("err = %v, want a -cluster-self validation error", err)
	}
}
