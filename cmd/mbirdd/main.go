// Command mbirdd is the Mockingbird broker daemon: a long-running stub
// compilation service. Clients ship declaration sources over the orb
// protocol; the daemon lowers them, compares pairs, compiles converters,
// and runs conversions, with verdicts, compiled converters, and fused
// wire transcoders shared across all clients through fingerprint-keyed
// caches (see internal/broker).
//
// Usage:
//
//	mbirdd [-addr 127.0.0.1:7465] [-cache N] [-xcache N] [-workers N]
//	       [-max-body BYTES] [-max-key BYTES]
//	       [-max-inflight N] [-max-per-conn N]
//	       [-req-timeout D] [-drain D]
//	       [-cluster HOST:PORT,...] [-cluster-self HOST:PORT]
//	       [-warm] [-warm-timeout D]
//	       [-cpuprofile FILE] [-memprofile FILE]
//
// -max-inflight bounds requests admitted across all connections;
// excess requests are shed with a typed Overloaded error that resilient
// clients retry with backoff. -max-per-conn bounds concurrent requests
// pipelined on a single connection. Readiness and shed counters are
// visible through `mbird remote health`.
//
// -cluster joins the daemon to a sharded fleet (internal/cluster): the
// comma-separated member list must agree across all daemons, and
// -cluster-self (default -addr) names this daemon's entry in it. A
// cluster daemon serves the peer cache-warming protocol alongside the
// broker protocol: it answers verdict pulls, accepts warm pushes, and —
// unless -warm=false — syncs the fleet's warm cache state from its
// peers BEFORE binding its listen port, so a restarted daemon rejoins
// hot and never re-pays a cold compile. -warm-timeout bounds that
// startup sync. Fleet state is visible through `mbird cluster status`.
//
// -cpuprofile starts a pprof CPU profile at startup and writes it out at
// shutdown; -memprofile writes a heap profile (after a GC) at shutdown.
// Inspect either with `go tool pprof`. Profiling a live daemon under a
// replayed workload is how the wire-transcoder fast path was measured;
// conversion-tier counters (wire-path vs tree-path conversions) appear
// in `mbird remote stats`.
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener closes,
// in-flight requests get up to -drain to finish, then remaining
// connections are force-closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/orb"
)

type config struct {
	addr        string
	cache       int
	xcache      int
	workers     int
	maxBody     int
	maxKey      int
	maxInflight int
	maxPerConn  int
	reqTimeout  time.Duration
	drain       time.Duration
	cluster     string
	clusterSelf string
	warm        bool
	warmTimeout time.Duration
	cpuprofile  string
	memprofile  string
}

func (c *config) register(fs *flag.FlagSet) {
	fs.StringVar(&c.addr, "addr", "127.0.0.1:7465", "listen address")
	fs.IntVar(&c.cache, "cache", 0, "verdict cache capacity (0 = default)")
	fs.IntVar(&c.xcache, "xcache", 0, "wire-transcoder cache capacity (0 = default)")
	fs.IntVar(&c.workers, "workers", 0, "max concurrent compare/compile fills (0 = GOMAXPROCS)")
	fs.IntVar(&c.maxBody, "max-body", 0, "orb frame body limit in bytes (0 = 16 MiB default)")
	fs.IntVar(&c.maxKey, "max-key", 0, "orb object key limit in bytes (0 = 4 KiB default)")
	fs.IntVar(&c.maxInflight, "max-inflight", 0, "admitted requests across all connections (0 = 256 default, negative = unbounded)")
	fs.IntVar(&c.maxPerConn, "max-per-conn", 0, "concurrent requests per connection (0 = 1024 default, negative = unbounded)")
	fs.DurationVar(&c.reqTimeout, "req-timeout", 0, "per-request server deadline (0 = unbounded)")
	fs.DurationVar(&c.drain, "drain", 10*time.Second, "graceful shutdown drain window")
	fs.StringVar(&c.cluster, "cluster", "", "comma-separated fleet member list (enables cluster mode)")
	fs.StringVar(&c.clusterSelf, "cluster-self", "", "this daemon's advertised address in -cluster (default -addr)")
	fs.BoolVar(&c.warm, "warm", true, "sync warm cache state from peers before accepting traffic (cluster mode)")
	fs.DurationVar(&c.warmTimeout, "warm-timeout", 30*time.Second, "startup warm sync budget (cluster mode)")
	fs.StringVar(&c.cpuprofile, "cpuprofile", "", "write a pprof CPU profile to this file (started now, stopped at shutdown)")
	fs.StringVar(&c.memprofile, "memprofile", "", "write a pprof heap profile to this file at shutdown")
}

// serve starts a broker daemon on cfg.addr and returns the running
// server, broker, and (in cluster mode) the fleet node. It is the whole
// daemon minus flag parsing, so tests can run it in-process.
//
// In cluster mode the warm sync runs BEFORE the listen port binds:
// until the daemon has drained its peers' warm state it is
// indistinguishable from a dead member, so fleet clients fail its keys
// over cleanly instead of hitting a cold cache.
func serve(cfg config) (*orb.Server, *broker.Broker, *cluster.Node, error) {
	b := broker.New(core.NewSession(), broker.Options{
		VerdictCacheSize:    cfg.cache,
		TranscoderCacheSize: cfg.xcache,
		Workers:             cfg.workers,
		MaxInFlight:         cfg.maxInflight,
		RequestTimeout:      cfg.reqTimeout,
	})
	var node *cluster.Node
	if cfg.cluster != "" {
		self := cfg.clusterSelf
		if self == "" {
			self = cfg.addr
		}
		members := NewRingMembers(cfg.cluster)
		found := false
		for _, m := range members {
			if m == self {
				found = true
				break
			}
		}
		if !found {
			return nil, nil, nil, fmt.Errorf("mbirdd: -cluster-self %q is not in -cluster %q", self, cfg.cluster)
		}
		node = cluster.NewNode(self, members, b, cluster.NodeOptions{})
		if cfg.warm {
			ctx, cancel := context.WithTimeout(context.Background(), cfg.warmTimeout)
			n, err := node.SyncFromPeers(ctx)
			cancel()
			if err != nil {
				// A fleet booting from scratch has no live peer to warm
				// from; that is startup, not failure.
				fmt.Fprintf(os.Stderr, "mbirdd: warm sync: %v (starting cold)\n", err)
			} else if n > 0 {
				fmt.Printf("mbirdd: warmed %d cache entries from peers\n", n)
			}
		}
	}
	var opts []orb.Option
	// The broker's handlers never retain a request body past return
	// (detached work takes a copy), so frame buffers recycle.
	opts = append(opts, orb.WithBufPooling())
	if cfg.maxBody > 0 {
		opts = append(opts, orb.WithMaxBody(cfg.maxBody))
	}
	if cfg.maxKey > 0 {
		opts = append(opts, orb.WithMaxKey(cfg.maxKey))
	}
	if cfg.maxPerConn != 0 {
		opts = append(opts, orb.WithMaxPerConn(cfg.maxPerConn))
	}
	srv, err := orb.NewServer(cfg.addr, opts...)
	if err != nil {
		if node != nil {
			_ = node.Close()
		}
		return nil, nil, nil, err
	}
	broker.Serve(srv, b)
	if node != nil {
		cluster.Serve(srv, node)
	}
	return srv, b, node, nil
}

// NewRingMembers splits a -cluster flag value into member addresses.
func NewRingMembers(list string) []string {
	var out []string
	for _, m := range strings.Split(list, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

// writeHeapProfile forces a GC so the profile reflects live objects, then
// writes the heap profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func main() {
	fs := flag.NewFlagSet("mbirdd", flag.ExitOnError)
	var cfg config
	cfg.register(fs)
	_ = fs.Parse(os.Args[1:])

	if cfg.cpuprofile != "" {
		f, err := os.Create(cfg.cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbirdd: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mbirdd: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}

	srv, _, node, err := serve(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbirdd:", err)
		os.Exit(1)
	}
	fmt.Printf("mbirdd: serving on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("mbirdd: %v, draining for up to %v\n", s, cfg.drain)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	if node != nil {
		_ = node.Close()
	}
	if cfg.memprofile != "" {
		if err := writeHeapProfile(cfg.memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "mbirdd: memprofile:", err)
		}
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "mbirdd: drain incomplete:", drainErr)
		if cfg.cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
}
