// Command mbirdd is the Mockingbird broker daemon: a long-running stub
// compilation service. Clients ship declaration sources over the orb
// protocol; the daemon lowers them, compares pairs, compiles converters,
// and runs conversions, with verdicts, compiled converters, and fused
// wire transcoders shared across all clients through fingerprint-keyed
// caches (see internal/broker).
//
// Usage:
//
//	mbirdd [-addr 127.0.0.1:7465] [-cache N] [-xcache N] [-workers N]
//	       [-max-body BYTES] [-max-key BYTES]
//	       [-max-inflight N] [-max-per-conn N]
//	       [-req-timeout D] [-drain D]
//	       [-cpuprofile FILE] [-memprofile FILE]
//
// -max-inflight bounds requests admitted across all connections;
// excess requests are shed with a typed Overloaded error that resilient
// clients retry with backoff. -max-per-conn bounds concurrent requests
// pipelined on a single connection. Readiness and shed counters are
// visible through `mbird remote health`.
//
// -cpuprofile starts a pprof CPU profile at startup and writes it out at
// shutdown; -memprofile writes a heap profile (after a GC) at shutdown.
// Inspect either with `go tool pprof`. Profiling a live daemon under a
// replayed workload is how the wire-transcoder fast path was measured;
// conversion-tier counters (wire-path vs tree-path conversions) appear
// in `mbird remote stats`.
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener closes,
// in-flight requests get up to -drain to finish, then remaining
// connections are force-closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/orb"
)

type config struct {
	addr        string
	cache       int
	xcache      int
	workers     int
	maxBody     int
	maxKey      int
	maxInflight int
	maxPerConn  int
	reqTimeout  time.Duration
	drain       time.Duration
	cpuprofile  string
	memprofile  string
}

func (c *config) register(fs *flag.FlagSet) {
	fs.StringVar(&c.addr, "addr", "127.0.0.1:7465", "listen address")
	fs.IntVar(&c.cache, "cache", 0, "verdict cache capacity (0 = default)")
	fs.IntVar(&c.xcache, "xcache", 0, "wire-transcoder cache capacity (0 = default)")
	fs.IntVar(&c.workers, "workers", 0, "max concurrent compare/compile fills (0 = GOMAXPROCS)")
	fs.IntVar(&c.maxBody, "max-body", 0, "orb frame body limit in bytes (0 = 16 MiB default)")
	fs.IntVar(&c.maxKey, "max-key", 0, "orb object key limit in bytes (0 = 4 KiB default)")
	fs.IntVar(&c.maxInflight, "max-inflight", 0, "admitted requests across all connections (0 = 256 default, negative = unbounded)")
	fs.IntVar(&c.maxPerConn, "max-per-conn", 0, "concurrent requests per connection (0 = 1024 default, negative = unbounded)")
	fs.DurationVar(&c.reqTimeout, "req-timeout", 0, "per-request server deadline (0 = unbounded)")
	fs.DurationVar(&c.drain, "drain", 10*time.Second, "graceful shutdown drain window")
	fs.StringVar(&c.cpuprofile, "cpuprofile", "", "write a pprof CPU profile to this file (started now, stopped at shutdown)")
	fs.StringVar(&c.memprofile, "memprofile", "", "write a pprof heap profile to this file at shutdown")
}

// serve starts a broker daemon on cfg.addr and returns the running server
// and broker. It is the whole daemon minus flag parsing, so tests can run
// it in-process on an ephemeral port.
func serve(cfg config) (*orb.Server, *broker.Broker, error) {
	var opts []orb.Option
	if cfg.maxBody > 0 {
		opts = append(opts, orb.WithMaxBody(cfg.maxBody))
	}
	if cfg.maxKey > 0 {
		opts = append(opts, orb.WithMaxKey(cfg.maxKey))
	}
	if cfg.maxPerConn != 0 {
		opts = append(opts, orb.WithMaxPerConn(cfg.maxPerConn))
	}
	srv, err := orb.NewServer(cfg.addr, opts...)
	if err != nil {
		return nil, nil, err
	}
	b := broker.New(core.NewSession(), broker.Options{
		VerdictCacheSize:    cfg.cache,
		TranscoderCacheSize: cfg.xcache,
		Workers:             cfg.workers,
		MaxInFlight:         cfg.maxInflight,
		RequestTimeout:      cfg.reqTimeout,
	})
	broker.Serve(srv, b)
	return srv, b, nil
}

// writeHeapProfile forces a GC so the profile reflects live objects, then
// writes the heap profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func main() {
	fs := flag.NewFlagSet("mbirdd", flag.ExitOnError)
	var cfg config
	cfg.register(fs)
	_ = fs.Parse(os.Args[1:])

	if cfg.cpuprofile != "" {
		f, err := os.Create(cfg.cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbirdd: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mbirdd: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}

	srv, _, err := serve(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbirdd:", err)
		os.Exit(1)
	}
	fmt.Printf("mbirdd: serving on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("mbirdd: %v, draining for up to %v\n", s, cfg.drain)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	if cfg.memprofile != "" {
		if err := writeHeapProfile(cfg.memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "mbirdd: memprofile:", err)
		}
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "mbirdd: drain incomplete:", drainErr)
		if cfg.cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
}
