package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/orb"
)

// writeFitterFiles lays out the §2 example as files the CLI consumes.
func writeFitterFiles(t *testing.T) (dir string) {
	t.Helper()
	dir = t.TempDir()
	files := map[string]string{
		"fitter.h": `
typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);
`,
		"fitter.mbird": `
annotate fitter.start out nonnull
annotate fitter.end out nonnull
annotate fitter.pts length-from=count
`,
		"Ideal.java": `
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }
`,
		"Ideal.mbird": `
annotate Line.start nonnull noalias
annotate Line.end nonnull noalias
annotate PointVector collection-of=Point element-nonnull
annotate JavaIdeal.fitter.pts nonnull
annotate JavaIdeal.fitter.return nonnull
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestParseCommand(t *testing.T) {
	dir := writeFitterFiles(t)
	out, err := runCLI(t, "parse", "-lang", "c", filepath.Join(dir, "fitter.h"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fitter") || !strings.Contains(out, "point") {
		t.Errorf("output = %q", out)
	}
}

func TestMtypeCommand(t *testing.T) {
	dir := writeFitterFiles(t)
	out, err := runCLI(t, "mtype", "-lang", "c",
		"-script", filepath.Join(dir, "fitter.mbird"),
		"-decl", "fitter", filepath.Join(dir, "fitter.h"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "port(record(μL1.choice(unit") {
		t.Errorf("mtype output = %q", out)
	}
}

func TestCompareCommand(t *testing.T) {
	dir := writeFitterFiles(t)
	out, err := runCLI(t, "compare",
		"-a-lang", "java", "-a-file", filepath.Join(dir, "Ideal.java"),
		"-a-script", filepath.Join(dir, "Ideal.mbird"), "-a-decl", "JavaIdeal",
		"-b-lang", "c", "-b-file", filepath.Join(dir, "fitter.h"),
		"-b-script", filepath.Join(dir, "fitter.mbird"), "-b-decl", "fitter")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "relation: equivalent") {
		t.Errorf("output = %q", out)
	}
}

func TestCompareMismatchDiagnoses(t *testing.T) {
	dir := writeFitterFiles(t)
	// Without the annotation scripts the shapes differ.
	out, err := runCLI(t, "compare",
		"-a-lang", "java", "-a-file", filepath.Join(dir, "Ideal.java"), "-a-decl", "JavaIdeal",
		"-b-lang", "c", "-b-file", filepath.Join(dir, "fitter.h"), "-b-decl", "fitter")
	if err == nil {
		t.Fatal("expected mismatch error")
	}
	if !strings.Contains(out, "diagnosis:") {
		t.Errorf("output = %q", out)
	}
}

func TestEmitCommand(t *testing.T) {
	dir := writeFitterFiles(t)
	out, err := runCLI(t, "emit",
		"-a-lang", "java", "-a-file", filepath.Join(dir, "Ideal.java"),
		"-a-script", filepath.Join(dir, "Ideal.mbird"), "-a-decl", "JavaIdeal",
		"-b-lang", "c", "-b-file", filepath.Join(dir, "fitter.h"),
		"-b-script", filepath.Join(dir, "fitter.mbird"), "-b-decl", "fitter",
		"-pkg", "fitterstub", "-func", "JavaToC")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "package fitterstub") || !strings.Contains(out, "func JavaToC(") {
		t.Errorf("emitted source missing pieces:\n%s", out[:200])
	}
}

func TestSaveAndShow(t *testing.T) {
	dir := writeFitterFiles(t)
	proj := filepath.Join(dir, "proj.json")
	out, err := runCLI(t, "save",
		"-a-lang", "java", "-a-file", filepath.Join(dir, "Ideal.java"),
		"-a-script", filepath.Join(dir, "Ideal.mbird"),
		"-b-lang", "c", "-b-file", filepath.Join(dir, "fitter.h"),
		"-b-script", filepath.Join(dir, "fitter.mbird"),
		"-out", proj)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "saved 2 universes") {
		t.Errorf("save output = %q", out)
	}
	out, err = runCLI(t, "show", proj)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"universe a (java)", "universe b (c)", "JavaIdeal", "fitter"} {
		if !strings.Contains(out, want) {
			t.Errorf("show output missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"parse"},
		{"mtype", "-lang", "c", "nofile.h"},
		{"compare"},
		{"show"},
		{"show", "/does/not/exist.json"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// startBrokerDaemon serves an in-process broker daemon for the remote
// subcommand tests and returns its address.
func startBrokerDaemon(t *testing.T) string {
	t.Helper()
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	broker.Serve(srv, broker.New(core.NewSession(), broker.Options{}))
	return srv.Addr()
}

func TestRemoteCompareAndStats(t *testing.T) {
	addr := startBrokerDaemon(t)
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.h")
	bPath := filepath.Join(dir, "b.h")
	if err := os.WriteFile(aPath, []byte("typedef struct { float r; int n; } mix;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, []byte("typedef struct { int count; float ratio; } pair;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"remote", "compare", "-addr", addr,
		"-a-lang", "c", "-a-file", aPath, "-a-decl", "mix",
		"-b-lang", "c", "-b-file", bPath, "-b-decl", "pair"}
	out, err := runCLI(t, args...)
	if err != nil || !strings.Contains(out, "equivalent") || !strings.Contains(out, "compared") {
		t.Fatalf("remote compare out=%q err=%v", out, err)
	}
	// Second run against the same daemon: content-addressed universes and
	// the verdict cache make it a pure cache hit.
	out, err = runCLI(t, args...)
	if err != nil || !strings.Contains(out, "cached") {
		t.Fatalf("warm remote compare out=%q err=%v", out, err)
	}
	out, err = runCLI(t, "remote", "stats", "-addr", addr)
	if err != nil || !strings.Contains(out, "1 runs") {
		t.Fatalf("remote stats out=%q err=%v", out, err)
	}
}

func TestRemoteConvert(t *testing.T) {
	addr := startBrokerDaemon(t)
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.h")
	bPath := filepath.Join(dir, "b.h")
	inPath := filepath.Join(dir, "in.json")
	if err := os.WriteFile(aPath, []byte("typedef struct { float r; int n; } mix;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, []byte("typedef struct { int count; float ratio; } pair;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(inPath, []byte("[4.5, 9]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "remote", "convert", "-addr", addr, "-in", inPath,
		"-a-lang", "c", "-a-file", aPath, "-a-decl", "mix",
		"-b-lang", "c", "-b-file", bPath, "-b-decl", "pair")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "[9,4.5]" {
		t.Errorf("remote convert out = %q, want [9,4.5]", out)
	}
}

func TestRemoteHealth(t *testing.T) {
	addr := startBrokerDaemon(t)
	out, err := runCLI(t, "remote", "health", "-addr", addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"status:    ready", "in-flight: 0 of 256 admitted", "shed:", "panics:    0 recovered"} {
		if !strings.Contains(out, want) {
			t.Errorf("health output %q lacks %q", out, want)
		}
	}
}

// TestExitCodes pins the documented exit-status contract: scripts rely
// on distinguishing unreachable (2) from handler failure (3) from
// overload (4).
func TestExitCodes(t *testing.T) {
	wrap := func(err error) error {
		// The shape resil presents after retries are exhausted.
		return fmt.Errorf("resil: 3 attempts to x failed: %w", err)
	}
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, 0},
		{"local error", errors.New("no such file"), 1},
		{"dial failure", wrap(fmt.Errorf("%w: connection refused", orb.ErrDial)), 2},
		{"remote handler error", &orb.RemoteError{Msg: "compare: unknown universe"}, 3},
		{"server panic", fmt.Errorf("%w: runtime error", orb.ErrServerPanic), 3},
		{"overload shed", wrap(fmt.Errorf("%w: 256 requests already in flight", orb.ErrOverloaded)), 4},
		{"budget expired", fmt.Errorf("%w: budget of 50ms spent before dispatch", orb.ErrExpired), 5},
		{"budget expired mid-flight", wrap(fmt.Errorf("%w: budget spent while request was in flight", orb.ErrExpired)), 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := exitCode(tc.err); got != tc.want {
				t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

// TestDialFailureExitCode runs the real path: a remote subcommand
// against a dead address must map to exit status 2.
func TestDialFailureExitCode(t *testing.T) {
	_, err := runCLI(t, "remote", "stats", "-addr", "127.0.0.1:1",
		"-retries", "1", "-dial-timeout", "200ms")
	if err == nil {
		t.Skip("something is listening on port 1")
	}
	if got := exitCode(err); got != 2 {
		t.Errorf("exitCode(%v) = %d, want 2", err, got)
	}
}

func TestRemoteUsageErrors(t *testing.T) {
	if _, err := runCLI(t, "remote"); err == nil {
		t.Error("bare remote succeeded")
	}
	if _, err := runCLI(t, "remote", "frobnicate"); err == nil {
		t.Error("unknown remote subcommand succeeded")
	}
	if _, err := runCLI(t, "remote", "compare", "-addr", "127.0.0.1:1"); err == nil {
		t.Error("remote compare without decls succeeded")
	}
}

// startGatewayDaemon serves an in-process interop gateway with one
// passthrough route looped back to a local echo upstream.
func startGatewayDaemon(t *testing.T) string {
	t.Helper()
	up, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = up.Close() })
	up.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })

	cfg := &gateway.Config{
		Upstream: up.Addr(),
		Routes:   []gateway.RouteConfig{{Key: "echo", Op: 1}},
	}
	g := gateway.New(gateway.Options{})
	t.Cleanup(func() { _ = g.Close() })
	g.SetReloader(func() (*gateway.Config, error) { return cfg, nil })
	if err := g.SetConfig(cfg); err != nil {
		t.Fatal(err)
	}
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	g.Serve(srv)
	return srv.Addr()
}

// TestRemoteJSONOutput pins the -json scrape contract for both daemons:
// the outputs must parse as JSON and carry the documented stable keys.
func TestRemoteJSONOutput(t *testing.T) {
	addr := startBrokerDaemon(t)
	out, err := runCLI(t, "remote", "stats", "-addr", addr, "-json")
	if err != nil {
		t.Fatal(err)
	}
	var bs map[string]any
	if err := json.Unmarshal([]byte(out), &bs); err != nil {
		t.Fatalf("broker stats -json is not JSON: %v\n%s", err, out)
	}
	// The top-level key set is exact: the warm counters ride along as one
	// new nested object, and everything that predates them is unchanged.
	wantStats := []string{
		"compare", "convert", "xcode", "warm",
		"fast_converts", "tree_converts", "evictions",
		"in_flight", "deadline_exceeded", "sheds",
	}
	for _, key := range wantStats {
		if _, ok := bs[key]; !ok {
			t.Errorf("broker stats JSON lacks %q", key)
		}
	}
	if len(bs) != len(wantStats) {
		t.Errorf("broker stats JSON has %d top-level keys, want %d: %v", len(bs), len(wantStats), bs)
	}
	warm, ok := bs["warm"].(map[string]any)
	if !ok {
		t.Fatalf("broker stats JSON warm = %v", bs["warm"])
	}
	for _, key := range []string{"fills", "hits", "peer_pulls", "peer_pushes"} {
		if _, ok := warm[key]; !ok {
			t.Errorf("broker stats JSON warm lacks %q", key)
		}
	}

	out, err = runCLI(t, "remote", "health", "-addr", addr, "-json")
	if err != nil {
		t.Fatal(err)
	}
	var bh map[string]any
	if err := json.Unmarshal([]byte(out), &bh); err != nil {
		t.Fatalf("broker health -json is not JSON: %v\n%s", err, out)
	}
	if bh["ready"] != true || bh["max_in_flight"] != float64(256) {
		t.Errorf("broker health JSON = %v", bh)
	}
	if _, ok := bh["transcoder_entries"]; !ok {
		t.Error("broker health JSON lacks transcoder_entries")
	}
	if _, ok := bh["routes"]; ok {
		t.Error("broker health JSON carries the gateway-only routes field")
	}
	// Exact key set: expired/canceled are the deadline-propagation
	// counters, peers came with the cluster work.
	wantHealth := []string{
		"ready", "in_flight", "max_in_flight", "sheds", "conn_sheds",
		"panics", "expired", "canceled", "transcoder_entries", "peers",
		"heap_bytes", "gc_pause_ns", "num_gc",
	}
	if bh["heap_bytes"] == float64(0) {
		t.Error("broker health JSON reports zero heap_bytes")
	}
	for _, key := range wantHealth {
		if _, ok := bh[key]; !ok {
			t.Errorf("broker health JSON lacks %q", key)
		}
	}
	if len(bh) != len(wantHealth) {
		t.Errorf("broker health JSON has %d keys, want %d: %v", len(bh), len(wantHealth), bh)
	}
	if bh["peers"] != float64(0) {
		t.Errorf("standalone broker reports peers = %v, want 0", bh["peers"])
	}
}

// TestRemoteGatewayFlag drives stats/health/reload against an interop
// gateway through the -gateway flag.
func TestRemoteGatewayFlag(t *testing.T) {
	addr := startGatewayDaemon(t)

	out, err := runCLI(t, "remote", "health", "-addr", addr, "-gateway")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "status:    ready") || !strings.Contains(out, "routes:    1 live") {
		t.Errorf("gateway health = %q", out)
	}

	out, err = runCLI(t, "remote", "health", "-addr", addr, "-gateway", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var gh map[string]any
	if err := json.Unmarshal([]byte(out), &gh); err != nil {
		t.Fatalf("gateway health -json is not JSON: %v\n%s", err, out)
	}
	if gh["routes"] != float64(1) || gh["ready"] != true {
		t.Errorf("gateway health JSON = %v", gh)
	}

	out, err = runCLI(t, "remote", "stats", "-addr", addr, "-gateway", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var gs map[string]any
	if err := json.Unmarshal([]byte(out), &gs); err != nil {
		t.Fatalf("gateway stats -json is not JSON: %v\n%s", err, out)
	}
	routes, ok := gs["routes"].([]any)
	if !ok || len(routes) != 1 {
		t.Fatalf("gateway stats JSON routes = %v", gs["routes"])
	}
	if name := routes[0].(map[string]any)["name"]; name != "echo/1" {
		t.Errorf("route name = %v, want echo/1", name)
	}
	for _, key := range []string{"expired", "canceled"} {
		if _, ok := gs[key]; !ok {
			t.Errorf("gateway stats JSON lacks %q", key)
		}
	}
	ups, ok := gs["upstreams"].([]any)
	if !ok || len(ups) == 0 {
		t.Fatalf("gateway stats JSON upstreams = %v", gs["upstreams"])
	}
	up0 := ups[0].(map[string]any)
	for _, key := range []string{"budget_exhausted", "breaker_trips"} {
		if _, ok := up0[key]; !ok {
			t.Errorf("gateway stats JSON upstream lacks %q", key)
		}
	}
	for _, key := range []string{"expired", "canceled"} {
		if _, ok := gh[key]; !ok {
			t.Errorf("gateway health JSON lacks %q", key)
		}
	}

	out, err = runCLI(t, "remote", "reload", "-addr", addr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reloaded: 1 routes") {
		t.Errorf("reload = %q", out)
	}
}

// startClusterDaemon is startBrokerDaemon plus the cluster peer service,
// wired to the given member list once every member's address is known.
func startClusterDaemon(t *testing.T) (addr string, wire func(members []string)) {
	t.Helper()
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	b := broker.New(core.NewSession(), broker.Options{})
	broker.Serve(srv, b)
	return srv.Addr(), func(members []string) {
		n := cluster.NewNode(srv.Addr(), members, b, cluster.NodeOptions{})
		t.Cleanup(func() { _ = n.Close() })
		cluster.Serve(srv, n)
	}
}

// TestClusterStatusCommand checks `mbird cluster status -json` against a
// live 2-node fleet plus one dead member: live rows carry ring shares and
// counters, the dead member degrades to an unreachable row instead of
// failing the command, and the shares still cover the whole keyspace.
func TestClusterStatusCommand(t *testing.T) {
	a, wireA := startClusterDaemon(t)
	b, wireB := startClusterDaemon(t)
	dead := "127.0.0.1:1" // reserved port, nothing listens
	members := []string{a, b, dead}
	wireA(members)
	wireB(members)
	list := strings.Join(members, ",")

	out, err := runCLI(t, "cluster", "status", "-cluster", list, "-json",
		"-retries", "1", "-dial-timeout", "500ms")
	if err != nil {
		t.Fatalf("cluster status: %v (out=%q)", err, out)
	}
	var st struct {
		Members []string `json:"members"`
		Nodes   []struct {
			Addr         string  `json:"addr"`
			Reachable    bool    `json:"reachable"`
			Error        string  `json:"error"`
			RingShare    float64 `json:"ring_share"`
			MembersAgree bool    `json:"members_agree"`
		} `json:"nodes"`
	}
	// The raw rows must carry the deadline counters for every member.
	var raw struct {
		Nodes []map[string]any `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(out), &raw); err != nil {
		t.Fatalf("bad JSON %q: %v", out, err)
	}
	for _, n := range raw.Nodes {
		for _, key := range []string{"expired", "canceled"} {
			if _, ok := n[key]; !ok {
				t.Errorf("cluster status row %v lacks %q", n["addr"], key)
			}
		}
	}
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("bad JSON %q: %v", out, err)
	}
	if len(st.Members) != 3 || len(st.Nodes) != 3 {
		t.Fatalf("members=%v nodes=%d, want 3/3", st.Members, len(st.Nodes))
	}
	shares := 0.0
	for _, n := range st.Nodes {
		shares += n.RingShare
		switch n.Addr {
		case dead:
			if n.Reachable || n.Error == "" {
				t.Fatalf("dead member row = %+v, want unreachable with error", n)
			}
		default:
			if !n.Reachable || !n.MembersAgree {
				t.Fatalf("live member row = %+v, want reachable and agreeing", n)
			}
		}
	}
	if shares < 0.999 || shares > 1.001 {
		t.Fatalf("ring shares sum to %f, want 1", shares)
	}

	// Text mode renders one line per member and flags the dead one.
	out, err = runCLI(t, "cluster", "status", "-cluster", list,
		"-retries", "1", "-dial-timeout", "500ms")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cluster: 3 members") || !strings.Contains(out, "unreachable") {
		t.Fatalf("text status = %q", out)
	}

	// Usage errors: unknown subcommand, missing member list.
	if _, err := runCLI(t, "cluster", "bogus"); err == nil {
		t.Fatal("cluster bogus accepted")
	}
	if _, err := runCLI(t, "cluster", "status"); err == nil {
		t.Fatal("cluster status without -cluster accepted")
	}
}
