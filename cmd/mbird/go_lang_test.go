package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goFitter is the Go spelling of the §2 fitter: no annotation script —
// the language already states value containment.
const goFitter = `package fitter

type Point struct {
	X, Y float32
}

type Line struct {
	Start Point
	End   Point
}

type Fitter interface {
	Fit(pts []Point) Line
}
`

const idlFitter = `
struct Point { float x; float y; };
struct Line { Point start; Point end; };
typedef sequence<Point> PointVector;
interface Fitter {
  Line fit(in PointVector pts);
};
`

// writeGoFitterFiles lays out the fitter in all four languages.
func writeGoFitterFiles(t *testing.T) string {
	t.Helper()
	dir := writeFitterFiles(t)
	for name, content := range map[string]string{
		"fitter.go":  goFitter,
		"fitter.idl": idlFitter,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLangInference: with -lang empty the CLI infers the language from
// the file extension, one test per mapped extension.
func TestLangInference(t *testing.T) {
	dir := writeGoFitterFiles(t)
	cases := []struct{ file, decl string }{
		{"fitter.h", "fitter"},
		{"Ideal.java", "JavaIdeal"},
		{"fitter.idl", "Fitter"},
		{"fitter.go", "Fitter"},
	}
	for _, c := range cases {
		out, err := runCLI(t, "parse", filepath.Join(dir, c.file))
		if err != nil {
			t.Errorf("parse %s: %v", c.file, err)
			continue
		}
		if !strings.Contains(out, c.decl) {
			t.Errorf("parse %s output = %q, want %s", c.file, out, c.decl)
		}
	}
}

func TestLangInferenceFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "decls.txt")
	if err := os.WriteFile(path, []byte("whatever"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := runCLI(t, "parse", path)
	if err == nil || !strings.Contains(err.Error(), "cannot infer language") {
		t.Fatalf("err = %v, want inference failure naming the extension", err)
	}
	// An explicit -lang overrides the unknown extension.
	if err := os.WriteFile(path, []byte("typedef int t;"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "parse", "-lang", "c", path); err != nil {
		t.Errorf("explicit -lang with odd extension: %v", err)
	}
}

// TestGoCompareAgainstAllPeers: the Go fitter is equivalent to the C,
// Java, and IDL spellings, with languages inferred from extensions.
func TestGoCompareAgainstAllPeers(t *testing.T) {
	dir := writeGoFitterFiles(t)
	peers := []struct {
		file, script, decl string
	}{
		{"fitter.h", "fitter.mbird", "fitter"},
		{"Ideal.java", "Ideal.mbird", "JavaIdeal"},
		{"fitter.idl", "", "Fitter"},
	}
	for _, p := range peers {
		args := []string{"compare",
			"-a-file", filepath.Join(dir, "fitter.go"), "-a-decl", "Fitter",
			"-b-file", filepath.Join(dir, p.file), "-b-decl", p.decl}
		if p.script != "" {
			args = append(args, "-b-script", filepath.Join(dir, p.script))
		}
		out, err := runCLI(t, args...)
		if err != nil {
			t.Errorf("compare go vs %s: %v\n%s", p.file, err, out)
			continue
		}
		if !strings.Contains(out, "relation: equivalent") {
			t.Errorf("go vs %s output = %q", p.file, out)
		}
	}
}

func TestGoEmitStub(t *testing.T) {
	dir := writeGoFitterFiles(t)
	out, err := runCLI(t, "emit",
		"-a-file", filepath.Join(dir, "fitter.go"), "-a-decl", "Fitter",
		"-b-file", filepath.Join(dir, "fitter.h"),
		"-b-script", filepath.Join(dir, "fitter.mbird"), "-b-decl", "fitter",
		"-pkg", "fitterstub", "-func", "GoToC")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "package fitterstub") || !strings.Contains(out, "func GoToC(") {
		t.Errorf("emitted source missing pieces:\n%.200s", out)
	}
}

// TestRemoteGoCompare runs the Go side through a broker daemon: the
// remote path hashes (lang, source, script) into a content-addressed
// universe, so "go" must survive the whole wire round trip.
func TestRemoteGoCompare(t *testing.T) {
	addr := startBrokerDaemon(t)
	dir := writeGoFitterFiles(t)
	out, err := runCLI(t, "remote", "compare", "-addr", addr,
		"-a-file", filepath.Join(dir, "fitter.go"), "-a-decl", "Fitter",
		"-b-lang", "java", "-b-file", filepath.Join(dir, "Ideal.java"),
		"-b-script", filepath.Join(dir, "Ideal.mbird"), "-b-decl", "JavaIdeal")
	if err != nil || !strings.Contains(out, "equivalent") {
		t.Fatalf("remote compare out=%q err=%v", out, err)
	}
}

func TestRemoteGoConvert(t *testing.T) {
	addr := startBrokerDaemon(t)
	dir := t.TempDir()
	goPath := filepath.Join(dir, "mix.go")
	cPath := filepath.Join(dir, "pair.h")
	inPath := filepath.Join(dir, "in.json")
	if err := os.WriteFile(goPath, []byte("package p\n\ntype Mix struct {\n\tR float32\n\tN int32\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cPath, []byte("typedef struct { int count; float ratio; } pair;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(inPath, []byte("[4.5, 9]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "remote", "convert", "-addr", addr, "-in", inPath,
		"-a-file", goPath, "-a-decl", "Mix",
		"-b-file", cPath, "-b-decl", "pair")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "[9,4.5]" {
		t.Errorf("remote convert out = %q, want [9,4.5]", out)
	}
}
