// Command mbird is the Mockingbird stub compiler: it parses pairs of
// declarations (C, Java, CORBA IDL, Go), applies annotation scripts,
// lowers both sides to Mtypes, runs the Comparer, and emits Go stub
// source — the Figure 6 pipeline as a command-line tool.
//
// An empty -lang (or -a-lang/-b-lang) is inferred from the declaration
// file's extension: .h/.c→c, .java→java, .idl→idl, .go→go.
//
// Usage:
//
//	mbird parse   -lang c|java|idl|go [-model ilp32|lp64] [-script file] file
//	mbird mtype   -lang ... [-script file] -decl NAME file
//	mbird compare -a-lang L -a-file F [-a-script S] -a-decl D \
//	              -b-lang L -b-file F [-b-script S] -b-decl D
//	mbird emit    (compare flags) -pkg NAME -func NAME
//	mbird save    (compare flags) -out project.json
//	mbird show    project.json
//	mbird remote compare -addr HOST:PORT (compare flags) (transport flags)
//	mbird remote convert -addr HOST:PORT (compare flags) [-in value.json] [-batch]
//	mbird remote convert -addr HOST:PORT (compare flags) -in payload.cdr -out result.cdr
//	mbird remote stats   -addr HOST:PORT [-json] [-gateway] (transport flags)
//	mbird remote health  -addr HOST:PORT [-json] [-gateway] (transport flags)
//	mbird remote reload  -addr HOST:PORT (transport flags)
//	mbird cluster status -cluster HOST:PORT,... [-json] (transport flags)
//
// remote stats and remote health read a daemon's counters — the broker's
// by default, an interop gateway's (mbirdgw) with -gateway. -json emits
// the same counters as a JSON object with stable snake_case field names,
// for scripts and scrapers; the text rendering is for humans and may
// change. remote reload asks a gateway to re-read its route table (the
// signal-free equivalent of SIGHUP on mbirdgw).
//
// cluster status surveys a sharded broker fleet (mbirdd -cluster): for
// every member it reports the hash-ring keyspace share, cache occupancy,
// hit/warm/shed counters, and the peer cache-warming protocol's
// counters, and flags members whose view of the membership disagrees
// with the -cluster list. Unreachable members render as such without
// failing the survey.
//
// The transport flags tune the resilient client (internal/resil) the
// remote subcommands use: -timeout bounds each call, -dial-timeout each
// connection attempt, -retries the attempts per call for connection-level
// failures, and -hedge duplicates read-only requests (compare, stats)
// onto a second connection when the first is slow.
//
// compare prints the relation (equivalent, subtype, or a mismatch
// diagnosis); emit prints the generated request-direction converter for
// an equivalent pair.
//
// Remote failures exit with distinct codes so scripts and supervisors
// can tell them apart: 1 for local errors, 2 when the daemon cannot be
// reached (dial failure), 3 when the daemon served the request but the
// handler failed or panicked, 4 when the daemon shed the request as
// overloaded and retries were exhausted, 5 when the request's time
// budget expired before the daemon finished (shed pre-dispatch or
// abandoned in flight).
//
// The remote subcommands talk to an mbirdd broker daemon. Sources are
// shipped under content-addressed universe names, so repeated invocations
// against the same daemon reuse its loaded declarations and caches.
// remote convert reads a JSON rendering of a value of the A declaration
// (stdin by default) and prints the converted value of the B declaration;
// the Mtypes for the JSON and CDR codecs are lowered locally from the
// same sources the daemon sees. With -batch the input is a JSON array of
// A values and the output a JSON array of B values, converted in one
// daemon request through the batch protocol op. With -out the JSON
// codecs are bypassed entirely: -in names a raw CDR payload of the A
// declaration (stdin with -), -out receives the raw CDR payload of the
// B declaration (stdout with -), and both legs stream through the
// daemon's streaming convert op in bounded memory — payloads larger
// than RAM convert from disk to disk.
package main

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/cmem"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/gen"
	"repro/internal/orb"
	"repro/internal/plan"
	"repro/internal/project"
	"repro/internal/resil"
	"repro/internal/value"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mbird:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps an error to the process exit status: 2 for dial
// failures (daemon unreachable), 5 for expired time budgets (the
// daemon never finished the work inside the request's budget), 4 for
// overload sheds that outlasted the client's retries, 3 for remote
// handler errors and server panics (the daemon served the request and
// reported failure), 1 otherwise. Overload is checked before the
// handler-error cases because resil wraps the final shed in its
// attempts-exhausted error; expired is checked before both because it
// is the caller's clock, not a daemon verdict.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var re *orb.RemoteError
	switch {
	case errors.Is(err, orb.ErrDial):
		return 2
	case errors.Is(err, orb.ErrExpired):
		return 5
	case errors.Is(err, orb.ErrOverloaded):
		return 4
	case errors.As(err, &re), errors.Is(err, orb.ErrServerPanic):
		return 3
	}
	return 1
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mbird <parse|mtype|compare|emit|save|show> ...")
	}
	switch args[0] {
	case "parse":
		return cmdParse(args[1:], out)
	case "mtype":
		return cmdMtype(args[1:], out)
	case "compare":
		return cmdCompare(args[1:], out)
	case "emit":
		return cmdEmit(args[1:], out)
	case "save":
		return cmdSave(args[1:], out)
	case "show":
		return cmdShow(args[1:], out)
	case "remote":
		return cmdRemote(args[1:], out)
	case "cluster":
		return cmdCluster(args[1:], out)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func cmdRemote(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mbird remote <compare|convert|stats|health|reload> -addr HOST:PORT ...")
	}
	switch args[0] {
	case "compare":
		return cmdRemoteCompare(args[1:], out)
	case "convert":
		return cmdRemoteConvert(args[1:], out)
	case "stats":
		return cmdRemoteStats(args[1:], out)
	case "health":
		return cmdRemoteHealth(args[1:], out)
	case "reload":
		return cmdRemoteReload(args[1:], out)
	default:
		return fmt.Errorf("unknown remote command %q", args[0])
	}
}

// side describes one declaration side's flags.
type side struct {
	lang, file, script, decl, model string
}

func (s *side) register(fs *flag.FlagSet, prefix string) {
	fs.StringVar(&s.lang, prefix+"lang", "", "language: c, java, idl, or go (inferred from the file extension when empty)")
	fs.StringVar(&s.file, prefix+"file", "", "declaration source file")
	fs.StringVar(&s.script, prefix+"script", "", "annotation script file (optional)")
	fs.StringVar(&s.decl, prefix+"decl", "", "declaration name")
	fs.StringVar(&s.model, prefix+"model", "ilp32", "C data model: ilp32 or lp64")
}

// langExts maps declaration file extensions to their languages, for
// inferring an empty -lang flag.
var langExts = map[string]string{
	".h":    "c",
	".c":    "c",
	".java": "java",
	".idl":  "idl",
	".go":   "go",
}

// resolveLang fills an empty lang from the file extension, or explains
// why it cannot.
func (s *side) resolveLang() error {
	if s.lang != "" {
		return nil
	}
	if s.file == "" {
		return nil // the missing-file error is clearer; let load report it
	}
	ext := strings.ToLower(filepath.Ext(s.file))
	if lang, ok := langExts[ext]; ok {
		s.lang = lang
		return nil
	}
	return fmt.Errorf("cannot infer language from %q (extension %q is not one of .h/.c/.java/.idl/.go); pass -lang c|java|idl|go", s.file, ext)
}

// load parses the side's file into the session under the given universe
// name and applies its annotation script.
func (s *side) load(sess *core.Session, universe string) error {
	if err := s.resolveLang(); err != nil {
		return err
	}
	if s.lang == "" || s.file == "" {
		return fmt.Errorf("missing -%slang/-%sfile", universe, universe)
	}
	src, err := os.ReadFile(s.file)
	if err != nil {
		return err
	}
	model := cmem.ILP32
	if s.model == "lp64" {
		model = cmem.LP64
	}
	switch s.lang {
	case "c":
		err = sess.LoadC(universe, string(src), model)
	case "java":
		err = sess.LoadJava(universe, string(src))
	case "idl":
		err = sess.LoadIDL(universe, string(src))
	case "go":
		err = sess.LoadGo(universe, string(src))
	default:
		return fmt.Errorf("unknown language %q", s.lang)
	}
	if err != nil {
		return err
	}
	if s.script != "" {
		script, err := os.ReadFile(s.script)
		if err != nil {
			return err
		}
		if _, err := sess.Annotate(universe, string(script)); err != nil {
			return err
		}
	}
	return nil
}

func cmdParse(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("parse", flag.ContinueOnError)
	var s side
	s.register(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mbird parse -lang L [flags] file")
	}
	s.file = fs.Arg(0)
	sess := core.NewSession()
	if err := s.load(sess, "u"); err != nil {
		return err
	}
	names, err := sess.DeclNames("u")
	if err != nil {
		return err
	}
	for _, n := range names {
		d := sess.Universe("u").Lookup(n)
		fmt.Fprintf(out, "%-30s %s\n", n, d.Type)
	}
	return nil
}

func cmdMtype(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mtype", flag.ContinueOnError)
	var s side
	s.register(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || s.decl == "" {
		return fmt.Errorf("usage: mbird mtype -lang L -decl NAME [flags] file")
	}
	s.file = fs.Arg(0)
	sess := core.NewSession()
	if err := s.load(sess, "u"); err != nil {
		return err
	}
	mt, err := sess.Mtype("u", s.decl)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, mt)
	return nil
}

// loadPair builds a session with both sides loaded.
func loadPair(args []string, requireDecls bool, extra func(fs *flag.FlagSet)) (*core.Session, *side, *side, error) {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	var a, b side
	a.register(fs, "a-")
	b.register(fs, "b-")
	if extra != nil {
		extra(fs)
	}
	if err := fs.Parse(args); err != nil {
		return nil, nil, nil, err
	}
	sess := core.NewSession()
	if err := a.load(sess, "a"); err != nil {
		return nil, nil, nil, err
	}
	if err := b.load(sess, "b"); err != nil {
		return nil, nil, nil, err
	}
	if requireDecls && (a.decl == "" || b.decl == "") {
		return nil, nil, nil, fmt.Errorf("missing -a-decl/-b-decl")
	}
	return sess, &a, &b, nil
}

func cmdCompare(args []string, out io.Writer) error {
	sess, a, b, err := loadPair(args, true, nil)
	if err != nil {
		return err
	}
	v, err := sess.Compare("a", a.decl, "b", b.decl)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "relation: %s (%d comparison steps)\n", v.Relation, v.Steps)
	if v.Relation == core.RelNone {
		fmt.Fprintf(out, "diagnosis:\n%s", v.Explain)
		return fmt.Errorf("declarations do not match")
	}
	mtA, _ := sess.Mtype("a", a.decl)
	mtB, _ := sess.Mtype("b", b.decl)
	fmt.Fprintf(out, "left  mtype: %s\n", mtA)
	fmt.Fprintf(out, "right mtype: %s\n", mtB)
	return nil
}

func cmdEmit(args []string, out io.Writer) error {
	var pkg, funcName string
	sess, a, b, err := loadPair(args, true, func(fs *flag.FlagSet) {
		fs.StringVar(&pkg, "pkg", "stubs", "package name for the generated file")
		fs.StringVar(&funcName, "func", "Convert", "exported converter name")
	})
	if err != nil {
		return err
	}
	v, err := sess.Compare("a", a.decl, "b", b.decl)
	if err != nil {
		return err
	}
	if v.Relation == core.RelNone {
		return fmt.Errorf("declarations do not match:\n%s", v.Explain)
	}
	p, err := plan.Build(v.Match)
	if err != nil {
		return err
	}
	src, err := gen.Converter(p, pkg, funcName)
	if err != nil {
		return err
	}
	fmt.Fprint(out, src)
	return nil
}

func cmdSave(args []string, out io.Writer) error {
	var outPath string
	sess, _, _, err := loadPair(args, false, func(fs *flag.FlagSet) {
		fs.StringVar(&outPath, "out", "", "project file to write")
	})
	if err != nil {
		return err
	}
	if outPath == "" {
		return fmt.Errorf("missing -out")
	}
	data, err := project.Save(sess)
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "saved %d universes to %s\n", len(sess.Universes()), outPath)
	return nil
}

func cmdShow(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: mbird show project.json")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	sess, err := project.Load(data)
	if err != nil {
		return err
	}
	for _, uname := range sess.Universes() {
		u := sess.Universe(uname)
		fmt.Fprintf(out, "universe %s (%s):\n", uname, u.Lang())
		names, err := sess.DeclNames(uname)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintf(out, "  %-28s %s\n", n, u.Lookup(n).Type)
		}
	}
	return nil
}

// sources reads the side's declaration file and optional script.
func (s *side) sources() (src, script string, err error) {
	if err := s.resolveLang(); err != nil {
		return "", "", err
	}
	if s.lang == "" || s.file == "" {
		return "", "", fmt.Errorf("missing -lang/-file for one side")
	}
	data, err := os.ReadFile(s.file)
	if err != nil {
		return "", "", err
	}
	src = string(data)
	if s.script != "" {
		data, err := os.ReadFile(s.script)
		if err != nil {
			return "", "", err
		}
		script = string(data)
	}
	return src, script, nil
}

// remoteLoad ships one side to the daemon. The universe name is a content
// hash of everything that determines the lowering, so reloading identical
// sources is a no-op on the daemon and distinct sources never collide.
func (s *side) remoteLoad(c *broker.Client) (universe string, err error) {
	src, script, err := s.sources()
	if err != nil {
		return "", err
	}
	h := sha256.Sum256([]byte(s.lang + "\x00" + s.model + "\x00" + src + "\x00" + script))
	universe = "u" + hex.EncodeToString(h[:8])
	_, _, err = c.Load(universe, s.lang, s.model, src, script)
	return universe, err
}

// transportFlags are the shared resilient-transport knobs of the remote
// subcommands.
type transportFlags struct {
	addr        string
	timeout     time.Duration
	dialTimeout time.Duration
	retries     int
	hedge       bool
	budget      time.Duration
}

func (tf *transportFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&tf.addr, "addr", "127.0.0.1:7465", "broker daemon address")
	fs.DurationVar(&tf.timeout, "timeout", 15*time.Second, "per-call deadline (0 = library default, negative = none)")
	fs.DurationVar(&tf.dialTimeout, "dial-timeout", 5*time.Second, "per-connection dial deadline")
	fs.IntVar(&tf.retries, "retries", 3, "attempts per call for connection-level failures")
	fs.BoolVar(&tf.hedge, "hedge", false, "hedge slow read-only requests on a second connection")
	fs.DurationVar(&tf.budget, "budget", 0, "explicit deadline budget carried in each request frame, independent of -timeout (0 = derive from the call deadline)")
}

// ctx returns the base context for the subcommand's calls: Background,
// or one carrying the explicit -budget as the wire deadline budget. The
// local -timeout still bounds the call either way; -budget only
// overrides what the server is told about the remaining time.
func (tf *transportFlags) ctx() context.Context {
	if tf.budget > 0 {
		return orb.ContextWithBudget(context.Background(), tf.budget)
	}
	return context.Background()
}

// dial builds a broker client over the resilient pooled transport.
func (tf *transportFlags) dial() *broker.Client {
	return broker.NewTransportClient(resil.New(tf.addr, resil.Options{
		CallTimeout: tf.timeout,
		DialTimeout: tf.dialTimeout,
		MaxAttempts: tf.retries,
		Hedge:       tf.hedge,
	}))
}

// remotePair parses the shared remote flags, connects, and loads both
// sides onto the daemon. ctx is the base context for the subcommand's
// calls, carrying the explicit -budget when one was given.
func remotePair(name string, args []string, extra func(fs *flag.FlagSet)) (ctx context.Context, c *broker.Client, a, b *side, ua, ub string, err error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	var tf transportFlags
	tf.register(fs)
	a, b = &side{}, &side{}
	a.register(fs, "a-")
	b.register(fs, "b-")
	if extra != nil {
		extra(fs)
	}
	if err = fs.Parse(args); err != nil {
		return nil, nil, nil, nil, "", "", err
	}
	if a.decl == "" || b.decl == "" {
		return nil, nil, nil, nil, "", "", fmt.Errorf("missing -a-decl/-b-decl")
	}
	c = tf.dial()
	if ua, err = a.remoteLoad(c); err == nil {
		ub, err = b.remoteLoad(c)
	}
	if err != nil {
		_ = c.Close()
		return nil, nil, nil, nil, "", "", err
	}
	return tf.ctx(), c, a, b, ua, ub, nil
}

func cmdRemoteCompare(args []string, out io.Writer) error {
	ctx, c, a, b, ua, ub, err := remotePair("remote compare", args, nil)
	if err != nil {
		return err
	}
	defer c.Close()
	v, err := c.CompareContext(ctx, ua, a.decl, ub, b.decl)
	if err != nil {
		return err
	}
	source := "compared"
	if v.Cached {
		source = "cached"
	}
	fmt.Fprintf(out, "relation: %s (%d comparison steps, %s)\n", v.Relation, v.Steps, source)
	if v.Relation == core.RelNone {
		fmt.Fprintf(out, "diagnosis:\n%s", v.Explain)
		return fmt.Errorf("declarations do not match")
	}
	return nil
}

func cmdRemoteConvert(args []string, out io.Writer) error {
	var inPath, outPath string
	var batch bool
	ctx, c, a, b, ua, ub, err := remotePair("remote convert", args, func(fs *flag.FlagSet) {
		fs.StringVar(&inPath, "in", "-", "JSON value of the A declaration (- for stdin); with -out, raw CDR payload bytes instead")
		fs.StringVar(&outPath, "out", "", "write raw CDR payload bytes of the B declaration to this file (- for stdout), streaming both legs; disables the JSON codecs")
		fs.BoolVar(&batch, "batch", false, "input is a JSON array of A values; convert them in one batch request")
	})
	if err != nil {
		return err
	}
	defer c.Close()

	if outPath != "" {
		if batch {
			return fmt.Errorf("-batch and -out are exclusive")
		}
		return streamConvert(ctx, c, a, b, ua, ub, inPath, outPath, out)
	}

	// Lower both sides locally: the daemon converts CDR payloads, the
	// client owns the JSON⇄CDR codecs.
	sess := core.NewSession()
	if err := a.load(sess, "a"); err != nil {
		return err
	}
	if err := b.load(sess, "b"); err != nil {
		return err
	}
	mtA, err := sess.Mtype("a", a.decl)
	if err != nil {
		return err
	}
	mtB, err := sess.Mtype("b", b.decl)
	if err != nil {
		return err
	}

	var data []byte
	if inPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(inPath)
	}
	if err != nil {
		return err
	}
	if batch {
		var raws []json.RawMessage
		if err := json.Unmarshal(data, &raws); err != nil {
			return fmt.Errorf("batch input must be a JSON array: %w", err)
		}
		ins := make([]value.Value, len(raws))
		for i, r := range raws {
			if ins[i], err = value.FromJSON(mtA, r); err != nil {
				return fmt.Errorf("batch item %d: %w", i, err)
			}
		}
		outs, err := c.ConvertBatchContext(ctx, ua, a.decl, ub, b.decl, mtA, mtB, ins)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "[")
		for i, v := range outs {
			js, err := value.ToJSON(mtB, v)
			if err != nil {
				return err
			}
			sep := ","
			if i == len(outs)-1 {
				sep = ""
			}
			fmt.Fprintf(out, "  %s%s\n", js, sep)
		}
		fmt.Fprintln(out, "]")
		return nil
	}

	in, err := value.FromJSON(mtA, data)
	if err != nil {
		return err
	}
	res, err := c.ConvertContext(ctx, ua, a.decl, ub, b.decl, mtA, mtB, in)
	if err != nil {
		return err
	}
	js, err := value.ToJSON(mtB, res)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", js)
	return nil
}

// streamConvert is the raw-CDR mode of remote convert: payload bytes
// flow file→daemon→file through the streaming convert op, so neither
// the client nor the daemon ever holds the whole value — the path for
// payloads bigger than memory. The JSON codecs (and therefore the local
// lowering they need) are skipped entirely.
func streamConvert(ctx context.Context, c *broker.Client, a, b *side, ua, ub string, inPath, outPath string, stdout io.Writer) error {
	var src io.Reader = os.Stdin
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	var dst io.Writer = stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	n, err := c.ConvertStreamContext(ctx, ua, a.decl, ub, b.decl, bufio.NewReaderSize(src, 256<<10), dst)
	if err != nil {
		return err
	}
	if outPath != "-" {
		fmt.Fprintf(stdout, "wrote %d bytes to %s\n", n, outPath)
	}
	return nil
}

// dialGateway builds a gateway admin client over the same resilient
// pooled transport the broker client uses.
func (tf *transportFlags) dialGateway() *gateway.Client {
	return gateway.NewTransportClient(resil.New(tf.addr, resil.Options{
		CallTimeout: tf.timeout,
		DialTimeout: tf.dialTimeout,
		MaxAttempts: tf.retries,
		Hedge:       tf.hedge,
	}))
}

// emitJSON writes v as indented JSON. The field names in the payload
// structs below are the stable scrape contract; the text renderings are
// for humans and may change.
func emitJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// brokerStatsJSON is the stable -json shape of `mbird remote stats`
// against a broker daemon.
type brokerStatsJSON struct {
	Compare struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Coalesced int64 `json:"coalesced"`
		Runs      int64 `json:"runs"`
		TotalNs   int64 `json:"total_ns"`
		Entries   int   `json:"entries"`
	} `json:"compare"`
	Convert struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Coalesced int64 `json:"coalesced"`
		Compiles  int64 `json:"compiles"`
		TotalNs   int64 `json:"total_ns"`
		Entries   int   `json:"entries"`
	} `json:"convert"`
	Xcode struct {
		Hits        int64 `json:"hits"`
		Misses      int64 `json:"misses"`
		Coalesced   int64 `json:"coalesced"`
		Compiles    int64 `json:"compiles"`
		Unsupported int64 `json:"unsupported"`
		Entries     int   `json:"entries"`
	} `json:"xcode"`
	Warm struct {
		Fills      int64 `json:"fills"`
		Hits       int64 `json:"hits"`
		PeerPulls  int64 `json:"peer_pulls"`
		PeerPushes int64 `json:"peer_pushes"`
	} `json:"warm"`
	FastConverts     int64 `json:"fast_converts"`
	TreeConverts     int64 `json:"tree_converts"`
	Evictions        int64 `json:"evictions"`
	InFlight         int64 `json:"in_flight"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Sheds            int64 `json:"sheds"`
}

// gatewayRouteJSON / gatewayStatsJSON are the stable -json shape of
// `mbird remote stats -gateway`.
type gatewayRouteJSON struct {
	Name           string `json:"name"`
	Requests       int64  `json:"requests"`
	FastTier       int64  `json:"fast_tier"`
	TreeTier       int64  `json:"tree_tier"`
	Passthrough    int64  `json:"passthrough"`
	TranscodeNs    int64  `json:"transcode_ns"`
	UpstreamErrors int64  `json:"upstream_errors"`
	Sheds          int64  `json:"sheds"`
	BudgetRejects  int64  `json:"budget_rejects"`
}

type gatewayUpstreamJSON struct {
	Addr            string `json:"addr"`
	Conns           int    `json:"conns"`
	Dials           int64  `json:"dials"`
	Discards        int64  `json:"discards"`
	Retries         int64  `json:"retries"`
	Overloads       int64  `json:"overloads"`
	Hedges          int64  `json:"hedges"`
	HedgeWins       int64  `json:"hedge_wins"`
	BudgetExhausted int64  `json:"budget_exhausted"`
	BreakerTrips    int64  `json:"breaker_trips"`
}

type gatewayStatsJSON struct {
	Routes          []gatewayRouteJSON    `json:"routes"`
	Upstreams       []gatewayUpstreamJSON `json:"upstreams"`
	LaneCompiles    int64                 `json:"lane_compiles"`
	LaneUnsupported int64                 `json:"lane_unsupported"`
	LaneReuses      int64                 `json:"lane_reuses"`
	InFlight        int64                 `json:"in_flight"`
	Sheds           int64                 `json:"sheds"`
	Expired         int64                 `json:"expired"`
	Canceled        int64                 `json:"canceled"`
}

// healthJSON is the stable -json shape of `mbird remote health` for
// both daemons; the gateway-only fields are omitted for the broker and
// vice versa.
type healthJSON struct {
	Ready             bool   `json:"ready"`
	InFlight          int64  `json:"in_flight"`
	MaxInFlight       int    `json:"max_in_flight"`
	Sheds             int64  `json:"sheds"`
	ConnSheds         int64  `json:"conn_sheds"`
	Panics            int64  `json:"panics"`
	Expired           int64  `json:"expired"`
	Canceled          int64  `json:"canceled"`
	TranscoderEntries *int64 `json:"transcoder_entries,omitempty"`
	Peers             *int64 `json:"peers,omitempty"`
	Routes            *int   `json:"routes,omitempty"`
	Lanes             *int   `json:"lanes,omitempty"`
	HeapBytes         int64  `json:"heap_bytes"`
	GCPauseNs         int64  `json:"gc_pause_ns"`
	NumGC             int64  `json:"num_gc"`
}

func cmdRemoteStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("remote stats", flag.ContinueOnError)
	var tf transportFlags
	tf.register(fs)
	asJSON := fs.Bool("json", false, "emit JSON with stable field names")
	gw := fs.Bool("gateway", false, "read an interop gateway's stats instead of a broker's")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gw {
		c := tf.dialGateway()
		defer c.Close()
		st, err := c.StatsContext(tf.ctx())
		if err != nil {
			return err
		}
		if *asJSON {
			js := gatewayStatsJSON{
				Routes:          []gatewayRouteJSON{},
				Upstreams:       []gatewayUpstreamJSON{},
				LaneCompiles:    st.LaneCompiles,
				LaneUnsupported: st.LaneUnsupported,
				LaneReuses:      st.LaneReuses,
				InFlight:        st.InFlight,
				Sheds:           st.Sheds,
				Expired:         st.Expired,
				Canceled:        st.Canceled,
			}
			for _, r := range st.Routes {
				js.Routes = append(js.Routes, gatewayRouteJSON{
					Name: r.Name, Requests: r.Requests,
					FastTier: r.FastTier, TreeTier: r.TreeTier, Passthrough: r.Passthrough,
					TranscodeNs: r.TranscodeTotal.Nanoseconds(), UpstreamErrors: r.UpstreamErrors,
					Sheds: r.Sheds, BudgetRejects: r.BudgetRejects,
				})
			}
			for _, u := range st.Upstreams {
				js.Upstreams = append(js.Upstreams, gatewayUpstreamJSON{
					Addr: u.Addr, Conns: u.Conns, Dials: u.Dials, Discards: u.Discards,
					Retries: u.Retries, Overloads: u.Overloads, Hedges: u.Hedges, HedgeWins: u.HedgeWins,
					BudgetExhausted: u.BudgetExhausted, BreakerTrips: u.BreakerTrips,
				})
			}
			return emitJSON(out, js)
		}
		for _, r := range st.Routes {
			fmt.Fprintf(out, "route %-20s %d requests (%d wire-to-wire, %d via trees, %d passthrough), %v transcoding, %d upstream errors, %d shed, %d over budget\n",
				r.Name+":", r.Requests, r.FastTier, r.TreeTier, r.Passthrough,
				r.TranscodeTotal, r.UpstreamErrors, r.Sheds, r.BudgetRejects)
		}
		for _, u := range st.Upstreams {
			fmt.Fprintf(out, "upstream %-17s %d conns, %d dials, %d discards, %d retries, %d overloads, %d hedges (%d won), %d budget-refused, %d breaker trips\n",
				u.Addr+":", u.Conns, u.Dials, u.Discards, u.Retries, u.Overloads, u.Hedges, u.HedgeWins,
				u.BudgetExhausted, u.BreakerTrips)
		}
		fmt.Fprintf(out, "lanes:    %d compiled (%d tree-only), %d cache reuses\n",
			st.LaneCompiles, st.LaneUnsupported, st.LaneReuses)
		fmt.Fprintf(out, "in-flight: %d, shed: %d, expired: %d, canceled: %d\n",
			st.InFlight, st.Sheds, st.Expired, st.Canceled)
		return nil
	}
	c := tf.dial()
	defer c.Close()
	st, err := c.StatsContext(tf.ctx())
	if err != nil {
		return err
	}
	if *asJSON {
		var js brokerStatsJSON
		js.Compare.Hits, js.Compare.Misses, js.Compare.Coalesced = st.CompareHits, st.CompareMisses, st.CompareCoalesced
		js.Compare.Runs, js.Compare.TotalNs, js.Compare.Entries = st.CompareRuns, st.CompareTotal.Nanoseconds(), st.VerdictEntries
		js.Convert.Hits, js.Convert.Misses, js.Convert.Coalesced = st.ConvertHits, st.ConvertMisses, st.ConvertCoalesced
		js.Convert.Compiles, js.Convert.TotalNs, js.Convert.Entries = st.Compiles, st.CompileTotal.Nanoseconds(), st.ConverterEntries
		js.Xcode.Hits, js.Xcode.Misses, js.Xcode.Coalesced = st.XcodeHits, st.XcodeMisses, st.XcodeCoalesced
		js.Xcode.Compiles, js.Xcode.Unsupported, js.Xcode.Entries = st.XcodeCompiles, st.XcodeUnsupported, st.XcodeEntries
		js.Warm.Fills, js.Warm.Hits = st.WarmFills, st.WarmHits
		js.Warm.PeerPulls, js.Warm.PeerPushes = st.PeerPulls, st.PeerPushes
		js.FastConverts, js.TreeConverts = st.FastConverts, st.TreeConverts
		js.Evictions, js.InFlight, js.DeadlineExceeded, js.Sheds = st.Evictions, st.InFlight, st.DeadlineExceeded, st.Sheds
		return emitJSON(out, js)
	}
	fmt.Fprintf(out, "compare:  %d hits, %d misses, %d coalesced, %d runs (%v total), %d cached verdicts\n",
		st.CompareHits, st.CompareMisses, st.CompareCoalesced, st.CompareRuns, st.CompareTotal, st.VerdictEntries)
	fmt.Fprintf(out, "convert:  %d hits, %d misses, %d coalesced, %d compiles (%v total), %d cached converters\n",
		st.ConvertHits, st.ConvertMisses, st.ConvertCoalesced, st.Compiles, st.CompileTotal, st.ConverterEntries)
	fmt.Fprintf(out, "xcode:    %d hits, %d misses, %d coalesced, %d compiles (%d unsupported), %d cached transcoders\n",
		st.XcodeHits, st.XcodeMisses, st.XcodeCoalesced, st.XcodeCompiles, st.XcodeUnsupported, st.XcodeEntries)
	fmt.Fprintf(out, "tiers:    %d conversions wire-to-wire, %d via value trees\n",
		st.FastConverts, st.TreeConverts)
	fmt.Fprintf(out, "warm:     %d peer-warmed fills, %d warm hits, %d peer pulls, %d peer pushes\n",
		st.WarmFills, st.WarmHits, st.PeerPulls, st.PeerPushes)
	fmt.Fprintf(out, "evictions: %d, in-flight: %d, server deadlines exceeded: %d, shed: %d\n",
		st.Evictions, st.InFlight, st.DeadlineExceeded, st.Sheds)
	return nil
}

func cmdRemoteHealth(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("remote health", flag.ContinueOnError)
	var tf transportFlags
	tf.register(fs)
	asJSON := fs.Bool("json", false, "emit JSON with stable field names")
	gw := fs.Bool("gateway", false, "read an interop gateway's health instead of a broker's")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gw {
		c := tf.dialGateway()
		defer c.Close()
		h, err := c.HealthContext(tf.ctx())
		if err != nil {
			return err
		}
		if *asJSON {
			return emitJSON(out, healthJSON{
				Ready: h.Ready, InFlight: h.InFlight, MaxInFlight: h.MaxInFlight,
				Sheds: h.Sheds, ConnSheds: h.ConnSheds, Panics: h.Panics,
				Expired: h.Expired, Canceled: h.Canceled,
				Routes: &h.Routes, Lanes: &h.Lanes,
				HeapBytes: h.HeapBytes, GCPauseNs: h.GCPauseNs, NumGC: h.NumGC,
			})
		}
		ready := "ready"
		if !h.Ready {
			ready = "draining"
		}
		fmt.Fprintf(out, "status:    %s\n", ready)
		fmt.Fprintf(out, "in-flight: %d of %s admitted\n", h.InFlight, inflightCap(h.MaxInFlight))
		fmt.Fprintf(out, "shed:      %d overload, %d per-connection\n", h.Sheds, h.ConnSheds)
		fmt.Fprintf(out, "panics:    %d recovered\n", h.Panics)
		fmt.Fprintf(out, "deadlines: %d expired, %d canceled\n", h.Expired, h.Canceled)
		fmt.Fprintf(out, "routes:    %d live, %d compiled lanes\n", h.Routes, h.Lanes)
		fmt.Fprintf(out, "memory:    %d heap bytes in use, %d GCs (%v paused)\n",
			h.HeapBytes, h.NumGC, time.Duration(h.GCPauseNs))
		return nil
	}
	c := tf.dial()
	defer c.Close()
	h, err := c.HealthContext(tf.ctx())
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(out, healthJSON{
			Ready: h.Ready, InFlight: h.InFlight, MaxInFlight: h.MaxInFlight,
			Sheds: h.Sheds, ConnSheds: h.ConnSheds, Panics: h.Panics,
			Expired: h.Expired, Canceled: h.Canceled,
			TranscoderEntries: &h.TranscoderEntries, Peers: &h.Peers,
			HeapBytes: h.HeapBytes, GCPauseNs: h.GCPauseNs, NumGC: h.NumGC,
		})
	}
	ready := "ready"
	if !h.Ready {
		ready = "draining"
	}
	fmt.Fprintf(out, "status:    %s\n", ready)
	fmt.Fprintf(out, "in-flight: %d of %s admitted\n", h.InFlight, inflightCap(h.MaxInFlight))
	fmt.Fprintf(out, "shed:      %d overload, %d per-connection\n", h.Sheds, h.ConnSheds)
	fmt.Fprintf(out, "panics:    %d recovered\n", h.Panics)
	fmt.Fprintf(out, "deadlines: %d expired, %d canceled\n", h.Expired, h.Canceled)
	fmt.Fprintf(out, "xcoders:   %d cached\n", h.TranscoderEntries)
	fmt.Fprintf(out, "peers:     %d cluster peers\n", h.Peers)
	fmt.Fprintf(out, "memory:    %d heap bytes in use, %d GCs (%v paused)\n",
		h.HeapBytes, h.NumGC, time.Duration(h.GCPauseNs))
	return nil
}

// cmdRemoteReload asks an interop gateway to re-read its route table —
// the signal-free equivalent of SIGHUP on mbirdgw.
func cmdRemoteReload(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("remote reload", flag.ContinueOnError)
	var tf transportFlags
	tf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := tf.dialGateway()
	defer c.Close()
	n, err := c.Reload()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "reloaded: %d routes\n", n)
	return nil
}

// inflightCap renders the admission capacity, which may be unbounded.
func inflightCap(n int) string {
	if n <= 0 {
		return "unbounded"
	}
	return fmt.Sprint(n)
}

func cmdCluster(args []string, out io.Writer) error {
	if len(args) == 0 || args[0] != "status" {
		return fmt.Errorf("usage: mbird cluster status -cluster HOST:PORT,... [-json]")
	}
	return cmdClusterStatus(args[1:], out)
}

// clusterNodeJSON is one member's row in the stable -json shape of
// `mbird cluster status`. Unreachable members keep their addr and ring
// share but report reachable=false and carry the error.
type clusterNodeJSON struct {
	Addr         string  `json:"addr"`
	Reachable    bool    `json:"reachable"`
	Error        string  `json:"error,omitempty"`
	RingShare    float64 `json:"ring_share"`
	MembersAgree bool    `json:"members_agree"`
	Verdicts     int     `json:"verdicts"`
	Converters   int     `json:"converters"`
	Transcoders  int     `json:"transcoders"`
	Hits         int64   `json:"hits"`
	Sheds        int64   `json:"sheds"`
	Expired      int64   `json:"expired"`
	Canceled     int64   `json:"canceled"`
	Warm         struct {
		Fills      int64 `json:"fills"`
		Hits       int64 `json:"hits"`
		PeerPulls  int64 `json:"peer_pulls"`
		PeerPushes int64 `json:"peer_pushes"`
	} `json:"warm"`
	Peer struct {
		PullsSent   int64 `json:"pulls_sent"`
		PushesSent  int64 `json:"pushes_sent"`
		PushErrs    int64 `json:"push_errs"`
		PushDrops   int64 `json:"push_drops"`
		PushesRecv  int64 `json:"pushes_recv"`
		PullsServed int64 `json:"pulls_served"`
		ListsServed int64 `json:"lists_served"`
		Synced      int64 `json:"synced"`
	} `json:"peer"`
}

type clusterStatusJSON struct {
	Members []string          `json:"members"`
	Nodes   []clusterNodeJSON `json:"nodes"`
}

// membersEqual compares two member lists ignoring order.
func membersEqual(a, b []string) bool {
	ra, rb := cluster.NewRing(a), cluster.NewRing(b)
	am, bm := ra.Members(), rb.Members()
	if len(am) != len(bm) {
		return false
	}
	for i := range am {
		if am[i] != bm[i] {
			return false
		}
	}
	return true
}

func cmdClusterStatus(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cluster status", flag.ContinueOnError)
	var tf transportFlags
	tf.register(fs)
	members := fs.String("cluster", "", "comma-separated fleet member list")
	asJSON := fs.Bool("json", false, "emit JSON with stable field names")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var addrs []string
	for _, a := range strings.Split(*members, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("missing -cluster member list")
	}
	ring := cluster.NewRing(addrs)
	shares := ring.Shares(4096)

	js := clusterStatusJSON{Members: ring.Members(), Nodes: []clusterNodeJSON{}}
	for _, addr := range ring.Members() {
		row := clusterNodeJSON{Addr: addr, RingShare: shares[addr]}
		rc := resil.New(addr, resil.Options{
			CallTimeout: tf.timeout,
			DialTimeout: tf.dialTimeout,
			MaxAttempts: tf.retries,
		})
		err := func() error {
			bc := broker.NewTransportClient(rc)
			st, err := bc.Stats()
			if err != nil {
				return err
			}
			ctx, cancel := context.WithTimeout(context.Background(), gateway.DialTimeout)
			ns, err := cluster.FetchStatus(ctx, rc)
			cancel()
			if err != nil {
				return err
			}
			row.Reachable = true
			row.MembersAgree = membersEqual(ns.Members, addrs)
			row.Verdicts, row.Converters, row.Transcoders = st.VerdictEntries, st.ConverterEntries, st.XcodeEntries
			row.Hits = st.CompareHits + st.ConvertHits + st.XcodeHits
			row.Sheds = st.Sheds
			row.Warm.Fills, row.Warm.Hits = st.WarmFills, st.WarmHits
			row.Warm.PeerPulls, row.Warm.PeerPushes = st.PeerPulls, st.PeerPushes
			row.Peer.PullsSent, row.Peer.PushesSent = ns.PullsSent, ns.PushesSent
			row.Peer.PushErrs, row.Peer.PushDrops = ns.PushErrs, ns.PushDrops
			row.Peer.PushesRecv, row.Peer.PullsServed = ns.PushesRecv, ns.PullsServed
			row.Peer.ListsServed, row.Peer.Synced = ns.ListsServed, ns.Synced
			row.Expired, row.Canceled = ns.Expired, ns.Canceled
			return nil
		}()
		_ = rc.Close()
		if err != nil {
			row.Error = err.Error()
		}
		js.Nodes = append(js.Nodes, row)
	}
	if *asJSON {
		return emitJSON(out, js)
	}
	fmt.Fprintf(out, "cluster: %d members\n", len(js.Members))
	for _, n := range js.Nodes {
		if !n.Reachable {
			fmt.Fprintf(out, "node %-21s %4.1f%% of keyspace, unreachable: %s\n", n.Addr+":", 100*n.RingShare, n.Error)
			continue
		}
		fmt.Fprintf(out, "node %-21s %4.1f%% of keyspace, %d verdicts / %d converters / %d xcoders cached, %d hits (%d warm), %d shed, %d expired, %d canceled\n",
			n.Addr+":", 100*n.RingShare, n.Verdicts, n.Converters, n.Transcoders, n.Hits, n.Warm.Hits, n.Sheds, n.Expired, n.Canceled)
		fmt.Fprintf(out, "  warm: %d fills, %d pulls sent / %d served, %d pushes sent / %d recv (%d errs, %d drops), %d synced at start\n",
			n.Warm.Fills, n.Peer.PullsSent, n.Peer.PullsServed, n.Peer.PushesSent, n.Peer.PushesRecv,
			n.Peer.PushErrs, n.Peer.PushDrops, n.Peer.Synced)
		if !n.MembersAgree {
			fmt.Fprintf(out, "  WARNING: member list disagrees with -cluster\n")
		}
	}
	return nil
}
