// Command mbird is the Mockingbird stub compiler: it parses pairs of
// declarations (C, Java, CORBA IDL), applies annotation scripts, lowers
// both sides to Mtypes, runs the Comparer, and emits Go stub source —
// the Figure 6 pipeline as a command-line tool.
//
// Usage:
//
//	mbird parse   -lang c|java|idl [-model ilp32|lp64] [-script file] file
//	mbird mtype   -lang ... [-script file] -decl NAME file
//	mbird compare -a-lang L -a-file F [-a-script S] -a-decl D \
//	              -b-lang L -b-file F [-b-script S] -b-decl D
//	mbird emit    (compare flags) -pkg NAME -func NAME
//	mbird save    (compare flags) -out project.json
//	mbird show    project.json
//
// compare prints the relation (equivalent, subtype, or a mismatch
// diagnosis); emit prints the generated request-direction converter for
// an equivalent pair.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cmem"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/plan"
	"repro/internal/project"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mbird:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mbird <parse|mtype|compare|emit|save|show> ...")
	}
	switch args[0] {
	case "parse":
		return cmdParse(args[1:], out)
	case "mtype":
		return cmdMtype(args[1:], out)
	case "compare":
		return cmdCompare(args[1:], out)
	case "emit":
		return cmdEmit(args[1:], out)
	case "save":
		return cmdSave(args[1:], out)
	case "show":
		return cmdShow(args[1:], out)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// side describes one declaration side's flags.
type side struct {
	lang, file, script, decl, model string
}

func (s *side) register(fs *flag.FlagSet, prefix string) {
	fs.StringVar(&s.lang, prefix+"lang", "", "language: c, java, or idl")
	fs.StringVar(&s.file, prefix+"file", "", "declaration source file")
	fs.StringVar(&s.script, prefix+"script", "", "annotation script file (optional)")
	fs.StringVar(&s.decl, prefix+"decl", "", "declaration name")
	fs.StringVar(&s.model, prefix+"model", "ilp32", "C data model: ilp32 or lp64")
}

// load parses the side's file into the session under the given universe
// name and applies its annotation script.
func (s *side) load(sess *core.Session, universe string) error {
	if s.lang == "" || s.file == "" {
		return fmt.Errorf("missing -%slang/-%sfile", universe, universe)
	}
	src, err := os.ReadFile(s.file)
	if err != nil {
		return err
	}
	model := cmem.ILP32
	if s.model == "lp64" {
		model = cmem.LP64
	}
	switch s.lang {
	case "c":
		err = sess.LoadC(universe, string(src), model)
	case "java":
		err = sess.LoadJava(universe, string(src))
	case "idl":
		err = sess.LoadIDL(universe, string(src))
	default:
		return fmt.Errorf("unknown language %q", s.lang)
	}
	if err != nil {
		return err
	}
	if s.script != "" {
		script, err := os.ReadFile(s.script)
		if err != nil {
			return err
		}
		if _, err := sess.Annotate(universe, string(script)); err != nil {
			return err
		}
	}
	return nil
}

func cmdParse(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("parse", flag.ContinueOnError)
	var s side
	s.register(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mbird parse -lang L [flags] file")
	}
	s.file = fs.Arg(0)
	sess := core.NewSession()
	if err := s.load(sess, "u"); err != nil {
		return err
	}
	names, err := sess.DeclNames("u")
	if err != nil {
		return err
	}
	for _, n := range names {
		d := sess.Universe("u").Lookup(n)
		fmt.Fprintf(out, "%-30s %s\n", n, d.Type)
	}
	return nil
}

func cmdMtype(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mtype", flag.ContinueOnError)
	var s side
	s.register(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || s.decl == "" {
		return fmt.Errorf("usage: mbird mtype -lang L -decl NAME [flags] file")
	}
	s.file = fs.Arg(0)
	sess := core.NewSession()
	if err := s.load(sess, "u"); err != nil {
		return err
	}
	mt, err := sess.Mtype("u", s.decl)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, mt)
	return nil
}

// loadPair builds a session with both sides loaded.
func loadPair(args []string, requireDecls bool, extra func(fs *flag.FlagSet)) (*core.Session, *side, *side, error) {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	var a, b side
	a.register(fs, "a-")
	b.register(fs, "b-")
	if extra != nil {
		extra(fs)
	}
	if err := fs.Parse(args); err != nil {
		return nil, nil, nil, err
	}
	sess := core.NewSession()
	if err := a.load(sess, "a"); err != nil {
		return nil, nil, nil, err
	}
	if err := b.load(sess, "b"); err != nil {
		return nil, nil, nil, err
	}
	if requireDecls && (a.decl == "" || b.decl == "") {
		return nil, nil, nil, fmt.Errorf("missing -a-decl/-b-decl")
	}
	return sess, &a, &b, nil
}

func cmdCompare(args []string, out io.Writer) error {
	sess, a, b, err := loadPair(args, true, nil)
	if err != nil {
		return err
	}
	v, err := sess.Compare("a", a.decl, "b", b.decl)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "relation: %s (%d comparison steps)\n", v.Relation, v.Steps)
	if v.Relation == core.RelNone {
		fmt.Fprintf(out, "diagnosis:\n%s", v.Explain)
		return fmt.Errorf("declarations do not match")
	}
	mtA, _ := sess.Mtype("a", a.decl)
	mtB, _ := sess.Mtype("b", b.decl)
	fmt.Fprintf(out, "left  mtype: %s\n", mtA)
	fmt.Fprintf(out, "right mtype: %s\n", mtB)
	return nil
}

func cmdEmit(args []string, out io.Writer) error {
	var pkg, funcName string
	sess, a, b, err := loadPair(args, true, func(fs *flag.FlagSet) {
		fs.StringVar(&pkg, "pkg", "stubs", "package name for the generated file")
		fs.StringVar(&funcName, "func", "Convert", "exported converter name")
	})
	if err != nil {
		return err
	}
	v, err := sess.Compare("a", a.decl, "b", b.decl)
	if err != nil {
		return err
	}
	if v.Relation == core.RelNone {
		return fmt.Errorf("declarations do not match:\n%s", v.Explain)
	}
	p, err := plan.Build(v.Match)
	if err != nil {
		return err
	}
	src, err := gen.Converter(p, pkg, funcName)
	if err != nil {
		return err
	}
	fmt.Fprint(out, src)
	return nil
}

func cmdSave(args []string, out io.Writer) error {
	var outPath string
	sess, _, _, err := loadPair(args, false, func(fs *flag.FlagSet) {
		fs.StringVar(&outPath, "out", "", "project file to write")
	})
	if err != nil {
		return err
	}
	if outPath == "" {
		return fmt.Errorf("missing -out")
	}
	data, err := project.Save(sess)
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "saved %d universes to %s\n", len(sess.Universes()), outPath)
	return nil
}

func cmdShow(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: mbird show project.json")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	sess, err := project.Load(data)
	if err != nil {
		return err
	}
	for _, uname := range sess.Universes() {
		u := sess.Universe(uname)
		fmt.Fprintf(out, "universe %s (%s):\n", uname, u.Lang())
		names, err := sess.DeclNames(uname)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintf(out, "  %-28s %s\n", n, u.Lookup(n).Type)
		}
	}
	return nil
}
