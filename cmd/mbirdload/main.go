// Command mbirdload is the saturation harness: it drives a mockingbird
// broker daemon (mbirdd) or interop gateway (mbirdgw) with open- or
// closed-loop load across the execution tiers and reports HDR-style
// latency percentiles, achieved throughput, and server-side stat deltas.
//
// Closed-loop runs (-mode closed) hold a fixed worker count issuing
// back-to-back calls and answer "how fast can it go"; open-loop runs
// (-mode open -rate N) issue calls on a fixed arrival schedule and
// answer "how does it behave at rate N" without coordinated omission —
// each call's latency is measured from its scheduled send time, so
// queueing behind a server stall is charged to the percentiles.
//
// Tiers:
//
//	compare   broker cached compare (verdict-cache hit path)
//	convert   broker fast-tier convert (fused wire-to-wire transcode)
//	batch     broker batch convert (-batch items per request)
//	gw-pass   gateway passthrough relay (no lanes)
//	gw-fused  gateway relay with fused request+reply lanes
//	gw-tree   gateway relay with a semantic-hook lane (tree engine)
//	gw-stream gateway streaming relay: stream-opened calls carrying a
//	          sequence payload over the chunk-by-chunk lane
//
// With no -addr, mbirdload runs self-contained: it starts an in-process
// daemon (broker tiers) or gateway + echo upstream (gw-* tiers) on a
// loopback listener and drives that. With -addr it drives an external
// daemon; gw-* tiers then expect the gateway's route at -key/-op to
// accept the harness's fixture payloads (see README).
//
// -json emits the run record as one JSON object on stdout;
// -bench-file FILE appends the record to FILE (BENCH_load.json shape),
// creating it if missing, so perf trajectories accumulate across runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/loadgen"
	"repro/internal/orb"
	"repro/internal/value"
	"repro/internal/wire"
)

type config struct {
	tier     string
	mode     string
	conc     int
	rate     float64
	duration time.Duration
	warmup   time.Duration
	fields   int
	batch    int
	addr     string
	key      string
	op       uint
	asJSON   bool
	file     string
	note     string
	failErrs bool
}

func parseFlags(name string, args []string, errw io.Writer) (config, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(errw)
	var cfg config
	fs.StringVar(&cfg.tier, "tier", "", "workload tier: compare, convert, batch, gw-pass, gw-fused, gw-tree, gw-stream")
	fs.StringVar(&cfg.mode, "mode", "closed", "loop shape: closed (throughput ceiling) or open (fixed arrival rate)")
	fs.IntVar(&cfg.conc, "c", 8, "workers (closed: multiprogramming level; open: max outstanding)")
	fs.Float64Var(&cfg.rate, "rate", 0, "open-loop arrival rate in calls/s (required for -mode open)")
	fs.DurationVar(&cfg.duration, "duration", 3*time.Second, "measured run length")
	fs.DurationVar(&cfg.warmup, "warmup", 500*time.Millisecond, "unrecorded warmup before measuring")
	fs.IntVar(&cfg.fields, "fields", 0, "synthetic struct width for broker tiers (0 = 64) and gw-fused lanes (0 = small fixture); sequence length for gw-stream (0 = 8192 elements)")
	fs.IntVar(&cfg.batch, "batch", 16, "items per request for -tier batch")
	fs.StringVar(&cfg.addr, "addr", "", "external daemon address (empty = start an in-process target)")
	fs.StringVar(&cfg.key, "key", "svc", "object key for gw-* tiers against an external gateway")
	fs.UintVar(&cfg.op, "op", 1, "operation number for gw-* tiers against an external gateway")
	fs.BoolVar(&cfg.asJSON, "json", false, "emit the run record as JSON on stdout")
	fs.StringVar(&cfg.file, "bench-file", "", "append the run record to this BENCH_load.json file")
	fs.StringVar(&cfg.note, "note", "", "free-form note recorded with the run")
	fs.BoolVar(&cfg.failErrs, "fail-on-errors", false, "exit nonzero if any operation failed")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.tier == "" {
		fs.Usage()
		return cfg, fmt.Errorf("missing required -tier")
	}
	return cfg, nil
}

// healthSnap is the slice of server health the harness records deltas
// of across a run.
type healthSnap struct {
	sheds, expired       int64
	heapBytes, gcPauseNs int64
	numGC                int64
}

// target is one ready-to-drive workload: the operation under load plus
// server-side snapshot and teardown hooks.
type target struct {
	op           loadgen.Op
	payloadBytes int
	health       func() (healthSnap, error) // nil when the target exposes none
	close        func()
}

// synthSrc builds a permuted-field-name C struct pair wide enough to
// give the cold path real work; the pair is structurally equivalent, so
// compares cache and converts fuse.
func synthSrc(fields int) (a, b string) {
	var sa, sb strings.Builder
	kinds := []string{"int", "float", "short", "double"}
	sa.WriteString("typedef struct {\n")
	sb.WriteString("typedef struct {\n")
	for i := 0; i < fields; i++ {
		fmt.Fprintf(&sa, "  %s f%d;\n", kinds[i%len(kinds)], i)
		fmt.Fprintf(&sb, "  %s g%d;\n", kinds[i%len(kinds)], i)
	}
	sa.WriteString("} big;\n")
	sb.WriteString("} big;\n")
	return sa.String(), sb.String()
}

// synthValue builds a value matching synthSrc's field cycle.
func synthValue(fields int) value.Value {
	vs := make([]value.Value, fields)
	for i := range vs {
		switch i % 4 {
		case 0, 2: // int, short
			vs[i] = value.NewInt(int64(i % 100))
		default: // float, double
			vs[i] = value.Real{V: float64(i) + 0.25}
		}
	}
	return value.NewRecord(vs...)
}

// lowerPayload lowers a declaration locally and marshals v against it.
func lowerPayload(d gateway.DeclConfig, v value.Value) ([]byte, error) {
	g := gateway.New(gateway.Options{})
	defer g.Close()
	mt, err := g.Lower(&d)
	if err != nil {
		return nil, err
	}
	return wire.Marshal(mt, v)
}

// Small fixture pair that fuses wire-to-wire (permuted but equivalent).
func mixDecl() gateway.DeclConfig {
	return gateway.DeclConfig{Lang: "c", Source: "typedef struct { float r; int n; } mix;", Decl: "mix"}
}
func pairDecl() gateway.DeclConfig {
	return gateway.DeclConfig{Lang: "c", Source: "typedef struct { int count; float ratio; } pair;", Decl: "pair"}
}

// setupBroker prepares the compare/convert/batch tiers: an external
// daemon at cfg.addr or an in-process one, universes loaded and the
// pair warmed, one orb connection per worker.
func setupBroker(cfg config) (*target, error) {
	fields := cfg.fields
	if fields <= 0 {
		fields = 64
	}
	srcA, srcB := synthSrc(fields)

	addr := cfg.addr
	t := &target{close: func() {}}
	if addr == "" {
		srv, err := orb.NewServer("127.0.0.1:0", orb.WithBufPooling())
		if err != nil {
			return nil, err
		}
		broker.Serve(srv, broker.New(core.NewSession(), broker.Options{}))
		addr = srv.Addr()
		t.close = func() { _ = srv.Close() }
	}

	admin, err := broker.DialClient(addr)
	if err != nil {
		t.close()
		return nil, err
	}
	closers := []func(){t.close, func() { _ = admin.Close() }}
	t.close = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	t.health = func() (healthSnap, error) {
		h, err := admin.Health()
		if err != nil {
			return healthSnap{}, err
		}
		return healthSnap{
			sheds: h.Sheds + h.ConnSheds, expired: h.Expired,
			heapBytes: h.HeapBytes, gcPauseNs: h.GCPauseNs, numGC: h.NumGC,
		}, nil
	}

	if _, _, err := admin.Load("a", "c", "ilp32", srcA, ""); err != nil {
		t.close()
		return nil, fmt.Errorf("load universe a: %w", err)
	}
	if _, _, err := admin.Load("b", "c", "ilp32", srcB, ""); err != nil {
		t.close()
		return nil, fmt.Errorf("load universe b: %w", err)
	}
	// Warm the verdict cache so the measured loop is the cached tier.
	if _, err := admin.Compare("a", "big", "b", "big"); err != nil {
		t.close()
		return nil, fmt.Errorf("warm compare: %w", err)
	}

	clients := make([]*broker.Client, cfg.conc)
	for i := range clients {
		c, err := broker.DialClient(addr)
		if err != nil {
			t.close()
			return nil, err
		}
		clients[i] = c
		closers = append(closers, func() { _ = c.Close() })
	}

	switch cfg.tier {
	case "compare":
		t.op = func(ctx context.Context, w int) error {
			_, err := clients[w].CompareContext(ctx, "a", "big", "b", "big")
			return err
		}
	case "convert", "batch":
		payload, err := lowerPayload(
			gateway.DeclConfig{Lang: "c", Source: srcA, Decl: "big"}, synthValue(fields))
		if err != nil {
			t.close()
			return nil, fmt.Errorf("build payload: %w", err)
		}
		t.payloadBytes = len(payload)
		if cfg.tier == "convert" {
			t.op = func(ctx context.Context, w int) error {
				_, err := clients[w].ConvertRawContext(ctx, "a", "big", "b", "big", payload)
				return err
			}
		} else {
			n := cfg.batch
			if n <= 0 {
				n = 1
			}
			payloads := make([][]byte, n)
			for i := range payloads {
				payloads[i] = payload
			}
			t.payloadBytes = len(payload) * n
			t.op = func(ctx context.Context, w int) error {
				_, err := clients[w].ConvertBatchRawContext(ctx, "a", "big", "b", "big", payloads)
				return err
			}
		}
	default:
		t.close()
		return nil, fmt.Errorf("unknown broker tier %q", cfg.tier)
	}
	return t, nil
}

// setupGateway prepares the gw-pass/gw-fused/gw-tree tiers. Without
// -addr it starts an echo upstream and a gateway routing to it; the
// route shape follows the tier. With -addr it drives the external
// gateway's (-key, -op) route with the same fixture payload the
// self-contained shape uses.
func setupGateway(cfg config) (*target, error) {
	key, op := cfg.key, uint32(cfg.op)

	// Fixture payload + lane config per tier.
	var (
		payload []byte
		err     error
		routeFn func(upstream string) (*gateway.Config, *core.Session)
		gwOpts  gateway.Options
	)
	switch cfg.tier {
	case "gw-pass":
		payload, err = lowerPayload(mixDecl(), value.NewRecord(value.Real{V: 1.5}, value.NewInt(7)))
		routeFn = func(up string) (*gateway.Config, *core.Session) {
			return &gateway.Config{Upstream: up, Routes: []gateway.RouteConfig{{Key: key, Op: op}}}, nil
		}
	case "gw-fused":
		from, to := mixDecl(), pairDecl()
		v := value.Value(value.NewRecord(value.Real{V: 1.5}, value.NewInt(7)))
		if cfg.fields > 0 {
			srcA, srcB := synthSrc(cfg.fields)
			from = gateway.DeclConfig{Lang: "c", Source: srcA, Decl: "big"}
			to = gateway.DeclConfig{Lang: "c", Source: srcB, Decl: "big"}
			v = synthValue(cfg.fields)
		}
		payload, err = lowerPayload(from, v)
		routeFn = func(up string) (*gateway.Config, *core.Session) {
			return &gateway.Config{Upstream: up, Routes: []gateway.RouteConfig{{
				Key: key, Op: op,
				Request: &gateway.LaneConfig{From: from, To: to},
				Reply:   &gateway.LaneConfig{From: to, To: from},
			}}}, nil
		}
	case "gw-tree":
		slope := gateway.DeclConfig{Lang: "java", Source: "class SlopeLine { double slope; double intercept; }", Decl: "SlopeLine"}
		seg := gateway.DeclConfig{
			Lang: "java",
			Source: `class Pt { double x; double y; }
				class SegLine { Pt a; Pt b; }`,
			Script: "annotate SegLine.a nonnull noalias\nannotate SegLine.b nonnull noalias\n",
			Decl:   "SegLine",
		}
		payload, err = lowerPayload(slope, value.NewRecord(value.Real{V: 2}, value.Real{V: -1}))
		routeFn = func(up string) (*gateway.Config, *core.Session) {
			sess := core.NewSession()
			sess.RegisterSemantic("SlopeLine", "SegLine", "slope→seg", func(v value.Value) (value.Value, error) {
				rec, ok := v.(value.Record)
				if !ok || len(rec.Fields) != 2 {
					return nil, fmt.Errorf("want slope/intercept record, got %s", v)
				}
				m := rec.Fields[0].(value.Real).V
				c := rec.Fields[1].(value.Real).V
				pt := func(x float64) value.Value {
					return value.NewRecord(value.Real{V: x}, value.Real{V: m*x + c})
				}
				return value.NewRecord(pt(0), pt(1)), nil
			})
			return &gateway.Config{Upstream: up, Routes: []gateway.RouteConfig{{
				Key: key, Op: op,
				Request: &gateway.LaneConfig{From: slope, To: seg},
			}}}, sess
		}
	case "gw-stream":
		// Sequence-of-records pair with permuted fields: fuses with a
		// streamable list root, so over-threshold stream-opened calls
		// relay chunk-by-chunk through the request lane.
		from := gateway.DeclConfig{Lang: "idl",
			Source: "struct Rec { long n; double x; };\ntypedef sequence<Rec> Batch;", Decl: "Batch"}
		to := gateway.DeclConfig{Lang: "idl",
			Source: "struct Rec { double x; long n; };\ntypedef sequence<Rec> Batch;", Decl: "Batch"}
		elems := cfg.fields
		if elems <= 0 {
			elems = 8192
		}
		vs := make([]value.Value, elems)
		for i := range vs {
			vs[i] = value.NewRecord(value.NewInt(int64(i)), value.Real{V: float64(i) + 0.5})
		}
		payload, err = lowerPayload(from, value.FromSlice(vs))
		// Keep the self-contained threshold under the fixture payload so
		// the measured loop is the streaming lane, not the buffered divert.
		gwOpts.StreamThreshold = 64 << 10
		routeFn = func(up string) (*gateway.Config, *core.Session) {
			return &gateway.Config{Upstream: up, Routes: []gateway.RouteConfig{{
				Key: key, Op: op,
				Request: &gateway.LaneConfig{From: from, To: to},
			}}}, nil
		}
	default:
		return nil, fmt.Errorf("unknown gateway tier %q", cfg.tier)
	}
	if err != nil {
		return nil, fmt.Errorf("build payload: %w", err)
	}

	addr := cfg.addr
	t := &target{payloadBytes: len(payload), close: func() {}}
	var closers []func()
	if addr == "" {
		up, err := orb.NewServer("127.0.0.1:0", orb.WithBufPooling())
		if err != nil {
			return nil, err
		}
		closers = append(closers, func() { _ = up.Close() })
		up.Register(key, func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })
		up.RegisterStream(key, func(ctx context.Context, op uint32, in *orb.StreamReader, out *orb.StreamWriter) error {
			buf := make([]byte, 64<<10)
			for {
				n, err := in.Read(buf)
				if n > 0 {
					if _, werr := out.Write(buf[:n]); werr != nil {
						return werr
					}
				}
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
			}
		})

		gwCfg, sess := routeFn(up.Addr())
		gwOpts.Session = sess
		g := gateway.New(gwOpts)
		closers = append(closers, func() { _ = g.Close() })
		if err := g.SetConfig(gwCfg); err != nil {
			for _, c := range closers {
				c()
			}
			return nil, err
		}
		srv, err := orb.NewServer("127.0.0.1:0", orb.WithBufPooling())
		if err != nil {
			for _, c := range closers {
				c()
			}
			return nil, err
		}
		closers = append(closers, func() { _ = srv.Close() })
		g.Serve(srv)
		addr = srv.Addr()
	}
	t.close = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}

	admin, err := gateway.DialClient(addr)
	if err != nil {
		t.close()
		return nil, err
	}
	closers = append(closers, func() { _ = admin.Close() })
	t.health = func() (healthSnap, error) {
		h, err := admin.Health()
		if err != nil {
			return healthSnap{}, err
		}
		return healthSnap{
			sheds: h.Sheds + h.ConnSheds, expired: h.Expired,
			heapBytes: h.HeapBytes, gcPauseNs: h.GCPauseNs, numGC: h.NumGC,
		}, nil
	}

	clients := make([]*orb.Client, cfg.conc)
	for i := range clients {
		c, err := orb.Dial(addr)
		if err != nil {
			t.close()
			return nil, err
		}
		clients[i] = c
		closers = append(closers, func() { _ = c.Close() })
	}
	if cfg.tier == "gw-stream" {
		bufs := make([][]byte, cfg.conc)
		for i := range bufs {
			bufs[i] = make([]byte, 64<<10)
		}
		const chunk = 32 << 10
		t.op = func(ctx context.Context, w int) error {
			sc, err := clients[w].OpenStream(ctx, key, op)
			if err != nil {
				return err
			}
			defer func() { _ = sc.Close() }()
			for off := 0; off < len(payload); off += chunk {
				end := off + chunk
				if end > len(payload) {
					end = len(payload)
				}
				if _, err := sc.Write(payload[off:end]); err != nil {
					return err
				}
			}
			if err := sc.CloseSend(); err != nil {
				return err
			}
			for {
				_, err := sc.Read(bufs[w])
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
			}
		}
		return t, nil
	}
	t.op = func(ctx context.Context, w int) error {
		_, err := clients[w].InvokeContext(ctx, key, op, payload)
		return err
	}
	return t, nil
}

// serverJSON is the server-side delta slice of a run record.
type serverJSON struct {
	Sheds        int64 `json:"sheds"`
	Expired      int64 `json:"expired"`
	HeapBytes    int64 `json:"heap_bytes"`
	GCPauseDelta int64 `json:"gc_pause_delta_ns"`
	GCs          int64 `json:"gcs"`
}

// record is the stable BENCH_load.json row for one run.
type record struct {
	Date        string      `json:"date"`
	Note        string      `json:"note,omitempty"`
	Tier        string      `json:"tier"`
	Target      string      `json:"target"`
	Mode        string      `json:"mode"`
	Concurrency int         `json:"concurrency"`
	TargetRate  float64     `json:"target_rate,omitempty"`
	DurationS   float64     `json:"duration_s"`
	Ops         int64       `json:"ops"`
	Errors      int64       `json:"errors"`
	Throughput  float64     `json:"throughput"`
	Fields      int         `json:"fields,omitempty"`
	Batch       int         `json:"batch,omitempty"`
	PayloadB    int         `json:"payload_bytes,omitempty"`
	P50us       float64     `json:"p50_us"`
	P90us       float64     `json:"p90_us"`
	P99us       float64     `json:"p99_us"`
	P999us      float64     `json:"p999_us"`
	MaxUs       float64     `json:"max_us"`
	Server      *serverJSON `json:"server,omitempty"`
}

// benchFile is the BENCH_load.json envelope.
type benchFile struct {
	Description string   `json:"description"`
	Records     []record `json:"records"`
}

const benchDescription = "Saturation runs from cmd/mbirdload: open-/closed-loop load against mbirdd (compare/convert/batch tiers) and mbirdgw (passthrough/fused/tree relay tiers). Open-loop latencies are schedule-anchored (no coordinated omission). Regenerate with: go run ./cmd/mbirdload -tier TIER -mode open -rate N -json -bench-file BENCH_load.json"

func appendRecord(path string, r record) error {
	var bf benchFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &bf); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if bf.Description == "" {
		bf.Description = benchDescription
	}
	bf.Records = append(bf.Records, r)
	out, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func run(cfg config, out io.Writer) error {
	var (
		t   *target
		err error
	)
	switch cfg.tier {
	case "compare", "convert", "batch":
		t, err = setupBroker(cfg)
	case "gw-pass", "gw-fused", "gw-tree", "gw-stream":
		t, err = setupGateway(cfg)
	default:
		return fmt.Errorf("unknown tier %q (want compare, convert, batch, gw-pass, gw-fused, gw-tree, gw-stream)", cfg.tier)
	}
	if err != nil {
		return err
	}
	defer t.close()

	var before healthSnap
	haveHealth := false
	if t.health != nil {
		if before, err = t.health(); err != nil {
			return fmt.Errorf("health before run: %w", err)
		}
		haveHealth = true
	}

	res, err := loadgen.Run(context.Background(), loadgen.Options{
		Mode:        loadgen.Mode(cfg.mode),
		Concurrency: cfg.conc,
		Rate:        cfg.rate,
		Duration:    cfg.duration,
		Warmup:      cfg.warmup,
	}, t.op)
	if err != nil {
		return err
	}
	if res.Ops == 0 {
		return fmt.Errorf("no operations completed (last error: %v)", res.LastErr)
	}

	targetName := cfg.addr
	if targetName == "" {
		targetName = "self"
	}
	rec := record{
		Date: time.Now().Format("2006-01-02"), Note: cfg.note,
		Tier: cfg.tier, Target: targetName, Mode: string(res.Mode),
		Concurrency: res.Concurrency, TargetRate: res.TargetRate,
		DurationS: res.Elapsed.Seconds(), Ops: res.Ops, Errors: res.Errors,
		Throughput: res.Throughput, Fields: cfg.fields, PayloadB: t.payloadBytes,
		P50us:  usec(res.Hist.Percentile(0.50)),
		P90us:  usec(res.Hist.Percentile(0.90)),
		P99us:  usec(res.Hist.Percentile(0.99)),
		P999us: usec(res.Hist.Percentile(0.999)),
		MaxUs:  usec(res.Hist.Max()),
	}
	if cfg.tier == "batch" {
		rec.Batch = cfg.batch
	}
	if haveHealth {
		after, err := t.health()
		if err != nil {
			return fmt.Errorf("health after run: %w", err)
		}
		rec.Server = &serverJSON{
			Sheds:        after.sheds - before.sheds,
			Expired:      after.expired - before.expired,
			HeapBytes:    after.heapBytes,
			GCPauseDelta: after.gcPauseNs - before.gcPauseNs,
			GCs:          after.numGC - before.numGC,
		}
	}

	if cfg.asJSON {
		enc := json.NewEncoder(out)
		if err := enc.Encode(rec); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "tier %s against %s, %s loop, %d workers", cfg.tier, targetName, rec.Mode, rec.Concurrency)
		if rec.TargetRate > 0 {
			fmt.Fprintf(out, ", %.0f/s offered", rec.TargetRate)
		}
		fmt.Fprintf(out, ", %.1fs\n", rec.DurationS)
		fmt.Fprintf(out, "throughput: %.0f/s (%d ops, %d errors)\n", rec.Throughput, rec.Ops, rec.Errors)
		fmt.Fprintf(out, "latency:    %s\n", res.Hist.String())
		if rec.Server != nil {
			fmt.Fprintf(out, "server:     %d shed, %d expired, %d GCs (%v paused), %d heap bytes in use\n",
				rec.Server.Sheds, rec.Server.Expired, rec.Server.GCs,
				time.Duration(rec.Server.GCPauseDelta), rec.Server.HeapBytes)
		}
	}
	if cfg.file != "" {
		if err := appendRecord(cfg.file, rec); err != nil {
			return err
		}
	}
	if res.Errors > 0 {
		if cfg.failErrs {
			return fmt.Errorf("%d of %d operations failed (last: %v)", res.Errors, res.Ops, res.LastErr)
		}
		fmt.Fprintf(os.Stderr, "mbirdload: warning: %d of %d operations failed (last: %v)\n", res.Errors, res.Ops, res.LastErr)
	}
	return nil
}

func main() {
	cfg, err := parseFlags("mbirdload", os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mbirdload:", err)
		os.Exit(1)
	}
}
