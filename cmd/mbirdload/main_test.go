package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// shortCfg is a sub-second run against an in-process target, enough to
// prove the tier wiring end to end.
func shortCfg(tier string) config {
	return config{
		tier: tier, mode: "closed", conc: 2,
		duration: 200 * time.Millisecond, warmup: 50 * time.Millisecond,
		batch: 4, key: "svc", op: 1, asJSON: true, failErrs: true,
	}
}

// TestAllTiersSelf drives every tier self-contained and checks the JSON
// record: operations completed, none failed, percentiles populated, and
// the server delta present.
func TestAllTiersSelf(t *testing.T) {
	for _, tier := range []string{"compare", "convert", "batch", "gw-pass", "gw-fused", "gw-tree"} {
		t.Run(tier, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(shortCfg(tier), &buf); err != nil {
				t.Fatal(err)
			}
			var rec record
			if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
				t.Fatalf("bad JSON %q: %v", buf.String(), err)
			}
			if rec.Ops == 0 || rec.Errors != 0 {
				t.Fatalf("ops=%d errors=%d", rec.Ops, rec.Errors)
			}
			if rec.P50us <= 0 || rec.P999us < rec.P50us || rec.MaxUs < rec.P999us {
				t.Fatalf("percentiles not monotone: p50=%v p999=%v max=%v", rec.P50us, rec.P999us, rec.MaxUs)
			}
			if rec.Server == nil {
				t.Fatal("record lacks server delta")
			}
			if rec.Server.HeapBytes == 0 {
				t.Fatal("server delta reports zero heap")
			}
			if rec.Tier != tier || rec.Target != "self" {
				t.Fatalf("record tier=%q target=%q", rec.Tier, rec.Target)
			}
		})
	}
}

// TestOpenLoopSelf exercises the open-loop path against the gateway
// passthrough tier at a modest offered rate.
func TestOpenLoopSelf(t *testing.T) {
	cfg := shortCfg("gw-pass")
	cfg.mode = "open"
	cfg.rate = 500
	cfg.conc = 8
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Mode != "open" || rec.TargetRate != 500 {
		t.Fatalf("mode=%q target_rate=%v", rec.Mode, rec.TargetRate)
	}
	if rec.Ops == 0 || rec.Errors != 0 {
		t.Fatalf("ops=%d errors=%d", rec.Ops, rec.Errors)
	}
}

// TestBenchFileAppend checks the read-modify-write BENCH_load.json
// cycle: a fresh file gains the envelope, a second run appends.
func TestBenchFileAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	cfg := shortCfg("compare")
	cfg.file = path
	cfg.note = "first"
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	cfg.note = "second"
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		t.Fatal(err)
	}
	if bf.Description == "" {
		t.Error("bench file lacks description")
	}
	if len(bf.Records) != 2 || bf.Records[0].Note != "first" || bf.Records[1].Note != "second" {
		t.Fatalf("records = %+v", bf.Records)
	}
}

// TestBadFlags covers the tier and mode validation paths.
func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if _, err := parseFlags("mbirdload", []string{}, &buf); err == nil {
		t.Error("missing -tier accepted")
	}
	cfg := shortCfg("nope")
	if err := run(cfg, &buf); err == nil {
		t.Error("unknown tier accepted")
	}
	cfg = shortCfg("compare")
	cfg.mode = "open" // no rate
	if err := run(cfg, &buf); err == nil {
		t.Error("open mode without rate accepted")
	}
}
