package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gateway"
	"repro/internal/orb"
	"repro/internal/value"
	"repro/internal/wire"
)

// TestGatewayDaemonEndToEnd runs the whole daemon in-process: a route
// table on disk (with file-referenced declaration sources), an upstream
// speaking declaration B, a client speaking declaration A, and a
// file-driven reload.
func TestGatewayDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	mustWrite := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite("mix.h", "typedef struct { float r; int n; } mix;")
	mustWrite("pair.h", "typedef struct { int count; float ratio; } pair;")

	// Upstream: an echo service expecting pair payloads.
	lowered := gateway.New(gateway.Options{})
	defer lowered.Close()
	pd := gateway.DeclConfig{Lang: "c", Source: "typedef struct { int count; float ratio; } pair;", Decl: "pair"}
	mtB, err := lowered.Lower(&pd)
	if err != nil {
		t.Fatal(err)
	}
	up, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	up.Register("svc", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		if _, err := wire.Unmarshal(mtB, body); err != nil {
			return nil, fmt.Errorf("upstream cannot decode: %w", err)
		}
		return body, nil
	})

	routes := func(extra string) string {
		return fmt.Sprintf(`{
  "upstream": %q,
  "routes": [
    {
      "name": "mix-to-pair", "key": "svc", "op": 7,
      "request": {"from": {"lang": "c", "file": "mix.h", "decl": "mix"},
                  "to":   {"lang": "c", "file": "pair.h", "decl": "pair"}},
      "reply":   {"from": {"lang": "c", "file": "pair.h", "decl": "pair"},
                  "to":   {"lang": "c", "file": "mix.h", "decl": "mix"}}
    }%s
  ]
}`, up.Addr(), extra)
	}
	routesPath := filepath.Join(dir, "routes.json")
	if err := os.WriteFile(routesPath, []byte(routes("")), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, g, err := serve(config{addr: "127.0.0.1:0", routes: routesPath})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer g.Close()

	md := gateway.DeclConfig{Lang: "c", Source: "typedef struct { float r; int n; } mix;", Decl: "mix"}
	mtA, err := lowered.Lower(&md)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.Marshal(mtA, value.NewRecord(value.Real{V: 2.5}, value.NewInt(3)))
	if err != nil {
		t.Fatal(err)
	}

	c, err := orb.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Invoke("svc", 7, payload)
	if err != nil {
		t.Fatal(err)
	}
	// mix → pair → mix is lossless for these fields: bytes round-trip.
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip % x, sent % x", got, payload)
	}

	// Reload from the rewritten file through the admin op, as `mbird
	// remote reload` and SIGHUP both do.
	ac := gateway.NewClient(c)
	if err := os.WriteFile(routesPath, []byte(routes(`,
    {"key": "extra", "op": 1}`)), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := ac.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("reload reported %d routes, want 2", n)
	}
	h, err := ac.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Ready || h.Routes != 2 {
		t.Fatalf("health after reload = %+v", h)
	}
	st, err := ac.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Routes) != 2 || st.Routes[0].FastTier+st.Routes[1].FastTier < 2 {
		t.Fatalf("stats after reload = %+v, want surviving fast-tier counters", st.Routes)
	}
}
