// Command mbirdgw is the Mockingbird interop gateway: an orb-framed
// proxy that bridges live traffic between endpoints speaking mismatched
// declarations. Clients connect to the gateway and marshal against
// their own declaration; the gateway transcodes each request to the
// upstream's declaration in flight — over the fused wire-to-wire fast
// path where the coercion plan permits, through the tree engine
// otherwise — and transcodes each reply back (see internal/gateway).
//
// Usage:
//
//	mbirdgw -routes FILE [-addr 127.0.0.1:7466]
//	        [-max-inflight N] [-admit-wait D] [-max-payload BYTES]
//	        [-max-body BYTES] [-max-per-conn N]
//	        [-stream-threshold BYTES]
//	        [-pool N] [-call-timeout D] [-dial-timeout D]
//	        [-retries N] [-hedge] [-drain D]
//
// -routes names the JSON route table (see gateway.Config). The table is
// hot-reloadable: SIGHUP — or the admin reload op, `mbird remote
// reload -gateway` — re-reads the file and swaps the table in atomically
// without dropping client connections; if the new table fails to
// compile, the old one keeps serving and the error is logged.
//
// Clients that open orb streams instead of sending buffered requests
// relay chunk-by-chunk once the request body outgrows -stream-threshold
// (default 1 MiB), so payload size stops being bounded by gateway
// memory; bodies within the threshold divert to the ordinary buffered
// relay with its full resilience envelope. A negative threshold
// disables the streaming lane.
//
// The upstream flags (-pool, -call-timeout, -retries, -hedge) tune the
// resilient connection pools the gateway forwards through. Per-route
// counters — requests, fast-tier vs tree-tier transcodes, upstream
// errors, sheds — are served on the reserved "mbird.gateway" admin
// object, scrapeable via `mbird remote stats -gateway -json`.
//
// A route's upstream may be a comma-separated member list
// ("host1:7465,host2:7465,host3:7465") naming a sharded broker fleet
// (mbirdd -cluster) or any replicated orb service: the gateway then
// forwards through a cluster client (internal/cluster) that pins the
// route to its ring owner by the route's declaration-pair fingerprint,
// spills to the pair's replicas under load imbalance, and fails over
// when a member is down — so a rolling restart upstream costs latency,
// not errors. Each fleet member appears individually in the upstream
// stats.
//
// On SIGINT/SIGTERM the gateway drains gracefully: the listener closes,
// in-flight relays get up to -drain to finish, then remaining
// connections are force-closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/orb"
	"repro/internal/resil"
)

type config struct {
	addr        string
	routes      string
	maxInflight int
	admitWait   time.Duration
	maxPayload  int
	maxBody     int
	maxPerConn  int
	streamThr   int
	pool        int
	callTimeout time.Duration
	dialTimeout time.Duration
	retries     int
	hedge       bool
	drain       time.Duration
}

func (c *config) register(fs *flag.FlagSet) {
	fs.StringVar(&c.addr, "addr", "127.0.0.1:7466", "listen address")
	fs.StringVar(&c.routes, "routes", "", "route table JSON file (required; SIGHUP reloads it)")
	fs.IntVar(&c.maxInflight, "max-inflight", 0, "admitted relays across all connections (0 = 1024 default, negative = unbounded)")
	fs.DurationVar(&c.admitWait, "admit-wait", 0, "how long a relay may wait for admission before being shed (0 = 5ms default)")
	fs.IntVar(&c.maxPayload, "max-payload", 0, "per-payload byte budget (0 = 8 MiB default, negative = unbounded)")
	fs.IntVar(&c.maxBody, "max-body", 0, "orb frame body limit in bytes (0 = 16 MiB default)")
	fs.IntVar(&c.maxPerConn, "max-per-conn", 0, "concurrent relays per client connection (0 = 1024 default, negative = unbounded)")
	fs.IntVar(&c.streamThr, "stream-threshold", 0, "request bytes above which stream-opened relays forward chunk-by-chunk (0 = 1 MiB default, negative = always buffer)")
	fs.IntVar(&c.pool, "pool", 0, "upstream connections per address (0 = 4 default)")
	fs.DurationVar(&c.callTimeout, "call-timeout", 0, "per-upstream-call deadline (0 = resil default)")
	fs.DurationVar(&c.dialTimeout, "dial-timeout", 0, "upstream dial deadline (0 = resil default)")
	fs.IntVar(&c.retries, "retries", 0, "upstream attempts per relay (0 = resil default)")
	fs.BoolVar(&c.hedge, "hedge", false, "launch a hedged upstream attempt at the p95 latency")
	fs.DurationVar(&c.drain, "drain", 10*time.Second, "graceful shutdown drain window")
}

// serve builds the gateway from cfg, loads the route table, and starts
// serving. It is the whole daemon minus flag parsing and signal
// handling, so tests can run it in-process on an ephemeral port.
func serve(cfg config) (*orb.Server, *gateway.Gateway, error) {
	routesPath := cfg.routes
	rcfg, err := gateway.LoadConfig(routesPath)
	if err != nil {
		return nil, nil, err
	}
	g := gateway.New(gateway.Options{
		MaxInFlight:     cfg.maxInflight,
		AdmitWait:       cfg.admitWait,
		MaxPayload:      cfg.maxPayload,
		StreamThreshold: cfg.streamThr,
		Upstream: resil.Options{
			PoolSize:    cfg.pool,
			CallTimeout: cfg.callTimeout,
			DialTimeout: cfg.dialTimeout,
			MaxAttempts: cfg.retries,
			Hedge:       cfg.hedge,
		},
	})
	g.SetReloader(func() (*gateway.Config, error) { return gateway.LoadConfig(routesPath) })
	if err := g.SetConfig(rcfg); err != nil {
		_ = g.Close()
		return nil, nil, err
	}
	var opts []orb.Option
	// Relay handlers consume the request body before returning (hedged
	// upstream attempts take a copy), so frame buffers recycle.
	opts = append(opts, orb.WithBufPooling())
	if cfg.maxBody > 0 {
		opts = append(opts, orb.WithMaxBody(cfg.maxBody))
	}
	if cfg.maxPerConn != 0 {
		opts = append(opts, orb.WithMaxPerConn(cfg.maxPerConn))
	}
	srv, err := orb.NewServer(cfg.addr, opts...)
	if err != nil {
		_ = g.Close()
		return nil, nil, err
	}
	g.Serve(srv)
	return srv, g, nil
}

func main() {
	fs := flag.NewFlagSet("mbirdgw", flag.ExitOnError)
	var cfg config
	cfg.register(fs)
	_ = fs.Parse(os.Args[1:])
	if cfg.routes == "" {
		fmt.Fprintln(os.Stderr, "mbirdgw: -routes is required")
		os.Exit(2)
	}

	srv, g, err := serve(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbirdgw:", err)
		os.Exit(1)
	}
	fmt.Printf("mbirdgw: serving on %s (%d routes)\n", srv.Addr(), g.Health().Routes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s == syscall.SIGHUP {
			if n, err := g.Reload(); err != nil {
				fmt.Fprintln(os.Stderr, "mbirdgw: reload failed, keeping current routes:", err)
			} else {
				fmt.Printf("mbirdgw: reloaded %d routes\n", n)
			}
			continue
		}
		fmt.Printf("mbirdgw: %v, draining for up to %v\n", s, cfg.drain)
		break
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	_ = g.Close()
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "mbirdgw: drain incomplete:", drainErr)
		os.Exit(1)
	}
}
