package main

import (
	"context"
	"testing"
	"time"

	"repro/internal/orb"
)

// TestChaosCLIProxiesOrbTraffic runs the whole flag-to-proxy path: an
// orb server behind a CLI-configured proxy, with a latency fault that
// must slow the call without breaking it.
func TestChaosCLIProxiesOrbTraffic(t *testing.T) {
	s, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	s.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return body, nil
	})

	p, err := setup([]string{
		"-listen", "127.0.0.1:0",
		"-target", s.Addr(),
		"-latency", "10ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })

	c, err := orb.Dial(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	start := time.Now()
	reply, err := c.Invoke("echo", 0, []byte("through the cli proxy"))
	if err != nil || string(reply) != "through the cli proxy" {
		t.Fatalf("reply = %q err = %v", reply, err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("call took %v, want ≥ 10ms of injected latency", elapsed)
	}
	if st := p.Stats(); st.Accepted != 1 || st.ForwardedBytes == 0 {
		t.Errorf("stats = %+v", st)
	}

	if _, err := setup([]string{"-bogus-flag"}); err == nil {
		t.Error("bogus flag parsed successfully")
	}
}
