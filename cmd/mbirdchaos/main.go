// Command mbirdchaos is a fault-injecting TCP proxy for exercising the
// orb/broker stack under bad networks (see internal/chaos). Point a
// client at its listen address and it forwards to the target while
// injecting the configured faults.
//
// Usage:
//
//	mbirdchaos -listen 127.0.0.1:7466 -target 127.0.0.1:7465
//	           [-latency D] [-jitter D] [-chunk N]
//	           [-reset-after N] [-blackhole-after N] [-truncate-after N]
//	           [-stall-after N] [-stall-interval D] [-drop-on-accept]
//
// The byte budgets (-reset-after and friends) are per connection pair and
// shared across both directions, so a budget of 100 kills the connection
// once 100 bytes total have crossed it in either direction. mbirdchaos
// runs until killed.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
)

// setup parses args and starts the proxy, so tests can run the whole
// flag-to-proxy path in-process on ephemeral ports.
func setup(args []string) (*chaos.Proxy, error) {
	fs := flag.NewFlagSet("mbirdchaos", flag.ContinueOnError)
	var (
		listen = fs.String("listen", "127.0.0.1:7466", "address to listen on")
		target = fs.String("target", "127.0.0.1:7465", "address to forward to")
		f      chaos.Faults
	)
	fs.DurationVar(&f.Latency, "latency", 0, "base delay per forwarded chunk")
	fs.DurationVar(&f.Jitter, "jitter", 0, "random extra delay per chunk, uniform in [0, jitter)")
	fs.IntVar(&f.ChunkSize, "chunk", 0, "split writes into chunks of at most N bytes (0 = unsplit)")
	fs.Int64Var(&f.ResetAfter, "reset-after", 0, "RST the connection after N bytes (0 = never)")
	fs.Int64Var(&f.BlackholeAfter, "blackhole-after", 0, "silently drop traffic after N bytes (0 = never)")
	fs.Int64Var(&f.TruncateAfter, "truncate-after", 0, "half-close cleanly after N bytes (0 = never)")
	fs.Int64Var(&f.StallAfter, "stall-after", 0, "after N bytes, trickle one byte per stall-interval instead of forwarding (0 = never)")
	fs.DurationVar(&f.StallInterval, "stall-interval", 0, "per-byte trickle delay once stalled (default 100ms)")
	fs.BoolVar(&f.DropOnAccept, "drop-on-accept", false, "reset every connection immediately on accept")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return chaos.New(*listen, *target, f)
}

func main() {
	p, err := setup(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbirdchaos:", err)
		os.Exit(1)
	}
	fmt.Printf("mbirdchaos: listening on %s\n", p.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			st := p.Stats()
			fmt.Printf("mbirdchaos: %d conns, %d bytes, %d resets, %d blackholes, %d truncations, %d stalls\n",
				st.Accepted, st.ForwardedBytes, st.Resets, st.Blackholes, st.Truncations, st.Stalls)
			_ = p.Close()
			return
		case <-ticker.C:
			st := p.Stats()
			fmt.Printf("mbirdchaos: %d conns, %d bytes, %d resets, %d blackholes, %d truncations, %d stalls\n",
				st.Accepted, st.ForwardedBytes, st.Resets, st.Blackholes, st.Truncations, st.Stalls)
		}
	}
}
