// fitter-net: the §2 example as a network-enabled stub.
//
// The C fitter is exported on an orb server (the paper's IIOP-style
// runtime); a Java-side client in the same process dials it and invokes
// through a Mockingbird stub, so the request and reply cross a real TCP
// connection in CDR encoding. The client and server each hold their own
// independently-parsed session, as two separate programs would.
//
// Run with: go run ./examples/fitter-net
package main

import (
	"fmt"
	"os"

	"repro/internal/bind"
	"repro/internal/cmem"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/value"
)

const (
	fitterC = `
typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);
`
	figure1Java = `
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }
`
	cScript = `
annotate fitter.start out nonnull
annotate fitter.end out nonnull
annotate fitter.pts length-from=count
`
	javaScript = `
annotate Line.start nonnull noalias
annotate Line.end nonnull noalias
annotate PointVector collection-of=Point element-nonnull
annotate JavaIdeal.fitter.pts nonnull
annotate JavaIdeal.fitter.return nonnull
`
)

func cFitter(mem *cmem.Arena, args []uint64) (uint64, error) {
	pts, count := cmem.Addr(args[0]), int(int32(args[1]))
	start, end := cmem.Addr(args[2]), cmem.Addr(args[3])
	var minX, minY, maxX, maxY float32
	for i := 0; i < count; i++ {
		x, err := mem.ReadF32(pts + cmem.Addr(8*i))
		if err != nil {
			return 0, err
		}
		y, err := mem.ReadF32(pts + cmem.Addr(8*i+4))
		if err != nil {
			return 0, err
		}
		if i == 0 || x < minX {
			minX = x
		}
		if i == 0 || y < minY {
			minY = y
		}
		if i == 0 || x > maxX {
			maxX = x
		}
		if i == 0 || y > maxY {
			maxY = y
		}
	}
	if err := mem.WriteF32(start, minX); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(start+4, minY); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(end, maxX); err != nil {
		return 0, err
	}
	return 0, mem.WriteF32(end+4, maxY)
}

// newSession parses and annotates both declaration sets.
func newSession() (*core.Session, error) {
	s := core.NewSession()
	if err := s.LoadC("c", fitterC, cmem.ILP32); err != nil {
		return nil, err
	}
	if err := s.LoadJava("java", figure1Java); err != nil {
		return nil, err
	}
	if _, err := s.Annotate("c", cScript); err != nil {
		return nil, err
	}
	if _, err := s.Annotate("java", javaScript); err != nil {
		return nil, err
	}
	return s, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fitter-net:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Server side: export the C implementation. ---
	serverSess, err := newSession()
	if err != nil {
		return err
	}
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	binder := bind.NewC(serverSess.Universe("c"), cmem.ILP32)
	target := core.NewCTarget(binder, serverSess.Universe("c").Lookup("fitter"), cFitter)
	if err := serverSess.ExportCall(srv, "geometry/fitter", "c", "fitter", target); err != nil {
		return err
	}
	fmt.Println("server: exported C fitter at", srv.Addr())

	// --- Client side: an independent session, as another process would
	// have. ---
	clientSess, err := newSession()
	if err != nil {
		return err
	}
	conn, err := orb.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer conn.Close()
	remote, err := clientSess.NewRemoteTarget(conn, "geometry/fitter", "c", "fitter")
	if err != nil {
		return err
	}
	stub, err := clientSess.NewCallStub("java", "JavaIdeal", "c", "fitter", core.EngineCompiled, remote)
	if err != nil {
		return err
	}

	pts := []value.Value{
		value.NewRecord(value.Real{V: 0}, value.Real{V: 0}),
		value.NewRecord(value.Real{V: 10}, value.Real{V: 10}),
		value.NewRecord(value.Real{V: 5}, value.Real{V: -3}),
	}
	out, err := stub.Invoke(value.NewRecord(value.FromSlice(pts)))
	if err != nil {
		return err
	}
	line := out.(value.Record).Fields[0].(value.Record)
	fmt.Println("client: fitted line start =", line.Fields[0])
	fmt.Println("client: fitted line end   =", line.Fields[1])
	fmt.Println("expected: {0, -3} and {10, 10}")
	return nil
}
