// Quickstart: the paper's §2 example end-to-end.
//
// A Java graphical application (Figure 1 types) wants to call the C
// fitter function (Figure 2) through its ideal interface (Figure 5),
// without adopting any tool-imposed types. We:
//
//  1. load both declarations exactly as written,
//  2. apply the §3.4 annotations,
//  3. compare the Mtypes (they come out equivalent),
//  4. compile a stub, and
//  5. call the C function with Java objects and get a Java Line back.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/bind"
	"repro/internal/cmem"
	"repro/internal/core"
	"repro/internal/jheap"
	"repro/internal/value"
)

// The declarations, verbatim from the paper.
const (
	fitterC = `
typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);
`
	figure1Java = `
public class Point {
    public Point(float x, float y) { this.x = x; this.y = y; }
    private float x;
    private float y;
}
public class Line {
    private Point start;
    private Point end;
}
public class PointVector extends java.util.Vector;
public interface JavaIdeal {
    Line fitter(PointVector pts);
}
`
	// The §3.4 annotations: out parameters and the count convention on
	// the C side; non-null, non-aliased containment and the collection
	// element type on the Java side.
	cScript = `
annotate fitter.start out nonnull
annotate fitter.end out nonnull
annotate fitter.pts length-from=count
`
	javaScript = `
annotate Line.start nonnull noalias
annotate Line.end nonnull noalias
annotate PointVector collection-of=Point element-nonnull
annotate JavaIdeal.fitter.pts nonnull
annotate JavaIdeal.fitter.return nonnull
`
)

// cFitter is the "compiled C" implementation: it reads the raw argument
// memory exactly as the real function would, fitting the bounding-box
// diagonal through the points.
func cFitter(mem *cmem.Arena, args []uint64) (uint64, error) {
	pts, count := cmem.Addr(args[0]), int(int32(args[1]))
	start, end := cmem.Addr(args[2]), cmem.Addr(args[3])
	var minX, minY, maxX, maxY float32
	for i := 0; i < count; i++ {
		x, err := mem.ReadF32(pts + cmem.Addr(8*i))
		if err != nil {
			return 0, err
		}
		y, err := mem.ReadF32(pts + cmem.Addr(8*i+4))
		if err != nil {
			return 0, err
		}
		if i == 0 || x < minX {
			minX = x
		}
		if i == 0 || y < minY {
			minY = y
		}
		if i == 0 || x > maxX {
			maxX = x
		}
		if i == 0 || y > maxY {
			maxY = y
		}
	}
	if err := mem.WriteF32(start, minX); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(start+4, minY); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(end, maxX); err != nil {
		return 0, err
	}
	return 0, mem.WriteF32(end+4, maxY)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1-2. Parse and annotate both declarations.
	sess := core.NewSession()
	if err := sess.LoadC("c", fitterC, cmem.ILP32); err != nil {
		return err
	}
	if err := sess.LoadJava("java", figure1Java); err != nil {
		return err
	}
	if _, err := sess.Annotate("c", cScript); err != nil {
		return err
	}
	if _, err := sess.Annotate("java", javaScript); err != nil {
		return err
	}

	// 3. Compare: both lower to port(Record(L, port(Record(RR, RR)))).
	mtJ, err := sess.Mtype("java", "JavaIdeal")
	if err != nil {
		return err
	}
	mtC, err := sess.Mtype("c", "fitter")
	if err != nil {
		return err
	}
	fmt.Println("Java Mtype:", mtJ)
	fmt.Println("C    Mtype:", mtC)
	verdict, err := sess.Compare("java", "JavaIdeal", "c", "fitter")
	if err != nil {
		return err
	}
	fmt.Printf("comparer verdict: %s (%d steps)\n\n", verdict.Relation, verdict.Steps)

	// 4. Compile the stub: the C side is the callee.
	binder := bind.NewC(sess.Universe("c"), cmem.ILP32)
	target := core.NewCTarget(binder, sess.Universe("c").Lookup("fitter"), cFitter)
	stub, err := sess.NewCallStub("java", "JavaIdeal", "c", "fitter", core.EngineCompiled, target)
	if err != nil {
		return err
	}

	// 5. Build Java-side application data (a PointVector of Points in the
	// simulated heap), read it through the Java binding, and invoke.
	heap := jheap.NewHeap()
	jbinder := bind.NewJ(sess.Universe("java"))
	vec := heap.NewVector("PointVector")
	for _, pt := range [][2]float64{{1, 5}, {3, 2}, {2, 7}} {
		p := heap.New("Point", 2)
		if err := heap.SetField(p, 0, jheap.FloatSlot(pt[0])); err != nil {
			return err
		}
		if err := heap.SetField(p, 1, jheap.FloatSlot(pt[1])); err != nil {
			return err
		}
		if err := heap.VectorAppend(vec, p); err != nil {
			return err
		}
	}
	ptsDecl := sess.Universe("java").Lookup("JavaIdeal").Type.Methods[0].Params[0].Type
	ptsValue, err := jbinder.Read(ptsDecl, heap, jheap.RefSlot(vec))
	if err != nil {
		return err
	}

	out, err := stub.Invoke(value.NewRecord(ptsValue))
	if err != nil {
		return err
	}

	// The output record holds the Java-shaped Line; materialize it as a
	// real heap object, then print it the way the application would.
	lineDecl := sess.Universe("java").Lookup("JavaIdeal").Type.Methods[0].Result
	lineSlot, err := jbinder.Write(lineDecl, heap, out.(value.Record).Fields[0])
	if err != nil {
		return err
	}
	coords := make([]float64, 0, 4)
	for _, fi := range []int{0, 1} {
		ptRef, err := heap.Field(lineSlot.R, fi)
		if err != nil {
			return err
		}
		for _, fj := range []int{0, 1} {
			s, err := heap.Field(ptRef.R, fj)
			if err != nil {
				return err
			}
			coords = append(coords, s.F)
		}
	}
	fmt.Printf("fitted line: (%g, %g) -> (%g, %g)\n", coords[0], coords[1], coords[2], coords[3])
	fmt.Println("expected   : (1, 2) -> (3, 7)")
	return nil
}
