// dynamic: the §6 "dynamic type construct of our own which is similar to
// Any".
//
// A sender ships values together with their Mtype descriptors; the
// receiver has never seen the sender's declarations, reconstructs the
// type from the wire, compares it against its *own* local declaration
// with the full isomorphism rules, and converts the value into its own
// shape — Any without an IDL.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"os"

	"repro/internal/compare"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/wire"
)

// The sender's team declares telemetry samples one way...
const senderJava = `
public class Sample {
    private int sensor;
    private double reading;
    private double errorBar;
}
`

// ...the receiver's team another way (order commuted, pair grouped).
const receiverJava = `
public class Measurement {
    private Interval value;
    private int source;
}
public class Interval {
    private double mid;
    private double width;
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dynamic:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Sender: marshal values with their type attached. ---
	sender := core.NewSession()
	if err := sender.LoadJava("app", senderJava); err != nil {
		return err
	}
	sampleTy, err := sender.Mtype("app", "Sample")
	if err != nil {
		return err
	}
	sample := value.NewRecord(value.NewInt(7), value.Real{V: 21.5}, value.Real{V: 0.25})
	packet, err := wire.MarshalDynamic(sampleTy, sample)
	if err != nil {
		return err
	}
	fmt.Printf("sender: shipped %d bytes (descriptor + value) for %s\n", len(packet), sampleTy)

	// --- Receiver: no access to the sender's declarations. ---
	receiver := core.NewSession()
	if err := receiver.LoadJava("app", receiverJava); err != nil {
		return err
	}
	if _, err := receiver.Annotate("app", "annotate Measurement.value nonnull noalias"); err != nil {
		return err
	}
	arrivedTy, arrived, err := wire.UnmarshalDynamic(packet)
	if err != nil {
		return err
	}
	fmt.Printf("receiver: dynamic value %s of type %s\n", arrived, arrivedTy)

	localTy, err := receiver.Mtype("app", "Measurement")
	if err != nil {
		return err
	}
	c := compare.NewComparer(compare.DefaultRules())
	m, ok := c.Equivalent(arrivedTy, localTy)
	if !ok {
		return fmt.Errorf("dynamic type does not match local declaration:\n%s",
			c.Explain(arrivedTy, localTy, compare.ModeEqual))
	}
	p, err := plan.Build(m)
	if err != nil {
		return err
	}
	fmt.Println("receiver: dynamic type matches local Measurement; coercion plan:")
	fmt.Print(p)

	stub, err := convert.Compile(p)
	if err != nil {
		return err
	}
	converted, err := stub.Convert(arrived)
	if err != nil {
		return err
	}
	fmt.Println("receiver: converted into local shape:", converted)
	fmt.Println("expected : {{21.5, 0.25}, 7}")
	return nil
}
