// notes: the §5 Lotus Notes experiment — bridging a large, method-heavy
// C++ API surface to Java with batch annotation scripts.
//
// The real Notes API is proprietary; the synth package generates a
// 30-class suite with the reported shape (a small set of data carriers
// plus 22 method-heavy service classes), presented as a Java declaration
// set and a shuffled IDL declaration set. The batch annotation script —
// "worked out in detail with representative classes, … applied in batch
// mode to a much larger set" — aligns them, and every class pair is then
// matched by the Comparer.
//
// Run with: go run ./examples/notes
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "notes:", err)
		os.Exit(1)
	}
}

func run() error {
	suite := synth.Generate(synth.NotesAPI())
	fmt.Printf("generated API surface: %d data classes, %d service classes\n",
		len(suite.DataClassNames), len(suite.ServiceClassNames))
	fmt.Printf("batch annotation script:\n%s\n", suite.JavaScript)

	sess := core.NewSession()
	if err := sess.LoadJava("java", suite.JavaSource); err != nil {
		return err
	}
	if err := sess.LoadIDL("api", suite.IDLSource); err != nil {
		return err
	}
	res, err := sess.Annotate("java", suite.JavaScript)
	if err != nil {
		return err
	}
	fmt.Printf("annotations: %d script lines annotated %d nodes\n\n", res.Lines, res.Applied)

	matched, steps := 0, 0
	names := append(append([]string(nil), suite.DataClassNames...), suite.ServiceClassNames...)
	for _, name := range names {
		v, err := sess.Compare("java", name, "api", name)
		if err != nil {
			return err
		}
		steps += v.Steps
		status := "MATCH"
		if v.Relation != core.RelEquivalent {
			status = "FAIL: " + v.Relation.String()
		} else {
			matched++
		}
		fmt.Printf("  %-6s %s\n", name, status)
	}
	fmt.Printf("\nbridged %d/%d classes (%d comparison steps total)\n", matched, len(names), steps)
	if matched != len(names) {
		return fmt.Errorf("some classes failed to match")
	}
	fmt.Println("feasibility of covering the complete API demonstrated (paper §5)")
	return nil
}
