// collab: the §5 collaborative-objects case study in miniature.
//
// Two teams build replicated Java objects that coordinate by *message
// passing*, not remote invocation: "the algorithms needed to support
// these objects had been tuned for concurrency and latency avoidance,
// and required a message-passing rather than a remote invocation model."
// Each team declared its message types as plain Java classes, in its own
// style and field order. Mockingbird compiles custom send and receive
// stubs between the two declaration sets, and the messages travel as
// one-way orb frames.
//
// Run with: go run ./examples/collab
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/value"
)

// Team A declares its update messages one way...
const teamA = `
public class CellEdit {
    private int row;
    private int col;
    private double newValue;
    private long lamportClock;
}
public class CursorMove {
    private int row;
    private int col;
    private short actor;
}
public class Checkpoint {
    private long lamportClock;
    private short actor;
}
`

// ... and team B, with the same information in different order and
// grouping (a Position class instead of loose row/col fields). The actor
// id is a short on both sides: matching is structural, so fields that
// must not be interchanged should have distinguishable types — the
// paper's structural-vs-semantic caveat (§6).
const teamB = `
public class Position {
    private int row;
    private int col;
}
public class CellEdit {
    private long clock;
    private Position at;
    private double v;
}
public class CursorMove {
    private short who;
    private Position at;
}
public class Checkpoint {
    private short who;
    private long clock;
}
`

// Team B's nested Position is contained, never null.
const teamBScript = `
annotate CellEdit.at nonnull noalias
annotate CursorMove.at nonnull noalias
`

var messageTypes = []string{"CellEdit", "CursorMove", "Checkpoint"}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "collab:", err)
		os.Exit(1)
	}
}

func run() error {
	sess := core.NewSession()
	if err := sess.LoadJava("teamA", teamA); err != nil {
		return err
	}
	if err := sess.LoadJava("teamB", teamB); err != nil {
		return err
	}
	if _, err := sess.Annotate("teamB", teamBScript); err != nil {
		return err
	}

	// All three message pairs must be interconvertible.
	for _, name := range messageTypes {
		v, err := sess.Compare("teamA", name, "teamB", name)
		if err != nil {
			return err
		}
		fmt.Printf("message %-11s: %s\n", name, v.Relation)
		if v.Relation != core.RelEquivalent {
			return fmt.Errorf("message %s does not match:\n%s", name, v.Explain)
		}
	}

	// Team B runs a receiver: one orb object per message type.
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	received := make(chan string, 16)
	for _, name := range messageTypes {
		name := name
		sink := core.TargetFunc(func(msg value.Value) (value.Value, error) {
			received <- fmt.Sprintf("%s %s", name, msg)
			return value.Record{}, nil
		})
		if err := sess.ExportMessageSink(srv, "collab/"+name, "teamB", name, sink); err != nil {
			return err
		}
	}

	// Team A compiles send stubs: its message shape in, team B's shape on
	// the wire.
	conn, err := orb.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer conn.Close()
	senders := make(map[string]*core.MessageStub, len(messageTypes))
	for _, name := range messageTypes {
		remote, err := sess.NewRemoteMessageTarget(conn, "collab/"+name, "teamB", name)
		if err != nil {
			return err
		}
		stub, err := sess.NewMessageStub("teamA", name, "teamB", name, core.EngineCompiled, remote)
		if err != nil {
			return err
		}
		senders[name] = stub
	}

	// Replay a little editing session, in team A's field order.
	edits := []struct {
		kind string
		msg  value.Value
	}{
		{"CellEdit", value.NewRecord(value.NewInt(3), value.NewInt(7), value.Real{V: 41.5}, value.NewInt(100))},
		{"CursorMove", value.NewRecord(value.NewInt(4), value.NewInt(7), value.NewInt(1))},
		{"CellEdit", value.NewRecord(value.NewInt(4), value.NewInt(7), value.Real{V: -2}, value.NewInt(101))},
		{"Checkpoint", value.NewRecord(value.NewInt(101), value.NewInt(1))},
	}
	for _, e := range edits {
		if err := senders[e.kind].Send(e.msg); err != nil {
			return err
		}
	}
	for range edits {
		fmt.Println("received:", <-received)
	}
	fmt.Println("\nall messages converted between the two teams' declarations and delivered one-way")
	return nil
}
