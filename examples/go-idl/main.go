// go-idl: the Go frontend worked end-to-end against an IDL peer.
//
// A Go team already has its service types — a struct with an embedded
// header and an interface — and a partner publishes the same service in
// CORBA IDL with its own member order and spellings. Neither side adopts
// the other's types:
//
//  1. load both declarations exactly as written (the Go side needs no
//     annotation script: value fields, pointers, and slices already say
//     what §3.4's annotations say),
//  2. compare the service interfaces (equivalent: embedding is
//     flattened, member order commutes, int32↔long, string↔string),
//  3. build a coercion plan for the item record, and
//  4. convert a Go-shaped value into the IDL peer's shape.
//
// Run with: go run ./examples/go-idl
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/value"
)

// The Go team's declarations, verbatim — Meta is embedded in Item and
// flattened by Go's promotion rules.
const goStock = `package stock

type Meta struct {
	Qty   int32
	Price float32
}

type Item struct {
	Meta
	InStock bool
}

type Store interface {
	Lookup(name string) Item
}
`

// The partner's IDL: same service, different member order and spellings.
const idlStock = `
struct Item {
  boolean in_stock;
  float price;
  long qty;
};
interface Store {
  Item lookup(in string name);
};
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "go-idl:", err)
		os.Exit(1)
	}
}

func run() error {
	s := core.NewSession()
	if err := s.LoadGo("go", goStock); err != nil {
		return err
	}
	if err := s.LoadIDL("idl", idlStock); err != nil {
		return err
	}

	// The service interfaces: Go's embedded Meta is flattened into Item,
	// the comparer commutes the members, string matches IDL's string.
	v, err := s.Compare("go", "Store", "idl", "Store")
	if err != nil {
		return err
	}
	fmt.Println("Store matches its IDL peer:", v.Relation)

	// The item record: compare, plan, and convert a Go-shaped value.
	iv, err := s.Compare("go", "Item", "idl", "Item")
	if err != nil {
		return err
	}
	fmt.Println("Item matches its IDL peer: ", iv.Relation)
	p, conv, err := s.BuildConverter(iv)
	if err != nil {
		return err
	}
	fmt.Println("coercion plan for Item:")
	fmt.Print(p)

	// A Go Item{Meta{Qty: 12, Price: 2.5}, InStock: true}, in its
	// flattened wire order (Qty, Price, InStock).
	item := value.NewRecord(value.NewInt(12), value.Real{V: 2.5}, value.NewInt(1))
	got, err := conv.Convert(item)
	if err != nil {
		return err
	}
	fmt.Println("converted for the IDL peer:", got)
	fmt.Println("expected                  : {1, 2.5, 12}")
	return nil
}
