// Benchmark harness: one benchmark per experiment in DESIGN.md §4.
// EXPERIMENTS.md records representative results and compares their shape
// with the paper's claims.
package repro_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bind"
	"repro/internal/broker"
	"repro/internal/cmem"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/fuse"
	"repro/internal/jheap"
	"repro/internal/mtype"
	"repro/internal/orb"
	"repro/internal/resil"
	"repro/internal/synth"
	"repro/internal/value"
	"repro/internal/wire"
)

// --- Shared fitter fixtures (Figures 1, 2, 5 + §3.4 annotations) ---

const (
	fitterC = `
typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);
`
	figure1Java = `
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }
`
	fitterCScript = `
annotate fitter.start out nonnull
annotate fitter.end out nonnull
annotate fitter.pts length-from=count
`
	figure1JavaScript = `
annotate Line.start nonnull noalias
annotate Line.end nonnull noalias
annotate PointVector collection-of=Point element-nonnull
annotate JavaIdeal.fitter.pts nonnull
annotate JavaIdeal.fitter.return nonnull
`
)

func fitterSession(tb testing.TB) *core.Session {
	tb.Helper()
	s := core.NewSession()
	if err := s.LoadC("c", fitterC, cmem.ILP32); err != nil {
		tb.Fatal(err)
	}
	if err := s.LoadJava("java", figure1Java); err != nil {
		tb.Fatal(err)
	}
	if _, err := s.Annotate("c", fitterCScript); err != nil {
		tb.Fatal(err)
	}
	if _, err := s.Annotate("java", figure1JavaScript); err != nil {
		tb.Fatal(err)
	}
	return s
}

func cFitterImpl(mem *cmem.Arena, args []uint64) (uint64, error) {
	pts, count := cmem.Addr(args[0]), int(int32(args[1]))
	start, end := cmem.Addr(args[2]), cmem.Addr(args[3])
	var minX, minY, maxX, maxY float32
	for i := 0; i < count; i++ {
		x, err := mem.ReadF32(pts + cmem.Addr(8*i))
		if err != nil {
			return 0, err
		}
		y, err := mem.ReadF32(pts + cmem.Addr(8*i+4))
		if err != nil {
			return 0, err
		}
		if i == 0 || x < minX {
			minX = x
		}
		if i == 0 || y < minY {
			minY = y
		}
		if i == 0 || x > maxX {
			maxX = x
		}
		if i == 0 || y > maxY {
			maxY = y
		}
	}
	if err := mem.WriteF32(start, minX); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(start+4, minY); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(end, maxX); err != nil {
		return 0, err
	}
	return 0, mem.WriteF32(end+4, maxY)
}

// appHeapPoints builds the Java application's PointVector in a heap.
func appHeapPoints(tb testing.TB, h *jheap.Heap, n int) jheap.Ref {
	tb.Helper()
	v := h.NewVector("PointVector")
	for i := 0; i < n; i++ {
		p := h.New("Point", 2)
		if err := h.SetField(p, 0, jheap.FloatSlot(float64(i))); err != nil {
			tb.Fatal(err)
		}
		if err := h.SetField(p, 1, jheap.FloatSlot(float64(i%17))); err != nil {
			tb.Fatal(err)
		}
		if err := h.VectorAppend(v, p); err != nil {
			tb.Fatal(err)
		}
	}
	return v
}

// ptsValue builds the abstract list-of-points value directly.
func ptsValue(n int) value.Value {
	elems := make([]value.Value, n)
	for i := range elems {
		elems[i] = value.NewRecord(value.Real{V: float64(i)}, value.Real{V: float64(i % 17)})
	}
	return value.FromSlice(elems)
}

// --- §6-perf: Mockingbird stub vs IDL baseline vs hand-written ---
//
// All variants start from the same application representation (a jheap
// PointVector of Points) and end with the same C implementation invoked
// on arena memory, producing a Java-side Line.

const benchPoints = 64

// BenchmarkOverheadMockingbird runs the full generated-stub path:
// Java-binding read → compiled coercion → C-binding call → coercion back
// → Java-binding write.
func BenchmarkOverheadMockingbird(b *testing.B) {
	for _, engine := range []struct {
		name string
		e    core.Engine
	}{{"compiled", core.EngineCompiled}, {"interpreted", core.EngineInterpreted}} {
		b.Run(engine.name, func(b *testing.B) {
			sess := fitterSession(b)
			binder := bind.NewC(sess.Universe("c"), cmem.ILP32)
			target := core.NewCTarget(binder, sess.Universe("c").Lookup("fitter"), cFitterImpl)
			stub, err := sess.NewCallStub("java", "JavaIdeal", "c", "fitter", engine.e, target)
			if err != nil {
				b.Fatal(err)
			}
			jbinder := bind.NewJ(sess.Universe("java"))
			heap := jheap.NewHeap()
			vec := appHeapPoints(b, heap, benchPoints)
			ptsDecl := sess.Universe("java").Lookup("JavaIdeal").Type.Methods[0].Params[0].Type
			lineDecl := sess.Universe("java").Lookup("JavaIdeal").Type.Methods[0].Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in, err := jbinder.Read(ptsDecl, heap, jheap.RefSlot(vec))
				if err != nil {
					b.Fatal(err)
				}
				out, err := stub.Invoke(value.NewRecord(in))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := jbinder.Write(lineDecl, heap, out.(value.Record).Fields[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOverheadFused runs the specialized stub: the coercion plan
// fused with both representation bindings (the execution model of the
// paper's generated JNI stubs) — heap slots to arena bytes directly, no
// value trees.
func BenchmarkOverheadFused(b *testing.B) {
	sess := fitterSession(b)
	jFn, err := sess.MethodDecl("java", "JavaIdeal", "fitter")
	if err != nil {
		b.Fatal(err)
	}
	call, err := fuse.CompileFromSession(sess, "java", jFn, "c", "fitter", cmem.ILP32, cFitterImpl)
	if err != nil {
		b.Fatal(err)
	}
	heap := jheap.NewHeap()
	vec := appHeapPoints(b, heap, benchPoints)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := call.Invoke(heap, []jheap.Slot{jheap.RefSlot(vec)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadIDLBaseline is the competing technology: imposed
// types, hand-written bridge code, fixed marshaling stub.
func BenchmarkOverheadIDLBaseline(b *testing.B) {
	heap := jheap.NewHeap()
	vec := appHeapPoints(b, heap, benchPoints)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.FitterViaIDL(heap, vec, cFitterImpl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadHandWritten is the lower bound: direct heap→arena
// conversion with no intermediate representation.
func BenchmarkOverheadHandWritten(b *testing.B) {
	heap := jheap.NewHeap()
	vec := appHeapPoints(b, heap, benchPoints)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.FitterHandWritten(heap, vec, cFitterImpl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvertOnly isolates the coercion itself (the §6 question is
// about conversion overhead, not the substrate bindings).
func BenchmarkConvertOnly(b *testing.B) {
	for _, engine := range []struct {
		name string
		e    core.Engine
	}{{"compiled", core.EngineCompiled}, {"interpreted", core.EngineInterpreted}} {
		b.Run(engine.name, func(b *testing.B) {
			sess := fitterSession(b)
			var captured value.Value
			target := core.TargetFunc(func(in value.Value) (value.Value, error) {
				captured = in
				return value.NewRecord(
					value.NewRecord(value.Real{V: 0}, value.Real{V: 0}),
					value.NewRecord(value.Real{V: 1}, value.Real{V: 1}),
				), nil
			})
			stub, err := sess.NewCallStub("java", "JavaIdeal", "c", "fitter", engine.e, target)
			if err != nil {
				b.Fatal(err)
			}
			in := value.NewRecord(ptsValue(benchPoints))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stub.Invoke(in); err != nil {
					b.Fatal(err)
				}
			}
			_ = captured
		})
	}
}

// BenchmarkStubCompilation measures the one-time cost of compiling a stub
// from a pair of declarations (compare + plan + closure compile).
func BenchmarkStubCompilation(b *testing.B) {
	sess := fitterSession(b)
	target := core.TargetFunc(func(in value.Value) (value.Value, error) { return value.Record{}, nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.NewCallStub("java", "JavaIdeal", "c", "fitter", core.EngineCompiled, target); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §6-net: network-enabled stubs ---

// BenchmarkFitterNetworkRoundtrip runs the full remote path: compiled
// stub, CDR marshaling, TCP round trip, unmarshal, coercion back.
func BenchmarkFitterNetworkRoundtrip(b *testing.B) {
	server := fitterSession(b)
	binder := bind.NewC(server.Universe("c"), cmem.ILP32)
	target := core.NewCTarget(binder, server.Universe("c").Lookup("fitter"), cFitterImpl)
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if err := server.ExportCall(srv, "fitter", "c", "fitter", target); err != nil {
		b.Fatal(err)
	}
	client := fitterSession(b)
	conn, err := orb.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	remote, err := client.NewRemoteTarget(conn, "fitter", "c", "fitter")
	if err != nil {
		b.Fatal(err)
	}
	stub, err := client.NewCallStub("java", "JavaIdeal", "c", "fitter", core.EngineCompiled, remote)
	if err != nil {
		b.Fatal(err)
	}
	in := value.NewRecord(ptsValue(benchPoints))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stub.Invoke(in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §5-A: comparer scalability (the VisualAge investigation) ---

// BenchmarkComparerScaling compares every class pair of synthesized
// suites from the 12-class miniature toward the full 500-class system.
// steps/op reports comparison steps.
func BenchmarkComparerScaling(b *testing.B) {
	for _, n := range []int{12, 50, 100, 250, 500} {
		b.Run(fmt.Sprintf("classes=%d", n), func(b *testing.B) {
			cfg := synth.VisualAgeScaled(n)
			if n == 12 {
				cfg = synth.VisualAgeMiniature()
			}
			suite := synth.Generate(cfg)
			sess := core.NewSession()
			if err := sess.LoadJava("java", suite.JavaSource); err != nil {
				b.Fatal(err)
			}
			if err := sess.LoadIDL("idl", suite.IDLSource); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Annotate("java", suite.JavaScript); err != nil {
				b.Fatal(err)
			}
			names := append(append([]string(nil), suite.DataClassNames...), suite.ServiceClassNames...)
			b.ResetTimer()
			totalSteps := 0
			for i := 0; i < b.N; i++ {
				for _, name := range names {
					v, err := sess.Compare("java", name, "idl", name)
					if err != nil {
						b.Fatal(err)
					}
					if v.Relation != core.RelEquivalent {
						b.Fatalf("%s: %s", name, v.Relation)
					}
					totalSteps += v.Steps
				}
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
		})
	}
}

// --- §5-B: batch annotation (Notes) ---

// BenchmarkNotesAnnotationScript measures applying the wildcard batch
// script to the 30-class API surface.
func BenchmarkNotesAnnotationScript(b *testing.B) {
	suite := synth.Generate(synth.NotesAPI())
	sess := core.NewSession()
	if err := sess.LoadJava("java", suite.JavaSource); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Annotate("java", suite.JavaScript); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §5-C: collaborative messaging throughput ---

// BenchmarkCollabSendReceive drives one-way messages through a compiled
// send stub and the orb, measuring messages end to end.
func BenchmarkCollabSendReceive(b *testing.B) {
	sess := core.NewSession()
	if err := sess.LoadJava("teamA", `class Edit { int row; int col; double v; long clock; }`); err != nil {
		b.Fatal(err)
	}
	if err := sess.LoadJava("teamB", `class Edit { long when; double val; int r; int c; }`); err != nil {
		b.Fatal(err)
	}
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	received := make(chan struct{}, 1024)
	sink := core.TargetFunc(func(v value.Value) (value.Value, error) {
		received <- struct{}{}
		return value.Record{}, nil
	})
	if err := sess.ExportMessageSink(srv, "edit", "teamB", "Edit", sink); err != nil {
		b.Fatal(err)
	}
	conn, err := orb.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	remote, err := sess.NewRemoteMessageTarget(conn, "edit", "teamB", "Edit")
	if err != nil {
		b.Fatal(err)
	}
	stub, err := sess.NewMessageStub("teamA", "Edit", "teamB", "Edit", core.EngineCompiled, remote)
	if err != nil {
		b.Fatal(err)
	}
	msg := value.NewRecord(value.NewInt(3), value.NewInt(7), value.Real{V: 1.5}, value.NewInt(42))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stub.Send(msg); err != nil {
			b.Fatal(err)
		}
		<-received
	}
}

// --- Wire format ---

// BenchmarkWireMarshal measures CDR encoding/decoding of the fitter
// request at several sizes.
func BenchmarkWireMarshal(b *testing.B) {
	point := mtype.RecordOf(mtype.NewFloat32(), mtype.NewFloat32())
	req := mtype.NewRecord(mtype.Field{Name: "pts", Type: mtype.NewList(point)})
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("points=%d", n), func(b *testing.B) {
			v := value.NewRecord(ptsValue(n))
			enc := wire.NewEncoder(req)
			dec := wire.NewDecoder(req)
			data, err := enc.Marshal(v)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := enc.Marshal(v)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dec.Unmarshal(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations: what the isomorphism rules and the cache buy ---

// BenchmarkComparerAblation compares the fitter pair (and a failing
// variant) under reduced rule sets, reporting steps.
func BenchmarkComparerAblation(b *testing.B) {
	mkRules := map[string]func() compare.Rules{
		"default": compare.DefaultRules,
		"nocache": func() compare.Rules {
			r := compare.DefaultRules()
			r.Cache = false
			return r
		},
		"nounit": func() compare.Rules {
			r := compare.DefaultRules()
			r.UnitElimination = false
			return r
		},
	}
	for name, mk := range mkRules {
		b.Run(name, func(b *testing.B) {
			sess := fitterSession(b)
			sess.SetRules(mk())
			mtA, err := sess.Mtype("java", "JavaIdeal")
			if err != nil {
				b.Fatal(err)
			}
			mtB, err := sess.Mtype("c", "fitter")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			steps := 0
			for i := 0; i < b.N; i++ {
				c := compare.NewComparer(mk())
				if _, ok := c.Equivalent(mtA, mtB); !ok {
					b.Fatal("fitter pair must match under these rules")
				}
				steps += c.Steps()
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
	// The rules that make the match possible at all: measure the cost of
	// discovering failure without them.
	for name, mk := range map[string]func() compare.Rules{
		"noassoc-fails": func() compare.Rules {
			r := compare.DefaultRules()
			r.Associativity = false
			return r
		},
		"nocomm-fails": func() compare.Rules {
			r := compare.DefaultRules()
			r.Commutativity = false
			return r
		},
	} {
		b.Run(name, func(b *testing.B) {
			suite := synth.Generate(synth.VisualAgeMiniature())
			sess := core.NewSession()
			if err := sess.LoadJava("java", suite.JavaSource); err != nil {
				b.Fatal(err)
			}
			if err := sess.LoadIDL("idl", suite.IDLSource); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Annotate("java", suite.JavaScript); err != nil {
				b.Fatal(err)
			}
			sess.SetRules(mk())
			names := append(append([]string(nil), suite.DataClassNames...), suite.ServiceClassNames...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matched := 0
				for _, name := range names {
					v, err := sess.Compare("java", name, "idl", name)
					if err != nil {
						b.Fatal(err)
					}
					if v.Relation == core.RelEquivalent {
						matched++
					}
				}
				if matched == len(names) {
					b.Fatal("ablated rules should not match the full shuffled suite")
				}
			}
		})
	}
}

// --- Figure 8: recursive list comparison ---

// BenchmarkRecursiveListCompare measures coinductive equivalence on the
// Figure 8 cyclic graphs (fresh comparer each time: the cycle is the
// point).
func BenchmarkRecursiveListCompare(b *testing.B) {
	a := mtype.NewList(mtype.RecordOf(mtype.NewFloat32(), mtype.NewFloat32()))
	c2 := mtype.NewList(mtype.RecordOf(mtype.NewFloat32(), mtype.NewFloat32()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := compare.NewComparer(compare.DefaultRules())
		if _, ok := c.Equivalent(a, c2); !ok {
			b.Fatal("lists must match")
		}
	}
}

// --- Broker cache: cold vs warm compare (DESIGN.md broker subsystem) ---

// brokerSynthSrc is a moderately large C suite so the cold path (lower +
// structural compare) has real work to amortize.
func brokerSynthSrc(fields int) (a, b string) {
	var sa, sb strings.Builder
	kinds := []string{"int", "float", "short", "double"}
	sa.WriteString("typedef struct {\n")
	sb.WriteString("typedef struct {\n")
	for i := 0; i < fields; i++ {
		fmt.Fprintf(&sa, "  %s f%d;\n", kinds[i%len(kinds)], i)
		fmt.Fprintf(&sb, "  %s g%d;\n", kinds[i%len(kinds)], i)
	}
	sa.WriteString("} big;\n")
	sb.WriteString("} big;\n")
	return sa.String(), sb.String()
}

// BenchmarkBrokerCachedCompare measures the broker's verdict cache:
// "cold" pays lowering, fingerprinting, and the full structural
// comparison on a fresh broker each iteration; "warm" repeats the same
// compare against one broker and is a fingerprint-memo lookup plus an
// LRU hit.
func BenchmarkBrokerCachedCompare(b *testing.B) {
	srcA, srcB := brokerSynthSrc(400)
	load := func(tb testing.TB) *broker.Broker {
		br := broker.New(core.NewSession(), broker.Options{})
		if _, _, err := br.Load("a", "c", "ilp32", srcA, ""); err != nil {
			tb.Fatal(err)
		}
		if _, _, err := br.Load("b", "c", "ilp32", srcB, ""); err != nil {
			tb.Fatal(err)
		}
		return br
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			br := load(b)
			v, err := br.Compare("a", "big", "b", "big")
			if err != nil || v.Relation != core.RelEquivalent || v.Cached {
				b.Fatalf("verdict = %+v err=%v", v, err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		br := load(b)
		if _, err := br.Compare("a", "big", "b", "big"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := br.Compare("a", "big", "b", "big")
			if err != nil || !v.Cached {
				b.Fatalf("verdict = %+v err=%v", v, err)
			}
		}
	})
}

// --- Resilient transport: pooled connections vs per-call dials ---

// BenchmarkPooledVsFreshDial measures what the resil pool buys over the
// naive remote-client pattern of dialing a fresh orb connection per
// call: "fresh" pays TCP setup and teardown every iteration, "pooled"
// reuses one warm connection through the resil client.
func BenchmarkPooledVsFreshDial(b *testing.B) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })
	body := []byte("sixteen byte load")

	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := orb.Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Invoke("echo", 0, body); err != nil {
				b.Fatal(err)
			}
			_ = c.Close()
		}
	})

	b.Run("pooled", func(b *testing.B) {
		c := resil.New(srv.Addr(), resil.Options{})
		defer c.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Invoke("echo", 0, body); err != nil {
				b.Fatal(err)
			}
		}
	})
}
