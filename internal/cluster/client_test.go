package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/orb"
	"repro/internal/resil"
)

// echoFleet starts n orb servers whose "echo" handler replies with the
// server's own address, so tests can see which member served a call.
func echoFleet(t *testing.T, n int) (addrs []string, servers map[string]*orb.Server, calls map[string]*atomic.Int64) {
	t.Helper()
	servers = make(map[string]*orb.Server, n)
	calls = make(map[string]*atomic.Int64, n)
	for i := 0; i < n; i++ {
		srv, err := orb.NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		addr := srv.Addr()
		c := &atomic.Int64{}
		srv.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
			c.Add(1)
			return []byte(addr), nil
		})
		addrs = append(addrs, addr)
		servers[addr] = srv
		calls[addr] = c
	}
	return addrs, servers, calls
}

func testOpts() Options {
	return Options{Resil: resil.Options{
		MaxAttempts: 2,
		DialTimeout: 2 * time.Second,
		CallTimeout: 5 * time.Second,
		BackoffBase: time.Millisecond,
	}}
}

func TestClusterClientRoutesToOwner(t *testing.T) {
	addrs, _, _ := echoFleet(t, 3)
	c := New(addrs, testOpts())
	defer c.Close()

	for i := 0; i < 50; i++ {
		rk := RouteKey("route", fmt.Sprint(i))
		reply, err := c.InvokeKeyed(context.Background(), rk, "echo", 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := string(reply), c.Ring().Owner(rk); got != want {
			t.Fatalf("key %d served by %s, owner is %s", i, got, want)
		}
	}
	if st := c.Stats(); st.Failovers != 0 || st.Spills != 0 {
		t.Fatalf("healthy fleet recorded failovers=%d spills=%d", st.Failovers, st.Spills)
	}
}

func TestClusterClientFailover(t *testing.T) {
	addrs, servers, _ := echoFleet(t, 3)
	c := New(addrs, testOpts())
	defer c.Close()

	rk := RouteKey("doomed", "pair")
	owner := c.Ring().Owner(rk)
	_ = servers[owner].Close()

	reply, err := c.InvokeKeyed(context.Background(), rk, "echo", 1, nil)
	if err != nil {
		t.Fatalf("call with dead owner failed: %v", err)
	}
	if string(reply) == owner {
		t.Fatalf("dead owner %s served the call", owner)
	}
	if got, want := string(reply), c.Ring().Ranked(rk)[1]; got != want {
		t.Fatalf("failover served by %s, want next ranked %s", got, want)
	}
	if st := c.Stats(); st.Failovers == 0 {
		t.Fatal("failover not counted")
	}
}

// A deterministic remote error must NOT fail over: a replica would give
// the same answer, and retrying it fleet-wide would triple error load.
func TestClusterClientNoFailoverOnRemoteError(t *testing.T) {
	addrs, servers, calls := echoFleet(t, 3)
	rk := RouteKey("erroring", "pair")
	owner := NewRing(addrs).Owner(rk)
	servers[owner].Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		calls[owner].Add(1)
		return nil, errors.New("boom: bad request")
	})

	c := New(addrs, testOpts())
	defer c.Close()
	_, err := c.InvokeKeyed(context.Background(), rk, "echo", 1, nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the owner's boom", err)
	}
	for addr, n := range calls {
		if addr != owner && n.Load() != 0 {
			t.Fatalf("member %s was tried after a deterministic error", addr)
		}
	}
}

// "core: no universe" means the member lost state (restart) — the one
// remote error that must fail over, because a warm replica CAN answer.
func TestClusterClientFailoverOnMissingUniverse(t *testing.T) {
	addrs, servers, _ := echoFleet(t, 3)
	rk := RouteKey("amnesiac", "pair")
	owner := NewRing(addrs).Owner(rk)
	servers[owner].Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return nil, errors.New(`core: no universe "u42"`)
	})

	c := New(addrs, testOpts())
	defer c.Close()
	reply, err := c.InvokeKeyed(context.Background(), rk, "echo", 1, nil)
	if err != nil {
		t.Fatalf("call failed instead of failing over: %v", err)
	}
	if string(reply) == owner {
		t.Fatal("owner served despite missing universe")
	}
}

func TestClusterClientBroadcast(t *testing.T) {
	addrs, servers, calls := echoFleet(t, 3)
	c := New(addrs, testOpts())
	defer c.Close()

	if _, err := c.Broadcast(context.Background(), "echo", 1, nil); err != nil {
		t.Fatal(err)
	}
	for addr, n := range calls {
		if n.Load() == 0 {
			t.Fatalf("broadcast missed member %s", addr)
		}
	}

	// One member down: broadcast still succeeds (rolling-restart rule).
	_ = servers[addrs[0]].Close()
	if _, err := c.Broadcast(context.Background(), "echo", 1, nil); err != nil {
		t.Fatalf("broadcast with one dead member failed: %v", err)
	}

	// All members down: the broadcast must report failure.
	for _, srv := range servers {
		_ = srv.Close()
	}
	if _, err := c.Broadcast(context.Background(), "echo", 1, nil); err == nil {
		t.Fatal("broadcast succeeded with the whole fleet down")
	}
}

func TestClusterClientSpillover(t *testing.T) {
	addrs, _, _ := echoFleet(t, 3)
	opts := testOpts()
	opts.SpillInflight = 4
	c := New(addrs, opts)
	defer c.Close()

	rk := RouteKey("hot", "pair")
	order := c.Ring().Ranked(rk)
	owner, replica := c.member(order[0]), c.member(order[1])

	// Pretend the owner is saturated; the replica should take the call.
	owner.inflight.Store(100)
	reply, err := c.InvokeKeyed(context.Background(), rk, "echo", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != replica.addr {
		t.Fatalf("saturated owner: served by %s, want replica %s", reply, replica.addr)
	}
	if st := c.Stats(); st.Spills != 1 {
		t.Fatalf("Spills = %d, want 1", st.Spills)
	}

	// Below the gap threshold the owner keeps the key (cache affinity
	// beats perfect balance).
	owner.inflight.Store(int64(opts.SpillInflight))
	if reply, err = c.InvokeKeyed(context.Background(), rk, "echo", 1, nil); err != nil {
		t.Fatal(err)
	}
	if string(reply) != owner.addr {
		t.Fatalf("mildly loaded owner lost its key to %s", reply)
	}
}

func TestClusterClientMembershipChange(t *testing.T) {
	addrs, _, _ := echoFleet(t, 3)
	c := New(addrs, testOpts())
	defer c.Close()

	rk := RouteKey("moving", "pair")
	if _, err := c.InvokeKeyed(context.Background(), rk, "echo", 1, nil); err != nil {
		t.Fatal(err)
	}
	departed := c.Ring().Owner(rk)
	var rest []string
	for _, a := range addrs {
		if a != departed {
			rest = append(rest, a)
		}
	}
	c.SetMembers(rest)

	reply, err := c.InvokeKeyed(context.Background(), rk, "echo", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) == departed {
		t.Fatalf("departed member %s served a call", departed)
	}
	if got, want := fmt.Sprint(c.Members()), fmt.Sprint(NewRing(rest).Members()); got != want {
		t.Fatalf("members = %s, want %s", got, want)
	}

	if _, err := New(nil, testOpts()).InvokeKeyed(context.Background(), rk, "echo", 1, nil); !errors.Is(err, ErrNoMembers) {
		t.Fatalf("empty client err = %v, want ErrNoMembers", err)
	}
}
