package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/broker"
	"repro/internal/proto"
	"repro/internal/wire"
)

// RouteKey derives the ring key for a request from its identifying
// strings — for broker pair operations, the four (universe, declaration)
// names. Universe names are content hashes on the client side, so the
// key is content-addressed: every client hashes the same pair to the
// same owner, which is what makes the owner's cache worth routing to.
// Parts are length-prefixed so ("ab","c") and ("a","bc") differ.
func RouteKey(parts ...string) []byte {
	h := sha256.New()
	var n [4]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint32(n[:], uint32(len(p)))
		_, _ = h.Write(n[:])
		_, _ = h.Write([]byte(p))
	}
	return h.Sum(nil)
}

// pairHeaderT mirrors the broker protocol's pair request header:
// Record(uA, declA, uB, declB). The transport decodes only this prefix
// to learn the route key; the body passes through untouched.
var pairHeaderT = proto.Record(proto.StrT, proto.StrT, proto.StrT, proto.StrT)

// BrokerTransport routes the broker protocol across the fleet: it
// implements broker.Transport, so broker.NewTransportClient(t) yields a
// typed client whose requests are sharded by content.
//
//   - Pair operations (compare, plan, convert, batch) decode their
//     header and route by the pair's RouteKey to its ring owner;
//   - loads and annotations broadcast to every member (idempotent —
//     universes are content-addressed), so any member can own any pair;
//   - keyless operations (stats, health) go to the least loaded member.
type BrokerTransport struct {
	c *Client
}

// NewBrokerTransport wraps a cluster Client. The caller keeps ownership
// of the Client only notionally: Close closes it.
func NewBrokerTransport(c *Client) *BrokerTransport { return &BrokerTransport{c: c} }

// Dial builds a fleet transport over the given member addresses.
func Dial(addrs []string, opts Options) *BrokerTransport {
	return NewBrokerTransport(New(addrs, opts))
}

// Client returns the underlying cluster client (for stats and
// membership updates).
func (t *BrokerTransport) Client() *Client { return t.c }

// InvokeContext routes one broker-protocol request across the fleet.
func (t *BrokerTransport) InvokeContext(ctx context.Context, key string, op uint32, body []byte) ([]byte, error) {
	if key != broker.ObjectKey {
		return t.c.InvokeKeyed(ctx, nil, key, op, body)
	}
	switch op {
	case broker.OpLoad, broker.OpAnnotate:
		return t.c.Broadcast(ctx, key, op, body)
	case broker.OpCompare, broker.OpPlan, broker.OpConvert, broker.OpConvertBatch:
		hdr, _, err := wire.UnmarshalPrefix(pairHeaderT, body)
		if err != nil {
			return nil, fmt.Errorf("cluster: pair header: %w", err)
		}
		args, err := proto.RecordStrings(hdr, 4)
		if err != nil {
			return nil, fmt.Errorf("cluster: pair header: %w", err)
		}
		return t.c.InvokeKeyed(ctx, RouteKey(args...), key, op, body)
	default:
		return t.c.InvokeKeyed(ctx, nil, key, op, body)
	}
}

// Close closes the underlying cluster client.
func (t *BrokerTransport) Close() error { return t.c.Close() }
