// Package cluster turns N independent mbirdd daemons into one logical
// broker. Everything the broker caches is content-addressed (verdicts by
// canonical fingerprint pair, compiled converters and transcoders by
// exact pair), so the cache state is embarrassingly shardable: an entry
// computed anywhere is valid everywhere and never needs invalidation.
// The cluster layer exploits that property three ways:
//
//   - a Client generalizes the internal/resil single-endpoint pool into
//     a multi-endpoint client: each request's content-derived route key
//     rendezvous-hashes to an owner daemon, with least-inflight
//     spillover to the key's replicas under load and orderly failover
//     down the rank when a member is unreachable;
//   - a Node speaks a peer cache-warming protocol daemon-to-daemon over
//     the same orb admin plane: a daemon missing locally pulls the
//     verdict from the pair's owner, a daemon that compiles pushes the
//     entry to the pair's successors, and a (re)starting daemon syncs
//     the fleet's warm state before accepting traffic — so a rolling
//     restart never re-pays a cold compile;
//   - both report per-member counters feeding `mbird cluster status`.
//
// Membership is static per process (a -cluster flag), rebalanced by
// rendezvous hashing: when a member joins or leaves, only the keys it
// owns change hands, and the departed member's pools are drained, not
// dropped.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is an immutable rendezvous-hash (highest-random-weight) view of
// the member list. Every process that knows the same members computes
// the same owner for every key — no coordination, no token state, and a
// membership change only moves the keys the changed member scores
// highest on.
type Ring struct {
	members []string // sorted, deduplicated
}

// NewRing builds a ring over the given member addresses (order and
// duplicates are irrelevant).
func NewRing(members []string) *Ring {
	seen := make(map[string]bool, len(members))
	ms := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		ms = append(ms, m)
	}
	sort.Strings(ms)
	return &Ring{members: ms}
}

// Members returns the ring's member addresses, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// score is the rendezvous weight of one member for one key: a 64-bit
// FNV-1a over the member address, a separator, and the key bytes. The
// hash is deterministic across processes and Go versions, which is what
// lets every client and every daemon agree on ownership independently.
func score(member string, key []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(member))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write(key)
	return h.Sum64()
}

// Owner returns the member with the highest rendezvous score for key,
// or "" on an empty ring.
func (r *Ring) Owner(key []byte) string {
	var best string
	var bestScore uint64
	for _, m := range r.members {
		if s := score(m, key); best == "" || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// Ranked returns all members ordered by descending rendezvous score for
// key: index 0 is the owner, the next entries are its successors (the
// replicas warm pushes target and spillover may use).
func (r *Ring) Ranked(key []byte) []string {
	type ranked struct {
		m string
		s uint64
	}
	rs := make([]ranked, len(r.members))
	for i, m := range r.members {
		rs[i] = ranked{m: m, s: score(m, key)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].s != rs[j].s {
			return rs[i].s > rs[j].s
		}
		return rs[i].m < rs[j].m
	})
	out := make([]string, len(rs))
	for i, x := range rs {
		out[i] = x.m
	}
	return out
}

// Shares estimates each member's ownership share of the keyspace by
// sampling `samples` synthetic keys (1024 is plenty for a status
// display). Returns fractions summing to ~1; nil on an empty ring.
func (r *Ring) Shares(samples int) map[string]float64 {
	if len(r.members) == 0 || samples <= 0 {
		return nil
	}
	counts := make(map[string]int, len(r.members))
	for i := 0; i < samples; i++ {
		counts[r.Owner([]byte("share-sample-"+strconv.Itoa(i)))]++
	}
	out := make(map[string]float64, len(counts))
	for m, n := range counts {
		out[m] = float64(n) / float64(samples)
	}
	return out
}
