// Peer cache-warming protocol: the daemon-to-daemon ops spoken over the
// same orb/proto admin plane as the broker protocol, registered under
// their own object key on the same listener. Payloads are CDR against
// small protocol Mtypes, like every other mbird control surface.
package cluster

import (
	"fmt"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/mtype"
	"repro/internal/proto"
	"repro/internal/value"
)

// ObjectKey is the orb object key the peer warm service is registered
// under (alongside broker.ObjectKey on the same server).
const ObjectKey = "mbird.cluster"

// Peer protocol ops.
const (
	// OpPull: Record(uA, declA, uB, declB) → Record(found, relation,
	// steps, explain). A cache-only read on the serving peer: no compare
	// ever runs on behalf of a pull, so pulls cannot amplify load.
	OpPull uint32 = iota + 1
	// OpPush: Record(entry, List(loadRec)) → Record(accepted). Delivers
	// one warm entry with the universe sources it needs; the receiver
	// loads missing universes and adopts the verdict or recompiles the
	// converter/transcoder off the request path.
	OpPush
	// OpList: Record(max) → Record(List(loadRec), List(entry)). The bulk
	// warm-sync read a (re)starting daemon drains from each peer before
	// accepting traffic.
	OpList
	// OpStatus: empty → Record(self, List(member), pullsSent,
	// pushesSent, pushErrs, pushDrops, pushesRecv, pullsServed,
	// listsServed, synced). Feeds `mbird cluster status`.
	OpStatus
)

// Protocol Mtypes.
var (
	pullRepT = proto.Record(proto.IntT, proto.IntT, proto.IntT, proto.StrT)
	// loadRecT: universe, lang, model, source, script.
	loadRecT = proto.Record(proto.StrT, proto.StrT, proto.StrT, proto.StrT, proto.StrT)
	// entryT: kind, uA, declA, uB, declB, relation, steps, explain.
	entryT   = proto.Record(proto.StrT, proto.StrT, proto.StrT, proto.StrT, proto.StrT, proto.IntT, proto.IntT, proto.StrT)
	pushReqT = proto.Record(entryT, mtype.NewList(loadRecT))
	pushRepT = proto.Record(proto.IntT)
	listReqT = proto.Record(proto.IntT)
	listRepT = proto.Record(mtype.NewList(loadRecT), mtype.NewList(entryT))
	statusT  = proto.Record(
		proto.StrT, mtype.NewList(proto.StrT), // self, members
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, // pullsSent, pushesSent, pushErrs, pushDrops
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, // pushesRecv, pullsServed, listsServed, synced
		proto.IntT, proto.IntT, // expired, canceled
	)
)

func entryValue(e broker.WarmEntry) value.Value {
	return value.NewRecord(
		proto.Str(e.Kind), proto.Str(e.UA), proto.Str(e.DA), proto.Str(e.UB), proto.Str(e.DB),
		proto.Int(int64(e.Relation)), proto.Int(int64(e.Steps)), proto.Str(e.Explain))
}

func parseEntry(v value.Value) (broker.WarmEntry, error) {
	rec, ok := v.(value.Record)
	if !ok || len(rec.Fields) != 8 {
		return broker.WarmEntry{}, fmt.Errorf("cluster: malformed warm entry: %v", v)
	}
	var e broker.WarmEntry
	var err error
	if e.Kind, err = proto.GoStr(rec.Fields[0]); err != nil {
		return e, err
	}
	for i, dst := range []*string{&e.UA, &e.DA, &e.UB, &e.DB} {
		if *dst, err = proto.GoStr(rec.Fields[1+i]); err != nil {
			return e, err
		}
	}
	rel, err := proto.GoInt(rec.Fields[5])
	if err != nil {
		return e, err
	}
	steps, err := proto.GoInt(rec.Fields[6])
	if err != nil {
		return e, err
	}
	e.Relation = core.Relation(rel)
	e.Steps = int(steps)
	e.Explain, err = proto.GoStr(rec.Fields[7])
	return e, err
}

func loadRecValue(r broker.LoadRecord) value.Value {
	return value.NewRecord(
		proto.Str(r.Universe), proto.Str(r.Lang), proto.Str(r.Model), proto.Str(r.Source), proto.Str(r.Script))
}

func parseLoadRec(v value.Value) (broker.LoadRecord, error) {
	ss, err := proto.RecordStrings(v, 5)
	if err != nil {
		return broker.LoadRecord{}, fmt.Errorf("cluster: malformed load record: %w", err)
	}
	return broker.LoadRecord{Universe: ss[0], Lang: ss[1], Model: ss[2], Source: ss[3], Script: ss[4]}, nil
}

func loadRecList(rs []broker.LoadRecord) value.Value {
	vs := make([]value.Value, len(rs))
	for i, r := range rs {
		vs[i] = loadRecValue(r)
	}
	return value.FromSlice(vs)
}

func parseLoadRecList(v value.Value) ([]broker.LoadRecord, error) {
	elems, err := value.ToSlice(v)
	if err != nil {
		return nil, err
	}
	out := make([]broker.LoadRecord, len(elems))
	for i, e := range elems {
		if out[i], err = parseLoadRec(e); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func entryList(es []broker.WarmEntry) value.Value {
	vs := make([]value.Value, len(es))
	for i, e := range es {
		vs[i] = entryValue(e)
	}
	return value.FromSlice(vs)
}

func parseEntryList(v value.Value) ([]broker.WarmEntry, error) {
	elems, err := value.ToSlice(v)
	if err != nil {
		return nil, err
	}
	out := make([]broker.WarmEntry, len(elems))
	for i, e := range elems {
		if out[i], err = parseEntry(e); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// NodeStatus is one daemon's view of the warm protocol, served by
// OpStatus and rendered by `mbird cluster status`.
type NodeStatus struct {
	// Self is the daemon's advertised cluster address; Members is its
	// member list (agreement across nodes is checked by the CLI).
	Self    string
	Members []string
	// PullsSent counts owner pulls attempted on local verdict misses.
	PullsSent int64
	// PushesSent / PushErrs / PushDrops count warm pushes to successors:
	// delivered, failed in transport, and dropped on queue overflow.
	PushesSent, PushErrs, PushDrops int64
	// PushesRecv counts pushes accepted from peers; PullsServed and
	// ListsServed count peer reads answered.
	PushesRecv, PullsServed, ListsServed int64
	// Synced counts entries warmed by SyncFromPeers at startup.
	Synced int64
	// Expired counts requests the daemon's orb server shed or abandoned
	// because the caller's propagated deadline budget was spent; Canceled
	// counts in-flight requests aborted by client cancel frames. Both
	// come from the serving broker's health snapshot.
	Expired, Canceled int64
}
