package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/proto"
	"repro/internal/resil"
	"repro/internal/value"
	"repro/internal/wire"
)

// NodeOptions configures a cluster Node. Zero values select the
// defaults.
type NodeOptions struct {
	// Resil tunes the peer-link pools. The node overrides nothing the
	// caller sets, but its own defaults are tighter than resil's: peers
	// are LAN neighbors, not WAN clients.
	Resil resil.Options
	// Replicas is how many ring positions (owner + successors) each warm
	// entry is pushed to (default 2, matching Options.Replicas).
	Replicas int
	// PushQueue bounds the background push queue (default 1024); a full
	// queue drops the push (counted) rather than blocking a cache fill.
	PushQueue int
	// PullTimeout bounds an owner pull on the request path (default 2s —
	// a miss then compiles locally, so this is the most latency a dead
	// owner can add to a cold compare).
	PullTimeout time.Duration
	// PushTimeout bounds one warm push RPC (default 10s: the receiver
	// compiles synchronously).
	PushTimeout time.Duration
	// SyncMax bounds the warm entries requested from each peer during
	// SyncFromPeers (default 4096).
	SyncMax int
	// MaxPeerInFlight bounds concurrently served peer requests (default
	// 32); excess is shed with orb.ErrOverloaded, so a peer storm cannot
	// starve the client-facing data plane.
	MaxPeerInFlight int
}

func (o NodeOptions) withDefaults() NodeOptions {
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.PushQueue <= 0 {
		o.PushQueue = 1024
	}
	if o.PullTimeout <= 0 {
		o.PullTimeout = 2 * time.Second
	}
	if o.PushTimeout <= 0 {
		o.PushTimeout = 10 * time.Second
	}
	if o.SyncMax <= 0 {
		o.SyncMax = 4096
	}
	if o.MaxPeerInFlight <= 0 {
		o.MaxPeerInFlight = 32
	}
	if o.Resil.MaxAttempts == 0 {
		o.Resil.MaxAttempts = 2
	}
	if o.Resil.PoolSize == 0 {
		o.Resil.PoolSize = 2
	}
	if o.Resil.DialTimeout == 0 {
		o.Resil.DialTimeout = 2 * time.Second
	}
	return o
}

type pushJob struct {
	kind, ua, da, ub, db string
}

// Node is one daemon's membership in the cluster: it implements
// broker.PeerWarmer (installed on the local broker by NewNode), serves
// the peer warm protocol to other daemons, and maintains resilient
// links to every peer. All methods are safe for concurrent use.
type Node struct {
	self string
	b    *broker.Broker
	opts NodeOptions

	ring atomic.Pointer[Ring]

	mu     sync.Mutex
	peers  map[string]*resil.Client
	closed bool

	queue chan pushJob
	stop  chan struct{}
	done  chan struct{}

	admit chan struct{}

	pullsSent   atomic.Int64
	pushesSent  atomic.Int64
	pushErrs    atomic.Int64
	pushDrops   atomic.Int64
	pushesRecv  atomic.Int64
	pullsServed atomic.Int64
	listsServed atomic.Int64
	synced      atomic.Int64
}

// NewNode joins broker b to a cluster as the member advertised at self
// (which should appear in members). It installs itself as the broker's
// peer warmer and starts the background push worker; call Close to
// detach.
func NewNode(self string, members []string, b *broker.Broker, opts NodeOptions) *Node {
	opts = opts.withDefaults()
	n := &Node{
		self:  self,
		b:     b,
		opts:  opts,
		peers: make(map[string]*resil.Client),
		queue: make(chan pushJob, opts.PushQueue),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		admit: make(chan struct{}, opts.MaxPeerInFlight),
	}
	n.ring.Store(NewRing(members))
	b.SetWarmer(n)
	go n.pushWorker()
	return n
}

// Serve registers the node's peer warm service on an orb server (the
// same server that serves broker.ObjectKey).
func Serve(srv *orb.Server, n *Node) {
	srv.Register(ObjectKey, n.Handler())
}

// Close detaches the node from its broker, stops the push worker, and
// closes every peer link.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	peers := n.peers
	n.peers = map[string]*resil.Client{}
	n.mu.Unlock()
	n.b.SetWarmer(nil)
	close(n.stop)
	<-n.done
	for _, p := range peers {
		_ = p.Close()
	}
	return nil
}

// Self returns the node's advertised cluster address.
func (n *Node) Self() string { return n.self }

// Members returns the node's current member list, sorted.
func (n *Node) Members() []string { return n.ring.Load().Members() }

// Ring returns the node's current ring view.
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Peers reports the number of other members (broker.PeerWarmer).
func (n *Node) Peers() int {
	c := 0
	for _, m := range n.ring.Load().Members() {
		if m != n.self {
			c++
		}
	}
	return c
}

// SetMembers replaces the member list; links to departed peers drain
// gracefully in the background.
func (n *Node) SetMembers(members []string) {
	ring := NewRing(members)
	keep := make(map[string]bool, ring.Len())
	for _, m := range ring.Members() {
		keep[m] = true
	}
	var drain []*resil.Client
	n.mu.Lock()
	for addr, p := range n.peers {
		if !keep[addr] {
			drain = append(drain, p)
			delete(n.peers, addr)
		}
	}
	n.mu.Unlock()
	n.ring.Store(ring)
	for _, p := range drain {
		go func(p *resil.Client) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = p.Drain(ctx)
		}(p)
	}
}

// peerPool returns (lazily creating) the resilient link to one peer.
func (n *Node) peerPool(addr string) *resil.Client {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	if p := n.peers[addr]; p != nil {
		return p
	}
	p := resil.New(addr, n.opts.Resil)
	n.peers[addr] = p
	return p
}

// othersRanked returns the pair's ring order with self removed.
func (n *Node) othersRanked(rk []byte) []string {
	ranked := n.ring.Load().Ranked(rk)
	out := ranked[:0]
	for _, m := range ranked {
		if m != n.self {
			out = append(out, m)
		}
	}
	return out
}

// --- broker.PeerWarmer ---

// PullVerdict asks the pair's best-ranked other member for its cached
// verdict (broker.PeerWarmer; called on the request path inside a
// verdict miss). One attempt against one peer, bounded by PullTimeout:
// on any failure the caller just compares locally.
func (n *Node) PullVerdict(ua, da, ub, db string) (core.Relation, int, string, bool) {
	others := n.othersRanked(RouteKey(ua, da, ub, db))
	if len(others) == 0 {
		return 0, 0, "", false
	}
	p := n.peerPool(others[0])
	if p == nil {
		return 0, 0, "", false
	}
	n.pullsSent.Add(1)
	body, err := proto.MarshalStrings(pairHeaderT, ua, da, ub, db)
	if err != nil {
		return 0, 0, "", false
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.opts.PullTimeout)
	defer cancel()
	reply, err := p.InvokeContext(ctx, ObjectKey, OpPull, body)
	if err != nil {
		return 0, 0, "", false
	}
	v, err := wire.Unmarshal(pullRepT, reply)
	if err != nil {
		return 0, 0, "", false
	}
	r := proto.NewInts(v)
	found, rel, steps := r.Get(0), r.Get(1), r.Get(2)
	if r.Err() != nil || found == 0 {
		return 0, 0, "", false
	}
	rec := v.(value.Record)
	explain, err := proto.GoStr(rec.Fields[3])
	if err != nil {
		return 0, 0, "", false
	}
	return core.Relation(rel), int(steps), explain, true
}

// PushCompiled enqueues a warm push of a freshly filled entry
// (broker.PeerWarmer; called inside cache fills, so it never blocks —
// a full queue drops the push and counts the drop).
func (n *Node) PushCompiled(kind, ua, da, ub, db string) {
	select {
	case n.queue <- pushJob{kind, ua, da, ub, db}:
	default:
		n.pushDrops.Add(1)
	}
}

// pushWorker drains the push queue, replicating each entry to the
// pair's ring successors.
func (n *Node) pushWorker() {
	defer close(n.done)
	for {
		select {
		case <-n.stop:
			return
		case j := <-n.queue:
			n.pushOne(j)
		}
	}
}

// pushOne sends one warm entry to the first Replicas ranked members of
// its pair (self excluded — self already holds the entry).
func (n *Node) pushOne(j pushJob) {
	rk := RouteKey(j.ua, j.da, j.ub, j.db)
	targets := n.ring.Load().Ranked(rk)
	if len(targets) > n.opts.Replicas {
		targets = targets[:n.opts.Replicas]
	}
	body, err := n.pushBody(j)
	if err != nil {
		n.pushErrs.Add(1)
		return
	}
	for _, addr := range targets {
		if addr == n.self {
			continue
		}
		p := n.peerPool(addr)
		if p == nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.opts.PushTimeout)
		_, err := p.InvokeContext(ctx, ObjectKey, OpPush, body)
		cancel()
		if err != nil {
			n.pushErrs.Add(1)
			continue
		}
		n.pushesSent.Add(1)
	}
}

// pushBody marshals one warm entry with the universe sources the
// receiver needs to replay it.
func (n *Node) pushBody(j pushJob) ([]byte, error) {
	e := broker.WarmEntry{Kind: j.kind, UA: j.ua, DA: j.da, UB: j.ub, DB: j.db}
	if j.kind == broker.KindVerdict {
		v, ok := n.b.PeekVerdict(j.ua, j.da, j.ub, j.db)
		if !ok {
			return nil, errors.New("cluster: verdict evicted before push")
		}
		e.Relation, e.Steps, e.Explain = v.Relation, v.Steps, v.Explain
	}
	var recs []broker.LoadRecord
	seen := map[string]bool{}
	for _, u := range []string{j.ua, j.ub} {
		if seen[u] {
			continue
		}
		seen[u] = true
		if r, ok := n.b.LoadRecord(u); ok {
			recs = append(recs, r)
		}
	}
	return wire.Marshal(pushReqT, value.NewRecord(entryValue(e), loadRecList(recs)))
}

// --- warm application (shared by push handling and sync) ---

// ensureUniverses replays load records the local broker is missing.
func (n *Node) ensureUniverses(recs []broker.LoadRecord) error {
	for _, r := range recs {
		if n.b.HasUniverse(r.Universe) {
			continue
		}
		if _, _, err := n.b.Load(r.Universe, r.Lang, r.Model, r.Source, r.Script); err != nil {
			return fmt.Errorf("cluster: warm load %s: %w", r.Universe, err)
		}
	}
	return nil
}

// applyEntry warms one entry into the local broker, reporting whether
// new cache state was materialized.
func (n *Node) applyEntry(e broker.WarmEntry) (bool, error) {
	switch e.Kind {
	case broker.KindVerdict:
		return n.b.WarmVerdict(e.UA, e.DA, e.UB, e.DB, e.Relation, e.Steps, e.Explain)
	case broker.KindConverter:
		return true, n.b.WarmConverter(e.UA, e.DA, e.UB, e.DB)
	case broker.KindTranscoder:
		return true, n.b.WarmTranscoder(e.UA, e.DA, e.UB, e.DB)
	default:
		return false, fmt.Errorf("cluster: unknown warm kind %q", e.Kind)
	}
}

// SyncFromPeers drains every peer's warm state into the local broker:
// universes load, verdicts transfer as data, converters and transcoders
// recompile locally — all before the daemon accepts client traffic, so
// a restarted member rejoins hot. Returns the number of entries warmed.
// Unreachable peers are skipped; an error is returned only when every
// peer failed (one live peer is enough to warm from).
func (n *Node) SyncFromPeers(ctx context.Context) (int, error) {
	others := 0
	warmed := 0
	var lastErr error
	seen := map[string]bool{}
	for _, addr := range n.ring.Load().Members() {
		if addr == n.self {
			continue
		}
		others++
		recs, entries, err := n.listFrom(ctx, addr)
		if err != nil {
			lastErr = err
			continue
		}
		if err := n.ensureUniverses(recs); err != nil {
			lastErr = err
			continue
		}
		for _, e := range entries {
			k := e.Kind + "\x00" + e.UA + "\x00" + e.DA + "\x00" + e.UB + "\x00" + e.DB
			if seen[k] {
				continue
			}
			seen[k] = true
			if ok, err := n.applyEntry(e); err == nil && ok {
				warmed++
				n.synced.Add(1)
			}
		}
	}
	if others > 0 && lastErr != nil && warmed == 0 && len(seen) == 0 {
		return 0, fmt.Errorf("cluster: warm sync failed on all peers: %w", lastErr)
	}
	return warmed, nil
}

// listFrom fetches one peer's warm-state snapshot.
func (n *Node) listFrom(ctx context.Context, addr string) ([]broker.LoadRecord, []broker.WarmEntry, error) {
	p := n.peerPool(addr)
	if p == nil {
		return nil, nil, errors.New("cluster: node closed")
	}
	body, err := wire.Marshal(listReqT, value.NewRecord(proto.Int(int64(n.opts.SyncMax))))
	if err != nil {
		return nil, nil, err
	}
	reply, err := p.InvokeContext(ctx, ObjectKey, OpList, body)
	if err != nil {
		return nil, nil, err
	}
	v, err := wire.Unmarshal(listRepT, reply)
	if err != nil {
		return nil, nil, err
	}
	rec, ok := v.(value.Record)
	if !ok || len(rec.Fields) != 2 {
		return nil, nil, fmt.Errorf("cluster: malformed list reply: %v", v)
	}
	recs, err := parseLoadRecList(rec.Fields[0])
	if err != nil {
		return nil, nil, err
	}
	entries, err := parseEntryList(rec.Fields[1])
	if err != nil {
		return nil, nil, err
	}
	return recs, entries, nil
}

// Status snapshots the node's warm-protocol counters, plus the serving
// broker's deadline counters so `mbird cluster status` shows where
// budget expiries land across the fleet.
func (n *Node) Status() NodeStatus {
	h := n.b.Health()
	return NodeStatus{
		Self:        n.self,
		Members:     n.Members(),
		PullsSent:   n.pullsSent.Load(),
		PushesSent:  n.pushesSent.Load(),
		PushErrs:    n.pushErrs.Load(),
		PushDrops:   n.pushDrops.Load(),
		PushesRecv:  n.pushesRecv.Load(),
		PullsServed: n.pullsServed.Load(),
		ListsServed: n.listsServed.Load(),
		Synced:      n.synced.Load(),
		Expired:     h.Expired,
		Canceled:    h.Canceled,
	}
}

// --- peer service (server side) ---

// Handler returns the orb handler serving the peer warm protocol, with
// its own small admission gate so peer traffic cannot crowd out the
// client-facing data plane.
func (n *Node) Handler() orb.Handler {
	return func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		select {
		case n.admit <- struct{}{}:
			defer func() { <-n.admit }()
		default:
			return nil, fmt.Errorf("%w: %d peer requests already in flight", orb.ErrOverloaded, cap(n.admit))
		}
		switch op {
		case OpPull:
			args, err := proto.UnmarshalStrings(pairHeaderT, body, 4)
			if err != nil {
				return nil, err
			}
			n.pullsServed.Add(1)
			found, rel, steps, explain := int64(0), int64(0), int64(0), ""
			if v, ok := n.b.PeekVerdict(args[0], args[1], args[2], args[3]); ok {
				found, rel, steps, explain = 1, int64(v.Relation), int64(v.Steps), v.Explain
			}
			return wire.Marshal(pullRepT, value.NewRecord(
				proto.Int(found), proto.Int(rel), proto.Int(steps), proto.Str(explain)))

		case OpPush:
			v, err := wire.Unmarshal(pushReqT, body)
			if err != nil {
				return nil, err
			}
			rec, ok := v.(value.Record)
			if !ok || len(rec.Fields) != 2 {
				return nil, fmt.Errorf("cluster: malformed push: %v", v)
			}
			e, err := parseEntry(rec.Fields[0])
			if err != nil {
				return nil, err
			}
			recs, err := parseLoadRecList(rec.Fields[1])
			if err != nil {
				return nil, err
			}
			accepted := int64(0)
			if err := n.ensureUniverses(recs); err == nil {
				if ok, err := n.applyEntry(e); err == nil && ok {
					accepted = 1
					n.pushesRecv.Add(1)
				}
			}
			return wire.Marshal(pushRepT, value.NewRecord(proto.Int(accepted)))

		case OpList:
			v, err := wire.Unmarshal(listReqT, body)
			if err != nil {
				return nil, err
			}
			r := proto.NewInts(v)
			max := int(r.Get(0))
			if err := r.Err(); err != nil {
				return nil, err
			}
			if max <= 0 || max > 1<<16 {
				max = 1 << 16
			}
			n.listsServed.Add(1)
			recs, entries := n.b.WarmEntries(max)
			return wire.Marshal(listRepT, value.NewRecord(loadRecList(recs), entryList(entries)))

		case OpStatus:
			st := n.Status()
			members := make([]value.Value, len(st.Members))
			for i, m := range st.Members {
				members[i] = proto.Str(m)
			}
			return wire.Marshal(statusT, value.NewRecord(
				proto.Str(st.Self), value.FromSlice(members),
				proto.Int(st.PullsSent), proto.Int(st.PushesSent), proto.Int(st.PushErrs), proto.Int(st.PushDrops),
				proto.Int(st.PushesRecv), proto.Int(st.PullsServed), proto.Int(st.ListsServed), proto.Int(st.Synced),
				proto.Int(st.Expired), proto.Int(st.Canceled)))

		default:
			return nil, fmt.Errorf("cluster: unknown peer op %d", op)
		}
	}
}

// FetchStatus reads a daemon's NodeStatus over any transport (a plain
// orb client or a resil pool) — the read `mbird cluster status` makes.
type statusTransport interface {
	InvokeContext(ctx context.Context, key string, op uint32, body []byte) ([]byte, error)
}

// FetchStatus fetches the peer-protocol status of the daemon behind t.
func FetchStatus(ctx context.Context, t statusTransport) (NodeStatus, error) {
	reply, err := t.InvokeContext(ctx, ObjectKey, OpStatus, nil)
	if err != nil {
		return NodeStatus{}, err
	}
	v, err := wire.Unmarshal(statusT, reply)
	if err != nil {
		return NodeStatus{}, err
	}
	rec, ok := v.(value.Record)
	if !ok || len(rec.Fields) != 12 {
		return NodeStatus{}, fmt.Errorf("cluster: malformed status reply: %v", v)
	}
	var st NodeStatus
	if st.Self, err = proto.GoStr(rec.Fields[0]); err != nil {
		return NodeStatus{}, err
	}
	elems, err := value.ToSlice(rec.Fields[1])
	if err != nil {
		return NodeStatus{}, err
	}
	st.Members = make([]string, len(elems))
	for i, e := range elems {
		if st.Members[i], err = proto.GoStr(e); err != nil {
			return NodeStatus{}, err
		}
	}
	r := proto.NewInts(v)
	st.PullsSent, st.PushesSent, st.PushErrs, st.PushDrops = r.Get(2), r.Get(3), r.Get(4), r.Get(5)
	st.PushesRecv, st.PullsServed, st.ListsServed, st.Synced = r.Get(6), r.Get(7), r.Get(8), r.Get(9)
	st.Expired, st.Canceled = r.Get(10), r.Get(11)
	return st, r.Err()
}
