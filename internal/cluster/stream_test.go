package cluster

import (
	"context"
	"io"
	"testing"

	"repro/internal/orb"
)

// registerStreamEcho adds a stream "echo" handler to every fleet member
// that replies with the member's own address (like the buffered echo),
// after draining the request body.
func registerStreamEcho(servers map[string]*orb.Server) {
	for addr, srv := range servers {
		a := addr
		srv.RegisterStream("echo", func(ctx context.Context, op uint32, in *orb.StreamReader, out *orb.StreamWriter) error {
			if _, err := io.Copy(io.Discard, in); err != nil {
				return err
			}
			_, err := out.Write([]byte(a))
			return err
		})
	}
}

// openAndDrain runs one keyed stream to completion and returns the
// reply body (the serving member's address).
func openAndDrain(t *testing.T, c *Client, rk []byte) string {
	t.Helper()
	sc, done, err := c.OpenStreamKeyed(context.Background(), rk, "echo", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Write([]byte("body")); err != nil {
		t.Fatal(err)
	}
	if err := sc.CloseSend(); err != nil {
		t.Fatal(err)
	}
	reply, err := io.ReadAll(sc)
	if err != nil {
		t.Fatal(err)
	}
	_ = sc.Close()
	done(nil)
	return string(reply)
}

func TestOpenStreamKeyedRoutesToOwner(t *testing.T) {
	addrs, servers, _ := echoFleet(t, 3)
	registerStreamEcho(servers)
	c := New(addrs, testOpts())
	defer c.Close()

	rk := RouteKey("stream", "route-1")
	owner := c.Ring().Owner(rk)
	if got := openAndDrain(t, c, rk); got != owner {
		t.Fatalf("stream served by %s, ring owner is %s", got, owner)
	}
}

func TestOpenStreamKeyedFailsOverOnDeadOwner(t *testing.T) {
	addrs, servers, _ := echoFleet(t, 3)
	registerStreamEcho(servers)
	c := New(addrs, testOpts())
	defer c.Close()

	rk := RouteKey("stream", "route-2")
	ranked := c.Ring().Ranked(rk)
	_ = servers[ranked[0]].Close()

	got := openAndDrain(t, c, rk)
	if got == ranked[0] {
		t.Fatalf("stream served by the dead owner %s", got)
	}
	if got != ranked[1] && got != ranked[2] {
		t.Fatalf("stream served by %s, not a ranked replica %v", got, ranked[1:])
	}
	if st := c.Stats(); st.Failovers == 0 {
		t.Errorf("failovers = 0 after the owner died; stats = %+v", st)
	}
}

func TestOpenStreamKeyedNoMembers(t *testing.T) {
	c := New(nil, testOpts())
	defer c.Close()
	if _, _, err := c.OpenStreamKeyed(context.Background(), RouteKey("x", "y"), "echo", 1); err != ErrNoMembers {
		t.Fatalf("err = %v, want ErrNoMembers", err)
	}
}
