package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/orb"
)

// reservePort grabs an ephemeral port and frees it so a daemon can bind
// it — and, crucially, bind it AGAIN after a restart.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// chaosDaemon is one restartable fleet member: its fixed listen address,
// the chaos proxy in front of it (whose address is the member address
// every peer and client dials), and the current broker/node/server
// incarnation.
type chaosDaemon struct {
	listenAddr string
	proxy      *chaos.Proxy
	b          *broker.Broker
	n          *Node
	srv        *orb.Server
}

// start boots (or reboots) the daemon: fresh broker, warm sync from
// peers BEFORE the listener binds (exactly mbirdd's cluster startup
// order), then serve.
func (d *chaosDaemon) start(t *testing.T, self string, members []string, warm bool) {
	t.Helper()
	d.b = broker.New(core.NewSession(), broker.Options{})
	d.n = NewNode(self, members, d.b, NodeOptions{})
	if warm {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := d.n.SyncFromPeers(ctx); err != nil {
			t.Logf("warm sync: %v (starting cold)", err)
		}
	}
	srv, err := orb.NewServer(d.listenAddr)
	if err != nil {
		t.Fatal(err)
	}
	d.srv = srv
	broker.Serve(srv, d.b)
	Serve(srv, d.n)
}

func (d *chaosDaemon) kill() {
	_ = d.srv.Close()
	_ = d.n.Close()
}

// chaosPairs are distinct equivalent declaration pairs, so the fleet's
// cold compiles spread across several ring owners.
func chaosPairs(n int) [][4]string {
	out := make([][4]string, n)
	for i := range out {
		out[i] = [4]string{
			fmt.Sprintf("cx%d", i), fmt.Sprintf("typedef struct { float r%d; int n%d; char tag%d[%d]; } mix%d;", i, i, i, i+2, i),
			fmt.Sprintf("cy%d", i), fmt.Sprintf("typedef struct { int count%d; char label%d[%d]; float ratio%d; } pair%d;", i, i, i+2, i, i),
		}
	}
	return out
}

// TestChaosClusterWarmRestart kills and restarts one member of a 3-node
// fleet behind chaos proxies while a client hammers the fleet, and
// asserts the two cluster invariants: no request is dropped during the
// outage or the rejoin, and after the restarted member warm-syncs, the
// fleet serves the whole working set without re-running a single
// comparison — the warm-cache hit rate recovers without recompiles.
func TestChaosClusterWarmRestart(t *testing.T) {
	const nodes = 3
	daemons := make([]*chaosDaemon, nodes)
	var members []string
	for i := range daemons {
		d := &chaosDaemon{listenAddr: reservePort(t)}
		p, err := chaos.New("127.0.0.1:0", d.listenAddr, chaos.Faults{
			Latency: 200 * time.Microsecond,
			Jitter:  300 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		d.proxy = p
		daemons[i] = d
		members = append(members, p.Addr())
	}
	for i, d := range daemons {
		d.start(t, members[i], members, false)
	}
	t.Cleanup(func() {
		for _, d := range daemons {
			d.kill()
		}
	})

	bt := Dial(members, testOpts())
	c := broker.NewTransportClient(bt)
	defer c.Close()

	pairs := chaosPairs(8)
	for _, p := range pairs {
		if _, _, err := c.Load(p[0], "c", "ilp32", p[1], ""); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Load(p[2], "c", "ilp32", p[3], ""); err != nil {
			t.Fatal(err)
		}
	}
	compareAll := func() error {
		for i, p := range pairs {
			v, err := c.Compare(p[0], fmt.Sprintf("mix%d", i), p[2], fmt.Sprintf("pair%d", i))
			if err != nil {
				return fmt.Errorf("pair %d: %w", i, err)
			}
			if v.Relation != core.RelEquivalent {
				return fmt.Errorf("pair %d: relation %v", i, v.Relation)
			}
		}
		return nil
	}
	// Cold round: every pair compiles once, somewhere in the fleet.
	if err := compareAll(); err != nil {
		t.Fatal(err)
	}
	// Let the push workers finish replicating to successors, so the
	// survivors hold the victim's entries before it dies.
	eventually(t, "warm replication of the working set", func() bool {
		var fills int64
		for _, d := range daemons {
			fills += d.b.Stats().WarmFills
		}
		return fills >= int64(len(pairs))
	})

	// Continuous load while one member dies and rejoins. Every request
	// must succeed: failover covers the outage, warm sync the rejoin.
	var clientErrs atomic.Int64
	var requests atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := compareAll(); err != nil {
					t.Log(err)
					clientErrs.Add(1)
				}
				requests.Add(int64(len(pairs)))
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	victim := daemons[1]
	victim.kill()
	time.Sleep(100 * time.Millisecond) // fleet serves 2-of-3 for a while
	victim.start(t, members[1], members, true)
	time.Sleep(100 * time.Millisecond) // rejoined member takes traffic again
	close(stop)
	wg.Wait()

	if n := clientErrs.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed during kill/restart", n, requests.Load())
	}

	// The restarted member must have warmed from its peers, not from
	// client traffic re-paying compiles.
	if victim.b.Stats().WarmFills == 0 {
		t.Fatal("restarted member has no warm fills after sync")
	}
	if victim.n.Status().Synced == 0 {
		t.Fatal("restarted member synced nothing")
	}

	// Recompile audit: one more full sweep of the working set must not
	// run a single new comparison anywhere in the fleet, and must be
	// served (at least partly) by warmed entries.
	runsBefore, warmHitsBefore := int64(0), int64(0)
	for _, d := range daemons {
		st := d.b.Stats()
		runsBefore += st.CompareRuns
		warmHitsBefore += st.WarmHits
	}
	if err := compareAll(); err != nil {
		t.Fatal(err)
	}
	runsAfter, warmHitsAfter := int64(0), int64(0)
	for _, d := range daemons {
		st := d.b.Stats()
		runsAfter += st.CompareRuns
		warmHitsAfter += st.WarmHits
	}
	if runsAfter != runsBefore {
		t.Fatalf("post-restart sweep re-ran %d comparisons, want 0", runsAfter-runsBefore)
	}
	if warmHitsAfter <= warmHitsBefore {
		t.Fatal("post-restart sweep recorded no warm hits")
	}
}
