package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/resil"
)

// reservePort grabs an ephemeral port and frees it so a daemon can bind
// it — and, crucially, bind it AGAIN after a restart.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// chaosDaemon is one restartable fleet member: its fixed listen address,
// the chaos proxy in front of it (whose address is the member address
// every peer and client dials), and the current broker/node/server
// incarnation.
type chaosDaemon struct {
	listenAddr string
	proxy      *chaos.Proxy
	b          *broker.Broker
	n          *Node
	srv        *orb.Server
}

// start boots (or reboots) the daemon: fresh broker, warm sync from
// peers BEFORE the listener binds (exactly mbirdd's cluster startup
// order), then serve.
func (d *chaosDaemon) start(t *testing.T, self string, members []string, warm bool) {
	t.Helper()
	d.b = broker.New(core.NewSession(), broker.Options{})
	d.n = NewNode(self, members, d.b, NodeOptions{})
	if warm {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := d.n.SyncFromPeers(ctx); err != nil {
			t.Logf("warm sync: %v (starting cold)", err)
		}
	}
	srv, err := orb.NewServer(d.listenAddr)
	if err != nil {
		t.Fatal(err)
	}
	d.srv = srv
	broker.Serve(srv, d.b)
	Serve(srv, d.n)
}

func (d *chaosDaemon) kill() {
	_ = d.srv.Close()
	_ = d.n.Close()
}

// chaosPairs are distinct equivalent declaration pairs, so the fleet's
// cold compiles spread across several ring owners.
func chaosPairs(n int) [][4]string {
	out := make([][4]string, n)
	for i := range out {
		out[i] = [4]string{
			fmt.Sprintf("cx%d", i), fmt.Sprintf("typedef struct { float r%d; int n%d; char tag%d[%d]; } mix%d;", i, i, i, i+2, i),
			fmt.Sprintf("cy%d", i), fmt.Sprintf("typedef struct { int count%d; char label%d[%d]; float ratio%d; } pair%d;", i, i, i+2, i, i),
		}
	}
	return out
}

// TestChaosClusterWarmRestart kills and restarts one member of a 3-node
// fleet behind chaos proxies while a client hammers the fleet, and
// asserts the two cluster invariants: no request is dropped during the
// outage or the rejoin, and after the restarted member warm-syncs, the
// fleet serves the whole working set without re-running a single
// comparison — the warm-cache hit rate recovers without recompiles.
func TestChaosClusterWarmRestart(t *testing.T) {
	const nodes = 3
	daemons := make([]*chaosDaemon, nodes)
	var members []string
	for i := range daemons {
		d := &chaosDaemon{listenAddr: reservePort(t)}
		p, err := chaos.New("127.0.0.1:0", d.listenAddr, chaos.Faults{
			Latency: 200 * time.Microsecond,
			Jitter:  300 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		d.proxy = p
		daemons[i] = d
		members = append(members, p.Addr())
	}
	for i, d := range daemons {
		d.start(t, members[i], members, false)
	}
	t.Cleanup(func() {
		for _, d := range daemons {
			d.kill()
		}
	})

	bt := Dial(members, testOpts())
	c := broker.NewTransportClient(bt)
	defer c.Close()

	pairs := chaosPairs(8)
	for _, p := range pairs {
		if _, _, err := c.Load(p[0], "c", "ilp32", p[1], ""); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Load(p[2], "c", "ilp32", p[3], ""); err != nil {
			t.Fatal(err)
		}
	}
	compareAll := func() error {
		for i, p := range pairs {
			v, err := c.Compare(p[0], fmt.Sprintf("mix%d", i), p[2], fmt.Sprintf("pair%d", i))
			if err != nil {
				return fmt.Errorf("pair %d: %w", i, err)
			}
			if v.Relation != core.RelEquivalent {
				return fmt.Errorf("pair %d: relation %v", i, v.Relation)
			}
		}
		return nil
	}
	// Cold round: every pair compiles once, somewhere in the fleet.
	if err := compareAll(); err != nil {
		t.Fatal(err)
	}
	// Let the push workers finish replicating to successors, so the
	// survivors hold the victim's entries before it dies.
	eventually(t, "warm replication of the working set", func() bool {
		var fills int64
		for _, d := range daemons {
			fills += d.b.Stats().WarmFills
		}
		return fills >= int64(len(pairs))
	})

	// Continuous load while one member dies and rejoins. Every request
	// must succeed: failover covers the outage, warm sync the rejoin.
	var clientErrs atomic.Int64
	var requests atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := compareAll(); err != nil {
					t.Log(err)
					clientErrs.Add(1)
				}
				requests.Add(int64(len(pairs)))
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	victim := daemons[1]
	victim.kill()
	time.Sleep(100 * time.Millisecond) // fleet serves 2-of-3 for a while
	victim.start(t, members[1], members, true)
	time.Sleep(100 * time.Millisecond) // rejoined member takes traffic again
	close(stop)
	wg.Wait()

	if n := clientErrs.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed during kill/restart", n, requests.Load())
	}

	// The restarted member must have warmed from its peers, not from
	// client traffic re-paying compiles.
	if victim.b.Stats().WarmFills == 0 {
		t.Fatal("restarted member has no warm fills after sync")
	}
	if victim.n.Status().Synced == 0 {
		t.Fatal("restarted member synced nothing")
	}

	// Recompile audit: one more full sweep of the working set must not
	// run a single new comparison anywhere in the fleet, and must be
	// served (at least partly) by warmed entries.
	runsBefore, warmHitsBefore := int64(0), int64(0)
	for _, d := range daemons {
		st := d.b.Stats()
		runsBefore += st.CompareRuns
		warmHitsBefore += st.WarmHits
	}
	if err := compareAll(); err != nil {
		t.Fatal(err)
	}
	runsAfter, warmHitsAfter := int64(0), int64(0)
	for _, d := range daemons {
		st := d.b.Stats()
		runsAfter += st.CompareRuns
		warmHitsAfter += st.WarmHits
	}
	if runsAfter != runsBefore {
		t.Fatalf("post-restart sweep re-ran %d comparisons, want 0", runsAfter-runsBefore)
	}
	if warmHitsAfter <= warmHitsBefore {
		t.Fatal("post-restart sweep recorded no warm hits")
	}
}

// TestChaosStalledMemberBreakerAndBudget drives concurrent keyed load at
// a 3-member fleet with one member wedged behind a stall proxy (alive,
// glacially slow — the gray failure) and asserts the deadline/breaker
// contract end to end:
//
//   - zero dropped requests: every call is served by a healthy member
//     after the per-attempt deadline gives up on the stalled one;
//   - the stalled member's breaker opens and subsequent traffic is
//     skipped past it without paying a timeout first;
//   - total attempts at the stalled member stay within the shared retry
//     budget — a bounded trickle, not a retry storm;
//   - the stalled member does zero work on behalf of callers that gave
//     up: its handler never runs, and a budget-carrying request that
//     finally trickles in is shed pre-dispatch on the server-side
//     Expired counter.
func TestChaosStalledMemberBreakerAndBudget(t *testing.T) {
	// Three echo servers; the first sits behind a stall proxy that lets
	// the 26-byte hello plus one request head through, then trickles.
	var members []string
	servers := make([]*orb.Server, 3)
	calls := make([]*atomic.Int64, 3)
	for i := range servers {
		srv, err := orb.NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		n := &atomic.Int64{}
		srv.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
			n.Add(1)
			return body, nil
		})
		servers[i] = srv
		calls[i] = n
	}
	proxy, err := chaos.New("127.0.0.1:0", servers[0].Addr(), chaos.Faults{
		StallAfter:    48, // hello (26) + request head and budget (22)
		StallInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proxy.Close() })
	members = []string{proxy.Addr(), servers[1].Addr(), servers[2].Addr()}
	stalled := members[0]

	budget := resil.NewRetryBudget(0.1, 32)
	c := New(members, Options{
		Resil: resil.Options{
			MaxAttempts: 1, // the cluster rank, not resil, owns failover here
			DialTimeout: time.Second,
			CallTimeout: 200 * time.Millisecond,
			RetryBudget: budget,
		},
		BreakerFailures: 3,
		BreakerCooldown: 400 * time.Millisecond,
	})
	defer c.Close()

	// Pick keys with known owners so the load provably crosses the
	// stalled member.
	var stalledKeys, healthyKeys [][]byte
	for i := 0; len(stalledKeys) < 4 || len(healthyKeys) < 4; i++ {
		if i > 4096 {
			t.Fatal("could not find keys for both owner classes")
		}
		rk := RouteKey("stall", fmt.Sprint(i))
		if c.Ring().Ranked(rk)[0] == stalled {
			stalledKeys = append(stalledKeys, rk)
		} else {
			healthyKeys = append(healthyKeys, rk)
		}
	}

	const workers, perWorker = 3, 40
	var clientErrs, successes atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rk := healthyKeys[i%len(healthyKeys)]
				if i%3 == 0 {
					rk = stalledKeys[i%len(stalledKeys)]
				}
				if _, err := c.InvokeKeyed(context.Background(), rk, "echo", 0, []byte{byte(w), byte(i)}); err != nil {
					t.Logf("worker %d call %d: %v", w, i, err)
					clientErrs.Add(1)
					continue
				}
				successes.Add(1)
			}
		}(w)
	}
	wg.Wait()

	if n := clientErrs.Load(); n != 0 {
		t.Fatalf("%d of %d requests dropped; spillover must cover a stalled member", n, workers*perWorker)
	}
	st := c.Stats()
	if st.BreakerTrips < 1 {
		t.Error("stalled member's breaker never tripped")
	}
	if st.BreakerSkips < 1 {
		t.Error("open breaker never skipped the stalled member")
	}
	for _, m := range st.Members {
		if m.Addr == stalled && m.Breaker == "closed" {
			t.Errorf("stalled member breaker = %s, want open or half-open", m.Breaker)
		}
	}
	// Every failover here paid the stalled member's deadline first, and
	// each such duplicative failover bought a retry-budget token — so the
	// failover count is exactly the attempt tax the stall extracted.
	// Bounded two ways: the budget invariant (reserve + ratio·successes),
	// and an absolute ceiling that a retry storm would blow through.
	bound := int64(32) + successes.Load()/10
	if st.Failovers > bound {
		t.Errorf("failovers = %d exceed the retry budget bound %d", st.Failovers, bound)
	}
	if st.Failovers > 30 {
		t.Errorf("failovers = %d; a tripped breaker should cap attempts near its threshold plus probes", st.Failovers)
	}
	if st.Failovers < 1 {
		t.Error("no failovers recorded; the stalled member was never even tried")
	}
	if proxy.Stats().Stalls < 1 {
		t.Error("stall fault never engaged")
	}
	if n := calls[0].Load(); n != 0 {
		t.Errorf("stalled member ran %d handler calls for abandoned requests, want 0", n)
	}

	// Budget-shed proof: a patient client (no local deadline, explicit
	// 150ms wire budget) keeps the connection open while its request
	// trickles through the stall, so the server finally assembles the
	// frame, sees the budget long spent, and sheds it pre-dispatch.
	oc, err := orb.Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	vctx, vcancel := context.WithTimeout(context.Background(), 2*time.Second)
	if v := oc.AwaitVersion(vctx); v < 2 {
		t.Fatalf("negotiated version %d through the stall proxy, want >= 2", v)
	}
	vcancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = oc.InvokeContext(orb.ContextWithBudget(context.Background(), 150*time.Millisecond), "echo", 0, nil)
	}()
	eventually(t, "pre-dispatch expired shed on the stalled member", func() bool {
		return servers[0].Stats().Expired >= 1
	})
	_ = oc.Close()
	<-done
	if n := calls[0].Load(); n != 0 {
		t.Errorf("stalled member did %d handler calls, want 0 — expired requests must be shed before work starts", n)
	}
}
