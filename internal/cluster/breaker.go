// Per-member circuit breakers with outlier ejection. A breaker trips on
// health signals — consecutive transport-level failures, or a p99
// latency that is a multiplicative outlier against the rest of the
// fleet — and while open the ranked routing in InvokeKeyed skips the
// member, so its traffic spills down the rendezvous order to healthy
// replicas instead of queueing behind a stall. After a cooldown the
// breaker half-opens and admits a single probe: success closes it,
// failure re-opens it for another cooldown.
//
// Deterministic errors never trip a breaker, mirroring failover()'s
// classification: a RemoteError, server panic, or frame-limit rejection
// is the member *working* — it parsed the request and answered — and a
// replica would answer the same. Budget expiry (ErrExpired) and
// cancellation are the caller's clock, not the member's health. Tripping
// on those would eject healthy members whenever callers send bad
// requests or tight budgets.
package cluster

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/orb"
)

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateName maps a breaker state to its stats string.
func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// outlierMinSamples is how many latency samples a member needs before
// p99 outlier ejection may trip it; peers need a quarter of that to
// count toward the fleet baseline.
const outlierMinSamples = 32

// tripworthy reports whether a failed attempt is a strike against the
// member's health. Transport-level failures (dial, reset, stalled
// connection surfacing as a deadline, pool trouble) and overload sheds
// are; deterministic answers and the caller's own clock are not.
func tripworthy(err error) bool {
	if errors.Is(err, orb.ErrOverloaded) {
		return true
	}
	if errors.Is(err, orb.ErrCanceled) || errors.Is(err, orb.ErrExpired) {
		return false
	}
	var re *orb.RemoteError
	if errors.As(err, &re) {
		return false
	}
	if errors.Is(err, orb.ErrServerPanic) || errors.Is(err, orb.ErrFrameTooLarge) {
		return false
	}
	// ErrDeadline lands here deliberately: a member that eats the whole
	// call timeout looks exactly like a stalled member, which is the
	// breaker's primary prey.
	return true
}

// breaker is one member's circuit state. All methods are safe for
// concurrent use.
type breaker struct {
	failThreshold int
	cooldown      time.Duration

	mu       sync.Mutex
	state    int
	failures int // consecutive tripworthy failures while closed
	openedAt time.Time
	probing  bool
	trips    int64

	// latency ring for outlier ejection (successful calls only).
	samples [64]time.Duration
	n       int
}

func newBreaker(failThreshold int, cooldown time.Duration) *breaker {
	return &breaker{failThreshold: failThreshold, cooldown: cooldown}
}

// allow reports whether a request may be sent to the member. An open
// breaker past its cooldown transitions to half-open and admits exactly
// one probe; further requests are refused until the probe resolves.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a served call: it closes a half-open breaker, resets
// the failure streak, and banks the latency sample for outlier
// ejection.
func (b *breaker) success(d time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.failures = 0
	b.probing = false
	if b.state != breakerClosed {
		b.state = breakerClosed
	}
	b.samples[b.n%len(b.samples)] = d
	b.n++
	b.mu.Unlock()
}

// failure records a failed call and reports whether it opened the
// breaker. Non-tripworthy failures count as health evidence (the member
// answered), closing a half-open breaker like a success would.
// Tripworthy ones extend the streak; crossing the threshold — or
// failing the half-open probe — opens the breaker.
func (b *breaker) failure(trip bool) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if !trip {
		b.failures = 0
		if b.state == breakerHalfOpen {
			b.state = breakerClosed
		}
		return false
	}
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.failThreshold {
		b.open()
		return true
	}
	return false
}

// tripEject force-opens the breaker for latency outlier ejection and
// clears the sample window so the stale p99 cannot re-trip the breaker
// the moment the probe closes it.
func (b *breaker) tripEject() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.open()
	b.n = 0
	b.mu.Unlock()
}

// open transitions to the open state. Caller holds b.mu.
func (b *breaker) open() {
	b.state = breakerOpen
	b.openedAt = time.Now()
	b.failures = 0
	b.probing = false
	b.trips++
}

// p99 returns the window's 99th-percentile latency and the sample
// count.
func (b *breaker) p99() (time.Duration, int) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	n := b.n
	if n > len(b.samples) {
		n = len(b.samples)
	}
	buf := make([]time.Duration, n)
	copy(buf, b.samples[:n])
	b.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[int(0.99*float64(n-1))], n
}

// snapshot returns the state name and trip count for stats.
func (b *breaker) snapshot() (string, int64) {
	if b == nil {
		return "closed", 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateName(b.state), b.trips
}

// noteLatency records a member's successful-call latency and runs the
// outlier-ejection check: a member whose p99 exceeds
// BreakerOutlierFactor times the median of its peers' p99s (given
// enough samples on both sides) is ejected — its breaker opens as if it
// had failed repeatedly, because "succeeding, but several times slower
// than everyone else" is exactly the gray failure consecutive-error
// counting cannot see.
func (c *Client) noteLatency(m *member, d time.Duration) {
	m.brk.success(d)
	if c.opts.BreakerOutlierFactor <= 0 {
		return
	}
	p99, n := m.brk.p99()
	if n < outlierMinSamples {
		return
	}
	var peers []float64
	c.mu.Lock()
	for _, o := range c.members {
		if o == m {
			continue
		}
		if op99, on := o.brk.p99(); on >= outlierMinSamples/4 {
			peers = append(peers, float64(op99))
		}
	}
	c.mu.Unlock()
	if len(peers) == 0 {
		return
	}
	sort.Float64s(peers)
	med := peers[len(peers)/2]
	if med > 0 && float64(p99) > c.opts.BreakerOutlierFactor*med {
		m.brk.tripEject()
		c.breakerTrips.Add(1)
	}
}
