package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/orb"
	"repro/internal/resil"
)

// ErrNoMembers is returned by calls on a Client with an empty member
// list.
var ErrNoMembers = errors.New("cluster: no members")

// Options configures a cluster Client. Zero values select the defaults.
type Options struct {
	// Resil tunes the per-member connection pool (deadlines, retries,
	// hedging) — each member gets its own resil.Client built from this.
	Resil resil.Options
	// Replicas is how many ring positions per key participate in
	// spillover (owner + successors, default 2). Spillover stays inside
	// the replica set because those are the members warm pushes target —
	// a spilled request still lands on a warm cache.
	Replicas int
	// SpillInflight is the in-flight gap between the owner and the least
	// loaded replica past which a request spills over (default 16).
	SpillInflight int
	// DrainTimeout bounds the graceful drain of a departed member's pool
	// (default 30s); past it the pool closes forcibly.
	DrainTimeout time.Duration
	// BreakerFailures is the consecutive transport-failure streak that
	// opens a member's circuit breaker (default 5; negative disables
	// breakers entirely).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker refuses traffic before
	// half-opening for a single probe (default 2s).
	BreakerCooldown time.Duration
	// BreakerOutlierFactor ejects a member whose success-latency p99
	// exceeds this multiple of the median of its peers' p99s (default 3;
	// negative disables outlier ejection).
	BreakerOutlierFactor float64
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.SpillInflight <= 0 {
		o.SpillInflight = 16
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.BreakerFailures == 0 {
		o.BreakerFailures = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.BreakerOutlierFactor == 0 {
		o.BreakerOutlierFactor = 3
	}
	// One retry budget spans every member pool (and the cluster-level
	// failover loop), making the retry cap a fleet-wide invariant instead
	// of a per-endpoint one.
	if o.Resil.RetryBudget == nil {
		o.Resil.RetryBudget = resil.NewRetryBudget(0, 0)
	}
	return o
}

// member is one fleet endpoint: its pool and the cluster-level in-flight
// gauge the spillover decision reads (resil tracks per-connection
// in-flight internally; this tracks per-member).
type member struct {
	addr     string
	pool     *resil.Client
	inflight atomic.Int64
	brk      *breaker // nil when breakers are disabled
}

// Client is a multi-endpoint broker client: requests route by
// content-derived key to their ring owner, spill to replicas under load
// imbalance, and fail over down the rank when members are unreachable.
// Safe for concurrent use.
type Client struct {
	opts Options

	mu      sync.Mutex
	members map[string]*member
	closed  bool

	ring atomic.Pointer[Ring]

	spills       atomic.Int64
	failovers    atomic.Int64
	broadcasts   atomic.Int64
	breakerTrips atomic.Int64
	breakerSkips atomic.Int64
}

// New returns a Client over the given member addresses. Pools dial
// lazily; an empty list is legal and can be fixed later with SetMembers.
func New(addrs []string, opts Options) *Client {
	c := &Client{
		opts:    opts.withDefaults(),
		members: make(map[string]*member),
	}
	c.ring.Store(NewRing(nil))
	c.SetMembers(addrs)
	return c
}

// SetMembers replaces the member list. New members get fresh pools;
// members leaving the ring have their pools drained in the background —
// in-flight calls finish, then the pool closes — rather than erroring
// out on next use.
func (c *Client) SetMembers(addrs []string) {
	ring := NewRing(addrs)
	keep := make(map[string]bool, ring.Len())
	for _, a := range ring.Members() {
		keep[a] = true
	}
	var drain []*member
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	for addr, m := range c.members {
		if !keep[addr] {
			drain = append(drain, m)
			delete(c.members, addr)
		}
	}
	for addr := range keep {
		if c.members[addr] == nil {
			m := &member{addr: addr, pool: resil.New(addr, c.opts.Resil)}
			if c.opts.BreakerFailures > 0 {
				m.brk = newBreaker(c.opts.BreakerFailures, c.opts.BreakerCooldown)
			}
			c.members[addr] = m
		}
		// Surviving members keep their member struct, so breaker state
		// (and its latency window) persists across membership changes.
	}
	c.ring.Store(ring)
	c.mu.Unlock()
	for _, m := range drain {
		go func(m *member) {
			ctx, cancel := context.WithTimeout(context.Background(), c.opts.DrainTimeout)
			defer cancel()
			_ = m.pool.Drain(ctx)
		}(m)
	}
}

// Members returns the current member addresses, sorted.
func (c *Client) Members() []string { return c.ring.Load().Members() }

// Ring returns the current ring view.
func (c *Client) Ring() *Ring { return c.ring.Load() }

// Close tears down every member pool immediately.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	members := c.members
	c.members = map[string]*member{}
	c.mu.Unlock()
	c.ring.Store(NewRing(nil))
	for _, m := range members {
		_ = m.pool.Close()
	}
	return nil
}

// MemberStats is one member's counter snapshot.
type MemberStats struct {
	Addr     string
	InFlight int64
	// Breaker is the member's circuit state ("closed", "open",
	// "half-open"); BreakerTrips counts how often it has opened.
	Breaker      string
	BreakerTrips int64
	Pool         resil.Stats
}

// Stats is a point-in-time snapshot of the Client's counters.
type Stats struct {
	// Members holds one entry per member, sorted by address.
	Members []MemberStats
	// Spills counts requests routed to a replica instead of the loaded
	// owner; Failovers counts attempts moved down the rank after a
	// member failed; Broadcasts counts fan-out operations.
	Spills, Failovers, Broadcasts int64
	// BreakerTrips counts breaker openings across all members;
	// BreakerSkips counts ranked members passed over because their
	// breaker was open.
	BreakerTrips, BreakerSkips int64
}

// Stats returns a snapshot of the Client's counters.
func (c *Client) Stats() Stats {
	st := Stats{
		Spills:       c.spills.Load(),
		Failovers:    c.failovers.Load(),
		Broadcasts:   c.broadcasts.Load(),
		BreakerTrips: c.breakerTrips.Load(),
		BreakerSkips: c.breakerSkips.Load(),
	}
	c.mu.Lock()
	for _, m := range c.members {
		state, trips := m.brk.snapshot()
		st.Members = append(st.Members, MemberStats{
			Addr:         m.addr,
			InFlight:     m.inflight.Load(),
			Breaker:      state,
			BreakerTrips: trips,
			Pool:         m.pool.Stats(),
		})
	}
	c.mu.Unlock()
	sort.Slice(st.Members, func(i, j int) bool { return st.Members[i].Addr < st.Members[j].Addr })
	return st
}

func (c *Client) member(addr string) *member {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.members[addr]
}

// failover reports whether an attempt's failure should move the request
// to the next ranked member. Connection-level failures and overload
// sheds obviously should. Two remote errors do too, because they mean
// "this member cannot serve this key right now", not "the request is
// wrong": a freshly restarted daemon that has not re-learned a universe
// ("core: no universe ..."), and a daemon still starting up that has not
// registered the service ("no object ..."). Every other remote error is
// a deterministic answer a replica would repeat.
func failover(err error) bool {
	if errors.Is(err, orb.ErrOverloaded) {
		return true
	}
	if errors.Is(err, orb.ErrExpired) || errors.Is(err, orb.ErrDeadline) || errors.Is(err, orb.ErrCanceled) {
		return false // the call's own budget is spent
	}
	var re *orb.RemoteError
	if errors.As(err, &re) {
		return strings.Contains(re.Msg, "core: no universe") || strings.Contains(re.Msg, "no object")
	}
	if errors.Is(err, orb.ErrServerPanic) || errors.Is(err, orb.ErrFrameTooLarge) {
		return false
	}
	return true // dial failures, conn resets, pool closed mid-drain, ...
}

// InvokeKeyed performs one fleet call routed by rk. The owner serves it
// unless its in-flight load exceeds the least loaded replica's by more
// than SpillInflight, in which case the request spills to that replica
// (still inside the warm replica set). Members whose circuit breaker is
// open are skipped outright, so their traffic spills down the rank
// without paying a timeout first. Unreachable or unable members fail
// the request over to the next ranked member — beyond the replica set
// if necessary — so a single dead daemon costs latency, not errors.
// Failovers that may duplicate load on a struggling member (overload
// sheds, timeouts) each buy a token from the shared retry budget. A nil
// rk routes to the least loaded member (for keyless ops).
func (c *Client) InvokeKeyed(ctx context.Context, rk []byte, key string, op uint32, body []byte) ([]byte, error) {
	ring := c.ring.Load()
	if ring.Len() == 0 {
		return nil, ErrNoMembers
	}
	var order []string
	if rk == nil {
		order = c.leastLoadedOrder(ring)
	} else {
		order = ring.Ranked(rk)
		c.applySpill(order)
	}
	var lastErr error
	attempts := 0
	for _, addr := range order {
		m := c.member(addr)
		if m == nil {
			continue // raced SetMembers; the ring will catch up
		}
		if !m.brk.allow() {
			c.breakerSkips.Add(1)
			continue
		}
		reply, err := c.attemptMember(ctx, m, &attempts, key, op, body)
		if err == nil {
			return reply, nil
		}
		lastErr = err
		if !c.shouldFailover(ctx, err) {
			return nil, err
		}
		if duplicative(err) && !c.opts.Resil.RetryBudget.Withdraw() {
			return nil, fmt.Errorf("%w: abandoning cluster failover after: %w", resil.ErrRetryBudget, err)
		}
	}
	if attempts == 0 && lastErr == nil {
		// Every member's breaker refused the request: the whole fleet is
		// tripped. Fail static — force one attempt on the best ranked
		// member rather than turning a fully tripped fleet into a
		// guaranteed outage; if that member has healed, this is the
		// probe that proves it.
		for _, addr := range order {
			m := c.member(addr)
			if m == nil {
				continue
			}
			reply, err := c.attemptMember(ctx, m, &attempts, key, op, body)
			if err != nil {
				return nil, err
			}
			return reply, nil
		}
		return nil, ErrNoMembers
	}
	return nil, fmt.Errorf("cluster: all %d members failed: %w", len(order), lastErr)
}

// attemptMember sends one attempt to m, maintaining the in-flight
// gauge, the failover counter, and the member's breaker bookkeeping.
func (c *Client) attemptMember(ctx context.Context, m *member, attempts *int, key string, op uint32, body []byte) ([]byte, error) {
	*attempts++
	if *attempts > 1 {
		c.failovers.Add(1)
	}
	m.inflight.Add(1)
	start := time.Now()
	reply, err := m.pool.InvokeContext(ctx, key, op, body)
	m.inflight.Add(-1)
	if err == nil {
		c.noteLatency(m, time.Since(start))
		return reply, nil
	}
	if m.brk.failure(tripworthy(err)) {
		c.breakerTrips.Add(1)
	}
	return nil, err
}

// shouldFailover extends failover()'s pure classification with the
// caller's clock: resil's per-attempt CallTimeout firing while the
// caller's own context still has time means a stalled member, not a
// spent budget, so the next ranked member gets the request.
func (c *Client) shouldFailover(ctx context.Context, err error) bool {
	if failover(err) {
		return true
	}
	return errors.Is(err, orb.ErrDeadline) && !errors.Is(err, orb.ErrExpired) && ctx.Err() == nil
}

// duplicative reports whether a failed attempt may have left work
// running on the member — overload sheds and timeouts, where the
// request was received — so failing over duplicates load and must buy a
// token from the shared retry budget. Connection-level failures never
// reached a server and fail over for free.
func duplicative(err error) bool {
	return errors.Is(err, orb.ErrOverloaded) || errors.Is(err, orb.ErrDeadline)
}

// applySpill reorders the head of a ranked member list: when the owner
// is carrying SpillInflight more in-flight calls than the least loaded
// member of the replica set, that replica takes the front slot.
func (c *Client) applySpill(order []string) {
	n := c.opts.Replicas
	if n > len(order) {
		n = len(order)
	}
	if n < 2 {
		return
	}
	owner := c.member(order[0])
	if owner == nil {
		return
	}
	bestIdx, bestLoad := 0, owner.inflight.Load()
	for i := 1; i < n; i++ {
		if m := c.member(order[i]); m != nil {
			if l := m.inflight.Load(); l < bestLoad {
				bestIdx, bestLoad = i, l
			}
		}
	}
	if bestIdx != 0 && owner.inflight.Load()-bestLoad > int64(c.opts.SpillInflight) {
		order[0], order[bestIdx] = order[bestIdx], order[0]
		c.spills.Add(1)
	}
}

// leastLoadedOrder returns the members ordered by in-flight load, for
// keyless operations (stats, health) that any member can answer.
func (c *Client) leastLoadedOrder(ring *Ring) []string {
	order := ring.Members()
	sort.Slice(order, func(i, j int) bool {
		var li, lj int64
		if m := c.member(order[i]); m != nil {
			li = m.inflight.Load()
		}
		if m := c.member(order[j]); m != nil {
			lj = m.inflight.Load()
		}
		return li < lj
	})
	return order
}

// Broadcast sends one request to every member concurrently and returns
// the first successful reply. It succeeds when at least one member
// accepts: a load reaching most of the fleet is strictly better than an
// error during a rolling restart, and the members that missed it heal
// through the warm protocol (pushes carry universe sources). All-member
// failure returns the first error observed.
func (c *Client) Broadcast(ctx context.Context, key string, op uint32, body []byte) ([]byte, error) {
	ring := c.ring.Load()
	members := ring.Members()
	if len(members) == 0 {
		return nil, ErrNoMembers
	}
	c.broadcasts.Add(1)
	type res struct {
		reply []byte
		err   error
	}
	ch := make(chan res, len(members))
	live := 0
	for _, addr := range members {
		m := c.member(addr)
		if m == nil {
			continue
		}
		live++
		go func(m *member) {
			m.inflight.Add(1)
			reply, err := m.pool.InvokeContext(ctx, key, op, body)
			m.inflight.Add(-1)
			ch <- res{reply, err}
		}(m)
	}
	if live == 0 {
		return nil, ErrNoMembers
	}
	var firstErr error
	var reply []byte
	ok := false
	for i := 0; i < live; i++ {
		r := <-ch
		if r.err == nil {
			if !ok {
				reply, ok = r.reply, true
			}
		} else if firstErr == nil {
			firstErr = r.err
		}
	}
	if !ok {
		return nil, fmt.Errorf("cluster: broadcast failed on all %d members: %w", live, firstErr)
	}
	return reply, nil
}
