package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/resil"
)

const (
	srcMix  = "typedef struct { float r; int n; } mix;"
	srcPair = "typedef struct { int count; float ratio; } pair;"
)

// fleetNode is one in-process daemon: broker + warm node + orb server.
type fleetNode struct {
	addr string
	b    *broker.Broker
	n    *Node
	srv  *orb.Server
}

// newFleet starts n in-process daemons sharing one member list, exactly
// as n `mbirdd -cluster` processes would.
func newFleet(t *testing.T, n int, opts NodeOptions) []*fleetNode {
	t.Helper()
	fleet := make([]*fleetNode, n)
	var addrs []string
	for i := range fleet {
		srv, err := orb.NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		fleet[i] = &fleetNode{addr: srv.Addr(), srv: srv}
		addrs = append(addrs, srv.Addr())
	}
	for _, fn := range fleet {
		fn.b = broker.New(core.NewSession(), broker.Options{})
		fn.n = NewNode(fn.addr, addrs, fn.b, opts)
		t.Cleanup(func() { _ = fn.n.Close() })
		broker.Serve(fn.srv, fn.b)
		Serve(fn.srv, fn.n)
	}
	return fleet
}

func loadPair(t *testing.T, b *broker.Broker) {
	t.Helper()
	for _, u := range []struct{ name, src string }{{"ux", srcMix}, {"uy", srcPair}} {
		if _, _, err := b.Load(u.name, "c", "ilp32", u.src, ""); err != nil {
			t.Fatal(err)
		}
	}
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A compare on one daemon must replicate its verdict — and the universe
// sources needed to use it — to the pair's ring successors, unasked.
func TestClusterWarmPushReplicatesVerdict(t *testing.T) {
	fleet := newFleet(t, 3, NodeOptions{})
	src := fleet[0]
	loadPair(t, src.b)
	v, err := src.b.Compare("ux", "mix", "uy", "pair")
	if err != nil {
		t.Fatal(err)
	}

	targets := src.n.Ring().Ranked(RouteKey("ux", "mix", "uy", "pair"))[:2]
	for _, fn := range fleet {
		isTarget := false
		for _, a := range targets {
			if a == fn.addr {
				isTarget = true
			}
		}
		if !isTarget || fn == src {
			continue
		}
		fn := fn
		eventually(t, "verdict push to "+fn.addr, func() bool {
			got, ok := fn.b.PeekVerdict("ux", "mix", "uy", "pair")
			return ok && got.Relation == v.Relation
		})
		// The push carried the load records: the receiver can serve the
		// pair without anyone re-shipping sources.
		if !fn.b.HasUniverse("ux") || !fn.b.HasUniverse("uy") {
			t.Fatalf("push to %s did not load the pair's universes", fn.addr)
		}
		if fn.b.Stats().WarmFills == 0 {
			t.Fatalf("receiver %s did not count the warm fill", fn.addr)
		}
	}
	if st := src.n.Status(); st.PushErrs != 0 || st.PushDrops != 0 {
		t.Fatalf("push errs=%d drops=%d, want 0/0", st.PushErrs, st.PushDrops)
	}
}

// A daemon missing a verdict locally pulls it from the pair's owner
// instead of re-running the comparison.
func TestClusterWarmPullSkipsCompare(t *testing.T) {
	fleet := newFleet(t, 3, NodeOptions{})
	// Seed every broker but fleet[2]'s with the verdict, so whichever
	// peer node 2 ranks first for the pair can answer the pull. Seeding
	// goes through WarmVerdict — not Compare — because a compare would
	// also push the verdict to the pair's replicas, and if fleet[2] is
	// one, the push could beat the pull this test is about.
	for _, fn := range fleet[:2] {
		loadPair(t, fn.b)
		if _, err := fn.b.WarmVerdict("ux", "mix", "uy", "pair", core.RelEquivalent, 1, ""); err != nil {
			t.Fatal(err)
		}
	}
	late := fleet[2]
	loadPair(t, late.b)
	v, err := late.b.Compare("ux", "mix", "uy", "pair")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != core.RelEquivalent {
		t.Fatalf("relation = %v, want equivalent", v.Relation)
	}
	st := late.b.Stats()
	if st.CompareRuns != 0 {
		t.Fatalf("CompareRuns = %d, want 0 (verdict should come from a peer)", st.CompareRuns)
	}
	if st.PeerPulls != 1 {
		t.Fatalf("PeerPulls = %d, want 1", st.PeerPulls)
	}
	if ns := late.n.Status(); ns.PullsSent != 1 {
		t.Fatalf("node PullsSent = %d, want 1", ns.PullsSent)
	}
}

// SyncFromPeers drains the fleet's warm state into a cold broker:
// universes load, verdicts adopt, converters and transcoders recompile
// locally — the restart path, minus the process restart.
func TestClusterWarmSyncFromPeers(t *testing.T) {
	fleet := newFleet(t, 3, NodeOptions{})
	src := fleet[0]
	loadPair(t, src.b)
	if _, err := src.b.Compare("ux", "mix", "uy", "pair"); err != nil {
		t.Fatal(err)
	}
	if err := src.b.WarmConverter("ux", "mix", "uy", "pair"); err != nil {
		t.Fatal(err)
	}

	// A cold broker joins under a fresh node with the same member list.
	cold := broker.New(core.NewSession(), broker.Options{})
	nc := NewNode("127.0.0.1:1", append(src.n.Members(), "127.0.0.1:1"), cold, NodeOptions{})
	defer nc.Close()
	warmed, err := nc.SyncFromPeers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warmed == 0 {
		t.Fatal("sync warmed nothing")
	}
	if _, ok := cold.PeekVerdict("ux", "mix", "uy", "pair"); !ok {
		t.Fatal("verdict not synced")
	}
	st := cold.Stats()
	if st.WarmFills == 0 {
		t.Fatalf("WarmFills = %d, want > 0", st.WarmFills)
	}
	if st.Compiles == 0 {
		t.Fatal("converter recipe did not recompile on the cold broker")
	}
	// The entire sync happened off the request path: a client-visible
	// compare now is a pure warm hit, no compare run.
	if _, err := cold.Compare("ux", "mix", "uy", "pair"); err != nil {
		t.Fatal(err)
	}
	st = cold.Stats()
	if st.CompareRuns != 0 {
		t.Fatalf("CompareRuns = %d after sync, want 0", st.CompareRuns)
	}
	if st.WarmHits == 0 {
		t.Fatal("request served by warmed entry did not count a warm hit")
	}
	if ns := nc.Status(); ns.Synced == 0 {
		t.Fatalf("node Synced = %d, want > 0", ns.Synced)
	}
}

// The fleet transport shards broker traffic: loads broadcast, pair
// operations land on the pair's ring owner, and exactly one member pays
// each compare.
func TestClusterBrokerTransportSharding(t *testing.T) {
	fleet := newFleet(t, 3, NodeOptions{})
	var addrs []string
	for _, fn := range fleet {
		addrs = append(addrs, fn.addr)
	}
	bt := Dial(addrs, testOpts())
	c := broker.NewTransportClient(bt)
	defer c.Close()

	if _, _, err := c.Load("ux", "c", "ilp32", srcMix, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Load("uy", "c", "ilp32", srcPair, ""); err != nil {
		t.Fatal(err)
	}
	eventually(t, "load broadcast to all members", func() bool {
		for _, fn := range fleet {
			if !fn.b.HasUniverse("ux") || !fn.b.HasUniverse("uy") {
				return false
			}
		}
		return true
	})

	v, err := c.Compare("ux", "mix", "uy", "pair")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != core.RelEquivalent {
		t.Fatalf("relation = %v", v.Relation)
	}
	owner := bt.Client().Ring().Owner(RouteKey("ux", "mix", "uy", "pair"))
	runs := int64(0)
	for _, fn := range fleet {
		r := fn.b.Stats().CompareRuns
		runs += r
		if r > 0 && fn.addr != owner {
			t.Fatalf("compare ran on %s, owner is %s", fn.addr, owner)
		}
	}
	if runs != 1 {
		t.Fatalf("fleet ran %d compares, want exactly 1", runs)
	}

	// Stats is keyless: any member may answer; the call must not error.
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
}

// Peer admission: a node sheds peer requests beyond MaxPeerInFlight with
// a typed overload instead of letting a peer storm crowd out clients.
func TestClusterPeerAdmission(t *testing.T) {
	fleet := newFleet(t, 2, NodeOptions{MaxPeerInFlight: 1})
	target := fleet[0]

	// Saturate the single admission slot with a slow pull by hand.
	release := make(chan struct{})
	block := make(chan struct{})
	go func() {
		target.n.admit <- struct{}{}
		close(block)
		<-release
		<-target.n.admit
	}()
	<-block
	rc := resil.New(target.addr, resil.Options{MaxAttempts: 1, CallTimeout: 2 * time.Second})
	defer rc.Close()
	_, err := FetchStatus(context.Background(), rc)
	if err == nil {
		t.Fatal("saturated peer service accepted a request")
	}
	close(release)
	eventually(t, "admission slot release", func() bool {
		_, err := FetchStatus(context.Background(), rc)
		return err == nil
	})
}

func TestClusterNodeStatusOverWire(t *testing.T) {
	fleet := newFleet(t, 2, NodeOptions{})
	rc := resil.New(fleet[0].addr, resil.Options{MaxAttempts: 2, CallTimeout: 5 * time.Second})
	defer rc.Close()
	st, err := FetchStatus(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Self != fleet[0].addr {
		t.Fatalf("Self = %q, want %q", st.Self, fleet[0].addr)
	}
	if fmt.Sprint(st.Members) != fmt.Sprint(fleet[0].n.Members()) {
		t.Fatalf("Members = %v, want %v", st.Members, fleet[0].n.Members())
	}
}
