package cluster

// Streaming opens through the fleet. Routing, spill, breaker skips, and
// failover all apply to the *open* — the phase before any chunk is
// committed to a member — and stop the moment a stream is handed back:
// a mid-stream failure cannot replay chunks on a replica, so it
// surfaces to the caller as a typed terminal error instead.

import (
	"context"
	"fmt"

	"repro/internal/orb"
	"repro/internal/resil"
)

// OpenStreamKeyed opens a streaming call on the member ranked for rk,
// spilling and failing over exactly like InvokeKeyed but only until the
// open succeeds. done must be called exactly once when the caller is
// finished with the returned stream, with its terminal error (nil on
// success); it releases the member's in-flight slot and pool connection.
// A nil rk routes to the least loaded member.
func (c *Client) OpenStreamKeyed(ctx context.Context, rk []byte, key string, op uint32) (*orb.StreamCall, func(error), error) {
	ring := c.ring.Load()
	if ring.Len() == 0 {
		return nil, nil, ErrNoMembers
	}
	var order []string
	if rk == nil {
		order = c.leastLoadedOrder(ring)
	} else {
		order = ring.Ranked(rk)
		c.applySpill(order)
	}
	var lastErr error
	attempts := 0
	for _, addr := range order {
		m := c.member(addr)
		if m == nil {
			continue // raced SetMembers; the ring will catch up
		}
		if !m.brk.allow() {
			c.breakerSkips.Add(1)
			continue
		}
		sc, done, err := c.openOnMember(ctx, m, &attempts, key, op)
		if err == nil {
			return sc, done, nil
		}
		lastErr = err
		if !c.shouldFailover(ctx, err) {
			return nil, nil, err
		}
		if duplicative(err) && !c.opts.Resil.RetryBudget.Withdraw() {
			return nil, nil, fmt.Errorf("%w: abandoning cluster failover after: %w", resil.ErrRetryBudget, err)
		}
	}
	if attempts == 0 && lastErr == nil {
		// Fail static, as InvokeKeyed does: a fully tripped fleet gets one
		// probe on the best ranked member rather than a guaranteed outage.
		for _, addr := range order {
			m := c.member(addr)
			if m == nil {
				continue
			}
			return c.openOnMember(ctx, m, &attempts, key, op)
		}
		return nil, nil, ErrNoMembers
	}
	return nil, nil, fmt.Errorf("cluster: all %d members failed: %w", len(order), lastErr)
}

// openOnMember attempts one stream open on m, holding the member's
// in-flight slot for the stream's whole lifetime so spill decisions see
// long-lived streams as load.
func (c *Client) openOnMember(ctx context.Context, m *member, attempts *int, key string, op uint32) (*orb.StreamCall, func(error), error) {
	*attempts++
	if *attempts > 1 {
		c.failovers.Add(1)
	}
	m.inflight.Add(1)
	sc, poolDone, err := m.pool.OpenStream(ctx, key, op)
	if err != nil {
		m.inflight.Add(-1)
		if m.brk.failure(tripworthy(err)) {
			c.breakerTrips.Add(1)
		}
		return nil, nil, err
	}
	done := func(callErr error) {
		m.inflight.Add(-1)
		poolDone(callErr)
		if callErr == nil {
			// Clear the strike count without recording a latency sample —
			// stream lifetime is not comparable to call latency.
			m.brk.failure(false)
		} else if m.brk.failure(tripworthy(callErr)) {
			c.breakerTrips.Add(1)
		}
	}
	return sc, done, nil
}
