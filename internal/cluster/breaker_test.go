package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/orb"
	"repro/internal/resil"
)

func TestTripworthyClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{orb.ErrConnClosed, true},
		{orb.ErrDial, true},
		{orb.ErrOverloaded, true},
		{orb.ErrDeadline, true},
		{fmt.Errorf("wrapped: %w", orb.ErrConnClosed), true},
		{orb.ErrCanceled, false},
		{orb.ErrExpired, false},
		{orb.ErrServerPanic, false},
		{orb.ErrFrameTooLarge, false},
		{&orb.RemoteError{Msg: "no object \"x\""}, false},
		{errors.New("resil: no usable connection"), true},
	}
	for _, c := range cases {
		if got := tripworthy(c.err); got != c.want {
			t.Errorf("tripworthy(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBreakerConsecutiveFailuresAndProbe(t *testing.T) {
	b := newBreaker(3, 30*time.Millisecond)
	// Two strikes, then a success: the streak resets.
	b.failure(true)
	b.failure(true)
	b.success(time.Millisecond)
	if state, _ := b.snapshot(); state != "closed" {
		t.Fatalf("state = %s after success reset", state)
	}
	// Three consecutive strikes open the breaker (the third reports it).
	b.failure(true)
	b.failure(true)
	if b.failure(true) != true {
		t.Fatal("third consecutive failure did not open the breaker")
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request inside its cooldown")
	}
	// Past the cooldown: half-open, exactly one probe admitted.
	time.Sleep(40 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if state, _ := b.snapshot(); state != "half-open" {
		t.Fatalf("state = %s, want half-open", state)
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// A failed probe re-opens immediately, no streak needed.
	if !b.failure(true) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request")
	}
	// Next cooldown, successful probe: closed again.
	time.Sleep(40 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.success(time.Millisecond)
	if state, trips := b.snapshot(); state != "closed" || trips != 2 {
		t.Fatalf("state = %s trips = %d, want closed with 2 trips", state, trips)
	}
	if !b.allow() {
		t.Fatal("closed breaker refused traffic")
	}
}

// A non-tripworthy failure is evidence the member answered: it resets
// the streak and closes a half-open breaker like a success would.
func TestBreakerNonTripworthyFailureHeals(t *testing.T) {
	b := newBreaker(2, 20*time.Millisecond)
	b.failure(true)
	b.failure(false)
	if b.failure(true) {
		t.Fatal("streak survived a non-tripworthy failure")
	}
	b.failure(true) // second strike: open
	if b.allow() {
		t.Fatal("breaker should be open")
	}
	time.Sleep(30 * time.Millisecond)
	if !b.allow() {
		t.Fatal("probe refused")
	}
	b.failure(false) // the probe reached the member and got an answer
	if state, _ := b.snapshot(); state != "closed" {
		t.Fatalf("state = %s, want closed after a deterministic-answer probe", state)
	}
}

// A member whose success p99 is a multiplicative outlier against its
// peers is ejected even though every call succeeds — the gray failure
// consecutive-error counting cannot see.
func TestBreakerOutlierEjection(t *testing.T) {
	addrs := []string{"127.0.0.1:11", "127.0.0.1:12", "127.0.0.1:13"}
	c := New(addrs, Options{BreakerOutlierFactor: 3})
	defer c.Close()

	slow := c.member(addrs[0])
	// Peers bank enough fast samples to form the fleet baseline.
	for i := 0; i < outlierMinSamples; i++ {
		c.noteLatency(c.member(addrs[1]), time.Millisecond)
		c.noteLatency(c.member(addrs[2]), time.Millisecond)
	}
	for i := 0; i < outlierMinSamples; i++ {
		c.noteLatency(slow, 100*time.Millisecond)
	}
	if state, _ := slow.brk.snapshot(); state != "open" {
		t.Fatalf("outlier member state = %s, want open", state)
	}
	if c.Stats().BreakerTrips < 1 {
		t.Error("ejection not counted in BreakerTrips")
	}
	healthy := c.member(addrs[1])
	if state, _ := healthy.brk.snapshot(); state != "closed" {
		t.Errorf("healthy peer state = %s, want closed", state)
	}
}

// An open breaker reroutes keyed traffic: the dead member is skipped
// without paying a dial failure once its breaker opens, and every call
// still succeeds on the survivors.
func TestBreakerSkipsDeadMember(t *testing.T) {
	addrs, servers, calls := echoFleet(t, 3)
	opts := testOpts()
	opts.Resil.MaxAttempts = 1
	opts.Resil.RetryBudget = resil.NewRetryBudget(0.1, 10)
	opts.BreakerFailures = 3
	opts.BreakerCooldown = time.Minute // no half-open probes mid-test
	c := New(addrs, opts)
	defer c.Close()

	dead := addrs[0]
	_ = servers[dead].Close()

	// Find a key the dead member owns so every call has to fail over.
	var rk []byte
	for i := 0; i < 512; i++ {
		k := RouteKey("breaker", fmt.Sprint(i))
		if c.Ring().Ranked(k)[0] == dead {
			rk = k
			break
		}
	}
	if rk == nil {
		t.Fatal("no key routed to the dead member")
	}
	for i := 0; i < 12; i++ {
		if _, err := c.InvokeKeyed(context.Background(), rk, "echo", 0, nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.BreakerTrips < 1 {
		t.Error("dead member's breaker never tripped")
	}
	if st.BreakerSkips < 1 {
		t.Error("open breaker never skipped the dead member")
	}
	for _, m := range st.Members {
		if m.Addr == dead {
			if m.Breaker != "open" {
				t.Errorf("dead member breaker = %s, want open", m.Breaker)
			}
			if calls[dead].Load() != 0 {
				t.Errorf("dead member served %d calls", calls[dead].Load())
			}
		}
	}
	// Dial failures are connection-level: cluster failover must not have
	// spent retry-budget tokens on them, so the budget is still full.
	if !opts.Resil.RetryBudget.Withdraw() {
		t.Error("connection-level failovers drained the retry budget")
	}
}
