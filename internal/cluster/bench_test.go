package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/orb"
)

// BenchmarkClusterColdVsWarm measures what one rolling restart of a
// 3-node fleet member costs in recompiles. Each iteration kills the
// member, restarts it, restores its working set of 12 verdict pairs,
// and counts the comparison runs the restart re-paid. With peer
// warming the restart syncs the fleet's content-addressed entries
// before serving and re-pays nothing; with warming off it must re-run
// every comparison its traffic touches. Results are recorded in
// BENCH_cluster.json; the warm/cold ratio is the acceptance number.
func BenchmarkClusterColdVsWarm(b *testing.B) {
	const nPairs = 12

	type pair struct{ ua, srcA, ub, srcB, da, db string }
	pairs := make([]pair, nPairs)
	for i := range pairs {
		pairs[i] = pair{
			ua: fmt.Sprintf("bx%d", i), da: fmt.Sprintf("mix%d", i),
			ub: fmt.Sprintf("by%d", i), db: fmt.Sprintf("pair%d", i),
			srcA: fmt.Sprintf("typedef struct { float r%d; int n%d; char tag%d[%d]; } mix%d;", i, i, i, i+2, i),
			srcB: fmt.Sprintf("typedef struct { int count%d; char label%d[%d]; float ratio%d; } pair%d;", i, i, i+2, i, i),
		}
	}
	loadAll := func(b *testing.B, br *broker.Broker) {
		b.Helper()
		for _, p := range pairs {
			if _, _, err := br.Load(p.ua, "c", "ilp32", p.srcA, ""); err != nil {
				b.Fatal(err)
			}
			if _, _, err := br.Load(p.ub, "c", "ilp32", p.srcB, ""); err != nil {
				b.Fatal(err)
			}
		}
	}
	sweep := func(b *testing.B, br *broker.Broker) {
		b.Helper()
		for _, p := range pairs {
			if v, err := br.Compare(p.ua, p.da, p.ub, p.db); err != nil || v.Relation != core.RelEquivalent {
				b.Fatalf("compare %s/%s: %+v err=%v", p.da, p.db, v, err)
			}
		}
	}
	recompiles := func(br *broker.Broker) int64 {
		st := br.Stats()
		return st.CompareRuns + st.Compiles + st.XcodeCompiles
	}

	// A 2-member steady fleet holds the working set; the third member is
	// the restart victim of every iteration.
	steady := make([]*fleetNode, 2)
	var members []string
	victimAddr := func(b *testing.B) string {
		b.Helper()
		ln, err := orb.NewServer("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addr := ln.Addr()
		_ = ln.Close()
		return addr
	}(b)
	for i := range steady {
		srv, err := orb.NewServer("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = srv.Close() })
		steady[i] = &fleetNode{addr: srv.Addr(), srv: srv}
		members = append(members, srv.Addr())
	}
	members = append(members, victimAddr)
	for _, fn := range steady {
		fn.b = broker.New(core.NewSession(), broker.Options{})
		fn.n = NewNode(fn.addr, members, fn.b, NodeOptions{})
		b.Cleanup(func() { _ = fn.n.Close() })
		broker.Serve(fn.srv, fn.b)
		Serve(fn.srv, fn.n)
	}
	// Warm the steady members with the full working set once: this is the
	// fleet state a rolling restart finds.
	for _, fn := range steady {
		loadAll(b, fn.b)
		sweep(b, fn.b)
	}

	// warming-on restarts sync from peers before serving, the cluster
	// path. warming-off restarts with the warming subsystem absent — no
	// node at all, the pre-cluster baseline — and reloads sources the way
	// a deployment would (Load re-pays no compiles by itself).
	restart := func(b *testing.B, warm bool) (*broker.Broker, *Node, *orb.Server) {
		b.Helper()
		br := broker.New(core.NewSession(), broker.Options{})
		var n *Node
		if warm {
			n = NewNode(victimAddr, members, br, NodeOptions{})
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if _, err := n.SyncFromPeers(ctx); err != nil {
				b.Fatal(err)
			}
			cancel()
		} else {
			loadAll(b, br)
		}
		srv, err := orb.NewServer(victimAddr)
		if err != nil {
			b.Fatal(err)
		}
		broker.Serve(srv, br)
		if n != nil {
			Serve(srv, n)
		}
		return br, n, srv
	}

	for _, mode := range []struct {
		name string
		warm bool
	}{{"warming-off", false}, {"warming-on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var repaid int64
			for i := 0; i < b.N; i++ {
				br, n, srv := restart(b, mode.warm)
				before := recompiles(br)
				sweep(b, br) // restore the victim's working set
				repaid += recompiles(br) - before
				_ = srv.Close()
				if n != nil {
					_ = n.Close()
				}
			}
			b.ReportMetric(float64(repaid)/float64(b.N), "recompiles/restart")
		})
	}
}
