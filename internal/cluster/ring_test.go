package cluster

import (
	"fmt"
	"testing"
)

func TestClusterRingDeterminism(t *testing.T) {
	a := NewRing([]string{"c:1", "a:1", "b:1"})
	b := NewRing([]string{"b:1", "a:1", "c:1", "a:1", ""})
	if got, want := fmt.Sprint(a.Members()), fmt.Sprint(b.Members()); got != want {
		t.Fatalf("members differ: %s vs %s", got, want)
	}
	for i := 0; i < 200; i++ {
		key := RouteKey("pair", fmt.Sprint(i))
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %d: owners differ across identical rings", i)
		}
		ra, rb := a.Ranked(key), b.Ranked(key)
		if fmt.Sprint(ra) != fmt.Sprint(rb) {
			t.Fatalf("key %d: rankings differ across identical rings", i)
		}
		if ra[0] != a.Owner(key) {
			t.Fatalf("key %d: Ranked[0] %q != Owner %q", i, ra[0], a.Owner(key))
		}
		if len(ra) != a.Len() {
			t.Fatalf("key %d: Ranked returned %d members, want %d", i, len(ra), a.Len())
		}
	}
}

// Removing one member must move only the keys it owned: rendezvous
// hashing's minimal-rebalance property, which is what makes rolling
// membership changes cheap to re-warm.
func TestClusterRingRebalanceMinimal(t *testing.T) {
	members := []string{"n1:1", "n2:1", "n3:1", "n4:1", "n5:1"}
	full := NewRing(members)
	without := NewRing(members[:4]) // n5 departs

	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		key := RouteKey("rebalance", fmt.Sprint(i))
		before, after := full.Owner(key), without.Owner(key)
		if before == "n5:1" {
			continue // its keys must move somewhere
		}
		if before != after {
			moved++
		} else {
			kept++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the departed member changed owner (kept %d)", moved, kept)
	}
}

func TestClusterRingShares(t *testing.T) {
	r := NewRing([]string{"n1:1", "n2:1", "n3:1"})
	shares := r.Shares(4096)
	sum := 0.0
	for m, s := range shares {
		sum += s
		if s < 0.15 || s > 0.55 {
			t.Errorf("member %s owns %.1f%% of sampled keys — badly unbalanced", m, 100*s)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %f, want 1", sum)
	}
	if NewRing(nil).Shares(100) != nil {
		t.Fatal("empty ring returned non-nil shares")
	}
	if NewRing(nil).Owner(RouteKey("x")) != "" {
		t.Fatal("empty ring returned an owner")
	}
}

func TestClusterRouteKeyDistinguishesParts(t *testing.T) {
	a := RouteKey("ab", "c")
	b := RouteKey("a", "bc")
	if string(a) == string(b) {
		t.Fatal("RouteKey collides across part boundaries")
	}
	if string(RouteKey("x", "y")) != string(RouteKey("x", "y")) {
		t.Fatal("RouteKey is not deterministic")
	}
}
