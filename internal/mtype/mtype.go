// Package mtype implements the Mockingbird internal type system (the
// "Mtypes" of the paper, Table 1). Mtypes abstract over the type systems of
// C, C++, Java, and CORBA IDL so that declarations written in different
// languages can be compared structurally.
//
// An Mtype is a node in a possibly cyclic graph. Recursive declarations are
// represented by a Recursive (μ) node placed in the cycle; back-edges in the
// graph point at that node, exactly as in Figure 8 of the paper. All other
// nodes are trees of Record, Choice, and Port constructors over the
// primitive Mtypes (Integer, Character, Real, Unit).
//
// Node identity matters: the comparer keys its coinductive caches on node
// pointers, so a given declaration lowers to one shared graph rather than to
// structurally equal copies.
package mtype

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Kind discriminates the Mtype constructors of Table 1 in the paper.
type Kind uint8

// The Mtype kinds. Values start at 1 so the zero Kind is invalid.
const (
	KindInteger   Kind = iota + 1 // integral types, parameterized by range
	KindCharacter                 // character types, parameterized by repertoire
	KindReal                      // floating point, parameterized by precision/exponent
	KindUnit                      // void and null
	KindRecord                    // ordered heterogeneous aggregates
	KindChoice                    // disjoint unions / alternatives
	KindRecursive                 // μ-binder placed in every cycle
	KindPort                      // addresses accepting values of the child Mtype
)

// String returns the lower-case constructor name.
func (k Kind) String() string {
	switch k {
	case KindInteger:
		return "integer"
	case KindCharacter:
		return "character"
	case KindReal:
		return "real"
	case KindUnit:
		return "unit"
	case KindRecord:
		return "record"
	case KindChoice:
		return "choice"
	case KindRecursive:
		return "recursive"
	case KindPort:
		return "port"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Repertoire identifies the glyph repertoire of a Character Mtype. The
// repertoires form a chain: ASCII ⊂ Latin-1 ⊂ UCS-2 ⊂ Unicode (UCS-4), which
// induces the Character subtype relation of §3.1.
type Repertoire uint8

// Supported glyph repertoires, smallest first.
const (
	RepASCII Repertoire = iota + 1
	RepLatin1
	RepUCS2
	RepUnicode
)

// String returns the conventional repertoire name.
func (r Repertoire) String() string {
	switch r {
	case RepASCII:
		return "ascii"
	case RepLatin1:
		return "latin1"
	case RepUCS2:
		return "ucs2"
	case RepUnicode:
		return "unicode"
	default:
		return fmt.Sprintf("repertoire(%d)", uint8(r))
	}
}

// Includes reports whether repertoire r contains repertoire s.
func (r Repertoire) Includes(s Repertoire) bool { return r >= s }

// Field is one named child of a Record. Names are carried for diagnostics
// and correspondence reporting only; they never influence type comparison.
type Field struct {
	Name string
	Type *Type
}

// Alt is one alternative of a Choice. As with record fields, names are
// cosmetic.
type Alt struct {
	Name string
	Type *Type
}

// Type is a node in an Mtype graph. Construct values with the New*
// constructors or the convenience builders; a zero Type is invalid.
type Type struct {
	kind Kind

	// Integer: inclusive range bounds. Always non-nil for KindInteger.
	lo, hi *big.Int

	// Character.
	rep Repertoire

	// Real: precision is the significand width in bits (including the
	// implicit leading bit), exp the exponent field width in bits.
	precision int
	exponent  int

	// Record / Choice children.
	fields []Field
	alts   []Alt

	// Recursive body and Port element.
	body *Type
	elem *Type

	// tag is an optional label (e.g. the source declaration name) used in
	// printing and diagnostics.
	tag string
}

// Kind returns the node's constructor kind.
func (t *Type) Kind() Kind { return t.kind }

// Tag returns the diagnostic label attached to the node, if any.
func (t *Type) Tag() string { return t.tag }

// SetTag attaches a diagnostic label to the node and returns the node.
func (t *Type) SetTag(tag string) *Type {
	t.tag = tag
	return t
}

// NewInteger returns an Integer Mtype with the inclusive range [lo, hi].
// The bounds are copied. NewInteger panics if lo > hi: integer ranges come
// from language defaults or validated annotations, so a reversed range is a
// programming error, not an input error.
func NewInteger(lo, hi *big.Int) *Type {
	if lo == nil || hi == nil || lo.Cmp(hi) > 0 {
		panic("mtype: invalid integer range")
	}
	return &Type{kind: KindInteger, lo: new(big.Int).Set(lo), hi: new(big.Int).Set(hi)}
}

// NewIntegerBits returns the Integer Mtype of a two's-complement (signed)
// or unsigned binary integer of the given width in bits.
func NewIntegerBits(bits int, signed bool) *Type {
	if bits <= 0 || bits > 128 {
		panic("mtype: invalid integer width")
	}
	one := big.NewInt(1)
	if signed {
		hi := new(big.Int).Lsh(one, uint(bits-1))
		lo := new(big.Int).Neg(hi)
		hi.Sub(hi, one)
		return &Type{kind: KindInteger, lo: lo, hi: hi}
	}
	hi := new(big.Int).Lsh(one, uint(bits))
	hi.Sub(hi, one)
	return &Type{kind: KindInteger, lo: big.NewInt(0), hi: hi}
}

// NewBool returns the Integer Mtype 0..1, the conventional lowering of
// booleans (§3.1).
func NewBool() *Type { return NewInteger(big.NewInt(0), big.NewInt(1)) }

// NewEnum returns the Integer Mtype 0..n-1, the conventional lowering of an
// enumeration with n elements (§3.1). NewEnum panics if n < 1.
func NewEnum(n int) *Type {
	if n < 1 {
		panic("mtype: enum must have at least one element")
	}
	return NewInteger(big.NewInt(0), big.NewInt(int64(n-1)))
}

// IntegerRange returns copies of the inclusive bounds of an Integer Mtype.
func (t *Type) IntegerRange() (lo, hi *big.Int) {
	t.mustKind(KindInteger)
	return new(big.Int).Set(t.lo), new(big.Int).Set(t.hi)
}

// NewCharacter returns a Character Mtype with the given repertoire.
func NewCharacter(rep Repertoire) *Type {
	if rep < RepASCII || rep > RepUnicode {
		panic("mtype: invalid repertoire")
	}
	return &Type{kind: KindCharacter, rep: rep}
}

// Repertoire returns the glyph repertoire of a Character Mtype.
func (t *Type) Repertoire() Repertoire {
	t.mustKind(KindCharacter)
	return t.rep
}

// NewReal returns a Real Mtype with the given significand precision and
// exponent width, both in bits.
func NewReal(precision, exponent int) *Type {
	if precision <= 0 || exponent <= 0 {
		panic("mtype: invalid real parameters")
	}
	return &Type{kind: KindReal, precision: precision, exponent: exponent}
}

// Standard Real Mtypes for IEEE 754 binary32 and binary64.
func NewFloat32() *Type { return NewReal(24, 8) }

// NewFloat64 returns the Real Mtype of an IEEE 754 binary64 value.
func NewFloat64() *Type { return NewReal(53, 11) }

// RealParams returns the significand precision and exponent width of a Real
// Mtype, in bits.
func (t *Type) RealParams() (precision, exponent int) {
	t.mustKind(KindReal)
	return t.precision, t.exponent
}

// Unit returns a Unit Mtype, modelling void and null (§3.1).
//
// Each call returns a fresh node so callers may tag it independently; Unit
// nodes are compared by kind, never by identity.
func Unit() *Type { return &Type{kind: KindUnit} }

// NewRecord returns a Record Mtype over the given fields, in order.
// Field types must be non-nil.
func NewRecord(fields ...Field) *Type {
	for i, f := range fields {
		if f.Type == nil {
			panic(fmt.Sprintf("mtype: record field %d (%q) has nil type", i, f.Name))
		}
	}
	return &Type{kind: KindRecord, fields: append([]Field(nil), fields...)}
}

// RecordOf returns a Record over unnamed fields of the given types.
func RecordOf(types ...*Type) *Type {
	fields := make([]Field, len(types))
	for i, ty := range types {
		fields[i] = Field{Type: ty}
	}
	return NewRecord(fields...)
}

// Fields returns the record's fields. The returned slice is shared; callers
// must not modify it.
func (t *Type) Fields() []Field {
	t.mustKind(KindRecord)
	return t.fields
}

// NewChoice returns a Choice Mtype over the given alternatives, in order.
func NewChoice(alts ...Alt) *Type {
	for i, a := range alts {
		if a.Type == nil {
			panic(fmt.Sprintf("mtype: choice alternative %d (%q) has nil type", i, a.Name))
		}
	}
	return &Type{kind: KindChoice, alts: append([]Alt(nil), alts...)}
}

// ChoiceOf returns a Choice over unnamed alternatives of the given types.
func ChoiceOf(types ...*Type) *Type {
	alts := make([]Alt, len(types))
	for i, ty := range types {
		alts[i] = Alt{Type: ty}
	}
	return NewChoice(alts...)
}

// Alts returns the choice's alternatives. The returned slice is shared;
// callers must not modify it.
func (t *Type) Alts() []Alt {
	t.mustKind(KindChoice)
	return t.alts
}

// NewOptional returns Choice(Unit, elem): the lowering of a nullable pointer
// or reference (§3.2), where the Unit alternative is the null case.
func NewOptional(elem *Type) *Type {
	return NewChoice(Alt{Name: "null", Type: Unit()}, Alt{Name: "value", Type: elem})
}

// NewRecursive returns an unbound Recursive (μ) node. The caller must call
// SetBody before the node is used; back-edges in the body point directly at
// the returned node.
func NewRecursive() *Type { return &Type{kind: KindRecursive} }

// SetBody binds the body of a Recursive node. It panics if called twice or
// with a nil body.
func (t *Type) SetBody(body *Type) {
	t.mustKind(KindRecursive)
	if body == nil {
		panic("mtype: nil recursive body")
	}
	if t.body != nil {
		panic("mtype: recursive body already set")
	}
	t.body = body
}

// Body returns the body of a Recursive node, or nil if it is not yet bound.
func (t *Type) Body() *Type {
	t.mustKind(KindRecursive)
	return t.body
}

// NewPort returns port(elem): the Mtype of addresses to which values of the
// element Mtype may be sent (§3.3).
func NewPort(elem *Type) *Type {
	if elem == nil {
		panic("mtype: nil port element")
	}
	return &Type{kind: KindPort, elem: elem}
}

// Elem returns the element Mtype of a Port.
func (t *Type) Elem() *Type {
	t.mustKind(KindPort)
	return t.elem
}

// NewList returns the recursive list encoding of a homogeneous ordered
// collection of indefinite size (§3.2):
//
//	μL. Choice(Unit, Record(elem, L))
//
// Indefinite arrays, java.util.Vector, and linked lists all lower to this
// shape, which is why Mockingbird can adapt between them (Figure 8).
func NewList(elem *Type) *Type {
	rec := NewRecursive()
	cons := NewRecord(Field{Name: "head", Type: elem}, Field{Name: "tail", Type: rec})
	rec.SetBody(NewChoice(Alt{Name: "nil", Type: Unit()}, Alt{Name: "cons", Type: cons}))
	return rec
}

// NewFunction returns the lowering of a function or method reference
// (§3.3):
//
//	port(Record(inputs..., port(Record(outputs...))))
//
// The trailing field of the request record is the reply port.
func NewFunction(inputs, outputs []Field) *Type {
	reply := NewPort(NewRecord(outputs...)).SetTag("reply")
	request := make([]Field, 0, len(inputs)+1)
	request = append(request, inputs...)
	request = append(request, Field{Name: "reply", Type: reply})
	return NewPort(NewRecord(request...))
}

// Children returns the immediate successor nodes of t, in declaration
// order. The result is freshly allocated.
func (t *Type) Children() []*Type {
	switch t.kind {
	case KindRecord:
		out := make([]*Type, len(t.fields))
		for i, f := range t.fields {
			out[i] = f.Type
		}
		return out
	case KindChoice:
		out := make([]*Type, len(t.alts))
		for i, a := range t.alts {
			out[i] = a.Type
		}
		return out
	case KindRecursive:
		if t.body == nil {
			return nil
		}
		return []*Type{t.body}
	case KindPort:
		return []*Type{t.elem}
	default:
		return nil
	}
}

func (t *Type) mustKind(k Kind) {
	if t.kind != k {
		panic(fmt.Sprintf("mtype: %s operation on %s node", k, t.kind))
	}
}

// Validate checks structural well-formedness of the graph rooted at t:
// every Recursive node must have a bound body, no child pointer may be nil,
// and every cycle must pass through at least one Recursive node and one
// structural (Record/Choice/Port) node, so that types are contractive in
// the Amadio–Cardelli sense.
func Validate(t *Type) error {
	if t == nil {
		return fmt.Errorf("mtype: nil type")
	}
	seen := make(map[*Type]bool)
	// onPath tracks nodes on the current DFS path together with whether a
	// structural node has been traversed since each was entered.
	type pathInfo struct{ index int }
	onPath := make(map[*Type]pathInfo)
	var path []*Type

	var walk func(n *Type) error
	walk = func(n *Type) error {
		if n == nil {
			return fmt.Errorf("mtype: nil child reached")
		}
		if info, ok := onPath[n]; ok {
			// Found a cycle: the loop is path[info.index:]. It must
			// contain a Recursive node and a structural node.
			hasRec, hasStruct := false, false
			for _, m := range path[info.index:] {
				switch m.kind {
				case KindRecursive:
					hasRec = true
				case KindRecord, KindChoice, KindPort:
					hasStruct = true
				}
			}
			if !hasRec {
				return fmt.Errorf("mtype: cycle without a recursive node (through %s)", n.kind)
			}
			if !hasStruct {
				return fmt.Errorf("mtype: non-contractive cycle (no structural node)")
			}
			return nil
		}
		if seen[n] {
			return nil
		}
		seen[n] = true
		if n.kind == KindRecursive && n.body == nil {
			return fmt.Errorf("mtype: recursive node %q has no body", n.tag)
		}
		if n.kind < KindInteger || n.kind > KindPort {
			return fmt.Errorf("mtype: invalid kind %d", n.kind)
		}
		onPath[n] = pathInfo{index: len(path)}
		path = append(path, n)
		for _, c := range n.Children() {
			if err := walk(c); err != nil {
				return err
			}
		}
		path = path[:len(path)-1]
		delete(onPath, n)
		return nil
	}
	return walk(t)
}

// ShapeKey returns a shallow fingerprint of a node: its kind, primitive
// parameters, and child count. Nodes with different shape keys can never be
// equivalent, so the comparer uses shape keys to prune the commutative
// matching search. ShapeKey does not recurse.
func ShapeKey(t *Type) string {
	switch t.kind {
	case KindInteger:
		return "i[" + t.lo.String() + "," + t.hi.String() + "]"
	case KindCharacter:
		return "c" + t.rep.String()
	case KindReal:
		return fmt.Sprintf("r%d.%d", t.precision, t.exponent)
	case KindUnit:
		return "u"
	case KindRecord:
		return fmt.Sprintf("R%d", len(t.fields))
	case KindChoice:
		return fmt.Sprintf("C%d", len(t.alts))
	case KindRecursive:
		return "M"
	case KindPort:
		return "P"
	default:
		return "?"
	}
}

// String renders the graph rooted at t in a compact notation with μ-binders
// for cycles, e.g. the Figure 8 list prints as
//
//	μL1.choice(unit, record(real(24,8), L1))
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	// First pass: find Recursive nodes that are actually re-entered so only
	// they get binder labels.
	referenced := make(map[*Type]bool)
	visited := make(map[*Type]bool)
	var scan func(n *Type)
	scan = func(n *Type) {
		if n == nil {
			return
		}
		if visited[n] {
			if n.kind == KindRecursive {
				referenced[n] = true
			}
			return
		}
		visited[n] = true
		for _, c := range n.Children() {
			scan(c)
		}
	}
	scan(t)

	// Assign stable binder labels to re-entered Recursive nodes in preorder.
	labels := make(map[*Type]string)
	for _, n := range Nodes(t) {
		if n.kind == KindRecursive && referenced[n] {
			labels[n] = fmt.Sprintf("L%d", len(labels)+1)
		}
	}

	opened := make(map[*Type]bool)
	var sb strings.Builder
	var render func(n *Type)
	render = func(n *Type) {
		if n == nil {
			sb.WriteString("<nil>")
			return
		}
		if lbl, ok := labels[n]; ok && opened[n] {
			sb.WriteString(lbl)
			return
		}
		switch n.kind {
		case KindInteger:
			fmt.Fprintf(&sb, "integer[%s..%s]", n.lo, n.hi)
		case KindCharacter:
			fmt.Fprintf(&sb, "character(%s)", n.rep)
		case KindReal:
			fmt.Fprintf(&sb, "real(%d,%d)", n.precision, n.exponent)
		case KindUnit:
			sb.WriteString("unit")
		case KindRecord:
			sb.WriteString("record(")
			for i, f := range n.fields {
				if i > 0 {
					sb.WriteString(", ")
				}
				render(f.Type)
			}
			sb.WriteString(")")
		case KindChoice:
			sb.WriteString("choice(")
			for i, a := range n.alts {
				if i > 0 {
					sb.WriteString(", ")
				}
				render(a.Type)
			}
			sb.WriteString(")")
		case KindRecursive:
			if lbl, ok := labels[n]; ok {
				opened[n] = true
				sb.WriteString("μ" + lbl + ".")
				render(n.body)
				opened[n] = false
			} else {
				render(n.body)
			}
		case KindPort:
			sb.WriteString("port(")
			render(n.elem)
			sb.WriteString(")")
		default:
			sb.WriteString("<invalid>")
		}
	}
	render(t)
	return sb.String()
}

// Nodes returns every node reachable from t, in a deterministic preorder.
func Nodes(t *Type) []*Type {
	var out []*Type
	seen := make(map[*Type]bool)
	var walk func(n *Type)
	walk = func(n *Type) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		out = append(out, n)
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(t)
	return out
}

// Size returns the number of distinct nodes reachable from t.
func Size(t *Type) int { return len(Nodes(t)) }

// Fingerprint returns a deep structural hash of the graph rooted at t that
// is invariant under node identity (two isomorphic graphs built separately
// hash equal) but sensitive to child order. It is used as a cache key by
// clients that memoize per-shape work.
//
// Cycles are handled by hashing the graph as the infinite regular tree it
// denotes, truncated at a fixed depth. Graphs denoting regular trees that
// first differ deeper than the truncation depth collide, which is
// acceptable for a cache key; using a fixed depth (rather than one derived
// from graph size) makes a graph and its unrollings hash equal.
func Fingerprint(t *Type) uint64 {
	const depth = 64
	type key struct {
		n *Type
		d int
	}
	memo := make(map[key]uint64)
	inProgress := make(map[key]bool)
	var hash func(n *Type, d int) uint64
	hash = func(n *Type, d int) uint64 {
		if n != nil {
			if v, ok := memo[key{n, d}]; ok {
				return v
			}
			// Re-entering the same node at the same depth can only happen
			// on a non-contractive (invalid) graph; break the loop.
			if inProgress[key{n, d}] {
				return 0xbadc0de
			}
			inProgress[key{n, d}] = true
			defer delete(inProgress, key{n, d})
		}
		const (
			offset64 = 14695981039346656037
			prime64  = 1099511628211
		)
		h := uint64(offset64)
		mix := func(x uint64) {
			h ^= x
			h *= prime64
		}
		if n == nil || d == 0 {
			mix(0xdead)
			return h
		}
		if n.kind == KindRecursive {
			// Equi-recursive: a μ node is its body, at the same depth, so
			// that a graph and its unrollings hash identically.
			v := hash(n.body, d)
			memo[key{n, d}] = v
			return v
		}
		mix(uint64(n.kind))
		switch n.kind {
		case KindInteger:
			mix(hashString(n.lo.String()))
			mix(hashString(n.hi.String()))
		case KindCharacter:
			mix(uint64(n.rep))
		case KindReal:
			mix(uint64(n.precision))
			mix(uint64(n.exponent))
		case KindRecord:
			mix(uint64(len(n.fields)))
			for _, f := range n.fields {
				mix(hash(f.Type, d-1))
			}
		case KindChoice:
			mix(uint64(len(n.alts)))
			for _, a := range n.alts {
				mix(hash(a.Type, d-1))
			}
		case KindPort:
			mix(hash(n.elem, d-1))
		}
		memo[key{n, d}] = h
		return h
	}
	return hash(t, depth)
}

func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ListElem recognizes the recursive list encoding of §3.2,
//
//	μL. Choice(Unit, Record(τ, L))
//
// and returns its element type τ. Wire encoding and value rendering use
// it to treat lists as sequences rather than cons chains.
func ListElem(t *Type) (elem *Type, ok bool) {
	if t == nil || t.kind != KindRecursive {
		return nil, false
	}
	body := t.body
	for body != nil && body.kind == KindRecursive {
		body = body.body
	}
	if body == nil || body.kind != KindChoice || len(body.alts) != 2 {
		return nil, false
	}
	nilAlt := body.alts[0].Type
	for nilAlt != nil && nilAlt.kind == KindRecursive {
		nilAlt = nilAlt.body
	}
	if nilAlt == nil || nilAlt.kind != KindUnit {
		return nil, false
	}
	cons := body.alts[1].Type
	for cons != nil && cons.kind == KindRecursive {
		cons = cons.body
	}
	if cons == nil || cons.kind != KindRecord || len(cons.fields) != 2 {
		return nil, false
	}
	if cons.fields[1].Type != t {
		return nil, false
	}
	return cons.fields[0].Type, true
}

// SortedShapeKeys returns the shape keys of the given types, sorted. It is
// a convenience for tests and diagnostics that compare child multisets.
func SortedShapeKeys(types []*Type) []string {
	keys := make([]string, len(types))
	for i, ty := range types {
		keys[i] = ShapeKey(ty)
	}
	sort.Strings(keys)
	return keys
}
