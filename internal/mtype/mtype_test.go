package mtype

import (
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInteger:   "integer",
		KindCharacter: "character",
		KindReal:      "real",
		KindUnit:      "unit",
		KindRecord:    "record",
		KindChoice:    "choice",
		KindRecursive: "recursive",
		KindPort:      "port",
		Kind(0):       "kind(0)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNewIntegerBitsSigned(t *testing.T) {
	ty := NewIntegerBits(16, true)
	lo, hi := ty.IntegerRange()
	if lo.Int64() != -32768 || hi.Int64() != 32767 {
		t.Errorf("int16 range = [%s, %s], want [-32768, 32767]", lo, hi)
	}
}

func TestNewIntegerBitsUnsigned(t *testing.T) {
	ty := NewIntegerBits(64, false)
	lo, hi := ty.IntegerRange()
	if lo.Sign() != 0 {
		t.Errorf("uint64 lo = %s, want 0", lo)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 64)
	want.Sub(want, big.NewInt(1))
	if hi.Cmp(want) != 0 {
		t.Errorf("uint64 hi = %s, want %s", hi, want)
	}
}

func TestNewIntegerCopiesBounds(t *testing.T) {
	lo, hi := big.NewInt(0), big.NewInt(10)
	ty := NewInteger(lo, hi)
	hi.SetInt64(99) // mutate the caller's copy
	_, gotHi := ty.IntegerRange()
	if gotHi.Int64() != 10 {
		t.Errorf("bounds aliased: hi = %s after caller mutation", gotHi)
	}
}

func TestNewIntegerPanicsOnReversedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for reversed range")
		}
	}()
	NewInteger(big.NewInt(5), big.NewInt(1))
}

func TestBoolAndEnumConventions(t *testing.T) {
	lo, hi := NewBool().IntegerRange()
	if lo.Int64() != 0 || hi.Int64() != 1 {
		t.Errorf("bool = [%s..%s], want [0..1]", lo, hi)
	}
	lo, hi = NewEnum(5).IntegerRange()
	if lo.Int64() != 0 || hi.Int64() != 4 {
		t.Errorf("enum(5) = [%s..%s], want [0..4]", lo, hi)
	}
}

func TestRepertoireChain(t *testing.T) {
	chain := []Repertoire{RepASCII, RepLatin1, RepUCS2, RepUnicode}
	for i, small := range chain {
		for j, large := range chain {
			got := large.Includes(small)
			want := j >= i
			if got != want {
				t.Errorf("%s.Includes(%s) = %v, want %v", large, small, got, want)
			}
		}
	}
}

func TestRealParams(t *testing.T) {
	p, e := NewFloat32().RealParams()
	if p != 24 || e != 8 {
		t.Errorf("float32 = (%d,%d), want (24,8)", p, e)
	}
	p, e = NewFloat64().RealParams()
	if p != 53 || e != 11 {
		t.Errorf("float64 = (%d,%d), want (53,11)", p, e)
	}
}

func TestRecordFieldsPreserveOrderAndNames(t *testing.T) {
	r := NewRecord(
		Field{Name: "x", Type: NewFloat32()},
		Field{Name: "y", Type: NewFloat32()},
	)
	fields := r.Fields()
	if len(fields) != 2 || fields[0].Name != "x" || fields[1].Name != "y" {
		t.Errorf("fields = %+v", fields)
	}
}

func TestChoiceAlts(t *testing.T) {
	c := NewOptional(NewFloat32())
	alts := c.Alts()
	if len(alts) != 2 {
		t.Fatalf("optional has %d alts, want 2", len(alts))
	}
	if alts[0].Type.Kind() != KindUnit {
		t.Errorf("first alt kind = %s, want unit", alts[0].Type.Kind())
	}
	if alts[1].Type.Kind() != KindReal {
		t.Errorf("second alt kind = %s, want real", alts[1].Type.Kind())
	}
}

func TestListEncodingShape(t *testing.T) {
	// §3.2 / Figure 8: a list of τ is μL.Choice(Unit, Record(τ, L)).
	l := NewList(NewFloat32())
	if l.Kind() != KindRecursive {
		t.Fatalf("list root = %s, want recursive", l.Kind())
	}
	body := l.Body()
	if body.Kind() != KindChoice {
		t.Fatalf("list body = %s, want choice", body.Kind())
	}
	alts := body.Alts()
	if alts[0].Type.Kind() != KindUnit {
		t.Errorf("nil alternative = %s, want unit", alts[0].Type.Kind())
	}
	cons := alts[1].Type
	if cons.Kind() != KindRecord {
		t.Fatalf("cons alternative = %s, want record", cons.Kind())
	}
	if cons.Fields()[1].Type != l {
		t.Error("cons tail does not point back at the μ node")
	}
}

func TestFunctionEncodingShape(t *testing.T) {
	// §3.3: F(int) -> float has Mtype port(Record(Integer, port(Real))).
	fn := NewFunction(
		[]Field{{Name: "n", Type: NewIntegerBits(32, true)}},
		[]Field{{Name: "result", Type: NewFloat32()}},
	)
	if fn.Kind() != KindPort {
		t.Fatalf("function = %s, want port", fn.Kind())
	}
	req := fn.Elem()
	if req.Kind() != KindRecord {
		t.Fatalf("request = %s, want record", req.Kind())
	}
	fields := req.Fields()
	if len(fields) != 2 {
		t.Fatalf("request has %d fields, want 2", len(fields))
	}
	if fields[0].Type.Kind() != KindInteger {
		t.Errorf("input = %s, want integer", fields[0].Type.Kind())
	}
	reply := fields[1].Type
	if reply.Kind() != KindPort {
		t.Fatalf("reply = %s, want port", reply.Kind())
	}
	out := reply.Elem()
	if out.Kind() != KindRecord || len(out.Fields()) != 1 || out.Fields()[0].Type.Kind() != KindReal {
		t.Errorf("reply element = %s", out)
	}
}

func TestValidateAcceptsListAndFunction(t *testing.T) {
	for _, ty := range []*Type{
		NewList(NewFloat32()),
		NewFunction(nil, nil),
		Unit(),
		NewRecord(),
	} {
		if err := Validate(ty); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", ty, err)
		}
	}
}

func TestValidateRejectsUnboundRecursive(t *testing.T) {
	rec := NewRecursive()
	if err := Validate(rec); err == nil {
		t.Error("Validate accepted unbound recursive node")
	}
}

func TestValidateRejectsNonContractiveCycle(t *testing.T) {
	// μL.L — a recursive node whose body is itself, with no structural node
	// in the cycle.
	rec := NewRecursive()
	rec.SetBody(rec)
	if err := Validate(rec); err == nil {
		t.Error("Validate accepted non-contractive μL.L")
	}
}

func TestValidateRejectsCycleWithoutRecursiveNode(t *testing.T) {
	// Build a record whose field points back at the record without a μ node
	// in between. This cannot be built through constructors alone, so we
	// mutate the shared fields slice — exactly the corruption Validate
	// exists to catch.
	inner := NewRecord(Field{Name: "tmp", Type: Unit()})
	outer := NewRecord(Field{Name: "loop", Type: inner}, Field{Name: "pad", Type: Unit()})
	inner.Fields()[0].Type = outer
	if err := Validate(outer); err == nil {
		t.Error("Validate accepted cycle without recursive node")
	}
	if err := Validate(outer); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("error should mention recursive node requirement, got %v", err)
	}
}

func TestValidateNil(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Error("Validate(nil) = nil, want error")
	}
}

func TestStringRendersFitterMtype(t *testing.T) {
	// §3.4: both fitter declarations lower to
	// port(Record(L, port(Record(RR, RR)))) where L is a list of RR.
	point := RecordOf(NewFloat32(), NewFloat32())
	line := RecordOf(RecordOf(NewFloat32(), NewFloat32()), RecordOf(NewFloat32(), NewFloat32()))
	fitter := NewPort(NewRecord(
		Field{Name: "pts", Type: NewList(point)},
		Field{Name: "reply", Type: NewPort(line)},
	))
	s := fitter.String()
	for _, want := range []string{"port(record(μL1.choice(unit, record(record(real(24,8), real(24,8)), L1))", "real(24,8)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestStringSharedListIsStable(t *testing.T) {
	l := NewList(NewFloat32())
	pair := RecordOf(l, l)
	s := pair.String()
	if !strings.Contains(s, "μL1") {
		t.Errorf("String() = %q, want μ binder", s)
	}
	if got := pair.String(); got != s {
		t.Errorf("String() unstable: %q then %q", s, got)
	}
}

func TestChildren(t *testing.T) {
	a, b := NewFloat32(), NewIntegerBits(8, false)
	rec := RecordOf(a, b)
	kids := rec.Children()
	if len(kids) != 2 || kids[0] != a || kids[1] != b {
		t.Errorf("record children wrong: %v", kids)
	}
	p := NewPort(a)
	if kids := p.Children(); len(kids) != 1 || kids[0] != a {
		t.Errorf("port children wrong: %v", kids)
	}
	if kids := a.Children(); kids != nil {
		t.Errorf("primitive children = %v, want nil", kids)
	}
	unbound := NewRecursive()
	if kids := unbound.Children(); kids != nil {
		t.Errorf("unbound recursive children = %v, want nil", kids)
	}
}

func TestSizeAndNodes(t *testing.T) {
	l := NewList(NewFloat32())
	// μ node, choice, unit, record, real = 5 distinct nodes.
	if got := Size(l); got != 5 {
		t.Errorf("Size(list) = %d, want 5", got)
	}
	nodes := Nodes(l)
	if nodes[0] != l {
		t.Error("Nodes should start at the root")
	}
}

func TestShapeKeysDiffer(t *testing.T) {
	distinct := []*Type{
		NewIntegerBits(8, true),
		NewIntegerBits(8, false),
		NewCharacter(RepASCII),
		NewCharacter(RepUnicode),
		NewFloat32(),
		NewFloat64(),
		Unit(),
		RecordOf(Unit()),
		RecordOf(Unit(), Unit()),
		ChoiceOf(Unit()),
		NewPort(Unit()),
		NewList(Unit()),
	}
	seen := make(map[string]int)
	for i, ty := range distinct {
		key := ShapeKey(ty)
		if j, dup := seen[key]; dup {
			t.Errorf("types %d and %d share shape key %q", i, j, key)
		}
		seen[key] = i
	}
}

func TestFingerprintIdentityInsensitive(t *testing.T) {
	a := NewList(RecordOf(NewFloat32(), NewFloat32()))
	b := NewList(RecordOf(NewFloat32(), NewFloat32()))
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("separately built isomorphic graphs should fingerprint equal")
	}
}

func TestFingerprintShapeSensitive(t *testing.T) {
	pairs := [][2]*Type{
		{NewFloat32(), NewFloat64()},
		{RecordOf(NewFloat32()), RecordOf(NewFloat64())},
		{NewList(NewFloat32()), NewList(NewFloat64())},
		{NewPort(Unit()), Unit()},
		{RecordOf(Unit(), NewFloat32()), RecordOf(NewFloat32(), Unit())},
	}
	for i, p := range pairs {
		if Fingerprint(p[0]) == Fingerprint(p[1]) {
			t.Errorf("pair %d: distinct shapes fingerprint equal (%s vs %s)", i, p[0], p[1])
		}
	}
}

func TestFingerprintUnrolledListEqual(t *testing.T) {
	// An unrolled list choice(unit, record(τ, μL...)) denotes the same
	// regular tree as the list itself; the fingerprint is tree-based so the
	// two must agree.
	elem := NewFloat32()
	l := NewList(elem)
	unrolled := NewChoice(
		Alt{Name: "nil", Type: Unit()},
		Alt{Name: "cons", Type: NewRecord(Field{Name: "head", Type: elem}, Field{Name: "tail", Type: l})},
	)
	if Fingerprint(l) != Fingerprint(unrolled) {
		t.Error("one-step unrolling changed the fingerprint")
	}
}

func TestTagRoundTrip(t *testing.T) {
	ty := Unit().SetTag("void")
	if ty.Tag() != "void" {
		t.Errorf("Tag = %q, want void", ty.Tag())
	}
}

func TestMustKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic calling Fields on a port")
		}
	}()
	NewPort(Unit()).Fields()
}

// genType builds a random acyclic Mtype of bounded depth for property tests.
func genType(rnd func(int) int, depth int) *Type {
	if depth <= 0 {
		switch rnd(5) {
		case 0:
			return NewIntegerBits(8*(1+rnd(4)), rnd(2) == 0)
		case 1:
			return NewCharacter(Repertoire(1 + rnd(4)))
		case 2:
			return NewFloat32()
		case 3:
			return NewFloat64()
		default:
			return Unit()
		}
	}
	switch rnd(4) {
	case 0:
		n := rnd(4)
		kids := make([]*Type, n)
		for i := range kids {
			kids[i] = genType(rnd, depth-1)
		}
		return RecordOf(kids...)
	case 1:
		n := 1 + rnd(3)
		kids := make([]*Type, n)
		for i := range kids {
			kids[i] = genType(rnd, depth-1)
		}
		return ChoiceOf(kids...)
	case 2:
		return NewPort(genType(rnd, depth-1))
	default:
		return NewList(genType(rnd, depth-1))
	}
}

func TestPropertyRandomTypesValidate(t *testing.T) {
	f := func(seed int64) bool {
		state := seed
		rnd := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			v := int((state >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		ty := genType(rnd, 4)
		return Validate(ty) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFingerprintDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		state := seed
		rnd := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			v := int((state >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		ty := genType(rnd, 3)
		return Fingerprint(ty) == Fingerprint(ty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyStringTerminates(t *testing.T) {
	// String on cyclic graphs must terminate and mention a binder.
	f := func(seed int64) bool {
		state := seed
		rnd := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			v := int((state >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		ty := NewList(genType(rnd, 3))
		s := ty.String()
		return strings.Contains(s, "μ")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
