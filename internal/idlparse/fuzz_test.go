package idlparse

import (
	"strings"
	"testing"

	"repro/internal/limits"
)

// FuzzIDLParse feeds arbitrary bytes to the IDL parser under a small
// budget: it must terminate without panicking.
func FuzzIDLParse(f *testing.F) {
	f.Add(`interface I { void f(in long x, out double y); };`)
	f.Add(`module M { struct S { float a; }; typedef sequence<S> Ss; };`)
	f.Add(`union U switch (long) { case 1: long a; default: float b; };`)
	f.Add(`enum E { a, b, c }; typedef E Es[4];`)
	f.Add(`interface A : B { readonly attribute string name; };`)
	f.Add("typedef " + strings.Repeat("sequence<", 40) + "long" + strings.Repeat(">", 40) + " t;")
	f.Fuzz(func(t *testing.T, src string) {
		b := limits.Budget{MaxBytes: 1 << 16, MaxTokens: 1 << 12, MaxDepth: 64}
		_, _ = ParseBudget("fuzz.idl", src, b)
	})
}
