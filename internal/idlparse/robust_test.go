package idlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics mutates valid IDL fragments; parsing must never
// panic or hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`interface I { void f(in long x, out double y); };`,
		`module M { struct S { float a; }; typedef sequence<S> Ss; };`,
		`union U switch (long) { case 1: long a; default: float b; };`,
		`enum E { a, b, c }; typedef E Es[4];`,
		`interface A : B { readonly attribute string name; };`,
	}
	tokens := []string{
		"interface", "module", "struct", "{", "}", "(", ")", ";", ",",
		"in", "out", "long", "sequence", "<", ">", "::", ":", "x",
	}
	f := func(seed int64, cut, ins uint8) bool {
		src := seeds[int(uint64(seed)%uint64(len(seeds)))]
		pos := int(cut) % (len(src) + 1)
		tok := tokens[int(ins)%len(tokens)]
		_, _ = Parse("fuzz.idl", src[:pos]+" "+tok+" "+src[pos:])
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserHandlesGarbage(t *testing.T) {
	garbage := []string{
		"",
		"};",
		"module",
		"module M {",
		strings.Repeat("module M { ", 60),
		"interface I { void f(in sequence<sequence<sequence<long>>> x); };",
		"\xff\xfeinterface I {};",
	}
	for _, src := range garbage {
		_, _ = Parse("garbage.idl", src)
	}
}
