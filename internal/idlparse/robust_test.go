package idlparse

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/limits"
)

// TestParserNeverPanics mutates valid IDL fragments; parsing must never
// panic or hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`interface I { void f(in long x, out double y); };`,
		`module M { struct S { float a; }; typedef sequence<S> Ss; };`,
		`union U switch (long) { case 1: long a; default: float b; };`,
		`enum E { a, b, c }; typedef E Es[4];`,
		`interface A : B { readonly attribute string name; };`,
	}
	tokens := []string{
		"interface", "module", "struct", "{", "}", "(", ")", ";", ",",
		"in", "out", "long", "sequence", "<", ">", "::", ":", "x",
	}
	f := func(seed int64, cut, ins uint8) bool {
		src := seeds[int(uint64(seed)%uint64(len(seeds)))]
		pos := int(cut) % (len(src) + 1)
		tok := tokens[int(ins)%len(tokens)]
		_, _ = Parse("fuzz.idl", src[:pos]+" "+tok+" "+src[pos:])
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserHandlesGarbage(t *testing.T) {
	garbage := []string{
		"",
		"};",
		"module",
		"module M {",
		strings.Repeat("module M { ", 60),
		"interface I { void f(in sequence<sequence<sequence<long>>> x); };",
		"\xff\xfeinterface I {};",
	}
	for _, src := range garbage {
		_, _ = Parse("garbage.idl", src)
	}
}

// TestInputBudgets drives each budget axis past its limit: every case
// must surface a typed error wrapping limits.ErrBudget.
func TestInputBudgets(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		budget limits.Budget
	}{
		{"deep module nesting",
			strings.Repeat("module M { ", 300) + "typedef long t;" + strings.Repeat(" };", 300),
			limits.Budget{}},
		{"deep struct nesting",
			strings.Repeat("struct S { ", 300) + "long x;" + strings.Repeat(" };", 300),
			limits.Budget{}},
		{"sequence nesting bomb",
			"typedef " + strings.Repeat("sequence<", 300) + "long" + strings.Repeat(">", 300) + " t;",
			limits.Budget{}},
		{"array suffix bomb",
			"typedef long t" + strings.Repeat("[2]", 300) + ";",
			limits.Budget{}},
		{"oversized input",
			"typedef long a_rather_long_name_for_a_long;",
			limits.Budget{MaxBytes: 16}},
		{"token bomb",
			"struct S { long a; long b; long c; long d; };",
			limits.Budget{MaxTokens: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBudget("hostile.idl", tc.src, tc.budget)
			if !errors.Is(err, limits.ErrBudget) {
				t.Errorf("err = %v, want limits.ErrBudget", err)
			}
		})
	}
	if _, err := ParseBudget("ok.idl", "typedef long t;", limits.Budget{MaxBytes: 64, MaxTokens: 16, MaxDepth: 8}); err != nil {
		t.Errorf("honest input rejected: %v", err)
	}
}
