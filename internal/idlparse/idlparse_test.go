package idlparse

import (
	"strings"
	"testing"

	"repro/internal/stype"
)

// figure3a is the Java-friendly IDL of Figure 3(a) of the paper.
const figure3a = `
interface JavaFriendly {
  struct Point {
    float x;
    float y;
  };
  struct Line {
    Point start;
    Point end;
  };
  typedef sequence<Point> PointVector;
  Line fitter(in PointVector pts);
};
`

// figure3b is the C-friendly IDL of Figure 3(b).
const figure3b = `
interface CFriendly {
  typedef float Point[2];
  typedef sequence<Point> pointseq;
  void fitter(in pointseq pts,
              in long count,
              out Point start,
              out Point end);
};
`

func TestFigure3aJavaFriendly(t *testing.T) {
	u := MustParse(figure3a)
	iface := u.Lookup("JavaFriendly")
	if iface == nil || iface.Type.Kind != stype.KInterface {
		t.Fatalf("JavaFriendly = %+v", iface)
	}
	pt := u.Lookup("JavaFriendly::Point")
	if pt == nil || pt.Type.Kind != stype.KStruct || len(pt.Type.Fields) != 2 {
		t.Fatalf("Point = %+v", pt)
	}
	line := u.Lookup("JavaFriendly::Line")
	if line == nil || line.Type.Fields[0].Type.Name != "JavaFriendly::Point" {
		t.Fatalf("Line = %+v", line)
	}
	pv := u.Lookup("JavaFriendly::PointVector")
	if pv == nil || pv.Type.Kind != stype.KSequence {
		t.Fatalf("PointVector = %+v", pv)
	}
	if len(iface.Type.Methods) != 1 {
		t.Fatalf("methods = %+v", iface.Type.Methods)
	}
	m := iface.Type.Methods[0]
	if m.Name != "fitter" || m.Result == nil || m.Result.Name != "JavaFriendly::Line" {
		t.Errorf("fitter = %s", m.Signature())
	}
	if m.Params[0].Type.Ann.Mode != stype.ModeIn {
		t.Errorf("pts mode = %s", m.Params[0].Type.Ann.Mode)
	}
}

func TestFigure3bCFriendly(t *testing.T) {
	u := MustParse(figure3b)
	iface := u.Lookup("CFriendly")
	m := iface.Type.Methods[0]
	if len(m.Params) != 4 {
		t.Fatalf("params = %+v", m.Params)
	}
	modes := []stype.Mode{stype.ModeIn, stype.ModeIn, stype.ModeOut, stype.ModeOut}
	for i, want := range modes {
		if m.Params[i].Type.Ann.Mode != want {
			t.Errorf("param %d mode = %s, want %s", i, m.Params[i].Type.Ann.Mode, want)
		}
	}
	pt := u.Lookup("CFriendly::Point")
	if pt == nil || pt.Type.Kind != stype.KArray || pt.Type.Len != 2 {
		t.Fatalf("Point = %+v", pt)
	}
	if m.Result != nil {
		t.Errorf("fitter result = %s, want void", m.Result)
	}
}

func TestBasicTypes(t *testing.T) {
	u := MustParse(`
		interface T {
			void f(in short a, in long b, in long long c,
			       in unsigned short d, in unsigned long e,
			       in unsigned long long g, in float h, in double i,
			       in char j, in wchar k, in boolean l, in octet m,
			       in string s, in wstring w);
		};
	`)
	m := u.Lookup("T").Type.Methods[0]
	want := []stype.Prim{
		stype.PI16, stype.PI32, stype.PI64, stype.PU16, stype.PU32,
		stype.PU64, stype.PF32, stype.PF64, stype.PChar8, stype.PChar16,
		stype.PBool, stype.PU8,
	}
	for i, w := range want {
		ty := m.Params[i].Type
		if ty.Kind != stype.KPrim || ty.Prim != w {
			t.Errorf("param %d = %s, want %s", i, ty, w)
		}
	}
	s := m.Params[12].Type
	if s.Kind != stype.KSequence || s.ElemType.Prim != stype.PChar8 {
		t.Errorf("string = %s", s)
	}
	w := m.Params[13].Type
	if w.Kind != stype.KSequence || w.ElemType.Prim != stype.PChar16 {
		t.Errorf("wstring = %s", w)
	}
}

func TestModulesAndScoping(t *testing.T) {
	u := MustParse(`
		module Geo {
			struct Point { float x; float y; };
			module Deep {
				struct Seg { Point a; Point b; };
			};
			interface Ops {
				Point mid(in Deep::Seg s);
			};
		};
	`)
	if u.Lookup("Geo::Point") == nil {
		t.Fatal("Geo::Point missing")
	}
	seg := u.Lookup("Geo::Deep::Seg")
	if seg == nil {
		t.Fatal("Geo::Deep::Seg missing")
	}
	// Point inside Deep::Seg resolves outward to Geo::Point.
	if seg.Type.Fields[0].Type.Name != "Geo::Point" {
		t.Errorf("Seg.a = %q", seg.Type.Fields[0].Type.Name)
	}
	ops := u.Lookup("Geo::Ops")
	m := ops.Type.Methods[0]
	if m.Params[0].Type.Name != "Geo::Deep::Seg" {
		t.Errorf("mid param = %q", m.Params[0].Type.Name)
	}
	if m.Result.Name != "Geo::Point" {
		t.Errorf("mid result = %q", m.Result.Name)
	}
}

func TestGlobalScopedReference(t *testing.T) {
	u := MustParse(`
		struct Point { float x; float y; };
		module M {
			struct Point { double a; double b; };
			struct Use { ::Point global; Point local; };
		};
	`)
	use := u.Lookup("M::Use").Type
	if use.Fields[0].Type.Name != "Point" {
		t.Errorf("global = %q", use.Fields[0].Type.Name)
	}
	if use.Fields[1].Type.Name != "M::Point" {
		t.Errorf("local = %q", use.Fields[1].Type.Name)
	}
}

func TestUnion(t *testing.T) {
	u := MustParse(`
		union Number switch (long) {
			case 1: long i;
			case 2: float f;
			default: char c;
		};
	`)
	n := u.Lookup("Number")
	if n == nil || n.Type.Kind != stype.KUnion || len(n.Type.Fields) != 3 {
		t.Fatalf("Number = %+v", n)
	}
	if n.Type.Fields[2].Name != "c" {
		t.Errorf("default member = %+v", n.Type.Fields[2])
	}
}

func TestEnum(t *testing.T) {
	u := MustParse(`enum Color { red, green, blue };`)
	c := u.Lookup("Color")
	if c == nil || len(c.Type.EnumNames) != 3 {
		t.Fatalf("Color = %+v", c)
	}
}

func TestTypedefArray(t *testing.T) {
	u := MustParse(`typedef float matrix[3][4];`)
	m := u.Lookup("matrix").Type
	if m.Kind != stype.KArray || m.Len != 3 || m.ElemType.Len != 4 {
		t.Fatalf("matrix = %s", m)
	}
}

func TestBoundedSequenceAndString(t *testing.T) {
	u := MustParse(`
		typedef sequence<long, 10> Ten;
		typedef string<32> Name;
	`)
	if u.Lookup("Ten").Type.Kind != stype.KSequence {
		t.Error("bounded sequence")
	}
	if u.Lookup("Name").Type.Kind != stype.KSequence {
		t.Error("bounded string")
	}
}

func TestAttributes(t *testing.T) {
	u := MustParse(`
		interface Account {
			readonly attribute long balance;
			attribute string owner;
		};
	`)
	a := u.Lookup("Account").Type
	names := make([]string, len(a.Methods))
	for i, m := range a.Methods {
		names[i] = m.Name
	}
	want := "_get_balance _get_owner _set_owner"
	if strings.Join(names, " ") != want {
		t.Errorf("methods = %v, want %s", names, want)
	}
}

func TestOneway(t *testing.T) {
	u := MustParse(`
		interface Chan {
			oneway void send(in long payload);
		};
	`)
	m := u.Lookup("Chan").Type.Methods[0]
	if !m.Oneway {
		t.Error("oneway not recorded")
	}
}

func TestInterfaceInheritanceAndForward(t *testing.T) {
	u := MustParse(`
		interface Base { void ping(); };
		interface Fwd;
		interface Fwd : Base { void pong(in Fwd other); };
	`)
	fwd := u.Lookup("Fwd")
	if fwd == nil || fwd.Type.Super != "Base" {
		t.Fatalf("Fwd = %+v", fwd)
	}
	if len(fwd.Type.Methods) != 1 {
		t.Errorf("methods = %+v", fwd.Type.Methods)
	}
	if fwd.Type.Methods[0].Params[0].Type.Name != "Fwd" {
		t.Errorf("self reference = %q", fwd.Type.Methods[0].Params[0].Type.Name)
	}
}

func TestObjectReferencesInStructs(t *testing.T) {
	u := MustParse(`
		interface Callback { void done(in long code); };
		struct Job { long id; Callback notify; };
	`)
	job := u.Lookup("Job").Type
	if job.Fields[1].Type.Name != "Callback" {
		t.Errorf("notify = %+v", job.Fields[1].Type)
	}
}

func TestConstIgnored(t *testing.T) {
	u := MustParse(`
		const long MAX = 17;
		struct S { long x; };
	`)
	if u.Lookup("S") == nil {
		t.Error("declaration after const lost")
	}
	if u.Lookup("MAX") != nil {
		t.Error("const should not declare a type")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`interface I { void f(in any x); };`, "any"},
		{`exception E { long code; };`, "exceptions"},
		{`interface I { void f(in long x) raises (E); };`, "raises"},
		{`interface I { void f(long x); };`, "in/out/inout"},
		{`interface I { oneway long bad(in long x); };`, "oneway"},
		{`struct S { unknown u; };`, "unresolved"},
		{`typedef fixed<9,2> money;`, "fixed"},
		{`struct S { long x; }`, "expected"},
		{`module M { struct S { long x; };`, "unterminated"},
		{`struct S { long x; }; struct S { long y; };`, "duplicate"},
	}
	for _, c := range cases {
		_, err := Parse("t.idl", c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestPragmaSkipped(t *testing.T) {
	u := MustParse(`
		#pragma prefix "example.com"
		struct S { long x; };
	`)
	if u.Lookup("S") == nil {
		t.Error("pragma broke parsing")
	}
}
