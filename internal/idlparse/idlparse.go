// Package idlparse parses CORBA 2.0 IDL declarations into Stypes. It
// covers the subset the paper exercises: modules, interfaces with
// operations and attributes, structs, discriminated unions, enums,
// typedefs, sequences, arrays, strings, and the basic types, with explicit
// in/out/inout parameter modes (which become Mode annotations, §3.3).
//
// The CORBA `any` type is rejected with a clear error: the paper lists Any
// support as incomplete in the prototype (§6), and we match that scope.
package idlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/limits"
	"repro/internal/scan"
	"repro/internal/stype"
)

// Parse parses IDL source into a universe with the default input budget.
// file is used in error messages.
//
// Names declared inside modules and interfaces are scoped with "::" (e.g.
// "Geo::Point"); references may use scoped names or unqualified names,
// which resolve innermost-scope-first.
func Parse(file, src string) (*stype.Universe, error) {
	return ParseBudget(file, src, limits.Budget{})
}

// ParseBudget is Parse with an explicit input budget (zero fields take
// limits defaults). Violations return an error wrapping limits.ErrBudget.
func ParseBudget(file, src string, b limits.Budget) (*stype.Universe, error) {
	p := &parser{s: scan.NewBudget(file, src, b), u: stype.NewUniverse(stype.LangIDL)}
	if err := p.unit(); err != nil {
		// A budget truncation surfaces as a bogus syntax error at the cut
		// point; report the root cause instead.
		if berr := p.s.BudgetErr(); berr != nil {
			return nil, berr
		}
		return nil, err
	}
	if berr := p.s.BudgetErr(); berr != nil {
		return nil, berr
	}
	if err := p.resolveScoped(); err != nil {
		return nil, err
	}
	if err := p.u.Resolve(); err != nil {
		return nil, err
	}
	return p.u, nil
}

var idlKeywords = map[string]bool{
	"module": true, "interface": true, "struct": true, "union": true,
	"enum": true, "typedef": true, "sequence": true, "string": true,
	"wstring": true, "short": true, "long": true, "unsigned": true,
	"float": true, "double": true, "char": true, "wchar": true,
	"boolean": true, "octet": true, "void": true, "any": true,
	"in": true, "out": true, "inout": true, "oneway": true,
	"attribute": true, "readonly": true, "raises": true, "context": true,
	"switch": true, "case": true, "default": true, "const": true,
	"exception": true, "fixed": true, "Object": true,
}

type parser struct {
	s     *scan.Scanner
	u     *stype.Universe
	scope []string
	depth int
}

func (p *parser) errorf(at scan.Token, format string, args ...interface{}) error {
	return p.s.Errorf(at, format, args...)
}

// enter guards a recursive descent step (definition and typeSpec, which
// between them cover every recursion cycle: module bodies, interface
// members, nested struct/union definitions, sequence element types)
// against the depth budget; pair with leave.
func (p *parser) enter(at scan.Token) error {
	p.depth++
	if p.depth > p.s.Budget().MaxDepth {
		return limits.Exceededf("%d:%d: declaration nesting exceeds depth budget of %d",
			at.Line, at.Col, p.s.Budget().MaxDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// scopedName returns name qualified by the current scope.
func (p *parser) scopedName(name string) string {
	if len(p.scope) == 0 {
		return name
	}
	return strings.Join(p.scope, "::") + "::" + name
}

func (p *parser) addDecl(at scan.Token, name string, ty *stype.Type) error {
	if _, err := p.u.Add(p.scopedName(name), ty); err != nil {
		return p.errorf(at, "%v", err)
	}
	return nil
}

func (p *parser) unit() error {
	for {
		t := p.s.Peek()
		if t.Kind == scan.TokEOF {
			return p.s.Err()
		}
		if err := p.definition(); err != nil {
			return err
		}
	}
}

// definition parses one IDL definition at the current scope.
func (p *parser) definition() error {
	t := p.s.Peek()
	if err := p.enter(t); err != nil {
		return err
	}
	defer p.leave()
	if t.Kind != scan.TokIdent {
		return p.errorf(t, "expected definition, found %s", t)
	}
	switch t.Text {
	case "module":
		return p.module()
	case "interface":
		return p.interfaceDef()
	case "struct":
		p.s.Next()
		_, err := p.structDef()
		if err != nil {
			return err
		}
		_, err = p.s.Expect(";")
		return err
	case "union":
		p.s.Next()
		_, err := p.unionDef()
		if err != nil {
			return err
		}
		_, err = p.s.Expect(";")
		return err
	case "enum":
		p.s.Next()
		_, err := p.enumDef()
		if err != nil {
			return err
		}
		_, err = p.s.Expect(";")
		return err
	case "typedef":
		return p.typedefDef()
	case "const":
		return p.constDef()
	case "exception":
		return p.errorf(t, "exceptions are not supported (incomplete in the prototype, paper §6)")
	default:
		return p.errorf(t, "unexpected %s", t)
	}
}

func (p *parser) module() error {
	p.s.Next() // module
	nameTok, err := p.s.ExpectIdent()
	if err != nil {
		return err
	}
	if _, err := p.s.Expect("{"); err != nil {
		return err
	}
	p.scope = append(p.scope, nameTok.Text)
	for !p.s.Accept("}") {
		if p.s.Peek().Kind == scan.TokEOF {
			return p.errorf(nameTok, "unterminated module %s", nameTok.Text)
		}
		if err := p.definition(); err != nil {
			return err
		}
	}
	p.scope = p.scope[:len(p.scope)-1]
	_, err = p.s.Expect(";")
	return err
}

func (p *parser) interfaceDef() error {
	p.s.Next() // interface
	nameTok, err := p.s.ExpectIdent()
	if err != nil {
		return err
	}
	node := &stype.Type{Kind: stype.KInterface, Name: p.scopedName(nameTok.Text)}
	// A forward declaration (`interface X;`) registers an empty interface
	// node; the full definition later fills the same node in.
	if existing := p.u.Lookup(p.scopedName(nameTok.Text)); existing != nil {
		if existing.Type.Kind == stype.KInterface && len(existing.Type.Methods) == 0 {
			node = existing.Type
		} else {
			return p.errorf(nameTok, "duplicate declaration %q", nameTok.Text)
		}
	}
	if p.s.Accept(";") {
		if p.u.Lookup(p.scopedName(nameTok.Text)) == nil {
			return p.addDecl(nameTok, nameTok.Text, node)
		}
		return nil
	}
	if p.s.Accept(":") {
		base, err := p.scopedRef()
		if err != nil {
			return err
		}
		node.Super = base
		// Additional bases are recorded only through the first; multiple
		// inheritance of interfaces is beyond the prototype's scope.
		for p.s.Accept(",") {
			if _, err := p.scopedRef(); err != nil {
				return err
			}
		}
	}
	if _, err := p.s.Expect("{"); err != nil {
		return err
	}
	if p.u.Lookup(p.scopedName(nameTok.Text)) == nil {
		if err := p.addDecl(nameTok, nameTok.Text, node); err != nil {
			return err
		}
	}
	p.scope = append(p.scope, nameTok.Text)
	defer func() { p.scope = p.scope[:len(p.scope)-1] }()
	for !p.s.Accept("}") {
		if p.s.Peek().Kind == scan.TokEOF {
			return p.errorf(nameTok, "unterminated interface %s", nameTok.Text)
		}
		if err := p.interfaceMember(node); err != nil {
			return err
		}
	}
	if _, err := p.s.Expect(";"); err != nil {
		return err
	}
	return nil
}

// interfaceMember parses one member of an interface body: a nested type
// definition, an attribute, or an operation.
func (p *parser) interfaceMember(node *stype.Type) error {
	t := p.s.Peek()
	if t.Kind == scan.TokIdent {
		switch t.Text {
		case "struct", "union", "enum", "typedef", "const", "module", "interface", "exception":
			return p.definition()
		case "readonly", "attribute":
			return p.attribute(node)
		case "oneway":
			p.s.Next()
			return p.operation(node, true)
		}
	}
	return p.operation(node, false)
}

// attribute parses `[readonly] attribute TYPE name {, name};` into getter
// (and, if writable, setter) methods, which is how IDL compilers present
// attributes.
func (p *parser) attribute(node *stype.Type) error {
	readonly := p.s.AcceptIdent("readonly")
	if !p.s.AcceptIdent("attribute") {
		return p.errorf(p.s.Peek(), "expected attribute")
	}
	ty, err := p.typeSpec()
	if err != nil {
		return err
	}
	for {
		nameTok, err := p.s.ExpectIdent()
		if err != nil {
			return err
		}
		node.Methods = append(node.Methods, stype.Method{
			Name:   "_get_" + nameTok.Text,
			Result: cloneNode(ty),
		})
		if !readonly {
			node.Methods = append(node.Methods, stype.Method{
				Name:   "_set_" + nameTok.Text,
				Params: []stype.Param{{Name: "value", Type: cloneNode(ty)}},
			})
		}
		if p.s.Accept(",") {
			continue
		}
		_, err = p.s.Expect(";")
		return err
	}
}

func (p *parser) operation(node *stype.Type, oneway bool) error {
	resultTy, err := p.typeSpec()
	if err != nil {
		return err
	}
	nameTok, err := p.s.ExpectIdent()
	if err != nil {
		return err
	}
	if _, err := p.s.Expect("("); err != nil {
		return err
	}
	m := stype.Method{Name: nameTok.Text, Oneway: oneway}
	if !(resultTy.Kind == stype.KPrim && resultTy.Prim == stype.PVoid) {
		if oneway {
			return p.errorf(nameTok, "oneway operation %s must return void", nameTok.Text)
		}
		m.Result = resultTy
	}
	if !p.s.Accept(")") {
		for {
			mode := stype.ModeIn
			switch {
			case p.s.AcceptIdent("in"):
				mode = stype.ModeIn
			case p.s.AcceptIdent("out"):
				mode = stype.ModeOut
			case p.s.AcceptIdent("inout"):
				mode = stype.ModeInOut
			default:
				return p.errorf(p.s.Peek(), "parameter requires in/out/inout")
			}
			ty, err := p.typeSpec()
			if err != nil {
				return err
			}
			pn, err := p.s.ExpectIdent()
			if err != nil {
				return err
			}
			ty.Ann.Mode = mode
			m.Params = append(m.Params, stype.Param{Name: pn.Text, Type: ty})
			if p.s.Accept(",") {
				continue
			}
			if _, err := p.s.Expect(")"); err != nil {
				return err
			}
			break
		}
	}
	if p.s.AcceptIdent("raises") {
		return p.errorf(nameTok, "raises clauses are not supported (paper §6)")
	}
	if p.s.AcceptIdent("context") {
		return p.errorf(nameTok, "context clauses are not supported")
	}
	node.Methods = append(node.Methods, m)
	_, err = p.s.Expect(";")
	return err
}

func (p *parser) structDef() (*stype.Type, error) {
	nameTok, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.s.Expect("{"); err != nil {
		return nil, err
	}
	node := &stype.Type{Kind: stype.KStruct, Name: p.scopedName(nameTok.Text)}
	for !p.s.Accept("}") {
		if p.s.Peek().Kind == scan.TokEOF {
			return nil, p.errorf(nameTok, "unterminated struct %s", nameTok.Text)
		}
		ty, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		for {
			fieldName, fieldTy, err := p.declarator(cloneNode(ty))
			if err != nil {
				return nil, err
			}
			node.Fields = append(node.Fields, stype.Field{Name: fieldName, Type: fieldTy})
			if p.s.Accept(",") {
				continue
			}
			if _, err := p.s.Expect(";"); err != nil {
				return nil, err
			}
			break
		}
	}
	if err := p.addDecl(nameTok, nameTok.Text, node); err != nil {
		return nil, err
	}
	return stype.NewNamed(p.scopedName(nameTok.Text)), nil
}

// unionDef parses `union U switch (TYPE) { case LABEL: TYPE decl; ... }`.
// Case labels select alternatives; labels are recorded as alternative
// names and the discriminant type is not part of the Choice lowering.
func (p *parser) unionDef() (*stype.Type, error) {
	nameTok, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if !p.s.AcceptIdent("switch") {
		return nil, p.errorf(p.s.Peek(), "expected switch")
	}
	if _, err := p.s.Expect("("); err != nil {
		return nil, err
	}
	if _, err := p.typeSpec(); err != nil {
		return nil, err
	}
	if _, err := p.s.Expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.s.Expect("{"); err != nil {
		return nil, err
	}
	node := &stype.Type{Kind: stype.KUnion, Name: p.scopedName(nameTok.Text)}
	for !p.s.Accept("}") {
		if p.s.Peek().Kind == scan.TokEOF {
			return nil, p.errorf(nameTok, "unterminated union %s", nameTok.Text)
		}
		var label string
		for {
			t := p.s.Peek()
			if t.Kind == scan.TokIdent && t.Text == "case" {
				p.s.Next()
				lt := p.s.Next()
				label = lt.Text
				if _, err := p.s.Expect(":"); err != nil {
					return nil, err
				}
				continue
			}
			if t.Kind == scan.TokIdent && t.Text == "default" {
				p.s.Next()
				label = "default"
				if _, err := p.s.Expect(":"); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		ty, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		fieldName, fieldTy, err := p.declarator(ty)
		if err != nil {
			return nil, err
		}
		if label == "" {
			label = fieldName
		}
		node.Fields = append(node.Fields, stype.Field{Name: fieldName, Type: fieldTy})
		if _, err := p.s.Expect(";"); err != nil {
			return nil, err
		}
	}
	if err := p.addDecl(nameTok, nameTok.Text, node); err != nil {
		return nil, err
	}
	return stype.NewNamed(p.scopedName(nameTok.Text)), nil
}

func (p *parser) enumDef() (*stype.Type, error) {
	nameTok, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.s.Expect("{"); err != nil {
		return nil, err
	}
	node := &stype.Type{Kind: stype.KEnum, Name: p.scopedName(nameTok.Text)}
	for {
		id, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		node.EnumNames = append(node.EnumNames, id.Text)
		if p.s.Accept(",") {
			continue
		}
		if _, err := p.s.Expect("}"); err != nil {
			return nil, err
		}
		break
	}
	if err := p.addDecl(nameTok, nameTok.Text, node); err != nil {
		return nil, err
	}
	return stype.NewNamed(p.scopedName(nameTok.Text)), nil
}

func (p *parser) typedefDef() error {
	p.s.Next() // typedef
	base, err := p.typeSpec()
	if err != nil {
		return err
	}
	for {
		name, ty, err := p.declarator(cloneNode(base))
		if err != nil {
			return err
		}
		at := p.s.Peek()
		if err := p.addDecl(at, name, ty); err != nil {
			return err
		}
		if p.s.Accept(",") {
			continue
		}
		_, err = p.s.Expect(";")
		return err
	}
}

// constDef parses and discards a const definition: constants carry no
// interface structure.
func (p *parser) constDef() error {
	p.s.Next() // const
	for {
		t := p.s.Next()
		if t.Kind == scan.TokEOF {
			return p.errorf(t, "unterminated const")
		}
		if t.Kind == scan.TokPunct && t.Text == ";" {
			return nil
		}
	}
}

// declarator parses an IDL declarator: a name with optional fixed-size
// array suffixes.
func (p *parser) declarator(base *stype.Type) (string, *stype.Type, error) {
	nameTok, err := p.s.ExpectIdent()
	if err != nil {
		return "", nil, err
	}
	var lengths []int
	for p.s.Accept("[") {
		if len(lengths) >= p.s.Budget().MaxDepth {
			return "", nil, limits.Exceededf("array suffixes exceed depth budget of %d",
				p.s.Budget().MaxDepth)
		}
		numTok := p.s.Next()
		n, err := strconv.Atoi(numTok.Text)
		if err != nil || n < 0 {
			return "", nil, p.errorf(numTok, "invalid array length %q", numTok.Text)
		}
		lengths = append(lengths, n)
		if _, err := p.s.Expect("]"); err != nil {
			return "", nil, err
		}
	}
	ty := base
	for i := len(lengths) - 1; i >= 0; i-- {
		ty = stype.NewArray(ty, lengths[i])
	}
	return nameTok.Text, ty, nil
}

// typeSpec parses a type use.
func (p *parser) typeSpec() (*stype.Type, error) {
	t := p.s.Peek()
	if err := p.enter(t); err != nil {
		return nil, err
	}
	defer p.leave()
	if t.Kind != scan.TokIdent && !(t.Kind == scan.TokPunct && t.Text == "::") {
		return nil, p.errorf(t, "expected type, found %s", t)
	}
	switch t.Text {
	case "void":
		p.s.Next()
		return stype.NewPrim(stype.PVoid), nil
	case "boolean":
		p.s.Next()
		return stype.NewPrim(stype.PBool), nil
	case "octet":
		p.s.Next()
		return stype.NewPrim(stype.PU8), nil
	case "char":
		p.s.Next()
		return stype.NewPrim(stype.PChar8), nil
	case "wchar":
		p.s.Next()
		return stype.NewPrim(stype.PChar16), nil
	case "float":
		p.s.Next()
		return stype.NewPrim(stype.PF32), nil
	case "double":
		p.s.Next()
		return stype.NewPrim(stype.PF64), nil
	case "short":
		p.s.Next()
		return stype.NewPrim(stype.PI16), nil
	case "long":
		p.s.Next()
		if p.s.AcceptIdent("long") {
			return stype.NewPrim(stype.PI64), nil
		}
		if p.s.AcceptIdent("double") {
			return stype.NewPrim(stype.PF64), nil
		}
		return stype.NewPrim(stype.PI32), nil
	case "unsigned":
		p.s.Next()
		switch {
		case p.s.AcceptIdent("short"):
			return stype.NewPrim(stype.PU16), nil
		case p.s.AcceptIdent("long"):
			if p.s.AcceptIdent("long") {
				return stype.NewPrim(stype.PU64), nil
			}
			return stype.NewPrim(stype.PU32), nil
		default:
			return nil, p.errorf(p.s.Peek(), "unsigned requires short or long")
		}
	case "string":
		p.s.Next()
		if p.s.Accept("<") {
			// Bounded strings: the bound is parsed and dropped; bounds do
			// not change the Mtype (an ordered collection).
			p.s.Next()
			if _, err := p.s.Expect(">"); err != nil {
				return nil, err
			}
		}
		return stype.NewSequence(stype.NewPrim(stype.PChar8)), nil
	case "wstring":
		p.s.Next()
		if p.s.Accept("<") {
			p.s.Next()
			if _, err := p.s.Expect(">"); err != nil {
				return nil, err
			}
		}
		return stype.NewSequence(stype.NewPrim(stype.PChar16)), nil
	case "sequence":
		p.s.Next()
		if _, err := p.s.Expect("<"); err != nil {
			return nil, err
		}
		elem, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		if p.s.Accept(",") {
			// Bounded sequence; the bound does not change the Mtype.
			p.s.Next()
		}
		if _, err := p.s.Expect(">"); err != nil {
			return nil, err
		}
		return stype.NewSequence(elem), nil
	case "any":
		return nil, p.errorf(t, "the any type is not supported (incomplete in the prototype, paper §6)")
	case "fixed":
		return nil, p.errorf(t, "fixed-point types are not supported")
	case "Object":
		p.s.Next()
		return stype.NewNamed("Object"), nil
	case "struct":
		p.s.Next()
		return p.structDef()
	case "union":
		p.s.Next()
		return p.unionDef()
	case "enum":
		p.s.Next()
		return p.enumDef()
	default:
		name, err := p.scopedRef()
		if err != nil {
			return nil, err
		}
		return stype.NewNamed(name), nil
	}
}

// scopedRef parses a possibly scoped name reference (A::B::C or ::A::B).
// The returned name is recorded verbatim; resolveScoped later rewrites
// unqualified and partially qualified references to the declaration's full
// scoped name.
func (p *parser) scopedRef() (string, error) {
	var parts []string
	if p.s.Accept("::") {
		parts = append(parts, "")
	}
	for {
		t, err := p.s.ExpectIdent()
		if err != nil {
			return "", err
		}
		if idlKeywords[t.Text] {
			return "", p.errorf(t, "keyword %q cannot be used as a name", t.Text)
		}
		parts = append(parts, t.Text)
		if !p.s.Accept("::") {
			break
		}
	}
	// Remember the scope at the point of reference so resolution can walk
	// outward. We encode it in the name with a marker consumed by
	// resolveScoped.
	ref := strings.Join(parts, "::")
	if len(p.scope) > 0 && !strings.HasPrefix(ref, "::") {
		return strings.Join(p.scope, "::") + "\x00" + ref, nil
	}
	return ref, nil
}

// resolveScoped rewrites every Named node's reference to the full scoped
// declaration name, resolving unqualified names innermost-scope-first as
// IDL requires.
func (p *parser) resolveScoped() error {
	for _, d := range p.u.Decls() {
		var firstErr error
		stype.Walk(d.Type, func(n *stype.Type) {
			if firstErr != nil || n.Kind != stype.KNamed {
				return
			}
			name := n.Name
			var scopeAt []string
			if i := strings.IndexByte(name, 0); i >= 0 {
				scopeAt = strings.Split(name[:i], "::")
				name = name[i+1:]
			}
			name = strings.TrimPrefix(name, "::")
			// Try the reference at each enclosing scope, innermost first,
			// then globally.
			for k := len(scopeAt); k >= 0; k-- {
				candidate := name
				if k > 0 {
					candidate = strings.Join(scopeAt[:k], "::") + "::" + name
				}
				if p.u.Lookup(candidate) != nil {
					n.Name = candidate
					return
				}
			}
			firstErr = fmt.Errorf("idlparse: unresolved name %q in %s", name, d.Name)
		})
		if firstErr != nil {
			return firstErr
		}
		// Also resolve Super references.
		if d.Type.Super != "" {
			s := d.Type.Super
			var scopeAt []string
			if i := strings.IndexByte(s, 0); i >= 0 {
				scopeAt = strings.Split(s[:i], "::")
				s = s[i+1:]
			}
			s = strings.TrimPrefix(s, "::")
			resolved := false
			for k := len(scopeAt); k >= 0; k-- {
				candidate := s
				if k > 0 {
					candidate = strings.Join(scopeAt[:k], "::") + "::" + s
				}
				if p.u.Lookup(candidate) != nil {
					d.Type.Super = candidate
					resolved = true
					break
				}
			}
			if !resolved {
				return fmt.Errorf("idlparse: unresolved base interface %q of %s", s, d.Name)
			}
		}
	}
	return nil
}

func cloneNode(ty *stype.Type) *stype.Type {
	out := *ty
	return &out
}

// MustParse is a test helper: it parses src and panics on error.
func MustParse(src string) *stype.Universe {
	u, err := Parse("<test>", src)
	if err != nil {
		panic(fmt.Sprintf("idlparse.MustParse: %v\nsource:\n%s", err, strings.TrimSpace(src)))
	}
	return u
}
