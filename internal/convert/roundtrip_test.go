package convert

import (
	"testing"
	"testing/quick"

	"repro/internal/compare"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/value"
)

// These property tests pin the soundness story end to end: take one
// multiset of primitive leaves, build two *different* random groupings
// (record nestings) of a random permutation of it — by construction the
// two types are equivalent under associativity+commutativity — then
// require that (1) the comparer agrees, (2) converting a random value
// produces a value of the target type, and (3) converting back through
// the reverse match returns the original value exactly.

type lcg struct{ s int64 }

func (r *lcg) n(n int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	v := int((r.s >> 33) % int64(n))
	if v < 0 {
		v += n
	}
	return v
}

// leafMakers builds distinguishable primitive types and matching values.
var leafMakers = []struct {
	ty  func() *mtype.Type
	val func(r *lcg) value.Value
}{
	{func() *mtype.Type { return mtype.NewIntegerBits(16, true) },
		func(r *lcg) value.Value { return value.NewInt(int64(r.n(1000) - 500)) }},
	{func() *mtype.Type { return mtype.NewFloat32() },
		func(r *lcg) value.Value { return value.Real{V: float64(r.n(100))} }},
	{func() *mtype.Type { return mtype.NewCharacter(mtype.RepLatin1) },
		func(r *lcg) value.Value { return value.Char{R: rune('a' + r.n(26))} }},
	{func() *mtype.Type { return mtype.NewFloat64() },
		func(r *lcg) value.Value { return value.Real{V: float64(r.n(9)) / 4} }},
}

// groupLeaves builds a random nesting tree over the given leaf types, in
// order, returning the type and a parallel builder for values.
func groupLeaves(r *lcg, leaves []int) (*mtype.Type, func(vals []value.Value) value.Value) {
	if len(leaves) == 1 && r.n(2) == 0 {
		k := leaves[0]
		return leafMakers[k].ty(), func(vals []value.Value) value.Value { return vals[0] }
	}
	// Split into 1..3 groups.
	var chunks [][]int
	rest := leaves
	for len(rest) > 0 {
		sz := 1 + r.n(3)
		if sz > len(rest) {
			sz = len(rest)
		}
		chunks = append(chunks, rest[:sz])
		rest = rest[sz:]
	}
	kids := make([]*mtype.Type, len(chunks))
	builders := make([]func([]value.Value) value.Value, len(chunks))
	for i, ch := range chunks {
		if len(ch) == 1 {
			k := ch[0]
			kids[i] = leafMakers[k].ty()
			builders[i] = func(vals []value.Value) value.Value { return vals[0] }
		} else {
			kids[i], builders[i] = groupLeaves(r, ch)
		}
	}
	ty := mtype.RecordOf(kids...)
	sizes := make([]int, len(chunks))
	for i, ch := range chunks {
		sizes[i] = len(ch)
	}
	builder := func(vals []value.Value) value.Value {
		fields := make([]value.Value, len(chunks))
		off := 0
		for i := range chunks {
			fields[i] = builders[i](vals[off : off+sizes[i]])
			off += sizes[i]
		}
		return value.Record{Fields: fields}
	}
	return ty, builder
}

func TestPropertyRegroupedConversionRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		r := &lcg{s: seed}
		n := 2 + r.n(6)
		// The leaf multiset, as indices into leafMakers.
		kinds := make([]int, n)
		for i := range kinds {
			kinds[i] = r.n(len(leafMakers))
		}
		// Side A: the leaves in order, grouped randomly.
		tyA, buildA := groupLeaves(r, kinds)
		// Side B: a permutation of the same multiset, grouped differently.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := r.n(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		kindsB := make([]int, n)
		for i, p := range perm {
			kindsB[i] = kinds[p]
		}
		tyB, _ := groupLeaves(r, kindsB)

		// (1) The comparer must find them equivalent.
		c := compare.NewComparer(compare.DefaultRules())
		m, ok := c.Equivalent(tyA, tyB)
		if !ok {
			t.Logf("equivalence failed:\n%s", c.Explain(tyA, tyB, compare.ModeEqual))
			return false
		}
		pAB, err := plan.Build(m)
		if err != nil {
			return false
		}
		convAB, err := Compile(pAB)
		if err != nil {
			return false
		}
		m2, ok := c.Equivalent(tyB, tyA)
		if !ok {
			return false
		}
		pBA, err := plan.Build(m2)
		if err != nil {
			return false
		}
		convBA, err := Compile(pBA)
		if err != nil {
			return false
		}

		// (2) Convert a random A value; it must inhabit B.
		leafVals := make([]value.Value, n)
		for i, k := range kinds {
			leafVals[i] = leafMakers[k].val(r)
		}
		vA := buildA(leafVals)
		vB, err := convAB.Convert(vA)
		if err != nil {
			t.Logf("convert A→B: %v", err)
			return false
		}
		if err := value.Check(vB, tyB); err != nil {
			t.Logf("converted value does not inhabit B: %v", err)
			return false
		}

		// (3) Converting back must return the original value — but only
		// when the leaf kinds are pairwise distinct enough that the
		// permutations invert each other; with duplicate kinds the two
		// independently-chosen matchings may pair duplicates differently,
		// which is still type-sound. So check the weaker invariant for
		// duplicates and exact round-trip when all kinds are distinct.
		vA2, err := convBA.Convert(vB)
		if err != nil {
			t.Logf("convert B→A: %v", err)
			return false
		}
		if err := value.Check(vA2, tyA); err != nil {
			t.Logf("round-tripped value does not inhabit A: %v", err)
			return false
		}
		distinct := true
		seen := map[int]bool{}
		for _, k := range kinds {
			if seen[k] {
				distinct = false
				break
			}
			seen[k] = true
		}
		if distinct && !value.Equal(vA2, vA) {
			t.Logf("round trip changed value: %s → %s", vA, vA2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInterpreterMatchesCompiledOnRegroupings repeats the check
// with both engines, requiring identical outputs.
func TestPropertyInterpreterMatchesCompiledOnRegroupings(t *testing.T) {
	f := func(seed int64) bool {
		r := &lcg{s: seed}
		n := 2 + r.n(5)
		kinds := make([]int, n)
		for i := range kinds {
			kinds[i] = r.n(len(leafMakers))
		}
		tyA, buildA := groupLeaves(r, kinds)
		tyB, _ := groupLeaves(r, kinds)
		c := compare.NewComparer(compare.DefaultRules())
		m, ok := c.Equivalent(tyA, tyB)
		if !ok {
			return false
		}
		p, err := plan.Build(m)
		if err != nil {
			return false
		}
		comp, err := Compile(p)
		if err != nil {
			return false
		}
		interp := NewInterpreter(p)
		leafVals := make([]value.Value, n)
		for i, k := range kinds {
			leafVals[i] = leafMakers[k].val(r)
		}
		vA := buildA(leafVals)
		g1, e1 := comp.Convert(vA)
		g2, e2 := interp.Convert(vA)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		return e1 != nil || value.Equal(g1, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
