package convert

import (
	"testing"
	"testing/quick"

	"repro/internal/compare"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/value"
)

// mustPlan compares a and b and builds the plan, failing the test on any
// error.
func mustPlan(t *testing.T, a, b *mtype.Type, mode compare.Mode) *plan.Plan {
	t.Helper()
	c := compare.NewComparer(compare.DefaultRules())
	var m *compare.Match
	var ok bool
	if mode == compare.ModeEqual {
		m, ok = c.Equivalent(a, b)
	} else {
		m, ok = c.Subtype(a, b)
	}
	if !ok {
		t.Fatalf("types do not match:\n%s", c.Explain(a, b, mode))
	}
	p, err := plan.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// engines returns both converters for a plan.
func engines(t *testing.T, p *plan.Plan) []Converter {
	t.Helper()
	compiledConv, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return []Converter{NewInterpreter(p), compiledConv}
}

func f32() *mtype.Type { return mtype.NewFloat32() }

func TestPrimitivePassThrough(t *testing.T) {
	p := mustPlan(t, f32(), f32(), compare.ModeEqual)
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(value.Real{V: 2.5})
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, value.Real{V: 2.5}) {
			t.Errorf("got %s", got)
		}
	}
}

// TestLineToFourFloats is the associativity conversion: a Line of two
// Points flattens into a four-float record.
func TestLineToFourFloats(t *testing.T) {
	point := mtype.RecordOf(f32(), f32())
	line := mtype.RecordOf(point, point)
	four := mtype.RecordOf(f32(), f32(), f32(), f32())
	p := mustPlan(t, line, four, compare.ModeEqual)

	in := value.NewRecord(
		value.NewRecord(value.Real{V: 1}, value.Real{V: 2}),
		value.NewRecord(value.Real{V: 3}, value.Real{V: 4}),
	)
	want := value.NewRecord(value.Real{V: 1}, value.Real{V: 2}, value.Real{V: 3}, value.Real{V: 4})
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(in)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, want) {
			t.Errorf("got %s, want %s", got, want)
		}
	}
}

func TestFourFloatsToLine(t *testing.T) {
	point := mtype.RecordOf(f32(), f32())
	line := mtype.RecordOf(point, point)
	four := mtype.RecordOf(f32(), f32(), f32(), f32())
	p := mustPlan(t, four, line, compare.ModeEqual)

	in := value.NewRecord(value.Real{V: 1}, value.Real{V: 2}, value.Real{V: 3}, value.Real{V: 4})
	want := value.NewRecord(
		value.NewRecord(value.Real{V: 1}, value.Real{V: 2}),
		value.NewRecord(value.Real{V: 3}, value.Real{V: 4}),
	)
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(in)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, want) {
			t.Errorf("got %s, want %s", got, want)
		}
	}
}

func TestCommutativePermutation(t *testing.T) {
	i16 := mtype.NewIntegerBits(16, true)
	chr := mtype.NewCharacter(mtype.RepLatin1)
	a := mtype.RecordOf(i16, mtype.RecordOf(f32(), chr))
	b := mtype.RecordOf(chr, f32(), i16)
	p := mustPlan(t, a, b, compare.ModeEqual)

	in := value.NewRecord(value.NewInt(7), value.NewRecord(value.Real{V: 1.5}, value.Char{R: 'x'}))
	want := value.NewRecord(value.Char{R: 'x'}, value.Real{V: 1.5}, value.NewInt(7))
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(in)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, want) {
			t.Errorf("got %s, want %s", got, want)
		}
	}
}

func TestUnitFieldsSynthesized(t *testing.T) {
	a := mtype.RecordOf(f32())
	b := mtype.RecordOf(mtype.Unit(), f32(), mtype.Unit())
	p := mustPlan(t, a, b, compare.ModeEqual)
	in := value.NewRecord(value.Real{V: 9})
	want := value.NewRecord(value.Unit{}, value.Real{V: 9}, value.Unit{})
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(in)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, want) {
			t.Errorf("got %s, want %s", got, want)
		}
	}
}

func TestSingletonRecordCollapse(t *testing.T) {
	a := mtype.RecordOf(f32())
	p := mustPlan(t, a, f32(), compare.ModeEqual)
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(value.NewRecord(value.Real{V: 4}))
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, value.Real{V: 4}) {
			t.Errorf("got %s", got)
		}
	}
	// And the reverse: a bare float into a one-field record.
	p2 := mustPlan(t, f32(), a, compare.ModeEqual)
	for _, conv := range engines(t, p2) {
		got, err := conv.Convert(value.Real{V: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, value.NewRecord(value.Real{V: 4})) {
			t.Errorf("got %s", got)
		}
	}
}

func TestChoiceRemapping(t *testing.T) {
	i8 := mtype.NewIntegerBits(8, true)
	a := mtype.ChoiceOf(i8, f32())
	b := mtype.ChoiceOf(f32(), i8)
	p := mustPlan(t, a, b, compare.ModeEqual)
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(value.Choice{Alt: 0, V: value.NewInt(5)})
		if err != nil {
			t.Fatal(err)
		}
		want := value.Choice{Alt: 1, V: value.NewInt(5)}
		if !value.Equal(got, want) {
			t.Errorf("got %s, want %s", got, want)
		}
	}
}

func TestListConversion(t *testing.T) {
	a := mtype.NewList(mtype.RecordOf(f32(), f32()))
	b := mtype.NewList(mtype.RecordOf(f32(), f32()))
	p := mustPlan(t, a, b, compare.ModeEqual)
	elems := []value.Value{
		value.NewRecord(value.Real{V: 1}, value.Real{V: 2}),
		value.NewRecord(value.Real{V: 3}, value.Real{V: 4}),
		value.NewRecord(value.Real{V: 5}, value.Real{V: 6}),
	}
	in := value.FromSlice(elems)
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(in)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, in) {
			t.Errorf("list conversion changed the value: %s", got)
		}
	}
}

func TestListElementRegrouping(t *testing.T) {
	// List of Points (records) to list of flattened 2-float records with
	// swapped leaf order is still a permutation conversion per element.
	point := mtype.RecordOf(f32(), mtype.NewIntegerBits(16, true))
	flipped := mtype.RecordOf(mtype.NewIntegerBits(16, true), f32())
	p := mustPlan(t, mtype.NewList(point), mtype.NewList(flipped), compare.ModeEqual)
	in := value.FromSlice([]value.Value{
		value.NewRecord(value.Real{V: 1.5}, value.NewInt(2)),
	})
	want := value.FromSlice([]value.Value{
		value.NewRecord(value.NewInt(2), value.Real{V: 1.5}),
	})
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(in)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, want) {
			t.Errorf("got %s, want %s", got, want)
		}
	}
}

func TestSubtypeWidening(t *testing.T) {
	i8 := mtype.NewIntegerBits(8, true)
	i32 := mtype.NewIntegerBits(32, true)
	p := mustPlan(t, i8, i32, compare.ModeSubtype)
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(value.NewInt(-100))
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, value.NewInt(-100)) {
			t.Errorf("got %s", got)
		}
	}
}

func TestSubtypeInjection(t *testing.T) {
	point := mtype.RecordOf(f32(), f32())
	opt := mtype.NewOptional(mtype.RecordOf(f32(), f32()))
	p := mustPlan(t, point, opt, compare.ModeSubtype)
	in := value.NewRecord(value.Real{V: 1}, value.Real{V: 2})
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(in)
		if err != nil {
			t.Fatal(err)
		}
		cv, ok := got.(value.Choice)
		if !ok || cv.Alt != 1 {
			t.Fatalf("got %s, want non-null choice", got)
		}
		if !value.Equal(cv.V, in) {
			t.Errorf("payload = %s", cv.V)
		}
	}
}

func TestSubtypeChoiceWidening(t *testing.T) {
	i8 := mtype.NewIntegerBits(8, true)
	narrow := mtype.ChoiceOf(i8, f32())
	wide := mtype.ChoiceOf(mtype.NewCharacter(mtype.RepLatin1), f32(), i8)
	p := mustPlan(t, narrow, wide, compare.ModeSubtype)
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(value.Choice{Alt: 1, V: value.Real{V: 3}})
		if err != nil {
			t.Fatal(err)
		}
		cv := got.(value.Choice)
		if cv.Alt != 1 {
			t.Errorf("alt = %d, want 1 (the float alternative)", cv.Alt)
		}
	}
}

func TestPortPassThrough(t *testing.T) {
	a := mtype.NewPort(f32())
	p := mustPlan(t, a, mtype.NewPort(f32()), compare.ModeEqual)
	for _, conv := range engines(t, p) {
		got, err := conv.Convert(value.Port{Ref: "obj:42"})
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, value.Port{Ref: "obj:42"}) {
			t.Errorf("got %s", got)
		}
	}
}

func TestConvertErrors(t *testing.T) {
	p := mustPlan(t, mtype.RecordOf(f32(), f32()), mtype.RecordOf(f32(), f32()), compare.ModeEqual)
	for _, conv := range engines(t, p) {
		if _, err := conv.Convert(value.Real{V: 1}); err == nil {
			t.Error("non-record accepted by record plan")
		}
		if _, err := conv.Convert(value.NewRecord(value.Real{V: 1})); err == nil {
			t.Error("short record accepted")
		}
	}
	p2 := mustPlan(t, mtype.NewOptional(f32()), mtype.NewOptional(f32()), compare.ModeEqual)
	for _, conv := range engines(t, p2) {
		if _, err := conv.Convert(value.Choice{Alt: 7, V: value.Unit{}}); err == nil {
			t.Error("out-of-range alternative accepted")
		}
		if _, err := conv.Convert(value.Real{V: 1}); err == nil {
			t.Error("non-choice accepted by choice plan")
		}
	}
}

func TestPlanString(t *testing.T) {
	a := mtype.NewList(f32())
	p := mustPlan(t, a, mtype.NewList(f32()), compare.ModeEqual)
	s := p.String()
	if s == "" || len(p.Nodes) == 0 {
		t.Errorf("plan rendering empty: %q", s)
	}
}

// TestPropertyEnginesAgree drives both engines with random values of a
// random shared shape and requires identical outputs.
func TestPropertyEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		state := seed
		rnd := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			v := int((state >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		ty := genFlatType(rnd, 3)
		shuffled := shuffleRecord(ty, rnd)
		c := compare.NewComparer(compare.DefaultRules())
		m, ok := c.Equivalent(ty, shuffled)
		if !ok {
			return false
		}
		p, err := plan.Build(m)
		if err != nil {
			return false
		}
		interp := NewInterpreter(p)
		comp, err := Compile(p)
		if err != nil {
			return false
		}
		v := genValue(ty, rnd)
		g1, e1 := interp.Convert(v)
		g2, e2 := comp.Convert(v)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			return true
		}
		return value.Equal(g1, g2) && value.Check(g1, shuffled) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// genFlatType builds a random record tree of primitives.
func genFlatType(rnd func(int) int, depth int) *mtype.Type {
	if depth == 0 {
		switch rnd(3) {
		case 0:
			return mtype.NewIntegerBits(16, true)
		case 1:
			return mtype.NewFloat32()
		default:
			return mtype.NewCharacter(mtype.RepLatin1)
		}
	}
	n := 1 + rnd(3)
	kids := make([]*mtype.Type, n)
	for i := range kids {
		kids[i] = genFlatType(rnd, depth-1)
	}
	return mtype.RecordOf(kids...)
}

// shuffleRecord rebuilds ty with top-level record children shuffled.
func shuffleRecord(ty *mtype.Type, rnd func(int) int) *mtype.Type {
	if ty.Kind() != mtype.KindRecord {
		return ty
	}
	fields := ty.Fields()
	idx := make([]int, len(fields))
	for i := range idx {
		idx[i] = i
	}
	for i := len(idx) - 1; i > 0; i-- {
		j := rnd(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]*mtype.Type, len(fields))
	for i, j := range idx {
		out[i] = fields[j].Type
	}
	return mtype.RecordOf(out...)
}

// genValue builds a random value of the type.
func genValue(ty *mtype.Type, rnd func(int) int) value.Value {
	switch ty.Kind() {
	case mtype.KindInteger:
		return value.NewInt(int64(rnd(200) - 100))
	case mtype.KindReal:
		return value.Real{V: float64(rnd(1000)) / 7}
	case mtype.KindCharacter:
		return value.Char{R: rune('a' + rnd(26))}
	case mtype.KindRecord:
		fields := ty.Fields()
		out := make([]value.Value, len(fields))
		for i, f := range fields {
			out[i] = genValue(f.Type, rnd)
		}
		return value.Record{Fields: out}
	default:
		return value.Unit{}
	}
}
