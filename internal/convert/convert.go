// Package convert executes coercion plans, turning values of one Mtype
// into values of the matched Mtype. Two engines are provided:
//
//   - Interpreter walks the plan graph per value — the straightforward
//     execution a naive tool would use;
//   - Compile produces a closure tree once and reuses it — the "generated
//     stub" execution model, which the §6-perf benchmarks compare against
//     the interpreter and against hand-written conversion code.
//
// Both engines implement Converter and agree on every input; the property
// tests in this package check exactly that.
package convert

import (
	"errors"
	"fmt"

	"repro/internal/compare"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/wire"
)

// Converter converts values of the plan's A Mtype into values of its B
// Mtype.
type Converter interface {
	Convert(v value.Value) (value.Value, error)
}

// Hook is a programmer-supplied semantic conversion (§6): hand-written
// code composed with the structural conversions at the plan nodes that
// reference it.
type Hook func(value.Value) (value.Value, error)

// Hooks maps hook names (from compare.RegisterSemantic) to functions.
type Hooks map[string]Hook

// NewInterpreter returns a plan-walking converter.
func NewInterpreter(p *plan.Plan) Converter {
	return NewInterpreterHooks(p, nil)
}

// NewInterpreterHooks returns a plan-walking converter with semantic
// hooks available.
func NewInterpreterHooks(p *plan.Plan, hooks Hooks) Converter {
	return &interp{plan: p, hooks: hooks}
}

type interp struct {
	plan  *plan.Plan
	hooks Hooks
}

// Convert implements Converter.
func (in *interp) Convert(v value.Value) (value.Value, error) {
	return in.exec(in.plan.Root, v)
}

func (in *interp) exec(n *plan.Node, v value.Value) (value.Value, error) {
	switch n.Kind {
	case compare.DecSame:
		return v, nil
	case compare.DecPrim:
		return convertPrim(v)
	case compare.DecSemantic:
		hook, ok := in.hooks[n.Hook]
		if !ok {
			return nil, fmt.Errorf("convert: no semantic hook %q registered", n.Hook)
		}
		return hook(v)
	case compare.DecPort:
		p, ok := v.(value.Port)
		if !ok {
			return nil, fmt.Errorf("convert: expected port, got %T", v)
		}
		return p, nil
	case compare.DecRecord:
		leaves, err := extractLeaves(v, n.FlatA)
		if err != nil {
			return nil, err
		}
		outLeaves := make([]value.Value, len(n.FlatB))
		for i, lp := range n.LeafPlans {
			if lp == nil {
				continue
			}
			converted, err := in.exec(lp, leaves[i])
			if err != nil {
				return nil, err
			}
			outLeaves[n.Perm[i]] = converted
		}
		return buildFromLeaves(n.FlatB, outLeaves)
	case compare.DecChoice:
		cv, ok := v.(value.Choice)
		if !ok {
			return nil, fmt.Errorf("convert: expected choice, got %T", v)
		}
		if cv.Alt < 0 || cv.Alt >= len(n.AltPlans) {
			return nil, fmt.Errorf("convert: alternative %d out of range", cv.Alt)
		}
		payload, err := in.exec(n.AltPlans[cv.Alt], cv.V)
		if err != nil {
			return nil, err
		}
		return value.Choice{Alt: n.AltMap[cv.Alt], V: payload}, nil
	case compare.DecInject:
		payload, err := in.exec(n.InjectPlan, v)
		if err != nil {
			return nil, err
		}
		return value.Choice{Alt: n.AltMap[0], V: payload}, nil
	default:
		return nil, fmt.Errorf("convert: unknown plan node kind %d", n.Kind)
	}
}

// convertPrim copies a primitive value; widening conversions (int8→int16,
// float→double, latin1→unicode) need no representation change in the
// dynamic value model.
func convertPrim(v value.Value) (value.Value, error) {
	switch pv := v.(type) {
	case value.Int:
		if pv.V == nil {
			return nil, errors.New("convert: nil integer")
		}
		return pv, nil
	case value.Real, value.Char:
		return pv, nil
	default:
		return nil, fmt.Errorf("convert: expected primitive, got %T", v)
	}
}

// extractLeaves reads the value at each flattened leaf path. Unit leaves
// yield nil entries (they carry no information).
func extractLeaves(v value.Value, flat []compare.FlatLeaf) ([]value.Value, error) {
	out := make([]value.Value, len(flat))
	for i, leaf := range flat {
		if leaf.Unit {
			continue
		}
		cur := v
		for _, idx := range leaf.Path {
			rec, ok := cur.(value.Record)
			if !ok {
				return nil, fmt.Errorf("convert: expected record at path %v, got %T", leaf.Path, cur)
			}
			if idx >= len(rec.Fields) {
				return nil, fmt.Errorf("convert: record has %d fields, path wants %d", len(rec.Fields), idx)
			}
			cur = rec.Fields[idx]
		}
		out[i] = cur
	}
	return out, nil
}

// shape is a prebuilt template of the B-side value structure derived from
// flattened leaf paths: interior nodes become records, leaves are filled
// from converted values (units synthesized).
type shape struct {
	leaf     int // index into FlatB, -1 for interior
	unitLeaf bool
	children []*shape
}

// buildShape reconstructs the record nesting from leaf paths.
func buildShape(flat []compare.FlatLeaf) (*shape, error) {
	root := &shape{leaf: -1}
	if len(flat) == 1 && len(flat[0].Path) == 0 {
		return &shape{leaf: 0, unitLeaf: flat[0].Unit}, nil
	}
	for j, leaf := range flat {
		cur := root
		if len(leaf.Path) == 0 {
			return nil, errors.New("convert: mixed root leaf and nested leaves")
		}
		for depth, idx := range leaf.Path {
			for len(cur.children) <= idx {
				cur.children = append(cur.children, &shape{leaf: -1})
			}
			child := cur.children[idx]
			if depth == len(leaf.Path)-1 {
				child.leaf = j
				child.unitLeaf = leaf.Unit
			}
			cur = child
		}
	}
	return root, nil
}

// instantiate builds the value for a shape from converted leaf values.
func (s *shape) instantiate(leaves []value.Value) (value.Value, error) {
	if s.leaf >= 0 {
		if s.unitLeaf {
			return value.Unit{}, nil
		}
		v := leaves[s.leaf]
		if v == nil {
			return nil, fmt.Errorf("convert: leaf %d was never produced", s.leaf)
		}
		return v, nil
	}
	fields := make([]value.Value, len(s.children))
	for i, c := range s.children {
		fv, err := c.instantiate(leaves)
		if err != nil {
			return nil, err
		}
		fields[i] = fv
	}
	return value.Record{Fields: fields}, nil
}

func buildFromLeaves(flat []compare.FlatLeaf, leaves []value.Value) (value.Value, error) {
	s, err := buildShape(flat)
	if err != nil {
		return nil, err
	}
	return s.instantiate(leaves)
}

// Compile builds a closure-tree converter from the plan: each plan node
// compiles once into a function, with a level of indirection so cyclic
// plans (lists, recursive classes) tie the knot.
func Compile(p *plan.Plan) (Converter, error) {
	return CompileHooks(p, nil)
}

// CompileHooks builds a closure-tree converter with semantic hooks
// resolved at compile time.
func CompileHooks(p *plan.Plan, hooks Hooks) (Converter, error) {
	c := &compiler{fns: make(map[*plan.Node]*compiledFn), hooks: hooks}
	fn, err := c.compile(p.Root)
	if err != nil {
		return nil, err
	}
	return compiled{fn: fn}, nil
}

type compiledFn func(value.Value) (value.Value, error)

type compiled struct {
	fn compiledFn
}

// Convert implements Converter.
func (c compiled) Convert(v value.Value) (value.Value, error) { return c.fn(v) }

type compiler struct {
	fns   map[*plan.Node]*compiledFn
	hooks Hooks
}

// compile returns a stable function for the node, creating it on first
// use. Recursive references go through the pointer so cycles work.
func (c *compiler) compile(n *plan.Node) (compiledFn, error) {
	if slot, ok := c.fns[n]; ok {
		return func(v value.Value) (value.Value, error) { return (*slot)(v) }, nil
	}
	slot := new(compiledFn)
	c.fns[n] = slot

	var fn compiledFn
	switch n.Kind {
	case compare.DecSame:
		fn = func(v value.Value) (value.Value, error) { return v, nil }
	case compare.DecPrim:
		fn = convertPrim
	case compare.DecSemantic:
		hook, ok := c.hooks[n.Hook]
		if !ok {
			return nil, fmt.Errorf("convert: no semantic hook %q registered", n.Hook)
		}
		fn = compiledFn(hook)
	case compare.DecPort:
		fn = func(v value.Value) (value.Value, error) {
			p, ok := v.(value.Port)
			if !ok {
				return nil, fmt.Errorf("convert: expected port, got %T", v)
			}
			return p, nil
		}
	case compare.DecRecord:
		bShape, err := buildShape(n.FlatB)
		if err != nil {
			return nil, err
		}
		flatA := n.FlatA
		perm := n.Perm
		leafFns := make([]compiledFn, len(n.LeafPlans))
		for i, lp := range n.LeafPlans {
			if lp == nil {
				continue
			}
			lf, err := c.compile(lp)
			if err != nil {
				return nil, err
			}
			leafFns[i] = lf
		}
		nOut := len(n.FlatB)
		fn = func(v value.Value) (value.Value, error) {
			leaves, err := extractLeaves(v, flatA)
			if err != nil {
				return nil, err
			}
			out := make([]value.Value, nOut)
			for i, lf := range leafFns {
				if lf == nil {
					continue
				}
				converted, err := lf(leaves[i])
				if err != nil {
					return nil, err
				}
				out[perm[i]] = converted
			}
			return bShape.instantiate(out)
		}
	case compare.DecChoice:
		altMap := n.AltMap
		altFns := make([]compiledFn, len(n.AltPlans))
		for i, ap := range n.AltPlans {
			af, err := c.compile(ap)
			if err != nil {
				return nil, err
			}
			altFns[i] = af
		}
		fn = func(v value.Value) (value.Value, error) {
			cv, ok := v.(value.Choice)
			if !ok {
				return nil, fmt.Errorf("convert: expected choice, got %T", v)
			}
			if cv.Alt < 0 || cv.Alt >= len(altFns) {
				return nil, fmt.Errorf("convert: alternative %d out of range", cv.Alt)
			}
			payload, err := altFns[cv.Alt](cv.V)
			if err != nil {
				return nil, err
			}
			return value.Choice{Alt: altMap[cv.Alt], V: payload}, nil
		}
	case compare.DecInject:
		inner, err := c.compile(n.InjectPlan)
		if err != nil {
			return nil, err
		}
		alt := n.AltMap[0]
		fn = func(v value.Value) (value.Value, error) {
			payload, err := inner(v)
			if err != nil {
				return nil, err
			}
			return value.Choice{Alt: alt, V: payload}, nil
		}
	default:
		return nil, fmt.Errorf("convert: unknown plan node kind %d", n.Kind)
	}
	*slot = fn
	return fn, nil
}

// TranscodeTree is the reference wire-to-wire path: decode src against
// tyA, run the converter, and re-encode against tyB, appending the
// output bytes to dst. It is the fallback the broker uses when
// transcode.Compile reports ErrUnsupported, and the oracle the
// transcoder's differential tests compare against.
func TranscodeTree(dst []byte, tyA, tyB *mtype.Type, c Converter, src []byte) ([]byte, error) {
	v, err := wire.Unmarshal(tyA, src)
	if err != nil {
		return dst, err
	}
	out, err := c.Convert(v)
	if err != nil {
		return dst, err
	}
	return wire.NewEncoder(tyB).MarshalAppend(dst, out)
}
