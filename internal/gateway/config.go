// Route configuration for the interop gateway: a JSON document mapping
// operation keys (orb object key + op number) to declaration pairs. The
// gateway compiles each pair at route load and transcodes matching
// traffic in flight; the file is hot-reloadable (SIGHUP on mbirdgw, or
// the admin reload op), so routes can be added, retired, or retargeted
// without dropping client connections.
package gateway

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Config is the gateway's route table.
type Config struct {
	// Upstream is the default upstream address for routes that do not
	// name their own.
	Upstream string `json:"upstream,omitempty"`
	// Routes maps operation keys to declaration pairs.
	Routes []RouteConfig `json:"routes"`
}

// RouteConfig describes one proxied operation: which (key, op) it
// matches on the client side, where it forwards, and which declaration
// pair each payload direction is transcoded through.
type RouteConfig struct {
	// Name labels the route in stats; defaults to "key/op".
	Name string `json:"name,omitempty"`
	// Key is the orb object key the route matches on client connections.
	Key string `json:"key"`
	// Op is the operation number the route matches.
	Op uint32 `json:"op"`
	// Upstream overrides Config.Upstream for this route.
	Upstream string `json:"upstream,omitempty"`
	// UpstreamKey rewrites the object key on the upstream leg (defaults
	// to Key).
	UpstreamKey string `json:"upstream_key,omitempty"`
	// UpstreamOp rewrites the op on the upstream leg (defaults to Op).
	UpstreamOp *uint32 `json:"upstream_op,omitempty"`
	// Request is the client→upstream payload transcoding; nil forwards
	// request bodies untouched.
	Request *LaneConfig `json:"request,omitempty"`
	// Reply is the upstream→client payload transcoding; nil forwards
	// reply bodies untouched.
	Reply *LaneConfig `json:"reply,omitempty"`
}

// LaneConfig is one payload direction: the declaration the sender
// marshals against and the declaration the receiver expects. For the
// request lane the sender is the connecting client; for the reply lane
// the sender is the upstream server.
type LaneConfig struct {
	From DeclConfig `json:"from"`
	To   DeclConfig `json:"to"`
}

// DeclConfig names one declaration: its language, source (inline or a
// file resolved relative to the config), optional annotation script,
// and the declaration name within the source.
type DeclConfig struct {
	// Lang is "c", "java", "idl", or "go".
	Lang string `json:"lang"`
	// Model is the C data model, "ilp32" (default) or "lp64".
	Model string `json:"model,omitempty"`
	// Source is the inline declaration source. Exactly one of Source
	// and File must be set.
	Source string `json:"source,omitempty"`
	// File is a path to the declaration source, resolved relative to
	// the config file's directory by LoadConfig.
	File string `json:"file,omitempty"`
	// Script is an inline annotation script applied after parsing.
	Script string `json:"script,omitempty"`
	// ScriptFile is a path to the annotation script (exclusive with
	// Script), resolved like File.
	ScriptFile string `json:"script_file,omitempty"`
	// Decl is the declaration name to lower.
	Decl string `json:"decl"`
}

// universe derives the content-addressed universe name for the
// declaration's (resolved) sources, so identical sources share one
// loaded universe and distinct sources never collide — the same scheme
// mbird remote uses against the broker daemon.
func (d *DeclConfig) universe() string {
	h := sha256.Sum256([]byte(d.Lang + "\x00" + d.Model + "\x00" + d.Source + "\x00" + d.Script))
	return "u" + hex.EncodeToString(h[:8])
}

func (d *DeclConfig) validate(where string) error {
	switch d.Lang {
	case "c", "java", "idl", "go":
	case "":
		return fmt.Errorf("gateway: %s: missing lang", where)
	default:
		return fmt.Errorf("gateway: %s: unknown lang %q", where, d.Lang)
	}
	switch d.Model {
	case "", "ilp32", "lp64":
	default:
		return fmt.Errorf("gateway: %s: unknown C model %q", where, d.Model)
	}
	if (d.Source == "") == (d.File == "") {
		return fmt.Errorf("gateway: %s: exactly one of source and file must be set", where)
	}
	if d.Script != "" && d.ScriptFile != "" {
		return fmt.Errorf("gateway: %s: script and script_file are exclusive", where)
	}
	if d.Decl == "" {
		return fmt.Errorf("gateway: %s: missing decl", where)
	}
	return nil
}

// resolve inlines File/ScriptFile contents (relative paths joined onto
// dir) so the rest of the gateway only ever sees inline sources.
func (d *DeclConfig) resolve(dir string) error {
	read := func(p string) (string, error) {
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		b, err := os.ReadFile(p)
		return string(b), err
	}
	if d.File != "" {
		src, err := read(d.File)
		if err != nil {
			return fmt.Errorf("gateway: declaration source: %w", err)
		}
		d.Source, d.File = src, ""
	}
	if d.ScriptFile != "" {
		script, err := read(d.ScriptFile)
		if err != nil {
			return fmt.Errorf("gateway: annotation script: %w", err)
		}
		d.Script, d.ScriptFile = script, ""
	}
	return nil
}

// DisplayName is the route's stats label.
func (r *RouteConfig) DisplayName() string {
	if r.Name != "" {
		return r.Name
	}
	return fmt.Sprintf("%s/%d", r.Key, r.Op)
}

// Validate checks the config for structural problems: missing keys,
// duplicate (key, op) matches, lanes without declarations, routes with
// no upstream to forward to.
func (c *Config) Validate() error {
	seen := make(map[string]bool)
	for i := range c.Routes {
		r := &c.Routes[i]
		where := fmt.Sprintf("route %d (%s)", i, r.DisplayName())
		if r.Key == "" {
			return fmt.Errorf("gateway: %s: missing key", where)
		}
		if r.Key == AdminKey {
			return fmt.Errorf("gateway: %s: key %q is reserved for the admin service", where, AdminKey)
		}
		match := fmt.Sprintf("%s\x00%d", r.Key, r.Op)
		if seen[match] {
			return fmt.Errorf("gateway: %s: duplicate match for key %q op %d", where, r.Key, r.Op)
		}
		seen[match] = true
		if r.Upstream == "" && c.Upstream == "" {
			return fmt.Errorf("gateway: %s: no upstream address (set route upstream or the config default)", where)
		}
		for _, lane := range []struct {
			tag string
			lc  *LaneConfig
		}{{"request", r.Request}, {"reply", r.Reply}} {
			if lane.lc == nil {
				continue
			}
			if err := lane.lc.From.validate(where + " " + lane.tag + ".from"); err != nil {
				return err
			}
			if err := lane.lc.To.validate(where + " " + lane.tag + ".to"); err != nil {
				return err
			}
		}
	}
	return nil
}

// ParseConfig decodes a route-table JSON document. Unknown fields are
// rejected so typos fail loudly instead of silently forwarding
// untranscoded traffic. File references are resolved relative to dir
// ("" means the current directory).
func ParseConfig(data []byte, dir string) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("gateway: route config: %w", err)
	}
	for i := range c.Routes {
		r := &c.Routes[i]
		for _, lc := range []*LaneConfig{r.Request, r.Reply} {
			if lc == nil {
				continue
			}
			if err := lc.From.resolve(dir); err != nil {
				return nil, err
			}
			if err := lc.To.resolve(dir); err != nil {
				return nil, err
			}
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadConfig reads and parses a route-table file; relative source-file
// references resolve against the config file's directory.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseConfig(data, filepath.Dir(path))
}
