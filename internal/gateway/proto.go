// Admin protocol for the interop gateway: health, stats, and reload ops
// served under a reserved object key on the same orb listener as the
// proxied traffic. Payloads are CDR against small protocol Mtypes
// (shared with the broker's admin plane via internal/proto), so the
// gateway's control surface speaks the exact wire format its data plane
// transcodes.
package gateway

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mtype"
	"repro/internal/orb"
	"repro/internal/proto"
	"repro/internal/value"
	"repro/internal/wire"
)

// AdminKey is the orb object key the gateway's admin service is served
// under; the route table may not claim it.
const AdminKey = "mbird.gateway"

// Admin ops.
const (
	// OpHealth: empty → Record(ready, inFlight, maxInFlight, sheds,
	// connSheds, panics, expired, canceled, routes, lanes). Served
	// without admission control so it answers while the data plane is
	// saturated.
	OpHealth uint32 = iota + 1
	// OpStats: empty → Record(List(route record), List(upstream record),
	// laneCompiles, laneUnsupported, laneReuses, inFlight, sheds,
	// expired, canceled). A route record is Record(name ++ 9 counters);
	// an upstream record is Record(addr ++ 9 counters). See routeStatT /
	// upstreamStatT.
	OpStats
	// OpReload: empty → Record(routes). Re-reads the route table through
	// the configured reloader and swaps it in; the reply carries the new
	// route count.
	OpReload
)

// Protocol Mtypes.
var (
	healthT = proto.Record(
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, // ready, inFlight, maxInFlight, sheds
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, // connSheds, panics, expired, canceled
		proto.IntT, proto.IntT, // routes, lanes
		proto.IntT, proto.IntT, proto.IntT, // heapBytes, gcPauseNs, numGC
	)
	routeStatT = proto.Record(
		proto.StrT,                                     // name
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, // requests, fast, tree, passthrough
		proto.IntT,                                     // streamed
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, // transcodeNs, upstreamErrs, sheds, budgetRejects
	)
	upstreamStatT = proto.Record(
		proto.StrT,                                     // addr
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, // conns, dials, discards, retries
		proto.IntT, proto.IntT, proto.IntT, // overloads, hedges, hedgeWins
		proto.IntT, proto.IntT, // budgetExhausted, breakerTrips
	)
	statsT = proto.Record(
		mtype.NewList(routeStatT),
		mtype.NewList(upstreamStatT),
		proto.IntT, proto.IntT, proto.IntT, proto.IntT, proto.IntT, // laneCompiles, laneUnsupported, laneReuses, inFlight, sheds
		proto.IntT, proto.IntT, // expired, canceled
	)
	reloadT = proto.Record(proto.IntT)
)

// adminHandler serves the admin ops. Health and stats are pure counter
// reads; reload takes the control-plane lock but never blocks the data
// plane (the table swap is atomic).
func (g *Gateway) adminHandler() orb.Handler {
	return func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		switch op {
		case OpHealth:
			h := g.Health()
			ready := int64(0)
			if h.Ready {
				ready = 1
			}
			return wire.Marshal(healthT, value.NewRecord(
				proto.Int(ready), proto.Int(h.InFlight), proto.Int(int64(h.MaxInFlight)),
				proto.Int(h.Sheds), proto.Int(h.ConnSheds), proto.Int(h.Panics),
				proto.Int(h.Expired), proto.Int(h.Canceled),
				proto.Int(int64(h.Routes)), proto.Int(int64(h.Lanes)),
				proto.Int(h.HeapBytes), proto.Int(h.GCPauseNs), proto.Int(h.NumGC)))

		case OpStats:
			st := g.Stats()
			routes := make([]value.Value, len(st.Routes))
			for i, r := range st.Routes {
				routes[i] = value.NewRecord(
					proto.Str(r.Name),
					proto.Int(r.Requests), proto.Int(r.FastTier), proto.Int(r.TreeTier), proto.Int(r.Passthrough),
					proto.Int(r.Streamed),
					proto.Int(r.TranscodeTotal.Nanoseconds()), proto.Int(r.UpstreamErrors),
					proto.Int(r.Sheds), proto.Int(r.BudgetRejects))
			}
			ups := make([]value.Value, len(st.Upstreams))
			for i, u := range st.Upstreams {
				ups[i] = value.NewRecord(
					proto.Str(u.Addr),
					proto.Int(int64(u.Conns)), proto.Int(u.Dials), proto.Int(u.Discards), proto.Int(u.Retries),
					proto.Int(u.Overloads), proto.Int(u.Hedges), proto.Int(u.HedgeWins),
					proto.Int(u.BudgetExhausted), proto.Int(u.BreakerTrips))
			}
			return wire.Marshal(statsT, value.NewRecord(
				value.FromSlice(routes), value.FromSlice(ups),
				proto.Int(st.LaneCompiles), proto.Int(st.LaneUnsupported), proto.Int(st.LaneReuses),
				proto.Int(st.InFlight), proto.Int(st.Sheds),
				proto.Int(st.Expired), proto.Int(st.Canceled)))

		case OpReload:
			n, err := g.Reload()
			if err != nil {
				return nil, err
			}
			return wire.Marshal(reloadT, value.NewRecord(proto.Int(int64(n))))

		default:
			return nil, fmt.Errorf("gateway: unknown admin op %d", op)
		}
	}
}

// Transport is the connection an admin Client speaks through: a plain
// orb.Client, or a resil.Client for pooling and retries (safe — every
// admin op except reload is a pure read, and reload is idempotent
// against an unchanged route file).
type Transport interface {
	InvokeContext(ctx context.Context, key string, op uint32, body []byte) ([]byte, error)
	Close() error
}

// Client is a typed client for the gateway admin protocol.
type Client struct {
	t Transport
}

// NewClient wraps an established orb connection.
func NewClient(c *orb.Client) *Client { return &Client{t: c} }

// NewTransportClient wraps any Transport — typically a resil.Client.
func NewTransportClient(t Transport) *Client { return &Client{t: t} }

// DialTimeout bounds DialClient's connection attempt.
const DialTimeout = 10 * time.Second

// DialClient connects to a gateway's admin service over a single orb
// connection.
func DialClient(addr string) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), DialTimeout)
	defer cancel()
	c, err := orb.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &Client{t: c}, nil
}

// Close releases the underlying transport.
func (c *Client) Close() error { return c.t.Close() }

// Health fetches the gateway's health snapshot.
func (c *Client) Health() (Health, error) {
	return c.HealthContext(context.Background())
}

// HealthContext fetches the gateway's health snapshot.
func (c *Client) HealthContext(ctx context.Context) (Health, error) {
	reply, err := c.t.InvokeContext(ctx, AdminKey, OpHealth, nil)
	if err != nil {
		return Health{}, err
	}
	v, err := wire.Unmarshal(healthT, reply)
	if err != nil {
		return Health{}, err
	}
	r := proto.NewInts(v)
	h := Health{
		Ready:       r.Get(0) != 0,
		InFlight:    r.Get(1),
		MaxInFlight: int(r.Get(2)),
		Sheds:       r.Get(3),
		ConnSheds:   r.Get(4),
		Panics:      r.Get(5),
		Expired:     r.Get(6),
		Canceled:    r.Get(7),
		Routes:      int(r.Get(8)),
		Lanes:       int(r.Get(9)),
		HeapBytes:   r.Get(10),
		GCPauseNs:   r.Get(11),
		NumGC:       r.Get(12),
	}
	return h, r.Err()
}

// Stats fetches the gateway's stats snapshot.
func (c *Client) Stats() (Stats, error) {
	return c.StatsContext(context.Background())
}

// StatsContext fetches the gateway's stats snapshot.
func (c *Client) StatsContext(ctx context.Context) (Stats, error) {
	reply, err := c.t.InvokeContext(ctx, AdminKey, OpStats, nil)
	if err != nil {
		return Stats{}, err
	}
	v, err := wire.Unmarshal(statsT, reply)
	if err != nil {
		return Stats{}, err
	}
	rec, ok := v.(value.Record)
	if !ok || len(rec.Fields) != 9 {
		return Stats{}, fmt.Errorf("gateway: malformed stats reply: %v", v)
	}
	var st Stats
	routes, err := value.ToSlice(rec.Fields[0])
	if err != nil {
		return Stats{}, err
	}
	for _, rv := range routes {
		rr, ok := rv.(value.Record)
		if !ok || len(rr.Fields) != 10 {
			return Stats{}, fmt.Errorf("gateway: malformed route record: %v", rv)
		}
		name, err := proto.GoStr(rr.Fields[0])
		if err != nil {
			return Stats{}, err
		}
		c := proto.NewInts(rv)
		st.Routes = append(st.Routes, RouteStats{
			Name:           name,
			Requests:       c.Get(1),
			FastTier:       c.Get(2),
			TreeTier:       c.Get(3),
			Passthrough:    c.Get(4),
			Streamed:       c.Get(5),
			TranscodeTotal: time.Duration(c.Get(6)),
			UpstreamErrors: c.Get(7),
			Sheds:          c.Get(8),
			BudgetRejects:  c.Get(9),
		})
		if err := c.Err(); err != nil {
			return Stats{}, err
		}
	}
	ups, err := value.ToSlice(rec.Fields[1])
	if err != nil {
		return Stats{}, err
	}
	for _, uv := range ups {
		ur, ok := uv.(value.Record)
		if !ok || len(ur.Fields) != 10 {
			return Stats{}, fmt.Errorf("gateway: malformed upstream record: %v", uv)
		}
		addr, err := proto.GoStr(ur.Fields[0])
		if err != nil {
			return Stats{}, err
		}
		c := proto.NewInts(uv)
		st.Upstreams = append(st.Upstreams, UpstreamStats{
			Addr:            addr,
			Conns:           int(c.Get(1)),
			Dials:           c.Get(2),
			Discards:        c.Get(3),
			Retries:         c.Get(4),
			Overloads:       c.Get(5),
			Hedges:          c.Get(6),
			HedgeWins:       c.Get(7),
			BudgetExhausted: c.Get(8),
			BreakerTrips:    c.Get(9),
		})
		if err := c.Err(); err != nil {
			return Stats{}, err
		}
	}
	g := proto.NewInts(v)
	st.LaneCompiles = g.Get(2)
	st.LaneUnsupported = g.Get(3)
	st.LaneReuses = g.Get(4)
	st.InFlight = g.Get(5)
	st.Sheds = g.Get(6)
	st.Expired = g.Get(7)
	st.Canceled = g.Get(8)
	return st, g.Err()
}

// Reload asks the gateway to re-read its route table; it returns the
// new route count.
func (c *Client) Reload() (int, error) {
	return c.ReloadContext(context.Background())
}

// ReloadContext asks the gateway to re-read its route table.
func (c *Client) ReloadContext(ctx context.Context) (int, error) {
	reply, err := c.t.InvokeContext(ctx, AdminKey, OpReload, nil)
	if err != nil {
		return 0, err
	}
	v, err := wire.Unmarshal(reloadT, reply)
	if err != nil {
		return 0, err
	}
	r := proto.NewInts(v)
	n := int(r.Get(0))
	return n, r.Err()
}
