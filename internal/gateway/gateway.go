// Package gateway is the interop gateway: an orb-framed proxy that lets
// two endpoints speaking *different* declarations hold a live
// conversation. Clients connect to the gateway and marshal against
// declaration A; the gateway forwards each request to an upstream
// server expecting declaration B, transcoding the payload A→B in
// flight, and transcodes the reply B→A on the way back. This turns the
// stub compiler's conversion machinery into a runtime data plane: the
// adaptation artifact the paper's flexible-stub story implies, without
// either endpoint changing a line.
//
// A route table (JSON, hot-reloadable) maps operation keys — (orb
// object key, op number) pairs — to declaration pairs. At route load
// the gateway lowers both declarations through a core.Session, compares
// them, builds the coercion plan, and compiles each payload direction
// into a lane:
//
//   - fast tier: a fused CDR-bytes→CDR-bytes transcoder
//     (internal/transcode) that rewrites payloads without building
//     value trees;
//   - tree tier: when the fuser refuses the plan (wrapped
//     ErrUnsupported — e.g. semantic hooks), the lane falls back to
//     decode→convert→encode through the closure-compiled converter
//     (internal/convert) with identical bytes.
//
// Compiled lanes are cached by exact fingerprint pair
// (internal/fingerprint), so routes sharing a declaration pair — and
// reloads that keep a pair — reuse one compilation. Upstream
// connections go through internal/resil pools (deadlines, retries,
// hedging); admission control and payload budgets mirror the broker's
// (internal/limits); per-route counters are served on an admin
// stats/health protocol shaped like the broker's.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cmem"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/limits"
	"repro/internal/mtype"
	"repro/internal/orb"
	"repro/internal/resil"
	"repro/internal/transcode"
	"repro/internal/wire"
)

// Options configures a Gateway. Zero values select the defaults.
type Options struct {
	// MaxInFlight bounds data-plane requests admitted concurrently
	// (default 1024). A request arriving at the cap waits up to
	// AdmitWait for a slot, then is shed with a typed orb.ErrOverloaded.
	// Negative disables admission control. Admin ops bypass it.
	MaxInFlight int
	// AdmitWait is how long an arriving request may wait for an
	// admission slot before being shed (default 5ms).
	AdmitWait time.Duration
	// MaxPayload bounds each request and reply payload in bytes
	// (default limits.DefaultMaxBytes; negative disables). Violations
	// are typed limits.ErrBudget errors. Streamed request bodies are
	// exempt — the byte budget applies to what the gateway holds in
	// memory, and a streamed body never is held whole.
	MaxPayload int
	// StreamThreshold is the request size above which a stream-opened
	// call relays chunk-by-chunk to the upstream instead of buffering
	// (default DefaultStreamThreshold; negative disables streaming
	// relay, buffering every stream under the payload budget). Bodies
	// at or below the threshold take the buffered path with its full
	// resilience envelope (retries, hedging, every lane tier).
	StreamThreshold int
	// Upstream tunes the resil connection pools the gateway dials
	// upstreams with (pool size, call deadlines, retries, hedging).
	// Fleet upstreams use it for each member's pool.
	Upstream resil.Options
	// Fleet tunes fleet upstreams (routes whose upstream address is a
	// comma-separated member list): replica count, spillover threshold,
	// and the drain timeout retired upstreams get on reload. Fleet.Resil
	// is ignored — member pools are tuned by Upstream.
	Fleet cluster.Options
	// Session supplies a pre-configured core.Session — the hook table
	// (RegisterSemantic) must be populated before the first route
	// compiles. Nil creates a fresh session.
	Session *core.Session
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 1024
	}
	if o.AdmitWait <= 0 {
		o.AdmitWait = 5 * time.Millisecond
	}
	if o.Session == nil {
		o.Session = core.NewSession()
	}
	if o.StreamThreshold == 0 {
		o.StreamThreshold = DefaultStreamThreshold
	}
	if o.Fleet.DrainTimeout <= 0 {
		o.Fleet.DrainTimeout = 30 * time.Second
	}
	return o
}

// lane is one compiled payload direction: src-declaration bytes in,
// dst-declaration bytes out. xc is the fused fast tier; when the fuser
// refused the plan xc is nil and conv (the tree engine, with semantic
// hooks resolved) serves the lane instead.
type lane struct {
	src, dst    *mtype.Type
	xc          *transcode.Transcoder
	conv        convert.Converter
	unsupported string // fuser's refusal, for stats/debugging
}

// run transcodes one payload, reporting which tier served it.
func (l *lane) run(payload []byte) (out []byte, fast bool, err error) {
	if l.xc != nil {
		out, err = l.xc.Transcode(payload)
		return out, true, err
	}
	v, err := wire.Unmarshal(l.src, payload)
	if err != nil {
		return nil, false, err
	}
	cv, err := l.conv.Convert(v)
	if err != nil {
		return nil, false, err
	}
	out, err = wire.Marshal(l.dst, cv)
	return out, false, err
}

// routeCounters is the per-route stats block. It is keyed by route name
// and survives hot reloads, so a reload does not zero the counters of
// routes that persist.
type routeCounters struct {
	requests      atomic.Int64
	fastTier      atomic.Int64
	treeTier      atomic.Int64
	passthrough   atomic.Int64
	streamed      atomic.Int64
	transcodeNs   atomic.Int64
	upstreamErrs  atomic.Int64
	sheds         atomic.Int64
	budgetRejects atomic.Int64
}

// route is one compiled table entry.
type route struct {
	name   string
	key    string
	op     uint32
	upAddr string
	upKey  string
	upOp   uint32
	up     upstreamLink
	rk     []byte // content-derived fleet route key
	req    *lane  // nil = passthrough
	rep    *lane  // nil = passthrough
	c      *routeCounters
}

// table is the immutable routing state the data plane reads; reloads
// build a fresh table and swap the pointer.
type table struct {
	routes map[string]map[uint32]*route // object key → op → route
}

func (t *table) lookup(key string, op uint32) *route {
	if t == nil {
		return nil
	}
	return t.routes[key][op]
}

func (t *table) keys() map[string]bool {
	ks := make(map[string]bool, len(t.routes))
	for k := range t.routes {
		ks[k] = true
	}
	return ks
}

// Gateway is the interop proxy. All methods are safe for concurrent
// use; the data plane is lock-free against reloads (it reads an
// atomically swapped route table).
type Gateway struct {
	opts   Options
	budget limits.Budget

	// sessMu serializes the core.Session (lowering and comparison
	// memoize into shared maps), exactly as the broker does.
	sessMu sync.Mutex
	sess   *core.Session

	tab atomic.Pointer[table]
	srv atomic.Pointer[orb.Server]

	// mu serializes control-plane mutation: reloads, pool creation,
	// lane-cache fills, and Close.
	mu       sync.Mutex
	pools    map[string]*resil.Client
	fleets   map[string]*cluster.Client
	lanes    map[fingerprint.PairKey]*lane
	counters map[string]*routeCounters
	reloader func() (*Config, error)
	closed   bool

	admit chan struct{}

	inFlight        atomic.Int64
	sheds           atomic.Int64
	expired         atomic.Int64
	canceled        atomic.Int64
	laneCompiles    atomic.Int64
	laneUnsupported atomic.Int64
	laneHits        atomic.Int64
}

// New returns a Gateway with an empty route table. Call SetConfig (or
// Reload) to install routes, then Serve to attach it to an orb server.
func New(opts Options) *Gateway {
	opts = opts.withDefaults()
	g := &Gateway{
		opts:     opts,
		budget:   limits.Budget{MaxBytes: opts.MaxPayload}.WithDefaults(),
		sess:     opts.Session,
		pools:    make(map[string]*resil.Client),
		fleets:   make(map[string]*cluster.Client),
		lanes:    make(map[fingerprint.PairKey]*lane),
		counters: make(map[string]*routeCounters),
	}
	if opts.MaxInFlight > 0 {
		g.admit = make(chan struct{}, opts.MaxInFlight)
	}
	g.tab.Store(&table{routes: map[string]map[uint32]*route{}})
	return g
}

// Serve registers the gateway on an orb server: the admin service under
// AdminKey plus, for every routed object key, a frame-relay handler for
// buffered requests and a streaming relay handler for stream opens.
func (g *Gateway) Serve(srv *orb.Server) {
	g.srv.Store(srv)
	srv.Register(AdminKey, g.adminHandler())
	for key := range g.tab.Load().keys() {
		srv.Register(key, g.frontHandler(key))
		srv.RegisterStream(key, g.frontStreamHandler(key))
	}
}

// Close tears down every upstream pool. The orb server the gateway is
// registered on belongs to the caller and is not touched.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	pools := g.pools
	fleets := g.fleets
	g.pools = map[string]*resil.Client{}
	g.fleets = map[string]*cluster.Client{}
	g.mu.Unlock()
	for _, p := range pools {
		_ = p.Close()
	}
	for _, f := range fleets {
		_ = f.Close()
	}
	return nil
}

// SetReloader installs the callback the admin reload op (and SIGHUP in
// mbirdgw) uses to fetch a fresh Config — typically re-reading the
// route file.
func (g *Gateway) SetReloader(fn func() (*Config, error)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reloader = fn
}

// Reload fetches a fresh config through the reloader and installs it.
func (g *Gateway) Reload() (int, error) {
	g.mu.Lock()
	fn := g.reloader
	g.mu.Unlock()
	if fn == nil {
		return 0, errors.New("gateway: no reloader configured")
	}
	cfg, err := fn()
	if err != nil {
		return 0, err
	}
	if err := g.SetConfig(cfg); err != nil {
		return 0, err
	}
	return len(cfg.Routes), nil
}

// SetConfig compiles cfg into a complete new route table and swaps it
// in atomically: every route compiles (declarations load, pairs relate,
// lanes build) or the old table stays untouched. On success, object
// keys no longer routed are unregistered from the serving orb server
// and new keys are registered. Counters persist for routes whose names
// survive the reload; compiled lanes are reused by fingerprint pair.
func (g *Gateway) SetConfig(cfg *Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return errors.New("gateway: closed")
	}
	routes := make(map[string]map[uint32]*route)
	for i := range cfg.Routes {
		rc := &cfg.Routes[i]
		r, err := g.compileRoute(cfg, rc)
		if err != nil {
			return fmt.Errorf("gateway: route %s: %w", rc.DisplayName(), err)
		}
		if routes[r.key] == nil {
			routes[r.key] = make(map[uint32]*route)
		}
		routes[r.key][r.op] = r
	}
	old := g.tab.Swap(&table{routes: routes})
	g.retireUpstreams(routes)
	if srv := g.srv.Load(); srv != nil {
		oldKeys := old.keys()
		for key := range routes {
			if !oldKeys[key] {
				srv.Register(key, g.frontHandler(key))
				srv.RegisterStream(key, g.frontStreamHandler(key))
			}
			delete(oldKeys, key)
		}
		for key := range oldKeys {
			srv.Unregister(key)
		}
	}
	return nil
}

// compileRoute builds one route: its upstream pool, its counters
// (reused by name across reloads), and its two lanes. Called with g.mu
// held.
func (g *Gateway) compileRoute(cfg *Config, rc *RouteConfig) (*route, error) {
	name := rc.DisplayName()
	r := &route{
		name:   name,
		key:    rc.Key,
		op:     rc.Op,
		upAddr: rc.Upstream,
		upKey:  rc.UpstreamKey,
		upOp:   rc.Op,
	}
	if r.upAddr == "" {
		r.upAddr = cfg.Upstream
	}
	if r.upKey == "" {
		r.upKey = rc.Key
	}
	if rc.UpstreamOp != nil {
		r.upOp = *rc.UpstreamOp
	}
	if r.c = g.counters[name]; r.c == nil {
		r.c = &routeCounters{}
		g.counters[name] = r.c
	}
	addrs := splitUpstream(r.upAddr)
	switch len(addrs) {
	case 0:
		return nil, errors.New("empty upstream address")
	case 1:
		r.upAddr = addrs[0]
		p := g.pools[r.upAddr]
		if p == nil {
			p = resil.New(r.upAddr, g.opts.Upstream)
			g.pools[r.upAddr] = p
		}
		r.up = singleUpstream{p: p}
	default:
		r.upAddr = fleetKey(addrs)
		r.up = fleetUpstream{c: g.fleetFor(addrs)}
	}
	var err error
	if rc.Request != nil {
		var pk fingerprint.PairKey
		if r.req, pk, err = g.lane(&rc.Request.From, &rc.Request.To); err != nil {
			return nil, fmt.Errorf("request lane: %w", err)
		}
		r.rk = pk[:]
	}
	if rc.Reply != nil {
		var pk fingerprint.PairKey
		if r.rep, pk, err = g.lane(&rc.Reply.From, &rc.Reply.To); err != nil {
			return nil, fmt.Errorf("reply lane: %w", err)
		}
		if r.rk == nil {
			r.rk = pk[:]
		}
	}
	if r.rk == nil {
		// Passthrough route: pin by what it forwards to.
		r.rk = cluster.RouteKey(r.upKey, strconv.FormatUint(uint64(r.upOp), 10))
	}
	return r, nil
}

// lane returns the compiled lane for a declaration pair — and the
// pair's exact fingerprint key, which doubles as the route's fleet
// route key — loading the declarations into the session and compiling
// both tiers on a fingerprint-cache miss. Called with g.mu held (reload
// path only — the data plane never compiles).
func (g *Gateway) lane(from, to *DeclConfig) (*lane, fingerprint.PairKey, error) {
	mtF, err := g.Lower(from)
	if err != nil {
		return nil, fingerprint.PairKey{}, err
	}
	mtT, err := g.Lower(to)
	if err != nil {
		return nil, fingerprint.PairKey{}, err
	}
	key := fingerprint.Pair(fingerprint.Exact(mtF), fingerprint.Exact(mtT))
	if l := g.lanes[key]; l != nil {
		g.laneHits.Add(1)
		return l, key, nil
	}
	g.sessMu.Lock()
	v, err := g.sess.Compare(from.universe(), from.Decl, to.universe(), to.Decl)
	g.sessMu.Unlock()
	if err != nil {
		return nil, key, err
	}
	switch v.Relation {
	case core.RelEquivalent, core.RelSubtypeAB:
	case core.RelSubtypeBA:
		return nil, key, fmt.Errorf("%s only converts toward %s (it is the supertype); swap the lane", to.Decl, from.Decl)
	default:
		return nil, key, fmt.Errorf("declarations do not match:\n%s", v.Explain)
	}
	p, conv, err := g.sess.BuildConverter(v)
	if err != nil {
		return nil, key, err
	}
	l := &lane{src: mtF, dst: mtT, conv: conv}
	g.laneCompiles.Add(1)
	xc, err := transcode.Compile(p, mtF, mtT)
	switch {
	case err == nil:
		l.xc = xc
	case errors.Is(err, transcode.ErrUnsupported):
		// Tree tier serves the lane; remember why for stats.
		l.unsupported = err.Error()
		g.laneUnsupported.Add(1)
	default:
		return nil, key, err
	}
	g.lanes[key] = l
	return l, key, nil
}

// Lower loads the declaration's universe into the session (idempotent —
// universes are content-addressed) and lowers the named declaration.
func (g *Gateway) Lower(d *DeclConfig) (*mtype.Type, error) {
	g.sessMu.Lock()
	defer g.sessMu.Unlock()
	uni := d.universe()
	if g.sess.Universe(uni) == nil {
		var err error
		switch d.Lang {
		case "c":
			m := cmem.ILP32
			if d.Model == "lp64" {
				m = cmem.LP64
			}
			err = g.sess.LoadC(uni, d.Source, m)
		case "java":
			err = g.sess.LoadJava(uni, d.Source)
		case "idl":
			err = g.sess.LoadIDL(uni, d.Source)
		case "go":
			err = g.sess.LoadGo(uni, d.Source)
		default:
			err = fmt.Errorf("gateway: unknown lang %q", d.Lang)
		}
		if err != nil {
			return nil, err
		}
		if d.Script != "" {
			if _, err := g.sess.Annotate(uni, d.Script); err != nil {
				return nil, err
			}
		}
	}
	return g.sess.Mtype(uni, d.Decl)
}

// admitRequest acquires an admission slot, waiting up to AdmitWait
// before shedding with a typed orb.ErrOverloaded (counted globally and
// against the route).
func (g *Gateway) admitRequest(c *routeCounters) (release func(), err error) {
	if g.admit == nil {
		return func() {}, nil
	}
	release = func() { <-g.admit }
	select {
	case g.admit <- struct{}{}:
		return release, nil
	default:
	}
	t := time.NewTimer(g.opts.AdmitWait)
	defer t.Stop()
	select {
	case g.admit <- struct{}{}:
		return release, nil
	case <-t.C:
		g.sheds.Add(1)
		c.sheds.Add(1)
		return nil, fmt.Errorf("%w: %d requests already in flight", orb.ErrOverloaded, cap(g.admit))
	}
}

// checkBudget bounds one payload, typed with limits.ErrBudget.
func (g *Gateway) checkBudget(dir string, n int) error {
	if n > g.budget.MaxBytes {
		return limits.Exceededf("gateway: %s payload of %d bytes exceeds %d", dir, n, g.budget.MaxBytes)
	}
	return nil
}

// frontHandler returns the orb handler relaying one routed object key.
// One-way messages take the same path with the reply discarded by the
// orb server (the upstream leg is still request/reply, so ordering and
// backpressure hold).
func (g *Gateway) frontHandler(key string) orb.Handler {
	return func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		r := g.tab.Load().lookup(key, op)
		if r == nil {
			return nil, fmt.Errorf("gateway: no route for object %q op %d", key, op)
		}
		return g.relay(ctx, r, body)
	}
}

// relay serves one routed call: admit, budget-check, transcode the
// request lane, forward upstream through the resilient pool, budget-
// check and transcode the reply lane.
//
// ctx carries the client's propagated deadline budget: the upstream leg
// re-encodes the *remaining* time at send, so the budget the next hop
// sees is already decremented by the gateway's own admission, transcode,
// and queuing overhead. It is also canceled when the client disconnects
// or sends a cancel frame, which the orb client layer forwards upstream
// as a cancel frame of its own.
func (g *Gateway) relay(ctx context.Context, r *route, body []byte) ([]byte, error) {
	r.c.requests.Add(1)
	release, err := g.admitRequest(r.c)
	if err != nil {
		return nil, err
	}
	defer release()
	g.inFlight.Add(1)
	defer g.inFlight.Add(-1)

	if err := g.checkBudget("request", len(body)); err != nil {
		r.c.budgetRejects.Add(1)
		return nil, err
	}
	out := body
	if r.req != nil {
		if r.req.xc != nil {
			// The fast-tier request output only lives until the upstream
			// leg returns (hedged attempts copy it), so it lands in a
			// pooled buffer instead of allocating per call.
			buf := laneBufPool.Get().(*[]byte)
			defer putLaneBuf(buf)
			if out, err = g.runLaneAppend(r, r.req, (*buf)[:0], body); err != nil {
				return nil, fmt.Errorf("gateway: request transcode: %w", err)
			}
			*buf = out
		} else if out, err = g.runLane(r, r.req, body); err != nil {
			return nil, fmt.Errorf("gateway: request transcode: %w", err)
		}
	}
	reply, err := r.up.invoke(ctx, r.rk, r.upKey, r.upOp, out)
	if err != nil {
		return nil, g.mapUpstreamErr(ctx, r, err)
	}
	if err := g.checkBudget("reply", len(reply)); err != nil {
		r.c.budgetRejects.Add(1)
		return nil, err
	}
	if r.rep != nil {
		if reply, err = g.runLane(r, r.rep, reply); err != nil {
			return nil, fmt.Errorf("gateway: reply transcode: %w", err)
		}
	}
	if r.req == nil && r.rep == nil {
		r.c.passthrough.Add(1)
	}
	return reply, nil
}

// mapUpstreamErr classifies a failed upstream leg under the route's
// error counter. Typed expiries stay intact (the propagated budget was
// spent); a locally-expired budget or a vanished caller remaps to the
// matching typed error; everything else — Overloaded, ServerPanic, and
// generic failures — degrades to a tagged upstream error whose typed
// wrappers survive the error frame back to the client.
func (g *Gateway) mapUpstreamErr(ctx context.Context, r *route, err error) error {
	r.c.upstreamErrs.Add(1)
	switch {
	case errors.Is(err, orb.ErrExpired):
		// The upstream shed (or abandoned) the call because the
		// propagated budget was spent; keep the typed expiry intact.
		g.expired.Add(1)
	case ctx.Err() != nil && errors.Is(ctx.Err(), context.DeadlineExceeded):
		// Our own budget-derived deadline ran out while the leg was in
		// flight: the caller's clock expired, so answer with the typed
		// expiry instead of a generic upstream failure.
		g.expired.Add(1)
		return fmt.Errorf("%w: budget spent relaying via %s: %v", orb.ErrExpired, r.upAddr, err)
	case ctx.Err() != nil:
		// The client canceled or disconnected mid-relay; the upstream
		// leg was already aborted via a forwarded cancel frame.
		g.canceled.Add(1)
		return fmt.Errorf("%w: caller went away relaying via %s", orb.ErrCanceled, r.upAddr)
	}
	return fmt.Errorf("gateway: upstream %s: %w", r.upAddr, err)
}

// runLane executes one lane under the route's tier and latency
// counters.
// laneBufPool recycles request-lane fast-tier output buffers; see
// relay. Oversized buffers are dropped so one jumbo payload doesn't pin
// its footprint forever.
var laneBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

const maxPooledLaneBuf = 64 << 10

func putLaneBuf(b *[]byte) {
	if cap(*b) <= maxPooledLaneBuf {
		laneBufPool.Put(b)
	}
}

// runLaneAppend is the fast-tier-only variant of runLane: the output is
// appended to dst, so a caller that reuses dst across calls transcodes
// without allocating.
func (g *Gateway) runLaneAppend(r *route, l *lane, dst, payload []byte) ([]byte, error) {
	start := time.Now()
	out, err := l.xc.TranscodeAppend(dst, payload)
	r.c.transcodeNs.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return nil, err
	}
	r.c.fastTier.Add(1)
	return out, nil
}

func (g *Gateway) runLane(r *route, l *lane, payload []byte) ([]byte, error) {
	start := time.Now()
	out, fast, err := l.run(payload)
	r.c.transcodeNs.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return nil, err
	}
	if fast {
		r.c.fastTier.Add(1)
	} else {
		r.c.treeTier.Add(1)
	}
	return out, nil
}

// RouteStats is one route's counter snapshot.
type RouteStats struct {
	Name string
	// Requests counts calls matched to the route (admitted or shed).
	Requests int64
	// FastTier / TreeTier count lane executions served wire-to-wire vs
	// decode→convert→encode; Passthrough counts calls forwarded with no
	// transcoding at all; Streamed counts requests relayed chunk-by-chunk
	// over the streaming lane instead of buffering.
	FastTier, TreeTier, Passthrough, Streamed int64
	// TranscodeTotal is the cumulative in-gateway transcode time.
	TranscodeTotal time.Duration
	// UpstreamErrors counts upstream legs that failed after resil's
	// retries; Sheds counts admission sheds; BudgetRejects counts
	// payloads over the byte budget.
	UpstreamErrors, Sheds, BudgetRejects int64
}

// UpstreamStats is one upstream pool's counter snapshot.
type UpstreamStats struct {
	Addr  string
	Conns int
	Dials, Discards, Retries,
	Overloads, Hedges, HedgeWins int64
	// BudgetExhausted counts retries and hedges the pool wanted but the
	// shared retry budget refused; BreakerTrips counts circuit-breaker
	// openings (fleet members only — single pools have no breaker).
	BudgetExhausted, BreakerTrips int64
}

// Stats is a point-in-time snapshot of the gateway's counters.
type Stats struct {
	// Routes holds the live table's per-route counters, sorted by name.
	Routes []RouteStats
	// Upstreams holds one entry per upstream pool, sorted by address.
	Upstreams []UpstreamStats
	// LaneCompiles counts declaration pairs compiled; LaneUnsupported
	// how many of those the wire-transcoder fuser refused (tree tier);
	// LaneReuses how many lane requests were served by the fingerprint
	// cache.
	LaneCompiles, LaneUnsupported, LaneReuses int64
	// InFlight is the number of admitted data-plane requests.
	InFlight int64
	// Sheds counts admission sheds across all routes.
	Sheds int64
	// Expired counts relays abandoned because the client's propagated
	// time budget was spent (shed upstream or mid-relay); Canceled counts
	// relays aborted because the client canceled or disconnected.
	Expired, Canceled int64
}

// Stats returns a snapshot of the gateway's counters.
func (g *Gateway) Stats() Stats {
	st := Stats{
		LaneCompiles:    g.laneCompiles.Load(),
		LaneUnsupported: g.laneUnsupported.Load(),
		LaneReuses:      g.laneHits.Load(),
		InFlight:        g.inFlight.Load(),
		Sheds:           g.sheds.Load(),
		Expired:         g.expired.Load(),
		Canceled:        g.canceled.Load(),
	}
	tab := g.tab.Load()
	for _, ops := range tab.routes {
		for _, r := range ops {
			st.Routes = append(st.Routes, RouteStats{
				Name:           r.name,
				Requests:       r.c.requests.Load(),
				FastTier:       r.c.fastTier.Load(),
				TreeTier:       r.c.treeTier.Load(),
				Passthrough:    r.c.passthrough.Load(),
				Streamed:       r.c.streamed.Load(),
				TranscodeTotal: time.Duration(r.c.transcodeNs.Load()),
				UpstreamErrors: r.c.upstreamErrs.Load(),
				Sheds:          r.c.sheds.Load(),
				BudgetRejects:  r.c.budgetRejects.Load(),
			})
		}
	}
	sortRouteStats(st.Routes)
	g.mu.Lock()
	for addr, p := range g.pools {
		ps := p.Stats()
		st.Upstreams = append(st.Upstreams, UpstreamStats{
			Addr: addr, Conns: ps.Conns, Dials: ps.Dials, Discards: ps.Discards,
			Retries: ps.Retries, Overloads: ps.Overloads,
			Hedges: ps.Hedges, HedgeWins: ps.HedgeWins,
			BudgetExhausted: ps.BudgetExhausted,
		})
	}
	// Fleet members report individually, so the existing stats schema
	// (a flat upstream list) spans the fleet unchanged.
	for _, f := range g.fleets {
		for _, m := range f.Stats().Members {
			ps := m.Pool
			st.Upstreams = append(st.Upstreams, UpstreamStats{
				Addr: m.Addr, Conns: ps.Conns, Dials: ps.Dials, Discards: ps.Discards,
				Retries: ps.Retries, Overloads: ps.Overloads,
				Hedges: ps.Hedges, HedgeWins: ps.HedgeWins,
				BudgetExhausted: ps.BudgetExhausted, BreakerTrips: m.BreakerTrips,
			})
		}
	}
	g.mu.Unlock()
	sortUpstreamStats(st.Upstreams)
	return st
}

func sortRouteStats(rs []RouteStats) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
}

func sortUpstreamStats(us []UpstreamStats) {
	sort.Slice(us, func(i, j int) bool { return us[i].Addr < us[j].Addr })
}

// Health is the gateway's readiness and load snapshot, shaped like the
// broker's and served without admission control.
type Health struct {
	// Ready is false while the serving orb server drains or is closed.
	Ready bool
	// InFlight / MaxInFlight mirror the admission semaphore (0 cap when
	// admission is disabled).
	InFlight    int64
	MaxInFlight int
	// Sheds counts admission sheds; ConnSheds and Panics come from the
	// serving orb server.
	Sheds, ConnSheds, Panics int64
	// Expired counts budget-expired requests: sheds before dispatch at
	// this hop's own listener plus relays whose budget ran out in flight.
	// Canceled counts requests aborted by client cancel frames or
	// disconnects, at the listener or mid-relay.
	Expired, Canceled int64
	// Routes is the number of live table entries; Lanes the number of
	// cached compiled lanes.
	Routes, Lanes int
	// HeapBytes is the process's in-use heap (runtime HeapInuse);
	// GCPauseNs the cumulative stop-the-world GC pause time; NumGC the
	// completed GC cycle count. Load harnesses record deltas of these
	// across a run to attribute GC pressure to the relay path.
	HeapBytes int64
	GCPauseNs int64
	NumGC     int64
}

// Health returns the gateway's readiness and load snapshot.
func (g *Gateway) Health() Health {
	h := Health{Ready: true, Sheds: g.sheds.Load()}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	h.HeapBytes = int64(m.HeapInuse)
	h.GCPauseNs = int64(m.PauseTotalNs)
	h.NumGC = int64(m.NumGC)
	if g.admit != nil {
		h.InFlight = int64(len(g.admit))
		h.MaxInFlight = cap(g.admit)
	}
	for _, ops := range g.tab.Load().routes {
		h.Routes += len(ops)
	}
	g.mu.Lock()
	h.Lanes = len(g.lanes)
	g.mu.Unlock()
	h.Expired = g.expired.Load()
	h.Canceled = g.canceled.Load()
	if srv := g.srv.Load(); srv != nil {
		st := srv.Stats()
		h.ConnSheds = st.Shed
		h.Panics = st.Panics
		h.Expired += st.Expired
		h.Canceled += st.Canceled
		h.Ready = !srv.Draining()
	}
	return h
}
