package gateway

import (
	"context"
	"repro/internal/testutil"
	"testing"

	"repro/internal/orb"
	"repro/internal/value"
	"repro/internal/wire"
)

// TestFusedRelayAllocs pins the allocation ceiling of one fused-tier
// relay: client → gateway (request and reply lanes on the fast tier) →
// echo upstream → back. With pooled frame buffers on both servers and
// the request-lane output in a pooled buffer, what remains is the
// per-hop reply body, the dispatch goroutines, and the reply-lane
// transcode output. This is the BenchmarkGatewayVsDirect fused number,
// enforced; a regression means a pool or memo fell off the hot path.
func TestFusedRelayAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	up, err := orb.NewServer("127.0.0.1:0", orb.WithBufPooling())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = up.Close() })
	up.Register("svc", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return body, nil
	})

	cfg := &Config{Upstream: up.Addr(), Routes: []RouteConfig{{
		Key: "svc", Op: 1,
		Request: &LaneConfig{From: mixDecl(), To: pairDecl()},
		Reply:   &LaneConfig{From: pairDecl(), To: mixDecl()},
	}}}
	g := New(Options{})
	t.Cleanup(func() { _ = g.Close() })
	if err := g.SetConfig(cfg); err != nil {
		t.Fatal(err)
	}
	srv, err := orb.NewServer("127.0.0.1:0", orb.WithBufPooling())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	g.Serve(srv)

	d := mixDecl()
	mt, err := New(Options{}).Lower(&d)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.Marshal(mt, value.NewRecord(value.Real{V: 1.5}, value.NewInt(7)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := orb.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	for i := 0; i < 50; i++ {
		if _, err := c.Invoke("svc", 1, payload); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := c.Invoke("svc", 1, payload); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 9
	if avg > ceiling {
		t.Fatalf("fused relay allocates %.1f/op, ceiling %d", avg, ceiling)
	}
	if r := g.Stats().Routes[0]; r.FastTier == 0 || r.TreeTier != 0 {
		t.Fatalf("fast=%d tree=%d, relay left the fast tier", r.FastTier, r.TreeTier)
	}
}
