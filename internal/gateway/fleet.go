// Fleet upstreams: a route's upstream address may be a comma-separated
// member list ("host1:9901,host2:9901,host3:9901"), in which case the
// gateway forwards through a cluster.Client spanning those members
// instead of a single resil pool. Each route's traffic is pinned by a
// content-derived route key — the exact fingerprint pair of its first
// transcoded lane when it has one — so a route lands on the member
// whose cache is warm for it, spills to that key's replicas under load
// imbalance, and fails over down the rank when a member is unreachable.
package gateway

import (
	"context"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/orb"
	"repro/internal/resil"
)

// upstreamLink is one route's forwarding leg: a single pooled endpoint
// or a fleet. rk is the route's content-derived route key (ignored by
// single endpoints). ctx is the relayed request's context: its remaining
// budget re-encodes onto the upstream leg and its cancellation aborts
// the leg (forwarded upstream as a cancel frame).
type upstreamLink interface {
	invoke(ctx context.Context, rk []byte, key string, op uint32, body []byte) ([]byte, error)
	// openStream opens a streaming upstream leg. The returned done must
	// be called exactly once with the stream's terminal error once the
	// relay is finished with it.
	openStream(ctx context.Context, rk []byte, key string, op uint32) (*orb.StreamCall, func(error), error)
}

type singleUpstream struct{ p *resil.Client }

func (s singleUpstream) invoke(ctx context.Context, _ []byte, key string, op uint32, body []byte) ([]byte, error) {
	return s.p.InvokeContext(ctx, key, op, body)
}

func (s singleUpstream) openStream(ctx context.Context, _ []byte, key string, op uint32) (*orb.StreamCall, func(error), error) {
	return s.p.OpenStream(ctx, key, op)
}

type fleetUpstream struct{ c *cluster.Client }

func (f fleetUpstream) invoke(ctx context.Context, rk []byte, key string, op uint32, body []byte) ([]byte, error) {
	return f.c.InvokeKeyed(ctx, rk, key, op, body)
}

func (f fleetUpstream) openStream(ctx context.Context, rk []byte, key string, op uint32) (*orb.StreamCall, func(error), error) {
	return f.c.OpenStreamKeyed(ctx, rk, key, op)
}

// splitUpstream parses an upstream address field: one address, or a
// comma-separated fleet member list (whitespace around members is
// ignored, empties dropped).
func splitUpstream(addr string) []string {
	var out []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// fleetKey canonicalizes a member list so two routes naming the same
// fleet in different orders share one cluster client.
func fleetKey(addrs []string) string {
	s := append([]string(nil), addrs...)
	sort.Strings(s)
	return strings.Join(s, ",")
}

// fleetFor returns (lazily creating) the cluster client for a member
// list. Called with g.mu held.
func (g *Gateway) fleetFor(addrs []string) *cluster.Client {
	key := fleetKey(addrs)
	if c := g.fleets[key]; c != nil {
		return c
	}
	c := cluster.New(addrs, cluster.Options{
		Resil:         g.opts.Upstream,
		Replicas:      g.opts.Fleet.Replicas,
		SpillInflight: g.opts.Fleet.SpillInflight,
		DrainTimeout:  g.opts.Fleet.DrainTimeout,
	})
	g.fleets[key] = c
	return c
}

// retireUpstreams drains pools and fleets no longer referenced by any
// route after a reload: in-flight calls finish, then the connections
// close. Called with g.mu held; the drains run in the background.
func (g *Gateway) retireUpstreams(routes map[string]map[uint32]*route) {
	livePools := make(map[string]bool)
	liveFleets := make(map[string]bool)
	for _, ops := range routes {
		for _, r := range ops {
			switch up := r.up.(type) {
			case singleUpstream:
				livePools[r.upAddr] = true
			case fleetUpstream:
				liveFleets[fleetKey(up.c.Members())] = true
			}
		}
	}
	for addr, p := range g.pools {
		if !livePools[addr] {
			delete(g.pools, addr)
			go func(p *resil.Client) {
				ctx, cancel := context.WithTimeout(context.Background(), g.opts.Fleet.DrainTimeout)
				defer cancel()
				_ = p.Drain(ctx)
			}(p)
		}
	}
	for key, c := range g.fleets {
		if !liveFleets[key] {
			delete(g.fleets, key)
			go func(c *cluster.Client) {
				c.SetMembers(nil) // drains every member pool
				_ = c.Close()
			}(c)
		}
	}
}
