package gateway

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/orb"
	"repro/internal/resil"
)

// TestChaosGatewayBudgetShedStalledUpstream proves end-to-end budget
// propagation across the relay hop: a client gives the whole multi-hop
// path a 200ms wire budget while staying patient locally, the gateway
// derives its handler deadline from that budget, and when the upstream
// leg wedges behind a stall proxy the client gets the typed orb
// ErrExpired back — from the gateway, well before the client's own
// timeout — while the upstream does zero work on the abandoned call.
func TestChaosGatewayBudgetShedStalledUpstream(t *testing.T) {
	up, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = up.Close() })
	var upstreamOps atomic.Int64
	up.Register("svc", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		upstreamOps.Add(1)
		return body, nil
	})
	// The stall lets the upstream's 26-byte hello through (so the
	// gateway's pool negotiates v2), then trickles the gateway's request
	// at one byte per interval — an upstream that is alive but wedged.
	proxy, err := chaos.New("127.0.0.1:0", up.Addr(), chaos.Faults{
		StallAfter:    30,
		StallInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proxy.Close() })

	cfg := &Config{Routes: []RouteConfig{{
		Key: "svc", Op: 0, Upstream: proxy.Addr(),
	}}}
	g, srv := startGateway(t, cfg, Options{
		Upstream: resil.Options{MaxAttempts: 1, DialTimeout: time.Second},
	})

	c := dialOrb(t, srv.Addr())
	vctx, vcancel := context.WithTimeout(context.Background(), 2*time.Second)
	if v := c.AwaitVersion(vctx); v < 2 {
		t.Fatalf("negotiated version %d with the gateway, want >= 2", v)
	}
	vcancel()

	// Patient locally (5s), tight on the wire (200ms): the typed expiry
	// must come back from the gateway, not from a local timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ctx = orb.ContextWithBudget(ctx, 200*time.Millisecond)
	start := time.Now()
	_, err = c.InvokeContext(ctx, "svc", 0, []byte("abandoned"))
	elapsed := time.Since(start)
	if !errors.Is(err, orb.ErrExpired) {
		t.Fatalf("err = %v, want orb.ErrExpired from the gateway", err)
	}
	if elapsed >= 4*time.Second {
		t.Errorf("expiry took %v; the gateway should answer at its budget deadline, not the client's timeout", elapsed)
	}
	if upstreamOps.Load() != 0 {
		t.Errorf("upstream ran %d ops for a call whose budget expired in the relay", upstreamOps.Load())
	}
	if st := proxy.Stats(); st.Accepted < 1 || st.Stalls < 1 {
		t.Errorf("proxy stats = %+v; the upstream leg never engaged the stall", st)
	}
	if g.Stats().Expired < 1 {
		t.Error("gateway Expired counter did not record the budget-spent relay")
	}
	if h := g.Health(); h.Expired < 1 {
		t.Error("gateway health does not surface the expired relay")
	}
}
