package gateway

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/orb"
	"repro/internal/value"
	"repro/internal/wire"
)

// BenchmarkGatewayVsDirect measures the gateway's per-call overhead on
// one machine loop: a client invoking an echo upstream directly, then
// through the gateway with no transcoding (passthrough), with a fused
// fast-tier lane pair, and with a semantic-hook lane forced onto the
// tree tier. The direct case is the floor; the deltas are what the
// interop hop costs. Results are recorded in BENCH_gateway.json.
func BenchmarkGatewayVsDirect(b *testing.B) {
	newUpstream := func(b *testing.B, key string) *orb.Server {
		b.Helper()
		s, err := orb.NewServer("127.0.0.1:0", orb.WithBufPooling())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = s.Close() })
		s.Register(key, func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })
		return s
	}
	dial := func(b *testing.B, addr string) *orb.Client {
		b.Helper()
		c, err := orb.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = c.Close() })
		return c
	}
	lowerB := func(b *testing.B, d DeclConfig) []byte {
		b.Helper()
		g := New(Options{})
		mt, err := g.Lower(&d)
		if err != nil {
			b.Fatal(err)
		}
		payload, err := wire.Marshal(mt, value.NewRecord(value.Real{V: 1.5}, value.NewInt(7)))
		if err != nil {
			b.Fatal(err)
		}
		return payload
	}
	run := func(b *testing.B, c *orb.Client, key string, payload []byte) {
		b.Helper()
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Invoke(key, 1, payload); err != nil {
				b.Fatal(err)
			}
		}
	}

	mixPayload := lowerB(b, mixDecl())

	b.Run("direct", func(b *testing.B) {
		up := newUpstream(b, "svc")
		run(b, dial(b, up.Addr()), "svc", mixPayload)
	})

	b.Run("passthrough", func(b *testing.B) {
		up := newUpstream(b, "svc")
		cfg := &Config{Upstream: up.Addr(), Routes: []RouteConfig{{Key: "svc", Op: 1}}}
		g := New(Options{})
		b.Cleanup(func() { _ = g.Close() })
		if err := g.SetConfig(cfg); err != nil {
			b.Fatal(err)
		}
		srv, err := orb.NewServer("127.0.0.1:0", orb.WithBufPooling())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = srv.Close() })
		g.Serve(srv)
		run(b, dial(b, srv.Addr()), "svc", mixPayload)
	})

	b.Run("fast-tier", func(b *testing.B) {
		up := newUpstream(b, "svc")
		cfg := &Config{Upstream: up.Addr(), Routes: []RouteConfig{{
			Key: "svc", Op: 1,
			Request: &LaneConfig{From: mixDecl(), To: pairDecl()},
			Reply:   &LaneConfig{From: pairDecl(), To: mixDecl()},
		}}}
		g := New(Options{})
		b.Cleanup(func() { _ = g.Close() })
		if err := g.SetConfig(cfg); err != nil {
			b.Fatal(err)
		}
		srv, err := orb.NewServer("127.0.0.1:0", orb.WithBufPooling())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = srv.Close() })
		g.Serve(srv)
		run(b, dial(b, srv.Addr()), "svc", mixPayload)
		if r := g.Stats().Routes[0]; r.FastTier == 0 || r.TreeTier != 0 {
			b.Fatalf("fast=%d tree=%d, benchmark did not stay on the fast tier", r.FastTier, r.TreeTier)
		}
	})

	b.Run("tree-tier", func(b *testing.B) {
		sess := core.NewSession()
		sess.RegisterSemantic("SlopeLine", "SegLine", "slope→seg", func(v value.Value) (value.Value, error) {
			rec, ok := v.(value.Record)
			if !ok || len(rec.Fields) != 2 {
				return nil, fmt.Errorf("want slope/intercept record, got %s", v)
			}
			m := rec.Fields[0].(value.Real).V
			c := rec.Fields[1].(value.Real).V
			pt := func(x float64) value.Value {
				return value.NewRecord(value.Real{V: x}, value.Real{V: m*x + c})
			}
			return value.NewRecord(pt(0), pt(1)), nil
		})
		slope := DeclConfig{Lang: "java", Source: "class SlopeLine { double slope; double intercept; }", Decl: "SlopeLine"}
		seg := DeclConfig{
			Lang: "java",
			Source: `class Pt { double x; double y; }
				class SegLine { Pt a; Pt b; }`,
			Script: "annotate SegLine.a nonnull noalias\nannotate SegLine.b nonnull noalias\n",
			Decl:   "SegLine",
		}
		up := newUpstream(b, "lines")
		cfg := &Config{Upstream: up.Addr(), Routes: []RouteConfig{{
			Key: "lines", Op: 1,
			Request: &LaneConfig{From: slope, To: seg},
		}}}
		g := New(Options{Session: sess})
		b.Cleanup(func() { _ = g.Close() })
		if err := g.SetConfig(cfg); err != nil {
			b.Fatal(err)
		}
		srv, err := orb.NewServer("127.0.0.1:0", orb.WithBufPooling())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = srv.Close() })
		g.Serve(srv)

		sg := New(Options{})
		mtA, err := sg.Lower(&slope)
		if err != nil {
			b.Fatal(err)
		}
		payload, err := wire.Marshal(mtA, value.NewRecord(value.Real{V: 2}, value.Real{V: -1}))
		if err != nil {
			b.Fatal(err)
		}
		run(b, dial(b, srv.Addr()), "lines", payload)
		if r := g.Stats().Routes[0]; r.TreeTier == 0 {
			b.Fatal("benchmark did not exercise the tree tier")
		}
	})
}
