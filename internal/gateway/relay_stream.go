package gateway

// Streaming relay lane: stream-opened calls whose request bodies
// outgrow Options.StreamThreshold relay chunk-by-chunk to the upstream
// instead of buffering, so payload size stops being bounded by gateway
// memory. The fallback matrix, by request-lane shape:
//
//	lane shape                 ≤ threshold        > threshold
//	passthrough (no lane)      buffered relay     raw chunk relay
//	fused, streamable root     buffered relay     stream.Transcoder relay
//	fused, non-list root       buffered relay     buffered under payload cap
//	tree tier (hooks etc.)     buffered relay     buffered under payload cap
//
// "Buffered relay" is the ordinary relay path with its full resilience
// envelope — retries, hedging, admission, byte budgets. The streaming
// paths trade that envelope for constant memory: the open is still
// retried (resil.OpenStream), but once the first chunk is committed
// upstream a failure is terminal and surfaces typed. Against upstreams
// speaking protocol < 3, orb's client-side fallback re-buffers the
// stream under the frame cap transparently and fails fast past it.
//
// Reply legs are buffered under the payload budget in this revision;
// streaming replies ride the same frames and are a client-side change
// only.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/limits"
	"repro/internal/orb"
	"repro/internal/stream"
)

// DefaultStreamThreshold is the request size above which stream-opened
// calls relay chunk-by-chunk (1 MiB).
const DefaultStreamThreshold = 1 << 20

// relayBufPool recycles the chunk shuttle buffers the streaming relay
// reads client chunks into.
var relayBufPool = sync.Pool{New: func() any {
	b := make([]byte, 64<<10)
	return &b
}}

// frontStreamHandler returns the orb stream handler relaying one routed
// object key. Small requests — those that finish within the stream
// threshold — divert to the buffered relay path, so a client that
// always opens streams pays no resilience or tier penalty on ordinary
// payloads.
func (g *Gateway) frontStreamHandler(key string) orb.StreamHandler {
	return func(ctx context.Context, op uint32, in *orb.StreamReader, out *orb.StreamWriter) error {
		r := g.tab.Load().lookup(key, op)
		if r == nil {
			return fmt.Errorf("gateway: no route for object %q op %d", key, op)
		}
		// How much may buffer before the relay must stream: the
		// threshold when the request lane can stream, the full payload
		// budget when it cannot (tree tier and non-list fused lanes have
		// no chunk-at-a-time form).
		canStream := g.opts.StreamThreshold >= 0 &&
			(r.req == nil || (r.req.xc != nil && r.req.xc.SeqStreamable()))
		limit := g.opts.StreamThreshold
		if !canStream {
			limit = g.budget.MaxBytes
		}
		prefix, eof, err := readUpTo(in, limit)
		if err != nil {
			g.canceled.Add(1)
			return err
		}
		if eof {
			reply, err := g.relay(ctx, r, prefix)
			if err != nil {
				return err
			}
			return writeReply(out, reply)
		}
		if !canStream {
			r.c.requests.Add(1)
			r.c.budgetRejects.Add(1)
			return limits.Exceededf("gateway: streamed request over %d bytes needs a streamable request lane", limit)
		}
		return g.relayStream(ctx, r, prefix, in, out)
	}
}

// readUpTo buffers stream input until EOF or more than limit bytes are
// pending, reporting whether the stream ended within the limit.
func readUpTo(in *orb.StreamReader, limit int) ([]byte, bool, error) {
	bp := relayBufPool.Get().(*[]byte)
	defer relayBufPool.Put(bp)
	var buf []byte
	for len(buf) <= limit {
		n, err := in.Read(*bp)
		buf = append(buf, (*bp)[:n]...)
		if err == io.EOF {
			return buf, true, nil
		}
		if err != nil {
			return nil, false, err
		}
	}
	return buf, false, nil
}

// writeReply hands a buffered reply to the stream's send side.
func writeReply(out *orb.StreamWriter, reply []byte) error {
	if len(reply) == 0 {
		return nil
	}
	_, err := out.Write(reply)
	return err
}

// relayStream serves one over-threshold streamed call: admit, open the
// upstream stream (retried — nothing is committed yet), forward the
// buffered prefix plus every further chunk through the request lane,
// then buffer and transcode the reply leg under the payload budget.
func (g *Gateway) relayStream(ctx context.Context, r *route, prefix []byte, in *orb.StreamReader, out *orb.StreamWriter) error {
	r.c.requests.Add(1)
	release, err := g.admitRequest(r.c)
	if err != nil {
		return err
	}
	defer release()
	g.inFlight.Add(1)
	defer g.inFlight.Add(-1)
	r.c.streamed.Add(1)

	sc, done, err := r.up.openStream(ctx, r.rk, r.upKey, r.upOp)
	if err != nil {
		return g.mapUpstreamErr(ctx, r, err)
	}
	var finalErr error
	defer func() { done(finalErr) }()
	defer func() { _ = sc.Close() }()

	// Drain the reply leg concurrently with the request leg: an upstream
	// that converts chunk-at-a-time emits reply bytes while it is still
	// consuming the request, and letting them sit would deadlock against
	// flow control once they outgrow the reply window.
	type replyRes struct {
		body []byte
		err  error
	}
	repCh := make(chan replyRes, 1)
	go func() {
		body, err := readReplyCapped(sc, g.budget.MaxBytes)
		repCh <- replyRes{body, err}
	}()

	if err := g.forwardRequest(ctx, r, sc, prefix, in); err != nil {
		finalErr = err
		return err
	}

	res := <-repCh
	reply, err := res.body, res.err
	if err != nil {
		if errors.Is(err, limits.ErrBudget) {
			r.c.budgetRejects.Add(1)
			finalErr = err
			return err
		}
		finalErr = err
		return g.mapUpstreamErr(ctx, r, err)
	}
	if r.rep != nil {
		if reply, err = g.runLane(r, r.rep, reply); err != nil {
			finalErr = err
			return fmt.Errorf("gateway: reply transcode: %w", err)
		}
	}
	return writeReply(out, reply)
}

// forwardRequest pushes the request body upstream: raw chunks for
// passthrough routes, through a pooled stream.Transcoder for fused
// streamable lanes. Client-leg read errors count as cancellations;
// upstream write errors map like any failed upstream leg.
func (g *Gateway) forwardRequest(ctx context.Context, r *route, sc *orb.StreamCall, prefix []byte, in *orb.StreamReader) error {
	var eng *stream.Transcoder
	var xns int64 // transcode time, excluding upstream writes
	if r.req != nil {
		eng = stream.New(r.req.xc, stream.Options{MaxBuffer: g.budget.MaxBytes})
		defer eng.Release()
	}
	push := func(p []byte) error {
		if eng == nil {
			if len(p) == 0 {
				return nil
			}
			if _, err := sc.Write(p); err != nil {
				return g.mapUpstreamErr(ctx, r, err)
			}
			return nil
		}
		t0 := time.Now()
		err := eng.Push(p)
		outB := eng.Take()
		xns += time.Since(t0).Nanoseconds()
		if err != nil {
			return fmt.Errorf("gateway: request transcode: %w", err)
		}
		if len(outB) > 0 {
			if _, err := sc.Write(outB); err != nil {
				return g.mapUpstreamErr(ctx, r, err)
			}
		}
		return nil
	}
	if err := push(prefix); err != nil {
		return err
	}
	bp := relayBufPool.Get().(*[]byte)
	defer relayBufPool.Put(bp)
	for {
		n, err := in.Read(*bp)
		if n > 0 {
			if perr := push((*bp)[:n]); perr != nil {
				return perr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			// The client leg died mid-stream: cancel, not upstream fault.
			g.canceled.Add(1)
			return err
		}
	}
	if eng != nil {
		t0 := time.Now()
		tail, err := eng.Finish()
		xns += time.Since(t0).Nanoseconds()
		r.c.transcodeNs.Add(xns)
		if err != nil {
			return fmt.Errorf("gateway: request transcode: %w", err)
		}
		r.c.fastTier.Add(1)
		if len(tail) > 0 {
			if _, err := sc.Write(tail); err != nil {
				return g.mapUpstreamErr(ctx, r, err)
			}
		}
	}
	if err := sc.CloseSend(); err != nil {
		return g.mapUpstreamErr(ctx, r, err)
	}
	return nil
}

// readReplyCapped buffers the upstream reply leg, failing with a typed
// budget error past the payload cap.
func readReplyCapped(sc *orb.StreamCall, maxBytes int) ([]byte, error) {
	bp := relayBufPool.Get().(*[]byte)
	defer relayBufPool.Put(bp)
	var reply []byte
	for {
		n, err := sc.Read(*bp)
		reply = append(reply, (*bp)[:n]...)
		if len(reply) > maxBytes {
			return nil, limits.Exceededf("gateway: reply payload of more than %d bytes", maxBytes)
		}
		if err == io.EOF {
			return reply, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
