package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/limits"
	"repro/internal/mtype"
	"repro/internal/orb"
	"repro/internal/resil"
	"repro/internal/value"
	"repro/internal/wire"
)

// The fast-tier fixture: two C structs whose fields are permuted, so
// the pair is equivalent and the plan fuses into a wire transcoder.
const (
	mixSrc  = "typedef struct { float r; int n; } mix;"
	pairSrc = "typedef struct { int count; float ratio; } pair;"
)

func mixDecl() DeclConfig  { return DeclConfig{Lang: "c", Source: mixSrc, Decl: "mix"} }
func pairDecl() DeclConfig { return DeclConfig{Lang: "c", Source: pairSrc, Decl: "pair"} }

// lowerDecl lowers a DeclConfig in a throwaway session, for building
// oracle payloads in tests.
func lowerDecl(t testing.TB, d DeclConfig) *mtype.Type {
	t.Helper()
	g := New(Options{})
	mt, err := g.Lower(&d)
	if err != nil {
		t.Fatal(err)
	}
	return mt
}

// upstreamEcho starts an orb server exporting key, answering every op
// by validating the body against ty (the declaration the upstream
// expects) and echoing it back.
func upstreamEcho(t *testing.T, key string, ty *mtype.Type) *orb.Server {
	t.Helper()
	s, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	s.Register(key, func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		if _, err := wire.Unmarshal(ty, body); err != nil {
			return nil, fmt.Errorf("upstream got bytes it cannot decode: %w", err)
		}
		return body, nil
	})
	return s
}

// startGateway builds a gateway over cfg, serves it on its own orb
// listener, and returns both.
func startGateway(t *testing.T, cfg *Config, opts Options) (*Gateway, *orb.Server) {
	t.Helper()
	g := New(opts)
	t.Cleanup(func() { _ = g.Close() })
	if err := g.SetConfig(cfg); err != nil {
		t.Fatal(err)
	}
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	g.Serve(srv)
	return g, srv
}

func dialOrb(t *testing.T, addr string) *orb.Client {
	t.Helper()
	c, err := orb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// oracle computes the reference bytes for one lane: decode src, convert
// through a fresh session, encode dst.
func oracle(t *testing.T, from, to DeclConfig, payload []byte) []byte {
	t.Helper()
	g := New(Options{})
	l, err := func() (*lane, error) {
		g.mu.Lock()
		defer g.mu.Unlock()
		l, _, err := g.lane(&from, &to)
		return l, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	mtF := l.src
	v, err := wire.Unmarshal(mtF, payload)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := l.conv.Convert(v)
	if err != nil {
		t.Fatal(err)
	}
	out, err := wire.Marshal(l.dst, cv)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEndToEndFastTier: a client marshalling declaration A (mix) calls
// through the gateway to an upstream expecting declaration B (pair).
// The request is transcoded A→B, the echoed reply B→A, and the bytes
// the client gets back match the tree-engine oracle exactly. Both lanes
// must be served by the fused fast tier.
func TestEndToEndFastTier(t *testing.T) {
	mtB := lowerDecl(t, pairDecl())
	up := upstreamEcho(t, "svc", mtB)

	cfg := &Config{
		Upstream: up.Addr(),
		Routes: []RouteConfig{{
			Name:    "mix-to-pair",
			Key:     "svc",
			Op:      7,
			Request: &LaneConfig{From: mixDecl(), To: pairDecl()},
			Reply:   &LaneConfig{From: pairDecl(), To: mixDecl()},
		}},
	}
	g, srv := startGateway(t, cfg, Options{})

	mtA := lowerDecl(t, mixDecl())
	in := value.NewRecord(value.Real{V: 1.5}, value.NewInt(7))
	payload, err := wire.Marshal(mtA, in)
	if err != nil {
		t.Fatal(err)
	}

	c := dialOrb(t, srv.Addr())
	got, err := c.Invoke("svc", 7, payload)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: A→B through the tree engine, then B→A back.
	fwd := oracle(t, mixDecl(), pairDecl(), payload)
	want := oracle(t, pairDecl(), mixDecl(), fwd)
	if !bytes.Equal(got, want) {
		t.Fatalf("gateway bytes % x, oracle % x", got, want)
	}

	st := g.Stats()
	if len(st.Routes) != 1 {
		t.Fatalf("routes = %d, want 1", len(st.Routes))
	}
	r := st.Routes[0]
	if r.Name != "mix-to-pair" || r.Requests != 1 {
		t.Errorf("route stats = %+v, want 1 request on mix-to-pair", r)
	}
	if r.FastTier != 2 || r.TreeTier != 0 {
		t.Errorf("fast=%d tree=%d, want both lanes on the fast tier (2/0)", r.FastTier, r.TreeTier)
	}
	if st.LaneCompiles != 2 {
		t.Errorf("LaneCompiles = %d, want 2 (one per direction)", st.LaneCompiles)
	}

	// The same snapshot must round-trip the admin protocol.
	ac := NewClient(dialOrb(t, srv.Addr()))
	remote, err := ac.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Routes) != 1 || remote.Routes[0].FastTier != 2 {
		t.Errorf("admin stats = %+v, want fast=2", remote.Routes)
	}
	if len(remote.Upstreams) != 1 || remote.Upstreams[0].Dials < 1 {
		t.Errorf("admin upstream stats = %+v, want ≥ 1 dial", remote.Upstreams)
	}
	h, err := ac.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Ready || h.Routes != 1 || h.Lanes != 2 {
		t.Errorf("health = %+v, want ready with 1 route / 2 lanes", h)
	}
}

// TestEndToEndTreeTier: a route whose request lane needs a semantic
// hook cannot be fused; the gateway must serve it through the tree
// engine and say so in the counters.
func TestEndToEndTreeTier(t *testing.T) {
	sess := core.NewSession()
	sess.RegisterSemantic("SlopeLine", "SegLine", "slope→seg", func(v value.Value) (value.Value, error) {
		rec, ok := v.(value.Record)
		if !ok || len(rec.Fields) != 2 {
			return nil, fmt.Errorf("want slope/intercept record, got %s", v)
		}
		m := rec.Fields[0].(value.Real).V
		c := rec.Fields[1].(value.Real).V
		pt := func(x float64) value.Value {
			return value.NewRecord(value.Real{V: x}, value.Real{V: m*x + c})
		}
		return value.NewRecord(pt(0), pt(1)), nil
	})

	slope := DeclConfig{Lang: "java", Source: "class SlopeLine { double slope; double intercept; }", Decl: "SlopeLine"}
	seg := DeclConfig{
		Lang: "java",
		Source: `class Pt { double x; double y; }
			class SegLine { Pt a; Pt b; }`,
		Script: "annotate SegLine.a nonnull noalias\nannotate SegLine.b nonnull noalias\n",
		Decl:   "SegLine",
	}

	segG := New(Options{})
	mtB, err := segG.Lower(&seg)
	if err != nil {
		t.Fatal(err)
	}
	up := upstreamEcho(t, "lines", mtB)

	cfg := &Config{
		Upstream: up.Addr(),
		Routes: []RouteConfig{{
			Key:     "lines",
			Op:      1,
			Request: &LaneConfig{From: slope, To: seg},
		}},
	}
	g, srv := startGateway(t, cfg, Options{Session: sess})

	slopeG := New(Options{})
	mtA, err := slopeG.Lower(&slope)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.Marshal(mtA, value.NewRecord(value.Real{V: 2}, value.Real{V: -1}))
	if err != nil {
		t.Fatal(err)
	}

	c := dialOrb(t, srv.Addr())
	got, err := c.Invoke("lines", 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	// No reply lane: the client receives the upstream's SegLine bytes.
	v, err := wire.Unmarshal(mtB, got)
	if err != nil {
		t.Fatalf("reply is not a SegLine payload: %v", err)
	}
	seg2, ok := v.(value.Record)
	if !ok || len(seg2.Fields) != 2 {
		t.Fatalf("reply value = %s", v)
	}

	st := g.Stats()
	r := st.Routes[0]
	if r.TreeTier != 1 || r.FastTier != 0 {
		t.Errorf("tree=%d fast=%d, want the hooked lane on the tree tier (1/0)", r.TreeTier, r.FastTier)
	}
	if st.LaneUnsupported != 1 {
		t.Errorf("LaneUnsupported = %d, want 1", st.LaneUnsupported)
	}
}

// TestPassthroughRoute: a route with no lanes forwards bytes untouched
// and counts passthrough.
func TestPassthroughRoute(t *testing.T) {
	up, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = up.Close() })
	up.Register("raw", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })

	cfg := &Config{
		Upstream: up.Addr(),
		Routes:   []RouteConfig{{Key: "raw", Op: 0}},
	}
	g, srv := startGateway(t, cfg, Options{})

	c := dialOrb(t, srv.Addr())
	body := []byte{1, 2, 3, 4, 5}
	got, err := c.Invoke("raw", 0, body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("passthrough reply = % x", got)
	}
	if p := g.Stats().Routes[0].Passthrough; p != 1 {
		t.Errorf("passthrough = %d, want 1", p)
	}
}

// TestRouteRewrite: upstream_key / upstream_op retarget the upstream
// leg while clients keep their own key and op.
func TestRouteRewrite(t *testing.T) {
	up, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = up.Close() })
	up.Register("v2", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		if op != 42 {
			return nil, fmt.Errorf("upstream saw op %d", op)
		}
		return []byte("ok"), nil
	})

	newOp := uint32(42)
	cfg := &Config{
		Upstream: up.Addr(),
		Routes: []RouteConfig{{
			Key: "v1", Op: 1, UpstreamKey: "v2", UpstreamOp: &newOp,
		}},
	}
	_, srv := startGateway(t, cfg, Options{})

	c := dialOrb(t, srv.Addr())
	got, err := c.Invoke("v1", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok" {
		t.Fatalf("reply = %q", got)
	}
}

// TestHotReload: installing a new config retires routes whose keys are
// gone, adds new ones without dropping the client connection, reuses
// compiled lanes by fingerprint, and keeps counters for surviving
// routes.
func TestHotReload(t *testing.T) {
	mtB := lowerDecl(t, pairDecl())
	up := upstreamEcho(t, "svc", mtB)
	for _, k := range []string{"old", "new"} {
		up.Register(k, func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })
	}

	mkCfg := func(extraKey string) *Config {
		cfg := &Config{
			Upstream: up.Addr(),
			Routes: []RouteConfig{{
				Name:    "stable",
				Key:     "svc",
				Op:      1,
				Request: &LaneConfig{From: mixDecl(), To: pairDecl()},
			}},
		}
		if extraKey != "" {
			cfg.Routes = append(cfg.Routes, RouteConfig{Key: extraKey, Op: 2})
		}
		return cfg
	}

	g, srv := startGateway(t, mkCfg("old"), Options{})
	c := dialOrb(t, srv.Addr())

	mtA := lowerDecl(t, mixDecl())
	payload, err := wire.Marshal(mtA, value.NewRecord(value.Real{V: 3}, value.NewInt(9)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke("svc", 1, payload); err != nil {
		t.Fatal(err)
	}

	compiles := g.Stats().LaneCompiles
	g.SetReloader(func() (*Config, error) { return mkCfg("new"), nil })
	ac := NewClient(dialOrb(t, srv.Addr()))
	n, err := ac.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("reload reported %d routes, want 2", n)
	}

	// Retired key answers with an error; the surviving route still works
	// on the same client connection, its counters intact, its lane
	// reused rather than recompiled.
	if _, err := c.Invoke("old", 2, nil); err == nil {
		t.Error("retired route still answers")
	}
	if _, err := c.Invoke("new", 2, nil); err != nil {
		t.Errorf("new route: %v", err)
	}
	if _, err := c.Invoke("svc", 1, payload); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	for _, r := range st.Routes {
		if r.Name == "stable" && r.Requests != 2 {
			t.Errorf("stable route requests = %d after reload, want 2 (counters must survive)", r.Requests)
		}
	}
	if st.LaneCompiles != compiles {
		t.Errorf("reload recompiled lanes (%d → %d), want fingerprint reuse", compiles, st.LaneCompiles)
	}
	if st.LaneReuses < 1 {
		t.Errorf("LaneReuses = %d, want ≥ 1", st.LaneReuses)
	}
}

// TestReloadFailureKeepsTable: a config that fails to compile must
// leave the old table serving.
func TestReloadFailureKeepsTable(t *testing.T) {
	up, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = up.Close() })
	up.Register("raw", func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil })

	cfg := &Config{Upstream: up.Addr(), Routes: []RouteConfig{{Key: "raw", Op: 0}}}
	g, srv := startGateway(t, cfg, Options{})

	bad := &Config{
		Upstream: up.Addr(),
		Routes: []RouteConfig{{
			Key: "raw", Op: 0,
			// Incompatible pair: a float record vs a string-bearing one.
			Request: &LaneConfig{
				From: DeclConfig{Lang: "c", Source: "typedef struct { float x; } a;", Decl: "a"},
				To:   DeclConfig{Lang: "c", Source: "typedef struct { char *s; } b;", Decl: "b"},
			},
		}},
	}
	if err := g.SetConfig(bad); err == nil {
		t.Fatal("incompatible route compiled")
	}
	c := dialOrb(t, srv.Addr())
	if _, err := c.Invoke("raw", 0, []byte("x")); err != nil {
		t.Errorf("old table stopped serving after failed reload: %v", err)
	}
}

// TestBudgetAndAdmission: oversized payloads are refused with a typed
// budget error; a saturated gateway sheds with orb.ErrOverloaded.
func TestBudgetAndAdmission(t *testing.T) {
	release := make(chan struct{})
	up, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = up.Close() })
	up.Register("slow", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		<-release
		return body, nil
	})

	cfg := &Config{Upstream: up.Addr(), Routes: []RouteConfig{{Key: "slow", Op: 0}}}
	g, srv := startGateway(t, cfg, Options{
		MaxInFlight: 1,
		AdmitWait:   time.Millisecond,
		MaxPayload:  64,
	})

	c := dialOrb(t, srv.Addr())
	if _, err := c.Invoke("slow", 0, make([]byte, 65)); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized payload: err = %v, want budget refusal", err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c2, err := orb.Dial(srv.Addr())
		if err != nil {
			return
		}
		defer c2.Close()
		_, _ = c2.Invoke("slow", 0, nil) // parks in the upstream handler
	}()
	// Wait for the first call to occupy the admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().InFlight == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_, err = c.Invoke("slow", 0, nil)
	if !errors.Is(err, orb.ErrOverloaded) {
		t.Errorf("saturated gateway: err = %v, want ErrOverloaded", err)
	}
	if g.Stats().Sheds < 1 || g.Stats().Routes[0].Sheds < 1 {
		t.Error("shed not counted globally and per route")
	}
	close(release)
	wg.Wait()

	if r := g.Stats().Routes[0]; r.BudgetRejects < 1 {
		t.Errorf("BudgetRejects = %d, want ≥ 1", r.BudgetRejects)
	}
	if !errors.Is(limits.Exceededf("x"), limits.ErrBudget) {
		t.Fatal("sanity: Exceededf not typed")
	}
}

// TestEndToEndThroughChaos repeats the fast-tier round trip with the
// upstream leg behind a chaos proxy injecting latency and periodic
// connection resets. The gateway's resil pool must absorb the faults:
// every call completes (or fails with a typed error), nothing
// deadlocks, and the pool never exceeds its connection bound.
func TestEndToEndThroughChaos(t *testing.T) {
	mtB := lowerDecl(t, pairDecl())
	up := upstreamEcho(t, "svc", mtB)

	px, err := chaos.New("127.0.0.1:0", up.Addr(), chaos.Faults{
		Latency:    2 * time.Millisecond,
		Jitter:     time.Millisecond,
		ChunkSize:  16,
		ResetAfter: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = px.Close() })

	cfg := &Config{
		Upstream: px.Addr(),
		Routes: []RouteConfig{{
			Key:     "svc",
			Op:      7,
			Request: &LaneConfig{From: mixDecl(), To: pairDecl()},
			Reply:   &LaneConfig{From: pairDecl(), To: mixDecl()},
		}},
	}
	const poolSize = 4
	g, srv := startGateway(t, cfg, Options{
		Upstream: resil.Options{
			PoolSize:    poolSize,
			CallTimeout: 5 * time.Second,
			MaxAttempts: 6,
		},
	})

	mtA := lowerDecl(t, mixDecl())
	payload, err := wire.Marshal(mtA, value.NewRecord(value.Real{V: 1.5}, value.NewInt(7)))
	if err != nil {
		t.Fatal(err)
	}
	fwd := oracle(t, mixDecl(), pairDecl(), payload)
	want := oracle(t, pairDecl(), mixDecl(), fwd)

	const workers, calls = 4, 8
	errs := make(chan error, workers*calls)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := orb.Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < calls; i++ {
				got, err := c.Invoke("svc", 7, payload)
				if err != nil {
					errs <- fmt.Errorf("call %d: %w", i, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("call %d: bytes diverged", i)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("gateway deadlocked under chaos")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := g.Stats()
	if len(st.Upstreams) != 1 {
		t.Fatalf("upstreams = %d", len(st.Upstreams))
	}
	u := st.Upstreams[0]
	if u.Conns > poolSize {
		t.Errorf("pool holds %d conns, bound is %d — upstream connections leaked", u.Conns, poolSize)
	}
	if px.Stats().Resets < 1 {
		t.Skip("chaos proxy injected no resets on this run")
	}
	if u.Dials <= 1 {
		t.Errorf("dials = %d after %d resets, want redials", u.Dials, px.Stats().Resets)
	}
}

// goMixSrc is the Go spelling of the fast-tier fixture: field order
// matches mix, so against pair the comparer still has to commute.
const goMixSrc = "package p\n\ntype Mix struct {\n\tR float32\n\tN int32\n}\n"

func goMixDecl() DeclConfig { return DeclConfig{Lang: "go", Source: goMixSrc, Decl: "Mix"} }

// TestEndToEndGoEndpoint: a route with a Go-declared client endpoint —
// clients marshal against the Go struct, the upstream expects the C
// pair, and both lanes transcode oracle-identically.
func TestEndToEndGoEndpoint(t *testing.T) {
	mtB := lowerDecl(t, pairDecl())
	up := upstreamEcho(t, "gosvc", mtB)

	cfg := &Config{
		Upstream: up.Addr(),
		Routes: []RouteConfig{{
			Name:    "go-to-pair",
			Key:     "gosvc",
			Op:      3,
			Request: &LaneConfig{From: goMixDecl(), To: pairDecl()},
			Reply:   &LaneConfig{From: pairDecl(), To: goMixDecl()},
		}},
	}
	g, srv := startGateway(t, cfg, Options{})

	mtA := lowerDecl(t, goMixDecl())
	in := value.NewRecord(value.Real{V: 1.5}, value.NewInt(7))
	payload, err := wire.Marshal(mtA, in)
	if err != nil {
		t.Fatal(err)
	}

	c := dialOrb(t, srv.Addr())
	got, err := c.Invoke("gosvc", 3, payload)
	if err != nil {
		t.Fatal(err)
	}

	fwd := oracle(t, goMixDecl(), pairDecl(), payload)
	want := oracle(t, pairDecl(), goMixDecl(), fwd)
	if !bytes.Equal(got, want) {
		t.Fatalf("gateway bytes % x, oracle % x", got, want)
	}

	st := g.Stats()
	if len(st.Routes) != 1 || st.Routes[0].Requests != 1 {
		t.Fatalf("route stats = %+v", st.Routes)
	}
}
