package gateway

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mtype"
	"repro/internal/orb"
	"repro/internal/resil"
	"repro/internal/value"
	"repro/internal/wire"
)

// The streaming fixture: IDL sequences of permuted records, so the
// request lane fuses into a transcoder with a streamable sequence root.
const (
	batchASrc = "struct Rec { long n; double x; };\ntypedef sequence<Rec> Batch;"
	batchBSrc = "struct Rec { double x; long n; };\ntypedef sequence<Rec> Batch;"
)

func batchADecl() DeclConfig { return DeclConfig{Lang: "idl", Source: batchASrc, Decl: "Batch"} }
func batchBDecl() DeclConfig { return DeclConfig{Lang: "idl", Source: batchBSrc, Decl: "Batch"} }

// batchPayload marshals n records of the A shape.
func batchPayload(t *testing.T, mtA *mtype.Type, n int) []byte {
	t.Helper()
	recs := make([]value.Value, n)
	for i := range recs {
		recs[i] = value.NewRecord(value.NewInt(int64(i)), value.Real{V: float64(i) + 0.5})
	}
	payload, err := wire.Marshal(mtA, value.FromSlice(recs))
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// upstreamStreamEcho starts an orb server echoing both buffered calls
// and streams on key, validating buffered bodies against ty.
func upstreamStreamEcho(t *testing.T, key string, ty *mtype.Type) *orb.Server {
	t.Helper()
	s := upstreamEcho(t, key, ty)
	s.RegisterStream(key, func(ctx context.Context, op uint32, in *orb.StreamReader, out *orb.StreamWriter) error {
		buf := make([]byte, 64<<10)
		for {
			n, err := in.Read(buf)
			if n > 0 {
				if _, werr := out.Write(buf[:n]); werr != nil {
					return werr
				}
			}
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
		}
	})
	return s
}

// streamThrough opens a stream on the gateway, writes payload in uneven
// splits, and returns the reply body. Payload and reply must each fit a
// credit window for the sequential write-then-read to be deadlock-free.
func streamThrough(t *testing.T, c *orb.Client, key string, op uint32, payload []byte) ([]byte, error) {
	t.Helper()
	sc, err := c.OpenStream(context.Background(), key, op)
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	splits := []int{1, 7, 4096, 13, 32 << 10}
	for off, i := 0, 0; off < len(payload); i++ {
		n := splits[i%len(splits)]
		if off+n > len(payload) {
			n = len(payload) - off
		}
		if _, err := sc.Write(payload[off : off+n]); err != nil {
			return nil, err
		}
		off += n
	}
	if err := sc.CloseSend(); err != nil {
		return nil, err
	}
	return io.ReadAll(sc)
}

// TestStreamRelayEndToEnd: a stream-opened call whose body outgrows the
// threshold relays chunk-by-chunk through the fused request lane, and
// the bytes the client reads back match the tree-engine oracle.
func TestStreamRelayEndToEnd(t *testing.T) {
	mtB := lowerDecl(t, batchBDecl())
	up := upstreamStreamEcho(t, "svc", mtB)

	cfg := &Config{
		Upstream: up.Addr(),
		Routes: []RouteConfig{{
			Name:    "batch",
			Key:     "svc",
			Op:      7,
			Request: &LaneConfig{From: batchADecl(), To: batchBDecl()},
			Reply:   &LaneConfig{From: batchBDecl(), To: batchADecl()},
		}},
	}
	g, srv := startGateway(t, cfg, Options{StreamThreshold: 4 << 10})

	mtA := lowerDecl(t, batchADecl())
	payload := batchPayload(t, mtA, 8192) // ~128 KiB, well over the 4 KiB threshold

	c := dialOrb(t, srv.Addr())
	got, err := streamThrough(t, c, "svc", 7, payload)
	if err != nil {
		t.Fatal(err)
	}

	fwd := oracle(t, batchADecl(), batchBDecl(), payload)
	want := oracle(t, batchBDecl(), batchADecl(), fwd)
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed reply diverged from oracle: %d vs %d bytes", len(got), len(want))
	}

	st := g.Stats()
	r := st.Routes[0]
	if r.Streamed != 1 {
		t.Errorf("streamed = %d, want 1", r.Streamed)
	}
	if r.Requests != 1 {
		t.Errorf("requests = %d, want 1", r.Requests)
	}
	if r.FastTier != 2 {
		t.Errorf("fast tier = %d, want 2 (streamed request lane + buffered reply lane)", r.FastTier)
	}
}

// TestStreamUnderThresholdDiverts: a stream-opened call that finishes
// within the threshold takes the ordinary buffered relay — no streamed
// count, full resilience.
func TestStreamUnderThresholdDiverts(t *testing.T) {
	mtB := lowerDecl(t, batchBDecl())
	up := upstreamStreamEcho(t, "svc", mtB)

	cfg := &Config{
		Upstream: up.Addr(),
		Routes: []RouteConfig{{
			Key:     "svc",
			Op:      7,
			Request: &LaneConfig{From: batchADecl(), To: batchBDecl()},
			Reply:   &LaneConfig{From: batchBDecl(), To: batchADecl()},
		}},
	}
	g, srv := startGateway(t, cfg, Options{}) // default 1 MiB threshold

	mtA := lowerDecl(t, batchADecl())
	payload := batchPayload(t, mtA, 16) // a few hundred bytes

	c := dialOrb(t, srv.Addr())
	got, err := streamThrough(t, c, "svc", 7, payload)
	if err != nil {
		t.Fatal(err)
	}
	fwd := oracle(t, batchADecl(), batchBDecl(), payload)
	want := oracle(t, batchBDecl(), batchADecl(), fwd)
	if !bytes.Equal(got, want) {
		t.Fatal("diverted reply diverged from oracle")
	}
	r := g.Stats().Routes[0]
	if r.Streamed != 0 {
		t.Errorf("streamed = %d, want 0 for a sub-threshold body", r.Streamed)
	}
	if r.Requests != 1 {
		t.Errorf("requests = %d, want 1", r.Requests)
	}
}

// TestStreamNonStreamableLaneOverCap: a record-rooted lane has no
// chunk-at-a-time form, so an over-budget streamed body must be shed
// with a typed budget rejection instead of buffering without bound.
func TestStreamNonStreamableLaneOverCap(t *testing.T) {
	mtB := lowerDecl(t, pairDecl())
	up := upstreamStreamEcho(t, "svc", mtB)

	cfg := &Config{
		Upstream: up.Addr(),
		Routes: []RouteConfig{{
			Key:     "svc",
			Op:      7,
			Request: &LaneConfig{From: mixDecl(), To: pairDecl()},
			Reply:   &LaneConfig{From: pairDecl(), To: mixDecl()},
		}},
	}
	g, srv := startGateway(t, cfg, Options{MaxPayload: 8 << 10, StreamThreshold: 1 << 10})

	c := dialOrb(t, srv.Addr())
	sc, err := c.OpenStream(context.Background(), "svc", 7)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	junk := bytes.Repeat([]byte{0xab}, 4<<10)
	var werr error
	for i := 0; i < 8 && werr == nil; i++ { // 32 KiB, past the 8 KiB payload cap
		_, werr = sc.Write(junk)
	}
	if werr == nil {
		werr = sc.CloseSend()
	}
	_, rerr := io.ReadAll(sc)
	err = rerr
	if err == nil {
		err = werr
	}
	if err == nil {
		t.Fatal("over-cap stream on a non-streamable lane succeeded")
	}
	var re *orb.RemoteError
	if !errors.As(err, &re) || !strings.Contains(err.Error(), "streamable request lane") {
		t.Fatalf("err = %v, want remote budget rejection naming the lane constraint", err)
	}
	if r := g.Stats().Routes[0]; r.BudgetRejects != 1 {
		t.Errorf("budget rejects = %d, want 1", r.BudgetRejects)
	}
}

// TestStreamUpstreamDeathMidStream is the streaming arm of the chaos
// no-leak coverage: the upstream dies after consuming the first chunks
// of a relayed stream. The client must get a typed mid-stream error —
// not a hang — and the gateway must leak neither goroutines nor pooled
// upstream connections.
func TestStreamUpstreamDeathMidStream(t *testing.T) {
	up, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = up.Close() })
	var seen atomic.Int64
	gotEnough := make(chan struct{})
	var once atomic.Bool
	up.RegisterStream("svc", func(ctx context.Context, op uint32, in *orb.StreamReader, out *orb.StreamWriter) error {
		buf := make([]byte, 32<<10)
		for {
			n, err := in.Read(buf)
			if seen.Add(int64(n)) >= 128<<10 && once.CompareAndSwap(false, true) {
				close(gotEnough)
			}
			if err != nil {
				return err
			}
		}
	})

	// A passthrough route: no lanes, raw chunk relay.
	cfg := &Config{
		Upstream: up.Addr(),
		Routes:   []RouteConfig{{Key: "svc", Op: 7}},
	}
	const poolSize = 2
	g, srv := startGateway(t, cfg, Options{
		StreamThreshold: 4 << 10,
		Upstream:        resil.Options{PoolSize: poolSize, CallTimeout: 30 * time.Second},
	})

	baseline := runtime.NumGoroutine()

	c := dialOrb(t, srv.Addr())
	sc, err := c.OpenStream(context.Background(), "svc", 7)
	if err != nil {
		t.Fatal(err)
	}

	// Writer leg: push chunks until the relay fails; the kill happens
	// once the upstream has consumed 128 KiB.
	werrCh := make(chan error, 1)
	go func() {
		chunk := bytes.Repeat([]byte{0x5a}, 32<<10)
		for {
			if _, err := sc.Write(chunk); err != nil {
				werrCh <- err
				return
			}
		}
	}()
	go func() {
		<-gotEnough
		_ = up.Close()
	}()

	readDone := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(sc)
		readDone <- err
	}()
	var rerr error
	select {
	case rerr = <-readDone:
	case <-time.After(30 * time.Second):
		t.Fatal("mid-stream upstream death hung the relay")
	}
	var werr error
	select {
	case werr = <-werrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("write leg never observed the mid-stream failure")
	}
	_ = sc.Close()
	if rerr == nil && werr == nil {
		t.Fatal("stream succeeded although the upstream died mid-relay")
	}
	err = rerr
	if err == nil {
		err = werr
	}
	var re *orb.RemoteError
	if !errors.As(err, &re) && !errors.Is(err, orb.ErrConnClosed) {
		t.Fatalf("mid-stream error = %v (%T), want a typed remote or conn error", err, err)
	}

	// No goroutine leak: the relay's reply-drain goroutine and both
	// stream queues must unwind once the call fails.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, baseline %d — relay leaked", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// No pooled-connection leak past the bound.
	if u := g.Stats().Upstreams[0]; u.Conns > poolSize {
		t.Errorf("upstream pool holds %d conns, bound %d", u.Conns, poolSize)
	}
	if r := g.Stats().Routes[0]; r.Streamed != 1 {
		t.Errorf("streamed = %d, want 1", r.Streamed)
	}
}
