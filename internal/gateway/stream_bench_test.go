package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/mtype"
	"repro/internal/orb"
	"repro/internal/resil"
	"repro/internal/value"
	"repro/internal/wire"
)

// The GiB fixture: 64-byte records (4 longs and 4 doubles interleaved)
// whose fields permute between the endpoints, so every element costs a
// real 8-field shuffle, not a memcpy.
const (
	gibASrc = "struct Rec { long n; double x; long m; double y; long p; double z; long q; double w; };\ntypedef sequence<Rec> Batch;"
	gibBSrc = "struct Rec { double x; long n; double y; long m; double z; long p; double w; long q; };\ntypedef sequence<Rec> Batch;"
)

func gibADecl() DeclConfig { return DeclConfig{Lang: "idl", Source: gibASrc, Decl: "Batch"} }
func gibBDecl() DeclConfig { return DeclConfig{Lang: "idl", Source: gibBSrc, Decl: "Batch"} }

// gibTemplate marshals three identical records of the A shape and
// splits the payload into its 64-byte head (the u32 count plus the
// phase-shifted first element) and the repeating 64-byte element image,
// verifying the stride really is constant from the second element on.
func gibTemplate(t testing.TB, mtA *mtype.Type) (head, elem []byte) {
	t.Helper()
	rec := func() value.Value {
		return value.NewRecord(
			value.NewInt(7), value.Real{V: 1.5},
			value.NewInt(-9), value.Real{V: 2.25},
			value.NewInt(40), value.Real{V: -0.5},
			value.NewInt(1), value.Real{V: 8},
		)
	}
	payload, err := wire.Marshal(mtA, value.FromSlice([]value.Value{rec(), rec(), rec()}))
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 3*64 {
		t.Fatalf("fixture payload = %d bytes, want 3*64", len(payload))
	}
	if !bytes.Equal(payload[64:128], payload[128:192]) {
		t.Fatal("element images differ; the 64-byte stride replication is invalid")
	}
	return payload[:64], payload[64:128]
}

// vmPeakKiB reads the process's peak resident set (VmHWM) in KiB.
func vmPeakKiB(t testing.TB) int64 {
	t.Helper()
	f, err := os.Open("/proc/self/status")
	if err != nil {
		t.Skipf("no /proc/self/status: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "VmHWM:"); ok {
			n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			if err != nil {
				t.Fatalf("parse VmHWM from %q: %v", sc.Text(), err)
			}
			return n
		}
	}
	t.Fatal("no VmHWM in /proc/self/status")
	return 0
}

// TestStreamRelayGiB pushes a ~1 GiB CDR sequence through the gateway's
// streaming relay — client, gateway, and upstream all in this process,
// so the RSS ceiling covers every hop. Gated behind MBIRD_STREAM_1GIB=1
// because it moves 2 GiB over loopback; results are recorded in
// BENCH_stream.json.
//
//	MBIRD_STREAM_1GIB=1 go test -run TestStreamRelayGiB -v ./internal/gateway/
func TestStreamRelayGiB(t *testing.T) {
	if os.Getenv("MBIRD_STREAM_1GIB") == "" {
		t.Skip("set MBIRD_STREAM_1GIB=1 to run the 1 GiB relay")
	}

	// Upstream: drain the stream and ack with the byte total, the shape
	// this revision streams end to end (requests stream; replies buffer).
	up, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = up.Close() })
	up.RegisterStream("svc", func(ctx context.Context, op uint32, in *orb.StreamReader, out *orb.StreamWriter) error {
		var total int64
		buf := make([]byte, 256<<10)
		for {
			n, err := in.Read(buf)
			total += int64(n)
			if err == io.EOF {
				var ack [8]byte
				binary.LittleEndian.PutUint64(ack[:], uint64(total))
				_, werr := out.Write(ack[:])
				return werr
			}
			if err != nil {
				return err
			}
		}
	})

	cfg := &Config{
		Upstream: up.Addr(),
		Routes: []RouteConfig{{
			Key: "svc", Op: 1,
			Request: &LaneConfig{From: gibADecl(), To: gibBDecl()},
		}},
	}
	_, srv := startGateway(t, cfg, Options{
		Upstream: resil.Options{CallTimeout: 10 * time.Minute},
	})

	mtA := lowerDecl(t, gibADecl())
	head, elem := gibTemplate(t, mtA)
	const elems = 1<<24 - 1 // wire.MaxListLen bounds the count
	payloadBytes := int64(elems) * 64
	// What the upstream will count: the B-side image, whose padding
	// phase shifts the total a few bytes off the A side's.
	bProbe, err := wire.Marshal(lowerDecl(t, gibBDecl()), value.FromSlice([]value.Value{
		value.NewRecord(
			value.Real{V: 1}, value.NewInt(1), value.Real{V: 2}, value.NewInt(2),
			value.Real{V: 3}, value.NewInt(3), value.Real{V: 4}, value.NewInt(4),
		),
	}))
	if err != nil {
		t.Fatal(err)
	}
	upstreamBytes := int64(len(bProbe)) + int64(elems-1)*64

	// One shuttle buffer of whole elements, reused for every write.
	const perBuf = 4096
	buf := bytes.Repeat(elem, perBuf)

	c := dialOrb(t, srv.Addr())
	runtime.GC()
	rssBefore := vmPeakKiB(t)

	start := time.Now()
	sc, err := c.OpenStream(context.Background(), "svc", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	binary.LittleEndian.PutUint32(head[:4], elems)
	if _, err := sc.Write(head); err != nil {
		t.Fatal(err)
	}
	for sent := 1; sent < elems; {
		n := perBuf
		if sent+n > elems {
			n = elems - sent
		}
		if _, err := sc.Write(buf[:n*64]); err != nil {
			t.Fatalf("after %d of %d elements: %v", sent, elems, err)
		}
		sent += n
	}
	if err := sc.CloseSend(); err != nil {
		t.Fatal(err)
	}
	ack, err := io.ReadAll(sc)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	rssDelta := vmPeakKiB(t) - rssBefore

	if len(ack) != 8 {
		t.Fatalf("ack = %d bytes, want 8", len(ack))
	}
	if got := int64(binary.LittleEndian.Uint64(ack)); got != upstreamBytes {
		t.Fatalf("upstream consumed %d bytes, want %d", got, upstreamBytes)
	}
	mibPerS := float64(payloadBytes) / (1 << 20) / elapsed.Seconds()
	t.Logf("relayed %d bytes (%d elements) in %v: %.1f MiB/s, peak-RSS delta %d KiB",
		payloadBytes, elems, elapsed.Round(time.Millisecond), mibPerS, rssDelta)
	if rssDelta > 64<<10 {
		t.Errorf("peak-RSS delta %d KiB exceeds the 64 MiB ceiling", rssDelta)
	}
}

// BenchmarkStreamVsBuffered1MiB compares the streaming relay against
// the buffered relay on the same fused route and a 1 MiB echo payload —
// the streamed lane must stay within 2x of the buffered tier.
func BenchmarkStreamVsBuffered1MiB(b *testing.B) {
	up, err := orb.NewServer("127.0.0.1:0", orb.WithBufPooling())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = up.Close() })
	echo := func(ctx context.Context, op uint32, body []byte) ([]byte, error) { return body, nil }
	up.Register("svc", echo)
	up.RegisterStream("svc", func(ctx context.Context, op uint32, in *orb.StreamReader, out *orb.StreamWriter) error {
		buf := make([]byte, 256<<10)
		for {
			n, err := in.Read(buf)
			if n > 0 {
				if _, werr := out.Write(buf[:n]); werr != nil {
					return werr
				}
			}
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
		}
	})

	cfg := &Config{
		Upstream: up.Addr(),
		Routes: []RouteConfig{{
			Key: "svc", Op: 1,
			Request: &LaneConfig{From: gibADecl(), To: gibBDecl()},
		}},
	}
	g := New(Options{StreamThreshold: 64 << 10})
	b.Cleanup(func() { _ = g.Close() })
	if err := g.SetConfig(cfg); err != nil {
		b.Fatal(err)
	}
	srv, err := orb.NewServer("127.0.0.1:0", orb.WithBufPooling())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	g.Serve(srv)

	mtA := lowerDecl(b, gibADecl())
	head, elem := gibTemplate(b, mtA)
	const elems = (1 << 20) / 64 // 1 MiB exactly
	payload := make([]byte, 0, elems*64)
	payload = append(payload, head...)
	for i := 1; i < elems; i++ {
		payload = append(payload, elem...)
	}
	binary.LittleEndian.PutUint32(payload[:4], elems)

	c, err := orb.Dial(srv.Addr(), orb.WithMaxBody(4<<20))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = c.Close() })

	// The echoed reply is the B-side image, whose padding phase shifts
	// its length slightly; one untimed call fixes the expectation.
	warm, err := c.Invoke("svc", 1, payload)
	if err != nil {
		b.Fatal(err)
	}
	wantReply := len(warm)

	b.Run("buffered", func(b *testing.B) {
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reply, err := c.Invoke("svc", 1, payload)
			if err != nil {
				b.Fatal(err)
			}
			if len(reply) != wantReply {
				b.Fatalf("reply = %d bytes, want %d", len(reply), wantReply)
			}
		}
	})
	b.Run("streamed", func(b *testing.B) {
		rbuf := make([]byte, 256<<10)
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc, err := c.OpenStream(context.Background(), "svc", 1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sc.Write(payload); err != nil {
				b.Fatal(err)
			}
			if err := sc.CloseSend(); err != nil {
				b.Fatal(err)
			}
			var got int
			for {
				n, err := sc.Read(rbuf)
				got += n
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			if got != wantReply {
				b.Fatalf("reply = %d bytes, want %d", got, wantReply)
			}
			if err := sc.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	if r := g.Stats().Routes[0]; r.Streamed == 0 {
		b.Fatal("streamed arm never took the streaming relay")
	}
}
