package gateway

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/orb"
	"repro/internal/resil"
)

// echoTrio starts three upstream orb servers that answer with their own
// address, so tests can see which fleet member served each relay.
func echoTrio(t *testing.T) (addrs []string, servers map[string]*orb.Server) {
	t.Helper()
	servers = make(map[string]*orb.Server, 3)
	for i := 0; i < 3; i++ {
		srv, err := orb.NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		addr := srv.Addr()
		srv.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
			return []byte(addr), nil
		})
		addrs = append(addrs, addr)
		servers[addr] = srv
	}
	return addrs, servers
}

// TestGatewayFleetUpstream relays through a comma-separated fleet
// upstream: the route pins to one member while it is healthy, fails
// over when that member dies, and every member shows up in the stats.
func TestGatewayFleetUpstream(t *testing.T) {
	addrs, servers := echoTrio(t)

	g := New(Options{Upstream: resil.Options{
		MaxAttempts: 2,
		CallTimeout: 5 * time.Second,
		DialTimeout: 2 * time.Second,
		BackoffBase: time.Millisecond,
	}})
	t.Cleanup(func() { _ = g.Close() })
	cfg := &Config{Routes: []RouteConfig{{
		Key: "echo", Op: 1,
		Upstream: " " + strings.Join(addrs, ", ") + " ", // sloppy spacing must parse
	}}}
	if err := g.SetConfig(cfg); err != nil {
		t.Fatal(err)
	}
	front, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = front.Close() })
	g.Serve(front)

	cl, err := orb.Dial(front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	// The route key is stable, so a healthy fleet serves every call from
	// the same member (cache affinity on the upstream side).
	first, err := cl.Invoke("echo", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		reply, err := cl.Invoke("echo", 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(reply) != string(first) {
			t.Fatalf("healthy fleet moved the route: %s then %s", first, reply)
		}
	}

	// Kill the serving member: the relay must fail over, not error.
	_ = servers[string(first)].Close()
	reply, err := cl.Invoke("echo", 1, nil)
	if err != nil {
		t.Fatalf("relay with dead member failed: %v", err)
	}
	if string(reply) == string(first) {
		t.Fatal("dead member kept serving")
	}

	// Every fleet member reports individually in the upstream stats.
	st := g.Stats()
	seen := map[string]bool{}
	for _, u := range st.Upstreams {
		seen[u.Addr] = true
	}
	for _, a := range addrs {
		if !seen[a] {
			t.Fatalf("fleet member %s missing from upstream stats: %+v", a, st.Upstreams)
		}
	}
}

// TestGatewayFleetRetiredOnReload swaps a fleet upstream for a single
// endpoint and back; the retired fleet drains instead of erroring, and
// traffic keeps flowing across both reloads.
func TestGatewayFleetRetiredOnReload(t *testing.T) {
	addrs, _ := echoTrio(t)

	g := New(Options{Upstream: resil.Options{
		MaxAttempts: 2, CallTimeout: 5 * time.Second, DialTimeout: 2 * time.Second,
	}})
	t.Cleanup(func() { _ = g.Close() })
	fleetCfg := &Config{Routes: []RouteConfig{{Key: "echo", Op: 1, Upstream: strings.Join(addrs, ",")}}}
	singleCfg := &Config{Routes: []RouteConfig{{Key: "echo", Op: 1, Upstream: addrs[0]}}}
	if err := g.SetConfig(fleetCfg); err != nil {
		t.Fatal(err)
	}
	front, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = front.Close() })
	g.Serve(front)
	cl, err := orb.Dial(front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	for _, cfg := range []*Config{fleetCfg, singleCfg, fleetCfg} {
		if err := g.SetConfig(cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Invoke("echo", 1, nil); err != nil {
			t.Fatalf("relay after reload failed: %v", err)
		}
	}
	g.mu.Lock()
	nFleets := len(g.fleets)
	g.mu.Unlock()
	if nFleets != 1 {
		t.Fatalf("gateway holds %d fleet clients, want 1 (retired fleets must be dropped)", nFleets)
	}
}
