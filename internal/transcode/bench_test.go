package transcode

import (
	"testing"

	"repro/internal/compare"
	"repro/internal/convert"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/wire"
)

func benchFixture(b *testing.B, a, bt *mtype.Type, v value.Value) (*Transcoder, convert.Converter, []byte) {
	b.Helper()
	c := compare.NewComparer(compare.DefaultRules())
	m, ok := c.Equivalent(a, bt)
	if !ok {
		b.Fatalf("no match:\n%s", c.Explain(a, bt, compare.ModeEqual))
	}
	p, err := plan.Build(m)
	if err != nil {
		b.Fatal(err)
	}
	xc, err := Compile(p, a, bt)
	if err != nil {
		b.Fatal(err)
	}
	conv, err := convert.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	src, err := wire.Marshal(a, v)
	if err != nil {
		b.Fatal(err)
	}
	return xc, conv, src
}

// BenchmarkTranscodeVsTree measures the record-permutation workload the
// PR optimizes: a mixed fixed/variable record whose leaves are shuffled
// between the endpoint declarations. The tree path decodes into a
// value.Value, permutes, and re-encodes; the wire path shuffles spans of
// CDR bytes directly.
func BenchmarkTranscodeVsTree(b *testing.B) {
	a := mtype.RecordOf(i32(), i64t(), f64t(), strT(), i16(), f32(), i64t())
	bt := mtype.RecordOf(i16(), f64t(), strT(), i32(), i64t(), i64t(), f32())
	v := value.NewRecord(
		value.NewInt(7), value.NewInt(1<<40), value.Real{V: 3.25},
		str("a moderately sized payload string"), value.NewInt(-9),
		value.Real{V: 1.5}, value.NewInt(-1<<33))
	xc, conv, src := benchFixture(b, a, bt, v)

	b.Run("transcode", func(b *testing.B) {
		var dst []byte
		b.ReportAllocs()
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = xc.TranscodeAppend(dst[:0], src)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, err := convert.TranscodeTree(nil, a, bt, conv, src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTranscodeList measures the bulk sequence path: a long list of
// fixed records collapses to one length-scaled copy on the wire path.
func BenchmarkTranscodeList(b *testing.B) {
	a := mtype.NewList(mtype.RecordOf(i32(), f64t()))
	bt := mtype.NewList(mtype.RecordOf(i32(), f64t()))
	var vs []value.Value
	for i := 0; i < 512; i++ {
		vs = append(vs, value.NewRecord(value.NewInt(int64(i)), value.Real{V: float64(i)}))
	}
	xc, conv, src := benchFixture(b, a, bt, value.FromSlice(vs))

	b.Run("transcode", func(b *testing.B) {
		var dst []byte
		b.ReportAllocs()
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = xc.TranscodeAppend(dst[:0], src)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, err := convert.TranscodeTree(nil, a, bt, conv, src); err != nil {
				b.Fatal(err)
			}
		}
	})
}
