package transcode

import (
	"bytes"
	"errors"
	"math"
	"math/big"
	"testing"

	"repro/internal/compare"
	"repro/internal/convert"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/wire"
)

func i8() *mtype.Type      { return mtype.NewIntegerBits(8, true) }
func i16() *mtype.Type     { return mtype.NewIntegerBits(16, true) }
func i32() *mtype.Type     { return mtype.NewIntegerBits(32, true) }
func i64t() *mtype.Type    { return mtype.NewIntegerBits(64, true) }
func f32() *mtype.Type     { return mtype.NewFloat32() }
func f64t() *mtype.Type    { return mtype.NewFloat64() }
func latin1() *mtype.Type  { return mtype.NewCharacter(mtype.RepLatin1) }
func unicode() *mtype.Type { return mtype.NewCharacter(mtype.RepUnicode) }
func strT() *mtype.Type    { return mtype.NewList(latin1()) }

func str(s string) value.Value {
	var vs []value.Value
	for _, r := range s {
		vs = append(vs, value.Char{R: r})
	}
	return value.FromSlice(vs)
}

func list(vs ...value.Value) value.Value { return value.FromSlice(vs) }

// fixture compiles both engines for a matched pair: the wire transcoder
// under test and the tree-path converter that serves as its oracle.
type fixture struct {
	a, b *mtype.Type
	xc   *Transcoder
	conv convert.Converter
}

func build(t *testing.T, a, b *mtype.Type, subtype bool) *fixture {
	t.Helper()
	c := compare.NewComparer(compare.DefaultRules())
	var m *compare.Match
	var ok bool
	if subtype {
		m, ok = c.Subtype(a, b)
	} else {
		m, ok = c.Equivalent(a, b)
	}
	if !ok {
		t.Fatalf("no match:\n%s", c.Explain(a, b, compare.ModeEqual))
	}
	p, err := plan.Build(m)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	xc, err := Compile(p, a, b)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	conv, err := convert.Compile(p)
	if err != nil {
		t.Fatalf("tree compile: %v", err)
	}
	return &fixture{a: a, b: b, xc: xc, conv: conv}
}

// oracle runs both engines on src and requires agreement: identical
// bytes when the tree path succeeds, an error when the tree path errors.
func (f *fixture) oracle(t *testing.T, src []byte) {
	t.Helper()
	treeOut, treeErr := convert.TranscodeTree(nil, f.a, f.b, f.conv, src)
	xcOut, xcErr := f.xc.Transcode(src)
	if treeErr != nil {
		if xcErr == nil {
			t.Fatalf("tree path errored (%v) but transcoder succeeded on % x", treeErr, src)
		}
		return
	}
	if xcErr != nil {
		t.Fatalf("transcoder error %v on % x (tree path succeeded)", xcErr, src)
	}
	if !bytes.Equal(treeOut, xcOut) {
		t.Fatalf("output mismatch\nsrc:  % x\ntree: % x\nxc:   % x", src, treeOut, xcOut)
	}
}

func (f *fixture) roundTrip(t *testing.T, v value.Value) {
	t.Helper()
	src, err := wire.Marshal(f.a, v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	f.oracle(t, src)
}

func TestPermutedRecord(t *testing.T) {
	a := mtype.RecordOf(i32(), i64t(), f64t(), strT(), i16())
	b := mtype.RecordOf(i16(), f64t(), strT(), i32(), i64t())
	f := build(t, a, b, false)
	f.roundTrip(t, value.NewRecord(
		value.NewInt(7), value.NewInt(1<<40), value.Real{V: 3.25},
		str("hello, wire"), value.NewInt(-9)))
}

func TestIdentityPrefixRecord(t *testing.T) {
	// First three leaves line up; only the tail two swap.
	a := mtype.RecordOf(i32(), i64t(), f64t(), strT(), i16())
	b := mtype.RecordOf(i32(), i64t(), f64t(), i16(), strT())
	f := build(t, a, b, false)
	f.roundTrip(t, value.NewRecord(
		value.NewInt(-5), value.NewInt(123456789), value.Real{V: -0.5},
		str("tail"), value.NewInt(31000)))
}

func TestNestedFlattening(t *testing.T) {
	a := mtype.RecordOf(mtype.RecordOf(i32(), i8()), f64t())
	b := mtype.RecordOf(i8(), mtype.RecordOf(f64t(), i32()))
	f := build(t, a, b, false)
	f.roundTrip(t, value.NewRecord(
		value.NewRecord(value.NewInt(99), value.NewInt(-3)), value.Real{V: 2.5}))
}

func TestWideningSubtype(t *testing.T) {
	a := mtype.RecordOf(i16(), f32(), latin1())
	b := mtype.RecordOf(i64t(), f64t(), unicode())
	f := build(t, a, b, true)
	f.roundTrip(t, value.NewRecord(
		value.NewInt(-1234), value.Real{V: float64(float32(1.75))}, value.Char{R: 'Ø'}))
}

func TestBoundedFieldValidated(t *testing.T) {
	bounded := mtype.NewInteger(big.NewInt(0), big.NewInt(5))
	wider := mtype.NewInteger(big.NewInt(0), big.NewInt(250))
	a := mtype.RecordOf(i32(), bounded, f64t())
	b := mtype.RecordOf(f64t(), wider, i32())
	f := build(t, a, b, true)
	f.roundTrip(t, value.NewRecord(value.NewInt(42), value.NewInt(3), value.Real{V: 9.0}))

	// The bounded leaf must still be range-checked on the wire path:
	// 7 > 5 makes the tree path fail on decode, so the transcoder must
	// fail too.
	var bad []byte
	bad = wire.AppendUint(bad, 0, 4, 42)
	bad = wire.AppendUint(bad, 0, 1, 7)
	bad = wire.AppendUint(bad, 0, 8, math.Float64bits(9.0))
	f.oracle(t, bad)
}

func TestStrings(t *testing.T) {
	f := build(t, strT(), strT(), false)
	f.roundTrip(t, str(""))
	f.roundTrip(t, str("a"))
	f.roundTrip(t, str("the quick brown fox jumps over the lazy dog"))
}

func TestStringWidening(t *testing.T) {
	a := mtype.NewList(latin1())
	b := mtype.NewList(unicode())
	f := build(t, a, b, true)
	f.roundTrip(t, str("wide load"))
}

func TestListOfPermutedRecords(t *testing.T) {
	a := mtype.NewList(mtype.RecordOf(i32(), f32()))
	b := mtype.NewList(mtype.RecordOf(f32(), i32()))
	f := build(t, a, b, false)
	f.roundTrip(t, list(
		value.NewRecord(value.NewInt(1), value.Real{V: 1}),
		value.NewRecord(value.NewInt(2), value.Real{V: 2}),
		value.NewRecord(value.NewInt(3), value.Real{V: 3})))
	f.roundTrip(t, list())
}

func TestListOfLists(t *testing.T) {
	a := mtype.NewList(mtype.NewList(f64t()))
	b := mtype.NewList(mtype.NewList(f64t()))
	f := build(t, a, b, false)
	f.roundTrip(t, list(
		list(value.Real{V: 1.5}, value.Real{V: 2.5}),
		list(),
		list(value.Real{V: -3})))
}

func TestScalarListBulk(t *testing.T) {
	a := mtype.NewList(i32())
	f := build(t, a, mtype.NewList(i32()), false)
	var vs []value.Value
	for i := 0; i < 257; i++ {
		vs = append(vs, value.NewInt(int64(i-128)))
	}
	f.roundTrip(t, value.FromSlice(vs))
}

func TestChoicePermutation(t *testing.T) {
	a := mtype.ChoiceOf(i32(), f64t(), strT())
	b := mtype.ChoiceOf(strT(), i32(), f64t())
	f := build(t, a, b, false)
	f.roundTrip(t, value.Choice{Alt: 0, V: value.NewInt(5)})
	f.roundTrip(t, value.Choice{Alt: 1, V: value.Real{V: 1.25}})
	f.roundTrip(t, value.Choice{Alt: 2, V: str("opt")})
}

func TestOptional(t *testing.T) {
	a := mtype.NewOptional(mtype.RecordOf(i32(), i32()))
	b := mtype.NewOptional(mtype.RecordOf(i32(), i32()))
	f := build(t, a, b, false)
	f.roundTrip(t, value.Null())
	f.roundTrip(t, value.Some(value.NewRecord(value.NewInt(1), value.NewInt(2))))
}

func TestInjection(t *testing.T) {
	a := i32()
	b := mtype.ChoiceOf(f64t(), i32())
	f := build(t, a, b, true)
	f.roundTrip(t, value.NewInt(77))
}

func TestPortCopy(t *testing.T) {
	a := mtype.RecordOf(mtype.NewPort(mtype.RecordOf(i32())), i32())
	b := mtype.RecordOf(i32(), mtype.NewPort(mtype.RecordOf(i32())))
	f := build(t, a, b, false)
	f.roundTrip(t, value.NewRecord(value.Port{Ref: "obj-42"}, value.NewInt(9)))
}

func TestPaddingCanonicalized(t *testing.T) {
	// Identity copy of record(i8, i64): the 7 pad bytes between the
	// fields must come out zero even when the input carries garbage
	// there, because the tree path re-encodes padding as zeros.
	ty := mtype.RecordOf(i8(), i64t())
	f := build(t, ty, ty, false)
	src := []byte{0x7f, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03,
		1, 2, 3, 4, 5, 6, 7, 8}
	f.oracle(t, src)
	out, err := f.xc.Transcode(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		if out[i] != 0 {
			t.Fatalf("pad byte %d not zeroed: % x", i, out)
		}
	}
}

func TestFloat32NaNCanonicalized(t *testing.T) {
	// A signaling NaN bit pattern is quieted by the tree path's
	// float32→float64→float32 round trip; the transcoder must match.
	ty := mtype.RecordOf(f32(), f32())
	f := build(t, ty, ty, false)
	snan := uint32(0x7fa00001)
	var src []byte
	src = wire.AppendUint(src, 0, 4, uint64(snan))
	src = wire.AppendUint(src, 0, 4, uint64(math.Float32bits(1.5)))
	f.oracle(t, src)
}

func TestErrorMirrors(t *testing.T) {
	a := mtype.RecordOf(i32(), f64t(), strT())
	b := mtype.RecordOf(strT(), i32(), f64t())
	f := build(t, a, b, false)
	good, err := wire.Marshal(a, value.NewRecord(value.NewInt(1), value.Real{V: 2}, str("xyz")))
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length, plus trailing garbage.
	for n := 0; n < len(good); n++ {
		f.oracle(t, good[:n])
	}
	f.oracle(t, append(append([]byte(nil), good...), 0xcc))

	// Out-of-range discriminant.
	ch := build(t, mtype.ChoiceOf(i32(), f64t()), mtype.ChoiceOf(f64t(), i32()), false)
	var bad []byte
	bad = wire.AppendUint(bad, 0, 4, 9)
	ch.oracle(t, bad)

	// Out-of-range integer.
	bounded := mtype.NewInteger(big.NewInt(0), big.NewInt(100))
	wider := mtype.NewInteger(big.NewInt(0), big.NewInt(1000))
	ri := build(t, bounded, wider, true)
	ri.oracle(t, []byte{200})

	// Oversized list length.
	ls := build(t, strT(), strT(), false)
	var huge []byte
	huge = wire.AppendUint(huge, 0, 4, wire.MaxListLen+1)
	ls.oracle(t, huge)
}

func TestDepthBudgetMirrored(t *testing.T) {
	ty := i8()
	for i := 0; i < wire.MaxDecodeDepth+5; i++ {
		ty = mtype.RecordOf(ty)
	}
	f := build(t, ty, ty, false)
	f.oracle(t, []byte{1})
}

func TestUnsupportedSemanticFallsBack(t *testing.T) {
	cents := mtype.RecordOf(i64t()).SetTag("cents")
	euros := mtype.RecordOf(i64t()).SetTag("euros")
	a := mtype.RecordOf(cents, f64t())
	b := mtype.RecordOf(euros, f64t())
	c := compare.NewComparer(compare.DefaultRules())
	c.RegisterSemantic("cents", "euros", "cents-to-euros")
	m, ok := c.Equivalent(a, b)
	if !ok {
		t.Fatalf("no match:\n%s", c.Explain(a, b, compare.ModeEqual))
	}
	p, err := plan.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(p, a, b); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Compile = %v, want ErrUnsupported", err)
	}
}

func TestTranscodeAppendAlignmentBase(t *testing.T) {
	a := mtype.RecordOf(i32(), i64t(), strT())
	f := build(t, a, mtype.RecordOf(strT(), i64t(), i32()), false)
	src, err := wire.Marshal(a, value.NewRecord(value.NewInt(3), value.NewInt(4), str("pack")))
	if err != nil {
		t.Fatal(err)
	}
	solo, err := f.xc.Transcode(src)
	if err != nil {
		t.Fatal(err)
	}
	prefixed := []byte{0xaa, 0xbb, 0xcc}
	out, err := f.xc.TranscodeAppend(prefixed, src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:3], prefixed) || !bytes.Equal(out[3:], solo) {
		t.Fatalf("append output differs from standalone: % x vs % x", out, solo)
	}
}

// TestTranscodeAllocs pins the allocation story the PR claims: the
// transcoded path allocates at least 2x less per op than
// decode→convert→encode, and its steady state with a reused output
// buffer is (near) allocation-free.
func TestTranscodeAllocs(t *testing.T) {
	a := mtype.RecordOf(i32(), i64t(), f64t(), strT(), i16())
	b := mtype.RecordOf(i16(), f64t(), strT(), i32(), i64t())
	f := build(t, a, b, false)
	src, err := wire.Marshal(a, value.NewRecord(
		value.NewInt(7), value.NewInt(1<<40), value.Real{V: 3.25},
		str("allocation story"), value.NewInt(-9)))
	if err != nil {
		t.Fatal(err)
	}
	var dst []byte
	if dst, err = f.xc.TranscodeAppend(dst[:0], src); err != nil {
		t.Fatal(err)
	}
	xcAllocs := testing.AllocsPerRun(200, func() {
		dst, _ = f.xc.TranscodeAppend(dst[:0], src)
	})
	treeAllocs := testing.AllocsPerRun(200, func() {
		out, _ := convert.TranscodeTree(nil, f.a, f.b, f.conv, src)
		_ = out
	})
	if xcAllocs > 2 {
		t.Errorf("transcoded path allocates %.1f/op, want ≤ 2", xcAllocs)
	}
	if xcAllocs*2 > treeAllocs {
		t.Errorf("transcoded path %.1f allocs/op vs tree %.1f: want ≥ 2x fewer", xcAllocs, treeAllocs)
	}
}
