package transcode

import (
	"errors"

	"repro/internal/limits"
	"repro/internal/wire"
)

// Sequence streaming: a compiled transcoder whose root pair is
// list-shaped (a length-prefixed CDR sequence on both sides) exposes its
// per-element program so internal/stream can run the conversion
// chunk-at-a-time. The caller owns the count prefix and the element
// windows; SeqStep executes element programs against a window whose
// index 0 is 8-aligned relative to the payload start, which preserves
// every CDR alignment decision (all primitive alignments divide 8, so a
// subtree's byte image depends only on its start offset mod 8).

// SeqStreamable reports whether this pair can be executed
// chunk-at-a-time: the root conversion is sequence-to-sequence and the
// per-element program compiled into the fused subset.
func (t *Transcoder) SeqStreamable() bool { return t.seqElem != nil }

// CheckSeqCount applies the fused list program's length-cap validation
// to a streamed sequence count, so a streaming executor rejects exactly
// the counts the one-shot program would.
func CheckSeqCount(n uint64) error {
	if n > wire.MaxListLen {
		return limits.Exceededf("transcode: list length %d exceeds limit of %d", n, wire.MaxListLen)
	}
	return nil
}

// SeqStep converts as many complete source elements as the window holds,
// up to remaining, appending their output to dst. Both buffers are
// windows into the logical payload: src[0] and dst[0] must sit at
// offsets that are multiples of 8 within their respective payloads (the
// count prefix handled by the caller), so window-relative alignment
// equals payload-relative alignment. off is the read cursor within src.
//
// It returns the extended output, the advanced cursor, and the number of
// elements converted. A source element that extends past the window
// stops the step with a nil error — the caller supplies more bytes and
// calls again; any other element failure (range, discriminant, depth) is
// final and returned with the cursor and output rolled back to the last
// complete element.
func (t *Transcoder) SeqStep(dst, src []byte, off, remaining int) ([]byte, int, int, error) {
	if t.seqElem == nil {
		return dst, off, 0, unsupported("pair is not a streamable sequence")
	}
	done := 0
	if b := t.seqBulk; b != nil && remaining > 0 {
		rs := off % 8
		sz := b.size[rs]
		if rs%b.align == len(dst)%b.align && sz%b.align == 0 && len(b.holes[rs]) == 0 {
			if 1+b.levels > wire.MaxDecodeDepth {
				return dst, off, 0, depthErr()
			}
			if sz == 0 {
				// Zero-size elements (units) complete vacuously.
				return dst, off, remaining, nil
			}
			n := (len(src) - off) / sz
			if n > remaining {
				n = remaining
			}
			if n > 0 {
				total := n * sz
				dst = append(dst, src[off:off+total]...)
				off += total
				done = n
			}
			return dst, off, done, nil
		}
	}
	x := t.pool.Get().(*xctx)
	x.src, x.dst, x.base, x.off, x.depth = src, dst, 0, off, 1
	var err error
	for done < remaining {
		markDst := len(x.dst)
		markOff := x.off
		if e := t.seqElem(x); e != nil {
			// Roll back the partial element. A short read means the
			// window ended inside it — not an error, the element simply
			// needs more input; anything else is final, decided by bytes
			// already present.
			x.dst = x.dst[:markDst]
			x.off = markOff
			if !errors.Is(e, wire.ErrShort) {
				err = e
			}
			break
		}
		done++
	}
	out, newOff := x.dst, x.off
	x.src, x.dst = nil, nil
	x.arena = x.arena[:0]
	t.pool.Put(x)
	return out, newOff, done, err
}
