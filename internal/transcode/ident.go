package transcode

import (
	"repro/internal/mtype"
	"repro/internal/wire"
)

// ident compiles an identity conversion between two declared types that
// unfold to the same Mtype node (a DecSame plan leaf). Identity is not
// simply memcpy: padding must be re-zeroed, range checks re-applied, and
// binary32 NaNs re-canonicalized to stay byte-identical with
// decode→encode — copy-safe subtrees take the bulk path, everything else
// is structurally re-emitted.
//
// The declared pair matters once, at the top: two distinct μ nodes can
// share an unfolding while only one of them is list-shaped (sequence
// encoded). Below the top level both sides walk the same declared
// children, so the pair degenerates to identical pointers.
func (c *compiler) ident(tA, tB *mtype.Type) (emitFn, error) {
	key := identKey{tA, tB}
	if s, ok := c.idents[key]; ok {
		if s.fn == nil {
			return func(x *xctx) error { return s.fn(x) }, nil
		}
		return s.fn, nil
	}
	s := &emitSlot{}
	c.idents[key] = s
	fn, err := c.identNew(tA, tB)
	if err != nil {
		return nil, err
	}
	s.fn = fn
	return fn, nil
}

func (c *compiler) identNew(tA, tB *mtype.Type) (emitFn, error) {
	elemA, listA := mtype.ListElem(tA)
	elemB, listB := mtype.ListElem(tB)
	if listA != listB {
		return nil, unsupported("identity between sequence and cons-chain encodings")
	}
	if listA {
		elem, err := c.ident(elemA, elemB)
		if err != nil {
			return nil, err
		}
		var bulk *layout
		if lay := c.analyze(elemA); lay.copySafe() {
			bulk = lay
		}
		return listEmit(elem, bulk), nil
	}
	ut := wire.Unfold(tA)
	if ut == nil || wire.Unfold(tB) != ut {
		return nil, unsupported("identity pair does not share an unfolding")
	}
	switch ut.Kind() {
	case mtype.KindInteger, mtype.KindCharacter, mtype.KindReal:
		return c.primEmit(tA, tB)
	case mtype.KindUnit:
		return func(x *xctx) error {
			if x.depth > wire.MaxDecodeDepth {
				return depthErr()
			}
			return nil
		}, nil
	case mtype.KindPort:
		return portEmit(), nil
	case mtype.KindRecord:
		fields := ut.Fields()
		subs := make([]emitFn, len(fields))
		for i, f := range fields {
			fn, err := c.ident(f.Type, f.Type)
			if err != nil {
				return nil, err
			}
			subs[i] = fn
		}
		structural := func(x *xctx) error {
			if x.depth > wire.MaxDecodeDepth {
				return depthErr()
			}
			x.depth++
			for _, fn := range subs {
				if err := fn(x); err != nil {
					x.depth--
					return err
				}
			}
			x.depth--
			return nil
		}
		lay := c.analyze(tA)
		if !lay.copySafe() {
			return structural, nil
		}
		return bulkOrElse(lay, structural), nil
	case mtype.KindChoice:
		alts := ut.Alts()
		subs := make([]emitFn, len(alts))
		for i, a := range alts {
			fn, err := c.ident(a.Type, a.Type)
			if err != nil {
				return nil, err
			}
			subs[i] = fn
		}
		return func(x *xctx) error {
			if x.depth > wire.MaxDecodeDepth {
				return depthErr()
			}
			disc, off, err := wire.ReadUint(x.src, x.off, 4)
			if err != nil {
				return err
			}
			if disc >= uint64(len(subs)) {
				return discErr(disc, len(subs))
			}
			x.off = off
			x.dst = wire.AppendUint(x.dst, x.base, 4, disc)
			x.depth++
			err = subs[disc](x)
			x.depth--
			return err
		}, nil
	default:
		return nil, unsupported("identity on %s", ut.Kind())
	}
}

// bulkOrElse wraps a copy-safe fixed layout: when the source and
// destination cursors agree modulo the subtree's alignment, the whole
// subtree is one bounds-checked copy plus hole zeroing; otherwise the
// interior padding would land differently and the structural program
// runs instead.
func bulkOrElse(lay *layout, structural emitFn) emitFn {
	size := lay.size
	holes := lay.holes
	align := lay.align
	levels := lay.levels
	return func(x *xctx) error {
		rs := x.off % 8
		if rs%align != x.dstRel()%align {
			return structural(x)
		}
		if x.depth+levels > wire.MaxDecodeDepth {
			return depthErr()
		}
		sz := size[rs]
		if x.off+sz > len(x.src) {
			return truncErr(x.off + sz)
		}
		start := len(x.dst)
		x.dst = append(x.dst, x.src[x.off:x.off+sz]...)
		for _, h := range holes[rs] {
			for i := start + h[0]; i < start+h[1]; i++ {
				x.dst[i] = 0
			}
		}
		x.off += sz
		return nil
	}
}
