package transcode

import (
	"fmt"

	"repro/internal/limits"
	"repro/internal/mtype"
	"repro/internal/wire"
)

// layout is the precomputed wire shape of one declared type. CDR aligns
// every primitive to its size relative to the start of the enclosing
// value, so a subtree's byte image is a function of its start-offset
// residue: all interior alignments divide the subtree's maximum alignment
// a, hence the image depends only on (start mod a). For fixed-size types
// we tabulate size and padding holes for every residue 0..7, which is
// what lets the emitter replace structural walks with bounds-checked bulk
// copies.
type layout struct {
	// fixed reports a size independent of the bytes (no lists, choices,
	// or ports anywhere in the subtree).
	fixed bool
	// align is the maximum primitive alignment in the subtree (1, 2, 4,
	// or 8); meaningful only when fixed.
	align int
	// size[r] is the encoded size, including leading padding, when the
	// subtree starts at offset ≡ r (mod 8); meaningful only when fixed.
	size [8]int
	// holes[r] lists padding byte ranges [start,end) relative to the
	// subtree start at residue r. The tree engine re-encodes padding as
	// zeros, so bulk copies must zero these to stay byte-identical.
	holes [8][][2]int
	// checked reports that decoding performs value validation somewhere
	// in the subtree (range-restricted integers). Such subtrees cannot
	// be skipped or copied without replicating the checks.
	checked bool
	// canonical reports decode→encode reproduces the input bytes
	// exactly. False for binary32 reals: widening a signaling NaN quiets
	// it, so the tree engine canonicalizes bit patterns a raw copy would
	// preserve.
	canonical bool
	// levels is the maximum decode recursion depth below this node (0
	// for primitives), mirroring wire.decode's per-level budget checks.
	levels int
}

// copySafe reports that a raw byte copy of the subtree (plus hole
// zeroing) is indistinguishable from decode→encode.
func (l *layout) copySafe() bool { return l.fixed && !l.checked && l.canonical }

// skipSafe reports that the subtree can be skipped arithmetically: no
// value validation happens during decode.
func (l *layout) skipSafe() bool { return l.fixed && !l.checked }

func primLayout(width int, checked, canonical bool) *layout {
	l := &layout{fixed: true, align: width, checked: checked, canonical: canonical}
	for r := 0; r < 8; r++ {
		pad := (width - r%width) % width
		l.size[r] = pad + width
		if pad > 0 {
			l.holes[r] = [][2]int{{0, pad}}
		}
	}
	return l
}

// analyze computes the layout of a declared type. Cycles (recursive
// types) conservatively come out variable: the provisional memo entry is
// already in place when the recursion returns to t.
func (c *compiler) analyze(t *mtype.Type) *layout {
	if l, ok := c.lays[t]; ok {
		return l
	}
	l := &layout{}
	c.lays[t] = l
	if _, ok := mtype.ListElem(t); ok {
		return l
	}
	ut := wire.Unfold(t)
	if ut == nil {
		return l
	}
	switch ut.Kind() {
	case mtype.KindInteger:
		size, _, err := wire.IntWidth(ut)
		if err != nil {
			l.checked = true
			return l
		}
		*l = *primLayout(size, intChecked(ut), true)
	case mtype.KindCharacter:
		*l = *primLayout(wire.CharWidth(ut), false, true)
	case mtype.KindReal:
		size, err := wire.RealWidth(ut)
		if err != nil {
			l.checked = true
			return l
		}
		*l = *primLayout(size, false, size == 8)
	case mtype.KindUnit:
		*l = layout{fixed: true, align: 1, canonical: true}
	case mtype.KindRecord:
		fields := ut.Fields()
		subs := make([]*layout, len(fields))
		fixed, checked, canonical, align, levels := true, false, true, 1, 0
		for i, f := range fields {
			fl := c.analyze(f.Type)
			subs[i] = fl
			fixed = fixed && fl.fixed
			checked = checked || fl.checked
			canonical = canonical && fl.canonical
			if fl.align > align {
				align = fl.align
			}
			if lv := 1 + fl.levels; lv > levels {
				levels = lv
			}
		}
		l.checked = checked
		l.canonical = canonical
		l.levels = levels
		if !fixed {
			return l
		}
		l.fixed = true
		l.align = align
		for r := 0; r < 8; r++ {
			off := r
			for _, fl := range subs {
				for _, h := range fl.holes[off%8] {
					l.holes[r] = append(l.holes[r], [2]int{off - r + h[0], off - r + h[1]})
				}
				off += fl.size[off%8]
			}
			l.size[r] = off - r
		}
	default:
		// Choices, ports, and anything unknown are variable-size and
		// carry decode-time validation (discriminant and length checks).
		l.checked = true
	}
	return l
}

// intChecked reports whether decoding the integer type performs a
// non-vacuous range check (the range does not cover its full CDR width).
func intChecked(ut *mtype.Type) bool {
	size, signed, err := wire.IntWidth(ut)
	if err != nil {
		return true
	}
	lo, hi := ut.IntegerRange()
	if signed {
		shift := uint(8*size - 1)
		min := int64(-1) << shift
		max := int64(1)<<shift - 1
		return !lo.IsInt64() || !hi.IsInt64() || lo.Int64() != min || hi.Int64() != max
	}
	var max uint64
	if size == 8 {
		max = ^uint64(0)
	} else {
		max = uint64(1)<<uint(8*size) - 1
	}
	return lo.Sign() != 0 || !hi.IsUint64() || hi.Uint64() != max
}

// skipFn validates and measures one value of a declared type starting at
// off, returning the offset just past it. It mirrors wire.decode's
// checks (depth budget, truncation, integer ranges, discriminant bounds,
// list caps) without building values, so a transcoder that only skips a
// subtree (a dropped record leaf) still fails exactly when the tree
// engine would.
type skipFn func(src []byte, off, depth int) (int, error)

type skipSlot struct{ fn skipFn }

func (c *compiler) skipFor(t *mtype.Type) (skipFn, error) {
	if s, ok := c.skips[t]; ok {
		if s.fn == nil {
			// Cycle: indirect through the slot filled after compilation.
			return func(src []byte, off, depth int) (int, error) {
				return s.fn(src, off, depth)
			}, nil
		}
		return s.fn, nil
	}
	s := &skipSlot{}
	c.skips[t] = s
	fn, err := c.skipForNew(t)
	if err != nil {
		return nil, err
	}
	s.fn = fn
	return fn, nil
}

func (c *compiler) skipForNew(t *mtype.Type) (skipFn, error) {
	if elem, ok := mtype.ListElem(t); ok {
		elemSkip, err := c.skipFor(elem)
		if err != nil {
			return nil, err
		}
		lay := c.analyze(elem)
		return func(src []byte, off, depth int) (int, error) {
			if depth > wire.MaxDecodeDepth {
				return 0, depthErr()
			}
			n64, off, err := wire.ReadUint(src, off, 4)
			if err != nil {
				return 0, err
			}
			if n64 > wire.MaxListLen {
				return 0, limits.Exceededf("transcode: list length %d exceeds limit of %d", n64, wire.MaxListLen)
			}
			n := int(n64)
			if n == 0 {
				return off, nil
			}
			if lay.skipSafe() {
				if depth+1+lay.levels > wire.MaxDecodeDepth {
					return 0, depthErr()
				}
				if sz := lay.size[off%8]; sz%lay.align == 0 {
					off += n * sz
				} else {
					for i := 0; i < n; i++ {
						off += lay.size[off%8]
					}
				}
				if off > len(src) {
					return 0, truncErr(off)
				}
				return off, nil
			}
			for i := 0; i < n; i++ {
				off, err = elemSkip(src, off, depth+1)
				if err != nil {
					return 0, err
				}
			}
			return off, nil
		}, nil
	}
	ut := wire.Unfold(t)
	if ut == nil {
		return nil, unsupported("unbound recursive type")
	}
	lay := c.analyze(t)
	if lay.skipSafe() {
		levels := lay.levels
		size := lay.size
		return func(src []byte, off, depth int) (int, error) {
			if depth+levels > wire.MaxDecodeDepth {
				return 0, depthErr()
			}
			off += size[off%8]
			if off > len(src) {
				return 0, truncErr(off)
			}
			return off, nil
		}, nil
	}
	switch ut.Kind() {
	case mtype.KindInteger:
		size, signed, err := wire.IntWidth(ut)
		if err != nil {
			return nil, unsupported("integer exceeds 64 bits")
		}
		check, err := intRangeCheck(ut)
		if err != nil {
			return nil, err
		}
		return func(src []byte, off, depth int) (int, error) {
			if depth > wire.MaxDecodeDepth {
				return 0, depthErr()
			}
			u, off, err := wire.ReadUint(src, off, size)
			if err != nil {
				return 0, err
			}
			if err := check(u, size, signed); err != nil {
				return 0, err
			}
			return off, nil
		}, nil
	case mtype.KindUnit:
		return func(src []byte, off, depth int) (int, error) {
			if depth > wire.MaxDecodeDepth {
				return 0, depthErr()
			}
			return off, nil
		}, nil
	case mtype.KindRecord:
		fields := ut.Fields()
		subs := make([]skipFn, len(fields))
		for i, f := range fields {
			fn, err := c.skipFor(f.Type)
			if err != nil {
				return nil, err
			}
			subs[i] = fn
		}
		return func(src []byte, off, depth int) (int, error) {
			if depth > wire.MaxDecodeDepth {
				return 0, depthErr()
			}
			var err error
			for _, fn := range subs {
				off, err = fn(src, off, depth+1)
				if err != nil {
					return 0, err
				}
			}
			return off, nil
		}, nil
	case mtype.KindChoice:
		alts := ut.Alts()
		subs := make([]skipFn, len(alts))
		for i, a := range alts {
			fn, err := c.skipFor(a.Type)
			if err != nil {
				return nil, err
			}
			subs[i] = fn
		}
		return func(src []byte, off, depth int) (int, error) {
			if depth > wire.MaxDecodeDepth {
				return 0, depthErr()
			}
			disc, off, err := wire.ReadUint(src, off, 4)
			if err != nil {
				return 0, err
			}
			if disc >= uint64(len(subs)) {
				return 0, discErr(disc, len(subs))
			}
			return subs[disc](src, off, depth+1)
		}, nil
	case mtype.KindPort:
		return func(src []byte, off, depth int) (int, error) {
			if depth > wire.MaxDecodeDepth {
				return 0, depthErr()
			}
			n, off, err := wire.ReadUint(src, off, 4)
			if err != nil {
				return 0, err
			}
			if uint64(off)+n > uint64(len(src)) {
				return 0, fmt.Errorf("transcode: %w (port reference)", wire.ErrShort)
			}
			return off + int(n), nil
		}, nil
	default:
		return nil, unsupported("cannot skip %s", ut.Kind())
	}
}

// intRangeCheck builds the validation applied by wire.decode to integers
// of the given type: sign-extend to 64 bits and compare against the
// declared range.
func intRangeCheck(ut *mtype.Type) (func(u uint64, size int, signed bool) error, error) {
	if !intChecked(ut) {
		return func(uint64, int, bool) error { return nil }, nil
	}
	lo, hi := ut.IntegerRange()
	if lo.Sign() < 0 {
		if !lo.IsInt64() || !hi.IsInt64() {
			return nil, unsupported("integer range exceeds 64 bits")
		}
		min, max := lo.Int64(), hi.Int64()
		return func(u uint64, size int, signed bool) error {
			shift := uint(64 - 8*size)
			v := int64(u<<shift) >> shift
			if v < min || v > max {
				return fmt.Errorf("transcode: decoded %d outside range [%d..%d]", v, min, max)
			}
			return nil
		}, nil
	}
	if !hi.IsUint64() {
		return nil, unsupported("integer range exceeds 64 bits")
	}
	min, max := lo.Uint64(), hi.Uint64()
	return func(u uint64, size int, signed bool) error {
		if u < min || u > max {
			return fmt.Errorf("transcode: decoded %d outside range [%d..%d]", u, min, max)
		}
		return nil
	}, nil
}

func depthErr() error {
	return limits.Exceededf("transcode: value nesting exceeds depth budget of %d", wire.MaxDecodeDepth)
}

// errTruncated is preallocated: the streaming executor (SeqStep) hits a
// short read at nearly every window boundary and rolls it back, so
// formatting an offset into each would put fmt.Errorf on the per-chunk
// resume path.
var errTruncated = fmt.Errorf("transcode: %w inside value", wire.ErrShort)

func truncErr(off int) error {
	return errTruncated
}

func discErr(disc uint64, alts int) error {
	return fmt.Errorf("transcode: discriminant %d out of range (%d alternatives)", disc, alts)
}
