package transcode

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/compare"
	"repro/internal/convert"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/wire"
)

type fuzzPair struct {
	name string
	a, b *mtype.Type
	sub  bool
	seed value.Value
}

func fuzzPairs() []fuzzPair {
	return []fuzzPair{
		{
			name: "permuted-record",
			a:    mtype.RecordOf(i32(), i64t(), f64t(), strT(), i16()),
			b:    mtype.RecordOf(i16(), f64t(), strT(), i32(), i64t()),
			seed: value.NewRecord(value.NewInt(7), value.NewInt(1<<40),
				value.Real{V: 3.25}, str("seed"), value.NewInt(-9)),
		},
		{
			name: "widening-subtype",
			a:    mtype.RecordOf(i16(), f32(), latin1()),
			b:    mtype.RecordOf(i64t(), f64t(), unicode()),
			sub:  true,
			seed: value.NewRecord(value.NewInt(-3), value.Real{V: 0.5}, value.Char{R: 'x'}),
		},
		{
			name: "padded-identity",
			a:    mtype.RecordOf(i8(), i64t(), f32(), f64t()),
			b:    mtype.RecordOf(i8(), i64t(), f32(), f64t()),
			seed: value.NewRecord(value.NewInt(1), value.NewInt(2),
				value.Real{V: 3}, value.Real{V: 4}),
		},
		{
			name: "list-of-records",
			a:    mtype.NewList(mtype.RecordOf(i32(), f32())),
			b:    mtype.NewList(mtype.RecordOf(f32(), i32())),
			seed: list(value.NewRecord(value.NewInt(1), value.Real{V: 1.5})),
		},
		{
			name: "string",
			a:    strT(),
			b:    strT(),
			seed: str("fuzz me"),
		},
		{
			name: "choice-permutation",
			a:    mtype.ChoiceOf(i32(), f64t(), strT()),
			b:    mtype.ChoiceOf(strT(), i32(), f64t()),
			seed: value.Choice{Alt: 1, V: value.Real{V: 2.5}},
		},
		{
			name: "optional-record",
			a:    mtype.NewOptional(mtype.RecordOf(i32(), i32())),
			b:    mtype.NewOptional(mtype.RecordOf(i32(), i32())),
			seed: value.Some(value.NewRecord(value.NewInt(1), value.NewInt(2))),
		},
		{
			name: "nested-flatten",
			a:    mtype.RecordOf(mtype.RecordOf(i32(), i8()), f64t()),
			b:    mtype.RecordOf(i8(), mtype.RecordOf(f64t(), i32())),
			seed: value.NewRecord(value.NewRecord(value.NewInt(9), value.NewInt(-1)),
				value.Real{V: 7.5}),
		},
		{
			name: "injection",
			a:    i32(),
			b:    mtype.ChoiceOf(f64t(), i32()),
			sub:  true,
			seed: value.NewInt(77),
		},
		// Discriminant coverage: alternatives are aggregates, so a
		// corrupted discriminant byte selects a different decode shape
		// entirely — both engines must agree on accept/reject and bytes.
		{
			name: "choice-of-aggregates",
			a:    mtype.ChoiceOf(mtype.RecordOf(i32(), f32()), strT(), mtype.NewList(i16())),
			b:    mtype.ChoiceOf(mtype.NewList(i16()), mtype.RecordOf(f32(), i32()), strT()),
			seed: value.Choice{Alt: 2, V: list(value.NewInt(5), value.NewInt(-12))},
		},
		{
			name: "choice-in-record",
			a:    mtype.RecordOf(mtype.ChoiceOf(i32(), strT()), i8()),
			b:    mtype.RecordOf(i8(), mtype.ChoiceOf(strT(), i32())),
			seed: value.NewRecord(value.Choice{Alt: 1, V: str("alt")}, value.NewInt(3)),
		},
		// Nested sequences: length-prefixed lists inside lists, where a
		// fuzzed inner count must not let the transcoder read past the
		// payload the tree decoder rejects.
		{
			name: "nested-sequences",
			a:    mtype.NewList(mtype.NewList(mtype.RecordOf(i32(), f64t()))),
			b:    mtype.NewList(mtype.NewList(mtype.RecordOf(f64t(), i32()))),
			seed: list(
				list(value.NewRecord(value.NewInt(1), value.Real{V: 0.5})),
				list(value.NewRecord(value.NewInt(2), value.Real{V: 1.5}),
					value.NewRecord(value.NewInt(3), value.Real{V: 2.5})),
			),
		},
		{
			name: "sequence-of-choices",
			a:    mtype.NewList(mtype.ChoiceOf(i32(), f64t())),
			b:    mtype.NewList(mtype.ChoiceOf(f64t(), i32())),
			seed: list(
				value.Choice{Alt: 0, V: value.NewInt(4)},
				value.Choice{Alt: 1, V: value.Real{V: -2.5}},
			),
		},
	}
}

type fuzzFixture struct {
	fuzzPair
	xc   *Transcoder
	conv convert.Converter
}

func buildFuzzFixtures() ([]fuzzFixture, error) {
	var out []fuzzFixture
	for _, p := range fuzzPairs() {
		c := compare.NewComparer(compare.DefaultRules())
		var m *compare.Match
		var ok bool
		if p.sub {
			m, ok = c.Subtype(p.a, p.b)
		} else {
			m, ok = c.Equivalent(p.a, p.b)
		}
		if !ok {
			return nil, fmt.Errorf("%s: no match", p.name)
		}
		pl, err := plan.Build(m)
		if err != nil {
			return nil, fmt.Errorf("%s: plan: %w", p.name, err)
		}
		xc, err := Compile(pl, p.a, p.b)
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", p.name, err)
		}
		conv, err := convert.Compile(pl)
		if err != nil {
			return nil, fmt.Errorf("%s: tree compile: %w", p.name, err)
		}
		out = append(out, fuzzFixture{fuzzPair: p, xc: xc, conv: conv})
	}
	return out, nil
}

// FuzzTranscodeOracle fuzzes raw wire bytes against a fixed table of
// compiled pairs and enforces the transcoder's contract differentially:
// whenever decode→convert→encode through the value-tree engine succeeds,
// the wire transcoder must produce the identical bytes; whenever the
// tree path rejects the input, the transcoder must reject it too.
func FuzzTranscodeOracle(f *testing.F) {
	fixtures, err := buildFuzzFixtures()
	if err != nil {
		f.Fatal(err)
	}
	for i, fx := range fixtures {
		seed, err := wire.Marshal(fx.a, fx.seed)
		if err != nil {
			f.Fatalf("%s: seed marshal: %v", fx.name, err)
		}
		f.Add(uint8(i), seed)
		if len(seed) > 0 {
			f.Add(uint8(i), seed[:len(seed)/2])
		}
		f.Add(uint8(i), append(append([]byte(nil), seed...), 0xff))
	}
	f.Fuzz(func(t *testing.T, idx uint8, data []byte) {
		fx := &fixtures[int(idx)%len(fixtures)]
		treeOut, treeErr := convert.TranscodeTree(nil, fx.a, fx.b, fx.conv, data)
		xcOut, xcErr := fx.xc.Transcode(data)
		if treeErr != nil {
			if xcErr == nil {
				t.Fatalf("%s: tree errored (%v) but transcoder accepted % x → % x",
					fx.name, treeErr, data, xcOut)
			}
			return
		}
		if xcErr != nil {
			t.Fatalf("%s: transcoder error %v on tree-accepted input % x", fx.name, xcErr, data)
		}
		if !bytes.Equal(treeOut, xcOut) {
			t.Fatalf("%s: mismatch\nsrc:  % x\ntree: % x\nxc:   % x", fx.name, data, treeOut, xcOut)
		}
	})
}
