package transcode

import (
	"repro/internal/compare"
	"repro/internal/plan"
	"repro/internal/wire"
)

type leafStep struct {
	skip     skipFn
	depthAdd int
}

type outStep struct {
	src  int // A-leaf index feeding this B leaf
	emit emitFn
}

// record compiles a record-to-record conversion over the plan's
// flattened leaves: commutative permutation and associative flattening
// reduce to reordering one flat leaf sequence into another. The emitted
// program runs in two phases — a validating scan over the A leaves that
// builds an offset table in pooled scratch, then an emission pass in
// B-leaf order reading each leaf at its recorded span. A leading run of
// copy-safe identity leaves (the common partially-permuted case) is
// tabulated per start residue so it collapses to one bulk copy when the
// source and destination cursors agree modulo its alignment.
//
// dropLead strips that many leading path components from leaf depth
// accounting; listPair passes 1 because its leaves are rooted at the
// cons cell's head field while wire.decode recurses on the element type
// directly.
func (c *compiler) record(flatA, flatB []compare.FlatLeaf, perm []int, leafPlans []*plan.Node, dropLead int) (emitFn, error) {
	if len(perm) != len(flatA) || len(leafPlans) != len(flatA) {
		return nil, unsupported("malformed record plan")
	}
	if len(flatA) > c.maxLeaves {
		c.maxLeaves = len(flatA)
	}

	steps := make([]leafStep, len(flatA))
	for i, leaf := range flatA {
		skip, err := c.skipFor(leaf.Node)
		if err != nil {
			return nil, err
		}
		add := len(leaf.Path) - dropLead
		if add < 0 {
			add = 0
		}
		steps[i] = leafStep{skip: skip, depthAdd: add}
	}

	invPerm := make([]int, len(flatB))
	for j := range invPerm {
		invPerm[j] = -1
	}
	for i, j := range perm {
		if j >= 0 {
			if j >= len(flatB) || invPerm[j] >= 0 {
				return nil, unsupported("malformed record permutation")
			}
			invPerm[j] = i
		}
	}

	outs := make([]outStep, len(flatB))
	for j, bl := range flatB {
		if bl.Unit {
			outs[j] = outStep{emit: nil}
			continue
		}
		i := invPerm[j]
		if i < 0 || leafPlans[i] == nil {
			return nil, unsupported("destination leaf %d has no source", j)
		}
		emit, err := c.pair(leafPlans[i], flatA[i].Node, flatB[j].Node)
		if err != nil {
			return nil, err
		}
		outs[j] = outStep{src: i, emit: emit}
	}

	// Identity prefix: leading leaves where A and B agree in place and a
	// raw copy is byte-faithful.
	prefix := 0
	prefAlign := 1
	maxLv := 0
	for prefix < len(flatA) && prefix < len(flatB) {
		k := prefix
		if flatA[k].Unit && flatB[k].Unit {
			prefix++
			continue
		}
		if flatA[k].Unit || flatB[k].Unit || perm[k] != k ||
			leafPlans[k] == nil || leafPlans[k].Kind != compare.DecSame {
			break
		}
		la := c.analyze(flatA[k].Node)
		lb := c.analyze(flatB[k].Node)
		if !la.copySafe() || !lb.copySafe() {
			break
		}
		if la.align > prefAlign {
			prefAlign = la.align
		}
		if lv := steps[k].depthAdd + la.levels; lv > maxLv {
			maxLv = lv
		}
		prefix++
	}
	var prefSize [8]int
	var prefHoles [8][][2]int
	for r := 0; r < 8; r++ {
		off := r
		for k := 0; k < prefix; k++ {
			if flatA[k].Unit {
				continue
			}
			lay := c.analyze(flatA[k].Node)
			for _, h := range lay.holes[off%8] {
				prefHoles[r] = append(prefHoles[r], [2]int{off - r + h[0], off - r + h[1]})
			}
			off += lay.size[off%8]
		}
		prefSize[r] = off - r
	}
	wholeBulk := prefix == len(flatA) && prefix == len(flatB)

	return func(x *xctx) error {
		if x.depth > wire.MaxDecodeDepth {
			return depthErr()
		}
		if wholeBulk {
			rs := x.off % 8
			if rs%prefAlign == x.dstRel()%prefAlign {
				if x.depth+maxLv > wire.MaxDecodeDepth {
					return depthErr()
				}
				sz := prefSize[rs]
				if x.off+sz > len(x.src) {
					return truncErr(x.off + sz)
				}
				start := len(x.dst)
				x.dst = append(x.dst, x.src[x.off:x.off+sz]...)
				for _, h := range prefHoles[rs] {
					zero(x.dst, start+h[0], start+h[1])
				}
				x.off += sz
				return nil
			}
		}

		spans, mark := x.grabSpans(len(steps))
		entryOff := x.off
		for i := range steps {
			st := &steps[i]
			spans[i] = x.off
			off2, err := st.skip(x.src, x.off, x.depth+st.depthAdd)
			if err != nil {
				x.arena = x.arena[:mark]
				return err
			}
			x.off = off2
		}
		endOff := x.off
		baseDepth := x.depth

		j0 := 0
		if prefix > 0 {
			rs := entryOff % 8
			if rs%prefAlign == x.dstRel()%prefAlign {
				end := endOff
				if prefix < len(steps) {
					end = spans[prefix]
				}
				start := len(x.dst)
				x.dst = append(x.dst, x.src[entryOff:end]...)
				for _, h := range prefHoles[rs] {
					zero(x.dst, start+h[0], start+h[1])
				}
				j0 = prefix
			}
		}
		for j := j0; j < len(outs); j++ {
			o := &outs[j]
			if o.emit == nil {
				continue
			}
			x.off = spans[o.src]
			x.depth = baseDepth + steps[o.src].depthAdd
			if err := o.emit(x); err != nil {
				x.depth = baseDepth
				x.arena = x.arena[:mark]
				return err
			}
		}
		x.depth = baseDepth
		x.off = endOff
		x.arena = x.arena[:mark]
		return nil
	}, nil
}

func zero(b []byte, from, to int) {
	for i := from; i < to; i++ {
		b[i] = 0
	}
}
