// Package transcode compiles coercion plans into direct CDR-bytes →
// CDR-bytes transcoders: the fuse philosophy (§4 of the paper) applied
// to the network data plane. Where the tree engine decodes the source
// bytes into a value.Value tree, converts it, and re-encodes — allocating
// on every node — a compiled transcoder moves bytes straight from the
// source buffer to the destination buffer, using precomputed per-type
// layout programs so identity-shaped regions become bulk copies and
// permuted records become offset-table shuffles.
//
// Like internal/fuse, the compiler handles the common structural core —
// primitives (including widening numeric coercions), records (commutative
// permutation and associative flattening via the plan), sequences,
// strings, choices, injections, and ports — and returns a wrapped
// ErrUnsupported for anything else (semantic hooks, sequence↔cons-chain
// mixes, >64-bit integers), so callers fall back to the tree engine.
//
// Compiled transcoders replicate the tree path bit for bit: they perform
// the same validation (depth budgets, integer ranges, discriminant and
// length bounds, truncation, full consumption) and the same byte
// canonicalization (zeroed padding, binary32 NaN quieting), which the
// differential fuzz oracle in this package enforces.
package transcode

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/compare"
	"repro/internal/limits"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/wire"
)

// ErrUnsupported marks a plan construct outside the transcoder's fused
// subset. Callers should fall back to the tree engine
// (decode→convert→encode); results are identical, only slower.
var ErrUnsupported = errors.New("transcode: construct not supported by the wire transcoder")

func unsupported(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrUnsupported}, args...)...)
}

// xctx is the per-call mutable state threaded through compiled emit
// programs. Instances are pooled on the Transcoder; arena is reused
// scratch for record offset tables, sized by the layout program's hints.
type xctx struct {
	src   []byte
	dst   []byte
	base  int // alignment base: start of the output value within dst
	off   int // read cursor, alignment-relative to src[0]
	depth int
	arena []int
}

func (x *xctx) grabSpans(n int) ([]int, int) {
	mark := len(x.arena)
	if mark+n <= cap(x.arena) {
		x.arena = x.arena[:mark+n]
	} else {
		x.arena = append(x.arena, make([]int, n)...)
	}
	return x.arena[mark : mark+n], mark
}

func (x *xctx) dstRel() int { return len(x.dst) - x.base }

// emitFn transcodes one value: reads src at x.off, appends the converted
// bytes to x.dst, and advances x.off. x.depth is the depth wire.decode
// would be called with for this value; every emitFn performs the same
// entry budget check decode does.
type emitFn func(x *xctx) error

type emitSlot struct{ fn emitFn }

type tripleKey struct {
	n    *plan.Node
	a, b *mtype.Type
}

type identKey struct{ a, b *mtype.Type }

type compiler struct {
	pairs     map[tripleKey]*emitSlot
	idents    map[identKey]*emitSlot
	skips     map[*mtype.Type]*skipSlot
	lays      map[*mtype.Type]*layout
	maxLeaves int
}

func newCompiler() *compiler {
	return &compiler{
		pairs:  make(map[tripleKey]*emitSlot),
		idents: make(map[identKey]*emitSlot),
		skips:  make(map[*mtype.Type]*skipSlot),
		lays:   make(map[*mtype.Type]*layout),
	}
}

// Transcoder converts CDR bytes of the source Mtype directly into CDR
// bytes of the destination Mtype. Safe for concurrent use.
type Transcoder struct {
	root      emitFn
	pool      sync.Pool
	outEst    int
	outExact  bool
	arenaHint int

	// Sequence streaming support (see seq.go): when both declared types
	// are list-shaped and the per-element conversion compiles, seqElem is
	// the element program and seqBulk its copy-safe layout (nil when the
	// element needs structural re-emission). Populated by Compile.
	seqElem emitFn
	seqBulk *layout
}

// Compile fuses a coercion plan with the declared source and destination
// Mtypes into a wire transcoder. a and b must be the types the plan was
// built for (plan nodes store unfolded types; the declared types are
// needed because the wire format distinguishes μ-list nodes, encoded as
// sequences, from their structurally identical unfoldings, encoded as
// cons chains). Returns a wrapped ErrUnsupported when the plan uses
// constructs outside the fused subset.
func Compile(p *plan.Plan, a, b *mtype.Type) (*Transcoder, error) {
	if p == nil || p.Root == nil {
		return nil, fmt.Errorf("transcode: nil plan")
	}
	if wire.Unfold(a) != p.Root.A || wire.Unfold(b) != p.Root.B {
		return nil, fmt.Errorf("transcode: declared types do not match plan root")
	}
	c := newCompiler()
	root, err := c.pair(p.Root, a, b)
	if err != nil {
		return nil, err
	}
	est, exact := wire.EstimateSize(b)
	t := &Transcoder{
		root:     root,
		outEst:   est,
		outExact: exact,
	}
	// If the root pair is list-shaped, expose the per-element program so
	// internal/stream can run the sequence chunk-at-a-time. Failure here
	// is not an error — the one-shot program above already compiled, the
	// pair just is not streamable.
	if elemA, listA := mtype.ListElem(a); listA {
		if elemB, listB := mtype.ListElem(b); listB {
			var elem emitFn
			var bulk *layout
			var serr error
			switch p.Root.Kind {
			case compare.DecSame:
				elem, serr = c.ident(elemA, elemB)
				if serr == nil {
					if lay := c.analyze(elemA); lay.copySafe() {
						bulk = lay
					}
				}
			case compare.DecChoice:
				elem, bulk, serr = c.listParts(p.Root, elemA, elemB)
			default:
				serr = unsupported("non-list plan on list-shaped pair")
			}
			if serr == nil {
				t.seqElem = elem
				t.seqBulk = bulk
			}
		}
	}
	t.arenaHint = c.maxLeaves * 4
	t.pool.New = func() any { return &xctx{arena: make([]int, 0, t.arenaHint)} }
	return t, nil
}

// Transcode converts one encoded value, returning a freshly allocated
// output buffer. The input must be fully consumed, mirroring
// wire.Unmarshal.
func (t *Transcoder) Transcode(src []byte) ([]byte, error) {
	hint := t.outEst
	if !t.outExact && len(src) > hint {
		hint = len(src) + len(src)/2
	}
	out, err := t.TranscodeAppend(make([]byte, 0, hint), src)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TranscodeAppend converts one encoded value and appends the output to
// dst, returning the extended slice; alignment is relative to len(dst)
// at entry. On error the returned slice is dst truncated to its original
// length. Reusing dst across calls gives a zero-allocation steady state.
func (t *Transcoder) TranscodeAppend(dst, src []byte) ([]byte, error) {
	x := t.pool.Get().(*xctx)
	x.src, x.dst, x.base, x.off, x.depth = src, dst, len(dst), 0, 0
	err := t.root(x)
	if err == nil && x.off != len(src) {
		err = fmt.Errorf("transcode: %d trailing bytes", len(src)-x.off)
	}
	out := x.dst
	x.src, x.dst = nil, nil
	x.arena = x.arena[:0]
	t.pool.Put(x)
	if err != nil {
		return dst[:len(dst):len(dst)], err
	}
	return out, nil
}

// pair compiles the conversion for one plan node applied to a declared
// type pair. The triple key matters: one plan node (keyed on unfolded
// types) can be reached through different declared types with different
// wire encodings.
func (c *compiler) pair(n *plan.Node, tA, tB *mtype.Type) (emitFn, error) {
	if n == nil {
		return nil, unsupported("missing plan node")
	}
	key := tripleKey{n, tA, tB}
	if s, ok := c.pairs[key]; ok {
		if s.fn == nil {
			return func(x *xctx) error { return s.fn(x) }, nil
		}
		return s.fn, nil
	}
	s := &emitSlot{}
	c.pairs[key] = s
	fn, err := c.pairNew(n, tA, tB)
	if err != nil {
		return nil, err
	}
	s.fn = fn
	return fn, nil
}

func (c *compiler) pairNew(n *plan.Node, tA, tB *mtype.Type) (emitFn, error) {
	elemA, listA := mtype.ListElem(tA)
	elemB, listB := mtype.ListElem(tB)
	switch n.Kind {
	case compare.DecSame:
		return c.ident(tA, tB)
	case compare.DecPrim:
		if listA || listB {
			return nil, unsupported("primitive plan on list-shaped type")
		}
		return c.primEmit(tA, tB)
	case compare.DecPort:
		if listA || listB {
			return nil, unsupported("port plan on list-shaped type")
		}
		return portEmit(), nil
	case compare.DecRecord:
		if listA || listB {
			return nil, unsupported("record plan on list-shaped type")
		}
		return c.record(n.FlatA, n.FlatB, n.Perm, n.LeafPlans, 0)
	case compare.DecChoice:
		if listA != listB {
			return nil, unsupported("sequence vs cons-chain encoding mix")
		}
		if listA {
			return c.listPair(n, elemA, elemB)
		}
		return c.choicePair(n, tA, tB)
	case compare.DecInject:
		if listB {
			return nil, unsupported("injection into list-shaped choice")
		}
		altB := n.B.Alts()[n.AltMap[0]].Type
		inner, err := c.pair(n.InjectPlan, tA, altB)
		if err != nil {
			return nil, err
		}
		disc := uint64(n.AltMap[0])
		return func(x *xctx) error {
			x.dst = wire.AppendUint(x.dst, x.base, 4, disc)
			return inner(x)
		}, nil
	case compare.DecSemantic:
		return nil, unsupported("semantic hook %q requires the tree engine", n.Hook)
	default:
		return nil, unsupported("unknown plan node kind %d", n.Kind)
	}
}

// choicePair compiles a discriminant-remapping union conversion.
func (c *compiler) choicePair(n *plan.Node, tA, tB *mtype.Type) (emitFn, error) {
	altsA := n.A.Alts()
	altsB := n.B.Alts()
	if len(n.AltPlans) != len(altsA) {
		return nil, unsupported("malformed choice plan")
	}
	subs := make([]emitFn, len(altsA))
	discMap := make([]uint64, len(altsA))
	for i := range altsA {
		j := n.AltMap[i]
		if j < 0 || j >= len(altsB) {
			return nil, unsupported("unmatched choice alternative %d", i)
		}
		fn, err := c.pair(n.AltPlans[i], altsA[i].Type, altsB[j].Type)
		if err != nil {
			return nil, err
		}
		subs[i] = fn
		discMap[i] = uint64(j)
	}
	return func(x *xctx) error {
		if x.depth > wire.MaxDecodeDepth {
			return depthErr()
		}
		disc, off, err := wire.ReadUint(x.src, x.off, 4)
		if err != nil {
			return err
		}
		if disc >= uint64(len(subs)) {
			return discErr(disc, len(subs))
		}
		x.off = off
		x.dst = wire.AppendUint(x.dst, x.base, 4, discMap[disc])
		x.depth++
		err = subs[disc](x)
		x.depth--
		return err
	}, nil
}

// listPair compiles a sequence conversion from the cons-cell record plan
// of two list-shaped types: the wire encodes μL.Choice(Unit, Record(τ,L))
// as a count plus elements, so the per-element program is the cons record
// conversion restricted to its head leaves, with the tail recursion
// replaced by the element loop.
func (c *compiler) listPair(n *plan.Node, elemA, elemB *mtype.Type) (emitFn, error) {
	elemEmit, bulk, err := c.listParts(n, elemA, elemB)
	if err != nil {
		return nil, err
	}
	return listEmit(elemEmit, bulk), nil
}

// listParts compiles the per-element program of a list-shaped DecChoice
// plan, returning the element emitter and, when the pair is a copy-safe
// identity, its bulk layout. Shared by listPair (which wraps it in the
// count-prefixed loop) and Compile's streaming probe (which exposes the
// element program for chunk-at-a-time execution).
func (c *compiler) listParts(n *plan.Node, elemA, elemB *mtype.Type) (emitFn, *layout, error) {
	if len(n.AltMap) != 2 || n.AltMap[0] != 0 || n.AltMap[1] != 1 {
		return nil, nil, unsupported("list choice with permuted alternatives")
	}
	if len(n.AltPlans) != 2 || n.AltPlans[1] == nil {
		return nil, nil, unsupported("malformed list plan")
	}
	cons := n.AltPlans[1]
	var elemEmit emitFn
	var bulk *layout
	var err error
	switch cons.Kind {
	case compare.DecSame:
		elemEmit, err = c.ident(elemA, elemB)
		if err != nil {
			return nil, nil, err
		}
		if lay := c.analyze(elemA); lay.copySafe() {
			bulk = lay
		}
	case compare.DecRecord:
		elemEmit, err = c.consElem(cons)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, unsupported("list cons cell with plan kind %d", cons.Kind)
	}
	return elemEmit, bulk, nil
}

// consElem derives the per-element conversion from a cons-cell record
// plan: the unique tail leaf (path [1]) on each side must be last and
// map to its counterpart; the remaining head leaves form an ordinary
// record shuffle. Leaf paths lose their leading head index so depth
// accounting matches wire.decode of the element type itself.
func (c *compiler) consElem(cons *plan.Node) (emitFn, error) {
	tailA := len(cons.FlatA) - 1
	tailB := len(cons.FlatB) - 1
	if tailA < 0 || tailB < 0 ||
		len(cons.FlatA[tailA].Path) != 1 || cons.FlatA[tailA].Path[0] != 1 ||
		len(cons.FlatB[tailB].Path) != 1 || cons.FlatB[tailB].Path[0] != 1 {
		return nil, unsupported("cons cell without trailing tail leaf")
	}
	for i := 0; i < tailA; i++ {
		if len(cons.FlatA[i].Path) == 0 || cons.FlatA[i].Path[0] != 0 {
			return nil, unsupported("cons cell with non-head leaf")
		}
	}
	if cons.Perm[tailA] != tailB {
		return nil, unsupported("cons tail does not map to tail")
	}
	for i := 0; i < tailA; i++ {
		if cons.Perm[i] >= tailB {
			return nil, unsupported("cons head leaf maps to tail")
		}
	}
	return c.record(cons.FlatA[:tailA], cons.FlatB[:tailB], cons.Perm[:tailA], cons.LeafPlans[:tailA], 1)
}

// listEmit builds the sequence loop. When the element pair is an
// identity with a copy-safe layout, runs of elements collapse to one
// bounds-checked bulk copy (the hot path for strings and scalar arrays).
func listEmit(elem emitFn, bulk *layout) emitFn {
	return func(x *xctx) error {
		if x.depth > wire.MaxDecodeDepth {
			return depthErr()
		}
		n64, off, err := wire.ReadUint(x.src, x.off, 4)
		if err != nil {
			return err
		}
		if n64 > wire.MaxListLen {
			return limits.Exceededf("transcode: list length %d exceeds limit of %d", n64, wire.MaxListLen)
		}
		x.off = off
		x.dst = wire.AppendUint(x.dst, x.base, 4, n64)
		n := int(n64)
		if n == 0 {
			return nil
		}
		if bulk != nil {
			rs := x.off % 8
			sz := bulk.size[rs]
			if rs%bulk.align == x.dstRel()%bulk.align && sz%bulk.align == 0 && len(bulk.holes[rs]) == 0 {
				if x.depth+1+bulk.levels > wire.MaxDecodeDepth {
					return depthErr()
				}
				total := n * sz
				if x.off+total > len(x.src) {
					return truncErr(x.off + total)
				}
				x.dst = append(x.dst, x.src[x.off:x.off+total]...)
				x.off += total
				return nil
			}
		}
		x.depth++
		for i := 0; i < n; i++ {
			if err := elem(x); err != nil {
				x.depth--
				return err
			}
		}
		x.depth--
		return nil
	}
}

func portEmit() emitFn {
	return func(x *xctx) error {
		if x.depth > wire.MaxDecodeDepth {
			return depthErr()
		}
		n, off, err := wire.ReadUint(x.src, x.off, 4)
		if err != nil {
			return err
		}
		if uint64(off)+n > uint64(len(x.src)) {
			return fmt.Errorf("transcode: %w (port reference)", wire.ErrShort)
		}
		x.dst = wire.AppendUint(x.dst, x.base, 4, n)
		x.dst = append(x.dst, x.src[off:off+int(n)]...)
		x.off = off + int(n)
		return nil
	}
}

// primEmit compiles a primitive-to-primitive conversion (identity or
// widening), replicating the tree path's exact read-validate-write chain
// so output bytes — including NaN canonicalization and sign extension —
// are indistinguishable.
func (c *compiler) primEmit(tA, tB *mtype.Type) (emitFn, error) {
	ua, ub := wire.Unfold(tA), wire.Unfold(tB)
	if ua == nil || ub == nil {
		return nil, unsupported("unbound recursive type")
	}
	if ua.Kind() != ub.Kind() {
		return nil, unsupported("cross-kind primitive pair %s/%s", ua.Kind(), ub.Kind())
	}
	switch ua.Kind() {
	case mtype.KindInteger:
		sa, signed, err := wire.IntWidth(ua)
		if err != nil {
			return nil, unsupported("integer exceeds 64 bits")
		}
		sb, _, err := wire.IntWidth(ub)
		if err != nil {
			return nil, unsupported("integer exceeds 64 bits")
		}
		check, err := intRangeCheck(ua)
		if err != nil {
			return nil, err
		}
		return func(x *xctx) error {
			if x.depth > wire.MaxDecodeDepth {
				return depthErr()
			}
			u, off, err := wire.ReadUint(x.src, x.off, sa)
			if err != nil {
				return err
			}
			if err := check(u, sa, signed); err != nil {
				return err
			}
			if signed {
				shift := uint(64 - 8*sa)
				u = uint64(int64(u<<shift) >> shift)
			}
			x.off = off
			x.dst = wire.AppendUint(x.dst, x.base, sb, u)
			return nil
		}, nil
	case mtype.KindCharacter:
		sa, sb := wire.CharWidth(ua), wire.CharWidth(ub)
		return func(x *xctx) error {
			if x.depth > wire.MaxDecodeDepth {
				return depthErr()
			}
			u, off, err := wire.ReadUint(x.src, x.off, sa)
			if err != nil {
				return err
			}
			x.off = off
			x.dst = wire.AppendUint(x.dst, x.base, sb, uint64(uint32(rune(u))))
			return nil
		}, nil
	case mtype.KindReal:
		sa, err := wire.RealWidth(ua)
		if err != nil {
			return nil, unsupported("real exceeds binary64")
		}
		sb, err := wire.RealWidth(ub)
		if err != nil {
			return nil, unsupported("real exceeds binary64")
		}
		return func(x *xctx) error {
			if x.depth > wire.MaxDecodeDepth {
				return depthErr()
			}
			u, off, err := wire.ReadUint(x.src, x.off, sa)
			if err != nil {
				return err
			}
			var f float64
			if sa == 4 {
				f = float64(math.Float32frombits(uint32(u)))
			} else {
				f = math.Float64frombits(u)
			}
			if sb == 4 {
				u = uint64(math.Float32bits(float32(f)))
			} else {
				u = math.Float64bits(f)
			}
			x.off = off
			x.dst = wire.AppendUint(x.dst, x.base, sb, u)
			return nil
		}, nil
	default:
		return nil, unsupported("primitive pair of kind %s", ua.Kind())
	}
}
