// Package bind connects annotated Stype declarations to concrete
// representations: it reads abstract values (package value) out of
// simulated C memory (package cmem) and Java heaps (package jheap) and
// writes them back, following exactly the lowering decisions of package
// lower. A local Mockingbird stub is the composition
//
//	read(repr A) → convert(plan) → write(repr B) → invoke → read back …
//
// which is the structure of the generated JNI stubs described in §4 of
// the paper.
package bind

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/cmem"
	"repro/internal/lower"
	"repro/internal/stype"
	"repro/internal/value"
)

// maxDepth bounds recursive reads so cyclic object graphs fail cleanly
// instead of recursing forever (by-value lowering assumes trees).
const maxDepth = 10000

// C binds declarations of a C universe to arena memory.
type C struct {
	u   *stype.Universe
	lay *cmem.Layouts
}

// NewC returns a C binder for the universe under the given data model.
func NewC(u *stype.Universe, model cmem.Model) *C {
	return &C{u: u, lay: cmem.NewLayouts(u, model)}
}

// Layouts exposes the layout calculator (used by tests and the fitter
// implementations).
func (c *C) Layouts() *cmem.Layouts { return c.lay }

// Read reads the value of annotated type t stored at addr. lengths
// supplies runtime lengths for length-from arrays (keyed by the array
// parameter's name).
func (c *C) Read(t *stype.Type, mem *cmem.Arena, at cmem.Addr, arrayLen int) (value.Value, error) {
	return c.read(t, mem, at, arrayLen, 0)
}

func (c *C) read(t *stype.Type, mem *cmem.Arena, at cmem.Addr, arrayLen, depth int) (value.Value, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("bind: value nesting exceeds %d (cyclic data?)", maxDepth)
	}
	switch t.Kind {
	case stype.KPrim:
		return c.readPrim(t, mem, at)
	case stype.KEnum:
		n, err := mem.ReadI(at, 4)
		if err != nil {
			return nil, err
		}
		return value.NewInt(n), nil
	case stype.KNamed:
		target := t.Target
		if target == nil {
			target = c.u.Lookup(t.Name)
		}
		if target == nil {
			return nil, fmt.Errorf("bind: unresolved type %q", t.Name)
		}
		overlaid := *target.Type
		overlaid.Ann = target.Type.Ann.Merge(t.Ann)
		return c.read(&overlaid, mem, at, arrayLen, depth+1)
	case stype.KStruct:
		lay, err := c.lay.Of(t)
		if err != nil {
			return nil, err
		}
		var fields []value.Value
		for i, f := range t.Fields {
			if f.Type.Ann.Ignore {
				continue
			}
			fv, err := c.read(f.Type, mem, at+cmem.Addr(lay.Offsets[i]), -1, depth+1)
			if err != nil {
				return nil, fmt.Errorf("field %s: %w", f.Name, err)
			}
			fields = append(fields, fv)
		}
		return value.Record{Fields: fields}, nil
	case stype.KUnion:
		// C unions carry no discriminant in memory; the prototype's union
		// support was incomplete (§6) and the C binding matches that.
		return nil, fmt.Errorf("bind: cannot read C union %s (no discriminant in memory)", t.Name)
	case stype.KPointer:
		return c.readPointer(t, mem, at, arrayLen, depth)
	case stype.KArray:
		return c.readArray(t, mem, at, arrayLen, depth)
	default:
		return nil, fmt.Errorf("bind: cannot read C %s", t.Kind)
	}
}

func (c *C) readPrim(t *stype.Type, mem *cmem.Arena, at cmem.Addr) (value.Value, error) {
	asChar := func(def bool) bool {
		if t.Ann.AsChar != nil {
			return *t.Ann.AsChar
		}
		return def && t.Ann.Range == nil
	}
	switch t.Prim {
	case stype.PVoid:
		return value.Unit{}, nil
	case stype.PBool:
		u, err := mem.ReadU(at, 1)
		if err != nil {
			return nil, err
		}
		if u != 0 {
			u = 1
		}
		return value.NewInt(int64(u)), nil
	case stype.PF32:
		f, err := mem.ReadF32(at)
		if err != nil {
			return nil, err
		}
		return value.Real{V: float64(f)}, nil
	case stype.PF64:
		f, err := mem.ReadF64(at)
		if err != nil {
			return nil, err
		}
		return value.Real{V: f}, nil
	case stype.PChar8:
		if asChar(true) {
			u, err := mem.ReadU(at, 1)
			if err != nil {
				return nil, err
			}
			return value.Char{R: rune(u)}, nil
		}
		n, err := mem.ReadI(at, 1)
		if err != nil {
			return nil, err
		}
		return value.NewInt(n), nil
	case stype.PChar16:
		if asChar(true) {
			u, err := mem.ReadU(at, 2)
			if err != nil {
				return nil, err
			}
			return value.Char{R: rune(u)}, nil
		}
		u, err := mem.ReadU(at, 2)
		if err != nil {
			return nil, err
		}
		return value.NewInt(int64(u)), nil
	case stype.PI8, stype.PI16, stype.PI32, stype.PI64:
		if asChar(false) {
			size, _ := primByteSize(t.Prim)
			u, err := mem.ReadU(at, size)
			if err != nil {
				return nil, err
			}
			return value.Char{R: rune(u)}, nil
		}
		size, _ := primByteSize(t.Prim)
		n, err := mem.ReadI(at, size)
		if err != nil {
			return nil, err
		}
		return value.NewInt(n), nil
	case stype.PU8, stype.PU16, stype.PU32, stype.PU64:
		if asChar(false) {
			size, _ := primByteSize(t.Prim)
			u, err := mem.ReadU(at, size)
			if err != nil {
				return nil, err
			}
			return value.Char{R: rune(u)}, nil
		}
		size, _ := primByteSize(t.Prim)
		u, err := mem.ReadU(at, size)
		if err != nil {
			return nil, err
		}
		return value.Int{V: new(big.Int).SetUint64(u)}, nil
	default:
		return nil, fmt.Errorf("bind: cannot read primitive %s", t.Prim)
	}
}

func primByteSize(p stype.Prim) (int, error) {
	switch p {
	case stype.PBool, stype.PI8, stype.PU8, stype.PChar8:
		return 1, nil
	case stype.PI16, stype.PU16, stype.PChar16:
		return 2, nil
	case stype.PI32, stype.PU32, stype.PF32:
		return 4, nil
	case stype.PI64, stype.PU64, stype.PF64:
		return 8, nil
	default:
		return 0, fmt.Errorf("bind: %s has no size", p)
	}
}

func (c *C) readPointer(t *stype.Type, mem *cmem.Arena, at cmem.Addr, arrayLen, depth int) (value.Value, error) {
	target, err := mem.ReadPtr(at, c.lay.Model())
	if err != nil {
		return nil, err
	}
	ann := t.Ann
	switch {
	case ann.FixedLen > 0:
		return c.readElems(t.ElemType, mem, target, ann.FixedLen, depth, false)
	case ann.LengthFrom != "":
		if arrayLen < 0 {
			return nil, fmt.Errorf("bind: runtime length for pointer-array not supplied")
		}
		return c.readElems(t.ElemType, mem, target, arrayLen, depth, true)
	case ann.NonNull:
		if target == cmem.Null {
			return nil, fmt.Errorf("bind: NULL in pointer annotated nonnull")
		}
		return c.read(t.ElemType, mem, target, -1, depth+1)
	default:
		if target == cmem.Null {
			return value.Null(), nil
		}
		inner, err := c.read(t.ElemType, mem, target, -1, depth+1)
		if err != nil {
			return nil, err
		}
		return value.Some(inner), nil
	}
}

// readElems reads n contiguous elements starting at base; asList selects
// the recursive list encoding (indefinite arrays) over a Record (fixed).
func (c *C) readElems(elem *stype.Type, mem *cmem.Arena, base cmem.Addr, n int, depth int, asList bool) (value.Value, error) {
	if base == cmem.Null && n > 0 {
		return nil, fmt.Errorf("bind: NULL array of %d elements", n)
	}
	lay, err := c.lay.Of(elem)
	if err != nil {
		return nil, err
	}
	out := make([]value.Value, n)
	for i := 0; i < n; i++ {
		v, err := c.read(elem, mem, base+cmem.Addr(i*lay.Size), -1, depth+1)
		if err != nil {
			return nil, fmt.Errorf("element %d: %w", i, err)
		}
		out[i] = v
	}
	if asList {
		return value.FromSlice(out), nil
	}
	return value.Record{Fields: out}, nil
}

func (c *C) readArray(t *stype.Type, mem *cmem.Arena, at cmem.Addr, arrayLen, depth int) (value.Value, error) {
	length := t.Len
	if t.Ann.FixedLen > 0 {
		length = t.Ann.FixedLen
	}
	if length >= 0 && t.Ann.LengthFrom == "" {
		return c.readElems(t.ElemType, mem, at, length, depth, false)
	}
	if arrayLen < 0 {
		return nil, fmt.Errorf("bind: runtime length for indefinite array not supplied")
	}
	return c.readElems(t.ElemType, mem, at, arrayLen, depth, true)
}

// Write stores v (a value of t's Mtype) at addr. Pointers allocate their
// referents in the arena.
func (c *C) Write(t *stype.Type, mem *cmem.Arena, at cmem.Addr, v value.Value) error {
	return c.write(t, mem, at, v, 0)
}

func (c *C) write(t *stype.Type, mem *cmem.Arena, at cmem.Addr, v value.Value, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("bind: value nesting exceeds %d", maxDepth)
	}
	switch t.Kind {
	case stype.KPrim:
		return c.writePrim(t, mem, at, v)
	case stype.KEnum:
		iv, ok := v.(value.Int)
		if !ok {
			return fmt.Errorf("bind: enum wants integer, got %T", v)
		}
		n, err := iv.Int64()
		if err != nil {
			return err
		}
		return mem.WriteU(at, 4, uint64(n))
	case stype.KNamed:
		target := t.Target
		if target == nil {
			target = c.u.Lookup(t.Name)
		}
		if target == nil {
			return fmt.Errorf("bind: unresolved type %q", t.Name)
		}
		overlaid := *target.Type
		overlaid.Ann = target.Type.Ann.Merge(t.Ann)
		return c.write(&overlaid, mem, at, v, depth+1)
	case stype.KStruct:
		lay, err := c.lay.Of(t)
		if err != nil {
			return err
		}
		rec, ok := v.(value.Record)
		if !ok {
			return fmt.Errorf("bind: struct wants record, got %T", v)
		}
		vi := 0
		for i, f := range t.Fields {
			if f.Type.Ann.Ignore {
				continue
			}
			if vi >= len(rec.Fields) {
				return fmt.Errorf("bind: record too short for struct %s", t.Name)
			}
			if err := c.write(f.Type, mem, at+cmem.Addr(lay.Offsets[i]), rec.Fields[vi], depth+1); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
			vi++
		}
		if vi != len(rec.Fields) {
			return fmt.Errorf("bind: record has %d extra fields for struct %s", len(rec.Fields)-vi, t.Name)
		}
		return nil
	case stype.KUnion:
		return fmt.Errorf("bind: cannot write C union %s", t.Name)
	case stype.KPointer:
		return c.writePointer(t, mem, at, v, depth)
	case stype.KArray:
		return c.writeArray(t, mem, at, v, depth)
	default:
		return fmt.Errorf("bind: cannot write C %s", t.Kind)
	}
}

func (c *C) writePrim(t *stype.Type, mem *cmem.Arena, at cmem.Addr, v value.Value) error {
	switch t.Prim {
	case stype.PVoid:
		return nil
	case stype.PF32:
		rv, ok := v.(value.Real)
		if !ok {
			return fmt.Errorf("bind: float wants real, got %T", v)
		}
		return mem.WriteF32(at, float32(rv.V))
	case stype.PF64:
		rv, ok := v.(value.Real)
		if !ok {
			return fmt.Errorf("bind: double wants real, got %T", v)
		}
		return mem.WriteF64(at, rv.V)
	default:
		size, err := primByteSize(t.Prim)
		if err != nil {
			return err
		}
		switch pv := v.(type) {
		case value.Int:
			if pv.V == nil {
				return fmt.Errorf("bind: nil integer")
			}
			var u uint64
			if pv.V.Sign() < 0 {
				u = uint64(pv.V.Int64())
			} else {
				u = pv.V.Uint64()
			}
			return mem.WriteU(at, size, u)
		case value.Char:
			return mem.WriteU(at, size, uint64(pv.R))
		default:
			return fmt.Errorf("bind: %s wants integer or char, got %T", t.Prim, v)
		}
	}
}

func (c *C) writePointer(t *stype.Type, mem *cmem.Arena, at cmem.Addr, v value.Value, depth int) error {
	ann := t.Ann
	elemLay, err := c.lay.Of(t.ElemType)
	if err != nil {
		return err
	}
	switch {
	case ann.FixedLen > 0:
		rec, ok := v.(value.Record)
		if !ok || len(rec.Fields) != ann.FixedLen {
			return fmt.Errorf("bind: fixed array pointer wants %d-field record, got %s", ann.FixedLen, v)
		}
		base := mem.Alloc(elemLay.Size*ann.FixedLen, elemLay.Align)
		for i, f := range rec.Fields {
			if err := c.write(t.ElemType, mem, base+cmem.Addr(i*elemLay.Size), f, depth+1); err != nil {
				return err
			}
		}
		return mem.WritePtr(at, c.lay.Model(), base)
	case ann.LengthFrom != "":
		elems, err := value.ToSlice(v)
		if err != nil {
			return err
		}
		base := cmem.Null
		if len(elems) > 0 {
			base = mem.Alloc(elemLay.Size*len(elems), elemLay.Align)
		}
		for i, e := range elems {
			if err := c.write(t.ElemType, mem, base+cmem.Addr(i*elemLay.Size), e, depth+1); err != nil {
				return err
			}
		}
		return mem.WritePtr(at, c.lay.Model(), base)
	case ann.NonNull:
		base := mem.Alloc(elemLay.Size, elemLay.Align)
		if err := c.write(t.ElemType, mem, base, v, depth+1); err != nil {
			return err
		}
		return mem.WritePtr(at, c.lay.Model(), base)
	default:
		cv, ok := v.(value.Choice)
		if !ok {
			return fmt.Errorf("bind: nullable pointer wants choice, got %T", v)
		}
		if cv.Alt == 0 {
			return mem.WritePtr(at, c.lay.Model(), cmem.Null)
		}
		base := mem.Alloc(elemLay.Size, elemLay.Align)
		if err := c.write(t.ElemType, mem, base, cv.V, depth+1); err != nil {
			return err
		}
		return mem.WritePtr(at, c.lay.Model(), base)
	}
}

func (c *C) writeArray(t *stype.Type, mem *cmem.Arena, at cmem.Addr, v value.Value, depth int) error {
	elemLay, err := c.lay.Of(t.ElemType)
	if err != nil {
		return err
	}
	length := t.Len
	if t.Ann.FixedLen > 0 {
		length = t.Ann.FixedLen
	}
	if length >= 0 && t.Ann.LengthFrom == "" {
		rec, ok := v.(value.Record)
		if !ok || len(rec.Fields) != length {
			return fmt.Errorf("bind: array[%d] wants %d-field record, got %s", length, length, v)
		}
		for i, f := range rec.Fields {
			if err := c.write(t.ElemType, mem, at+cmem.Addr(i*elemLay.Size), f, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("bind: cannot write indefinite array in place (use a pointer parameter)")
}

// CFunc is a registered C function implementation: it receives raw
// argument words (scalars or addresses) and operates on the arena like
// compiled C code would on process memory.
type CFunc func(mem *cmem.Arena, args []uint64) (uint64, error)

// ArgF32 decodes a float argument word.
func ArgF32(w uint64) float32 { return math.Float32frombits(uint32(w)) }

// ArgF64 decodes a double argument word.
func ArgF64(w uint64) float64 { return math.Float64frombits(w) }

// RetF32 encodes a float return word.
func RetF32(f float32) uint64 { return uint64(math.Float32bits(f)) }

// RetF64 encodes a double return word.
func RetF64(f float64) uint64 { return math.Float64bits(f) }

// Call invokes a C function implementation through the binding: it writes
// the input record into fresh arena storage following the declaration's
// annotated signature, calls impl, and reads back the output record
// (out/inout parameters in declaration order, then the return value) —
// the C half of a local stub.
func (c *C) Call(decl *stype.Decl, impl CFunc, mem *cmem.Arena, inputs value.Value) (value.Value, error) {
	fn := decl.Type
	if fn.Kind != stype.KFunc {
		return nil, fmt.Errorf("bind: %s is not a function", decl.Name)
	}
	sig, err := lower.SignatureOf(fn.Params, fn.Result)
	if err != nil {
		return nil, err
	}
	inRec, ok := inputs.(value.Record)
	if !ok {
		return nil, fmt.Errorf("bind: inputs must be a record, got %T", inputs)
	}

	// Pair input record fields with in/inout parameters in order.
	inVals := make(map[string]value.Value)
	idx := 0
	for _, p := range fn.Params {
		role := sig.Roles[p.Name]
		if role != lower.RoleIn && role != lower.RoleInOut {
			continue
		}
		if idx >= len(inRec.Fields) {
			return nil, fmt.Errorf("bind: too few input fields for %s", decl.Name)
		}
		inVals[p.Name] = inRec.Fields[idx]
		idx++
	}
	if idx != len(inRec.Fields) {
		return nil, fmt.Errorf("bind: %d extra input fields for %s", len(inRec.Fields)-idx, decl.Name)
	}

	// Lengths of list-valued arrays, for length parameters.
	listLens := make(map[string]int)
	for lenName, arrName := range sig.LengthOf {
		av, ok := inVals[arrName]
		if !ok {
			return nil, fmt.Errorf("bind: array %s (length %s) is not an input", arrName, lenName)
		}
		elems, err := value.ToSlice(av)
		if err != nil {
			return nil, fmt.Errorf("bind: array %s: %w", arrName, err)
		}
		listLens[lenName] = len(elems)
	}

	args := make([]uint64, len(fn.Params))
	outAddrs := make(map[string]cmem.Addr)
	for i, p := range fn.Params {
		role := sig.Roles[p.Name]
		switch role {
		case lower.RoleLength:
			args[i] = uint64(listLens[p.Name])
		case lower.RoleIn, lower.RoleInOut:
			w, addr, err := c.argWord(p.Type, mem, inVals[p.Name])
			if err != nil {
				return nil, fmt.Errorf("bind: parameter %s: %w", p.Name, err)
			}
			args[i] = w
			if role == lower.RoleInOut {
				outAddrs[p.Name] = addr
			}
		case lower.RoleOut:
			if p.Type.Kind != stype.KPointer {
				return nil, fmt.Errorf("bind: out parameter %s must be a pointer", p.Name)
			}
			lay, err := c.lay.Of(p.Type.ElemType)
			if err != nil {
				return nil, err
			}
			buf := mem.Alloc(lay.Size, lay.Align)
			args[i] = uint64(buf)
			outAddrs[p.Name] = buf
		}
	}

	ret, err := impl(mem, args)
	if err != nil {
		return nil, fmt.Errorf("bind: %s: %w", decl.Name, err)
	}

	// Collect outputs: out/inout parameters in order, then the return.
	var outs []value.Value
	for _, p := range fn.Params {
		role := sig.Roles[p.Name]
		if role != lower.RoleOut && role != lower.RoleInOut {
			continue
		}
		v, err := c.read(p.Type.ElemType, mem, outAddrs[p.Name], -1, 0)
		if err != nil {
			return nil, fmt.Errorf("bind: out parameter %s: %w", p.Name, err)
		}
		outs = append(outs, v)
	}
	if fn.Result != nil {
		rv, err := c.retValue(fn.Result, mem, ret)
		if err != nil {
			return nil, fmt.Errorf("bind: return: %w", err)
		}
		outs = append(outs, rv)
	}
	return value.Record{Fields: outs}, nil
}

// argWord turns an input value into a call argument word, allocating
// arena storage for aggregates. For pointer/array parameters the returned
// address is the passed buffer (for inout reads back).
func (c *C) argWord(t *stype.Type, mem *cmem.Arena, v value.Value) (uint64, cmem.Addr, error) {
	switch t.Kind {
	case stype.KPrim:
		switch t.Prim {
		case stype.PF32:
			rv, ok := v.(value.Real)
			if !ok {
				return 0, 0, fmt.Errorf("float wants real, got %T", v)
			}
			return RetF32(float32(rv.V)), 0, nil
		case stype.PF64:
			rv, ok := v.(value.Real)
			if !ok {
				return 0, 0, fmt.Errorf("double wants real, got %T", v)
			}
			return RetF64(rv.V), 0, nil
		default:
			switch pv := v.(type) {
			case value.Int:
				n, err := pv.Int64()
				if err != nil {
					// Large unsigned values still fit in the word.
					if pv.V != nil && pv.V.Sign() >= 0 && pv.V.IsUint64() {
						return pv.V.Uint64(), 0, nil
					}
					return 0, 0, err
				}
				return uint64(n), 0, nil
			case value.Char:
				return uint64(pv.R), 0, nil
			default:
				return 0, 0, fmt.Errorf("scalar wants integer or char, got %T", v)
			}
		}
	case stype.KEnum:
		pv, ok := v.(value.Int)
		if !ok {
			return 0, 0, fmt.Errorf("enum wants integer, got %T", v)
		}
		n, err := pv.Int64()
		if err != nil {
			return 0, 0, err
		}
		return uint64(n), 0, nil
	case stype.KNamed:
		target := t.Target
		if target == nil {
			target = c.u.Lookup(t.Name)
		}
		if target == nil {
			return 0, 0, fmt.Errorf("unresolved type %q", t.Name)
		}
		overlaid := *target.Type
		overlaid.Ann = target.Type.Ann.Merge(t.Ann)
		return c.argWord(&overlaid, mem, v)
	case stype.KPointer, stype.KArray:
		// Write through a temporary pointer slot: the argument is the
		// address the pointer slot ends up holding. Arrays decay to a
		// pointer to their first element.
		pt := t
		if t.Kind == stype.KArray {
			pt = &stype.Type{Kind: stype.KPointer, ElemType: t.ElemType, Ann: t.Ann}
			if t.Len > 0 && pt.Ann.FixedLen == 0 && pt.Ann.LengthFrom == "" {
				pt.Ann.FixedLen = t.Len
			}
		}
		slot := mem.Alloc(c.lay.Model().PointerSize(), c.lay.Model().PointerSize())
		if err := c.writePointer(pt, mem, slot, v, 0); err != nil {
			return 0, 0, err
		}
		target, err := mem.ReadPtr(slot, c.lay.Model())
		if err != nil {
			return 0, 0, err
		}
		return uint64(target), target, nil
	default:
		return 0, 0, fmt.Errorf("cannot pass %s by value", t.Kind)
	}
}

// retValue decodes a return word.
func (c *C) retValue(t *stype.Type, mem *cmem.Arena, w uint64) (value.Value, error) {
	switch t.Kind {
	case stype.KPrim:
		switch t.Prim {
		case stype.PVoid:
			return value.Unit{}, nil
		case stype.PF32:
			return value.Real{V: float64(ArgF32(w))}, nil
		case stype.PF64:
			return value.Real{V: ArgF64(w)}, nil
		case stype.PChar8, stype.PChar16:
			if t.Ann.AsChar == nil || *t.Ann.AsChar {
				return value.Char{R: rune(w)}, nil
			}
			return value.NewInt(int64(w)), nil
		case stype.PU8, stype.PU16, stype.PU32, stype.PU64:
			return value.Int{V: new(big.Int).SetUint64(w)}, nil
		default:
			size, err := primByteSize(t.Prim)
			if err != nil {
				return nil, err
			}
			shift := uint(64 - 8*size)
			return value.NewInt(int64(w<<shift) >> shift), nil
		}
	case stype.KEnum:
		return value.NewInt(int64(int32(w))), nil
	case stype.KNamed:
		target := t.Target
		if target == nil {
			target = c.u.Lookup(t.Name)
		}
		if target == nil {
			return nil, fmt.Errorf("unresolved type %q", t.Name)
		}
		overlaid := *target.Type
		overlaid.Ann = target.Type.Ann.Merge(t.Ann)
		return c.retValue(&overlaid, mem, w)
	case stype.KPointer:
		// Returned pointers are read through the pointer lowering: write
		// the word into a slot and read it back as a value.
		slot := mem.Alloc(c.lay.Model().PointerSize(), c.lay.Model().PointerSize())
		if err := mem.WritePtr(slot, c.lay.Model(), cmem.Addr(w)); err != nil {
			return nil, err
		}
		return c.readPointer(t, mem, slot, -1, 0)
	default:
		return nil, fmt.Errorf("cannot return %s by value", t.Kind)
	}
}
