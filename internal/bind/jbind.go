package bind

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/jheap"
	"repro/internal/lower"
	"repro/internal/stype"
	"repro/internal/value"
)

// J binds declarations of a Java universe to a simulated heap.
type J struct {
	u *stype.Universe
}

// NewJ returns a Java binder for the universe.
func NewJ(u *stype.Universe) *J {
	return &J{u: u}
}

// PortRef renders a heap reference as an object-port reference string.
func PortRef(r jheap.Ref) string { return "jobj:" + strconv.Itoa(int(r)) }

// ParsePortRef recovers a heap reference from an object-port string.
func ParsePortRef(s string) (jheap.Ref, error) {
	rest, ok := strings.CutPrefix(s, "jobj:")
	if !ok {
		return jheap.NullRef, fmt.Errorf("bind: %q is not a heap object port", s)
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return jheap.NullRef, fmt.Errorf("bind: bad object port %q", s)
	}
	return jheap.Ref(n), nil
}

// Read reads the value of annotated type t from a field slot.
func (j *J) Read(t *stype.Type, h *jheap.Heap, s jheap.Slot) (value.Value, error) {
	return j.read(t, h, s, 0)
}

func (j *J) read(t *stype.Type, h *jheap.Heap, s jheap.Slot, depth int) (value.Value, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("bind: object nesting exceeds %d (cyclic by-value data?)", maxDepth)
	}
	switch t.Kind {
	case stype.KPrim:
		return j.readPrim(t, s)
	case stype.KNamed:
		target := t.Target
		if target == nil {
			target = j.u.Lookup(t.Name)
		}
		if target == nil {
			return nil, fmt.Errorf("bind: unresolved type %q", t.Name)
		}
		switch target.Type.Kind {
		case stype.KClass, stype.KInterface:
			return j.readClassRef(target, t.Ann, h, s, depth)
		default:
			overlaid := *target.Type
			overlaid.Ann = target.Type.Ann.Merge(t.Ann)
			return j.read(&overlaid, h, s, depth+1)
		}
	case stype.KArray:
		return j.readArray(t, h, s, depth)
	case stype.KSequence:
		return j.readSequence(t, h, s, depth)
	default:
		return nil, fmt.Errorf("bind: cannot read Java %s", t.Kind)
	}
}

func (j *J) readPrim(t *stype.Type, s jheap.Slot) (value.Value, error) {
	asChar := func(def bool) bool {
		if t.Ann.AsChar != nil {
			return *t.Ann.AsChar
		}
		return def && t.Ann.Range == nil
	}
	switch t.Prim {
	case stype.PVoid:
		return value.Unit{}, nil
	case stype.PBool:
		if s.Kind != jheap.SlotInt {
			return nil, fmt.Errorf("bind: boolean wants int slot, got %d", s.Kind)
		}
		v := int64(0)
		if s.I != 0 {
			v = 1
		}
		return value.NewInt(v), nil
	case stype.PF32, stype.PF64:
		if s.Kind != jheap.SlotFloat {
			return nil, fmt.Errorf("bind: float wants float slot, got %d", s.Kind)
		}
		return value.Real{V: s.F}, nil
	case stype.PChar16, stype.PChar8:
		if asChar(true) {
			if s.Kind != jheap.SlotChar {
				return nil, fmt.Errorf("bind: char wants char slot, got %d", s.Kind)
			}
			return value.Char{R: s.C}, nil
		}
		if s.Kind == jheap.SlotChar {
			return value.NewInt(int64(s.C)), nil
		}
		return value.NewInt(s.I), nil
	default:
		if asChar(false) {
			if s.Kind == jheap.SlotInt {
				return value.Char{R: rune(s.I)}, nil
			}
			return value.Char{R: s.C}, nil
		}
		if s.Kind != jheap.SlotInt {
			return nil, fmt.Errorf("bind: %s wants int slot, got %d", t.Prim, s.Kind)
		}
		return value.NewInt(s.I), nil
	}
}

// readClassRef reads a reference to a class/interface instance following
// the lowering rules: collection, by-value containment, or object port,
// with nullability from the use-site annotation.
func (j *J) readClassRef(d *stype.Decl, use stype.Ann, h *jheap.Heap, s jheap.Slot, depth int) (value.Value, error) {
	if s.Kind != jheap.SlotRef {
		return nil, fmt.Errorf("bind: reference to %s wants ref slot, got %d", d.Name, s.Kind)
	}
	if s.R == jheap.NullRef {
		if use.NonNull {
			return nil, fmt.Errorf("bind: null in reference to %s annotated nonnull", d.Name)
		}
		return value.Null(), nil
	}
	core, err := j.readObject(d, use, h, s.R, depth)
	if err != nil {
		return nil, err
	}
	if use.NonNull {
		return core, nil
	}
	return value.Some(core), nil
}

// readObject reads the referent itself (no nullability wrapper).
func (j *J) readObject(d *stype.Decl, use stype.Ann, h *jheap.Heap, r jheap.Ref, depth int) (value.Value, error) {
	target := d.Type
	if use.CollectionOf != "" || lower.IsCollection(j.u, d) {
		return j.readCollection(d, target.Ann.Merge(use), h, r, depth)
	}
	if lower.ByValueOf(d, use) {
		var fields []value.Value
		for i, f := range target.Fields {
			if f.Type.Ann.Ignore {
				continue
			}
			slot, err := h.Field(r, i)
			if err != nil {
				return nil, fmt.Errorf("bind: %s.%s: %w", d.Name, f.Name, err)
			}
			fv, err := j.read(f.Type, h, slot, depth+1)
			if err != nil {
				return nil, fmt.Errorf("bind: %s.%s: %w", d.Name, f.Name, err)
			}
			fields = append(fields, fv)
		}
		return value.Record{Fields: fields}, nil
	}
	return value.Port{Ref: PortRef(r)}, nil
}

func (j *J) readCollection(d *stype.Decl, ann stype.Ann, h *jheap.Heap, r jheap.Ref, depth int) (value.Value, error) {
	elemName := lower.CollectionElement(j.u, d, ann)
	if elemName == "" {
		return nil, fmt.Errorf("bind: %s is a collection of unknown element type", d.Name)
	}
	elemDecl := j.u.Lookup(elemName)
	if elemDecl == nil {
		return nil, fmt.Errorf("bind: collection %s: unknown element type %q", d.Name, elemName)
	}
	n, err := h.VectorLen(r)
	if err != nil {
		return nil, fmt.Errorf("bind: collection %s: %w", d.Name, err)
	}
	elemUse := stype.Ann{NonNull: ann.ElementNonNull}
	out := make([]value.Value, n)
	for i := 0; i < n; i++ {
		er, err := h.VectorAt(r, i)
		if err != nil {
			return nil, err
		}
		ev, err := j.readClassRef(elemDecl, elemUse, h, jheap.RefSlot(er), depth+1)
		if err != nil {
			return nil, fmt.Errorf("bind: element %d: %w", i, err)
		}
		out[i] = ev
	}
	return value.FromSlice(out), nil
}

func (j *J) readArray(t *stype.Type, h *jheap.Heap, s jheap.Slot, depth int) (value.Value, error) {
	if s.Kind != jheap.SlotRef {
		return nil, fmt.Errorf("bind: array wants ref slot, got %d", s.Kind)
	}
	if s.R == jheap.NullRef {
		return nil, fmt.Errorf("bind: null array (initialize it or annotate the field ignore)")
	}
	n, err := h.ArrayLen(s.R)
	if err != nil {
		return nil, err
	}
	out := make([]value.Value, n)
	elemIsPrim := t.ElemType.Kind == stype.KPrim
	for i := 0; i < n; i++ {
		var slot jheap.Slot
		if elemIsPrim {
			slot, err = h.PrimArrayAt(s.R, i)
		} else {
			var er jheap.Ref
			er, err = h.RefArrayAt(s.R, i)
			slot = jheap.RefSlot(er)
		}
		if err != nil {
			return nil, err
		}
		ev, err := j.read(t.ElemType, h, slot, depth+1)
		if err != nil {
			return nil, fmt.Errorf("bind: array element %d: %w", i, err)
		}
		out[i] = ev
	}
	return value.FromSlice(out), nil
}

func (j *J) readSequence(t *stype.Type, h *jheap.Heap, s jheap.Slot, depth int) (value.Value, error) {
	// Sequences (java.lang.String) are backed by primitive arrays.
	return j.readArray(&stype.Type{Kind: stype.KArray, ElemType: t.ElemType, Len: -1, Ann: t.Ann}, h, s, depth)
}

// Write materializes v in the heap, returning the slot holding it.
func (j *J) Write(t *stype.Type, h *jheap.Heap, v value.Value) (jheap.Slot, error) {
	return j.write(t, h, v, 0)
}

func (j *J) write(t *stype.Type, h *jheap.Heap, v value.Value, depth int) (jheap.Slot, error) {
	if depth > maxDepth {
		return jheap.Slot{}, fmt.Errorf("bind: value nesting exceeds %d", maxDepth)
	}
	switch t.Kind {
	case stype.KPrim:
		return j.writePrim(t, v)
	case stype.KNamed:
		target := t.Target
		if target == nil {
			target = j.u.Lookup(t.Name)
		}
		if target == nil {
			return jheap.Slot{}, fmt.Errorf("bind: unresolved type %q", t.Name)
		}
		switch target.Type.Kind {
		case stype.KClass, stype.KInterface:
			return j.writeClassRef(target, t.Ann, h, v, depth)
		default:
			overlaid := *target.Type
			overlaid.Ann = target.Type.Ann.Merge(t.Ann)
			return j.write(&overlaid, h, v, depth+1)
		}
	case stype.KArray:
		return j.writeArray(t, h, v, depth)
	case stype.KSequence:
		return j.writeArray(&stype.Type{Kind: stype.KArray, ElemType: t.ElemType, Len: -1, Ann: t.Ann}, h, v, depth)
	default:
		return jheap.Slot{}, fmt.Errorf("bind: cannot write Java %s", t.Kind)
	}
}

func (j *J) writePrim(t *stype.Type, v value.Value) (jheap.Slot, error) {
	switch t.Prim {
	case stype.PVoid:
		return jheap.IntSlot(0), nil
	case stype.PF32, stype.PF64:
		rv, ok := v.(value.Real)
		if !ok {
			return jheap.Slot{}, fmt.Errorf("bind: float wants real, got %T", v)
		}
		return jheap.FloatSlot(rv.V), nil
	case stype.PChar16, stype.PChar8:
		switch pv := v.(type) {
		case value.Char:
			return jheap.CharSlot(pv.R), nil
		case value.Int:
			n, err := pv.Int64()
			if err != nil {
				return jheap.Slot{}, err
			}
			return jheap.CharSlot(rune(n)), nil
		default:
			return jheap.Slot{}, fmt.Errorf("bind: char wants char or integer, got %T", v)
		}
	default:
		switch pv := v.(type) {
		case value.Int:
			n, err := pv.Int64()
			if err != nil {
				if pv.V != nil && pv.V.IsUint64() {
					return jheap.IntSlot(int64(pv.V.Uint64())), nil
				}
				return jheap.Slot{}, err
			}
			return jheap.IntSlot(n), nil
		case value.Char:
			return jheap.IntSlot(int64(pv.R)), nil
		default:
			return jheap.Slot{}, fmt.Errorf("bind: %s wants integer, got %T", t.Prim, v)
		}
	}
}

func (j *J) writeClassRef(d *stype.Decl, use stype.Ann, h *jheap.Heap, v value.Value, depth int) (jheap.Slot, error) {
	inner := v
	if !use.NonNull {
		cv, ok := v.(value.Choice)
		if !ok {
			return jheap.Slot{}, fmt.Errorf("bind: nullable reference to %s wants choice, got %T", d.Name, v)
		}
		if cv.Alt == 0 {
			return jheap.RefSlot(jheap.NullRef), nil
		}
		inner = cv.V
	}
	r, err := j.writeObject(d, use, h, inner, depth)
	if err != nil {
		return jheap.Slot{}, err
	}
	return jheap.RefSlot(r), nil
}

func (j *J) writeObject(d *stype.Decl, use stype.Ann, h *jheap.Heap, v value.Value, depth int) (jheap.Ref, error) {
	target := d.Type
	if use.CollectionOf != "" || lower.IsCollection(j.u, d) {
		return j.writeCollection(d, target.Ann.Merge(use), h, v, depth)
	}
	if lower.ByValueOf(d, use) {
		rec, ok := v.(value.Record)
		if !ok {
			return jheap.NullRef, fmt.Errorf("bind: by-value %s wants record, got %T", d.Name, v)
		}
		r := h.New(d.Name, len(target.Fields))
		vi := 0
		for i, f := range target.Fields {
			if f.Type.Ann.Ignore {
				continue
			}
			if vi >= len(rec.Fields) {
				return jheap.NullRef, fmt.Errorf("bind: record too short for %s", d.Name)
			}
			slot, err := j.write(f.Type, h, rec.Fields[vi], depth+1)
			if err != nil {
				return jheap.NullRef, fmt.Errorf("bind: %s.%s: %w", d.Name, f.Name, err)
			}
			if err := h.SetField(r, i, slot); err != nil {
				return jheap.NullRef, err
			}
			vi++
		}
		if vi != len(rec.Fields) {
			return jheap.NullRef, fmt.Errorf("bind: record has %d extra fields for %s", len(rec.Fields)-vi, d.Name)
		}
		return r, nil
	}
	pv, ok := v.(value.Port)
	if !ok {
		return jheap.NullRef, fmt.Errorf("bind: by-reference %s wants port, got %T", d.Name, v)
	}
	return ParsePortRef(pv.Ref)
}

func (j *J) writeCollection(d *stype.Decl, ann stype.Ann, h *jheap.Heap, v value.Value, depth int) (jheap.Ref, error) {
	elemName := lower.CollectionElement(j.u, d, ann)
	elemDecl := j.u.Lookup(elemName)
	if elemDecl == nil {
		return jheap.NullRef, fmt.Errorf("bind: collection %s: unknown element type %q", d.Name, elemName)
	}
	elems, err := value.ToSlice(v)
	if err != nil {
		return jheap.NullRef, fmt.Errorf("bind: collection %s: %w", d.Name, err)
	}
	r := h.NewVector(d.Name)
	elemUse := stype.Ann{NonNull: ann.ElementNonNull}
	for i, e := range elems {
		slot, err := j.writeClassRef(elemDecl, elemUse, h, e, depth+1)
		if err != nil {
			return jheap.NullRef, fmt.Errorf("bind: element %d: %w", i, err)
		}
		if err := h.VectorAppend(r, slot.R); err != nil {
			return jheap.NullRef, err
		}
	}
	return r, nil
}

func (j *J) writeArray(t *stype.Type, h *jheap.Heap, v value.Value, depth int) (jheap.Slot, error) {
	elems, err := value.ToSlice(v)
	if err != nil {
		return jheap.Slot{}, err
	}
	elemIsPrim := t.ElemType.Kind == stype.KPrim
	var r jheap.Ref
	if elemIsPrim {
		r = h.NewPrimArray(t.ElemType.Prim.String(), len(elems))
	} else {
		r = h.NewRefArray(t.ElemType.Name, len(elems))
	}
	for i, e := range elems {
		slot, err := j.write(t.ElemType, h, e, depth+1)
		if err != nil {
			return jheap.Slot{}, fmt.Errorf("bind: array element %d: %w", i, err)
		}
		if elemIsPrim {
			err = h.PrimArraySet(r, i, slot)
		} else {
			err = h.RefArraySet(r, i, slot.R)
		}
		if err != nil {
			return jheap.Slot{}, err
		}
	}
	return jheap.RefSlot(r), nil
}

// JFunc is a registered Java method implementation operating on the heap.
type JFunc func(h *jheap.Heap, args []jheap.Slot) (jheap.Slot, error)

// Call invokes a Java method implementation through the binding: inputs
// (a record of the method's parameters) are materialized as heap values,
// impl runs, and the output record ([return] or empty) is read back.
func (j *J) Call(d *stype.Decl, methodName string, impl JFunc, h *jheap.Heap, inputs value.Value) (value.Value, error) {
	var method *stype.Method
	for i := range d.Type.Methods {
		if d.Type.Methods[i].Name == methodName {
			method = &d.Type.Methods[i]
			break
		}
	}
	if method == nil {
		return nil, fmt.Errorf("bind: %s has no method %s", d.Name, methodName)
	}
	inRec, ok := inputs.(value.Record)
	if !ok {
		return nil, fmt.Errorf("bind: inputs must be a record, got %T", inputs)
	}
	if len(inRec.Fields) != len(method.Params) {
		return nil, fmt.Errorf("bind: %s.%s wants %d inputs, got %d",
			d.Name, methodName, len(method.Params), len(inRec.Fields))
	}
	args := make([]jheap.Slot, len(method.Params))
	for i, p := range method.Params {
		slot, err := j.write(p.Type, h, inRec.Fields[i], 0)
		if err != nil {
			return nil, fmt.Errorf("bind: parameter %s: %w", p.Name, err)
		}
		args[i] = slot
	}
	ret, err := impl(h, args)
	if err != nil {
		return nil, fmt.Errorf("bind: %s.%s: %w", d.Name, methodName, err)
	}
	if method.Result == nil {
		return value.Record{}, nil
	}
	rv, err := j.read(method.Result, h, ret, 0)
	if err != nil {
		return nil, fmt.Errorf("bind: %s.%s return: %w", d.Name, methodName, err)
	}
	return value.Record{Fields: []value.Value{rv}}, nil
}
