package bind

import (
	"testing"

	"repro/internal/annotate"
	"repro/internal/cmem"
	"repro/internal/cparse"
	"repro/internal/javaparse"
	"repro/internal/jheap"
	"repro/internal/lower"
	"repro/internal/stype"
	"repro/internal/value"
)

// --- C binding ---

func cUniverse(t *testing.T, src, script string) *stype.Universe {
	t.Helper()
	u, err := cparse.Parse("t.h", src, cparse.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if script != "" {
		if _, err := annotate.ApplyScript(u, script); err != nil {
			t.Fatal(err)
		}
	}
	return u
}

func TestCStructRoundTrip(t *testing.T) {
	u := cUniverse(t, `struct Point { float x; float y; };`, "")
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()
	pt := u.Lookup("Point").Type
	lay, err := c.Layouts().Of(pt)
	if err != nil {
		t.Fatal(err)
	}
	at := mem.Alloc(lay.Size, lay.Align)

	in := value.NewRecord(value.Real{V: 1.5}, value.Real{V: -2.5})
	if err := c.Write(pt, mem, at, in); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(pt, mem, at, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, in) {
		t.Errorf("round trip = %s, want %s", got, in)
	}
	// The value must inhabit the lowered Mtype.
	mt, err := lower.New(u).Decl("Point")
	if err != nil {
		t.Fatal(err)
	}
	if err := value.Check(got, mt); err != nil {
		t.Error(err)
	}
}

func TestCPrimitiveEncodings(t *testing.T) {
	u := cUniverse(t, `struct S { char c; int i; unsigned int u; double d; _Bool b; };`, "")
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()
	st := u.Lookup("S").Type
	lay, _ := c.Layouts().Of(st)
	at := mem.Alloc(lay.Size, lay.Align)
	in := value.NewRecord(
		value.Char{R: 'A'},
		value.NewInt(-123456),
		value.NewInt(3000000000),
		value.Real{V: 2.5},
		value.NewInt(1),
	)
	if err := c.Write(st, mem, at, in); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(st, mem, at, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, in) {
		t.Errorf("round trip = %s, want %s", got, in)
	}
}

func TestCPointerNullable(t *testing.T) {
	u := cUniverse(t, `struct H { int *p; };`, "")
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()
	h := u.Lookup("H").Type
	lay, _ := c.Layouts().Of(h)

	at := mem.Alloc(lay.Size, lay.Align)
	if err := c.Write(h, mem, at, value.NewRecord(value.Null())); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(h, mem, at, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, value.NewRecord(value.Null())) {
		t.Errorf("null round trip = %s", got)
	}

	at2 := mem.Alloc(lay.Size, lay.Align)
	in := value.NewRecord(value.Some(value.NewInt(42)))
	if err := c.Write(h, mem, at2, in); err != nil {
		t.Fatal(err)
	}
	got, err = c.Read(h, mem, at2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, in) {
		t.Errorf("pointer round trip = %s, want %s", got, in)
	}
}

func TestCFixedArrayRoundTrip(t *testing.T) {
	u := cUniverse(t, `typedef float point[2]; struct Seg { point a; point b; };`, "")
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()
	seg := u.Lookup("Seg").Type
	lay, _ := c.Layouts().Of(seg)
	at := mem.Alloc(lay.Size, lay.Align)
	in := value.NewRecord(
		value.NewRecord(value.Real{V: 1}, value.Real{V: 2}),
		value.NewRecord(value.Real{V: 3}, value.Real{V: 4}),
	)
	if err := c.Write(seg, mem, at, in); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(seg, mem, at, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, in) {
		t.Errorf("round trip = %s, want %s", got, in)
	}
}

func TestCUnionRejected(t *testing.T) {
	u := cUniverse(t, `union U { int i; float f; }; struct S { union U u; };`, "")
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()
	st := u.Lookup("S").Type
	lay, _ := c.Layouts().Of(st)
	at := mem.Alloc(lay.Size, lay.Align)
	if _, err := c.Read(st, mem, at, -1); err == nil {
		t.Error("union read accepted (no discriminant exists in C memory)")
	}
}

func TestCNonNullPointerRejectsNull(t *testing.T) {
	u := cUniverse(t, `struct H { int *p; };`, "annotate H.p nonnull")
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()
	h := u.Lookup("H").Type
	lay, _ := c.Layouts().Of(h)
	at := mem.Alloc(lay.Size, lay.Align) // zeroed → NULL pointer
	if _, err := c.Read(h, mem, at, -1); err == nil {
		t.Error("NULL accepted in nonnull pointer")
	}
}

// fitterSrc is the Figure 2 declaration plus the §3.4 annotations.
const fitterSrc = `
typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);
`

const fitterScript = `
annotate fitter.start out nonnull
annotate fitter.end out nonnull
annotate fitter.pts length-from=count
`

// cFitterImpl is the "compiled C" implementation: it reads raw memory
// through the arena exactly as the real fitter would, computing the
// bounding-box diagonal as its fitted line.
func cFitterImpl(mem *cmem.Arena, args []uint64) (uint64, error) {
	pts := cmem.Addr(args[0])
	count := int(int32(args[1]))
	start := cmem.Addr(args[2])
	end := cmem.Addr(args[3])
	minX, minY := float32(0), float32(0)
	maxX, maxY := float32(0), float32(0)
	for i := 0; i < count; i++ {
		x, err := mem.ReadF32(pts + cmem.Addr(8*i))
		if err != nil {
			return 0, err
		}
		y, err := mem.ReadF32(pts + cmem.Addr(8*i+4))
		if err != nil {
			return 0, err
		}
		if i == 0 || x < minX {
			minX = x
		}
		if i == 0 || y < minY {
			minY = y
		}
		if i == 0 || x > maxX {
			maxX = x
		}
		if i == 0 || y > maxY {
			maxY = y
		}
	}
	if err := mem.WriteF32(start, minX); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(start+4, minY); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(end, maxX); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(end+4, maxY); err != nil {
		return 0, err
	}
	return 0, nil
}

func TestCCallFitter(t *testing.T) {
	u := cUniverse(t, fitterSrc, fitterScript)
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()

	pts := value.FromSlice([]value.Value{
		value.NewRecord(value.Real{V: 1}, value.Real{V: 5}),
		value.NewRecord(value.Real{V: 3}, value.Real{V: 2}),
		value.NewRecord(value.Real{V: 2}, value.Real{V: 7}),
	})
	outs, err := c.Call(u.Lookup("fitter"), cFitterImpl, mem, value.NewRecord(pts))
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := outs.(value.Record)
	if !ok || len(rec.Fields) != 2 {
		t.Fatalf("outputs = %s", outs)
	}
	wantStart := value.NewRecord(value.Real{V: 1}, value.Real{V: 2})
	wantEnd := value.NewRecord(value.Real{V: 3}, value.Real{V: 7})
	if !value.Equal(rec.Fields[0], wantStart) {
		t.Errorf("start = %s, want %s", rec.Fields[0], wantStart)
	}
	if !value.Equal(rec.Fields[1], wantEnd) {
		t.Errorf("end = %s, want %s", rec.Fields[1], wantEnd)
	}
}

func TestCCallEmptyArray(t *testing.T) {
	u := cUniverse(t, fitterSrc, fitterScript)
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()
	outs, err := c.Call(u.Lookup("fitter"), cFitterImpl, mem, value.NewRecord(value.FromSlice(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := outs.(value.Record); !ok {
		t.Fatalf("outputs = %T", outs)
	}
}

func TestCCallScalarReturn(t *testing.T) {
	u := cUniverse(t, `float scale(float x, int k);`, "")
	c := NewC(u, cmem.ILP32)
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) {
		x := ArgF32(args[0])
		k := int32(args[1])
		return RetF32(x * float32(k)), nil
	}
	outs, err := c.Call(u.Lookup("scale"), impl, cmem.NewArena(),
		value.NewRecord(value.Real{V: 2.5}, value.NewInt(4)))
	if err != nil {
		t.Fatal(err)
	}
	rec := outs.(value.Record)
	if len(rec.Fields) != 1 || !value.Equal(rec.Fields[0], value.Real{V: 10}) {
		t.Errorf("outputs = %s", outs)
	}
}

func TestCCallInOut(t *testing.T) {
	u := cUniverse(t, `void bump(int *v);`, "annotate bump.v inout nonnull")
	c := NewC(u, cmem.ILP32)
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) {
		at := cmem.Addr(args[0])
		n, err := mem.ReadI(at, 4)
		if err != nil {
			return 0, err
		}
		return 0, mem.WriteU(at, 4, uint64(n+1))
	}
	outs, err := c.Call(u.Lookup("bump"), impl, cmem.NewArena(),
		value.NewRecord(value.NewInt(41)))
	if err != nil {
		t.Fatal(err)
	}
	rec := outs.(value.Record)
	if len(rec.Fields) != 1 || !value.Equal(rec.Fields[0], value.NewInt(42)) {
		t.Errorf("outputs = %s", outs)
	}
}

func TestCCallInputArityChecked(t *testing.T) {
	u := cUniverse(t, `float scale(float x, int k);`, "")
	c := NewC(u, cmem.ILP32)
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) { return 0, nil }
	if _, err := c.Call(u.Lookup("scale"), impl, cmem.NewArena(),
		value.NewRecord(value.Real{V: 1})); err == nil {
		t.Error("short input record accepted")
	}
	if _, err := c.Call(u.Lookup("scale"), impl, cmem.NewArena(),
		value.NewRecord(value.Real{V: 1}, value.NewInt(2), value.NewInt(3))); err == nil {
		t.Error("long input record accepted")
	}
}

// --- Java binding ---

const figure1Java = `
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
`

const figure1Script = `
annotate Line.start nonnull noalias
annotate Line.end nonnull noalias
annotate PointVector collection-of=Point element-nonnull
`

func jUniverse(t *testing.T, src, script string) *stype.Universe {
	t.Helper()
	u, err := javaparse.Parse("T.java", src)
	if err != nil {
		t.Fatal(err)
	}
	if script != "" {
		if _, err := annotate.ApplyScript(u, script); err != nil {
			t.Fatal(err)
		}
	}
	return u
}

func TestJPointReadWrite(t *testing.T) {
	u := jUniverse(t, figure1Java, figure1Script)
	j := NewJ(u)
	h := jheap.NewHeap()

	// Build a Point in the heap by hand, read it as a value.
	p := h.New("Point", 2)
	_ = h.SetField(p, 0, jheap.FloatSlot(1.5))
	_ = h.SetField(p, 1, jheap.FloatSlot(2.5))

	use := stype.NewNamed("Point")
	use.Ann.NonNull = true
	got, err := j.Read(use, h, jheap.RefSlot(p))
	if err != nil {
		t.Fatal(err)
	}
	want := value.NewRecord(value.Real{V: 1.5}, value.Real{V: 2.5})
	if !value.Equal(got, want) {
		t.Errorf("read = %s, want %s", got, want)
	}

	// Write it back as a fresh object.
	slot, err := j.Write(use, h, want)
	if err != nil {
		t.Fatal(err)
	}
	back, err := j.Read(use, h, slot)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(back, want) {
		t.Errorf("write+read = %s", back)
	}
}

func TestJLineNested(t *testing.T) {
	u := jUniverse(t, figure1Java, figure1Script)
	j := NewJ(u)
	h := jheap.NewHeap()

	use := stype.NewNamed("Line")
	use.Ann.NonNull = true
	use.Ann.NoAlias = true
	in := value.NewRecord(
		value.NewRecord(value.Real{V: 1}, value.Real{V: 2}),
		value.NewRecord(value.Real{V: 3}, value.Real{V: 4}),
	)
	slot, err := j.Write(use, h, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Read(use, h, slot)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, in) {
		t.Errorf("line round trip = %s, want %s", got, in)
	}
	// Check against the lowered Mtype of a nonnull+noalias Line use.
	mt, err := lower.New(u).Decl("Line")
	if err != nil {
		t.Fatal(err)
	}
	if err := value.Check(got, mt); err != nil {
		t.Error(err)
	}
}

func TestJVectorCollection(t *testing.T) {
	u := jUniverse(t, figure1Java, figure1Script)
	j := NewJ(u)
	h := jheap.NewHeap()

	v := h.NewVector("PointVector")
	for i := 0; i < 3; i++ {
		p := h.New("Point", 2)
		_ = h.SetField(p, 0, jheap.FloatSlot(float64(i)))
		_ = h.SetField(p, 1, jheap.FloatSlot(float64(i*10)))
		_ = h.VectorAppend(v, p)
	}
	use := stype.NewNamed("PointVector")
	use.Ann.NonNull = true
	got, err := j.Read(use, h, jheap.RefSlot(v))
	if err != nil {
		t.Fatal(err)
	}
	elems, err := value.ToSlice(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 3 {
		t.Fatalf("got %d elements", len(elems))
	}
	if !value.Equal(elems[1], value.NewRecord(value.Real{V: 1}, value.Real{V: 10})) {
		t.Errorf("element 1 = %s", elems[1])
	}

	// Round trip through Write.
	slot, err := j.Write(use, h, got)
	if err != nil {
		t.Fatal(err)
	}
	back, err := j.Read(use, h, slot)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(back, got) {
		t.Errorf("vector round trip = %s", back)
	}
}

func TestJNullability(t *testing.T) {
	u := jUniverse(t, figure1Java, "")
	j := NewJ(u)
	h := jheap.NewHeap()

	use := stype.NewNamed("Point")
	tr := true
	use.Ann.ByValue = &tr
	got, err := j.Read(use, h, jheap.RefSlot(jheap.NullRef))
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, value.Null()) {
		t.Errorf("null read = %s", got)
	}
	slot, err := j.Write(use, h, value.Null())
	if err != nil {
		t.Fatal(err)
	}
	if slot.R != jheap.NullRef {
		t.Errorf("null write = %+v", slot)
	}

	nn := stype.NewNamed("Point")
	nn.Ann.NonNull = true
	if _, err := j.Read(nn, h, jheap.RefSlot(jheap.NullRef)); err == nil {
		t.Error("null accepted by nonnull reference")
	}
}

func TestJObjectPort(t *testing.T) {
	u := jUniverse(t, `
		class Service { int call(int x) { return x; } }
		class Holder { Service s; }
	`, "annotate Holder.s byref")
	j := NewJ(u)
	h := jheap.NewHeap()
	svc := h.New("Service", 0)
	holder := u.Lookup("Holder").Type
	got, err := j.Read(holder.Fields[0].Type, h, jheap.RefSlot(svc))
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := got.(value.Choice)
	if !ok || cv.Alt != 1 {
		t.Fatalf("got %s", got)
	}
	port, ok := cv.V.(value.Port)
	if !ok {
		t.Fatalf("payload = %T", cv.V)
	}
	r, err := ParsePortRef(port.Ref)
	if err != nil || r != svc {
		t.Errorf("port ref = %q → %d, %v", port.Ref, r, err)
	}
}

func TestJPrimArrays(t *testing.T) {
	u := jUniverse(t, `class A { float[] xs; }`, "")
	j := NewJ(u)
	h := jheap.NewHeap()
	xs := u.Lookup("A").Type.Fields[0].Type

	in := value.FromSlice([]value.Value{value.Real{V: 1}, value.Real{V: 2}})
	slot, err := j.Write(xs, h, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Read(xs, h, slot)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, in) {
		t.Errorf("array round trip = %s", got)
	}
	if _, err := j.Read(xs, h, jheap.RefSlot(jheap.NullRef)); err == nil {
		t.Error("null array accepted")
	}
}

func TestJStrings(t *testing.T) {
	u := jUniverse(t, `class A { String name; }`, "")
	j := NewJ(u)
	h := jheap.NewHeap()
	name := u.Lookup("A").Type.Fields[0].Type
	name.Ann.NonNull = true

	in := value.FromSlice([]value.Value{value.Char{R: 'h'}, value.Char{R: 'i'}})
	slot, err := j.Write(name, h, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Read(name, h, slot)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, in) {
		t.Errorf("string round trip = %s", got)
	}
}

func TestJCallMethod(t *testing.T) {
	u := jUniverse(t, `
		class Calc {
			int add(int a, int b) { return a + b; }
		}
	`, "")
	j := NewJ(u)
	h := jheap.NewHeap()
	impl := func(h *jheap.Heap, args []jheap.Slot) (jheap.Slot, error) {
		return jheap.IntSlot(args[0].I + args[1].I), nil
	}
	outs, err := j.Call(u.Lookup("Calc"), "add", impl, h,
		value.NewRecord(value.NewInt(2), value.NewInt(40)))
	if err != nil {
		t.Fatal(err)
	}
	rec := outs.(value.Record)
	if len(rec.Fields) != 1 || !value.Equal(rec.Fields[0], value.NewInt(42)) {
		t.Errorf("outputs = %s", outs)
	}
	if _, err := j.Call(u.Lookup("Calc"), "nope", impl, h, value.NewRecord()); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := j.Call(u.Lookup("Calc"), "add", impl, h, value.NewRecord()); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestPortRefRoundTrip(t *testing.T) {
	r := jheap.Ref(17)
	got, err := ParsePortRef(PortRef(r))
	if err != nil || got != r {
		t.Errorf("round trip = %d, %v", got, err)
	}
	if _, err := ParsePortRef("cobj:1"); err == nil {
		t.Error("foreign ref accepted")
	}
	if _, err := ParsePortRef("jobj:xyz"); err == nil {
		t.Error("malformed ref accepted")
	}
}
