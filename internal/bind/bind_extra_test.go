package bind

import (
	"strings"
	"testing"

	"repro/internal/annotate"
	"repro/internal/cmem"
	"repro/internal/jheap"
	"repro/internal/stype"
	"repro/internal/value"
)

// TestSubclassSubstitutionByValue documents the §6 limitation the paper
// shares: when a subclass instance is substituted where the parent class
// is expected *by value*, marshaling follows the declared parent type —
// the subclass's extra fields are not carried. (The paper: "At present,
// it only detects this substitution when objects are passed by
// reference.")
func TestSubclassSubstitutionByValue(t *testing.T) {
	u := jUniverse(t, `
		class Point { float x; float y; }
		class Point3D extends Point { float z; }
	`, "")
	j := NewJ(u)
	h := jheap.NewHeap()

	// A Point3D instance: field layout is the parent's fields followed by
	// the subclass's.
	p3 := h.New("Point3D", 3)
	_ = h.SetField(p3, 0, jheap.FloatSlot(1))
	_ = h.SetField(p3, 1, jheap.FloatSlot(2))
	_ = h.SetField(p3, 2, jheap.FloatSlot(3))

	use := stype.NewNamed("Point")
	use.Ann.NonNull = true
	got, err := j.Read(use, h, jheap.RefSlot(p3))
	if err != nil {
		t.Fatal(err)
	}
	// Only the declared parent fields travel.
	want := value.NewRecord(value.Real{V: 1}, value.Real{V: 2})
	if !value.Equal(got, want) {
		t.Errorf("read = %s, want %s (z dropped per §6)", got, want)
	}

	// By reference the substitution is preserved: the port carries the
	// actual object.
	f := false
	byref := stype.NewNamed("Point")
	byref.Ann.NonNull = true
	byref.Ann.ByValue = &f
	pv, err := j.Read(byref, h, jheap.RefSlot(p3))
	if err != nil {
		t.Fatal(err)
	}
	port, ok := pv.(value.Port)
	if !ok {
		t.Fatalf("byref read = %T", pv)
	}
	r, err := ParsePortRef(port.Ref)
	if err != nil || r != p3 {
		t.Errorf("port = %q", port.Ref)
	}
	if cls, _ := h.Class(r); cls != "Point3D" {
		t.Errorf("referenced class = %q (dynamic type lost)", cls)
	}
}

func TestJCharAndBoolSlots(t *testing.T) {
	u := jUniverse(t, `class C { char c; boolean b; byte n; }`, "")
	j := NewJ(u)
	h := jheap.NewHeap()
	cls := u.Lookup("C").Type

	slot, err := j.Write(cls.Fields[0].Type, h, value.Char{R: 'Ω'})
	if err != nil || slot.Kind != jheap.SlotChar || slot.C != 'Ω' {
		t.Errorf("char write = %+v, %v", slot, err)
	}
	back, err := j.Read(cls.Fields[0].Type, h, slot)
	if err != nil || !value.Equal(back, value.Char{R: 'Ω'}) {
		t.Errorf("char read = %s, %v", back, err)
	}

	slot, err = j.Write(cls.Fields[1].Type, h, value.NewInt(1))
	if err != nil || slot.I != 1 {
		t.Errorf("bool write = %+v, %v", slot, err)
	}
	if _, err := j.Read(cls.Fields[1].Type, h, jheap.FloatSlot(1)); err == nil {
		t.Error("bool read from float slot accepted")
	}
	if _, err := j.Read(cls.Fields[2].Type, h, jheap.CharSlot('x')); err == nil {
		// byte from char slot: chars are integral, accepted.
		t.Log("byte read from char slot accepted (integral)")
	}
}

func TestJCharAsIntAnnotation(t *testing.T) {
	u := jUniverse(t, `class C { char code; }`, "annotate C.code int")
	j := NewJ(u)
	h := jheap.NewHeap()
	codeTy := u.Lookup("C").Type.Fields[0].Type
	got, err := j.Read(codeTy, h, jheap.CharSlot('A'))
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, value.NewInt(65)) {
		t.Errorf("char-as-int read = %s", got)
	}
}

func TestJWriteTypeMismatches(t *testing.T) {
	u := jUniverse(t, figure1Java, figure1Script)
	j := NewJ(u)
	h := jheap.NewHeap()
	point := stype.NewNamed("Point")
	point.Ann.NonNull = true
	if _, err := j.Write(point, h, value.Real{V: 1}); err == nil {
		t.Error("non-record for by-value class accepted")
	}
	if _, err := j.Write(point, h, value.NewRecord(value.Real{V: 1})); err == nil {
		t.Error("short record accepted")
	}
	if _, err := j.Write(point, h, value.NewRecord(value.Real{V: 1}, value.Real{V: 2}, value.Real{V: 3})); err == nil {
		t.Error("long record accepted")
	}
	nullable := stype.NewNamed("Point")
	if _, err := j.Write(nullable, h, value.Real{V: 1}); err == nil {
		t.Error("non-choice for nullable reference accepted")
	}
}

func TestCEnumThroughCall(t *testing.T) {
	u := cUniverse(t, `
		enum Color { RED, GREEN, BLUE };
		enum Color next(enum Color c);
	`, "")
	c := NewC(u, cmem.ILP32)
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) {
		return uint64((int32(args[0]) + 1) % 3), nil
	}
	outs, err := c.Call(u.Lookup("next"), impl, cmem.NewArena(), value.NewRecord(value.NewInt(2)))
	if err != nil {
		t.Fatal(err)
	}
	rec := outs.(value.Record)
	if !value.Equal(rec.Fields[0], value.NewInt(0)) {
		t.Errorf("next(BLUE) = %s, want 0", rec.Fields[0])
	}
}

func TestCReturnedPointer(t *testing.T) {
	u := cUniverse(t, `int *find(int key);`, "")
	c := NewC(u, cmem.ILP32)
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) {
		if int32(args[0]) < 0 {
			return 0, nil // NULL
		}
		at := mem.Alloc(4, 4)
		if err := mem.WriteU(at, 4, args[0]*10); err != nil {
			return 0, err
		}
		return uint64(at), nil
	}
	mem := cmem.NewArena()
	outs, err := c.Call(u.Lookup("find"), impl, mem, value.NewRecord(value.NewInt(4)))
	if err != nil {
		t.Fatal(err)
	}
	rec := outs.(value.Record)
	if !value.Equal(rec.Fields[0], value.Some(value.NewInt(40))) {
		t.Errorf("find(4) = %s", rec.Fields[0])
	}
	outs, err = c.Call(u.Lookup("find"), impl, mem, value.NewRecord(value.NewInt(-1)))
	if err != nil {
		t.Fatal(err)
	}
	rec = outs.(value.Record)
	if !value.Equal(rec.Fields[0], value.Null()) {
		t.Errorf("find(-1) = %s, want null", rec.Fields[0])
	}
}

func TestCCharStringBuffer(t *testing.T) {
	// A char buffer with a fixed length annotation round-trips characters.
	u := cUniverse(t, `struct Buf { char data[4]; };`, "")
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()
	buf := u.Lookup("Buf").Type
	lay, _ := c.Layouts().Of(buf)
	at := mem.Alloc(lay.Size, lay.Align)
	in := value.NewRecord(value.NewRecord(
		value.Char{R: 'a'}, value.Char{R: 'b'}, value.Char{R: 'c'}, value.Char{R: 'd'},
	))
	if err := c.Write(buf, mem, at, in); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(buf, mem, at, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, in) {
		t.Errorf("round trip = %s", got)
	}
}

func TestCWriteMismatches(t *testing.T) {
	u := cUniverse(t, `struct P { float x; float y; };`, "")
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()
	p := u.Lookup("P").Type
	lay, _ := c.Layouts().Of(p)
	at := mem.Alloc(lay.Size, lay.Align)
	cases := []value.Value{
		value.Real{V: 1},
		value.NewRecord(value.Real{V: 1}),
		value.NewRecord(value.Real{V: 1}, value.NewInt(2)),
		value.NewRecord(value.Real{V: 1}, value.Real{V: 2}, value.Real{V: 3}),
	}
	for i, v := range cases {
		if err := c.Write(p, mem, at, v); err == nil {
			t.Errorf("case %d: mismatched value accepted", i)
		}
	}
}

func TestCDepthLimit(t *testing.T) {
	// A linked list long enough to exceed the nesting limit fails cleanly.
	u := cUniverse(t, `struct Node { int v; struct Node *next; };`, "")
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()
	node := u.Lookup("Node").Type
	lay, _ := c.Layouts().Of(node)
	// Build a cycle: node.next = node.
	at := mem.Alloc(lay.Size, lay.Align)
	if err := mem.WriteU(at, 4, 7); err != nil {
		t.Fatal(err)
	}
	if err := mem.WritePtr(at+4, cmem.ILP32, at); err != nil {
		t.Fatal(err)
	}
	_, err := c.Read(node, mem, at, -1)
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Errorf("cyclic read error = %v", err)
	}
}

func TestCBitfieldRangeAnnotationValue(t *testing.T) {
	u := cUniverse(t, `struct F { unsigned int flags : 3; };`, "")
	c := NewC(u, cmem.ILP32)
	mem := cmem.NewArena()
	f := u.Lookup("F").Type
	lay, _ := c.Layouts().Of(f)
	at := mem.Alloc(lay.Size, lay.Align)
	// Range-annotated integers read as integers even when the base type
	// would default otherwise.
	if err := c.Write(f, mem, at, value.NewRecord(value.NewInt(5))); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(f, mem, at, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, value.NewRecord(value.NewInt(5))) {
		t.Errorf("bitfield = %s", got)
	}
}

func TestAnnotateHelperOnBindUniverse(t *testing.T) {
	// Exercise the annotate → bind interaction for inout-style updates.
	u := cUniverse(t, `void setPoint(float *dst);`, "")
	if _, err := annotate.Apply(u, "setPoint.dst", stype.Ann{Mode: stype.ModeOut, NonNull: true}); err != nil {
		t.Fatal(err)
	}
	c := NewC(u, cmem.ILP32)
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) {
		return 0, mem.WriteF32(cmem.Addr(args[0]), 6.25)
	}
	outs, err := c.Call(u.Lookup("setPoint"), impl, cmem.NewArena(), value.NewRecord())
	if err != nil {
		t.Fatal(err)
	}
	rec := outs.(value.Record)
	if !value.Equal(rec.Fields[0], value.Real{V: 6.25}) {
		t.Errorf("out = %s", rec.Fields[0])
	}
}
