//go:build race

// Package testutil holds tiny helpers shared by the repo's test suites.
package testutil

// RaceEnabled reports that the race detector is active. Its
// instrumentation adds allocations of its own, so allocation-ceiling
// tests skip themselves under -race; the CI load-smoke job runs them
// uninstrumented, where the ceilings are exact.
const RaceEnabled = true
