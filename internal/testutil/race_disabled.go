//go:build !race

// Package testutil holds tiny helpers shared by the repo's test suites.
package testutil

// RaceEnabled reports that the race detector is active. See
// race_enabled.go.
const RaceEnabled = false
