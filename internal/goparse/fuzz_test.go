package goparse

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/limits"
)

// FuzzGoParse feeds arbitrary bytes to the Go parser under a small
// budget: any outcome except a panic or a hang is acceptable, and when
// the parser does reject on resources the error must be the typed
// budget sentinel.
func FuzzGoParse(f *testing.F) {
	f.Add("package p\ntype Point struct {\n\tX, Y float32\n}")
	f.Add("package p\ntype Fitter interface {\n\tFit(n int32) int32\n}")
	f.Add("package p\ntype T struct {\n\tM map[string][]int32\n\tA [4]*T\n}")
	f.Add("package p\ntype T struct {\n\tC uint16 `mbird:\"char\"`\n}")
	f.Add("package p\ntype A struct{ N int32 }\ntype B struct {\n\tA\n\tX int64\n}")
	f.Add("package p\nfunc (t *T) M(a int32) int32 { return a }\ntype T struct{ N int32 }")
	f.Add("package p\ntype T struct {\n\tF " + strings.Repeat("[]", 40) + "int32\n}")
	f.Add("package p\n" + strings.Repeat("type T struct { F struct { ", 30) + "int32" + strings.Repeat(" }", 30))
	f.Fuzz(func(t *testing.T, src string) {
		b := limits.Budget{MaxBytes: 1 << 16, MaxTokens: 1 << 12, MaxDepth: 64}
		_, err := ParseBudget("fuzz.go", src, b)
		if err != nil && strings.Contains(err.Error(), "budget") && !errors.Is(err, limits.ErrBudget) {
			t.Errorf("budget-shaped error not typed: %v", err)
		}
	})
}
