package goparse

import (
	"strings"
	"testing"

	"repro/internal/stype"
)

// fitter is the Go spelling of the paper's running example: the service
// a Go team would already have written, no annotations needed because
// the language states them (values are nonnull, pointers are optional).
const fitter = `
package fitter

type Point struct {
	X float32
	Y float32
}

type Line struct {
	Start Point
	End   Point
}

type Fitter interface {
	Fit(pts []Point) Line
}
`

func TestFitterPoint(t *testing.T) {
	u := MustParse(fitter)
	pt := u.Lookup("Point")
	if pt == nil || pt.Type.Kind != stype.KClass {
		t.Fatalf("Point = %+v", pt)
	}
	if len(pt.Type.Fields) != 2 {
		t.Fatalf("Point fields = %+v", pt.Type.Fields)
	}
	for i, name := range []string{"X", "Y"} {
		f := pt.Type.Fields[i]
		if f.Name != name || f.Type.Prim != stype.PF32 {
			t.Errorf("field %d = %s %s", i, f.Type, f.Name)
		}
	}
}

func TestValueSemantics(t *testing.T) {
	u := MustParse(fitter)
	line := u.Lookup("Line")
	if line == nil {
		t.Fatal("Line missing")
	}
	start := line.Type.Fields[0].Type
	if start.Kind != stype.KNamed || start.Name != "Point" || start.Target == nil {
		t.Fatalf("Start = %s", start)
	}
	// A bare struct-typed field is a value: stamped nonnull+noalias so
	// lowering concludes containment, like §3.4's Line contains Points.
	if !start.Ann.NonNull || !start.Ann.NoAlias {
		t.Errorf("Start ann = %+v, want nonnull+noalias", start.Ann)
	}
	if line.Type.Fields[0].Type == line.Type.Fields[1].Type {
		t.Error("Start and End must be distinct nodes for per-use annotation")
	}
}

func TestInterfaceMethods(t *testing.T) {
	u := MustParse(fitter)
	fit := u.Lookup("Fitter")
	if fit == nil || fit.Type.Kind != stype.KInterface {
		t.Fatalf("Fitter = %+v", fit)
	}
	if len(fit.Type.Methods) != 1 {
		t.Fatalf("methods = %+v", fit.Type.Methods)
	}
	m := fit.Type.Methods[0]
	if m.Name != "Fit" || len(m.Params) != 1 || m.Params[0].Name != "pts" {
		t.Fatalf("Fit = %+v", m)
	}
	if m.Params[0].Type.Kind != stype.KSequence {
		t.Errorf("pts = %s", m.Params[0].Type)
	}
	if m.Result == nil || m.Result.Kind != stype.KNamed || m.Result.Name != "Line" {
		t.Errorf("result = %s", m.Result)
	}
	// Interface-typed uses stay nullable references; struct results are
	// values.
	if !m.Result.Ann.NonNull {
		t.Errorf("Line result not stamped as a value: %+v", m.Result.Ann)
	}
}

func TestPrimitives(t *testing.T) {
	src := `package p
type T struct {
	A bool
	B int8
	C uint8
	D byte
	E int16
	F uint16
	G int32
	H uint32
	I int64
	J uint64
	K int
	L uint
	M float32
	N float64
}`
	want := []stype.Prim{
		stype.PBool, stype.PI8, stype.PU8, stype.PU8, stype.PI16, stype.PU16,
		stype.PI32, stype.PU32, stype.PI64, stype.PU64, stype.PI64, stype.PU64,
		stype.PF32, stype.PF64,
	}
	d := MustParse(src).Lookup("T")
	if len(d.Type.Fields) != len(want) {
		t.Fatalf("fields = %+v", d.Type.Fields)
	}
	for i, w := range want {
		if f := d.Type.Fields[i]; f.Type.Kind != stype.KPrim || f.Type.Prim != w {
			t.Errorf("field %s = %s, want prim %v", f.Name, f.Type, w)
		}
	}
}

func TestRuneAndString(t *testing.T) {
	d := MustParse("package p\ntype T struct {\n\tR rune\n\tS string\n}").Lookup("T")
	r := d.Type.Fields[0].Type
	if r.Prim != stype.PI32 || r.Ann.AsChar == nil || !*r.Ann.AsChar {
		t.Errorf("rune = %s ann %+v", r, r.Ann)
	}
	s := d.Type.Fields[1].Type
	if s.Kind != stype.KSequence || s.ElemType.Prim != stype.PChar8 {
		t.Errorf("string = %s", s)
	}
}

func TestCompositeTypes(t *testing.T) {
	src := `package p
type T struct {
	Arr   [4]int32
	Slice []float64
	M     map[string]int32
	Opt   *T
}`
	d := MustParse(src).Lookup("T")
	arr := d.Type.Fields[0].Type
	if arr.Kind != stype.KArray || arr.Len != 4 || arr.ElemType.Prim != stype.PI32 {
		t.Errorf("Arr = %s", arr)
	}
	sl := d.Type.Fields[1].Type
	if sl.Kind != stype.KSequence || sl.ElemType.Prim != stype.PF64 {
		t.Errorf("Slice = %s", sl)
	}
	m := d.Type.Fields[2].Type
	if m.Kind != stype.KSequence || m.ElemType.Kind != stype.KStruct {
		t.Fatalf("M = %s", m)
	}
	entry := m.ElemType
	if len(entry.Fields) != 2 || entry.Fields[0].Name != "Key" || entry.Fields[1].Name != "Value" {
		t.Errorf("map entry = %+v", entry.Fields)
	}
	opt := d.Type.Fields[3].Type
	if opt.Kind != stype.KPointer || opt.ElemType.Name != "T" {
		t.Errorf("Opt = %s", opt)
	}
}

func TestFieldGroupsShareNoNodes(t *testing.T) {
	d := MustParse("package p\ntype T struct {\n\tA, B int32\n}").Lookup("T")
	if len(d.Type.Fields) != 2 {
		t.Fatalf("fields = %+v", d.Type.Fields)
	}
	if d.Type.Fields[0].Type == d.Type.Fields[1].Type {
		t.Error("grouped names must get distinct type nodes")
	}
}

func TestStructTags(t *testing.T) {
	src := "package p\n" +
		"type T struct {\n" +
		"\tC uint16 `mbird:\"char\"`\n" +
		"\tN []byte `mbird:\"length=16\"`\n" +
		"\tJ int32  `json:\"j,omitempty\"`\n" +
		"\tB *T     `json:\"b\" mbird:\"nonnull\"`\n" +
		"}"
	d := MustParse(src).Lookup("T")
	c := d.Type.Fields[0].Type
	if c.Ann.AsChar == nil || !*c.Ann.AsChar {
		t.Errorf("C ann = %+v", c.Ann)
	}
	n := d.Type.Fields[1].Type
	if n.Ann.FixedLen != 16 {
		t.Errorf("N ann = %+v", n.Ann)
	}
	if j := d.Type.Fields[2].Type; j.Ann.AsChar != nil || j.Ann.NonNull {
		t.Errorf("foreign tag leaked annotations: %+v", j.Ann)
	}
	if b := d.Type.Fields[3].Type; !b.Ann.NonNull {
		t.Errorf("B ann = %+v", b.Ann)
	}
}

func TestDoubleQuotedTag(t *testing.T) {
	// An interpreted string literal tag keeps its escapes in the token;
	// the parser must unquote before splitting key:"value" pairs.
	src := "package p\ntype T struct {\n\tC uint16 \"mbird:\\\"char\\\"\"\n}"
	d := MustParse(src).Lookup("T")
	if c := d.Type.Fields[0].Type; c.Ann.AsChar == nil || !*c.Ann.AsChar {
		t.Errorf("C ann = %+v", c.Ann)
	}
}

func TestBadTagRejected(t *testing.T) {
	src := "package p\ntype T struct {\n\tC uint16 `mbird:\"range=zz\"`\n}"
	if _, err := Parse("t.go", src); err == nil || !strings.Contains(err.Error(), "struct tag") {
		t.Errorf("err = %v", err)
	}
}

func TestEmbedding(t *testing.T) {
	src := `package p
type Base struct {
	ID int64
}
type Child struct {
	Base
	Name string
}`
	d := MustParse(src).Lookup("Child")
	if len(d.Type.Fields) != 2 {
		t.Fatalf("fields = %+v", d.Type.Fields)
	}
	emb := d.Type.Fields[0]
	if !emb.Embedded || emb.Name != "Base" || emb.Type.Kind != stype.KNamed {
		t.Errorf("embedded field = %+v", emb)
	}
	if d.Type.Fields[1].Name != "Name" {
		t.Errorf("fields = %+v", d.Type.Fields)
	}
}

func TestEmbeddedPointerStaysReference(t *testing.T) {
	src := `package p
type Base struct {
	ID int64
}
type Child struct {
	*Base
	N int32
}`
	d := MustParse(src).Lookup("Child")
	f := d.Type.Fields[0]
	// *Base is not flattened: promoting through a nullable indirection
	// would make the record's shape depend on runtime state.
	if f.Embedded || f.Name != "Base" || f.Type.Kind != stype.KPointer {
		t.Errorf("embedded pointer = %+v", f)
	}
}

func TestASIEmbeddingVsTypeName(t *testing.T) {
	// Newline placement is the only thing separating an embedded field
	// from a name-and-type pair — the semicolon-insertion rule.
	src := "package p\ntype A struct{ N int32 }\ntype T struct {\n\tA\n\tX int64\n}"
	d := MustParse(src).Lookup("T")
	if len(d.Type.Fields) != 2 || !d.Type.Fields[0].Embedded || d.Type.Fields[1].Embedded {
		t.Fatalf("fields = %+v", d.Type.Fields)
	}
	if d.Type.Fields[1].Name != "X" || d.Type.Fields[1].Type.Prim != stype.PI64 {
		t.Errorf("X = %+v", d.Type.Fields[1])
	}
}

func TestInterfaceEmbedding(t *testing.T) {
	src := `package p
type Reader interface {
	Read(n int32) int32
}
type Closer interface {
	Close()
}
type ReadCloser interface {
	Reader
	Closer
	Reset()
}`
	d := MustParse(src).Lookup("ReadCloser")
	if got := strings.Join(d.Type.Embeds, ","); got != "Reader,Closer" {
		t.Errorf("embeds = %q", got)
	}
	if len(d.Type.Methods) != 1 || d.Type.Methods[0].Name != "Reset" {
		t.Errorf("methods = %+v", d.Type.Methods)
	}
}

func TestUndeclaredEmbedRejected(t *testing.T) {
	src := "package p\ntype I interface {\n\tMissing\n}"
	if _, err := Parse("t.go", src); err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("err = %v", err)
	}
}

func TestReceiverMethods(t *testing.T) {
	src := `package p
type Counter struct {
	N int64
}
func (c *Counter) Add(delta int64) int64 { c.N += delta; return c.N }
func (Counter) Zero() {}
func Reset(c *Counter) {}
`
	u := MustParse(src)
	d := u.Lookup("Counter")
	if len(d.Type.Methods) != 2 {
		t.Fatalf("methods = %+v", d.Type.Methods)
	}
	if d.Type.Methods[0].Name != "Add" || len(d.Type.Methods[0].Params) != 1 {
		t.Errorf("Add = %+v", d.Type.Methods[0])
	}
	if d.Type.Methods[1].Name != "Zero" || d.Type.Methods[1].Result != nil {
		t.Errorf("Zero = %+v", d.Type.Methods[1])
	}
	fn := u.Lookup("Reset")
	if fn == nil || fn.Type.Kind != stype.KFunc {
		t.Errorf("Reset = %+v", fn)
	}
}

func TestTypeAliases(t *testing.T) {
	src := `package p
type D struct {
	N int32
}
type Alias = D
type Defined D
type T struct {
	A Alias
	B Defined
}`
	d := MustParse(src).Lookup("T")
	for _, f := range d.Type.Fields {
		if f.Type.Kind != stype.KNamed || f.Type.Target == nil {
			t.Errorf("%s = %+v", f.Name, f.Type)
		}
		// Both resolve through the chain to a struct: value semantics.
		if !f.Type.Ann.NonNull || !f.Type.Ann.NoAlias {
			t.Errorf("%s not stamped as a value: %+v", f.Name, f.Type.Ann)
		}
	}
}

func TestPackageAndImports(t *testing.T) {
	src := `package p

import "fmt"
import (
	"strings"
	alias "net/http"
	_ "embed"
)

type T struct {
	N int32
}`
	if d := MustParse(src).Lookup("T"); d == nil {
		t.Fatal("T missing")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"type T struct{}", "package"},
		{"package p\nconst N = 3", "const"},
		{"package p\nvar x int32", "var"},
		{"package p\ntype T[E any] struct{ F E }", "generic"},
		{"package p\ntype T struct {\n\tC chan int32\n}", "channel"},
		{"package p\ntype T struct {\n\tF func()\n}", "function-typed"},
		{"package p\ntype T struct {\n\tA any\n}", "empty interface"},
		{"package p\ntype T struct {\n\tE error\n}", "error values"},
		{"package p\ntype T struct {\n\tX fmt.Stringer\n}", "qualified"},
		{"package p\ntype I interface {\n\tM() (int32, int32)\n}", "multiple return"},
		{"package p\ntype I interface {\n\tM(int32)\n}", "parameter names"},
		{"package p\ntype T struct {\n\tN int32\n\tN int64\n}", "duplicate field"},
		{"package p\ntype I interface {\n\tM()\n\tM()\n}", "duplicate method"},
		{"package p\nfunc (m Missing) M() {}", "undeclared type"},
		{"package p\ntype I interface{}\nfunc (i I) M() {}", "interface"},
		{"package p\ntype T struct{ N int32 }\nfunc (t T) M() {}\nfunc (t T) M() {}", "redeclared"},
		{"package p\ntype T struct {\n\tA [x]int32\n}", "array length"},
		{"package p\ntype T struct {\n\tA [-1]int32\n}", "array length"},
		{"package p\ntype T struct {\n\tU uintptr\n}", "not portable"},
		{"package p\ntype T struct {\n\tX struct { y", "unterminated"},
		{"package p\ntype T struct {\n\tI interface{ M() }\n}", "inline interface"},
	}
	for _, c := range cases {
		if _, err := Parse("t.go", c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want mention of %q", c.src, err, c.want)
		}
	}
}

func TestUnexportedParsedNotDropped(t *testing.T) {
	// The parser keeps unexported members (lowering skips them): the
	// declaration is still the full source shape for display.
	src := `package p
type T struct {
	Exported int32
	hidden   int64
}`
	d := MustParse(src).Lookup("T")
	if len(d.Type.Fields) != 2 {
		t.Errorf("fields = %+v", d.Type.Fields)
	}
}

func TestRawStringTag(t *testing.T) {
	src := "package p\ntype T struct {\n\tS []byte `mbird:\"length=8\"`\n}"
	d := MustParse(src).Lookup("T")
	if s := d.Type.Fields[0].Type; s.Ann.FixedLen != 8 {
		t.Errorf("S ann = %+v", s.Ann)
	}
}

func TestRecursiveStruct(t *testing.T) {
	src := `package p
type Node struct {
	Val  int32
	Next *Node
}`
	d := MustParse(src).Lookup("Node")
	next := d.Type.Fields[1].Type
	if next.Kind != stype.KPointer || next.ElemType.Target == nil {
		t.Errorf("Next = %s", next)
	}
}
