// Package goparse parses Go struct and interface declarations into
// Stypes, making Go the fourth declaration frontend next to C, Java, and
// CORBA IDL. The subset is the declaration language a Go service already
// has: a package of struct and interface type declarations.
//
//   - Struct fields carry the basic types, fixed arrays ([N]T), slices
//     ([]T, the indefinite-size ordered collection), maps (lowered as an
//     annotated sequence of Key/Value records), and pointers (nullable
//     references, per §3.2's Choice(Unit, τ)).
//   - A bare struct-typed field is a value: the parser stamps such uses
//     nonnull+noalias, so lowering concludes containment exactly as §3.4
//     concludes every Line contains two Points.
//   - Struct embedding is recorded (Field.Embedded) and flattened by the
//     lowering pass per Go's promotion rules; embedded interfaces join
//     the method set breadth-first, and same-depth promotions of one name
//     are a typed lowering error rather than silent first-wins.
//   - Interfaces are object ports: port(Choice(invocations)), the
//     dictionary-passing reading of an interface value. An
//     interface-typed field is a nullable reference to that dictionary.
//   - `mbird:"..."` struct tags carry the shared annotation vocabulary
//     (nonnull, length=N, range=LO..HI, char, collection-of=T, ignore, …)
//     so Go needs no side-car annotation script.
//   - Receiver methods (func (r T) Name(…)) join T's method set; bodies
//     are skipped by brace matching. Plain functions become KFunc
//     declarations like the C frontend's.
//
// Deliberately rejected, with clear errors: const/var declarations,
// generics, channels, function-typed fields, the empty interface,
// qualified (imported) type names, multiple return values, and unnamed
// parameters. Unexported fields and methods are parsed but skipped by
// lowering — they are not part of the wire contract.
//
// Go's grammar relies on automatic semicolon insertion; the shared
// scanner records whether a newline preceded each token (Token.AfterNL)
// and this parser applies the insertion rule at member boundaries, which
// is what disambiguates an embedded field from a field's type name.
package goparse

import (
	"strconv"
	"strings"

	"repro/internal/annotate"
	"repro/internal/limits"
	"repro/internal/scan"
	"repro/internal/stype"
)

// Parse parses Go declarations into a universe with the default input
// budget. file is used in error messages.
func Parse(file, src string) (*stype.Universe, error) {
	return ParseBudget(file, src, limits.Budget{})
}

// ParseBudget is Parse with an explicit input budget (zero fields take
// limits defaults). Violations return an error wrapping limits.ErrBudget.
func ParseBudget(file, src string, b limits.Budget) (*stype.Universe, error) {
	p := &parser{s: scan.NewBudget(file, src, b), u: stype.NewUniverse(stype.LangGo)}
	if err := p.unit(); err != nil {
		// A budget truncation surfaces as a bogus syntax error at the cut
		// point; report the root cause instead.
		if berr := p.s.BudgetErr(); berr != nil {
			return nil, berr
		}
		return nil, err
	}
	if berr := p.s.BudgetErr(); berr != nil {
		return nil, berr
	}
	if err := p.u.Resolve(); err != nil {
		return nil, err
	}
	if err := p.checkEmbeds(); err != nil {
		return nil, err
	}
	p.applyValueSemantics()
	return p.u, nil
}

// MustParse parses or panics; for tests and examples.
func MustParse(src string) *stype.Universe {
	u, err := Parse("test.go", src)
	if err != nil {
		panic(err)
	}
	return u
}

// goPrims maps Go's predeclared numeric/boolean identifiers onto the
// language-neutral primitives. int and uint follow the LP64 convention
// documented for the C frontend. rune and string are handled separately
// (character and text semantics).
var goPrims = map[string]stype.Prim{
	"bool":    stype.PBool,
	"int8":    stype.PI8,
	"uint8":   stype.PU8,
	"byte":    stype.PU8,
	"int16":   stype.PI16,
	"uint16":  stype.PU16,
	"int32":   stype.PI32,
	"uint32":  stype.PU32,
	"int64":   stype.PI64,
	"uint64":  stype.PU64,
	"int":     stype.PI64,
	"uint":    stype.PU64,
	"float32": stype.PF32,
	"float64": stype.PF64,
}

// rejected maps identifiers that begin type forms outside the declaration
// subset to the reason they are rejected.
var rejected = map[string]string{
	"func":       "function-typed fields are not supported (declare the operation on an interface)",
	"chan":       "channel types have no wire representation",
	"any":        "the empty interface has no declared structure to compare",
	"error":      "error values are not part of the declaration subset",
	"complex64":  "complex numbers have no Mtype; declare a two-field struct",
	"complex128": "complex numbers have no Mtype; declare a two-field struct",
	"uintptr":    "uintptr is not portable across endpoints",
}

type pendingMethod struct {
	recv string
	at   scan.Token
	m    stype.Method
}

type parser struct {
	s       *scan.Scanner
	u       *stype.Universe
	pending []pendingMethod
}

func (p *parser) errorf(at scan.Token, format string, args ...interface{}) error {
	return p.s.Errorf(at, format, args...)
}

func (p *parser) checkDepth(at scan.Token, depth int) error {
	if depth > p.s.Budget().MaxDepth {
		return limits.Exceededf("%d:%d: type nesting exceeds depth budget of %d",
			at.Line, at.Col, p.s.Budget().MaxDepth)
	}
	return nil
}

func (p *parser) unit() error {
	kw, err := p.s.ExpectIdent()
	if err != nil {
		return err
	}
	if kw.Text != "package" {
		return p.errorf(kw, "expected package clause, found %s", kw)
	}
	if _, err := p.s.ExpectIdent(); err != nil {
		return err
	}
	for {
		t := p.s.Peek()
		if t.Kind == scan.TokEOF {
			break
		}
		if t.Kind != scan.TokIdent {
			return p.errorf(t, "unexpected %s at top level", t)
		}
		switch t.Text {
		case "import":
			if err := p.importDecl(); err != nil {
				return err
			}
		case "type":
			if err := p.typeDecl(); err != nil {
				return err
			}
		case "func":
			if err := p.funcDecl(); err != nil {
				return err
			}
		case "const", "var":
			return p.errorf(t, "%s declarations are outside the declaration subset (only type and func declarations are read)", t.Text)
		default:
			return p.errorf(t, "unexpected %s at top level", t)
		}
	}
	return p.attachMethods()
}

// importDecl accepts and discards an import declaration; imported
// packages cannot be referenced (qualified names are rejected), but real
// declaration files carry imports for their skipped method bodies.
func (p *parser) importDecl() error {
	p.s.Next() // "import"
	if p.s.Accept("(") {
		for !p.s.Accept(")") {
			t := p.s.Next()
			if t.Kind == scan.TokEOF {
				return p.errorf(t, "unterminated import block")
			}
			if t.Kind != scan.TokIdent && t.Kind != scan.TokString &&
				!(t.Kind == scan.TokPunct && (t.Text == "." || t.Text == ";")) {
				return p.errorf(t, "unexpected %s in import block", t)
			}
		}
		return nil
	}
	t := p.s.Next()
	if t.Kind == scan.TokIdent || (t.Kind == scan.TokPunct && t.Text == ".") {
		t = p.s.Next() // alias form: import alias "path"
	}
	if t.Kind != scan.TokString {
		return p.errorf(t, "expected import path string, found %s", t)
	}
	return nil
}

func (p *parser) typeDecl() error {
	p.s.Next() // "type"
	if p.s.Accept("(") {
		for !p.s.Accept(")") {
			if t := p.s.Peek(); t.Kind == scan.TokEOF {
				return p.errorf(t, "unterminated type block")
			}
			if p.s.Accept(";") {
				continue
			}
			if err := p.typeSpec(); err != nil {
				return err
			}
		}
		return nil
	}
	return p.typeSpec()
}

func (p *parser) typeSpec() error {
	name, err := p.s.ExpectIdent()
	if err != nil {
		return err
	}
	if t := p.s.Peek(); t.Kind == scan.TokPunct && t.Text == "[" {
		return p.errorf(t, "generic type declarations are not supported")
	}
	p.s.Accept("=") // aliases declare the same shape
	t := p.s.Peek()
	if t.Kind == scan.TokIdent && t.Text == "struct" && p.peek2IsBrace() {
		p.s.Next()
		node := &stype.Type{Kind: stype.KClass, Name: name.Text}
		if err := p.fieldList(node, 0); err != nil {
			return err
		}
		return p.addDecl(name, node)
	}
	if t.Kind == scan.TokIdent && t.Text == "interface" && p.peek2IsBrace() {
		p.s.Next()
		node := &stype.Type{Kind: stype.KInterface, Name: name.Text}
		if err := p.interfaceBody(node, 0); err != nil {
			return err
		}
		return p.addDecl(name, node)
	}
	ty, err := p.typeRef(0)
	if err != nil {
		return err
	}
	return p.addDecl(name, ty)
}

func (p *parser) peek2IsBrace() bool {
	t := p.s.Peek2()
	return t.Kind == scan.TokPunct && t.Text == "{"
}

func (p *parser) addDecl(at scan.Token, ty *stype.Type) error {
	if _, err := p.u.Add(at.Text, ty); err != nil {
		return p.errorf(at, "%v", err)
	}
	return nil
}

// fieldList parses "{" fields "}" into node.Fields. Semicolon insertion:
// a field ends at a ";", a "}", or a newline; a lone identifier at a
// boundary is an embedded field.
func (p *parser) fieldList(node *stype.Type, depth int) error {
	if _, err := p.s.Expect("{"); err != nil {
		return err
	}
	names := make(map[string]bool)
	for {
		if p.s.Accept("}") {
			return nil
		}
		if p.s.Accept(";") {
			continue
		}
		if t := p.s.Peek(); t.Kind == scan.TokEOF {
			return p.errorf(t, "unterminated struct body")
		}
		group, err := p.field(depth)
		if err != nil {
			return err
		}
		for _, fld := range group {
			if names[fld.Name] {
				return p.errorf(p.s.Peek(), "duplicate field %s in %s", fld.Name, node.Name)
			}
			names[fld.Name] = true
			node.Fields = append(node.Fields, fld)
		}
	}
}

// field parses one field group: an embedded type, an embedded pointer, or
// a name list with a type, each with an optional `key:"value"` tag.
func (p *parser) field(depth int) ([]stype.Field, error) {
	// Embedded pointer: *T is kept as a named optional reference (not
	// flattened: promoting through a nullable indirection would make the
	// record's shape depend on runtime state).
	if t := p.s.Peek(); t.Kind == scan.TokPunct && t.Text == "*" {
		p.s.Next()
		id, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.noQualified(id); err != nil {
			return nil, err
		}
		ty := stype.NewPointer(stype.NewNamed(id.Text))
		if err := p.applyTag(ty); err != nil {
			return nil, err
		}
		return []stype.Field{{Name: id.Text, Type: ty}}, nil
	}
	first, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.noQualified(first); err != nil {
		return nil, err
	}
	nameToks := []scan.Token{first}
	for p.s.Accept(",") {
		id, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		nameToks = append(nameToks, id)
	}
	if len(nameToks) == 1 && p.atMemberBoundary() {
		// Embedded field: a lone type name at a member boundary.
		ty := stype.NewNamed(first.Text)
		if err := p.applyTag(ty); err != nil {
			return nil, err
		}
		return []stype.Field{{Name: first.Text, Type: ty, Embedded: true}}, nil
	}
	ty, err := p.typeRef(depth)
	if err != nil {
		return nil, err
	}
	if err := p.applyTag(ty); err != nil {
		return nil, err
	}
	out := make([]stype.Field, 0, len(nameToks))
	for i, nt := range nameToks {
		t := ty
		if i > 0 {
			t = cloneType(ty)
		}
		out = append(out, stype.Field{Name: nt.Text, Type: t})
	}
	return out, nil
}

// atMemberBoundary reports that the next token starts a new member (or
// closes the body): Go's semicolon-insertion rule at this position.
func (p *parser) atMemberBoundary() bool {
	t := p.s.Peek()
	switch {
	case t.Kind == scan.TokEOF:
		return true
	case t.Kind == scan.TokPunct && (t.Text == "}" || t.Text == ";"):
		return true
	case t.Kind == scan.TokString:
		return true // a struct tag belongs to the field just parsed
	default:
		return t.AfterNL
	}
}

func (p *parser) noQualified(id scan.Token) error {
	if t := p.s.Peek(); t.Kind == scan.TokPunct && t.Text == "." {
		return p.errorf(id, "qualified type name %s.…: imported types are not supported; declare the shape locally", id.Text)
	}
	return nil
}

// applyTag consumes a struct tag literal, if present, and merges the
// attributes of its mbird key into the node's annotations.
func (p *parser) applyTag(ty *stype.Type) error {
	t := p.s.Peek()
	if t.Kind != scan.TokString {
		return nil
	}
	p.s.Next()
	raw := t.Text
	if strings.Contains(raw, "\\") {
		// A double-quoted tag keeps its escapes verbatim in the token.
		if unq, err := strconv.Unquote(`"` + raw + `"`); err == nil {
			raw = unq
		}
	}
	val, ok := lookupTag(raw, "mbird")
	if !ok {
		return nil // tags for other tools (json:, xml:, …) are fine
	}
	var words []string
	for _, w := range strings.Split(val, ",") {
		if w = strings.TrimSpace(w); w != "" {
			words = append(words, w)
		}
	}
	if len(words) == 0 {
		return nil
	}
	ann, err := annotate.ParseAttrs(words)
	if err != nil {
		return p.errorf(t, "struct tag: %v", err)
	}
	ty.Ann = ty.Ann.Merge(ann)
	return nil
}

// lookupTag extracts the value of key from a conventional struct tag
// (space-separated key:"value" pairs), mirroring reflect.StructTag.
func lookupTag(tag, key string) (string, bool) {
	for tag != "" {
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		if tag == "" {
			break
		}
		i = 0
		for i < len(tag) && tag[i] > ' ' && tag[i] != ':' && tag[i] != '"' && tag[i] != 0x7f {
			i++
		}
		if i == 0 || i+1 >= len(tag) || tag[i] != ':' || tag[i+1] != '"' {
			break
		}
		name := tag[:i]
		tag = tag[i+1:]
		i = 1
		for i < len(tag) && tag[i] != '"' {
			if tag[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(tag) {
			break
		}
		qvalue := tag[:i+1]
		tag = tag[i+1:]
		if name == key {
			value, err := strconv.Unquote(qvalue)
			if err != nil {
				break
			}
			return value, true
		}
	}
	return "", false
}

// interfaceBody parses "{" members "}": method signatures and embedded
// interface names.
func (p *parser) interfaceBody(node *stype.Type, depth int) error {
	if _, err := p.s.Expect("{"); err != nil {
		return err
	}
	for {
		if p.s.Accept("}") {
			return nil
		}
		if p.s.Accept(";") {
			continue
		}
		if t := p.s.Peek(); t.Kind == scan.TokEOF {
			return p.errorf(t, "unterminated interface body")
		}
		id, err := p.s.ExpectIdent()
		if err != nil {
			return err
		}
		if err := p.noQualified(id); err != nil {
			return err
		}
		if t := p.s.Peek(); t.Kind == scan.TokPunct && t.Text == "(" {
			params, result, err := p.signature(depth)
			if err != nil {
				return err
			}
			for _, m := range node.Methods {
				if m.Name == id.Text {
					return p.errorf(id, "duplicate method %s in interface %s", id.Text, node.Name)
				}
			}
			node.Methods = append(node.Methods, stype.Method{
				Name: id.Text, Params: params, Result: result,
			})
			continue
		}
		if !p.atMemberBoundary() {
			return p.errorf(p.s.Peek(), "expected method signature or embedded interface after %s", id.Text)
		}
		node.Embeds = append(node.Embeds, id.Text)
	}
}

// signature parses "(" params ")" [result]. Parameter names are required
// (the lowering's length-from relationships are by name); results are
// limited to one (no error channel on the wire — reject (T, error)).
func (p *parser) signature(depth int) ([]stype.Param, *stype.Type, error) {
	if _, err := p.s.Expect("("); err != nil {
		return nil, nil, err
	}
	var params []stype.Param
	if !p.s.Accept(")") {
		for {
			nameToks, err := p.paramNames()
			if err != nil {
				return nil, nil, err
			}
			ty, err := p.typeRef(depth)
			if err != nil {
				return nil, nil, err
			}
			for i, nt := range nameToks {
				t := ty
				if i > 0 {
					t = cloneType(ty)
				}
				params = append(params, stype.Param{Name: nt.Text, Type: t})
			}
			if p.s.Accept(",") {
				continue
			}
			if _, err := p.s.Expect(")"); err != nil {
				return nil, nil, err
			}
			break
		}
	}
	rt := p.s.Peek()
	if rt.Kind == scan.TokPunct && rt.Text == "(" {
		return nil, nil, p.errorf(rt, "multiple return values are not supported (declare an out-parameter struct; (T, error) has no wire mapping)")
	}
	if !rt.AfterNL && isTypeStart(rt) {
		result, err := p.typeRef(depth)
		if err != nil {
			return nil, nil, err
		}
		return params, result, nil
	}
	return params, nil, nil
}

// paramNames parses the comma-separated name list of one parameter group.
func (p *parser) paramNames() ([]scan.Token, error) {
	first := p.s.Peek()
	if first.Kind != scan.TokIdent {
		return nil, p.errorf(first, "parameter names are required (found %s)", first)
	}
	p.s.Next()
	names := []scan.Token{first}
	for p.s.Accept(",") {
		id, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		names = append(names, id)
	}
	// The group must now have a type; a bare ")" means the "names" were
	// really types (an unnamed parameter list).
	if t := p.s.Peek(); t.Kind == scan.TokPunct && t.Text == ")" {
		return nil, p.errorf(t, "parameter names are required (types-only parameter lists are not supported)")
	}
	return names, nil
}

func isTypeStart(t scan.Token) bool {
	switch t.Kind {
	case scan.TokIdent:
		return true
	case scan.TokPunct:
		return t.Text == "*" || t.Text == "["
	default:
		return false
	}
}

// typeRef parses a type use.
func (p *parser) typeRef(depth int) (*stype.Type, error) {
	t := p.s.Peek()
	if err := p.checkDepth(t, depth); err != nil {
		return nil, err
	}
	switch {
	case t.Kind == scan.TokPunct && t.Text == "*":
		p.s.Next()
		elem, err := p.typeRef(depth + 1)
		if err != nil {
			return nil, err
		}
		return stype.NewPointer(elem), nil
	case t.Kind == scan.TokPunct && t.Text == "[":
		p.s.Next()
		if p.s.Accept("]") {
			elem, err := p.typeRef(depth + 1)
			if err != nil {
				return nil, err
			}
			return stype.NewSequence(elem), nil
		}
		n := p.s.Next()
		if n.Kind != scan.TokNumber {
			return nil, p.errorf(n, "array length must be an integer literal, found %s", n)
		}
		length, err := strconv.ParseInt(n.Text, 0, 32)
		if err != nil || length < 0 {
			return nil, p.errorf(n, "invalid array length %s", n)
		}
		if _, err := p.s.Expect("]"); err != nil {
			return nil, err
		}
		elem, err := p.typeRef(depth + 1)
		if err != nil {
			return nil, err
		}
		return stype.NewArray(elem, int(length)), nil
	case t.Kind == scan.TokIdent && t.Text == "map":
		p.s.Next()
		if _, err := p.s.Expect("["); err != nil {
			return nil, err
		}
		key, err := p.typeRef(depth + 1)
		if err != nil {
			return nil, err
		}
		if _, err := p.s.Expect("]"); err != nil {
			return nil, err
		}
		val, err := p.typeRef(depth + 1)
		if err != nil {
			return nil, err
		}
		// A map is an annotated sequence of Key/Value pairs: its wire
		// form is the list of entries (iteration order is the sender's;
		// the contract carries the multiset).
		entry := &stype.Type{Kind: stype.KStruct, Fields: []stype.Field{
			{Name: "Key", Type: key},
			{Name: "Value", Type: val},
		}}
		return stype.NewSequence(entry), nil
	case t.Kind == scan.TokIdent && t.Text == "struct" && p.peek2IsBrace():
		p.s.Next()
		node := &stype.Type{Kind: stype.KStruct}
		if err := p.fieldList(node, depth+1); err != nil {
			return nil, err
		}
		return node, nil
	case t.Kind == scan.TokIdent && t.Text == "interface":
		if p.peek2IsBrace() {
			return nil, p.errorf(t, "inline interface types are not supported; declare a named interface")
		}
		return nil, p.errorf(t, "unexpected interface in type position")
	case t.Kind == scan.TokPunct && t.Text == "<":
		return nil, p.errorf(t, "channel types have no wire representation")
	case t.Kind == scan.TokIdent:
		if reason, bad := rejected[t.Text]; bad {
			return nil, p.errorf(t, "%s: %s", t.Text, reason)
		}
		p.s.Next()
		if err := p.noQualified(t); err != nil {
			return nil, err
		}
		if t.Text == "rune" {
			ty := stype.NewPrim(stype.PI32)
			yes := true
			ty.Ann.AsChar = &yes
			return ty, nil
		}
		if t.Text == "string" {
			// Text: a sequence of narrow characters, matching the IDL
			// string lowering (Go source text is byte-oriented UTF-8; use
			// []rune or a char-tagged integer for wide repertoires).
			return stype.NewSequence(stype.NewPrim(stype.PChar8)), nil
		}
		if prim, ok := goPrims[t.Text]; ok {
			return stype.NewPrim(prim), nil
		}
		return stype.NewNamed(t.Text), nil
	default:
		return nil, p.errorf(t, "expected type, found %s", t)
	}
}

// funcDecl parses a top-level function: receiver methods join their
// type's method set, plain functions become KFunc declarations. Bodies
// are skipped by brace matching.
func (p *parser) funcDecl() error {
	p.s.Next() // "func"
	var recv string
	if p.s.Accept("(") {
		var err error
		recv, err = p.receiver()
		if err != nil {
			return err
		}
	}
	name, err := p.s.ExpectIdent()
	if err != nil {
		return err
	}
	if t := p.s.Peek(); t.Kind == scan.TokPunct && t.Text == "[" {
		return p.errorf(t, "generic functions are not supported")
	}
	params, result, err := p.signature(0)
	if err != nil {
		return err
	}
	if t := p.s.Peek(); t.Kind == scan.TokPunct && t.Text == "{" {
		if err := p.skipBlock(); err != nil {
			return err
		}
	}
	if recv != "" {
		p.pending = append(p.pending, pendingMethod{
			recv: recv, at: name,
			m: stype.Method{Name: name.Text, Params: params, Result: result},
		})
		return nil
	}
	return p.addDecl(name, &stype.Type{Kind: stype.KFunc, Params: params, Result: result})
}

// receiver parses a method receiver after its "(": the forms (r T),
// (r *T), (T), and (*T). Returns the base type name.
func (p *parser) receiver() (string, error) {
	if p.s.Accept("*") {
		id, err := p.s.ExpectIdent()
		if err != nil {
			return "", err
		}
		_, err = p.s.Expect(")")
		return id.Text, err
	}
	id1, err := p.s.ExpectIdent()
	if err != nil {
		return "", err
	}
	if p.s.Accept(")") {
		return id1.Text, nil
	}
	if p.s.Accept("*") {
		id2, err := p.s.ExpectIdent()
		if err != nil {
			return "", err
		}
		_, err = p.s.Expect(")")
		return id2.Text, err
	}
	id2, err := p.s.ExpectIdent()
	if err != nil {
		return "", err
	}
	if t := p.s.Peek(); t.Kind == scan.TokPunct && t.Text == "[" {
		return "", p.errorf(t, "generic receivers are not supported")
	}
	_, err = p.s.Expect(")")
	return id2.Text, err
}

// skipBlock consumes a brace-balanced block.
func (p *parser) skipBlock() error {
	open, err := p.s.Expect("{")
	if err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.s.Next()
		switch {
		case t.Kind == scan.TokEOF:
			return p.errorf(open, "unterminated block")
		case t.Kind == scan.TokPunct && t.Text == "{":
			depth++
		case t.Kind == scan.TokPunct && t.Text == "}":
			depth--
		}
	}
	return nil
}

// attachMethods appends receiver methods to their declarations.
func (p *parser) attachMethods() error {
	for _, pm := range p.pending {
		d := p.u.Lookup(pm.recv)
		if d == nil {
			return p.errorf(pm.at, "method %s declared on undeclared type %s", pm.m.Name, pm.recv)
		}
		if d.Type.Kind == stype.KInterface {
			return p.errorf(pm.at, "cannot declare method %s on interface %s", pm.m.Name, pm.recv)
		}
		for _, ex := range d.Type.Methods {
			if ex.Name == pm.m.Name {
				return p.errorf(pm.at, "method %s redeclared on %s", pm.m.Name, pm.recv)
			}
		}
		d.Type.Methods = append(d.Type.Methods, pm.m)
	}
	p.pending = nil
	return nil
}

// checkEmbeds verifies every embedded interface name resolves: unlike
// Java's external supers, Go embeds always live in the parsed package.
func (p *parser) checkEmbeds() error {
	for _, d := range p.u.Decls() {
		for _, e := range d.Type.Embeds {
			if p.u.Lookup(e) == nil {
				return p.errorf(scan.Token{}, "interface %s embeds undeclared interface %s", d.Name, e)
			}
		}
	}
	return nil
}

// applyValueSemantics stamps every use of a struct-declared name
// nonnull+noalias: a Go value of struct type is the struct, so lowering
// concludes by-value containment (§3.4) with no Choice(Unit, τ) wrapper.
// Interface-typed uses stay nullable references to the method dictionary.
func (p *parser) applyValueSemantics() {
	for _, d := range p.u.Decls() {
		stype.Walk(d.Type, func(n *stype.Type) {
			if n.Kind != stype.KNamed {
				return
			}
			if t := p.underlying(n.Name); t != nil && t.Kind == stype.KClass {
				n.Ann.NonNull = true
				n.Ann.NoAlias = true
			}
		})
	}
}

// underlying resolves a declared name through typedef-like chains to its
// defining Stype node.
func (p *parser) underlying(name string) *stype.Type {
	seen := make(map[string]bool)
	for !seen[name] {
		seen[name] = true
		d := p.u.Lookup(name)
		if d == nil {
			return nil
		}
		if d.Type.Kind == stype.KNamed {
			name = d.Type.Name
			continue
		}
		return d.Type
	}
	return nil
}

// cloneType deep-copies a type node so each name in a shared declarator
// group gets its own annotatable use-site.
func cloneType(t *stype.Type) *stype.Type {
	if t == nil {
		return nil
	}
	c := *t
	if t.ElemType != nil {
		c.ElemType = cloneType(t.ElemType)
	}
	if len(t.Fields) > 0 {
		c.Fields = make([]stype.Field, len(t.Fields))
		for i, f := range t.Fields {
			c.Fields[i] = stype.Field{Name: f.Name, Type: cloneType(f.Type), Embedded: f.Embedded}
		}
	}
	return &c
}
