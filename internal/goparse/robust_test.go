package goparse

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/limits"
)

// TestParserNeverPanics drives the parser with mutated fragments of valid
// input: every outcome must be a parse result or an error, never a panic
// or a hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"package p\ntype Point struct {\n\tX, Y float32\n}",
		"package p\ntype Fitter interface {\n\tFit(n int32) int32\n}",
		"package p\ntype T struct {\n\tM map[string][]int32\n\tA [4]*T\n}",
		"package p\ntype T struct {\n\tC uint16 `mbird:\"char\"`\n}",
		"package p\ntype A struct{ N int32 }\ntype B struct {\n\tA\n\tX int64\n}",
		"package p\nfunc (t *T) M(a int32) int32 { return a }\ntype T struct{ N int32 }",
		"package p\ntype I interface {\n\tJ\n\tM()\n}\ntype J interface{ K() }",
	}
	tokens := []string{
		"type", "struct", "interface", "func", "map", "int32", "string",
		"*", "[", "]", "(", ")", "{", "}", ";", ",", "`mbird:\"char\"`",
		"\n", "x", "2", "package", "=", "chan",
	}
	f := func(seed int64, cut, ins uint8) bool {
		src := seeds[int(uint64(seed)%uint64(len(seeds)))]
		pos := int(cut) % (len(src) + 1)
		tok := tokens[int(ins)%len(tokens)]
		mutated := src[:pos] + " " + tok + " " + src[pos:]
		// Must not panic; errors are fine.
		_, _ = Parse("fuzz.go", mutated)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserHandlesGarbage(t *testing.T) {
	garbage := []string{
		"",
		"package",
		"package p\n;;;;",
		"package p\n}{",
		"package p\ntype type type",
		"package p\n" + strings.Repeat("(", 100),
		"package p\n" + strings.Repeat("type T struct { F struct { ", 50),
		"package p\n\x00\x01\x02",
		"package p\ntype T struct{ N int32 }\n\xff\xfe",
		"package p\ntype T struct {\n\tS []byte `unterminated",
		"package p\nfunc f() { { { }",
	}
	for _, src := range garbage {
		_, _ = Parse("garbage.go", src) // must not panic or hang
	}
}

func TestDeeplyNestedTypes(t *testing.T) {
	// Deep but finite nesting must terminate.
	src := "package p\ntype T struct {\n\tF " + strings.Repeat("[]", 50) + "int32\n}"
	_, _ = Parse("deep.go", src)
}

// TestInputBudgets drives each budget axis past its limit: every case
// must surface a typed error wrapping limits.ErrBudget, never a stack
// overflow or a masked syntax diagnosis.
func TestInputBudgets(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		budget limits.Budget
	}{
		{"pointer chain bomb",
			"package p\ntype T struct {\n\tF " + strings.Repeat("*", 500) + "int32\n}",
			limits.Budget{}},
		{"slice nesting bomb",
			"package p\ntype T struct {\n\tF " + strings.Repeat("[]", 500) + "int32\n}",
			limits.Budget{}},
		{"inline struct nesting",
			"package p\ntype T struct { F " + strings.Repeat("struct { F ", 300) + "int32" + strings.Repeat(" }", 300) + " }",
			limits.Budget{}},
		{"map nesting bomb",
			"package p\ntype T struct {\n\tF " + strings.Repeat("map[int32]", 400) + "int32\n}",
			limits.Budget{}},
		{"oversized input",
			"package p\ntype T struct {\n\tAQuiteLongFieldName int32\n}",
			limits.Budget{MaxBytes: 16}},
		{"token bomb",
			"package p\ntype T struct {\n\tA, B, C, D, E, F, G, H int32\n}",
			limits.Budget{MaxTokens: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBudget("hostile.go", tc.src, tc.budget)
			if !errors.Is(err, limits.ErrBudget) {
				t.Errorf("err = %v, want limits.ErrBudget", err)
			}
		})
	}
	// A tight but sufficient budget must not reject honest input.
	if _, err := ParseBudget("ok.go", "package p\ntype T struct {\n\tN int32\n}", limits.Budget{MaxBytes: 64, MaxTokens: 32, MaxDepth: 8}); err != nil {
		t.Errorf("honest input rejected: %v", err)
	}
}

func TestTruncatedInputs(t *testing.T) {
	// Every prefix of a valid unit must error or parse, never panic.
	src := "package p\ntype T struct {\n\tC uint16 `mbird:\"char\"`\n\tM map[string]*T\n}\ntype I interface {\n\tM(a int32) int32\n}\nfunc (t *T) F() {}\n"
	for i := 0; i <= len(src); i++ {
		_, _ = Parse("trunc.go", src[:i])
	}
}
