// Package stype defines the Stype: Mockingbird's abstract-syntax
// representation of a source-language declaration (§4 of the paper). The C,
// Java, and CORBA IDL parsers all produce Stypes; annotations (both language
// defaults and programmer-supplied ones) are recorded directly on Stype
// nodes; and the lowering pass translates annotated Stypes into Mtypes.
//
// Every syntactic occurrence of a type gets its own Stype node — a `Point`
// parameter and a `Point` field reference the same declaration but are
// distinct Named nodes — so annotations naturally apply per use-site.
package stype

import (
	"fmt"
	"sort"
	"strings"
)

// Lang identifies the source language of a declaration.
type Lang uint8

// Supported source languages.
const (
	LangC Lang = iota + 1
	LangJava
	LangIDL
	LangGo
)

// String returns the conventional language name.
func (l Lang) String() string {
	switch l {
	case LangC:
		return "c"
	case LangJava:
		return "java"
	case LangIDL:
		return "idl"
	case LangGo:
		return "go"
	default:
		return fmt.Sprintf("lang(%d)", uint8(l))
	}
}

// TKind discriminates Stype node constructors.
type TKind uint8

// Stype node kinds.
const (
	KPrim      TKind = iota + 1 // language primitive
	KNamed                      // reference to another declaration by name
	KStruct                     // C/IDL struct; aggregates passed by value
	KUnion                      // C/IDL union
	KClass                      // Java/C++ class: fields + methods
	KInterface                  // Java/IDL interface: methods only
	KEnum                       // enumeration
	KPointer                    // C pointer / Java-IDL object reference
	KArray                      // array (fixed or indefinite length)
	KSequence                   // ordered collection of indefinite size
	KFunc                       // function declaration
)

// String returns the lower-case node-kind name.
func (k TKind) String() string {
	names := map[TKind]string{
		KPrim: "prim", KNamed: "named", KStruct: "struct", KUnion: "union",
		KClass: "class", KInterface: "interface", KEnum: "enum",
		KPointer: "pointer", KArray: "array", KSequence: "sequence", KFunc: "func",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("tkind(%d)", uint8(k))
}

// Prim identifies a language-neutral primitive type. The parsers map each
// language's primitives onto these (C int → I32 under the ILP32/LP64 data
// models we support, Java boolean → Bool, IDL long → I32, …).
type Prim uint8

// Primitive types.
const (
	PVoid Prim = iota + 1
	PBool
	PI8
	PU8
	PI16
	PU16
	PI32
	PU32
	PI64
	PU64
	PF32
	PF64
	PChar8  // narrow character (C char, IDL char)
	PChar16 // wide character (Java char, wchar_t, IDL wchar)
)

// String returns the primitive's name.
func (p Prim) String() string {
	names := map[Prim]string{
		PVoid: "void", PBool: "bool",
		PI8: "int8", PU8: "uint8", PI16: "int16", PU16: "uint16",
		PI32: "int32", PU32: "uint32", PI64: "int64", PU64: "uint64",
		PF32: "float32", PF64: "float64",
		PChar8: "char8", PChar16: "char16",
	}
	if s, ok := names[p]; ok {
		return s
	}
	return fmt.Sprintf("prim(%d)", uint8(p))
}

// Mode is a parameter passing direction. The default (ModeUnset) means the
// language rule applies: all parameters are inputs and the return value is
// the single output (§3.3).
type Mode uint8

// Parameter modes.
const (
	ModeUnset Mode = iota
	ModeIn
	ModeOut
	ModeInOut
)

// String returns the IDL keyword for the mode.
func (m Mode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	default:
		return "unset"
	}
}

// RangeAnn is an integer range override, held as decimal strings so that
// ranges beyond int64 (e.g. 0..2^64-1) survive serialization.
type RangeAnn struct {
	Lo string `json:"lo"`
	Hi string `json:"hi"`
}

// Ann is the set of annotations attached to one Stype node. Zero values
// mean "no annotation"; lowering applies language defaults where no
// annotation is present. The vocabulary follows §3 of the paper.
type Ann struct {
	// NonNull states a pointer/reference is never null, eliding the
	// Choice(Unit, τ) lowering (§3.2).
	NonNull bool `json:"nonNull,omitempty"`
	// NoAlias states a reference never introduces an alias, so an
	// aggregate containing two such references contains two distinct
	// objects (§3 example: the two Points of every Line).
	NoAlias bool `json:"noAlias,omitempty"`
	// Mode is a parameter direction annotation (§3.3).
	Mode Mode `json:"mode,omitempty"`
	// FixedLen provides a static length for a pointer/array, lowering it
	// to a Record of that many elements (§3.2). Zero means unset.
	FixedLen int `json:"fixedLen,omitempty"`
	// LengthFrom names a sibling parameter that carries the runtime
	// length of this array (the fitter `count` convention). The array
	// lowers to the recursive list encoding and the named parameter is
	// consumed by the binding rather than appearing in the Mtype.
	LengthFrom string `json:"lengthFrom,omitempty"`
	// Range overrides the integer range (§3.1).
	Range *RangeAnn `json:"range,omitempty"`
	// AsChar forces an integral type to be a Character (true) or Integer
	// (false) Mtype; nil means the language convention applies (§3.1).
	AsChar *bool `json:"asChar,omitempty"`
	// Repertoire overrides the character repertoire ("ascii", "latin1",
	// "ucs2", "unicode").
	Repertoire string `json:"repertoire,omitempty"`
	// ByValue forces a class to lower as a Record of its fields (true) or
	// as an object reference port (false); nil means the language default
	// (Java classes by reference, C/IDL structs by value).
	ByValue *bool `json:"byValue,omitempty"`
	// CollectionOf states a class is a homogeneous ordered collection of
	// the named element type (e.g. PointVector contains only Point),
	// lowering to the recursive list encoding.
	CollectionOf string `json:"collectionOf,omitempty"`
	// ElementNonNull states collection elements are never null.
	ElementNonNull bool `json:"elementNonNull,omitempty"`
	// Ignore drops the node (a field or method) from the lowering.
	Ignore bool `json:"ignore,omitempty"`
}

// IsZero reports whether no annotation is set.
func (a Ann) IsZero() bool {
	return !a.NonNull && !a.NoAlias && a.Mode == ModeUnset && a.FixedLen == 0 &&
		a.LengthFrom == "" && a.Range == nil && a.AsChar == nil &&
		a.Repertoire == "" && a.ByValue == nil && a.CollectionOf == "" &&
		!a.ElementNonNull && !a.Ignore
}

// Merge overlays o on top of a: every annotation set in o wins.
func (a Ann) Merge(o Ann) Ann {
	out := a
	if o.NonNull {
		out.NonNull = true
	}
	if o.NoAlias {
		out.NoAlias = true
	}
	if o.Mode != ModeUnset {
		out.Mode = o.Mode
	}
	if o.FixedLen != 0 {
		out.FixedLen = o.FixedLen
	}
	if o.LengthFrom != "" {
		out.LengthFrom = o.LengthFrom
	}
	if o.Range != nil {
		out.Range = o.Range
	}
	if o.AsChar != nil {
		out.AsChar = o.AsChar
	}
	if o.Repertoire != "" {
		out.Repertoire = o.Repertoire
	}
	if o.ByValue != nil {
		out.ByValue = o.ByValue
	}
	if o.CollectionOf != "" {
		out.CollectionOf = o.CollectionOf
	}
	if o.ElementNonNull {
		out.ElementNonNull = true
	}
	if o.Ignore {
		out.Ignore = true
	}
	return out
}

// Field is a named member of a struct, union, or class.
type Field struct {
	Name string
	Type *Type
	// Embedded marks a Go embedded (anonymous) field: the field is named
	// after its type, and lowering flattens the embedded struct's fields
	// into the outer record per Go's promotion rules.
	Embedded bool
}

// Param is a function or method parameter.
type Param struct {
	Name string
	Type *Type
}

// Method is a named operation of a class or interface. Ann carries
// method-level annotations (only Ignore is meaningful at this level);
// parameter and result annotations live on their own type nodes.
type Method struct {
	Name   string
	Params []Param
	Result *Type // nil means void
	Ann    Ann
	// Oneway marks an IDL oneway operation: fire-and-forget message
	// passing with no reply port in the lowering (§3.3, §5's messaging
	// case study).
	Oneway bool
}

// Type is an Stype node. Exactly the fields relevant to Kind are set.
type Type struct {
	Kind TKind
	Ann  Ann

	// KPrim.
	Prim Prim

	// KNamed: the referenced declaration name. Resolve fills Target.
	Name   string
	Target *Decl

	// Composites (KStruct, KUnion, KClass, KInterface).
	Fields  []Field
	Methods []Method
	Super   string // single inheritance parent, "" if none
	// Embeds lists additional method-set contributors beyond Super: Go
	// embedded interfaces, Java implements/multi-extends lists, IDL
	// secondary interface bases. Method collection walks Super and Embeds
	// breadth-first; same-depth collisions are a typed lowering error.
	Embeds []string

	// KEnum.
	EnumNames []string

	// KPointer, KArray, KSequence element.
	ElemType *Type

	// KArray length: >= 0 fixed, -1 indefinite (size unknown until runtime).
	Len int

	// KFunc.
	Params []Param
	Result *Type // nil means void
}

// NewPrim returns a primitive Stype node.
func NewPrim(p Prim) *Type { return &Type{Kind: KPrim, Prim: p} }

// NewNamed returns an unresolved reference to the named declaration.
func NewNamed(name string) *Type { return &Type{Kind: KNamed, Name: name} }

// NewPointer returns a pointer/reference to elem.
func NewPointer(elem *Type) *Type { return &Type{Kind: KPointer, ElemType: elem} }

// NewArray returns an array of elem; length -1 means indefinite.
func NewArray(elem *Type, length int) *Type {
	return &Type{Kind: KArray, ElemType: elem, Len: length}
}

// NewSequence returns an ordered collection of indefinite size.
func NewSequence(elem *Type) *Type { return &Type{Kind: KSequence, ElemType: elem} }

// Decl is a named top-level declaration in a Universe.
type Decl struct {
	Name string
	Lang Lang
	Type *Type
}

// Universe is an ordered set of declarations loaded from one source (one
// language). Named references resolve within their universe.
type Universe struct {
	lang  Lang
	order []string
	decls map[string]*Decl
}

// NewUniverse returns an empty universe for the given language.
func NewUniverse(lang Lang) *Universe {
	return &Universe{lang: lang, decls: make(map[string]*Decl)}
}

// Lang returns the universe's source language.
func (u *Universe) Lang() Lang { return u.lang }

// Add inserts a declaration. It fails if the name is already declared.
func (u *Universe) Add(name string, ty *Type) (*Decl, error) {
	if name == "" {
		return nil, fmt.Errorf("stype: empty declaration name")
	}
	if ty == nil {
		return nil, fmt.Errorf("stype: declaration %q has nil type", name)
	}
	if _, dup := u.decls[name]; dup {
		return nil, fmt.Errorf("stype: duplicate declaration %q", name)
	}
	d := &Decl{Name: name, Lang: u.lang, Type: ty}
	u.decls[name] = d
	u.order = append(u.order, name)
	return d, nil
}

// Lookup returns the declaration with the given name, or nil.
func (u *Universe) Lookup(name string) *Decl { return u.decls[name] }

// Names returns the declaration names in insertion order.
func (u *Universe) Names() []string { return append([]string(nil), u.order...) }

// Decls returns all declarations in insertion order.
func (u *Universe) Decls() []*Decl {
	out := make([]*Decl, 0, len(u.order))
	for _, name := range u.order {
		out = append(out, u.decls[name])
	}
	return out
}

// Resolve binds every Named node reachable from the universe's declarations
// to its target declaration. Unresolvable names are reported together.
func (u *Universe) Resolve() error {
	var missing []string
	seenMissing := make(map[string]bool)
	for _, d := range u.Decls() {
		Walk(d.Type, func(n *Type) {
			if n.Kind != KNamed {
				return
			}
			target := u.decls[n.Name]
			if target == nil {
				if !seenMissing[n.Name] {
					seenMissing[n.Name] = true
					missing = append(missing, n.Name)
				}
				return
			}
			n.Target = target
		})
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("stype: unresolved type names: %s", strings.Join(missing, ", "))
	}
	return nil
}

// Walk calls fn on every Stype node reachable from t, once per node, in
// preorder. It does not follow Named targets (which would cross into other
// declarations).
func Walk(t *Type, fn func(*Type)) {
	seen := make(map[*Type]bool)
	var rec func(n *Type)
	rec = func(n *Type) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		fn(n)
		for _, f := range n.Fields {
			rec(f.Type)
		}
		for _, m := range n.Methods {
			for _, p := range m.Params {
				rec(p.Type)
			}
			rec(m.Result)
		}
		rec(n.ElemType)
		for _, p := range n.Params {
			rec(p.Type)
		}
		rec(n.Result)
	}
	rec(t)
}

// String renders the node for diagnostics (shallow for composites).
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KPrim:
		return t.Prim.String()
	case KNamed:
		return t.Name
	case KStruct:
		return "struct " + t.Name
	case KUnion:
		return "union " + t.Name
	case KClass:
		return "class " + t.Name
	case KInterface:
		return "interface " + t.Name
	case KEnum:
		return "enum " + t.Name
	case KPointer:
		return t.ElemType.String() + "*"
	case KArray:
		if t.Len < 0 {
			return t.ElemType.String() + "[]"
		}
		return fmt.Sprintf("%s[%d]", t.ElemType, t.Len)
	case KSequence:
		return "sequence<" + t.ElemType.String() + ">"
	case KFunc:
		var sb strings.Builder
		sb.WriteString("func(")
		for i, p := range t.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(p.Type.String())
			if p.Name != "" {
				sb.WriteString(" " + p.Name)
			}
		}
		sb.WriteString(")")
		if t.Result != nil {
			sb.WriteString(" " + t.Result.String())
		}
		return sb.String()
	default:
		return "<invalid>"
	}
}

// Signature renders a method for diagnostics.
func (m Method) Signature() string {
	var sb strings.Builder
	sb.WriteString(m.Name)
	sb.WriteString("(")
	for i, p := range m.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Type.String())
	}
	sb.WriteString(")")
	if m.Result != nil {
		sb.WriteString(" " + m.Result.String())
	}
	return sb.String()
}
