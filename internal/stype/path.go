package stype

import (
	"fmt"
	"strings"
)

// A Path selects Stype nodes within a Universe for annotation. The textual
// form is dot-separated segments:
//
//	Decl                    the root node of a declaration
//	Decl.field              a struct/class field's type node
//	Decl.param              a function parameter's type node
//	Decl.method.param       a method parameter's type node
//	Decl.method.return      a method result's type node
//	....*                   the element/pointee of the selected node
//
// Segments may be the wildcard "*", which matches any name at that
// position; this is what makes the batch annotation scripts of §5 practical
// ("annotate the `start` field of every class…").
type Path struct {
	segments []string
}

// ParsePath parses the textual path form.
func ParsePath(s string) (Path, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Path{}, fmt.Errorf("stype: empty path")
	}
	segs := strings.Split(s, ".")
	for i, seg := range segs {
		if seg == "" {
			return Path{}, fmt.Errorf("stype: empty segment in path %q", s)
		}
		segs[i] = seg
	}
	return Path{segments: segs}, nil
}

// String returns the textual form of the path.
func (p Path) String() string { return strings.Join(p.segments, ".") }

// Selection is one node matched by a path, with enough context to describe
// the match in diagnostics. Exactly one of Node and Method is non-nil:
// paths ending at a type use Node; paths ending at a bare method (for
// method-level annotations such as ignore) use Method.
type Selection struct {
	Decl   *Decl
	Node   *Type
	Method *Method
	// Where is a human-readable location, e.g. "fitter.pts".
	Where string
}

// Select returns every node in the universe matched by the path. A path
// with no wildcard matches at most one node; wildcard paths may match many.
// Select never returns an error for a wildcard path that matches nothing
// (batch scripts run against suites where not every class has every
// member), but a fully literal path that matches nothing is an error.
func (p Path) Select(u *Universe) ([]Selection, error) {
	if len(p.segments) == 0 {
		return nil, fmt.Errorf("stype: empty path")
	}
	var out []Selection
	first := p.segments[0]
	for _, d := range u.Decls() {
		if !segMatch(first, d.Name) {
			continue
		}
		out = append(out, matchRest(d, d.Type, d.Name, p.segments[1:])...)
	}
	if len(out) == 0 && !p.hasWildcard() {
		return nil, fmt.Errorf("stype: path %q matches nothing", p)
	}
	return out, nil
}

func (p Path) hasWildcard() bool {
	for _, s := range p.segments {
		if s == "*" {
			return true
		}
	}
	return false
}

func segMatch(pattern, name string) bool {
	return pattern == "*" || pattern == name
}

// matchRest descends from node following the remaining segments.
func matchRest(d *Decl, node *Type, where string, rest []string) []Selection {
	if node == nil {
		return nil
	}
	if len(rest) == 0 {
		return []Selection{{Decl: d, Node: node, Where: where}}
	}
	seg := rest[0]
	var out []Selection

	// "*" as a structural step: element/pointee of pointer, array, sequence.
	if seg == "*" {
		switch node.Kind {
		case KPointer, KArray, KSequence:
			out = append(out, matchRest(d, node.ElemType, where+".*", rest[1:])...)
		}
		// A wildcard also matches named members below.
	}

	switch node.Kind {
	case KStruct, KUnion, KClass, KInterface:
		for i := range node.Fields {
			f := &node.Fields[i]
			if segMatch(seg, f.Name) {
				out = append(out, matchRest(d, f.Type, where+"."+f.Name, rest[1:])...)
			}
		}
		for i := range node.Methods {
			m := &node.Methods[i]
			if segMatch(seg, m.Name) {
				out = append(out, matchMethod(d, m, where+"."+m.Name, rest[1:])...)
			}
		}
	case KFunc:
		for i := range node.Params {
			p := &node.Params[i]
			if segMatch(seg, p.Name) {
				out = append(out, matchRest(d, p.Type, where+"."+p.Name, rest[1:])...)
			}
		}
		if segMatch(seg, "return") && node.Result != nil {
			out = append(out, matchRest(d, node.Result, where+".return", rest[1:])...)
		}
	case KNamed:
		// Follow the reference so paths can traverse through typedefs and
		// class references (e.g. JavaIdeal.fitter.pts where pts: PointVector).
		if node.Target != nil {
			out = append(out, matchRest(d, node.Target.Type, where, rest)...)
		}
	}
	return out
}

func matchMethod(d *Decl, m *Method, where string, rest []string) []Selection {
	if len(rest) == 0 {
		return []Selection{{Decl: d, Method: m, Where: where}}
	}
	seg := rest[0]
	var out []Selection
	for i := range m.Params {
		p := &m.Params[i]
		if segMatch(seg, p.Name) {
			out = append(out, matchRest(d, p.Type, where+"."+p.Name, rest[1:])...)
		}
	}
	if segMatch(seg, "return") && m.Result != nil {
		out = append(out, matchRest(d, m.Result, where+".return", rest[1:])...)
	}
	return out
}
