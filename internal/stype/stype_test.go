package stype

import (
	"strings"
	"testing"
)

// buildFitterUniverse constructs the C-side declarations of Figure 2 by
// hand: typedef float point[2]; void fitter(point pts[], int count,
// point *start, point *end).
func buildFitterUniverse(t *testing.T) *Universe {
	t.Helper()
	u := NewUniverse(LangC)
	point := NewArray(NewPrim(PF32), 2)
	if _, err := u.Add("point", point); err != nil {
		t.Fatal(err)
	}
	fitter := &Type{
		Kind: KFunc,
		Params: []Param{
			{Name: "pts", Type: NewArray(NewNamed("point"), -1)},
			{Name: "count", Type: NewPrim(PI32)},
			{Name: "start", Type: NewPointer(NewNamed("point"))},
			{Name: "end", Type: NewPointer(NewNamed("point"))},
		},
	}
	if _, err := u.Add("fitter", fitter); err != nil {
		t.Fatal(err)
	}
	if err := u.Resolve(); err != nil {
		t.Fatal(err)
	}
	return u
}

// buildJavaUniverse constructs the Figure 1 Java types by hand.
func buildJavaUniverse(t *testing.T) *Universe {
	t.Helper()
	u := NewUniverse(LangJava)
	point := &Type{Kind: KClass, Name: "Point", Fields: []Field{
		{Name: "x", Type: NewPrim(PF32)},
		{Name: "y", Type: NewPrim(PF32)},
	}}
	line := &Type{Kind: KClass, Name: "Line", Fields: []Field{
		{Name: "start", Type: NewNamed("Point")},
		{Name: "end", Type: NewNamed("Point")},
	}}
	vec := &Type{Kind: KClass, Name: "PointVector", Super: "java.util.Vector"}
	ideal := &Type{Kind: KInterface, Name: "JavaIdeal", Methods: []Method{{
		Name:   "fitter",
		Params: []Param{{Name: "pts", Type: NewNamed("PointVector")}},
		Result: NewNamed("Line"),
	}}}
	for _, d := range []struct {
		name string
		ty   *Type
	}{
		{"Point", point}, {"Line", line}, {"PointVector", vec}, {"JavaIdeal", ideal},
	} {
		if _, err := u.Add(d.name, d.ty); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Resolve(); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUniverseAddAndLookup(t *testing.T) {
	u := buildFitterUniverse(t)
	if d := u.Lookup("fitter"); d == nil || d.Lang != LangC {
		t.Fatalf("Lookup(fitter) = %+v", d)
	}
	if d := u.Lookup("nope"); d != nil {
		t.Errorf("Lookup(nope) = %+v, want nil", d)
	}
	names := u.Names()
	if len(names) != 2 || names[0] != "point" || names[1] != "fitter" {
		t.Errorf("Names() = %v", names)
	}
}

func TestUniverseRejectsDuplicatesAndNils(t *testing.T) {
	u := NewUniverse(LangC)
	if _, err := u.Add("x", NewPrim(PI32)); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Add("x", NewPrim(PI32)); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := u.Add("", NewPrim(PI32)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := u.Add("y", nil); err == nil {
		t.Error("nil type accepted")
	}
}

func TestResolveBindsTargets(t *testing.T) {
	u := buildFitterUniverse(t)
	fitter := u.Lookup("fitter").Type
	pts := fitter.Params[0].Type
	if pts.ElemType.Kind != KNamed || pts.ElemType.Target == nil {
		t.Fatal("pts element not resolved")
	}
	if pts.ElemType.Target.Name != "point" {
		t.Errorf("pts element resolves to %q", pts.ElemType.Target.Name)
	}
}

func TestResolveReportsMissing(t *testing.T) {
	u := NewUniverse(LangC)
	if _, err := u.Add("f", NewPointer(NewNamed("ghost"))); err != nil {
		t.Fatal(err)
	}
	err := u.Resolve()
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("Resolve error = %v, want mention of ghost", err)
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	u := buildJavaUniverse(t)
	count := 0
	Walk(u.Lookup("JavaIdeal").Type, func(n *Type) { count++ })
	// interface + param named + result named = 3 nodes.
	if count != 3 {
		t.Errorf("Walk visited %d nodes, want 3", count)
	}
}

func TestPathSelectRoot(t *testing.T) {
	u := buildFitterUniverse(t)
	p, err := ParsePath("fitter")
	if err != nil {
		t.Fatal(err)
	}
	sels, err := p.Select(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 1 || sels[0].Node.Kind != KFunc {
		t.Fatalf("selections = %+v", sels)
	}
}

func TestPathSelectParam(t *testing.T) {
	u := buildFitterUniverse(t)
	p, _ := ParsePath("fitter.start")
	sels, err := p.Select(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 1 || sels[0].Node.Kind != KPointer {
		t.Fatalf("selections = %+v", sels)
	}
	if sels[0].Where != "fitter.start" {
		t.Errorf("Where = %q", sels[0].Where)
	}
}

func TestPathSelectReturn(t *testing.T) {
	u := buildJavaUniverse(t)
	p, _ := ParsePath("JavaIdeal.fitter.return")
	sels, err := p.Select(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 1 || sels[0].Node.Name != "Line" {
		t.Fatalf("selections = %+v", sels)
	}
}

func TestPathSelectBareMethod(t *testing.T) {
	u := buildJavaUniverse(t)
	p, _ := ParsePath("JavaIdeal.fitter")
	sels, err := p.Select(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 1 || sels[0].Method == nil || sels[0].Method.Name != "fitter" {
		t.Fatalf("selections = %+v", sels)
	}
}

func TestPathSelectFieldWildcard(t *testing.T) {
	u := buildJavaUniverse(t)
	p, _ := ParsePath("Line.*")
	sels, err := p.Select(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 2 {
		t.Fatalf("Line.* matched %d nodes, want 2", len(sels))
	}
}

func TestPathSelectDeclWildcard(t *testing.T) {
	u := buildJavaUniverse(t)
	p, _ := ParsePath("*.start")
	sels, err := p.Select(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 1 || sels[0].Where != "Line.start" {
		t.Fatalf("selections = %+v", sels)
	}
}

func TestPathSelectElement(t *testing.T) {
	u := buildFitterUniverse(t)
	p, _ := ParsePath("fitter.pts.*")
	sels, err := p.Select(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 1 || sels[0].Node.Kind != KNamed || sels[0].Node.Name != "point" {
		t.Fatalf("selections = %+v", sels)
	}
}

func TestPathThroughNamed(t *testing.T) {
	// JavaIdeal.fitter.pts resolves through the PointVector class reference.
	u := buildJavaUniverse(t)
	p, _ := ParsePath("JavaIdeal.fitter.pts")
	sels, err := p.Select(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 1 || sels[0].Node.Name != "PointVector" {
		t.Fatalf("selections = %+v", sels)
	}
}

func TestPathLiteralMissIsError(t *testing.T) {
	u := buildFitterUniverse(t)
	p, _ := ParsePath("fitter.nosuch")
	if _, err := p.Select(u); err == nil {
		t.Error("literal path miss should error")
	}
}

func TestPathWildcardMissIsEmpty(t *testing.T) {
	u := buildFitterUniverse(t)
	p, _ := ParsePath("*.nosuch")
	sels, err := p.Select(u)
	if err != nil {
		t.Fatalf("wildcard miss should not error: %v", err)
	}
	if len(sels) != 0 {
		t.Errorf("got %d selections, want 0", len(sels))
	}
}

func TestParsePathErrors(t *testing.T) {
	for _, bad := range []string{"", "  ", "a..b", ".a"} {
		if _, err := ParsePath(bad); err == nil {
			t.Errorf("ParsePath(%q) accepted", bad)
		}
	}
}

func TestAnnMerge(t *testing.T) {
	tr := true
	base := Ann{NonNull: true, Mode: ModeIn}
	over := Ann{Mode: ModeOut, ByValue: &tr, FixedLen: 4}
	got := base.Merge(over)
	if !got.NonNull {
		t.Error("Merge dropped NonNull")
	}
	if got.Mode != ModeOut {
		t.Errorf("Mode = %s, want out", got.Mode)
	}
	if got.ByValue == nil || !*got.ByValue {
		t.Error("ByValue not merged")
	}
	if got.FixedLen != 4 {
		t.Errorf("FixedLen = %d", got.FixedLen)
	}
}

func TestAnnIsZero(t *testing.T) {
	if !(Ann{}).IsZero() {
		t.Error("zero Ann not IsZero")
	}
	if (Ann{NonNull: true}).IsZero() {
		t.Error("NonNull Ann reported zero")
	}
	f := false
	if (Ann{AsChar: &f}).IsZero() {
		t.Error("AsChar=false Ann reported zero")
	}
}

func TestTypeStrings(t *testing.T) {
	cases := []struct {
		ty   *Type
		want string
	}{
		{NewPrim(PF32), "float32"},
		{NewNamed("Point"), "Point"},
		{NewPointer(NewPrim(PI32)), "int32*"},
		{NewArray(NewPrim(PF32), 2), "float32[2]"},
		{NewArray(NewPrim(PF32), -1), "float32[]"},
		{NewSequence(NewPrim(PChar8)), "sequence<char8>"},
	}
	for _, c := range cases {
		if got := c.ty.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	fn := &Type{Kind: KFunc, Params: []Param{{Name: "n", Type: NewPrim(PI32)}}, Result: NewPrim(PF32)}
	if got := fn.String(); got != "func(int32 n) float32" {
		t.Errorf("func String() = %q", got)
	}
}

func TestMethodSignature(t *testing.T) {
	m := Method{Name: "fitter", Params: []Param{{Name: "pts", Type: NewNamed("PointVector")}}, Result: NewNamed("Line")}
	if got := m.Signature(); got != "fitter(PointVector) Line" {
		t.Errorf("Signature = %q", got)
	}
}

func TestLangAndKindStrings(t *testing.T) {
	if LangC.String() != "c" || LangJava.String() != "java" || LangIDL.String() != "idl" {
		t.Error("lang names wrong")
	}
	if KStruct.String() != "struct" || KFunc.String() != "func" {
		t.Error("kind names wrong")
	}
	if ModeInOut.String() != "inout" || ModeUnset.String() != "unset" {
		t.Error("mode names wrong")
	}
}
