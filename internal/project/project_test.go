package project

import (
	"strings"
	"testing"

	"repro/internal/cmem"
	"repro/internal/core"
)

const fitterC = `
typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);
`

const figure1Java = `
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }
`

const cScript = `
annotate fitter.start out nonnull
annotate fitter.end out nonnull
annotate fitter.pts length-from=count
`

const jScript = `
annotate Line.start nonnull noalias
annotate Line.end nonnull noalias
annotate PointVector collection-of=Point element-nonnull
annotate JavaIdeal.fitter.pts nonnull
annotate JavaIdeal.fitter.return nonnull
`

func annotatedSession(t *testing.T) *core.Session {
	t.Helper()
	s := core.NewSession()
	if err := s.LoadC("c", fitterC, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("java", figure1Java); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("c", cScript); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("java", jScript); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSaveLoadPreservesSession is the §3 project-file workflow: an
// annotated session saved and reloaded still compares equivalent, so the
// interactive annotation work is not lost.
func TestSaveLoadPreservesSession(t *testing.T) {
	s := annotatedSession(t)
	data, err := Save(s)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	v, err := restored.Compare("java", "JavaIdeal", "c", "fitter")
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation != core.RelEquivalent {
		t.Errorf("restored session relation = %s\n%s", v.Relation, v.Explain)
	}
	// The Mtype must be byte-identical in rendering.
	orig, _ := s.Mtype("c", "fitter")
	back, _ := restored.Mtype("c", "fitter")
	if orig.String() != back.String() {
		t.Errorf("Mtype drift:\n%s\n%s", orig, back)
	}
}

func TestSaveIsStable(t *testing.T) {
	s := annotatedSession(t)
	d1, err := Save(s)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Save(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Error("Save is not deterministic")
	}
}

func TestRoundTripTwice(t *testing.T) {
	s := annotatedSession(t)
	d1, err := Save(s)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Load(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Save(mid)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Error("save → load → save drifts")
	}
}

func TestAnnotationsSurviveInJSON(t *testing.T) {
	s := annotatedSession(t)
	data, err := Save(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"nonNull": true`, `"lengthFrom": "count"`, `"collectionOf": "Point"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("project file missing %s", want)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"format": 99}`,
		`{"format": 1, "universes": [{"name": "x", "lang": "klingon"}]}`,
		`{"format": 1, "universes": [{"name": "x", "lang": "c",
		  "decls": [{"name": "d", "type": {"kind": "bogus"}}]}]}`,
		`{"format": 1, "universes": [{"name": "x", "lang": "c",
		  "decls": [{"name": "d", "type": {"kind": "named", "name": "ghost"}}]}]}`,
	}
	for _, c := range cases {
		if _, err := Load([]byte(c)); err == nil {
			t.Errorf("Load(%q) succeeded", c)
		}
	}
}

func TestIDLSurvives(t *testing.T) {
	s := core.NewSession()
	err := s.LoadIDL("idl", `
		interface Chan {
			oneway void send(in long payload);
			long ask(in string q, out double conf);
		};
		union U switch (long) { case 1: long a; default: float b; };
		enum E { x, y, z };
	`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Save(s)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := s.Mtype("idl", "Chan")
	if err != nil {
		t.Fatal(err)
	}
	back, err := restored.Mtype("idl", "Chan")
	if err != nil {
		t.Fatal(err)
	}
	if orig.String() != back.String() {
		t.Errorf("IDL Mtype drift:\n%s\n%s", orig, back)
	}
}

// TestGoSurvives: a Go universe — embedded fields, embedded interfaces,
// tag annotations, receiver methods — round-trips through the project
// file with an identical Mtype.
func TestGoSurvives(t *testing.T) {
	s := core.NewSession()
	err := s.LoadGo("go", `package p

type Meta struct {
	Qty int32
}

type Item struct {
	Meta
	Code uint16 `+"`mbird:\"char\"`"+`
}

type Closer interface {
	Close() bool
}

type Store interface {
	Closer
	Get(n int32) Item
}
`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Save(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"embedded": true`, `"embeds"`, `"lang": "go"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("serialized project missing %s", want)
		}
	}
	restored, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range []string{"Item", "Store"} {
		orig, err := s.Mtype("go", decl)
		if err != nil {
			t.Fatal(err)
		}
		back, err := restored.Mtype("go", decl)
		if err != nil {
			t.Fatal(err)
		}
		if orig.String() != back.String() {
			t.Errorf("%s Mtype drift:\n%s\n%s", decl, orig, back)
		}
	}
}
