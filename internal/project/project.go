// Package project saves and restores tool sessions: "the programmer can
// save the current state of the parsed and annotated declarations in a
// project file for later use" (§3). The file is JSON holding every loaded
// universe with all annotations; loading re-resolves name references.
package project

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/stype"
)

// File is the serialized session.
type File struct {
	// Format identifies the file format version.
	Format    int        `json:"format"`
	Universes []Universe `json:"universes"`
}

// Universe is one serialized declaration set.
type Universe struct {
	Name  string `json:"name"`
	Lang  string `json:"lang"`
	Decls []Decl `json:"decls"`
}

// Decl is one serialized declaration.
type Decl struct {
	Name string `json:"name"`
	Type *Type  `json:"type"`
}

// Type mirrors stype.Type for serialization; Named targets are stored by
// name only and re-resolved on load.
type Type struct {
	Kind      string    `json:"kind"`
	Ann       stype.Ann `json:"ann,omitempty"`
	Prim      string    `json:"prim,omitempty"`
	Name      string    `json:"name,omitempty"`
	Fields    []Field   `json:"fields,omitempty"`
	Methods   []Method  `json:"methods,omitempty"`
	Super     string    `json:"super,omitempty"`
	Embeds    []string  `json:"embeds,omitempty"`
	EnumNames []string  `json:"enumNames,omitempty"`
	Elem      *Type     `json:"elem,omitempty"`
	Len       int       `json:"len,omitempty"`
	Params    []Param   `json:"params,omitempty"`
	Result    *Type     `json:"result,omitempty"`
}

// Field mirrors stype.Field.
type Field struct {
	Name     string `json:"name"`
	Type     *Type  `json:"type"`
	Embedded bool   `json:"embedded,omitempty"`
}

// Param mirrors stype.Param.
type Param struct {
	Name string `json:"name"`
	Type *Type  `json:"type"`
}

// Method mirrors stype.Method.
type Method struct {
	Name   string    `json:"name"`
	Params []Param   `json:"params,omitempty"`
	Result *Type     `json:"result,omitempty"`
	Ann    stype.Ann `json:"ann,omitempty"`
	Oneway bool      `json:"oneway,omitempty"`
}

var kindNames = map[stype.TKind]string{
	stype.KPrim: "prim", stype.KNamed: "named", stype.KStruct: "struct",
	stype.KUnion: "union", stype.KClass: "class", stype.KInterface: "interface",
	stype.KEnum: "enum", stype.KPointer: "pointer", stype.KArray: "array",
	stype.KSequence: "sequence", stype.KFunc: "func",
}

var kindValues = invertKinds()

func invertKinds() map[string]stype.TKind {
	out := make(map[string]stype.TKind, len(kindNames))
	for k, v := range kindNames {
		out[v] = k
	}
	return out
}

var primNames = map[stype.Prim]string{
	stype.PVoid: "void", stype.PBool: "bool",
	stype.PI8: "int8", stype.PU8: "uint8", stype.PI16: "int16", stype.PU16: "uint16",
	stype.PI32: "int32", stype.PU32: "uint32", stype.PI64: "int64", stype.PU64: "uint64",
	stype.PF32: "float32", stype.PF64: "float64",
	stype.PChar8: "char8", stype.PChar16: "char16",
}

var primValues = invertPrims()

func invertPrims() map[string]stype.Prim {
	out := make(map[string]stype.Prim, len(primNames))
	for k, v := range primNames {
		out[v] = k
	}
	return out
}

var langNames = map[stype.Lang]string{
	stype.LangC: "c", stype.LangJava: "java", stype.LangIDL: "idl",
	stype.LangGo: "go",
}

var langValues = map[string]stype.Lang{
	"c": stype.LangC, "java": stype.LangJava, "idl": stype.LangIDL,
	"go": stype.LangGo,
}

// Save serializes a session to JSON.
func Save(s *core.Session) ([]byte, error) {
	f := File{Format: 1}
	for _, name := range s.Universes() {
		u := s.Universe(name)
		fu := Universe{Name: name, Lang: langNames[u.Lang()]}
		for _, d := range u.Decls() {
			fu.Decls = append(fu.Decls, Decl{Name: d.Name, Type: encodeType(d.Type)})
		}
		f.Universes = append(f.Universes, fu)
	}
	return json.MarshalIndent(f, "", "  ")
}

func encodeType(t *stype.Type) *Type {
	if t == nil {
		return nil
	}
	out := &Type{
		Kind:      kindNames[t.Kind],
		Ann:       t.Ann,
		Name:      t.Name,
		Super:     t.Super,
		Embeds:    t.Embeds,
		EnumNames: t.EnumNames,
		Elem:      encodeType(t.ElemType),
		Len:       t.Len,
		Result:    encodeType(t.Result),
	}
	if t.Kind == stype.KPrim {
		out.Prim = primNames[t.Prim]
	}
	for _, f := range t.Fields {
		out.Fields = append(out.Fields, Field{Name: f.Name, Type: encodeType(f.Type), Embedded: f.Embedded})
	}
	for _, p := range t.Params {
		out.Params = append(out.Params, Param{Name: p.Name, Type: encodeType(p.Type)})
	}
	for _, m := range t.Methods {
		fm := Method{Name: m.Name, Result: encodeType(m.Result), Ann: m.Ann, Oneway: m.Oneway}
		for _, p := range m.Params {
			fm.Params = append(fm.Params, Param{Name: p.Name, Type: encodeType(p.Type)})
		}
		out.Methods = append(out.Methods, fm)
	}
	return out
}

// Load reconstructs a session from JSON.
func Load(data []byte) (*core.Session, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("project: %w", err)
	}
	if f.Format != 1 {
		return nil, fmt.Errorf("project: unsupported format %d", f.Format)
	}
	s := core.NewSession()
	for _, fu := range f.Universes {
		lang, ok := langValues[fu.Lang]
		if !ok {
			return nil, fmt.Errorf("project: unknown language %q", fu.Lang)
		}
		u := stype.NewUniverse(lang)
		for _, fd := range fu.Decls {
			ty, err := decodeType(fd.Type)
			if err != nil {
				return nil, fmt.Errorf("project: %s.%s: %w", fu.Name, fd.Name, err)
			}
			if _, err := u.Add(fd.Name, ty); err != nil {
				return nil, fmt.Errorf("project: %w", err)
			}
		}
		if err := u.Resolve(); err != nil {
			return nil, fmt.Errorf("project: universe %s: %w", fu.Name, err)
		}
		if err := s.AddUniverse(fu.Name, u); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func decodeType(t *Type) (*stype.Type, error) {
	if t == nil {
		return nil, nil
	}
	kind, ok := kindValues[t.Kind]
	if !ok {
		return nil, fmt.Errorf("unknown kind %q", t.Kind)
	}
	out := &stype.Type{
		Kind:      kind,
		Ann:       t.Ann,
		Name:      t.Name,
		Super:     t.Super,
		Embeds:    t.Embeds,
		EnumNames: t.EnumNames,
		Len:       t.Len,
	}
	if kind == stype.KPrim {
		prim, ok := primValues[t.Prim]
		if !ok {
			return nil, fmt.Errorf("unknown primitive %q", t.Prim)
		}
		out.Prim = prim
	}
	var err error
	if out.ElemType, err = decodeType(t.Elem); err != nil {
		return nil, err
	}
	if out.Result, err = decodeType(t.Result); err != nil {
		return nil, err
	}
	for _, f := range t.Fields {
		ft, err := decodeType(f.Type)
		if err != nil {
			return nil, err
		}
		out.Fields = append(out.Fields, stype.Field{Name: f.Name, Type: ft, Embedded: f.Embedded})
	}
	for _, p := range t.Params {
		pt, err := decodeType(p.Type)
		if err != nil {
			return nil, err
		}
		out.Params = append(out.Params, stype.Param{Name: p.Name, Type: pt})
	}
	for _, m := range t.Methods {
		res, err := decodeType(m.Result)
		if err != nil {
			return nil, err
		}
		sm := stype.Method{Name: m.Name, Result: res, Ann: m.Ann, Oneway: m.Oneway}
		for _, p := range m.Params {
			pt, err := decodeType(p.Type)
			if err != nil {
				return nil, err
			}
			sm.Params = append(sm.Params, stype.Param{Name: p.Name, Type: pt})
		}
		out.Methods = append(out.Methods, sm)
	}
	return out, nil
}
