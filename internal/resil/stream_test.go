package resil

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/orb"
)

// streamEchoOrb starts an orb server whose "echo" object echoes stream
// bodies back chunk-at-a-time.
func streamEchoOrb(t *testing.T) *orb.Server {
	t.Helper()
	s := echoOrb(t)
	s.RegisterStream("echo", func(ctx context.Context, op uint32, in *orb.StreamReader, out *orb.StreamWriter) error {
		buf := make([]byte, 32<<10)
		for {
			n, err := in.Read(buf)
			if n > 0 {
				if _, werr := out.Write(buf[:n]); werr != nil {
					return werr
				}
			}
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
		}
	})
	return s
}

// streamOnce runs one small echo stream end to end and returns the
// reply body. Bodies stay well under a credit window, so sequential
// write-then-read is safe here.
func streamOnce(t *testing.T, c *Client, body []byte) []byte {
	t.Helper()
	sc, done, err := c.OpenStream(context.Background(), "echo", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Write(body); err != nil {
		t.Fatal(err)
	}
	if err := sc.CloseSend(); err != nil {
		t.Fatal(err)
	}
	reply, err := io.ReadAll(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	done(nil)
	return reply
}

func TestOpenStreamPooledEchoAndReuse(t *testing.T) {
	s := streamEchoOrb(t)
	c := newClient(t, s.Addr(), Options{PoolSize: 2})
	for i := 0; i < 5; i++ {
		body := bytes.Repeat([]byte{byte(i + 1)}, 1024)
		if got := streamOnce(t, c, body); !bytes.Equal(got, body) {
			t.Fatalf("round %d: reply mismatch (%d bytes)", i, len(got))
		}
	}
	if st := c.Stats(); st.Dials != 1 || st.Conns != 1 {
		t.Errorf("stats = %+v, want 1 dial / 1 conn after 5 sequential streams", st)
	}
	// The same pooled connection still serves buffered calls between
	// streams.
	if reply, err := c.Invoke("echo", 0, []byte("hi")); err != nil || !bytes.Equal(reply, []byte("hi")) {
		t.Fatalf("buffered invoke after streams: %q, %v", reply, err)
	}
	if st := c.Stats(); st.Dials != 1 {
		t.Errorf("dials = %d after mixing streams and calls", st.Dials)
	}
}

func TestOpenStreamRetriesConnFailure(t *testing.T) {
	c := newClient(t, "127.0.0.1:1", Options{
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		CallTimeout: 2 * time.Second,
	})
	_, _, err := c.OpenStream(context.Background(), "echo", 1)
	if err == nil {
		t.Fatal("open against dead address succeeded")
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Errorf("retries = 0; the open itself should retry like a buffered call")
	}
}

func TestOpenStreamNeverHedges(t *testing.T) {
	s := streamEchoOrb(t)
	c := newClient(t, s.Addr(), Options{Hedge: true, HedgeAfter: time.Nanosecond})
	for i := 0; i < 3; i++ {
		streamOnce(t, c, []byte("payload"))
	}
	if st := c.Stats(); st.Hedges != 0 {
		t.Errorf("hedges = %d; streams are stateful and must never hedge", st.Hedges)
	}
}

func TestOpenStreamDoneDiscardsCondemnedConn(t *testing.T) {
	s := streamEchoOrb(t)
	c := newClient(t, s.Addr(), Options{PoolSize: 1})
	sc, done, err := c.OpenStream(context.Background(), "echo", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Write([]byte("first chunk")); err != nil {
		t.Fatal(err)
	}
	// Kill the server mid-stream: the failure is terminal (no retry) and
	// condemns the pooled connection when reported through done.
	_ = s.Close()
	var termErr error
	deadline := time.Now().Add(5 * time.Second)
	for termErr == nil && time.Now().Before(deadline) {
		if _, err := sc.Write([]byte("x")); err != nil {
			termErr = err
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if termErr == nil {
		t.Fatal("writes kept succeeding after server death")
	}
	_ = sc.Close()
	done(termErr)
	if st := c.Stats(); st.Conns != 0 {
		t.Errorf("conns = %d, want 0 after done(connErr) condemned the conn", st.Conns)
	}
	if st := c.Stats(); st.Retries != 0 {
		t.Errorf("retries = %d; mid-stream failures must not retry", st.Retries)
	}
}

func TestOpenStreamDoneKeepsConnOnRemoteError(t *testing.T) {
	s := streamEchoOrb(t)
	s.RegisterStream("bad", func(ctx context.Context, op uint32, in *orb.StreamReader, out *orb.StreamWriter) error {
		return errors.New("handler kaboom")
	})
	c := newClient(t, s.Addr(), Options{PoolSize: 1})
	sc, done, err := c.OpenStream(context.Background(), "bad", 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = sc.CloseSend()
	_, rerr := io.ReadAll(sc)
	var re *orb.RemoteError
	if !errors.As(rerr, &re) {
		t.Fatalf("read error = %v, want RemoteError", rerr)
	}
	_ = sc.Close()
	done(rerr)
	// A remote handler error says nothing about connection health.
	if st := c.Stats(); st.Conns != 1 {
		t.Errorf("conns = %d, want 1 kept after a remote error", st.Conns)
	}
	if got := streamOnce(t, c, []byte("still works")); !bytes.Equal(got, []byte("still works")) {
		t.Fatalf("echo after remote error = %q", got)
	}
	if st := c.Stats(); st.Dials != 1 {
		t.Errorf("dials = %d, want 1 (conn survived the remote error)", st.Dials)
	}
}
