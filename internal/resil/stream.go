package resil

// Streaming calls through the pool. A stream is stateful — chunks
// already forwarded cannot be replayed — so the resilience envelope is
// deliberately thinner than InvokeContext's: hedging never applies, and
// retries cover only the open itself (acquiring a connection and writing
// the open frame), i.e. the window before any payload is committed. Once
// the StreamCall is handed to the caller, failures are final and surface
// as typed mid-stream errors.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/orb"
)

// OpenStream opens a streaming call on a pooled connection. The open is
// retried with backoff on connection-level failure exactly like a
// buffered call, but once the stream is returned no retry or hedge ever
// fires — the caller owns delivery from the first chunk on.
//
// done must be called exactly once when the caller is finished with the
// stream (after Close), with the stream's terminal error (nil on
// success): it returns the connection to the pool, or discards it when
// the error condemns it.
func (c *Client) OpenStream(ctx context.Context, key string, op uint32) (sc *orb.StreamCall, done func(error), err error) {
	if c.opts.CallTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			ctx = &deadlineCtx{Context: ctx, dl: time.Now().Add(c.opts.CallTimeout)}
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !c.opts.RetryBudget.Withdraw() {
				c.budgetExhausted.Add(1)
				return nil, nil, fmt.Errorf("%w: after %d attempts to %s: %w", ErrRetryBudget, attempt, c.addr, lastErr)
			}
			c.retries.Add(1)
			if err := c.backoff(ctx, attempt); err != nil {
				lastErr = err
				break
			}
		}
		pc, err := c.acquire(ctx, nil)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, nil, err
			}
			lastErr = err
			continue
		}
		sc, err := pc.c.OpenStream(ctx, key, op)
		if err != nil {
			c.release(pc)
			if discardable(err) {
				c.discard(pc)
			}
			lastErr = err
			if !retryable(err) {
				return nil, nil, err
			}
			continue
		}
		c.opts.RetryBudget.Deposit()
		done := func(callErr error) {
			c.release(pc)
			if callErr != nil && discardable(callErr) {
				c.discard(pc)
			}
		}
		return sc, done, nil
	}
	return nil, nil, fmt.Errorf("resil: %d attempts to %s failed: %w", c.opts.MaxAttempts, c.addr, lastErr)
}
