// Package resil is the resilient client transport over the orb runtime:
// the layer that makes network-enabled stubs dependable when the network
// is not. A resil.Client manages a bounded pool of orb connections to
// one address and wraps every call with
//
//   - per-call deadlines: a default CallTimeout is applied when the
//     caller's context carries none, enforced by orb's context-aware
//     invoke (pending-call cancellation plus write deadlines);
//   - health-checked pooling: connections are dialed lazily with a dial
//     timeout, reused across calls (orb clients pipeline), discarded on
//     connection-level failure, and reaped after sitting idle;
//   - automatic retry: connection-level failures (ErrConnClosed, dial
//     errors) back off exponentially with jitter and retry on a fresh
//     or different connection. This is safe against the broker because
//     its operations are idempotent — verdicts and converters are
//     content-addressed by fingerprint, loads are keyed by universe
//     name; remote handler errors are never retried;
//   - optional hedging: when a call outlives the recent latency
//     percentile, a second copy races it on another connection and the
//     first success wins — masking a single slow or silently dead
//     connection without waiting for the full deadline.
//
// The dependability failure modes themselves (latency, resets,
// black-holes, truncation) are asserted against this client by the
// chaos test matrix (internal/chaos).
package resil

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/orb"
)

// ErrClosed is returned by calls on a closed Client.
var ErrClosed = errors.New("resil: client closed")

// Options configures a Client. Zero values select the defaults.
type Options struct {
	// PoolSize bounds the number of live connections (default 4).
	PoolSize int
	// IdleTimeout reaps connections with no in-flight calls that have
	// been unused this long (default 60s).
	IdleTimeout time.Duration
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline applied when the caller's
	// context has none (default 15s; negative disables).
	CallTimeout time.Duration
	// MaxAttempts bounds tries per call, the first included (default 3).
	MaxAttempts int
	// BackoffBase is the first retry delay; it doubles per attempt with
	// ±50% jitter (default 25ms).
	BackoffBase time.Duration
	// BackoffMax caps the retry delay (default 1s).
	BackoffMax time.Duration
	// Hedge enables request hedging: a duplicate attempt is raced on
	// another connection once a call outlives the hedge delay. Only
	// enable against idempotent services.
	Hedge bool
	// HedgeAfter is a fixed hedge delay. When 0, the delay tracks the
	// HedgePercentile of recently observed call latencies.
	HedgeAfter time.Duration
	// HedgePercentile selects the latency percentile used as the hedge
	// delay when HedgeAfter is 0 (default 0.95).
	HedgePercentile float64
	// RetryBudget governs retries and hedges as a fraction of successes
	// (see RetryBudget). Nil creates a private budget with the defaults;
	// pass one instance to several Clients to make the cap shared (the
	// cluster client does this across its member pools).
	RetryBudget *RetryBudget
	// OrbOptions adjusts frame limits on pooled connections.
	OrbOptions []orb.Option
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 60 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 15 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.HedgePercentile <= 0 || o.HedgePercentile >= 1 {
		o.HedgePercentile = 0.95
	}
	if o.RetryBudget == nil {
		o.RetryBudget = NewRetryBudget(0, 0)
	}
	return o
}

// Stats is a snapshot of a Client's counters.
type Stats struct {
	// Conns is the number of live pooled connections.
	Conns int
	// Dials counts connections established over the Client's lifetime.
	Dials int64
	// Discards counts connections dropped for failure or idleness.
	Discards int64
	// Retries counts retry attempts (not first attempts).
	Retries int64
	// Overloads counts attempts shed by the server with orb.ErrOverloaded
	// (each is retried with backoff until attempts run out).
	Overloads int64
	// Hedges counts hedge attempts launched; HedgeWins counts calls
	// completed by the hedge rather than the primary.
	Hedges, HedgeWins int64
	// BudgetExhausted counts retries and hedges this Client wanted but
	// the retry budget refused.
	BudgetExhausted int64
}

// pconn is one pooled orb connection.
type pconn struct {
	c        *orb.Client
	inflight atomic.Int64
	lastUsed atomic.Int64 // unix nanos
}

// Client is a resilient, pooled client for one orb server address, safe
// for concurrent use.
type Client struct {
	addr string
	opts Options

	mu       sync.Mutex
	conns    []*pconn
	dialing  int
	closed   bool
	draining bool

	stop chan struct{}
	done chan struct{}

	lat latencyWindow

	dials           atomic.Int64
	discards        atomic.Int64
	retries         atomic.Int64
	overloads       atomic.Int64
	hedges          atomic.Int64
	hedgeWins       atomic.Int64
	budgetExhausted atomic.Int64
}

// New returns a Client for addr. Connections are dialed lazily on first
// use; dial failures surface from the calls that need them.
func New(addr string, opts Options) *Client {
	c := &Client{
		addr: addr,
		opts: opts.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.reapLoop()
	return c
}

// Close stops the idle reaper and tears down every pooled connection;
// in-flight calls fail with ErrConnClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	close(c.stop)
	<-c.done
	for _, pc := range conns {
		_ = pc.c.Close()
	}
	return nil
}

// Drain retires the Client gracefully: new calls are refused with
// ErrClosed immediately, while connections with calls still in flight
// are left alone until those calls finish. Once every pooled connection
// is idle — or ctx expires, whichever comes first — the Client closes
// fully. This is the clean path for removing an endpoint from a
// rotation (a cluster member leaving the hash ring): the caller stops
// routing to the endpoint, then drains its pool instead of letting
// in-flight calls die with ErrConnClosed on an abrupt Close.
func (c *Client) Drain(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.draining = true
	c.mu.Unlock()

	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		c.mu.Lock()
		idle := true
		for _, pc := range c.conns {
			if pc.inflight.Load() > 0 {
				idle = false
				break
			}
		}
		closed := c.closed
		c.mu.Unlock()
		if idle || closed {
			return c.Close()
		}
		select {
		case <-ctx.Done():
			_ = c.Close()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Stats returns a snapshot of the Client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	n := len(c.conns)
	c.mu.Unlock()
	return Stats{
		Conns:           n,
		Dials:           c.dials.Load(),
		Discards:        c.discards.Load(),
		Retries:         c.retries.Load(),
		Overloads:       c.overloads.Load(),
		Hedges:          c.hedges.Load(),
		HedgeWins:       c.hedgeWins.Load(),
		BudgetExhausted: c.budgetExhausted.Load(),
	}
}

// reapLoop closes connections that have sat idle past IdleTimeout.
func (c *Client) reapLoop() {
	defer close(c.done)
	interval := c.opts.IdleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-c.opts.IdleTimeout).UnixNano()
		var idle []*pconn
		c.mu.Lock()
		live := c.conns[:0]
		for _, pc := range c.conns {
			if pc.inflight.Load() == 0 && pc.lastUsed.Load() < cutoff {
				idle = append(idle, pc)
				continue
			}
			live = append(live, pc)
		}
		c.conns = live
		c.mu.Unlock()
		for _, pc := range idle {
			c.discards.Add(1)
			_ = pc.c.Close()
		}
	}
}

// acquire returns a healthy pooled connection (dialing a new one when
// the pool has room and no idle connection is available), marking it
// in-flight. exclude steers a hedge attempt off the primary's
// connection when the pool allows.
func (c *Client) acquire(ctx context.Context, exclude *pconn) (*pconn, error) {
	c.mu.Lock()
	if c.closed || c.draining {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	// Prune connections whose read loop has died.
	var dead []*pconn
	live := c.conns[:0]
	for _, pc := range c.conns {
		if pc.c.Err() != nil {
			dead = append(dead, pc)
			continue
		}
		live = append(live, pc)
	}
	c.conns = live
	var best *pconn
	for _, pc := range c.conns {
		if pc == exclude {
			continue
		}
		if best == nil || pc.inflight.Load() < best.inflight.Load() {
			best = pc
		}
	}
	canDial := len(c.conns)+c.dialing < c.opts.PoolSize
	useBest := best != nil && (!canDial || best.inflight.Load() == 0)
	if useBest {
		best.inflight.Add(1)
	} else if canDial {
		c.dialing++
	}
	c.mu.Unlock()
	for _, pc := range dead {
		c.discards.Add(1)
		_ = pc.c.Close()
	}
	if useBest {
		return best, nil
	}
	if !canDial {
		// Pool exhausted by exclusion (PoolSize 1 hedge): fall back to
		// the excluded connection rather than failing.
		if exclude != nil {
			exclude.inflight.Add(1)
			return exclude, nil
		}
		return nil, fmt.Errorf("resil: no usable connection to %s", c.addr)
	}

	dctx, cancel := context.WithTimeout(ctx, c.opts.DialTimeout)
	oc, err := orb.DialContext(dctx, c.addr, c.opts.OrbOptions...)
	if err == nil {
		// Let version negotiation settle (the server's hello is sent on
		// accept, so against a live v2 server this is one read away;
		// against a v1 server the bound expires and the connection stays
		// v1). Without this the first calls on a fresh connection would
		// race the hello and ship without budgets.
		vctx, vcancel := context.WithTimeout(dctx, 100*time.Millisecond)
		oc.AwaitVersion(vctx)
		vcancel()
	}
	cancel()
	c.mu.Lock()
	c.dialing--
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if c.closed || c.draining {
		c.mu.Unlock()
		_ = oc.Close()
		return nil, ErrClosed
	}
	c.dials.Add(1)
	pc := &pconn{c: oc}
	pc.lastUsed.Store(time.Now().UnixNano())
	pc.inflight.Add(1)
	c.conns = append(c.conns, pc)
	c.mu.Unlock()
	return pc, nil
}

// release returns a connection to the pool after a call.
func (c *Client) release(pc *pconn) {
	pc.lastUsed.Store(time.Now().UnixNano())
	pc.inflight.Add(-1)
}

// discard removes a connection from the pool and closes it.
func (c *Client) discard(pc *pconn) {
	c.mu.Lock()
	for i, q := range c.conns {
		if q == pc {
			c.conns = append(c.conns[:i], c.conns[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	c.discards.Add(1)
	_ = pc.c.Close()
}

// retryable reports whether a failed call may be retried: connection-
// level failures, and overload sheds (the server declined before
// dispatch, so the request was never served and backoff-then-retry is
// both safe and the intended client reaction). Remote handler errors
// and server panics mean the request reached the handler; frame-limit
// errors are deterministic; deadline and cancellation mean the call's
// own budget is spent.
func retryable(err error) bool {
	if errors.Is(err, orb.ErrOverloaded) {
		return true
	}
	var re *orb.RemoteError
	switch {
	case errors.As(err, &re),
		errors.Is(err, orb.ErrServerPanic),
		errors.Is(err, orb.ErrFrameTooLarge),
		errors.Is(err, orb.ErrDeadline),
		errors.Is(err, orb.ErrCanceled),
		errors.Is(err, orb.ErrExpired),
		errors.Is(err, ErrRetryBudget),
		errors.Is(err, ErrClosed):
		return false
	}
	return true
}

// discardable reports whether a call error condemns its connection.
// Remote handler errors, local frame-limit rejections, overload sheds,
// and recovered server panics all arrived as well-formed replies over a
// healthy connection, so the connection is kept. Everything else does
// condemn it: even a deadline usually means the connection is stalled,
// and against a pipelining peer a fresh dial is cheaper than optimism.
func discardable(err error) bool {
	var re *orb.RemoteError
	switch {
	case errors.As(err, &re),
		errors.Is(err, orb.ErrFrameTooLarge),
		errors.Is(err, orb.ErrOverloaded),
		errors.Is(err, orb.ErrExpired),
		errors.Is(err, orb.ErrServerPanic):
		return false
	}
	return true
}

// deadlineCtx overlays a per-call deadline on a parent context without
// a timer goroutine or Done channel of its own. Cancellation still
// flows from the parent; the deadline itself is enforced where the
// call actually waits (orb's client arms a pooled timer from
// ctx.Deadline()), so wrapping every call stays allocation-free beyond
// this one small struct. Err reports expiry for callers that poll.
type deadlineCtx struct {
	context.Context
	dl time.Time
}

func (d *deadlineCtx) Deadline() (time.Time, bool) { return d.dl, true }

func (d *deadlineCtx) Err() error {
	if err := d.Context.Err(); err != nil {
		return err
	}
	if !time.Now().Before(d.dl) {
		return context.DeadlineExceeded
	}
	return nil
}

// Invoke is InvokeContext with the background context (so the default
// CallTimeout still applies).
func (c *Client) Invoke(key string, op uint32, body []byte) ([]byte, error) {
	return c.InvokeContext(context.Background(), key, op, body)
}

// InvokeContext performs a resilient call: deadline-bounded, retried
// with backoff on connection-level failure, hedged when enabled. The
// error from the final attempt is returned, wrapped with the attempt
// count when retries were exhausted.
func (c *Client) InvokeContext(ctx context.Context, key string, op uint32, body []byte) ([]byte, error) {
	if c.opts.CallTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			ctx = &deadlineCtx{Context: ctx, dl: time.Now().Add(c.opts.CallTimeout)}
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Every retry spends a shared budget token; when the budget is
			// dry the backend is failing broadly and piling on attempts
			// would amplify the outage, so fail fast instead.
			if !c.opts.RetryBudget.Withdraw() {
				c.budgetExhausted.Add(1)
				return nil, fmt.Errorf("%w: after %d attempts to %s: %w", ErrRetryBudget, attempt, c.addr, lastErr)
			}
			c.retries.Add(1)
			if err := c.backoff(ctx, attempt); err != nil {
				break
			}
		}
		var reply []byte
		var err error
		if c.opts.Hedge {
			reply, err = c.hedged(ctx, key, op, body)
		} else {
			reply, err = c.attempt(ctx, key, op, body, nil)
		}
		if err == nil {
			c.opts.RetryBudget.Deposit()
			return reply, nil
		}
		if errors.Is(err, orb.ErrOverloaded) {
			c.overloads.Add(1)
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("resil: %d attempts to %s failed: %w", c.opts.MaxAttempts, c.addr, lastErr)
}

// attempt runs one call on one pooled connection.
func (c *Client) attempt(ctx context.Context, key string, op uint32, body []byte, exclude *pconn) ([]byte, error) {
	pc, err := c.acquire(ctx, exclude)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	reply, err := pc.c.InvokeContext(ctx, key, op, body)
	c.release(pc)
	if err == nil {
		c.lat.record(time.Since(start))
	} else if discardable(err) {
		c.discard(pc)
	}
	return reply, err
}

// hedged races a duplicate attempt against the primary once the hedge
// delay elapses; the first success wins and the loser is canceled.
func (c *Client) hedged(ctx context.Context, key string, op uint32, body []byte) ([]byte, error) {
	// The losing attempt's goroutine can outlive this call, and callers
	// under orb body pooling may recycle body the moment we return —
	// race the duplicates over a private copy.
	if len(body) > 0 {
		body = append([]byte(nil), body...)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		reply []byte
		err   error
		hedge bool
	}
	ch := make(chan res, 2)
	run := func(hedge bool, exclude *pconn) *pconn {
		pc, err := c.acquire(hctx, exclude)
		if err != nil {
			ch <- res{err: err, hedge: hedge}
			return nil
		}
		go func() {
			start := time.Now()
			reply, err := pc.c.InvokeContext(hctx, key, op, body)
			c.release(pc)
			if err == nil {
				c.lat.record(time.Since(start))
			} else if discardable(err) && hctx.Err() == nil {
				// Don't condemn the loser's connection just because the
				// winner canceled it.
				c.discard(pc)
			}
			ch <- res{reply: reply, err: err, hedge: hedge}
		}()
		return pc
	}
	primary := run(false, nil)
	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	launched := 1
	var lastErr error
	for got := 0; got < launched; {
		select {
		case r := <-ch:
			got++
			if r.err == nil {
				if r.hedge {
					c.hedgeWins.Add(1)
				}
				return r.reply, nil
			}
			if lastErr == nil || !errors.Is(r.err, orb.ErrCanceled) {
				lastErr = r.err
			}
		case <-timer.C:
			if launched == 1 {
				// A hedge is a speculative retry; it spends the same budget
				// token a retry would. Refused hedges just let the primary
				// run to its own deadline.
				if !c.opts.RetryBudget.Withdraw() {
					c.budgetExhausted.Add(1)
					continue
				}
				c.hedges.Add(1)
				run(true, primary)
				launched = 2
			}
		}
	}
	return nil, lastErr
}

// hedgeDelay is the time to let the primary run before hedging.
func (c *Client) hedgeDelay() time.Duration {
	if c.opts.HedgeAfter > 0 {
		return c.opts.HedgeAfter
	}
	if d, ok := c.lat.percentile(c.opts.HedgePercentile); ok {
		return d
	}
	// No samples yet: a conservative cold-start delay.
	return 10 * time.Millisecond
}

// backoff sleeps the exponential-with-jitter retry delay, aborting if
// the call's context expires first.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.opts.BackoffBase << (attempt - 1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	// Jitter to ±50% so synchronized clients don't retry in lockstep.
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	// Deadline-only contexts (the CallTimeout overlay) have no Done
	// channel to interrupt the sleep, so check explicitly: when the
	// remaining budget can't survive the backoff, fail now rather than
	// sleeping into certain expiry.
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Ping round-trips a request for the empty object key: every orb server
// answers it (with a "no object" remote error), so a RemoteError proves
// the connection and server are live.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.InvokeContext(ctx, "", 0, nil)
	var re *orb.RemoteError
	if errors.As(err, &re) {
		return nil
	}
	return err
}

// latencyWindow tracks recent successful call latencies for the
// percentile-based hedge delay.
type latencyWindow struct {
	mu      sync.Mutex
	samples [128]time.Duration
	n       int // total recorded; ring index is n % len
}

func (w *latencyWindow) record(d time.Duration) {
	w.mu.Lock()
	w.samples[w.n%len(w.samples)] = d
	w.n++
	w.mu.Unlock()
}

// percentile returns the p-quantile of the window, or false with fewer
// than 8 samples (too noisy to hedge on).
func (w *latencyWindow) percentile(p float64) (time.Duration, bool) {
	w.mu.Lock()
	n := w.n
	if n > len(w.samples) {
		n = len(w.samples)
	}
	if n < 8 {
		w.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, w.samples[:n])
	w.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(p * float64(n-1))
	return buf[idx], true
}
