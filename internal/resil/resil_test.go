package resil

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/orb"
)

// echoOrb starts an orb server with an "echo" object.
func echoOrb(t *testing.T) *orb.Server {
	t.Helper()
	s, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	s.Register("echo", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return body, nil
	})
	return s
}

func newClient(t *testing.T, addr string, opts Options) *Client {
	t.Helper()
	c := New(addr, opts)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestPooledConnectionReuse(t *testing.T) {
	s := echoOrb(t)
	c := newClient(t, s.Addr(), Options{PoolSize: 2})
	for i := 0; i < 20; i++ {
		reply, err := c.Invoke("echo", 0, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reply, []byte{byte(i)}) {
			t.Fatalf("reply = %v", reply)
		}
	}
	if st := c.Stats(); st.Dials != 1 || st.Conns != 1 {
		t.Errorf("stats = %+v, want 1 dial / 1 conn after 20 sequential calls", st)
	}
}

func TestIdleReap(t *testing.T) {
	s := echoOrb(t)
	c := newClient(t, s.Addr(), Options{IdleTimeout: 40 * time.Millisecond})
	if _, err := c.Invoke("echo", 0, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Conns != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle connection not reaped: %+v", c.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The pool re-dials transparently after the reap.
	if _, err := c.Invoke("echo", 0, nil); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Dials != 2 {
		t.Errorf("dials = %d, want 2 (one before and one after the reap)", st.Dials)
	}
}

func TestRemoteErrorNotRetried(t *testing.T) {
	s := echoOrb(t)
	s.Register("bad", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		return nil, errors.New("kaboom")
	})
	c := newClient(t, s.Addr(), Options{})
	_, err := c.Invoke("bad", 0, nil)
	var re *orb.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if st := c.Stats(); st.Retries != 0 {
		t.Errorf("retries = %d for a remote handler error", st.Retries)
	}
}

func TestDialFailureFailsFastWithCleanError(t *testing.T) {
	// A port with no listener: every attempt is refused.
	c := newClient(t, "127.0.0.1:1", Options{
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		CallTimeout: 2 * time.Second,
	})
	start := time.Now()
	_, err := c.Invoke("echo", 0, nil)
	if err == nil {
		t.Fatal("invoke against dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead-address failure took %v", elapsed)
	}
}

func TestRetryAfterConnectionDeath(t *testing.T) {
	s := echoOrb(t)
	c := newClient(t, s.Addr(), Options{PoolSize: 1, BackoffBase: time.Millisecond})
	if _, err := c.Invoke("echo", 0, nil); err != nil {
		t.Fatal(err)
	}
	// Kill the server (dropping the pooled connection), restart on a new
	// listener... not possible on the same port reliably; instead kill
	// just the pooled connection by closing the server and asserting the
	// typed failure, then a healthy server case is covered elsewhere.
	_ = s.Close()
	_, err := c.Invoke("echo", 0, nil)
	if err == nil {
		t.Fatal("invoke against closed server succeeded")
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Errorf("connection-level failure was not retried: %+v", st)
	}
}

func TestHedgingMasksSlowReplica(t *testing.T) {
	s, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	var calls atomic.Int64
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	s.Register("flaky", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			<-release // first request stalls until the test ends
		}
		return []byte("ok"), nil
	})
	c := newClient(t, s.Addr(), Options{
		PoolSize:    2,
		Hedge:       true,
		HedgeAfter:  20 * time.Millisecond,
		CallTimeout: 10 * time.Second,
	})
	start := time.Now()
	reply, err := c.Invoke("flaky", 0, nil)
	if err != nil || string(reply) != "ok" {
		t.Fatalf("reply = %q err = %v", reply, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedge did not mask the stalled primary (took %v)", elapsed)
	}
	if st := c.Stats(); st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("stats = %+v, want 1 hedge / 1 win", st)
	}
}

func TestPercentileHedgeDelay(t *testing.T) {
	s := echoOrb(t)
	c := newClient(t, s.Addr(), Options{Hedge: true})
	// Warm the latency window past the 8-sample floor.
	for i := 0; i < 16; i++ {
		if _, err := c.Invoke("echo", 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	d := c.hedgeDelay()
	if d <= 0 || d > time.Second {
		t.Errorf("percentile hedge delay = %v", d)
	}
}

func TestPing(t *testing.T) {
	s := echoOrb(t)
	c := newClient(t, s.Addr(), Options{})
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping healthy server: %v", err)
	}
	bad := newClient(t, "127.0.0.1:1", Options{MaxAttempts: 1, CallTimeout: 2 * time.Second})
	if err := bad.Ping(context.Background()); err == nil {
		t.Fatal("ping of dead address succeeded")
	}
}

func TestClosedClient(t *testing.T) {
	s := echoOrb(t)
	c := New(s.Addr(), Options{})
	if _, err := c.Invoke("echo", 0, nil); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if _, err := c.Invoke("echo", 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	_ = c.Close() // idempotent
}

// --- the chaos matrix ---
//
// For every fault class the resil client must either succeed (via
// retry/hedge) or fail fast with a typed error inside its configured
// deadline — never hang. Each subtest asserts an elapsed-time ceiling
// well under the test binary's own timeout.

func chaosPair(t *testing.T, f chaos.Faults) (*orb.Server, *chaos.Proxy) {
	t.Helper()
	s := echoOrb(t)
	p, err := chaos.New("127.0.0.1:0", s.Addr(), f)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return s, p
}

func TestRetryBudgetTokenBucket(t *testing.T) {
	b := NewRetryBudget(0.5, 2)
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("reserve of 2 refused a withdrawal")
	}
	if b.Withdraw() {
		t.Fatal("empty budget allowed a withdrawal")
	}
	if b.Exhausted() != 1 {
		t.Errorf("Exhausted = %d, want 1", b.Exhausted())
	}
	// Two successes at ratio 0.5 earn one whole token back.
	b.Deposit()
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("deposits did not restore the budget")
	}
	// The balance is capped at the reserve: deposits beyond it are lost.
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("capped budget refused its reserve")
	}
	if b.Withdraw() {
		t.Fatal("deposits banked past the cap")
	}
}

// A client whose every attempt fails must stop retrying when the shared
// budget runs dry — the typed ErrRetryBudget, not MaxAttempts, is what
// bounds the storm.
func TestRetryBudgetStopsRetryStorm(t *testing.T) {
	// A dead address: reserve a port and free it so dials fail fast.
	dead := func() string {
		s := echoOrb(t)
		addr := s.Addr()
		_ = s.Close()
		return addr
	}()
	c := newClient(t, dead, Options{
		MaxAttempts: 5,
		BackoffBase: time.Millisecond,
		DialTimeout: 500 * time.Millisecond,
		RetryBudget: NewRetryBudget(0.1, 1),
	})
	_, err := c.Invoke("echo", 0, nil)
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	if !errors.Is(err, orb.ErrDial) {
		t.Errorf("err = %v, want the last attempt's dial failure wrapped", err)
	}
	st := c.Stats()
	if st.Retries != 1 {
		t.Errorf("retries = %d, want exactly the 1 token the reserve held", st.Retries)
	}
	if st.BudgetExhausted != 1 {
		t.Errorf("budgetExhausted = %d, want 1", st.BudgetExhausted)
	}
}

func TestChaosMatrixLatency(t *testing.T) {
	_, p := chaosPair(t, chaos.Faults{Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, ChunkSize: 16})
	c := newClient(t, p.Addr(), Options{CallTimeout: 5 * time.Second})
	start := time.Now()
	reply, err := c.Invoke("echo", 0, []byte("slow but steady"))
	if err != nil {
		t.Fatalf("latency fault should be survivable: %v", err)
	}
	if string(reply) != "slow but steady" {
		t.Fatalf("reply = %q", reply)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("took %v", elapsed)
	}
}

func TestChaosMatrixReset(t *testing.T) {
	// Budget sized between one and two calls' traffic: the first call
	// succeeds, the second dies mid-flight and must recover by retrying
	// on a fresh connection (whose fresh budget covers one more call).
	_, p := chaosPair(t, chaos.Faults{ResetAfter: 100})
	c := newClient(t, p.Addr(), Options{
		PoolSize:    1,
		BackoffBase: time.Millisecond,
		CallTimeout: 5 * time.Second,
	})
	start := time.Now()
	if _, err := c.Invoke("echo", 0, []byte("first")); err != nil {
		t.Fatalf("first call: %v", err)
	}
	reply, err := c.Invoke("echo", 0, []byte("second"))
	if err != nil {
		t.Fatalf("reset fault should be survivable by retry: %v", err)
	}
	if string(reply) != "second" {
		t.Fatalf("reply = %q", reply)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("took %v", elapsed)
	}
	if st := c.Stats(); st.Retries == 0 || st.Dials < 2 {
		t.Errorf("stats = %+v, want a retry on a fresh connection", st)
	}
}

func TestChaosMatrixBlackhole(t *testing.T) {
	_, p := chaosPair(t, chaos.Faults{BlackholeAfter: 1})
	c := newClient(t, p.Addr(), Options{CallTimeout: 300 * time.Millisecond})
	start := time.Now()
	_, err := c.Invoke("echo", 0, []byte("into the void"))
	elapsed := time.Since(start)
	if !errors.Is(err, orb.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("black-holed call took %v, want fail-fast near the 300ms deadline", elapsed)
	}
}

func TestChaosMatrixTruncation(t *testing.T) {
	// Every connection truncates mid-frame, so retries are futile: the
	// client must exhaust its attempts quickly with a typed
	// connection error, not hang on the half-delivered reply.
	_, p := chaosPair(t, chaos.Faults{TruncateAfter: 20})
	c := newClient(t, p.Addr(), Options{
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		CallTimeout: 3 * time.Second,
	})
	start := time.Now()
	_, err := c.Invoke("echo", 0, []byte("cut short"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("truncated stream produced a successful call")
	}
	if !errors.Is(err, orb.ErrConnClosed) && !errors.Is(err, orb.ErrDeadline) {
		t.Fatalf("err = %v, want a typed transport error", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("took %v", elapsed)
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Errorf("stats = %+v, want retries before giving up", st)
	}
}

func TestChaosMatrixHealedProxy(t *testing.T) {
	// Faults lift mid-run: calls that failed fast start succeeding with
	// no client intervention (the pool re-dials through the healed
	// proxy).
	_, p := chaosPair(t, chaos.Faults{DropOnAccept: true})
	c := newClient(t, p.Addr(), Options{
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		CallTimeout: 2 * time.Second,
	})
	if _, err := c.Invoke("echo", 0, nil); err == nil {
		t.Fatal("call through a dropping proxy succeeded")
	}
	p.SetFaults(chaos.Faults{})
	reply, err := c.Invoke("echo", 0, []byte("healed"))
	if err != nil || string(reply) != "healed" {
		t.Fatalf("healed call = %q, %v", reply, err)
	}
}

func TestDrainLetsInFlightFinish(t *testing.T) {
	// A drained client refuses new calls immediately but lets an
	// in-flight call on a pooled connection run to completion instead of
	// killing its connection.
	s := echoOrb(t)
	started := make(chan struct{})
	finish := make(chan struct{})
	s.Register("slow", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		close(started)
		<-finish
		return body, nil
	})
	c := newClient(t, s.Addr(), Options{CallTimeout: 5 * time.Second})

	type res struct {
		reply []byte
		err   error
	}
	ch := make(chan res, 1)
	go func() {
		reply, err := c.Invoke("slow", 0, []byte("inflight"))
		ch <- res{reply, err}
	}()
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- c.Drain(ctx)
	}()

	// New work is refused as soon as the drain begins.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.Invoke("echo", 0, nil)
		if errors.Is(err, ErrClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("new call after Drain = %v, want ErrClosed", err)
		}
		time.Sleep(time.Millisecond)
	}

	// The in-flight call is still running; let it finish and check it
	// completed cleanly.
	close(finish)
	r := <-ch
	if r.err != nil || string(r.reply) != "inflight" {
		t.Fatalf("in-flight call = %q, %v, want clean completion", r.reply, r.err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain = %v", err)
	}
	if st := c.Stats(); st.Conns != 0 {
		t.Errorf("conns = %d after drain, want 0", st.Conns)
	}
}

func TestDrainTimeoutForcesClose(t *testing.T) {
	// A connection stuck in flight past the drain deadline is closed
	// forcibly and the context error surfaces.
	s := echoOrb(t)
	finish := make(chan struct{})
	defer close(finish)
	started := make(chan struct{})
	s.Register("stuck", func(ctx context.Context, op uint32, body []byte) ([]byte, error) {
		close(started)
		<-finish
		return body, nil
	})
	c := newClient(t, s.Addr(), Options{CallTimeout: 10 * time.Second})
	go func() { _, _ = c.Invoke("stuck", 0, nil) }()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := c.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain = %v, want deadline exceeded", err)
	}
	if _, err := c.Invoke("echo", 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after forced drain = %v, want ErrClosed", err)
	}
}
