// Retry budgets: a token bucket that caps the *ratio* of retries to
// successes, Finagle-style, instead of the per-call attempt count alone.
// Per-call retry limits compose badly — three layers each allowed 3
// attempts can turn one slow member into a 27x traffic storm — while a
// shared budget is a global invariant: across every call drawing from
// it, retries (and hedges, which are speculative retries) cannot exceed
// roughly Ratio of recent successes plus a small fixed reserve for
// cold starts and incident recovery.
package resil

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrRetryBudget is returned (wrapping the attempt's own error) when a
// call would have been retried or hedged but the shared retry budget is
// exhausted. It is deliberately non-retryable: the budget being empty
// means the backend is already failing broadly, and more attempts are
// fuel on the fire.
var ErrRetryBudget = errors.New("resil: retry budget exhausted")

// Default retry-budget tuning.
const (
	// DefaultRetryRatio is the fraction of successes earned back as
	// retry tokens: retries + hedges ≤ ~10% of successful calls.
	DefaultRetryRatio = 0.1
	// DefaultRetryReserve is the bucket's initial balance and cap-floor,
	// so a cold client (or one recovering from a full outage, when there
	// are no recent successes to earn from) can still probe.
	DefaultRetryReserve = 10
)

// RetryBudget is a shared token bucket governing retries and hedges.
// Successful calls deposit Ratio tokens; each retry or hedge withdraws
// one whole token. One budget may be shared by many Clients (the
// cluster client shares one across all member pools), making the cap a
// fleet-wide property rather than per-connection-pool.
type RetryBudget struct {
	ratio float64
	cap   float64

	mu     sync.Mutex
	tokens float64

	exhausted atomic.Int64
}

// NewRetryBudget returns a budget earning ratio tokens per success,
// holding at most reserve banked tokens beyond the steady-state earn
// rate, and starting with reserve tokens. Non-positive arguments select
// the defaults.
func NewRetryBudget(ratio float64, reserve int) *RetryBudget {
	if ratio <= 0 {
		ratio = DefaultRetryRatio
	}
	if reserve <= 0 {
		reserve = DefaultRetryReserve
	}
	return &RetryBudget{ratio: ratio, cap: float64(reserve), tokens: float64(reserve)}
}

// Deposit credits one successful call.
func (b *RetryBudget) Deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

// Withdraw takes one token for a retry or hedge attempt, reporting
// whether the budget allowed it. A refused withdrawal is counted.
func (b *RetryBudget) Withdraw() bool {
	b.mu.Lock()
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if !ok {
		b.exhausted.Add(1)
	}
	return ok
}

// Exhausted returns the number of withdrawals the budget has refused.
func (b *RetryBudget) Exhausted() int64 { return b.exhausted.Load() }
