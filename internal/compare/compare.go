// Package compare implements the Mockingbird Comparer (§4): deciding
// equivalence and subtyping of possibly cyclic Mtype graphs, extended with
// isomorphism rules that make matching flexible:
//
//   - associativity: records nested directly inside records flatten, so
//     Record(Record(R,R), Record(R,R)) matches Record(R,R,R,R);
//   - commutativity: Record and Choice children match as multisets, so
//     Record(Integer, Record(Real, Character)) matches
//     Record(Character, Real, Integer) — the paper's own example;
//   - unit elimination: Unit is the identity of Record, so void-like
//     members never block a match.
//
// The core algorithm is coinductive equivalence in the style of Amadio &
// Cardelli [TOPLAS'93]: a pair of types assumed equal when re-encountered
// on the current proof path is equal (greatest fixpoint), which handles
// the cyclic graphs produced by recursive declarations. Failures are
// cached globally (assumptions only ever help, so a failure under
// assumptions is a real failure); successes are cached only when their
// proof used no coinductive assumption, or when the assumptions they used
// were discharged by an enclosing successful proof.
//
// Alongside the boolean answer the comparer records a Decision for every
// matched pair — which flattened record leaf maps to which, which choice
// alternative to which — forming the structural correspondence that the
// coercion planner consumes (§4: "it saves information about structural
// correspondences between the Mtypes for use by the Stub Generator").
package compare

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/mtype"
)

// Rules selects the isomorphism rules in force. The zero value disables
// everything except plain structural recursion; use DefaultRules for the
// full Mockingbird rule set. Individual rules exist so the ablation
// benchmarks can measure what each contributes.
type Rules struct {
	// Associativity flattens records nested directly inside records.
	Associativity bool
	// Commutativity matches record and choice children as multisets.
	Commutativity bool
	// UnitElimination treats Unit as the identity of Record.
	UnitElimination bool
	// Cache memoizes verdicts across Compare calls.
	Cache bool
}

// DefaultRules returns the full rule set used by the tool.
func DefaultRules() Rules {
	return Rules{Associativity: true, Commutativity: true, UnitElimination: true, Cache: true}
}

// Mode distinguishes the two relations the Comparer decides.
type Mode uint8

// Comparison modes.
const (
	// ModeEqual decides two-way interconvertibility.
	ModeEqual Mode = iota + 1
	// ModeSubtype decides one-way convertibility from left to right.
	ModeSubtype
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeEqual {
		return "equal"
	}
	return "subtype"
}

// DecisionKind classifies a recorded correspondence.
type DecisionKind uint8

// Decision kinds.
const (
	// DecSame marks a pair of identical nodes (identity conversion).
	DecSame DecisionKind = iota + 1
	// DecPrim marks matched primitive Mtypes.
	DecPrim
	// DecRecord marks matched record-like pairs with a leaf permutation.
	DecRecord
	// DecChoice marks matched choices with an alternative mapping.
	DecChoice
	// DecPort marks matched ports.
	DecPort
	// DecInject marks a subtype match of a non-choice into one
	// alternative of a choice (e.g. τ <: Choice(Unit, τ), the
	// value-where-nullable-expected rule).
	DecInject
	// DecSemantic marks a pair accepted because the programmer registered
	// a hand-written conversion between the two declarations — §6's
	// "composing these programmer-supplied conversions with Mockingbird's
	// structural ones" (e.g. a slope/intercept line vs. a two-points
	// line, which no structural rule can relate).
	DecSemantic
)

// FlatLeaf is one leaf of a flattened record: the index path from the
// record node (through nested records) and the leaf node itself.
type FlatLeaf struct {
	Path []int
	Node *mtype.Type
	// Unit records that the leaf unfolds to Unit and was eliminated from
	// matching.
	Unit bool
}

// Decision is the recorded correspondence for one matched pair of nodes.
// The planner and converter navigate values with it.
type Decision struct {
	Kind DecisionKind
	A, B *mtype.Type

	// DecRecord: the flattened leaves of each side and the permutation.
	// Perm[i] is the FlatB index matched by non-unit FlatA leaf i, and -1
	// for unit leaves.
	FlatA, FlatB []FlatLeaf
	Perm         []int

	// DecChoice: AltMap[i] is the B alternative matched by A alternative
	// i. DecInject: AltMap[0] is the B alternative A injects into.
	AltMap []int

	// DecSemantic: the registered hook name.
	Hook string
}

type pairKey struct {
	a, b *mtype.Type
	mode Mode
}

// Comparer decides Mtype relations and accumulates correspondence
// decisions. It is not safe for concurrent use.
type Comparer struct {
	rules     Rules
	proven    map[pairKey]bool
	failed    map[pairKey]bool
	reasons   map[pairKey]string
	decisions map[pairKey]*Decision
	// semantic maps tag pairs to hook names: pairs of nodes carrying
	// these tags match by fiat, converted by the named programmer hook.
	semantic map[[2]string]string
	// semanticTags holds every tag that appears in a registration:
	// flattening must not dissolve such records, or the pair would never
	// be compared as a unit.
	semanticTags map[string]bool

	// Per-call state.
	assume map[pairKey]bool
	// pending maps an assumption key to the set of keys whose proofs used
	// it; discharged on successful pop.
	steps int
}

// NewComparer returns a Comparer with the given rules.
func NewComparer(rules Rules) *Comparer {
	return &Comparer{
		rules:        rules,
		proven:       make(map[pairKey]bool),
		failed:       make(map[pairKey]bool),
		reasons:      make(map[pairKey]string),
		decisions:    make(map[pairKey]*Decision),
		semantic:     make(map[[2]string]string),
		semanticTags: make(map[string]bool),
	}
}

// RegisterSemantic declares that values of declarations tagged tagA
// convert to values tagged tagB through the named programmer-supplied
// hook (§6). The pair matches regardless of structure; execution engines
// receive the hook name and must have a function registered under it.
func (c *Comparer) RegisterSemantic(tagA, tagB, hook string) {
	c.semantic[[2]string{tagA, tagB}] = hook
	c.semanticTags[tagA] = true
	c.semanticTags[tagB] = true
}

// Steps returns the number of pair comparisons performed so far; the
// scalability benchmarks report it.
func (c *Comparer) Steps() int { return c.steps }

// Match is a successful comparison: the relation that holds and access to
// the decisions that witness it.
type Match struct {
	A, B *mtype.Type
	Mode Mode
	c    *Comparer
}

// Decision returns the recorded correspondence for a node pair reached
// during conversion. The pair must have been matched (directly or as a
// descendant of the matched roots).
func (m *Match) Decision(a, b *mtype.Type) (*Decision, error) {
	ua, ub := unfold(a), unfold(b)
	if d, ok := m.c.decisions[pairKey{ua, ub, m.Mode}]; ok {
		return d, nil
	}
	// Subtype conversions recurse through port elements contravariantly,
	// flipping back to the covariant pair; equal-mode decisions also
	// satisfy subtype queries.
	if m.Mode == ModeSubtype {
		if d, ok := m.c.decisions[pairKey{ua, ub, ModeEqual}]; ok {
			return d, nil
		}
	}
	return nil, fmt.Errorf("compare: no decision recorded for %s ~ %s", ua.Kind(), ub.Kind())
}

// Equivalent decides two-way interconvertibility of a and b.
func (c *Comparer) Equivalent(a, b *mtype.Type) (*Match, bool) {
	return c.run(a, b, ModeEqual)
}

// Subtype decides whether a is a subtype of b (one-way convertible a→b).
func (c *Comparer) Subtype(a, b *mtype.Type) (*Match, bool) {
	return c.run(a, b, ModeSubtype)
}

func (c *Comparer) run(a, b *mtype.Type, mode Mode) (*Match, bool) {
	c.assume = make(map[pairKey]bool)
	ok, _ := c.compare(a, b, mode)
	c.assume = nil
	if !ok {
		return nil, false
	}
	return &Match{A: a, B: b, Mode: mode, c: c}, true
}

// FailureReason returns a human-readable explanation of why the pair does
// not match, for the diagnostics the paper calls for in §6. It returns ""
// if no failure involving the pair was recorded.
func (c *Comparer) FailureReason(a, b *mtype.Type, mode Mode) string {
	return c.reasons[pairKey{unfold(a), unfold(b), mode}]
}

// unfold resolves chains of μ nodes to the underlying structural node.
func unfold(t *mtype.Type) *mtype.Type {
	for t != nil && t.Kind() == mtype.KindRecursive {
		t = t.Body()
	}
	return t
}

// compare is the coinductive core. It returns whether the relation holds
// and whether the proof was self-contained (used no coinductive
// assumption), which controls caching.
func (c *Comparer) compare(a, b *mtype.Type, mode Mode) (ok, selfContained bool) {
	c.steps++
	ua, ub := unfold(a), unfold(b)
	if ua == nil || ub == nil {
		return false, true
	}
	key := pairKey{ua, ub, mode}
	if ua == ub {
		c.decisions[key] = &Decision{Kind: DecSame, A: ua, B: ub}
		return true, true
	}
	if c.rules.Cache {
		if c.proven[key] {
			return true, true
		}
		if c.failed[key] {
			return false, true
		}
	}
	// Programmer-registered semantic conversions match by fiat (§6). The
	// hook is directional: a two-way stub needs both directions
	// registered.
	if ua.Tag() != "" && ub.Tag() != "" {
		if hook, ok := c.semantic[[2]string{ua.Tag(), ub.Tag()}]; ok {
			c.decisions[key] = &Decision{Kind: DecSemantic, A: ua, B: ub, Hook: hook}
			if c.rules.Cache {
				c.proven[key] = true
			}
			return true, true
		}
	}
	if c.assume[key] {
		// Coinductive hypothesis: the pair is on the current proof path.
		return true, false
	}
	c.assume[key] = true
	ok, self := c.structural(ua, ub, mode, key)
	if !ok && mode == ModeSubtype && ub.Kind() == mtype.KindChoice && ua.Kind() != mtype.KindChoice {
		// Injection: a non-choice is a subtype of a choice when it is a
		// subtype of one of its alternatives (a definite value can be
		// used where alternatives — e.g. null — are allowed).
		for j, alt := range ub.Alts() {
			okJ, selfJ := c.compare(ua, alt.Type, ModeSubtype)
			if okJ {
				c.decisions[key] = &Decision{Kind: DecInject, A: ua, B: ub, AltMap: []int{j}}
				ok, self = true, selfJ
				break
			}
		}
	}
	delete(c.assume, key)
	if !ok {
		if c.rules.Cache {
			c.failed[key] = true
		}
		return false, true
	}
	// A proof that used only this pair's own assumption is discharged by
	// completing: the pair set forms a bisimulation-up-to. Proofs that
	// used *other* path assumptions remain conditional; they are not
	// cached but their decisions stand (they are re-derived consistently
	// because the graph is deterministic).
	if self && c.rules.Cache {
		c.proven[key] = true
	}
	return true, self
}

// structural dispatches on the unfolded node kinds.
func (c *Comparer) structural(a, b *mtype.Type, mode Mode, key pairKey) (ok, selfContained bool) {
	ak, bk := a.Kind(), b.Kind()

	// Primitive pairs.
	switch {
	case ak == mtype.KindInteger && bk == mtype.KindInteger:
		return c.integer(a, b, mode, key), true
	case ak == mtype.KindCharacter && bk == mtype.KindCharacter:
		return c.character(a, b, mode, key), true
	case ak == mtype.KindReal && bk == mtype.KindReal:
		return c.real(a, b, mode, key), true
	}

	// Record-like matching (also covers Unit-vs-empty-record).
	if ak == mtype.KindRecord || bk == mtype.KindRecord ||
		(ak == mtype.KindUnit && bk == mtype.KindUnit) {
		return c.recordMatch(a, b, mode, key)
	}

	switch {
	case ak == mtype.KindChoice && bk == mtype.KindChoice:
		return c.choiceMatch(a, b, mode, key)
	case ak == mtype.KindPort && bk == mtype.KindPort:
		var okE, selfE bool
		if mode == ModeSubtype {
			// port(τ) <: port(σ) iff σ <: τ: a port that accepts τ can be
			// used where a port accepting the more specific σ is expected.
			okE, selfE = c.compare(b.Elem(), a.Elem(), ModeSubtype)
		} else {
			okE, selfE = c.compare(a.Elem(), b.Elem(), ModeEqual)
		}
		if !okE {
			c.fail(key, "port elements differ")
			return false, selfE
		}
		c.decisions[key] = &Decision{Kind: DecPort, A: a, B: b}
		return true, selfE
	default:
		c.fail(key, fmt.Sprintf("kinds differ: %s vs %s", ak, bk))
		return false, true
	}
}

func (c *Comparer) integer(a, b *mtype.Type, mode Mode, key pairKey) bool {
	alo, ahi := a.IntegerRange()
	blo, bhi := b.IntegerRange()
	okRange := alo.Cmp(blo) == 0 && ahi.Cmp(bhi) == 0
	if mode == ModeSubtype {
		okRange = alo.Cmp(blo) >= 0 && ahi.Cmp(bhi) <= 0
	}
	if !okRange {
		c.fail(key, fmt.Sprintf("integer ranges: [%s..%s] vs [%s..%s]", alo, ahi, blo, bhi))
		return false
	}
	c.decisions[key] = &Decision{Kind: DecPrim, A: a, B: b}
	return true
}

func (c *Comparer) character(a, b *mtype.Type, mode Mode, key pairKey) bool {
	ra, rb := a.Repertoire(), b.Repertoire()
	ok := ra == rb
	if mode == ModeSubtype {
		ok = rb.Includes(ra)
	}
	if !ok {
		c.fail(key, fmt.Sprintf("character repertoires: %s vs %s", ra, rb))
		return false
	}
	c.decisions[key] = &Decision{Kind: DecPrim, A: a, B: b}
	return true
}

func (c *Comparer) real(a, b *mtype.Type, mode Mode, key pairKey) bool {
	pa, ea := a.RealParams()
	pb, eb := b.RealParams()
	ok := pa == pb && ea == eb
	if mode == ModeSubtype {
		ok = pa <= pb && ea <= eb
	}
	if !ok {
		c.fail(key, fmt.Sprintf("real precision: (%d,%d) vs (%d,%d)", pa, ea, pb, eb))
		return false
	}
	c.decisions[key] = &Decision{Kind: DecPrim, A: a, B: b}
	return true
}

// flattenBudget bounds the number of leaves associative flattening may
// produce for one record. By-value object graphs with heavy sharing
// denote trees whose fully flattened width is exponential in their DAG
// depth; rather than hang, the comparer fails such pairs with a clear
// reason. (The paper reports the scalability of the algorithms as an
// ongoing investigation, §5 — this is the corresponding engineering
// bound.)
const flattenBudget = 1 << 12

// errFlattenBudget signals that flattening exceeded the budget.
var errFlattenBudget = errors.New("flattening budget exceeded")

// flatten returns the record leaves of t. With associativity, records
// nested directly inside records are expanded (never through a μ node);
// with unit elimination, leaves that unfold to Unit are kept but marked.
// A non-record node is a single leaf of itself.
func (c *Comparer) flatten(t *mtype.Type) ([]FlatLeaf, error) {
	var out []FlatLeaf
	var walk func(n *mtype.Type, path []int, depth int) error
	walk = func(n *mtype.Type, path []int, depth int) error {
		if len(out) >= flattenBudget {
			return errFlattenBudget
		}
		un := unfold(n)
		semanticLeaf := un != nil && un.Tag() != "" && c.semanticTags[un.Tag()] && depth > 0
		if un != nil && un.Kind() == mtype.KindRecord && (depth == 0 || c.rules.Associativity) && !semanticLeaf {
			for i, f := range un.Fields() {
				if err := walk(f.Type, append(append([]int(nil), path...), i), depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		leaf := FlatLeaf{Path: append([]int(nil), path...), Node: n}
		if c.rules.UnitElimination && un != nil && un.Kind() == mtype.KindUnit {
			leaf.Unit = true
		}
		out = append(out, leaf)
		return nil
	}
	if err := walk(t, nil, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// recordMatch matches two record-like nodes by flattening both sides and
// finding a permutation of non-unit leaves.
func (c *Comparer) recordMatch(a, b *mtype.Type, mode Mode, key pairKey) (bool, bool) {
	flatA, errA := c.flatten(a)
	flatB, errB := c.flatten(b)
	if errA != nil || errB != nil {
		c.fail(key, "record too wide to flatten (budget exceeded); restructure or pass large aggregates by reference")
		return false, true
	}

	// Indices of leaves that participate in matching.
	var liveA, liveB []int
	for i, l := range flatA {
		if !l.Unit {
			liveA = append(liveA, i)
		}
	}
	for i, l := range flatB {
		if !l.Unit {
			liveB = append(liveB, i)
		}
	}
	if len(liveA) != len(liveB) {
		c.fail(key, fmt.Sprintf("record leaf counts differ: %d vs %d", len(liveA), len(liveB)))
		return false, true
	}

	perm := make([]int, len(flatA))
	for i := range perm {
		perm[i] = -1
	}
	self := true

	if !c.rules.Commutativity {
		// Order-preserving matching.
		for k, ia := range liveA {
			ib := liveB[k]
			ok, s := c.compare(flatA[ia].Node, flatB[ib].Node, mode)
			self = self && s
			if !ok {
				c.fail(key, fmt.Sprintf("record leaf %d does not match leaf %d", ia, ib))
				return false, self
			}
			perm[ia] = ib
		}
	} else {
		aNodes := make([]*mtype.Type, len(liveA))
		for k, ia := range liveA {
			aNodes[k] = flatA[ia].Node
		}
		bNodes := make([]*mtype.Type, len(liveB))
		for k, ib := range liveB {
			bNodes[k] = flatB[ib].Node
		}
		assignment, ok, s := c.matchMultiset(aNodes, bNodes, mode)
		self = self && s
		if !ok {
			c.fail(key, "no permutation of record leaves matches")
			return false, self
		}
		for k, ia := range liveA {
			perm[ia] = liveB[assignment[k]]
		}
	}

	c.decisions[key] = &Decision{
		Kind: DecRecord, A: a, B: b,
		FlatA: flatA, FlatB: flatB, Perm: perm,
	}
	return true, self
}

// choiceMatch matches two choices alternative-by-alternative: a bijection
// for equality, an injection into b for subtyping (a choice with fewer
// alternatives can be used where one with more is expected).
func (c *Comparer) choiceMatch(a, b *mtype.Type, mode Mode, key pairKey) (bool, bool) {
	altsA, altsB := a.Alts(), b.Alts()
	if mode == ModeEqual && len(altsA) != len(altsB) {
		c.fail(key, fmt.Sprintf("choice alternative counts differ: %d vs %d", len(altsA), len(altsB)))
		return false, true
	}
	if mode == ModeSubtype && len(altsA) > len(altsB) {
		c.fail(key, fmt.Sprintf("choice has more alternatives: %d vs %d", len(altsA), len(altsB)))
		return false, true
	}

	altMap := make([]int, len(altsA))
	for i := range altMap {
		altMap[i] = -1
	}
	self := true

	if !c.rules.Commutativity {
		for i := range altsA {
			ok, s := c.compare(altsA[i].Type, altsB[i].Type, mode)
			self = self && s
			if !ok {
				c.fail(key, fmt.Sprintf("choice alternative %d does not match", i))
				return false, self
			}
			altMap[i] = i
		}
	} else {
		aNodes := make([]*mtype.Type, len(altsA))
		for i := range altsA {
			aNodes[i] = altsA[i].Type
		}
		bNodes := make([]*mtype.Type, len(altsB))
		for j := range altsB {
			bNodes[j] = altsB[j].Type
		}
		assignment, ok, s := c.matchMultiset(aNodes, bNodes, mode)
		self = self && s
		if !ok {
			c.fail(key, "no mapping of choice alternatives matches")
			return false, self
		}
		copy(altMap, assignment)
	}

	c.decisions[key] = &Decision{Kind: DecChoice, A: a, B: b, AltMap: altMap}
	return true, self
}

// matchMultiset matches every item of a to a distinct item of b under the
// relation of mode, returning the assignment (a index → b index). It is
// polynomial: equivalence matching partitions both sides into classes
// (Mtype equivalence is transitive) and pairs class members; subtype
// matching runs Kuhn's augmenting-path bipartite matching. The naive
// factorial backtracking this replaces blows up on the wide records of
// real interface suites (many leaves of the same primitive type).
func (c *Comparer) matchMultiset(a, b []*mtype.Type, mode Mode) (assignment []int, ok, selfContained bool) {
	self := true
	if mode == ModeEqual {
		// Partition b into equivalence classes by comparing against class
		// representatives.
		var classRep []int
		var classMembers [][]int
		for j, bn := range b {
			placed := false
			for ci, rep := range classRep {
				okC, s := c.compare(b[rep], bn, ModeEqual)
				self = self && s
				if okC {
					classMembers[ci] = append(classMembers[ci], j)
					placed = true
					break
				}
			}
			if !placed {
				classRep = append(classRep, j)
				classMembers = append(classMembers, []int{j})
			}
		}
		next := make([]int, len(classRep))
		out := make([]int, len(a))
		for i, an := range a {
			found := -1
			for ci, rep := range classRep {
				okC, s := c.compare(an, b[rep], ModeEqual)
				self = self && s
				if okC {
					found = ci
					break
				}
			}
			if found < 0 || next[found] >= len(classMembers[found]) {
				return nil, false, self
			}
			member := classMembers[found][next[found]]
			next[found]++
			// Compare against the assigned member itself so the decision
			// for this exact pair is recorded for the planner; by
			// transitivity it must succeed.
			okM, s := c.compare(an, b[member], ModeEqual)
			self = self && s
			if !okM {
				return nil, false, self
			}
			out[i] = member
		}
		return out, true, self
	}

	// Subtype: Kuhn's augmenting-path maximum bipartite matching over the
	// a[i] <: b[j] edges, seeded with an order-preserving greedy pass so
	// that identically-ordered sides pair position-by-position instead of
	// in some arbitrary crossing.
	matchB := make([]int, len(b))
	for j := range matchB {
		matchB[j] = -1
	}
	assignedA := make([]bool, len(a))
	for k := range a {
		if k >= len(b) {
			break
		}
		okC, s := c.compare(a[k], b[k], ModeSubtype)
		self = self && s
		if okC {
			matchB[k] = k
			assignedA[k] = true
		}
	}
	var try func(i int, visited []bool) bool
	try = func(i int, visited []bool) bool {
		for j := range b {
			if visited[j] {
				continue
			}
			okC, s := c.compare(a[i], b[j], ModeSubtype)
			self = self && s
			if !okC {
				continue
			}
			visited[j] = true
			if matchB[j] < 0 || try(matchB[j], visited) {
				matchB[j] = i
				return true
			}
		}
		return false
	}
	for i := range a {
		if assignedA[i] {
			continue
		}
		visited := make([]bool, len(b))
		if !try(i, visited) {
			return nil, false, self
		}
	}
	out := make([]int, len(a))
	for j, i := range matchB {
		if i >= 0 {
			out[i] = j
		}
	}
	return out, true, self
}

func (c *Comparer) fail(key pairKey, reason string) {
	if _, dup := c.reasons[key]; !dup {
		c.reasons[key] = reason
	}
}

// Explain renders a failure diagnosis for a root pair: the recorded
// reasons reachable from the pair, indented by depth. It supports the
// mismatch-isolation workflow of §6.
func (c *Comparer) Explain(a, b *mtype.Type, mode Mode) string {
	var sb strings.Builder
	seen := make(map[pairKey]bool)
	var walk func(x, y *mtype.Type, depth int)
	walk = func(x, y *mtype.Type, depth int) {
		ux, uy := unfold(x), unfold(y)
		key := pairKey{ux, uy, mode}
		if seen[key] || depth > 16 {
			return
		}
		seen[key] = true
		if r, ok := c.reasons[key]; ok {
			fmt.Fprintf(&sb, "%s%s ~ %s: %s\n", strings.Repeat("  ", depth), describe(ux), describe(uy), r)
		}
		for _, cx := range ux.Children() {
			for _, cy := range uy.Children() {
				if c.reasons[pairKey{unfold(cx), unfold(cy), mode}] != "" {
					walk(cx, cy, depth+1)
				}
			}
		}
	}
	walk(a, b, 0)
	if sb.Len() == 0 {
		return "no mismatch recorded"
	}
	return sb.String()
}

func describe(t *mtype.Type) string {
	if t == nil {
		return "<nil>"
	}
	if tag := t.Tag(); tag != "" {
		return tag
	}
	return t.Kind().String()
}
