package compare

import (
	"testing"
	"testing/quick"

	"repro/internal/mtype"
)

func eq(t *testing.T, a, b *mtype.Type) *Match {
	t.Helper()
	c := NewComparer(DefaultRules())
	m, ok := c.Equivalent(a, b)
	if !ok {
		t.Fatalf("expected %s ≡ %s\ndiagnosis:\n%s", a, b, c.Explain(a, b, ModeEqual))
	}
	return m
}

func notEq(t *testing.T, a, b *mtype.Type) {
	t.Helper()
	c := NewComparer(DefaultRules())
	if _, ok := c.Equivalent(a, b); ok {
		t.Fatalf("expected %s ≢ %s", a, b)
	}
}

func sub(t *testing.T, a, b *mtype.Type) {
	t.Helper()
	c := NewComparer(DefaultRules())
	if _, ok := c.Subtype(a, b); !ok {
		t.Fatalf("expected %s <: %s\ndiagnosis:\n%s", a, b, c.Explain(a, b, ModeSubtype))
	}
}

func notSub(t *testing.T, a, b *mtype.Type) {
	t.Helper()
	c := NewComparer(DefaultRules())
	if _, ok := c.Subtype(a, b); ok {
		t.Fatalf("expected %s not <: %s", a, b)
	}
}

func i8() *mtype.Type  { return mtype.NewIntegerBits(8, true) }
func i16() *mtype.Type { return mtype.NewIntegerBits(16, true) }
func f32() *mtype.Type { return mtype.NewFloat32() }
func f64() *mtype.Type { return mtype.NewFloat64() }
func ch() *mtype.Type  { return mtype.NewCharacter(mtype.RepLatin1) }

func TestPrimitiveEquality(t *testing.T) {
	eq(t, i8(), i8())
	eq(t, f32(), f32())
	eq(t, ch(), ch())
	eq(t, mtype.Unit(), mtype.Unit())
	notEq(t, i8(), i16())
	notEq(t, f32(), f64())
	notEq(t, ch(), mtype.NewCharacter(mtype.RepUnicode))
	notEq(t, i8(), f32())
	notEq(t, mtype.Unit(), i8())
}

func TestPrimitiveSubtyping(t *testing.T) {
	sub(t, i8(), i16())
	notSub(t, i16(), i8())
	sub(t, mtype.NewIntegerBits(8, false), i16()) // 0..255 ⊆ -32768..32767
	notSub(t, mtype.NewIntegerBits(16, false), i16())
	sub(t, ch(), mtype.NewCharacter(mtype.RepUnicode))
	notSub(t, mtype.NewCharacter(mtype.RepUnicode), ch())
	sub(t, f32(), f64())
	notSub(t, f64(), f32())
}

// TestPaperCommutativityExample is §4's own example:
// Record(Integer,Record(Real,Character)) ≡ Record(Character,Real,Integer).
func TestPaperCommutativityExample(t *testing.T) {
	a := mtype.RecordOf(i16(), mtype.RecordOf(f32(), ch()))
	b := mtype.RecordOf(ch(), f32(), i16())
	m := eq(t, a, b)
	d, err := m.Decision(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DecRecord || len(d.FlatA) != 3 || len(d.FlatB) != 3 {
		t.Fatalf("decision = %+v", d)
	}
	// Integer (leaf 0 of A) must map to B leaf 2 (the Integer).
	if d.Perm[0] != 2 {
		t.Errorf("perm = %v", d.Perm)
	}
}

// TestAssociativityLineExample is §3's associativity claim: a Line
// containing two Points of two Reals matches anything with four Reals.
func TestAssociativityLineExample(t *testing.T) {
	point := mtype.RecordOf(f32(), f32())
	line := mtype.RecordOf(point, point)
	four := mtype.RecordOf(f32(), f32(), f32(), f32())
	m := eq(t, line, four)
	d, _ := m.Decision(line, four)
	if len(d.FlatA) != 4 {
		t.Errorf("line flattens to %d leaves", len(d.FlatA))
	}
	notEq(t, line, mtype.RecordOf(f32(), f32(), f32()))
}

func TestUnitElimination(t *testing.T) {
	eq(t, mtype.RecordOf(mtype.Unit(), i8()), mtype.RecordOf(i8()))
	eq(t, mtype.RecordOf(i8()), i8())
	eq(t, mtype.NewRecord(), mtype.Unit())
	eq(t, mtype.RecordOf(mtype.Unit(), mtype.Unit()), mtype.Unit())
	notEq(t, mtype.RecordOf(i8()), mtype.Unit())
}

func TestChoiceEquality(t *testing.T) {
	a := mtype.ChoiceOf(i8(), f32())
	b := mtype.ChoiceOf(f32(), i8())
	m := eq(t, a, b)
	d, _ := m.Decision(a, b)
	if d.Kind != DecChoice || d.AltMap[0] != 1 || d.AltMap[1] != 0 {
		t.Fatalf("altMap = %v", d.AltMap)
	}
	notEq(t, mtype.ChoiceOf(i8(), f32()), mtype.ChoiceOf(i8(), f32(), ch()))
	notEq(t, mtype.ChoiceOf(i8()), mtype.ChoiceOf(f32()))
}

func TestChoiceWidthSubtyping(t *testing.T) {
	narrow := mtype.ChoiceOf(i8(), f32())
	wide := mtype.ChoiceOf(ch(), f32(), i8())
	sub(t, narrow, wide)
	notSub(t, wide, narrow)
}

func TestOptionalSubtyping(t *testing.T) {
	// nonnull τ <: nullable τ: a value can be used where null is allowed.
	sub(t, mtype.RecordOf(f32()), mtype.NewOptional(mtype.RecordOf(f32())))
}

func TestPortEqualityAndContravariance(t *testing.T) {
	eq(t, mtype.NewPort(i8()), mtype.NewPort(i8()))
	notEq(t, mtype.NewPort(i8()), mtype.NewPort(i16()))
	// Contravariance: a port accepting the wider type is a subtype.
	sub(t, mtype.NewPort(i16()), mtype.NewPort(i8()))
	notSub(t, mtype.NewPort(i8()), mtype.NewPort(i16()))
}

func TestRecursiveListEquality(t *testing.T) {
	a := mtype.NewList(f32())
	b := mtype.NewList(f32())
	eq(t, a, b)
	notEq(t, mtype.NewList(f32()), mtype.NewList(f64()))
}

func TestListEqualsItsUnrolling(t *testing.T) {
	l := mtype.NewList(f32())
	unrolled := mtype.NewChoice(
		mtype.Alt{Name: "nil", Type: mtype.Unit()},
		mtype.Alt{Name: "cons", Type: mtype.NewRecord(
			mtype.Field{Name: "head", Type: f32()},
			mtype.Field{Name: "tail", Type: l},
		)},
	)
	eq(t, l, unrolled)
	eq(t, unrolled, l)
}

func TestMutuallyRecursiveGraphs(t *testing.T) {
	// Two independently built even/odd list graphs must be equivalent.
	build := func() *mtype.Type {
		even := mtype.NewRecursive()
		odd := mtype.NewRecursive()
		even.SetBody(mtype.ChoiceOf(mtype.Unit(), mtype.RecordOf(f32(), odd)))
		odd.SetBody(mtype.RecordOf(f32(), even))
		return even
	}
	eq(t, build(), build())
}

func TestRecursiveVsFlatListDiffer(t *testing.T) {
	notEq(t, mtype.NewList(f32()), mtype.RecordOf(f32(), f32()))
}

// TestFitterShapeEquivalence is the §3.4 conclusion: the annotated C and
// Java fitter Mtypes (built here structurally) are equivalent, despite the
// Java side nesting its outputs inside a Line record.
func TestFitterShapeEquivalence(t *testing.T) {
	point := func() *mtype.Type { return mtype.RecordOf(f32(), f32()) }
	cSide := mtype.NewPort(mtype.RecordOf(
		mtype.NewList(point()),
		mtype.NewPort(mtype.RecordOf(point(), point())),
	))
	line := mtype.RecordOf(point(), point())
	jSide := mtype.NewPort(mtype.RecordOf(
		mtype.NewList(point()),
		mtype.NewPort(mtype.RecordOf(line)),
	))
	eq(t, cSide, jSide)
}

func TestRulesAblation(t *testing.T) {
	point := mtype.RecordOf(f32(), f32())
	line := mtype.RecordOf(point, point)
	four := mtype.RecordOf(f32(), f32(), f32(), f32())
	shuffled := mtype.RecordOf(f32(), mtype.RecordOf(ch(), f32()))
	ordered := mtype.RecordOf(f32(), f32(), ch())

	noAssoc := DefaultRules()
	noAssoc.Associativity = false
	if _, ok := NewComparer(noAssoc).Equivalent(line, four); ok {
		t.Error("associativity disabled but nested record still matched")
	}

	noComm := DefaultRules()
	noComm.Commutativity = false
	if _, ok := NewComparer(noComm).Equivalent(shuffled, ordered); ok {
		t.Error("commutativity disabled but shuffled record still matched")
	}
	// Order-preserving still matches identical orders.
	if _, ok := NewComparer(noComm).Equivalent(mtype.RecordOf(i8(), f32()), mtype.RecordOf(i8(), f32())); !ok {
		t.Error("no-commutativity rejects identical order")
	}

	noUnit := DefaultRules()
	noUnit.UnitElimination = false
	if _, ok := NewComparer(noUnit).Equivalent(mtype.RecordOf(mtype.Unit(), i8()), mtype.RecordOf(i8())); ok {
		t.Error("unit elimination disabled but unit field still ignored")
	}
	if _, ok := NewComparer(noUnit).Equivalent(mtype.Unit(), mtype.Unit()); !ok {
		t.Error("unit ≡ unit must hold without the unit law")
	}
}

func TestCacheConsistency(t *testing.T) {
	c := NewComparer(DefaultRules())
	a := mtype.NewList(mtype.RecordOf(f32(), f32()))
	b := mtype.NewList(mtype.RecordOf(f32(), f32()))
	if _, ok := c.Equivalent(a, b); !ok {
		t.Fatal("first compare failed")
	}
	steps1 := c.Steps()
	if _, ok := c.Equivalent(a, b); !ok {
		t.Fatal("second compare failed")
	}
	if c.Steps()-steps1 > steps1 {
		t.Errorf("cache ineffective: %d then %d more steps", steps1, c.Steps()-steps1)
	}
	// Uncached comparer must agree.
	raw := DefaultRules()
	raw.Cache = false
	if _, ok := NewComparer(raw).Equivalent(a, b); !ok {
		t.Error("uncached comparer disagrees")
	}
}

func TestSameNodeFastPath(t *testing.T) {
	l := mtype.NewList(f32())
	m := eq(t, l, l)
	d, err := m.Decision(l, l)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DecSame {
		t.Errorf("decision = %+v, want DecSame", d)
	}
}

func TestExplainMentionsCause(t *testing.T) {
	c := NewComparer(DefaultRules())
	a := mtype.RecordOf(i8(), f32())
	b := mtype.RecordOf(i8(), f64())
	if _, ok := c.Equivalent(a, b); ok {
		t.Fatal("should not match")
	}
	diag := c.Explain(a, b, ModeEqual)
	if diag == "no mismatch recorded" {
		t.Errorf("Explain returned nothing")
	}
}

func TestRecordSubtypingDepth(t *testing.T) {
	sub(t, mtype.RecordOf(i8(), ch()), mtype.RecordOf(i16(), mtype.NewCharacter(mtype.RepUnicode)))
	notSub(t, mtype.RecordOf(i16()), mtype.RecordOf(i8()))
	// Arity must agree even for subtyping (no record width subtyping).
	notSub(t, mtype.RecordOf(i8(), i8()), mtype.RecordOf(i8()))
}

func TestListSubtyping(t *testing.T) {
	sub(t, mtype.NewList(i8()), mtype.NewList(i16()))
	notSub(t, mtype.NewList(i16()), mtype.NewList(i8()))
}

func TestDecisionsForNestedPairs(t *testing.T) {
	a := mtype.NewList(mtype.RecordOf(f32(), f32()))
	b := mtype.NewList(mtype.RecordOf(f32(), f32()))
	m := eq(t, a, b)
	// The cons-cell pair must have a record decision reachable for the
	// converter.
	consA := unfold(a).Alts()[1].Type
	consB := unfold(b).Alts()[1].Type
	d, err := m.Decision(consA, consB)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DecRecord {
		t.Errorf("cons decision = %+v", d)
	}
}

func TestPermutationIsBijection(t *testing.T) {
	f := func(seed int64) bool {
		state := seed
		rnd := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			v := int((state >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		prims := []func() *mtype.Type{i8, i16, f32, f64, ch}
		n := 2 + rnd(4)
		leaves := make([]*mtype.Type, n)
		for i := range leaves {
			leaves[i] = prims[rnd(len(prims))]()
		}
		// Shuffle into b.
		permIn := make([]int, n)
		for i := range permIn {
			permIn[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := rnd(i + 1)
			permIn[i], permIn[j] = permIn[j], permIn[i]
		}
		bLeaves := make([]*mtype.Type, n)
		for i, p := range permIn {
			bLeaves[p] = leaves[i]
		}
		a := mtype.RecordOf(leaves...)
		b := mtype.RecordOf(bLeaves...)
		c := NewComparer(DefaultRules())
		m, ok := c.Equivalent(a, b)
		if !ok {
			return false
		}
		d, err := m.Decision(a, b)
		if err != nil {
			return false
		}
		// Perm must be a bijection onto the B leaves.
		seen := make(map[int]bool)
		for _, p := range d.Perm {
			if p < 0 || seen[p] {
				return false
			}
			seen[p] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEquivalenceReflexiveSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		state := seed
		rnd := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			v := int((state >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		ty := genType(rnd, 3)
		c := NewComparer(DefaultRules())
		if _, ok := c.Equivalent(ty, ty); !ok {
			return false
		}
		other := genType(rnd, 3)
		_, ab := c.Equivalent(ty, other)
		_, ba := c.Equivalent(other, ty)
		return ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubtypeReflexiveFromEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		state := seed
		rnd := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			v := int((state >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		a := genType(rnd, 3)
		b := genType(rnd, 3)
		c := NewComparer(DefaultRules())
		if _, isEq := c.Equivalent(a, b); isEq {
			// Equivalence implies subtyping both ways.
			c2 := NewComparer(DefaultRules())
			if _, ok := c2.Subtype(a, b); !ok {
				return false
			}
			c3 := NewComparer(DefaultRules())
			if _, ok := c3.Subtype(b, a); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// genType builds a random Mtype of bounded depth.
func genType(rnd func(int) int, depth int) *mtype.Type {
	if depth <= 0 {
		switch rnd(5) {
		case 0:
			return i8()
		case 1:
			return i16()
		case 2:
			return f32()
		case 3:
			return ch()
		default:
			return mtype.Unit()
		}
	}
	switch rnd(4) {
	case 0:
		n := rnd(4)
		kids := make([]*mtype.Type, n)
		for i := range kids {
			kids[i] = genType(rnd, depth-1)
		}
		return mtype.RecordOf(kids...)
	case 1:
		n := 1 + rnd(3)
		kids := make([]*mtype.Type, n)
		for i := range kids {
			kids[i] = genType(rnd, depth-1)
		}
		return mtype.ChoiceOf(kids...)
	case 2:
		return mtype.NewPort(genType(rnd, depth-1))
	default:
		return mtype.NewList(genType(rnd, depth-1))
	}
}
