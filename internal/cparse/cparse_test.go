package cparse

import (
	"strings"
	"testing"

	"repro/internal/stype"
)

// figure2 is the C declaration of Figure 2 of the paper, verbatim.
const figure2 = `
typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);
`

func TestFigure2Fitter(t *testing.T) {
	u, err := Parse("fitter.h", figure2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	point := u.Lookup("point")
	if point == nil {
		t.Fatal("point not declared")
	}
	if point.Type.Kind != stype.KArray || point.Type.Len != 2 {
		t.Fatalf("point = %s", point.Type)
	}
	if point.Type.ElemType.Kind != stype.KPrim || point.Type.ElemType.Prim != stype.PF32 {
		t.Errorf("point element = %s", point.Type.ElemType)
	}
	fitter := u.Lookup("fitter")
	if fitter == nil {
		t.Fatal("fitter not declared")
	}
	fn := fitter.Type
	if fn.Kind != stype.KFunc || fn.Result != nil {
		t.Fatalf("fitter = %s", fn)
	}
	if len(fn.Params) != 4 {
		t.Fatalf("fitter has %d params", len(fn.Params))
	}
	wantNames := []string{"pts", "count", "start", "end"}
	for i, n := range wantNames {
		if fn.Params[i].Name != n {
			t.Errorf("param %d = %q, want %q", i, fn.Params[i].Name, n)
		}
	}
	pts := fn.Params[0].Type
	if pts.Kind != stype.KArray || pts.Len != -1 {
		t.Errorf("pts = %s", pts)
	}
	if pts.ElemType.Kind != stype.KNamed || pts.ElemType.Target == nil {
		t.Errorf("pts element unresolved: %s", pts.ElemType)
	}
	count := fn.Params[1].Type
	if count.Kind != stype.KPrim || count.Prim != stype.PI32 {
		t.Errorf("count = %s", count)
	}
	start := fn.Params[2].Type
	if start.Kind != stype.KPointer || start.ElemType.Name != "point" {
		t.Errorf("start = %s", start)
	}
}

func TestStructDefinition(t *testing.T) {
	u := MustParse(`
		struct Point { float x; float y; };
		struct Line { struct Point start; struct Point end; };
	`)
	pt := u.Lookup("Point")
	if pt == nil || pt.Type.Kind != stype.KStruct || len(pt.Type.Fields) != 2 {
		t.Fatalf("Point = %+v", pt)
	}
	line := u.Lookup("Line")
	if line == nil || len(line.Type.Fields) != 2 {
		t.Fatalf("Line = %+v", line)
	}
	if line.Type.Fields[0].Type.Kind != stype.KNamed || line.Type.Fields[0].Type.Target != pt {
		t.Errorf("Line.start = %s", line.Type.Fields[0].Type)
	}
}

func TestTypedefStructIdiom(t *testing.T) {
	u := MustParse(`typedef struct Point { float x; float y; } Point;`)
	pt := u.Lookup("Point")
	if pt == nil || pt.Type.Kind != stype.KStruct {
		t.Fatalf("Point = %+v", pt)
	}
	if len(u.Names()) != 1 {
		t.Errorf("declared names = %v, want just Point", u.Names())
	}
}

func TestAnonymousStructTypedef(t *testing.T) {
	u := MustParse(`typedef struct { int a; char b; } Pair;`)
	pair := u.Lookup("Pair")
	if pair == nil || pair.Type.Kind != stype.KStruct || len(pair.Type.Fields) != 2 {
		t.Fatalf("Pair = %+v", pair)
	}
}

func TestNestedAnonymousStruct(t *testing.T) {
	u := MustParse(`struct Outer { struct { int x; } inner; int y; };`)
	outer := u.Lookup("Outer")
	if outer.Type.Fields[0].Type.Kind != stype.KStruct {
		t.Errorf("inner = %s", outer.Type.Fields[0].Type)
	}
}

func TestUnion(t *testing.T) {
	u := MustParse(`union Number { int i; float f; double d; };`)
	n := u.Lookup("Number")
	if n == nil || n.Type.Kind != stype.KUnion || len(n.Type.Fields) != 3 {
		t.Fatalf("Number = %+v", n)
	}
}

func TestEnum(t *testing.T) {
	u := MustParse(`enum Color { RED, GREEN = 5, BLUE };`)
	c := u.Lookup("Color")
	if c == nil || c.Type.Kind != stype.KEnum {
		t.Fatalf("Color = %+v", c)
	}
	if len(c.Type.EnumNames) != 3 || c.Type.EnumNames[2] != "BLUE" {
		t.Errorf("enum names = %v", c.Type.EnumNames)
	}
}

func TestIntegerTypesILP32(t *testing.T) {
	u := MustParse(`
		void f(char a, signed char b, unsigned char c, short d,
		       unsigned short e, int g, unsigned int h, long i,
		       unsigned long j, long long k, unsigned long long l,
		       _Bool m, wchar_t n);
	`)
	fn := u.Lookup("f").Type
	want := []stype.Prim{
		stype.PChar8, stype.PI8, stype.PU8, stype.PI16, stype.PU16,
		stype.PI32, stype.PU32, stype.PI32, stype.PU32, stype.PI64,
		stype.PU64, stype.PBool, stype.PChar16,
	}
	for i, w := range want {
		got := fn.Params[i].Type
		if got.Kind != stype.KPrim || got.Prim != w {
			t.Errorf("param %d (%s) = %s, want %s", i, fn.Params[i].Name, got, w)
		}
	}
}

func TestIntegerTypesLP64(t *testing.T) {
	u, err := Parse("t.h", `void f(long a, unsigned long b);`, Config{Model: ModelLP64})
	if err != nil {
		t.Fatal(err)
	}
	fn := u.Lookup("f").Type
	if fn.Params[0].Type.Prim != stype.PI64 {
		t.Errorf("LP64 long = %s", fn.Params[0].Type)
	}
	if fn.Params[1].Type.Prim != stype.PU64 {
		t.Errorf("LP64 unsigned long = %s", fn.Params[1].Type)
	}
}

func TestPointerDeclarators(t *testing.T) {
	u := MustParse(`void f(int *p, int **pp, const char *s);`)
	fn := u.Lookup("f").Type
	p := fn.Params[0].Type
	if p.Kind != stype.KPointer || p.ElemType.Prim != stype.PI32 {
		t.Errorf("p = %s", p)
	}
	pp := fn.Params[1].Type
	if pp.Kind != stype.KPointer || pp.ElemType.Kind != stype.KPointer {
		t.Errorf("pp = %s", pp)
	}
	s := fn.Params[2].Type
	if s.Kind != stype.KPointer || s.ElemType.Prim != stype.PChar8 {
		t.Errorf("s = %s", s)
	}
}

func TestMultiDimensionalArray(t *testing.T) {
	u := MustParse(`typedef float matrix[3][4];`)
	m := u.Lookup("matrix").Type
	if m.Kind != stype.KArray || m.Len != 3 {
		t.Fatalf("matrix = %s", m)
	}
	if m.ElemType.Kind != stype.KArray || m.ElemType.Len != 4 {
		t.Errorf("matrix rows = %s", m.ElemType)
	}
}

func TestArrayOfPointersVsPointerToArray(t *testing.T) {
	u := MustParse(`
		typedef int *aop[3];
		typedef int (*poa)[3];
	`)
	aop := u.Lookup("aop").Type
	if aop.Kind != stype.KArray || aop.ElemType.Kind != stype.KPointer {
		t.Errorf("aop = %s, want array of pointers", aop)
	}
	poa := u.Lookup("poa").Type
	if poa.Kind != stype.KPointer || poa.ElemType.Kind != stype.KArray {
		t.Errorf("poa = %s, want pointer to array", poa)
	}
}

func TestFunctionPointerTypedef(t *testing.T) {
	u := MustParse(`typedef void (*callback)(int code, float value);`)
	cb := u.Lookup("callback").Type
	if cb.Kind != stype.KPointer {
		t.Fatalf("callback = %s, want pointer", cb)
	}
	fn := cb.ElemType
	if fn.Kind != stype.KFunc || len(fn.Params) != 2 || fn.Result != nil {
		t.Errorf("callback target = %s", fn)
	}
}

func TestFunctionReturningPointer(t *testing.T) {
	u := MustParse(`char *name(int id);`)
	fn := u.Lookup("name").Type
	if fn.Kind != stype.KFunc {
		t.Fatalf("name = %s", fn)
	}
	if fn.Result == nil || fn.Result.Kind != stype.KPointer {
		t.Errorf("result = %s", fn.Result)
	}
}

func TestBitfields(t *testing.T) {
	u := MustParse(`struct Flags { unsigned int ready : 1; int level : 4; };`)
	f := u.Lookup("Flags").Type
	ready := f.Fields[0].Type
	if ready.Ann.Range == nil || ready.Ann.Range.Lo != "0" || ready.Ann.Range.Hi != "1" {
		t.Errorf("ready range = %+v", ready.Ann.Range)
	}
	level := f.Fields[1].Type
	if level.Ann.Range == nil || level.Ann.Range.Lo != "-8" || level.Ann.Range.Hi != "7" {
		t.Errorf("level range = %+v", level.Ann.Range)
	}
}

func TestMultipleDeclaratorsShareBase(t *testing.T) {
	u := MustParse(`struct P { float x, y; };`)
	p := u.Lookup("P").Type
	if len(p.Fields) != 2 || p.Fields[1].Name != "y" {
		t.Fatalf("fields = %+v", p.Fields)
	}
	if p.Fields[0].Type == p.Fields[1].Type {
		t.Error("field type nodes must be distinct for per-use annotation")
	}
}

func TestVoidParameterList(t *testing.T) {
	u := MustParse(`int answer(void);`)
	fn := u.Lookup("answer").Type
	if len(fn.Params) != 0 {
		t.Errorf("params = %+v", fn.Params)
	}
}

func TestCommentsAndPreprocessor(t *testing.T) {
	u := MustParse(`
		#include <math.h>
		/* the point type */
		typedef float point[2]; // 2-D
	`)
	if u.Lookup("point") == nil {
		t.Error("point not parsed")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`void f(int x, ...);`, "variadic"},
		{`typedef int;`, "name"},
		{`struct;`, "tag"},
		{`typedef unsigned signed int x;`, "signed"},
		{`typedef short long x;`, "long"},
		{`typedef int x; typedef float x;`, "duplicate"},
		{`void f(undeclared_t x);`, "unresolved"},
		{`typedef float point[2`, "expected"},
		{`struct S { int x : 99; };`, "bit-field"},
		{`typedef long long long x;`, "long"},
	}
	for _, c := range cases {
		_, err := Parse("t.h", c.src, Config{})
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestGlobalVariablesAreDropped(t *testing.T) {
	u := MustParse(`int counter; void f(int x);`)
	if u.Lookup("counter") != nil {
		t.Error("global variable should not be declared")
	}
	if u.Lookup("f") == nil {
		t.Error("function after variable lost")
	}
}

func TestStorageClassesIgnored(t *testing.T) {
	u := MustParse(`extern void f(int x); static int g(void);`)
	if u.Lookup("f") == nil || u.Lookup("g") == nil {
		t.Error("storage classes broke parsing")
	}
}
