// Package cparse parses C declarations into Stypes. It replaces the
// modified IBM compiler front end of the paper with a self-contained parser
// for the declaration subset Mockingbird consumes: typedefs, struct/union
// definitions, enums, and function declarations, with full declarator
// syntax (pointers, fixed and indefinite arrays, parenthesized declarators,
// bit-fields). Function bodies and expressions are out of scope; the tool
// bridges interfaces, not implementations.
package cparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/limits"
	"repro/internal/scan"
	"repro/internal/stype"
)

// DataModel selects the sizes of int/long/pointers, which determine the
// default integer ranges of §3.1 ("defaults based on … the implementation
// (for C/C++)").
type DataModel uint8

// Supported data models.
const (
	// ModelILP32 is the 32-bit model of the paper's AIX/Win95 platforms:
	// int, long, and pointers are 32 bits.
	ModelILP32 DataModel = iota + 1
	// ModelLP64 is the common 64-bit Unix model: long and pointers are 64
	// bits.
	ModelLP64
)

// Config controls parsing.
type Config struct {
	// Model is the data model; the zero value means ModelILP32.
	Model DataModel
	// Budget caps input size, token count, and nesting depth; zero fields
	// take the limits package defaults, so untrusted sources are always
	// bounded. Violations return an error wrapping limits.ErrBudget.
	Budget limits.Budget
}

// Parse parses a C declaration source into a universe. file is used in
// error messages.
func Parse(file, src string, cfg Config) (*stype.Universe, error) {
	if cfg.Model == 0 {
		cfg.Model = ModelILP32
	}
	p := &parser{
		s:   scan.NewBudget(file, src, cfg.Budget),
		cfg: cfg,
		u:   stype.NewUniverse(stype.LangC),
	}
	if err := p.unit(); err != nil {
		// A budget truncation surfaces as a bogus syntax error at the cut
		// point; report the root cause instead.
		if berr := p.s.BudgetErr(); berr != nil {
			return nil, berr
		}
		return nil, err
	}
	if berr := p.s.BudgetErr(); berr != nil {
		return nil, berr
	}
	if err := p.u.Resolve(); err != nil {
		return nil, err
	}
	return p.u, nil
}

var cKeywords = map[string]bool{
	"typedef": true, "struct": true, "union": true, "enum": true,
	"const": true, "volatile": true, "signed": true, "unsigned": true,
	"short": true, "long": true, "int": true, "char": true, "float": true,
	"double": true, "void": true, "extern": true, "static": true,
	"register": true, "auto": true, "inline": true, "_Bool": true,
	"bool": true, "wchar_t": true, "restrict": true,
}

type parser struct {
	s     *scan.Scanner
	cfg   Config
	u     *stype.Universe
	anon  int
	depth int
}

func (p *parser) errorf(at scan.Token, format string, args ...interface{}) error {
	return p.s.Errorf(at, format, args...)
}

// enter guards a recursive descent step against the depth budget; every
// enter must be paired with leave. The same cap bounds iteratively built
// type chains (pointers, array suffixes) because later recursive walks
// over the resulting Stype are only as deep as the parsed nesting.
func (p *parser) enter(at scan.Token) error {
	p.depth++
	if p.depth > p.s.Budget().MaxDepth {
		return limits.Exceededf("%d:%d: declaration nesting exceeds depth budget of %d",
			at.Line, at.Col, p.s.Budget().MaxDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) unit() error {
	for {
		t := p.s.Peek()
		if t.Kind == scan.TokEOF {
			return p.s.Err()
		}
		if err := p.declaration(); err != nil {
			return err
		}
	}
}

// declaration parses one top-level declaration.
func (p *parser) declaration() error {
	// Storage-class keywords are accepted and ignored.
	for p.s.AcceptIdent("extern") || p.s.AcceptIdent("static") || p.s.AcceptIdent("inline") {
	}
	if p.s.AcceptIdent("typedef") {
		return p.typedefDecl()
	}
	base, err := p.specifier()
	if err != nil {
		return err
	}
	// A bare `struct X {...};` or `enum E {...};` definition.
	if p.s.Accept(";") {
		return nil
	}
	// Otherwise: one or more declarators (function or variable decls).
	for {
		name, ty, err := p.declarator(base)
		if err != nil {
			return err
		}
		if name == "" {
			return p.errorf(p.s.Peek(), "declaration requires a name")
		}
		if ty.Kind == stype.KFunc {
			if _, err := p.u.Add(name, ty); err != nil {
				return p.errorf(p.s.Peek(), "%v", err)
			}
		} else {
			// Global variable declarations carry no interface information;
			// they are parsed and dropped.
		}
		if p.s.Accept(",") {
			continue
		}
		if _, err := p.s.Expect(";"); err != nil {
			return err
		}
		return nil
	}
}

func (p *parser) typedefDecl() error {
	base, err := p.specifier()
	if err != nil {
		return err
	}
	for {
		name, ty, err := p.declarator(base)
		if err != nil {
			return err
		}
		if name == "" {
			return p.errorf(p.s.Peek(), "typedef requires a name")
		}
		// The C idiom `typedef struct Point {...} Point;` re-declares the
		// tag name; treat it as the same declaration.
		if !(ty.Kind == stype.KNamed && ty.Name == name) {
			if _, err := p.u.Add(name, ty); err != nil {
				return p.errorf(p.s.Peek(), "%v", err)
			}
		}
		if p.s.Accept(",") {
			// Each subsequent declarator restarts from the same base type:
			// `typedef int a, *b;`.
			continue
		}
		if _, err := p.s.Expect(";"); err != nil {
			return err
		}
		return nil
	}
}

// specifier parses a declaration specifier: qualifiers plus exactly one
// base type (builtin combination, struct/union/enum, or typedef name).
func (p *parser) specifier() (*stype.Type, error) {
	var (
		sawUnsigned, sawSigned bool
		longs, shorts          int
		base                   string
		result                 *stype.Type
	)
	at := p.s.Peek()
	if err := p.enter(at); err != nil {
		return nil, err
	}
	defer p.leave()
	for {
		t := p.s.Peek()
		if t.Kind != scan.TokIdent {
			break
		}
		switch t.Text {
		case "const", "volatile", "restrict":
			p.s.Next()
		case "unsigned":
			p.s.Next()
			sawUnsigned = true
		case "signed":
			p.s.Next()
			sawSigned = true
		case "long":
			p.s.Next()
			longs++
		case "short":
			p.s.Next()
			shorts++
		case "int", "char", "float", "double", "void", "_Bool", "bool", "wchar_t":
			p.s.Next()
			if base != "" {
				return nil, p.errorf(t, "multiple base types (%s and %s)", base, t.Text)
			}
			base = t.Text
		case "struct", "union":
			p.s.Next()
			ty, err := p.structSpec(t.Text == "union")
			if err != nil {
				return nil, err
			}
			result = ty
		case "enum":
			p.s.Next()
			ty, err := p.enumSpec()
			if err != nil {
				return nil, err
			}
			result = ty
		default:
			if cKeywords[t.Text] {
				return nil, p.errorf(t, "unexpected keyword %q", t.Text)
			}
			// A typedef name is only consumed when no builtin base has
			// been seen; this keeps `unsigned x;` (x the declarator)
			// working.
			if base == "" && result == nil && !sawUnsigned && !sawSigned && longs == 0 && shorts == 0 {
				p.s.Next()
				result = stype.NewNamed(t.Text)
			}
			goto done
		}
		if result != nil {
			// struct/union/enum/typedef base does not combine with more
			// base keywords; qualifiers afterwards are still allowed.
			for p.s.AcceptIdent("const") || p.s.AcceptIdent("volatile") {
			}
			goto done
		}
	}
done:
	if result != nil {
		return result, nil
	}
	prim, err := p.primFor(base, sawUnsigned, sawSigned, longs, shorts, at)
	if err != nil {
		return nil, err
	}
	return stype.NewPrim(prim), nil
}

func (p *parser) primFor(base string, uns, sgn bool, longs, shorts int, at scan.Token) (stype.Prim, error) {
	if uns && sgn {
		return 0, p.errorf(at, "both signed and unsigned")
	}
	if longs > 0 && shorts > 0 {
		return 0, p.errorf(at, "both long and short")
	}
	if longs > 2 {
		return 0, p.errorf(at, "too many 'long'")
	}
	switch base {
	case "void":
		return stype.PVoid, nil
	case "_Bool", "bool":
		return stype.PBool, nil
	case "char":
		switch {
		case uns:
			return stype.PU8, nil
		case sgn:
			return stype.PI8, nil
		default:
			// Plain char holds characters by programming convention
			// (§3.1); lowering maps PChar8 to a Character Mtype unless
			// annotated otherwise.
			return stype.PChar8, nil
		}
	case "wchar_t":
		return stype.PChar16, nil
	case "float":
		return stype.PF32, nil
	case "double":
		// long double is mapped to binary64; the paper's platforms used
		// 64-bit long double.
		return stype.PF64, nil
	case "int", "":
		if base == "" && longs == 0 && shorts == 0 && !uns && !sgn {
			return 0, p.errorf(at, "expected type")
		}
		switch {
		case shorts > 0:
			if uns {
				return stype.PU16, nil
			}
			return stype.PI16, nil
		case longs == 2:
			if uns {
				return stype.PU64, nil
			}
			return stype.PI64, nil
		case longs == 1:
			if p.cfg.Model == ModelLP64 {
				if uns {
					return stype.PU64, nil
				}
				return stype.PI64, nil
			}
			if uns {
				return stype.PU32, nil
			}
			return stype.PI32, nil
		default:
			if uns {
				return stype.PU32, nil
			}
			return stype.PI32, nil
		}
	default:
		return 0, p.errorf(at, "unsupported base type %q", base)
	}
}

// structSpec parses `struct tag? { members }?`. A definition with a tag is
// registered as a declaration and referenced by name; an anonymous
// definition yields an inline node.
func (p *parser) structSpec(isUnion bool) (*stype.Type, error) {
	kind := stype.KStruct
	word := "struct"
	if isUnion {
		kind = stype.KUnion
		word = "union"
	}
	var tag string
	if t := p.s.Peek(); t.Kind == scan.TokIdent && !cKeywords[t.Text] {
		p.s.Next()
		tag = t.Text
	}
	if !p.s.Accept("{") {
		if tag == "" {
			return nil, p.errorf(p.s.Peek(), "%s requires a tag or a body", word)
		}
		return stype.NewNamed(tag), nil
	}
	node := &stype.Type{Kind: kind, Name: tag}
	for !p.s.Accept("}") {
		if p.s.Peek().Kind == scan.TokEOF {
			return nil, p.errorf(p.s.Peek(), "unterminated %s body", word)
		}
		base, err := p.specifier()
		if err != nil {
			return nil, err
		}
		for {
			name, ty, err := p.declarator(base)
			if err != nil {
				return nil, err
			}
			// Bit-field: `int flags : 3;` — record the width as a range
			// annotation so the Mtype gets the precise value set.
			if p.s.Accept(":") {
				widthTok := p.s.Next()
				width, werr := strconv.Atoi(widthTok.Text)
				if werr != nil || width <= 0 || width > 64 {
					return nil, p.errorf(widthTok, "invalid bit-field width %q", widthTok.Text)
				}
				ty = p.bitfieldType(ty, width)
			}
			if name == "" {
				return nil, p.errorf(p.s.Peek(), "member requires a name")
			}
			node.Fields = append(node.Fields, stype.Field{Name: name, Type: ty})
			if p.s.Accept(",") {
				continue
			}
			if _, err := p.s.Expect(";"); err != nil {
				return nil, err
			}
			break
		}
	}
	if tag == "" {
		return node, nil
	}
	if _, err := p.u.Add(tag, node); err != nil {
		return nil, p.errorf(p.s.Peek(), "%v", err)
	}
	return stype.NewNamed(tag), nil
}

// bitfieldType narrows an integer member type to the declared width via a
// range annotation.
func (p *parser) bitfieldType(ty *stype.Type, width int) *stype.Type {
	signed := true
	if ty.Kind == stype.KPrim {
		switch ty.Prim {
		case stype.PU8, stype.PU16, stype.PU32, stype.PU64, stype.PBool:
			signed = false
		}
	}
	out := *ty
	if signed {
		lo := -(int64(1) << (width - 1))
		hi := (int64(1) << (width - 1)) - 1
		out.Ann.Range = &stype.RangeAnn{Lo: strconv.FormatInt(lo, 10), Hi: strconv.FormatInt(hi, 10)}
	} else {
		var hi uint64
		if width == 64 {
			hi = ^uint64(0)
		} else {
			hi = (uint64(1) << width) - 1
		}
		out.Ann.Range = &stype.RangeAnn{Lo: "0", Hi: strconv.FormatUint(hi, 10)}
	}
	return &out
}

// enumSpec parses `enum tag? { A, B = 3, C }?`.
func (p *parser) enumSpec() (*stype.Type, error) {
	var tag string
	if t := p.s.Peek(); t.Kind == scan.TokIdent && !cKeywords[t.Text] {
		p.s.Next()
		tag = t.Text
	}
	if !p.s.Accept("{") {
		if tag == "" {
			return nil, p.errorf(p.s.Peek(), "enum requires a tag or a body")
		}
		return stype.NewNamed(tag), nil
	}
	node := &stype.Type{Kind: stype.KEnum, Name: tag}
	for !p.s.Accept("}") {
		nameTok, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		node.EnumNames = append(node.EnumNames, nameTok.Text)
		if p.s.Accept("=") {
			// Enumerator values are parsed (sign + literal) and ignored:
			// §3.1 lowers an n-element enum to Integer 0..n-1 regardless.
			p.s.Accept("-")
			v := p.s.Next()
			if v.Kind != scan.TokNumber && v.Kind != scan.TokIdent && v.Kind != scan.TokChar {
				return nil, p.errorf(v, "invalid enumerator value %s", v)
			}
		}
		if !p.s.Accept(",") {
			if _, err := p.s.Expect("}"); err != nil {
				return nil, err
			}
			break
		}
	}
	if tag == "" {
		p.anon++
		tag = fmt.Sprintf("enum$%d", p.anon)
		node.Name = tag
	}
	if _, err := p.u.Add(tag, node); err != nil {
		return nil, p.errorf(p.s.Peek(), "%v", err)
	}
	return stype.NewNamed(tag), nil
}

// declarator parses a (possibly abstract) C declarator applied to base,
// returning the declared name ("" for abstract declarators) and the full
// type. The base node is cloned so every declaration site gets its own
// node for per-use annotation (`float x, y;` yields two float nodes).
func (p *parser) declarator(base *stype.Type) (string, *stype.Type, error) {
	copied := *base
	return p.declaratorNoClone(&copied)
}

// declaratorNoClone is declarator without the defensive copy; the paren
// declarator branch needs the base pointer preserved for hole
// substitution.
func (p *parser) declaratorNoClone(base *stype.Type) (string, *stype.Type, error) {
	stars := 0
	for p.s.Accept("*") {
		if stars++; stars > p.s.Budget().MaxDepth {
			return "", nil, limits.Exceededf("pointer chain exceeds depth budget of %d",
				p.s.Budget().MaxDepth)
		}
		for p.s.AcceptIdent("const") || p.s.AcceptIdent("volatile") || p.s.AcceptIdent("restrict") {
		}
		base = stype.NewPointer(base)
	}
	return p.directDeclarator(base)
}

// directDeclarator handles names, parenthesized declarators, and the
// array/function suffixes, with standard C inside-out application.
func (p *parser) directDeclarator(base *stype.Type) (string, *stype.Type, error) {
	var (
		name  string
		inner func(*stype.Type) (string, *stype.Type, error)
	)
	t := p.s.Peek()
	if err := p.enter(t); err != nil {
		return "", nil, err
	}
	defer p.leave()
	switch {
	case t.Kind == scan.TokIdent && !cKeywords[t.Text]:
		p.s.Next()
		name = t.Text
	case t.Kind == scan.TokPunct && t.Text == "(" && p.isParenDeclarator():
		p.s.Next()
		// Capture the inner declarator's tokens by re-parsing: parse it
		// against a placeholder now and re-apply later. We parse the inner
		// declarator eagerly against a hole type and substitute.
		hole := &stype.Type{Kind: stype.KPrim, Prim: stype.PVoid}
		innerName, innerTy, err := p.declaratorNoClone(hole)
		if err != nil {
			return "", nil, err
		}
		if _, err := p.s.Expect(")"); err != nil {
			return "", nil, err
		}
		inner = func(actual *stype.Type) (string, *stype.Type, error) {
			substituted := substituteHole(innerTy, hole, actual)
			return innerName, substituted, nil
		}
	}

	// Parse suffixes in source order.
	type suffix struct {
		isArray bool
		length  int
		params  []stype.Param
	}
	var suffixes []suffix
	for {
		if len(suffixes) > p.s.Budget().MaxDepth {
			return "", nil, limits.Exceededf("declarator suffixes exceed depth budget of %d",
				p.s.Budget().MaxDepth)
		}
		if p.s.Accept("[") {
			length := -1
			if !p.s.Accept("]") {
				numTok := p.s.Next()
				n, err := strconv.Atoi(numTok.Text)
				if err != nil || n < 0 {
					return "", nil, p.errorf(numTok, "invalid array length %q", numTok.Text)
				}
				length = n
				if _, err := p.s.Expect("]"); err != nil {
					return "", nil, err
				}
			}
			suffixes = append(suffixes, suffix{isArray: true, length: length})
			continue
		}
		if p.s.Peek().Kind == scan.TokPunct && p.s.Peek().Text == "(" {
			p.s.Next()
			params, err := p.paramList()
			if err != nil {
				return "", nil, err
			}
			suffixes = append(suffixes, suffix{params: params})
			continue
		}
		break
	}

	// Apply suffixes right-to-left so the leftmost binds outermost:
	// T D[2][3] is array 2 of array 3 of T.
	ty := base
	for i := len(suffixes) - 1; i >= 0; i-- {
		sfx := suffixes[i]
		if sfx.isArray {
			ty = stype.NewArray(ty, sfx.length)
		} else {
			result := ty
			if result.Kind == stype.KPrim && result.Prim == stype.PVoid && result.Ann.IsZero() {
				result = nil
			}
			ty = &stype.Type{Kind: stype.KFunc, Params: sfx.params, Result: result}
		}
	}
	if inner != nil {
		return inner(ty)
	}
	return name, ty, nil
}

// isParenDeclarator distinguishes a parenthesized declarator `(*f)` from a
// function suffix `(int x)` by looking at the token after "(".
func (p *parser) isParenDeclarator() bool {
	next := p.s.Peek2()
	if next.Kind == scan.TokPunct && (next.Text == "*" || next.Text == "(") {
		return true
	}
	// `(name)` where name is not a type keyword is a paren declarator.
	return next.Kind == scan.TokIdent && !cKeywords[next.Text] && !p.looksLikeTypeName(next.Text)
}

// looksLikeTypeName reports whether the identifier names an
// already-declared type, which makes `(name ...)` a parameter list.
func (p *parser) looksLikeTypeName(name string) bool {
	return p.u.Lookup(name) != nil
}

// substituteHole rebuilds ty with every occurrence of hole replaced by
// actual. Inner declarators are small, so a recursive copy is fine.
func substituteHole(ty, hole, actual *stype.Type) *stype.Type {
	if ty == hole {
		return actual
	}
	out := *ty
	if ty.ElemType != nil {
		out.ElemType = substituteHole(ty.ElemType, hole, actual)
	}
	if ty.Result != nil {
		out.Result = substituteHole(ty.Result, hole, actual)
	}
	if len(ty.Params) > 0 {
		out.Params = make([]stype.Param, len(ty.Params))
		for i, prm := range ty.Params {
			out.Params[i] = stype.Param{Name: prm.Name, Type: substituteHole(prm.Type, hole, actual)}
		}
	}
	return &out
}

// paramList parses a function parameter list after "(" up to and including
// ")".
func (p *parser) paramList() ([]stype.Param, error) {
	if p.s.Accept(")") {
		return nil, nil
	}
	// `(void)` means no parameters.
	if t := p.s.Peek(); t.Kind == scan.TokIdent && t.Text == "void" {
		if n := p.s.Peek2(); n.Kind == scan.TokPunct && n.Text == ")" {
			p.s.Next()
			p.s.Next()
			return nil, nil
		}
	}
	var params []stype.Param
	for {
		t := p.s.Peek()
		if t.Kind == scan.TokPunct && t.Text == "..." {
			return nil, p.errorf(t, "variadic functions cannot be stubbed")
		}
		base, err := p.specifier()
		if err != nil {
			return nil, err
		}
		name, ty, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		// A parameter declared with array syntax decays to an array of
		// indefinite size at the interface level; we keep the KArray node
		// (rather than a pointer) because that is what the programmer
		// wrote and what annotation targets.
		params = append(params, stype.Param{Name: name, Type: ty})
		if p.s.Accept(",") {
			continue
		}
		if _, err := p.s.Expect(")"); err != nil {
			return nil, err
		}
		return params, nil
	}
}

// MustParse is a test helper: it parses src and panics on error.
func MustParse(src string) *stype.Universe {
	u, err := Parse("<test>", src, Config{})
	if err != nil {
		panic(fmt.Sprintf("cparse.MustParse: %v\nsource:\n%s", err, strings.TrimSpace(src)))
	}
	return u
}
