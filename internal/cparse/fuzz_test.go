package cparse

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/limits"
)

// FuzzCParse feeds arbitrary bytes to the C parser under a small budget:
// any outcome except a panic or a hang is acceptable, and when the
// parser does reject on resources the error must be the typed budget
// sentinel.
func FuzzCParse(f *testing.F) {
	f.Add(`typedef float point[2];`)
	f.Add(`void fitter(point pts[], int count, point *start, point *end);`)
	f.Add(`struct P { float x, y; int flags : 3; };`)
	f.Add(`union U { int i; float f; };`)
	f.Add(`enum E { A, B = 2, C };`)
	f.Add(`typedef void (*cb)(int, float);`)
	f.Add("typedef int " + strings.Repeat("(*", 40) + "x" + strings.Repeat(")", 40) + ";")
	f.Add(strings.Repeat("struct A { ", 30) + "int x;" + strings.Repeat(" };", 30))
	f.Fuzz(func(t *testing.T, src string) {
		b := limits.Budget{MaxBytes: 1 << 16, MaxTokens: 1 << 12, MaxDepth: 64}
		_, err := Parse("fuzz.h", src, Config{Budget: b})
		if err != nil && strings.Contains(err.Error(), "budget") && !errors.Is(err, limits.ErrBudget) {
			t.Errorf("budget-shaped error not typed: %v", err)
		}
	})
}
