package cparse

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics drives the parser with mutated fragments of valid
// input: every outcome must be a parse result or an error, never a panic
// or a hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`typedef float point[2];`,
		`void fitter(point pts[], int count, point *start, point *end);`,
		`struct P { float x, y; int flags : 3; };`,
		`union U { int i; float f; };`,
		`enum E { A, B = 2, C };`,
		`typedef void (*cb)(int, float);`,
		`int (*poa)[3];`,
	}
	tokens := []string{
		"typedef", "struct", "union", "enum", "int", "float", "void",
		"*", "[", "]", "(", ")", "{", "}", ";", ",", ":", "=", "x", "2",
		"unsigned", "long", "const", "...",
	}
	f := func(seed int64, cut, ins uint8) bool {
		src := seeds[int(uint64(seed)%uint64(len(seeds)))]
		pos := int(cut) % (len(src) + 1)
		tok := tokens[int(ins)%len(tokens)]
		mutated := src[:pos] + " " + tok + " " + src[pos:]
		// Must not panic; errors are fine.
		_, _ = Parse("fuzz.h", mutated, Config{})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserHandlesGarbage(t *testing.T) {
	garbage := []string{
		"",
		";;;;",
		"}{",
		"typedef typedef typedef",
		strings.Repeat("(", 100),
		strings.Repeat("struct A { struct B { ", 50),
		"\x00\x01\x02",
		"typedef int x; \xff\xfe",
		"int f(int f(int f(int)));",
	}
	for _, src := range garbage {
		_, _ = Parse("garbage.h", src, Config{}) // must not panic or hang
	}
}

func TestDeeplyNestedDeclarators(t *testing.T) {
	// Deep but finite nesting must terminate.
	src := "typedef int " + strings.Repeat("(*", 50) + "x" + strings.Repeat(")", 50) + ";"
	_, _ = Parse("deep.h", src, Config{})
}
