package cparse

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/limits"
)

// TestParserNeverPanics drives the parser with mutated fragments of valid
// input: every outcome must be a parse result or an error, never a panic
// or a hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`typedef float point[2];`,
		`void fitter(point pts[], int count, point *start, point *end);`,
		`struct P { float x, y; int flags : 3; };`,
		`union U { int i; float f; };`,
		`enum E { A, B = 2, C };`,
		`typedef void (*cb)(int, float);`,
		`int (*poa)[3];`,
	}
	tokens := []string{
		"typedef", "struct", "union", "enum", "int", "float", "void",
		"*", "[", "]", "(", ")", "{", "}", ";", ",", ":", "=", "x", "2",
		"unsigned", "long", "const", "...",
	}
	f := func(seed int64, cut, ins uint8) bool {
		src := seeds[int(uint64(seed)%uint64(len(seeds)))]
		pos := int(cut) % (len(src) + 1)
		tok := tokens[int(ins)%len(tokens)]
		mutated := src[:pos] + " " + tok + " " + src[pos:]
		// Must not panic; errors are fine.
		_, _ = Parse("fuzz.h", mutated, Config{})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserHandlesGarbage(t *testing.T) {
	garbage := []string{
		"",
		";;;;",
		"}{",
		"typedef typedef typedef",
		strings.Repeat("(", 100),
		strings.Repeat("struct A { struct B { ", 50),
		"\x00\x01\x02",
		"typedef int x; \xff\xfe",
		"int f(int f(int f(int)));",
	}
	for _, src := range garbage {
		_, _ = Parse("garbage.h", src, Config{}) // must not panic or hang
	}
}

func TestDeeplyNestedDeclarators(t *testing.T) {
	// Deep but finite nesting must terminate.
	src := "typedef int " + strings.Repeat("(*", 50) + "x" + strings.Repeat(")", 50) + ";"
	_, _ = Parse("deep.h", src, Config{})
}

// TestInputBudgets drives each budget axis past its limit: every case
// must surface a typed error wrapping limits.ErrBudget, never a stack
// overflow or a masked syntax diagnosis.
func TestInputBudgets(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		budget limits.Budget
	}{
		{"deep declarator nesting",
			"typedef int " + strings.Repeat("(*", 300) + "x" + strings.Repeat(")", 300) + ";",
			limits.Budget{}},
		{"pointer chain bomb",
			"typedef int " + strings.Repeat("*", 500) + "x;",
			limits.Budget{}},
		{"deep struct nesting",
			strings.Repeat("struct A { ", 300) + "int x;" + strings.Repeat(" };", 300),
			limits.Budget{}},
		{"array suffix bomb",
			"typedef int x" + strings.Repeat("[2]", 300) + ";",
			limits.Budget{}},
		{"oversized input",
			"typedef int a_rather_long_name_for_an_int;",
			limits.Budget{MaxBytes: 16}},
		{"token bomb",
			"typedef struct { int a, b, c, d, e, f, g, h; } s;",
			limits.Budget{MaxTokens: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("hostile.h", tc.src, Config{Budget: tc.budget})
			if !errors.Is(err, limits.ErrBudget) {
				t.Errorf("err = %v, want limits.ErrBudget", err)
			}
		})
	}
	// A tight but sufficient budget must not reject honest input.
	if _, err := Parse("ok.h", "typedef int t;", Config{Budget: limits.Budget{MaxBytes: 64, MaxTokens: 16, MaxDepth: 8}}); err != nil {
		t.Errorf("honest input rejected: %v", err)
	}
}
