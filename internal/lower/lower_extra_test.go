package lower

import (
	"strings"
	"testing"

	"repro/internal/annotate"
	"repro/internal/idlparse"
	"repro/internal/javaparse"
	"repro/internal/mtype"
	"repro/internal/stype"
)

func TestRootClassByRefAnnotation(t *testing.T) {
	u := javaparse.MustParse(`class Svc { int call(int x) { return x; } int state; }`)
	if _, err := annotate.ApplyScript(u, "annotate Svc byref"); err != nil {
		t.Fatal(err)
	}
	ty, err := New(u).Decl("Svc")
	if err != nil {
		t.Fatal(err)
	}
	if ty.Kind() != mtype.KindPort {
		t.Errorf("byref root = %s, want port", ty.Kind())
	}
}

func TestRootClassByValueAnnotation(t *testing.T) {
	u := javaparse.MustParse(`class Data { int a; int call() { return a; } }`)
	if _, err := annotate.ApplyScript(u, "annotate Data byvalue"); err != nil {
		t.Fatal(err)
	}
	ty, err := New(u).Decl("Data")
	if err != nil {
		t.Fatal(err)
	}
	if ty.Kind() != mtype.KindRecord {
		t.Errorf("byvalue root = %s, want record", ty.Kind())
	}
}

func TestRootCollection(t *testing.T) {
	u := javaparse.MustParse(`
		class Item { int id; }
		class Items extends java.util.Vector;
	`)
	if _, err := annotate.ApplyScript(u, "annotate Items collection-of=Item element-nonnull"); err != nil {
		t.Fatal(err)
	}
	ty, err := New(u).Decl("Items")
	if err != nil {
		t.Fatal(err)
	}
	want := mtype.NewList(mtype.RecordOf(mtype.NewIntegerBits(32, true)))
	if mtype.Fingerprint(ty) != mtype.Fingerprint(want) {
		t.Errorf("collection root = %s", ty)
	}
}

func TestMethodlessClassRootIsPortWhenEmpty(t *testing.T) {
	u := javaparse.MustParse(`class Marker {}`)
	ty, err := New(u).Decl("Marker")
	if err != nil {
		t.Fatal(err)
	}
	// No fields, no methods: an object port accepting nothing.
	if ty.Kind() != mtype.KindPort || ty.Elem().Kind() != mtype.KindUnit {
		t.Errorf("empty class root = %s", ty)
	}
}

func TestRepertoireOverride(t *testing.T) {
	u := javaparse.MustParse(`class C { char ascii7; }`)
	if _, err := annotate.ApplyScript(u, "annotate C.ascii7 repertoire=ascii"); err != nil {
		t.Fatal(err)
	}
	ty, err := New(u).Decl("C")
	if err != nil {
		t.Fatal(err)
	}
	ch := ty.Fields()[0].Type
	if ch.Kind() != mtype.KindCharacter || ch.Repertoire() != mtype.RepASCII {
		t.Errorf("annotated char = %s", ch)
	}
}

func TestBadRepertoireRejected(t *testing.T) {
	u := javaparse.MustParse(`class C { char c; }`)
	u.Lookup("C").Type.Fields[0].Type.Ann.Repertoire = "klingon"
	if _, err := New(u).Decl("C"); err == nil {
		t.Error("bogus repertoire accepted")
	}
}

func TestBadRangeRejected(t *testing.T) {
	u := javaparse.MustParse(`class C { int v; }`)
	u.Lookup("C").Type.Fields[0].Type.Ann.Range = &stype.RangeAnn{Lo: "9", Hi: "1"}
	if _, err := New(u).Decl("C"); err == nil {
		t.Error("reversed range annotation accepted")
	}
}

func TestRangeBeyondInt64(t *testing.T) {
	// The §3.1 unsigned-long case: a range up to 2^64-1 must survive
	// lowering and comparison.
	u := javaparse.MustParse(`class C { long v; }`)
	if _, err := annotate.ApplyScript(u, "annotate C.v range=0..18446744073709551615"); err != nil {
		t.Fatal(err)
	}
	ty, err := New(u).Decl("C")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ty.Fields()[0].Type.IntegerRange()
	if lo.Sign() != 0 || hi.String() != "18446744073709551615" {
		t.Errorf("range = [%s..%s]", lo, hi)
	}
}

func TestInterfaceByValueRejected(t *testing.T) {
	u := javaparse.MustParse(`
		interface I { int f(); }
		class H { I ref; }
	`)
	if _, err := annotate.ApplyScript(u, "annotate H.ref byvalue nonnull"); err != nil {
		t.Fatal(err)
	}
	_, err := New(u).Decl("H")
	if err == nil || !strings.Contains(err.Error(), "by value") {
		t.Errorf("interface by value accepted: %v", err)
	}
}

func TestEmptyEnumRejected(t *testing.T) {
	u := idlparse.MustParse(`struct S { long x; };`)
	// Construct an invalid empty enum by hand.
	d := u.Lookup("S")
	d.Type.Fields[0].Type.Kind = stype.KEnum
	if _, err := New(u).Decl("S"); err == nil {
		t.Error("empty enum accepted")
	}
}

func TestAttributeLowering(t *testing.T) {
	u := idlparse.MustParse(`
		interface Acct { readonly attribute long balance; };
	`)
	ty, err := New(u).Decl("Acct")
	if err != nil {
		t.Fatal(err)
	}
	// One getter method: port(Record(reply-port)).
	if ty.Kind() != mtype.KindPort {
		t.Fatalf("Acct = %s", ty)
	}
	inv := ty.Elem()
	if inv.Kind() != mtype.KindRecord || len(inv.Fields()) != 1 {
		t.Errorf("getter invocation = %s", inv)
	}
}
