package lower

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/annotate"
	"repro/internal/goparse"
	"repro/internal/javaparse"
	"repro/internal/mtype"
)

func lowerGo(t *testing.T, src, script, decl string) *mtype.Type {
	t.Helper()
	u, err := goparse.Parse("t.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if script != "" {
		if _, err := annotate.ApplyScript(u, script); err != nil {
			t.Fatal(err)
		}
	}
	ty, err := New(u).Decl(decl)
	if err != nil {
		t.Fatal(err)
	}
	return ty
}

func lowerGoErr(t *testing.T, src, decl string) error {
	t.Helper()
	u, err := goparse.Parse("t.go", src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(u).Decl(decl)
	return err
}

// TestGoFitterMatchesJava lowers the Go spelling of Figure 1 and checks
// it produces the same port shape as the annotated Java ideal — except
// that Go needed no annotation script: value fields are the containment
// statements.
func TestGoFitterMatchesJava(t *testing.T) {
	goTy := lowerGo(t, `
package fitter
type Point struct {
	X, Y float32
}
type Line struct {
	Start Point
	End   Point
}
type Fitter interface {
	Fit(pts []Point) Line
}`, "", "Fitter")
	want := "port(record(μL1.choice(unit, record(record(real(24,8), real(24,8)), L1)), " +
		"port(record(record(record(real(24,8), real(24,8)), record(real(24,8), real(24,8)))))))"
	if got := goTy.String(); got != want {
		t.Errorf("Go fitter Mtype:\n got %s\nwant %s", got, want)
	}
}

func TestGoEmbeddingFlattens(t *testing.T) {
	ty := lowerGo(t, `
package p
type Base struct {
	ID int64
}
type Child struct {
	Base
	Name bool
}`, "", "Child")
	// Base's fields are spliced where the embedded field sits.
	want := "record(integer[-9223372036854775808..9223372036854775807], integer[0..1])"
	if got := ty.String(); got != want {
		t.Errorf("Child = %s, want %s", got, want)
	}
}

func TestGoEmbeddingShadowing(t *testing.T) {
	// The outer Name shadows the embedded one: Go's promotion rule says
	// the shallowest declaration wins, so the record has one Name.
	ty := lowerGo(t, `
package p
type Base struct {
	Name int64
	Keep bool
}
type Child struct {
	Base
	Name bool
}`, "", "Child")
	want := "record(integer[0..1], integer[0..1])"
	if got := ty.String(); got != want {
		t.Errorf("Child = %s, want %s", got, want)
	}
}

func TestGoSameDepthFieldCollisionIsTypedError(t *testing.T) {
	err := lowerGoErr(t, `
package p
type A struct {
	N int64
}
type B struct {
	N bool
}
type Child struct {
	A
	B
}`, "Child")
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("err = %v, want ErrAmbiguous", err)
	}
	for _, want := range []string{"N", "A", "B"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err %q does not name %s", err, want)
		}
	}
}

func TestGoDiamondEmbeddingCollides(t *testing.T) {
	// A classic diamond: D embeds B and C, both embedding A. A's field
	// is reachable twice at the same depth — ambiguous, like Go itself
	// rules (selectors must be unique at the shallowest depth).
	err := lowerGoErr(t, `
package p
type A struct {
	N int64
}
type B struct {
	A
}
type C struct {
	A
}
type D struct {
	B
	C
}`, "D")
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("err = %v, want ErrAmbiguous", err)
	}
}

func TestGoEmbeddingCycleIsError(t *testing.T) {
	err := lowerGoErr(t, `
package p
type A struct {
	B
}
type B struct {
	A
}`, "A")
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want embedding cycle", err)
	}
}

func TestGoUnexportedMembersSkipped(t *testing.T) {
	ty := lowerGo(t, `
package p
type T struct {
	Public int64
	hidden bool
}`, "", "T")
	want := "record(integer[-9223372036854775808..9223372036854775807])"
	if got := ty.String(); got != want {
		t.Errorf("T = %s, want %s", got, want)
	}

	iface := lowerGo(t, `
package p
type I interface {
	Public()
	hidden()
}`, "", "I")
	// One alternative: the unexported method is not wire contract.
	if got := iface.String(); strings.Count(got, "port") != 2 {
		t.Errorf("I = %s, want exactly the Public invocation and its reply", got)
	}
}

func TestGoInterfaceEmbeddingPromotesMethods(t *testing.T) {
	ty := lowerGo(t, `
package p
type Closer interface {
	Close() bool
}
type File interface {
	Closer
	Size() int64
}`, "", "File")
	if ty.Kind() != mtype.KindPort || ty.Elem().Kind() != mtype.KindChoice {
		t.Fatalf("File = %s", ty)
	}
	if got := len(ty.Elem().Alts()); got != 2 {
		t.Fatalf("File has %d alternatives, want 2 (Close promoted): %s", got, ty)
	}
}

func TestGoInterfaceSameDepthMethodCollision(t *testing.T) {
	err := lowerGoErr(t, `
package p
type A interface {
	M() bool
}
type B interface {
	M() int64
}
type C interface {
	A
	B
}`, "C")
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("err = %v, want ErrAmbiguous", err)
	}
}

// TestJavaDualInterfaceCollision checks the same typed error is
// reachable from the Java frontend: a class implementing two interfaces
// that both declare the method.
func TestJavaDualInterfaceCollision(t *testing.T) {
	u := javaparse.MustParse(`
public interface A { int m(); }
public interface B { boolean m(); }
public class C implements A, B { }
`)
	_, err := New(u).Decl("C")
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("err = %v, want ErrAmbiguous", err)
	}
}

// TestJavaOverrideNotDuplicated: a subclass overriding a base method
// contributes one alternative, not two — the shallower declaration
// shadows the inherited one.
func TestJavaOverrideNotDuplicated(t *testing.T) {
	u := javaparse.MustParse(`
public class Base { public int m() {} }
public class Sub extends Base { public int m() {} }
`)
	ty, err := New(u).Decl("Sub")
	if err != nil {
		t.Fatal(err)
	}
	// One alternative lowers to the invocation record directly — a
	// choice here would mean m was emitted for both Base and Sub.
	if ty.Kind() != mtype.KindPort || ty.Elem().Kind() == mtype.KindChoice {
		t.Fatalf("Sub = %s, want a single-alternative port", ty)
	}
	u2 := javaparse.MustParse(`
public interface Base { int m(); }
public interface Sub extends Base { int m(); }
`)
	port, err := New(u2).Decl("Sub")
	if err != nil {
		t.Fatal(err)
	}
	if port.Kind() != mtype.KindPort {
		t.Fatalf("Sub = %s", port)
	}
	// A single alternative lowers to the invocation record directly.
	if port.Elem().Kind() == mtype.KindChoice && len(port.Elem().Alts()) != 1 {
		t.Fatalf("Sub has %d alternatives, want 1 (override shadows): %s", len(port.Elem().Alts()), port)
	}
}

func TestGoPointerIsOptional(t *testing.T) {
	ty := lowerGo(t, `
package p
type T struct {
	Opt *bool
}`, "", "T")
	want := "record(choice(unit, integer[0..1]))"
	if got := ty.String(); got != want {
		t.Errorf("T = %s, want %s", got, want)
	}
}

func TestGoMapIsEntryList(t *testing.T) {
	ty := lowerGo(t, `
package p
type T struct {
	M map[int64]bool
}`, "", "T")
	want := "record(μL1.choice(unit, record(record(integer[-9223372036854775808..9223372036854775807], integer[0..1]), L1)))"
	if got := ty.String(); got != want {
		t.Errorf("T = %s, want %s", got, want)
	}
}

func TestGoInterfaceFieldIsNullableReference(t *testing.T) {
	ty := lowerGo(t, `
package p
type Callback interface {
	Done()
}
type T struct {
	CB Callback
}`, "", "T")
	got := ty.String()
	if !strings.HasPrefix(got, "record(choice(unit, port(") {
		t.Errorf("T = %s, want a nullable object reference field", got)
	}
}
