// Package lower translates annotated Stype declarations into Mtypes,
// implementing §3 of the paper:
//
//   - integral types become Integer Mtypes with language-default ranges,
//     booleans 0..1, enums 0..n-1 (§3.1);
//   - char types become Character Mtypes unless annotated `int` (§3.1);
//   - floats become Real Mtypes (§3.1);
//   - structs, by-value classes, and fixed-size arrays become Records
//     (§3.2);
//   - unions become Choices; nullable pointers and references become
//     Choice(Unit, τ) unless annotated nonnull (§3.2);
//   - indefinite arrays, sequences, Vectors, and recursive declarations
//     become recursive list encodings / cyclic Mtype graphs (§3.2);
//   - functions become port(Record(I, port(O))) and object references
//     port(Choice(invocations)) (§3.3).
//
// Lowering is memoized per declaration variant, so a declaration used in
// many places lowers to one shared (possibly cyclic) Mtype graph.
package lower

import (
	"errors"
	"fmt"
	"math/big"
	"unicode"
	"unicode/utf8"

	"repro/internal/mtype"
	"repro/internal/stype"
)

// ErrAmbiguous reports that two embedded types promote the same member
// name at the same depth, so no single declaration owns it. Go makes the
// colliding selector a compile error at the use site; a wire contract has
// no use site, so the collision is an error at lowering time. Reachable
// from Go embedding and from Java classes implementing two interfaces
// that declare the same method.
var ErrAmbiguous = errors.New("ambiguous promotion")

// Lowerer lowers declarations of one universe. It is not safe for
// concurrent use.
type Lowerer struct {
	u *stype.Universe
	// memo maps (decl, variant) to finished or in-progress Mtypes; an
	// in-progress entry is a Recursive node that becomes a back-edge when
	// re-entered, which is exactly how cyclic declarations produce the
	// cyclic graphs of Figure 8.
	memo map[memoKey]*memoEntry
	// roots memoizes finished, validated root lowerings by declaration
	// name, so a hot Decl is a single map probe instead of a re-walk
	// plus re-validation of the whole graph. Annotation invalidates by
	// replacing the Lowerer wholesale (core.Session.Annotate), so
	// entries can never go stale.
	roots map[string]*mtype.Type
}

type memoKey struct {
	decl    *stype.Decl
	byValue bool
}

type memoEntry struct {
	rec  *mtype.Type // μ placeholder handed to re-entrant references
	done *mtype.Type // final result; nil while in progress
	used bool        // whether the placeholder was referenced
}

// New returns a Lowerer for the universe.
func New(u *stype.Universe) *Lowerer {
	return &Lowerer{
		u:     u,
		memo:  make(map[memoKey]*memoEntry),
		roots: make(map[string]*mtype.Type),
	}
}

// Decl lowers the named declaration to its Mtype.
func (l *Lowerer) Decl(name string) (*mtype.Type, error) {
	if ty, ok := l.roots[name]; ok {
		return ty, nil
	}
	d := l.u.Lookup(name)
	if d == nil {
		return nil, fmt.Errorf("lower: no declaration %q", name)
	}
	ty, err := l.lowerRoot(d)
	if err != nil {
		return nil, err
	}
	if err := mtype.Validate(ty); err != nil {
		return nil, fmt.Errorf("lower: %s: %w", name, err)
	}
	l.roots[name] = ty
	return ty, nil
}

// lowerRoot lowers a declaration presented directly to the tool (the types
// a programmer selects in the Comparer).
func (l *Lowerer) lowerRoot(d *stype.Decl) (*mtype.Type, error) {
	t := d.Type
	switch t.Kind {
	case stype.KFunc:
		return l.lowerFunc(t.Params, t.Result, false)
	case stype.KInterface:
		return l.lowerObjectPort(d)
	case stype.KClass:
		// A class decl at the root is inspected as a value shape when it
		// has fields (the §2 Point/Line usage) and as an object port when
		// it only has methods, unless byvalue/byref says otherwise.
		if byValue, set := annByValue(t.Ann); set {
			if byValue {
				return l.lowerDeclValue(d)
			}
			return l.lowerObjectPort(d)
		}
		if IsCollection(l.u, d) {
			return l.lowerCollection(d, t.Ann)
		}
		if len(t.Fields) > 0 {
			return l.lowerDeclValue(d)
		}
		return l.lowerObjectPort(d)
	default:
		return l.lowerDeclValue(d)
	}
}

func annByValue(a stype.Ann) (byValue, set bool) {
	if a.ByValue != nil {
		return *a.ByValue, true
	}
	return false, false
}

// lowerDeclValue lowers a declaration's content by value, memoized so that
// recursive declarations become cyclic graphs.
func (l *Lowerer) lowerDeclValue(d *stype.Decl) (*mtype.Type, error) {
	key := memoKey{decl: d, byValue: true}
	if e, ok := l.memo[key]; ok {
		if e.done != nil {
			return e.done, nil
		}
		// Re-entered while in progress: hand out the μ node.
		e.used = true
		return e.rec, nil
	}
	e := &memoEntry{rec: mtype.NewRecursive().SetTag(d.Name)}
	l.memo[key] = e
	body, err := l.lowerValue(d.Type)
	if err != nil {
		delete(l.memo, key)
		return nil, err
	}
	if e.used {
		e.rec.SetBody(body)
		e.done = e.rec
	} else {
		e.done = body
	}
	return e.done, nil
}

// lowerObjectPort lowers a class/interface declaration as an object
// reference target: port(Choice(invocation Mtypes)), collapsing a
// single-method object to port(invocation) (§3.3, §3.4). Methods of base
// interfaces/classes are included, innermost last.
func (l *Lowerer) lowerObjectPort(d *stype.Decl) (*mtype.Type, error) {
	key := memoKey{decl: d, byValue: false}
	if e, ok := l.memo[key]; ok {
		if e.done != nil {
			return e.done, nil
		}
		e.used = true
		return e.rec, nil
	}
	e := &memoEntry{rec: mtype.NewRecursive().SetTag(d.Name)}
	l.memo[key] = e

	methods, err := l.collectMethods(d, nil)
	if err != nil {
		delete(l.memo, key)
		return nil, err
	}
	var alts []mtype.Alt
	for _, m := range methods {
		if m.Ann.Ignore {
			continue
		}
		inv, err := l.lowerInvocation(m)
		if err != nil {
			delete(l.memo, key)
			return nil, fmt.Errorf("method %s.%s: %w", d.Name, m.Name, err)
		}
		alts = append(alts, mtype.Alt{Name: m.Name, Type: inv})
	}
	var elem *mtype.Type
	switch len(alts) {
	case 0:
		elem = mtype.Unit()
	case 1:
		elem = alts[0].Type
	default:
		elem = mtype.NewChoice(alts...)
	}
	body := mtype.NewPort(elem).SetTag(d.Name)
	if e.used {
		e.rec.SetBody(body)
		e.done = e.rec
	} else {
		e.done = body
	}
	return e.done, nil
}

// collectMethods gathers the method set of d: its own methods, the Super
// chain, the Embeds list, and (for Go) value-embedded struct fields,
// walked breadth-first per Go's promotion rules. A name at a shallower
// depth shadows deeper declarations (an override); two distinct
// contributors promoting one name at the same depth wrap ErrAmbiguous.
// Methods are emitted deepest level first, preserving the old
// super-chain ordering (base methods first, own methods last).
func (l *Lowerer) collectMethods(d *stype.Decl, seen map[string]bool) ([]stype.Method, error) {
	if seen == nil {
		seen = make(map[string]bool)
	}
	type claim struct {
		depth int
		owner string
	}
	claimed := make(map[string]claim)
	var levels [][]stype.Method
	level := []*stype.Decl{d}
	seen[d.Name] = true
	for depth := 0; len(level) > 0; depth++ {
		var kept []stype.Method
		var next []*stype.Decl
		for _, decl := range level {
			for _, m := range decl.Type.Methods {
				if l.unexported(m.Name) {
					continue
				}
				if c, ok := claimed[m.Name]; ok {
					if c.depth < depth {
						continue // shadowed by a shallower declaration
					}
					if c.owner != decl.Name {
						return nil, fmt.Errorf(
							"lower: %w: method %s of %s promoted by both %s and %s at depth %d",
							ErrAmbiguous, m.Name, d.Name, c.owner, decl.Name, depth)
					}
					// Same declaration, same depth: an overload set.
				} else {
					claimed[m.Name] = claim{depth: depth, owner: decl.Name}
				}
				kept = append(kept, m)
			}
			for _, b := range l.methodBases(decl) {
				base := l.u.Lookup(b)
				if base == nil {
					// Unknown bases (e.g. external library classes)
					// contribute no methods; java.util.Vector is
					// registered, so this only skips classes outside the
					// loaded set.
					continue
				}
				if seen[base.Name] {
					continue // diamond (or cycle): the first visit wins
				}
				seen[base.Name] = true
				next = append(next, base)
			}
		}
		levels = append(levels, kept)
		level = next
	}
	var out []stype.Method
	for i := len(levels) - 1; i >= 0; i-- {
		out = append(out, levels[i]...)
	}
	return out, nil
}

// methodBases lists the method-set contributors one level below decl: the
// single-inheritance Super, the Embeds list, and Go's value-embedded
// struct fields.
func (l *Lowerer) methodBases(decl *stype.Decl) []string {
	var bases []string
	if decl.Type.Super != "" {
		bases = append(bases, decl.Type.Super)
	}
	bases = append(bases, decl.Type.Embeds...)
	for _, f := range decl.Type.Fields {
		if f.Embedded && f.Type != nil && f.Type.Kind == stype.KNamed {
			bases = append(bases, f.Type.Name)
		}
	}
	return bases
}

// unexported reports that a Go member name is unexported and therefore
// not part of the wire contract. Other languages encode visibility in
// modifiers, which their parsers already honor.
func (l *Lowerer) unexported(name string) bool {
	if l.u.Lang() != stype.LangGo {
		return false
	}
	r, _ := utf8.DecodeRuneInString(name)
	return !unicode.IsUpper(r)
}

// lowerInvocation lowers one method to its invocation Mtype:
// Record(inputs..., port(Record(outputs...))), or Record(inputs...) for
// oneway methods (§3.3).
func (l *Lowerer) lowerInvocation(m stype.Method) (*mtype.Type, error) {
	if m.Oneway {
		inputs, _, err := l.lowerParams(m.Params, nil)
		if err != nil {
			return nil, err
		}
		return mtype.NewRecord(inputs...).SetTag(m.Name), nil
	}
	port, err := l.lowerFunc(m.Params, m.Result, true)
	if err != nil {
		return nil, err
	}
	// lowerFunc returns port(Record(...)); an invocation is the record
	// itself (the object port carries the outer port).
	return port.Elem(), nil
}

// lowerFunc lowers a function to port(Record(I..., port(Record(O...)))).
// Parameters annotated out contribute only to O; inout to both; the result
// is always an output. Parameters named by a sibling's length-from are
// consumed by the length relationship and appear in neither record.
func (l *Lowerer) lowerFunc(params []stype.Param, result *stype.Type, method bool) (*mtype.Type, error) {
	sig, err := SignatureOf(params, result)
	if err != nil {
		return nil, err
	}
	inputs, outputs, err := l.lowerParams(params, &sig)
	if err != nil {
		return nil, err
	}
	reply := mtype.NewPort(mtype.NewRecord(outputs...)).SetTag("reply")
	request := append(inputs, mtype.Field{Name: "reply", Type: reply})
	return mtype.NewPort(mtype.NewRecord(request...)), nil
}

// lowerParams lowers parameters into input and output fields. sig may be
// nil for oneway methods (all inputs).
func (l *Lowerer) lowerParams(params []stype.Param, sig *Signature) ([]mtype.Field, []mtype.Field, error) {
	var inputs, outputs []mtype.Field
	for _, p := range params {
		role := RoleIn
		if sig != nil {
			role = sig.Roles[p.Name]
		}
		if role == RoleLength {
			continue
		}
		ty, err := l.lowerValue(p.Type)
		if err != nil {
			return nil, nil, fmt.Errorf("parameter %s: %w", p.Name, err)
		}
		f := mtype.Field{Name: p.Name, Type: ty}
		switch role {
		case RoleIn:
			inputs = append(inputs, f)
		case RoleOut:
			outputs = append(outputs, f)
		case RoleInOut:
			inputs = append(inputs, f)
			outputs = append(outputs, f)
		}
	}
	if sig != nil && sig.Result != nil {
		ty, err := l.lowerValue(sig.Result)
		if err != nil {
			return nil, nil, fmt.Errorf("result: %w", err)
		}
		outputs = append(outputs, mtype.Field{Name: "return", Type: ty})
	}
	return inputs, outputs, nil
}

// lowerValue lowers a type use to its Mtype, honoring the node's
// annotations.
func (l *Lowerer) lowerValue(t *stype.Type) (*mtype.Type, error) {
	if t == nil {
		return mtype.Unit(), nil
	}
	switch t.Kind {
	case stype.KPrim:
		return l.lowerPrim(t)
	case stype.KNamed:
		return l.lowerNamed(t)
	case stype.KStruct:
		return l.lowerFields(t.Fields, t.Name)
	case stype.KUnion:
		return l.lowerUnion(t)
	case stype.KClass, stype.KInterface:
		// An inline class node (anonymous composite) lowers by value.
		return l.lowerFields(t.Fields, t.Name)
	case stype.KEnum:
		if len(t.EnumNames) == 0 {
			return nil, fmt.Errorf("lower: enum %s has no elements", t.Name)
		}
		return mtype.NewEnum(len(t.EnumNames)).SetTag(t.Name), nil
	case stype.KPointer:
		return l.lowerPointer(t)
	case stype.KArray:
		return l.lowerArray(t)
	case stype.KSequence:
		elem, err := l.lowerValue(t.ElemType)
		if err != nil {
			return nil, err
		}
		return mtype.NewList(elem), nil
	case stype.KFunc:
		return l.lowerFunc(t.Params, t.Result, false)
	default:
		return nil, fmt.Errorf("lower: unsupported node kind %s", t.Kind)
	}
}

func (l *Lowerer) lowerFields(fields []stype.Field, tag string) (*mtype.Type, error) {
	flat, err := l.flattenFields(fields)
	if err != nil {
		return nil, err
	}
	out := make([]mtype.Field, 0, len(flat))
	for _, f := range flat {
		if f.Type != nil && f.Type.Ann.Ignore {
			continue
		}
		ty, err := l.lowerValue(f.Type)
		if err != nil {
			return nil, fmt.Errorf("field %s: %w", f.Name, err)
		}
		out = append(out, mtype.Field{Name: f.Name, Type: ty})
	}
	return mtype.NewRecord(out...).SetTag(tag), nil
}

// flattenFields applies Go's field-promotion rules to embedded struct
// fields: the embedded struct's fields are spliced into the outer record
// in place of the embedded field, recursively. Shadowing follows depth —
// a name declared at a shallower depth hides deeper promotions of the
// same name (the hidden field is dropped from the contract, exactly as
// the promoted selector is inaccessible in Go) — and two distinct
// embedded types promoting one name at the same depth wrap ErrAmbiguous.
// Unexported fields are skipped. Non-Go universes pass through untouched
// (only goparse sets Field.Embedded).
func (l *Lowerer) flattenFields(fields []stype.Field) ([]stype.Field, error) {
	if l.u.Lang() != stype.LangGo {
		return fields, nil
	}
	needs := false
	for _, f := range fields {
		if f.Embedded || l.unexported(f.Name) {
			needs = true
			break
		}
	}
	if !needs {
		return fields, nil
	}
	// Pass 1: claim each promoted name by (depth, owner), erroring on
	// same-depth claims — a second claim at one depth is either a second
	// embedded type or a diamond, and both make the selector ambiguous.
	// The owner at depth 0 is "" (the outer struct itself). Embedding
	// cycles are caught against each group's ancestor path; diamonds
	// re-expand, bounded by maxEmbedGroups.
	type claim struct {
		depth int
		owner string
	}
	claimed := make(map[string]claim)
	type group struct {
		owner  string
		fields []stype.Field
		path   []string
	}
	level := []group{{fields: fields}}
	expanded := 0
	for depth := 0; len(level) > 0; depth++ {
		var next []group
		for _, g := range level {
			for _, f := range g.fields {
				if l.unexported(f.Name) {
					continue
				}
				if target := l.embedTarget(f); target != nil {
					for _, anc := range g.path {
						if anc == target.Name {
							return nil, fmt.Errorf("lower: embedding cycle through %s", target.Name)
						}
					}
					if expanded++; expanded > maxEmbedGroups {
						return nil, fmt.Errorf("lower: embedding expands to more than %d structs", maxEmbedGroups)
					}
					path := append(append([]string(nil), g.path...), target.Name)
					next = append(next, group{owner: target.Name, fields: target.Type.Fields, path: path})
					continue
				}
				if c, ok := claimed[f.Name]; ok {
					if c.depth < depth {
						continue // shadowed by a shallower declaration
					}
					return nil, fmt.Errorf(
						"lower: %w: field %s promoted by both %s and %s at depth %d",
						ErrAmbiguous, f.Name, claimOwner(c.owner), claimOwner(g.owner), depth)
				}
				claimed[f.Name] = claim{depth: depth, owner: g.owner}
			}
		}
		level = next
	}
	// Pass 2: emit in declaration order, splicing embedded structs in
	// place and keeping only each name's claiming occurrence.
	var emit func(fs []stype.Field, depth int, owner string) []stype.Field
	emit = func(fs []stype.Field, depth int, owner string) []stype.Field {
		var out []stype.Field
		for _, f := range fs {
			if l.unexported(f.Name) {
				continue
			}
			if target := l.embedTarget(f); target != nil {
				out = append(out, emit(target.Type.Fields, depth+1, target.Name)...)
				continue
			}
			if c := claimed[f.Name]; c.depth == depth && c.owner == owner {
				out = append(out, f)
			}
		}
		return out
	}
	return emit(fields, 0, ""), nil
}

// maxEmbedGroups bounds diamond re-expansion during field flattening, so
// adversarial embedding lattices cannot blow up exponentially.
const maxEmbedGroups = 1 << 12

func claimOwner(owner string) string {
	if owner == "" {
		return "the outer struct"
	}
	return owner
}

// embedTarget resolves an embedded field to the struct declaration it
// splices in, following typedef chains. Embedded interfaces (and embedded
// names resolving to non-structs) stay ordinary fields.
func (l *Lowerer) embedTarget(f stype.Field) *stype.Decl {
	if !f.Embedded || f.Type == nil || f.Type.Kind != stype.KNamed {
		return nil
	}
	d := f.Type.Target
	if d == nil {
		d = l.u.Lookup(f.Type.Name)
	}
	seen := make(map[string]bool)
	for d != nil && d.Type.Kind == stype.KNamed && !seen[d.Name] {
		seen[d.Name] = true
		d = l.u.Lookup(d.Type.Name)
	}
	if d == nil || d.Type.Kind != stype.KClass {
		return nil
	}
	return d
}

func (l *Lowerer) lowerUnion(t *stype.Type) (*mtype.Type, error) {
	alts := make([]mtype.Alt, 0, len(t.Fields))
	for _, f := range t.Fields {
		if f.Type != nil && f.Type.Ann.Ignore {
			continue
		}
		ty, err := l.lowerValue(f.Type)
		if err != nil {
			return nil, fmt.Errorf("union member %s: %w", f.Name, err)
		}
		alts = append(alts, mtype.Alt{Name: f.Name, Type: ty})
	}
	if len(alts) == 0 {
		return nil, fmt.Errorf("lower: union %s has no members", t.Name)
	}
	return mtype.NewChoice(alts...).SetTag(t.Name), nil
}

// lowerPrim lowers a primitive honoring range/char/repertoire annotations
// (§3.1).
func (l *Lowerer) lowerPrim(t *stype.Type) (*mtype.Type, error) {
	ann := t.Ann
	// Explicit range annotation wins and forces an Integer Mtype.
	if ann.Range != nil {
		lo, ok1 := new(big.Int).SetString(ann.Range.Lo, 10)
		hi, ok2 := new(big.Int).SetString(ann.Range.Hi, 10)
		if !ok1 || !ok2 || lo.Cmp(hi) > 0 {
			return nil, fmt.Errorf("lower: invalid range annotation %s..%s", ann.Range.Lo, ann.Range.Hi)
		}
		return mtype.NewInteger(lo, hi), nil
	}
	asChar := func(defaultChar bool) bool {
		if ann.AsChar != nil {
			return *ann.AsChar
		}
		return defaultChar
	}
	rep := func(def mtype.Repertoire) (mtype.Repertoire, error) {
		switch ann.Repertoire {
		case "":
			return def, nil
		case "ascii":
			return mtype.RepASCII, nil
		case "latin1":
			return mtype.RepLatin1, nil
		case "ucs2":
			return mtype.RepUCS2, nil
		case "unicode":
			return mtype.RepUnicode, nil
		default:
			return 0, fmt.Errorf("lower: unknown repertoire %q", ann.Repertoire)
		}
	}
	switch t.Prim {
	case stype.PVoid:
		return mtype.Unit(), nil
	case stype.PBool:
		return mtype.NewBool(), nil
	case stype.PI8:
		if asChar(false) {
			r, err := rep(mtype.RepLatin1)
			if err != nil {
				return nil, err
			}
			return mtype.NewCharacter(r), nil
		}
		return mtype.NewIntegerBits(8, true), nil
	case stype.PU8:
		if asChar(false) {
			r, err := rep(mtype.RepLatin1)
			if err != nil {
				return nil, err
			}
			return mtype.NewCharacter(r), nil
		}
		return mtype.NewIntegerBits(8, false), nil
	case stype.PI16:
		if asChar(false) {
			r, err := rep(mtype.RepUCS2)
			if err != nil {
				return nil, err
			}
			return mtype.NewCharacter(r), nil
		}
		return mtype.NewIntegerBits(16, true), nil
	case stype.PU16:
		if asChar(false) {
			r, err := rep(mtype.RepUCS2)
			if err != nil {
				return nil, err
			}
			return mtype.NewCharacter(r), nil
		}
		return mtype.NewIntegerBits(16, false), nil
	case stype.PI32:
		if asChar(false) {
			r, err := rep(mtype.RepUnicode)
			if err != nil {
				return nil, err
			}
			return mtype.NewCharacter(r), nil
		}
		return mtype.NewIntegerBits(32, true), nil
	case stype.PU32:
		return mtype.NewIntegerBits(32, false), nil
	case stype.PI64:
		return mtype.NewIntegerBits(64, true), nil
	case stype.PU64:
		return mtype.NewIntegerBits(64, false), nil
	case stype.PF32:
		return mtype.NewFloat32(), nil
	case stype.PF64:
		return mtype.NewFloat64(), nil
	case stype.PChar8:
		// Plain C char holds characters by convention (§3.1); `int`
		// annotation turns it into a signed byte.
		if asChar(true) {
			r, err := rep(mtype.RepLatin1)
			if err != nil {
				return nil, err
			}
			return mtype.NewCharacter(r), nil
		}
		return mtype.NewIntegerBits(8, true), nil
	case stype.PChar16:
		if asChar(true) {
			r, err := rep(mtype.RepUCS2)
			if err != nil {
				return nil, err
			}
			return mtype.NewCharacter(r), nil
		}
		return mtype.NewIntegerBits(16, false), nil
	default:
		return nil, fmt.Errorf("lower: unsupported primitive %s", t.Prim)
	}
}

// lowerNamed lowers a use of a named declaration. For composite targets
// the use-site annotations decide between containment (by value), object
// reference, and nullability (§3.2):
//
//   - byvalue at use or declaration, or nonnull+noalias at use, lowers the
//     target by value (the §3.4 Line-contains-two-Points conclusion);
//   - otherwise classes and interfaces lower as object reference ports;
//   - the result is wrapped in Choice(Unit, τ) unless nonnull.
func (l *Lowerer) lowerNamed(t *stype.Type) (*mtype.Type, error) {
	d := t.Target
	if d == nil {
		d = l.u.Lookup(t.Name)
	}
	if d == nil {
		return nil, fmt.Errorf("lower: unresolved name %q", t.Name)
	}
	ann := t.Ann
	target := d.Type
	switch target.Kind {
	case stype.KPrim, stype.KEnum, stype.KArray, stype.KSequence, stype.KPointer, stype.KFunc:
		// Typedef-like targets: lower the target with the use-site
		// annotation overlaid on the target's own.
		overlaid := *target
		overlaid.Ann = target.Ann.Merge(ann)
		return l.lowerValue(&overlaid)
	case stype.KStruct, stype.KUnion:
		// Structs and unions are values; no reference semantics.
		return l.lowerDeclValue(d)
	case stype.KClass, stype.KInterface:
		core, err := l.lowerClassRef(d, ann)
		if err != nil {
			return nil, err
		}
		if ann.NonNull {
			return core, nil
		}
		return mtype.NewOptional(core), nil
	default:
		return nil, fmt.Errorf("lower: cannot lower reference to %s", target.Kind)
	}
}

// lowerClassRef lowers the referent of a class/interface reference
// (without the nullability wrapper).
func (l *Lowerer) lowerClassRef(d *stype.Decl, use stype.Ann) (*mtype.Type, error) {
	target := d.Type
	// Collections lower to the list encoding regardless of by-value/by-ref.
	if use.CollectionOf != "" || IsCollection(l.u, d) {
		merged := target.Ann.Merge(use)
		return l.lowerCollection(d, merged)
	}
	if ByValueOf(d, use) {
		if target.Kind == stype.KInterface {
			return nil, fmt.Errorf("lower: interface %s cannot be passed by value", d.Name)
		}
		return l.lowerDeclValue(d)
	}
	return l.lowerObjectPort(d)
}

// ByValueOf decides whether a reference to d with the given use-site
// annotation lowers by value (containment) rather than as an object port:
// an explicit byvalue/byref wins; nonnull+noalias implies containment (§3:
// "neither field is ever null and neither may introduce an alias" lets
// Mockingbird conclude every Line contains two different Points); and a
// pure data class (fields, no methods) defaults to by-value because it has
// no behavior to invoke remotely. The binding layer uses the same
// predicate, so the Mtype and the marshaling code cannot disagree.
func ByValueOf(d *stype.Decl, use stype.Ann) bool {
	target := d.Type
	if use.ByValue != nil {
		return *use.ByValue
	}
	if target.Ann.ByValue != nil {
		return *target.Ann.ByValue
	}
	if use.NonNull && use.NoAlias {
		return true
	}
	return target.Kind == stype.KClass && len(target.Methods) == 0 && len(target.Fields) > 0
}

// IsCollection reports whether the declaration is an ordered collection:
// annotated collection-of, or a transitive subclass of one (the Vector
// rule of §3.4).
func IsCollection(u *stype.Universe, d *stype.Decl) bool {
	seen := make(map[string]bool)
	for d != nil && !seen[d.Name] {
		seen[d.Name] = true
		if d.Type.Ann.CollectionOf != "" {
			return true
		}
		if d.Type.Super == "" {
			return false
		}
		d = u.Lookup(d.Type.Super)
	}
	return false
}

// collectionElement resolves the element type name of a collection
// declaration, walking the super chain for the default.
func CollectionElement(u *stype.Universe, d *stype.Decl, ann stype.Ann) string {
	if ann.CollectionOf != "" {
		return ann.CollectionOf
	}
	seen := make(map[string]bool)
	for d != nil && !seen[d.Name] {
		seen[d.Name] = true
		if d.Type.Ann.CollectionOf != "" {
			return d.Type.Ann.CollectionOf
		}
		d = u.Lookup(d.Type.Super)
	}
	return ""
}

// lowerCollection lowers an ordered-collection class to the list encoding.
// Elements are references to the element class, nonnull when
// element-nonnull is annotated.
func (l *Lowerer) lowerCollection(d *stype.Decl, ann stype.Ann) (*mtype.Type, error) {
	elemName := CollectionElement(l.u, d, ann)
	if elemName == "" {
		return nil, fmt.Errorf("lower: %s is a collection of unknown element type", d.Name)
	}
	if l.u.Lookup(elemName) == nil {
		return nil, fmt.Errorf("lower: collection %s: unknown element type %q", d.Name, elemName)
	}
	elemUse := stype.NewNamed(elemName)
	elemUse.Ann.NonNull = ann.ElementNonNull
	// Element containment follows the element class's own annotations.
	elem, err := l.lowerValue(elemUse)
	if err != nil {
		return nil, fmt.Errorf("lower: collection %s: %w", d.Name, err)
	}
	return mtype.NewList(elem).SetTag(d.Name), nil
}

// lowerPointer lowers a C pointer use (§3.2): with a length annotation it
// is an array; otherwise it points at a single value and is nullable
// unless annotated nonnull.
func (l *Lowerer) lowerPointer(t *stype.Type) (*mtype.Type, error) {
	ann := t.Ann
	if ann.FixedLen > 0 {
		elem, err := l.lowerValue(t.ElemType)
		if err != nil {
			return nil, err
		}
		fields := make([]mtype.Field, ann.FixedLen)
		for i := range fields {
			fields[i] = mtype.Field{Type: elem}
		}
		return mtype.NewRecord(fields...), nil
	}
	if ann.LengthFrom != "" {
		elem, err := l.lowerValue(t.ElemType)
		if err != nil {
			return nil, err
		}
		return mtype.NewList(elem), nil
	}
	elem, err := l.lowerValue(t.ElemType)
	if err != nil {
		return nil, err
	}
	if ann.NonNull {
		return elem, nil
	}
	return mtype.NewOptional(elem), nil
}

// lowerArray lowers an array use (§3.2): fixed length to a Record of n
// elements, indefinite length to the recursive list encoding, with
// annotations able to supply either form.
func (l *Lowerer) lowerArray(t *stype.Type) (*mtype.Type, error) {
	length := t.Len
	if t.Ann.FixedLen > 0 {
		length = t.Ann.FixedLen
	}
	elem, err := l.lowerValue(t.ElemType)
	if err != nil {
		return nil, err
	}
	if length >= 0 && t.Ann.LengthFrom == "" {
		fields := make([]mtype.Field, length)
		for i := range fields {
			fields[i] = mtype.Field{Type: elem}
		}
		return mtype.NewRecord(fields...), nil
	}
	return mtype.NewList(elem), nil
}
