package lower

import (
	"fmt"

	"repro/internal/stype"
)

// Role classifies how a parameter participates in an invocation.
type Role uint8

// Parameter roles.
const (
	// RoleIn parameters appear in the request record.
	RoleIn Role = iota + 1
	// RoleOut parameters appear in the reply record only.
	RoleOut
	// RoleInOut parameters appear in both records.
	RoleInOut
	// RoleLength parameters carry the runtime length of a sibling array
	// (the fitter `count` convention) and appear in neither record: the
	// length is implicit in the list encoding.
	RoleLength
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleIn:
		return "in"
	case RoleOut:
		return "out"
	case RoleInOut:
		return "inout"
	case RoleLength:
		return "length"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Signature describes the lowered shape of a function or method: the role
// of each parameter and the length relationships between parameters. The
// binding layer uses the same Signature to move concrete values, so the
// Mtype and the marshaling code cannot disagree.
type Signature struct {
	// Roles maps each parameter name to its role.
	Roles map[string]Role
	// LengthOf maps a RoleLength parameter name to the array parameter
	// whose length it carries.
	LengthOf map[string]string
	// Result is the declared result type, nil for void.
	Result *stype.Type
}

// SignatureOf computes the signature of a parameter list and result.
func SignatureOf(params []stype.Param, result *stype.Type) (Signature, error) {
	sig := Signature{
		Roles:    make(map[string]Role, len(params)),
		LengthOf: make(map[string]string),
		Result:   result,
	}
	byName := make(map[string]stype.Param, len(params))
	for _, p := range params {
		if _, dup := byName[p.Name]; dup && p.Name != "" {
			return sig, fmt.Errorf("lower: duplicate parameter %q", p.Name)
		}
		byName[p.Name] = p
		switch p.Type.Ann.Mode {
		case stype.ModeOut:
			sig.Roles[p.Name] = RoleOut
		case stype.ModeInOut:
			sig.Roles[p.Name] = RoleInOut
		default:
			sig.Roles[p.Name] = RoleIn
		}
	}
	for _, p := range params {
		lf := p.Type.Ann.LengthFrom
		if lf == "" {
			continue
		}
		counter, ok := byName[lf]
		if !ok {
			return sig, fmt.Errorf("lower: %s: length-from names unknown parameter %q", p.Name, lf)
		}
		if counter.Type.Kind != stype.KPrim || !integralPrim(counter.Type.Prim) {
			return sig, fmt.Errorf("lower: %s: length parameter %q is not integral", p.Name, lf)
		}
		if prev, taken := sig.LengthOf[lf]; taken {
			return sig, fmt.Errorf("lower: parameter %q is the length of both %q and %q", lf, prev, p.Name)
		}
		if sig.Roles[lf] != RoleIn {
			return sig, fmt.Errorf("lower: length parameter %q must be an input", lf)
		}
		sig.Roles[lf] = RoleLength
		sig.LengthOf[lf] = p.Name
	}
	return sig, nil
}

func integralPrim(p stype.Prim) bool {
	switch p {
	case stype.PI8, stype.PU8, stype.PI16, stype.PU16, stype.PI32,
		stype.PU32, stype.PI64, stype.PU64:
		return true
	default:
		return false
	}
}
