package lower

import (
	"strings"
	"testing"

	"repro/internal/annotate"
	"repro/internal/cparse"
	"repro/internal/idlparse"
	"repro/internal/javaparse"
	"repro/internal/mtype"
	"repro/internal/stype"
)

const fitterC = `
typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);
`

const fitterCScript = `
annotate fitter.start out nonnull
annotate fitter.end out nonnull
annotate fitter.pts length-from=count
`

const figure1Java = `
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }
`

const figure1JavaScript = `
annotate Line.start nonnull noalias
annotate Line.end nonnull noalias
annotate PointVector collection-of=Point element-nonnull
annotate JavaIdeal.fitter.pts nonnull
annotate JavaIdeal.fitter.return nonnull
`

func lowerC(t *testing.T, src, script, decl string) *mtype.Type {
	t.Helper()
	u, err := cparse.Parse("t.h", src, cparse.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if script != "" {
		if _, err := annotate.ApplyScript(u, script); err != nil {
			t.Fatal(err)
		}
	}
	ty, err := New(u).Decl(decl)
	if err != nil {
		t.Fatal(err)
	}
	return ty
}

func lowerJava(t *testing.T, src, script, decl string) *mtype.Type {
	t.Helper()
	u, err := javaparse.Parse("T.java", src)
	if err != nil {
		t.Fatal(err)
	}
	if script != "" {
		if _, err := annotate.ApplyScript(u, script); err != nil {
			t.Fatal(err)
		}
	}
	ty, err := New(u).Decl(decl)
	if err != nil {
		t.Fatal(err)
	}
	return ty
}

// TestSection34FitterMtypes checks the paper's §3.4 claim: after
// annotation, both the C fitter and JavaIdeal lower to
//
//	port(Record(L, port(Record(RR, RR))))
//
// where L is a list of Record(Real,Real) — identical shapes up to record
// nesting, which the comparer's associativity rule absorbs.
func TestSection34FitterMtypes(t *testing.T) {
	cTy := lowerC(t, fitterC, fitterCScript, "fitter")
	jTy := lowerJava(t, figure1Java, figure1JavaScript, "JavaIdeal")

	wantC := "port(record(μL1.choice(unit, record(record(real(24,8), real(24,8)), L1)), " +
		"port(record(record(real(24,8), real(24,8)), record(real(24,8), real(24,8))))))"
	if got := cTy.String(); got != wantC {
		t.Errorf("C fitter Mtype:\n got %s\nwant %s", got, wantC)
	}
	wantJ := "port(record(μL1.choice(unit, record(record(real(24,8), real(24,8)), L1)), " +
		"port(record(record(record(real(24,8), real(24,8)), record(real(24,8), real(24,8)))))))"
	if got := jTy.String(); got != wantJ {
		t.Errorf("Java fitter Mtype:\n got %s\nwant %s", got, wantJ)
	}
}

// TestFigure8RecursiveList checks that a recursive Java list lowers to the
// cyclic Mtype of Figure 8(b): choice(unit, record(integer, ↑)).
func TestFigure8RecursiveList(t *testing.T) {
	ty := lowerJava(t, `
		public class IntList {
			int value;
			IntList next;
		}
	`, "", "IntList")
	// The root is the by-value record; the next field is the nullable
	// reference, which is where the μ cycle closes.
	if ty.Kind() != mtype.KindRecursive {
		t.Fatalf("IntList root = %s, want recursive", ty.Kind())
	}
	body := ty.Body()
	if body.Kind() != mtype.KindRecord {
		t.Fatalf("body = %s", body.Kind())
	}
	next := body.Fields()[1].Type
	if next.Kind() != mtype.KindChoice {
		t.Fatalf("next = %s, want choice (nullable)", next.Kind())
	}
	if next.Alts()[1].Type != ty {
		t.Error("cycle does not close back on the μ node")
	}
	if err := mtype.Validate(ty); err != nil {
		t.Error(err)
	}
}

// TestIndefiniteArrayEqualsListEncoding checks the §3.2 claim that a C
// float[] of runtime size lowers to the same shape as a Java list of
// floats.
func TestIndefiniteArrayEqualsListEncoding(t *testing.T) {
	cTy := lowerC(t, `void f(float xs[], int n);`, "annotate f.xs length-from=n", "f")
	req := cTy.Elem().Fields()
	if len(req) != 2 { // xs + reply
		t.Fatalf("request fields = %d", len(req))
	}
	xs := req[0].Type
	want := mtype.NewList(mtype.NewFloat32())
	if mtype.Fingerprint(xs) != mtype.Fingerprint(want) {
		t.Errorf("xs = %s, want list of real", xs)
	}
}

func TestPrimitiveLowering(t *testing.T) {
	u, err := cparse.Parse("t.h", `
		void f(char c, signed char sc, unsigned char uc, short s, int i,
		       unsigned int u, long long ll, float fl, double d, _Bool b,
		       wchar_t w);
	`, cparse.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := New(u).Decl("f")
	if err != nil {
		t.Fatal(err)
	}
	fields := fn.Elem().Fields()
	checks := []struct {
		idx  int
		desc string
		test func(*mtype.Type) bool
	}{
		{0, "char→character(latin1)", func(m *mtype.Type) bool {
			return m.Kind() == mtype.KindCharacter && m.Repertoire() == mtype.RepLatin1
		}},
		{1, "signed char→int8", func(m *mtype.Type) bool {
			if m.Kind() != mtype.KindInteger {
				return false
			}
			lo, hi := m.IntegerRange()
			return lo.Int64() == -128 && hi.Int64() == 127
		}},
		{2, "unsigned char→uint8", func(m *mtype.Type) bool {
			if m.Kind() != mtype.KindInteger {
				return false
			}
			lo, hi := m.IntegerRange()
			return lo.Int64() == 0 && hi.Int64() == 255
		}},
		{3, "short→int16", func(m *mtype.Type) bool {
			if m.Kind() != mtype.KindInteger {
				return false
			}
			lo, _ := m.IntegerRange()
			return lo.Int64() == -32768
		}},
		{7, "float→real(24,8)", func(m *mtype.Type) bool {
			if m.Kind() != mtype.KindReal {
				return false
			}
			p, e := m.RealParams()
			return p == 24 && e == 8
		}},
		{8, "double→real(53,11)", func(m *mtype.Type) bool {
			if m.Kind() != mtype.KindReal {
				return false
			}
			p, e := m.RealParams()
			return p == 53 && e == 11
		}},
		{9, "bool→integer[0..1]", func(m *mtype.Type) bool {
			if m.Kind() != mtype.KindInteger {
				return false
			}
			lo, hi := m.IntegerRange()
			return lo.Int64() == 0 && hi.Int64() == 1
		}},
		{10, "wchar_t→character(ucs2)", func(m *mtype.Type) bool {
			return m.Kind() == mtype.KindCharacter && m.Repertoire() == mtype.RepUCS2
		}},
	}
	for _, c := range checks {
		if !c.test(fields[c.idx].Type) {
			t.Errorf("%s: got %s", c.desc, fields[c.idx].Type)
		}
	}
}

func TestRangeAnnotationOverride(t *testing.T) {
	// §3.1's example: a Java int annotated to hold only unsigned values
	// matches a C unsigned int annotated to stay below 2^31.
	jTy := lowerJava(t, `class C { int v; }`, "annotate C.v range=0..2147483647", "C")
	cTy := lowerC(t, `struct C { unsigned int v; };`, "annotate C.v range=0..2147483647", "C")
	if mtype.Fingerprint(jTy) != mtype.Fingerprint(cTy) {
		t.Errorf("annotated ranges differ: %s vs %s", jTy, cTy)
	}
}

func TestCharVsIntAnnotation(t *testing.T) {
	asInt := lowerC(t, `struct S { char c; };`, "annotate S.c int", "S")
	if asInt.Fields()[0].Type.Kind() != mtype.KindInteger {
		t.Errorf("char annotated int = %s", asInt.Fields()[0].Type)
	}
	asChar := lowerC(t, `struct S { short c; };`, "annotate S.c char repertoire=ucs2", "S")
	if asChar.Fields()[0].Type.Kind() != mtype.KindCharacter {
		t.Errorf("short annotated char = %s", asChar.Fields()[0].Type)
	}
}

func TestEnumLowering(t *testing.T) {
	ty := lowerC(t, `enum Color { RED, GREEN, BLUE }; struct S { enum Color c; };`, "", "S")
	c := ty.Fields()[0].Type
	if c.Kind() != mtype.KindInteger {
		t.Fatalf("enum = %s", c)
	}
	lo, hi := c.IntegerRange()
	if lo.Int64() != 0 || hi.Int64() != 2 {
		t.Errorf("enum range = [%s..%s], want [0..2]", lo, hi)
	}
}

func TestUnionLowering(t *testing.T) {
	ty := lowerC(t, `union N { int i; float f; };  struct S { union N n; };`, "", "S")
	n := ty.Fields()[0].Type
	if n.Kind() != mtype.KindChoice || len(n.Alts()) != 2 {
		t.Fatalf("union = %s", n)
	}
}

func TestPointerNullability(t *testing.T) {
	nullable := lowerC(t, `struct S { int *p; };`, "", "S")
	p := nullable.Fields()[0].Type
	if p.Kind() != mtype.KindChoice || p.Alts()[0].Type.Kind() != mtype.KindUnit {
		t.Errorf("nullable pointer = %s", p)
	}
	nn := lowerC(t, `struct S { int *p; };`, "annotate S.p nonnull", "S")
	if nn.Fields()[0].Type.Kind() != mtype.KindInteger {
		t.Errorf("nonnull pointer = %s", nn.Fields()[0].Type)
	}
}

func TestPointerWithFixedLength(t *testing.T) {
	ty := lowerC(t, `void f(float *xs);`, "annotate f.xs length=3", "f")
	xs := ty.Elem().Fields()[0].Type
	if xs.Kind() != mtype.KindRecord || len(xs.Fields()) != 3 {
		t.Errorf("xs = %s, want record of 3 reals", xs)
	}
}

func TestFixedArrayIsRecord(t *testing.T) {
	// §3.2: the Java class Point (two floats) and C float[2] share an
	// Mtype shape.
	cTy := lowerC(t, `typedef float point[2];`, "", "point")
	jTy := lowerJava(t, `class Point { float x; float y; }`, "", "Point")
	if mtype.Fingerprint(cTy) != mtype.Fingerprint(jTy) {
		t.Errorf("point %s vs Point %s", cTy, jTy)
	}
}

func TestIgnoreAnnotationDropsField(t *testing.T) {
	ty := lowerC(t, `struct S { int keep; int pad; };`, "annotate S.pad ignore", "S")
	if len(ty.Fields()) != 1 {
		t.Errorf("fields = %d, want 1", len(ty.Fields()))
	}
}

func TestMethodIgnoreDropsAlternative(t *testing.T) {
	u := javaparse.MustParse(`
		interface I {
			int keep(int x);
			void internal();
		}
	`)
	if _, err := annotate.ApplyScript(u, "annotate I.internal ignore"); err != nil {
		t.Fatal(err)
	}
	ty, err := New(u).Decl("I")
	if err != nil {
		t.Fatal(err)
	}
	// One surviving method collapses the Choice (§3.4 shape).
	if ty.Kind() != mtype.KindPort || ty.Elem().Kind() != mtype.KindRecord {
		t.Errorf("I = %s", ty)
	}
}

func TestObjectReferencePort(t *testing.T) {
	ty := lowerJava(t, `
		class Obj {
			int get();
			void set(int v);
			int state;
		}
		class Holder { Obj ref; }
	`, "annotate Holder.ref byref", "Holder")
	ref := ty.Fields()[0].Type
	if ref.Kind() != mtype.KindChoice {
		t.Fatalf("ref = %s (nullable expected)", ref)
	}
	obj := ref.Alts()[1].Type
	if obj.Kind() != mtype.KindPort {
		t.Fatalf("object = %s, want port", obj)
	}
	if obj.Elem().Kind() != mtype.KindChoice || len(obj.Elem().Alts()) != 2 {
		t.Errorf("object port element = %s", obj.Elem())
	}
}

func TestInterfaceMethodsIncludeInherited(t *testing.T) {
	u := idlparse.MustParse(`
		interface Base { void ping(); };
		interface Derived : Base { void pong(); };
	`)
	ty, err := New(u).Decl("Derived")
	if err != nil {
		t.Fatal(err)
	}
	if ty.Kind() != mtype.KindPort || ty.Elem().Kind() != mtype.KindChoice {
		t.Fatalf("Derived = %s", ty)
	}
	if len(ty.Elem().Alts()) != 2 {
		t.Errorf("alternatives = %d, want 2 (ping inherited)", len(ty.Elem().Alts()))
	}
}

func TestIDLModesShapeTheRecords(t *testing.T) {
	u := idlparse.MustParse(`
		interface I {
			long f(in long a, out long b, inout long c);
		};
	`)
	ty, err := New(u).Decl("I")
	if err != nil {
		t.Fatal(err)
	}
	req := ty.Elem()
	if req.Kind() != mtype.KindRecord {
		t.Fatalf("request = %s", req)
	}
	// inputs: a, c, reply → 3 fields.
	if len(req.Fields()) != 3 {
		t.Fatalf("request fields = %d, want 3", len(req.Fields()))
	}
	reply := req.Fields()[2].Type
	if reply.Kind() != mtype.KindPort {
		t.Fatalf("reply = %s", reply)
	}
	// outputs: b, c, return → 3 fields.
	if len(reply.Elem().Fields()) != 3 {
		t.Errorf("reply fields = %d, want 3", len(reply.Elem().Fields()))
	}
}

func TestOnewayLowering(t *testing.T) {
	u := idlparse.MustParse(`
		interface Chan { oneway void send(in long payload); };
	`)
	ty, err := New(u).Decl("Chan")
	if err != nil {
		t.Fatal(err)
	}
	// Single oneway method: port(Record(Integer)) with no reply port.
	inv := ty.Elem()
	if inv.Kind() != mtype.KindRecord || len(inv.Fields()) != 1 {
		t.Fatalf("invocation = %s", inv)
	}
	if inv.Fields()[0].Type.Kind() != mtype.KindInteger {
		t.Errorf("payload = %s", inv.Fields()[0].Type)
	}
}

func TestIDLStringLowering(t *testing.T) {
	u := idlparse.MustParse(`struct S { string name; };`)
	ty, err := New(u).Decl("S")
	if err != nil {
		t.Fatal(err)
	}
	name := ty.Fields()[0].Type
	want := mtype.NewList(mtype.NewCharacter(mtype.RepLatin1))
	if mtype.Fingerprint(name) != mtype.Fingerprint(want) {
		t.Errorf("string = %s", name)
	}
}

func TestVectorDefaultsToObjectCollection(t *testing.T) {
	// Without a collection-of annotation, a Vector subclass is a
	// collection of nullable Objects.
	ty := lowerJava(t, `class Bag extends java.util.Vector;`+"\n"+`class H { Bag b; }`,
		"annotate H.b nonnull", "H")
	b := ty.Fields()[0].Type
	if b.Kind() != mtype.KindRecursive {
		t.Fatalf("bag = %s, want list", b)
	}
}

func TestSignatureOf(t *testing.T) {
	u := cparse.MustParse(fitterC)
	if _, err := annotate.ApplyScript(u, fitterCScript); err != nil {
		t.Fatal(err)
	}
	fn := u.Lookup("fitter").Type
	sig, err := SignatureOf(fn.Params, fn.Result)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Role{"pts": RoleIn, "count": RoleLength, "start": RoleOut, "end": RoleOut}
	for name, role := range want {
		if sig.Roles[name] != role {
			t.Errorf("role[%s] = %s, want %s", name, sig.Roles[name], role)
		}
	}
	if sig.LengthOf["count"] != "pts" {
		t.Errorf("LengthOf = %+v", sig.LengthOf)
	}
}

func TestSignatureErrors(t *testing.T) {
	cases := []struct {
		src    string
		script string
		want   string
	}{
		{`void f(float xs[], float n);`, "annotate f.xs length-from=n", "not integral"},
		{`void f(float xs[]);`, "annotate f.xs length-from=ghost", "unknown parameter"},
		{`void f(float xs[], float ys[], int n);`,
			"annotate f.xs length-from=n\nannotate f.ys length-from=n", "length of both"},
	}
	for _, c := range cases {
		u := cparse.MustParse(c.src)
		if _, err := annotate.ApplyScript(u, c.script); err != nil {
			t.Fatal(err)
		}
		_, err := New(u).Decl("f")
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("source %q: error = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestLowerUnknownDecl(t *testing.T) {
	u := stype.NewUniverse(stype.LangC)
	if _, err := New(u).Decl("nope"); err == nil {
		t.Error("unknown decl accepted")
	}
}

func TestCollectionUnknownElement(t *testing.T) {
	u := javaparse.MustParse(`class V extends java.util.Vector; class H { V v; }`)
	if _, err := annotate.Apply(u, "H.v", stype.Ann{CollectionOf: "Ghost"}); err != nil {
		t.Fatal(err)
	}
	if _, err := New(u).Decl("H"); err == nil {
		t.Error("collection of unknown element accepted")
	}
}

func TestSharedDeclLowersToSharedGraph(t *testing.T) {
	// Two uses of the same struct share one Mtype node (memoization).
	ty := lowerC(t, `
		struct P { float x; float y; };
		struct Pair { struct P a; struct P b; };
	`, "", "Pair")
	if ty.Fields()[0].Type != ty.Fields()[1].Type {
		t.Error("two uses of P lowered to distinct graphs")
	}
}

func TestMutuallyRecursiveDecls(t *testing.T) {
	ty := lowerJava(t, `
		class A { int x; B b; }
		class B { A a; }
	`, "", "A")
	if err := mtype.Validate(ty); err != nil {
		t.Fatal(err)
	}
	if ty.Kind() != mtype.KindRecursive {
		t.Errorf("A = %s, want μ root", ty.Kind())
	}
}
