package fuse

import (
	"errors"
	"testing"

	"repro/internal/cmem"
	"repro/internal/core"
	"repro/internal/jheap"
)

// TestFusedLP64 runs the fused fitter under the 64-bit data model (the
// arrays use 8-byte pointers server-side; element strides are unchanged).
func TestFusedLP64(t *testing.T) {
	s := core.NewSession()
	if err := s.LoadC("c", fitterC, cmem.LP64); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("java", figure1Java); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("c", cScript); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("java", jScript); err != nil {
		t.Fatal(err)
	}
	jFn, err := s.MethodDecl("java", "JavaIdeal", "fitter")
	if err != nil {
		t.Fatal(err)
	}
	call, err := CompileFromSession(s, "java", jFn, "c", "fitter", cmem.LP64, cFitterImpl)
	if err != nil {
		t.Fatal(err)
	}
	h := jheap.NewHeap()
	vec := buildHeapPoints(t, h, 0, 1, 4, -2)
	outs, err := call.Invoke(h, []jheap.Slot{jheap.RefSlot(vec)})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outs = %+v", outs)
	}
}

// TestFusedIntegerList fuses a vector of integer-carrying elements.
func TestFusedIntegerList(t *testing.T) {
	s := core.NewSession()
	if err := s.LoadC("c", `
		struct cell { int tag; double w; };
		double total(struct cell xs[], int n);
	`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("c", "annotate total.xs length-from=n"); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("java", `
		class Cell { int tag; double w; }
		class Cells extends java.util.Vector;
		interface I { double total(Cells xs); }
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("java", `
annotate Cells collection-of=Cell element-nonnull
annotate I.total.xs nonnull
`); err != nil {
		t.Fatal(err)
	}
	jFn, err := s.MethodDecl("java", "I", "total")
	if err != nil {
		t.Fatal(err)
	}
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) {
		base := cmem.Addr(args[0])
		n := int(int32(args[1]))
		sum := 0.0
		for i := 0; i < n; i++ {
			// struct cell layout under ILP32: tag@0, w@8, size 16.
			w, err := mem.ReadF64(base + cmem.Addr(16*i+8))
			if err != nil {
				return 0, err
			}
			tag, err := mem.ReadI(base+cmem.Addr(16*i), 4)
			if err != nil {
				return 0, err
			}
			sum += w * float64(tag)
		}
		return f64bits(sum), nil
	}
	call, err := CompileFromSession(s, "java", jFn, "c", "total", cmem.ILP32, impl)
	if err != nil {
		t.Fatal(err)
	}
	h := jheap.NewHeap()
	vec := h.NewVector("Cells")
	for _, c := range []struct {
		tag int64
		w   float64
	}{{2, 1.5}, {3, 2.0}} {
		cell := h.New("Cell", 2)
		_ = h.SetField(cell, 0, jheap.IntSlot(c.tag))
		_ = h.SetField(cell, 1, jheap.FloatSlot(c.w))
		_ = h.VectorAppend(vec, cell)
	}
	outs, err := call.Invoke(h, []jheap.Slot{jheap.RefSlot(vec)})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].F != 9 { // 2*1.5 + 3*2.0
		t.Errorf("total = %v, want 9", outs[0].F)
	}
}

// TestFusedCharReturn decodes a char-valued return word.
func TestFusedCharReturn(t *testing.T) {
	s := core.NewSession()
	if err := s.LoadC("c", `char grade(int score);`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("java", `interface I { char grade(int score); }`); err != nil {
		t.Fatal(err)
	}
	// Java char is UCS-2, C char Latin-1: widen the C side's repertoire so
	// the return types match (the §3.1 repertoire annotation).
	if _, err := s.Annotate("c", "annotate grade.return repertoire=ucs2"); err != nil {
		t.Fatal(err)
	}
	jFn, err := s.MethodDecl("java", "I", "grade")
	if err != nil {
		t.Fatal(err)
	}
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) {
		if int32(args[0]) >= 90 {
			return 'A', nil
		}
		return 'B', nil
	}
	call, err := CompileFromSession(s, "java", jFn, "c", "grade", cmem.ILP32, impl)
	if err != nil {
		t.Fatal(err)
	}
	h := jheap.NewHeap()
	outs, err := call.Invoke(h, []jheap.Slot{jheap.IntSlot(95)})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Kind != jheap.SlotChar || outs[0].C != 'A' {
		t.Errorf("grade = %+v", outs[0])
	}
}

func TestFusedRejectsInout(t *testing.T) {
	s := core.NewSession()
	if err := s.LoadC("c", `void bump(int *v);`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("c", "annotate bump.v inout nonnull"); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("java", `interface I { int bump(int v); }`); err != nil {
		t.Fatal(err)
	}
	jFn, err := s.MethodDecl("java", "I", "bump")
	if err != nil {
		t.Fatal(err)
	}
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) { return 0, nil }
	_, err = CompileFromSession(s, "java", jFn, "c", "bump", cmem.ILP32, impl)
	if err == nil {
		t.Fatal("inout compiled")
	}
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("error %v does not match ErrUnsupported", err)
	}
}

func TestFusedRejectsNonEquivalentPair(t *testing.T) {
	s := core.NewSession()
	if err := s.LoadC("c", `float f(float x);`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("java", `interface I { double f(double x); }`); err != nil {
		t.Fatal(err)
	}
	jFn, err := s.MethodDecl("java", "I", "f")
	if err != nil {
		t.Fatal(err)
	}
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) { return 0, nil }
	if _, err := CompileFromSession(s, "java", jFn, "c", "f", cmem.ILP32, impl); err == nil {
		t.Error("mismatched pair compiled")
	}
}
