// Package fuse is the specialized stub compiler: it fuses a coercion plan
// with the concrete representation bindings of both sides, producing
// closures that move data *directly* between a Java heap and C memory
// with no intermediate value trees. This is the execution model of the
// paper's generated JNI stubs — §4's coercion plan "incorporates …
// information related to the concrete representation of their values in
// memory" — and, like the prototype ("we use ad hoc techniques that
// handle most common situations, but which are not easily modified or
// extended", §6), it supports the common constructs and reports anything
// else as unsupported, falling back to the general value-tree engines.
//
// Supported: primitives, by-value classes/structs/fixed arrays (with
// associative flattening and commutative field permutation from the
// plan), non-null pointers, and ordered collections (Vector ↔
// length-from C arrays). Not supported: nullable pointers inside fused
// aggregates, unions, object references, and subtype injections.
package fuse

import (
	"fmt"

	"repro/internal/cmem"
	"repro/internal/jheap"
	"repro/internal/lower"
	"repro/internal/stype"
)

// ErrUnsupported is wrapped by every "cannot fuse this construct" error;
// callers match it to fall back to the value-tree engines.
var ErrUnsupported = fmt.Errorf("fuse: construct not supported by the specialized stub compiler")

func unsupported(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrUnsupported, fmt.Sprintf(format, args...))
}

// jAccessor reads or writes one leaf slot of the Java representation: a
// chain of field loads / array derefs from a root slot.
type jAccessor struct {
	// fields is the chain of object field indices to traverse; the final
	// entry addresses the leaf slot.
	fields []int
}

// cAccessor locates one leaf of the C representation: a byte offset from
// a root address, with any number of pointer dereferences along the way.
type cAccessor struct {
	// ops alternate: add offset, then (optionally) deref. A leaf is
	// reached by applying all ops to the root address.
	ops []cOp
}

type cOp struct {
	offset int
	deref  bool
}

// leafKind classifies a fused primitive move.
type leafKind uint8

const (
	leafF32 leafKind = iota + 1
	leafF64
	leafInt  // integral (bool, enums, chars-as-ints): sign-preserving word
	leafChar // character slot
)

// jContext resolves Java-side accessors from annotated Stypes.
type jContext struct {
	u *stype.Universe
}

// cContext resolves C-side accessors and layouts.
type cContext struct {
	u   *stype.Universe
	lay *cmem.Layouts
}

// resolveNamed follows a Named node to its target with annotations
// overlaid, for typedef-like targets.
func resolveNamed(u *stype.Universe, t *stype.Type) (*stype.Type, *stype.Decl, error) {
	if t.Kind != stype.KNamed {
		return t, nil, nil
	}
	d := t.Target
	if d == nil {
		d = u.Lookup(t.Name)
	}
	if d == nil {
		return nil, nil, fmt.Errorf("fuse: unresolved name %q", t.Name)
	}
	switch d.Type.Kind {
	case stype.KClass, stype.KInterface, stype.KStruct, stype.KUnion:
		return t, d, nil
	default:
		overlaid := *d.Type
		overlaid.Ann = d.Type.Ann.Merge(t.Ann)
		return resolveNamed(u, &overlaid)
	}
}

// jLeaves enumerates the Java-side leaf accessors of a type in the exact
// order lower flattens its Mtype record structure. Only containment
// shapes are fusible.
func (jc *jContext) jLeaves(t *stype.Type, prefix []int) ([]jLeaf, error) {
	t, decl, err := resolveNamed(jc.u, t)
	if err != nil {
		return nil, err
	}
	switch t.Kind {
	case stype.KPrim:
		kind, err := jPrimKind(t)
		if err != nil {
			return nil, err
		}
		return []jLeaf{{acc: jAccessor{fields: clone(prefix)}, kind: kind}}, nil
	case stype.KNamed:
		// A class/struct reference.
		target := decl.Type
		if lower.IsCollection(jc.u, decl) {
			return nil, unsupported("nested collection %s inside a fused aggregate", decl.Name)
		}
		if !t.Ann.NonNull {
			return nil, unsupported("nullable reference to %s inside a fused aggregate", decl.Name)
		}
		if !lower.ByValueOf(decl, t.Ann) {
			return nil, unsupported("object reference %s inside a fused aggregate", decl.Name)
		}
		var out []jLeaf
		for i, f := range target.Fields {
			if f.Type.Ann.Ignore {
				continue
			}
			leaves, err := jc.jLeaves(f.Type, append(clone(prefix), i))
			if err != nil {
				return nil, fmt.Errorf("%s.%s: %w", decl.Name, f.Name, err)
			}
			out = append(out, leaves...)
		}
		return out, nil
	default:
		return nil, unsupported("java %s inside a fused aggregate", t.Kind)
	}
}

type jLeaf struct {
	acc  jAccessor
	kind leafKind
}

func jPrimKind(t *stype.Type) (leafKind, error) {
	if t.Ann.Range != nil {
		return leafInt, nil
	}
	switch t.Prim {
	case stype.PF32:
		return leafF32, nil
	case stype.PF64:
		return leafF64, nil
	case stype.PBool, stype.PI8, stype.PU8, stype.PI16, stype.PU16,
		stype.PI32, stype.PU32, stype.PI64, stype.PU64:
		if t.Ann.AsChar != nil && *t.Ann.AsChar {
			return leafChar, nil
		}
		return leafInt, nil
	case stype.PChar8, stype.PChar16:
		if t.Ann.AsChar != nil && !*t.Ann.AsChar {
			return leafInt, nil
		}
		return leafChar, nil
	default:
		return 0, unsupported("java primitive %s", t.Prim)
	}
}

type cLeaf struct {
	acc  cAccessor
	kind leafKind
	size int // scalar byte width
}

// cLeaves enumerates the C-side leaf accessors of a type in lowering
// order.
func (cc *cContext) cLeaves(t *stype.Type, acc cAccessor) ([]cLeaf, error) {
	t, decl, err := resolveNamed(cc.u, t)
	if err != nil {
		return nil, err
	}
	switch t.Kind {
	case stype.KPrim:
		kind, size, err := cPrimKind(t)
		if err != nil {
			return nil, err
		}
		return []cLeaf{{acc: acc, kind: kind, size: size}}, nil
	case stype.KEnum:
		return []cLeaf{{acc: acc, kind: leafInt, size: 4}}, nil
	case stype.KNamed:
		target := decl.Type
		if target.Kind != stype.KStruct {
			return nil, unsupported("C %s inside a fused aggregate", target.Kind)
		}
		lay, err := cc.lay.Of(target)
		if err != nil {
			return nil, err
		}
		var out []cLeaf
		for i, f := range target.Fields {
			if f.Type.Ann.Ignore {
				continue
			}
			leaves, err := cc.cLeaves(f.Type, addOffset(acc, lay.Offsets[i]))
			if err != nil {
				return nil, fmt.Errorf("%s.%s: %w", decl.Name, f.Name, err)
			}
			out = append(out, leaves...)
		}
		return out, nil
	case stype.KStruct:
		lay, err := cc.lay.Of(t)
		if err != nil {
			return nil, err
		}
		var out []cLeaf
		for i, f := range t.Fields {
			if f.Type.Ann.Ignore {
				continue
			}
			leaves, err := cc.cLeaves(f.Type, addOffset(acc, lay.Offsets[i]))
			if err != nil {
				return nil, err
			}
			out = append(out, leaves...)
		}
		return out, nil
	case stype.KArray:
		length := t.Len
		if t.Ann.FixedLen > 0 {
			length = t.Ann.FixedLen
		}
		if length < 0 {
			return nil, unsupported("indefinite array inside a fused aggregate")
		}
		el, err := cc.lay.Of(t.ElemType)
		if err != nil {
			return nil, err
		}
		var out []cLeaf
		for i := 0; i < length; i++ {
			leaves, err := cc.cLeaves(t.ElemType, addOffset(acc, i*el.Size))
			if err != nil {
				return nil, err
			}
			out = append(out, leaves...)
		}
		return out, nil
	case stype.KPointer:
		if !t.Ann.NonNull {
			return nil, unsupported("nullable pointer inside a fused aggregate")
		}
		return cc.cLeaves(t.ElemType, addDeref(acc))
	default:
		return nil, unsupported("C %s inside a fused aggregate", t.Kind)
	}
}

func cPrimKind(t *stype.Type) (leafKind, int, error) {
	if t.Ann.Range != nil {
		size, err := cPrimSize(t.Prim)
		return leafInt, size, err
	}
	switch t.Prim {
	case stype.PF32:
		return leafF32, 4, nil
	case stype.PF64:
		return leafF64, 8, nil
	case stype.PChar8, stype.PChar16:
		if t.Ann.AsChar != nil && !*t.Ann.AsChar {
			size, _ := cPrimSize(t.Prim)
			return leafInt, size, nil
		}
		size, _ := cPrimSize(t.Prim)
		return leafChar, size, nil
	case stype.PBool, stype.PI8, stype.PU8, stype.PI16, stype.PU16,
		stype.PI32, stype.PU32, stype.PI64, stype.PU64:
		if t.Ann.AsChar != nil && *t.Ann.AsChar {
			size, _ := cPrimSize(t.Prim)
			return leafChar, size, nil
		}
		size, err := cPrimSize(t.Prim)
		return leafInt, size, err
	default:
		return 0, 0, unsupported("C primitive %s", t.Prim)
	}
}

func cPrimSize(p stype.Prim) (int, error) {
	switch p {
	case stype.PBool, stype.PI8, stype.PU8, stype.PChar8:
		return 1, nil
	case stype.PI16, stype.PU16, stype.PChar16:
		return 2, nil
	case stype.PI32, stype.PU32, stype.PF32:
		return 4, nil
	case stype.PI64, stype.PU64, stype.PF64:
		return 8, nil
	default:
		return 0, unsupported("size of %s", p)
	}
}

func clone(xs []int) []int { return append([]int(nil), xs...) }

func addOffset(acc cAccessor, off int) cAccessor {
	ops := append(append([]cOp(nil), acc.ops...), cOp{offset: off})
	return cAccessor{ops: ops}
}

func addDeref(acc cAccessor) cAccessor {
	ops := append(append([]cOp(nil), acc.ops...), cOp{deref: true})
	return cAccessor{ops: ops}
}

// resolveC applies a C accessor to a root address.
func resolveC(mem *cmem.Arena, model cmem.Model, root cmem.Addr, acc cAccessor) (cmem.Addr, error) {
	at := root
	for _, op := range acc.ops {
		if op.deref {
			target, err := mem.ReadPtr(at, model)
			if err != nil {
				return 0, err
			}
			if target == cmem.Null {
				return 0, fmt.Errorf("fuse: NULL in fused non-null pointer")
			}
			at = target
		} else {
			at += cmem.Addr(op.offset)
		}
	}
	return at, nil
}

// readJ reads a Java leaf slot through its accessor.
func readJ(h *jheap.Heap, root jheap.Slot, acc jAccessor) (jheap.Slot, error) {
	s := root
	for _, idx := range acc.fields {
		if s.Kind != jheap.SlotRef {
			return jheap.Slot{}, fmt.Errorf("fuse: expected reference while navigating")
		}
		if s.R == jheap.NullRef {
			return jheap.Slot{}, fmt.Errorf("fuse: null in fused non-null path")
		}
		var err error
		s, err = h.Field(s.R, idx)
		if err != nil {
			return jheap.Slot{}, err
		}
	}
	return s, nil
}

// moveJ2C moves one leaf value from a Java slot into C memory.
func moveJ2C(mem *cmem.Arena, at cmem.Addr, c cLeaf, s jheap.Slot) error {
	switch c.kind {
	case leafF32:
		return mem.WriteF32(at, float32(s.F))
	case leafF64:
		return mem.WriteF64(at, s.F)
	case leafChar:
		r := s.C
		if s.Kind == jheap.SlotInt {
			r = rune(s.I)
		}
		return mem.WriteU(at, c.size, uint64(r))
	default:
		v := s.I
		if s.Kind == jheap.SlotChar {
			v = int64(s.C)
		}
		return mem.WriteU(at, c.size, uint64(v))
	}
}

// moveC2J reads one leaf from C memory into a Java slot.
func moveC2J(mem *cmem.Arena, at cmem.Addr, c cLeaf, jk leafKind) (jheap.Slot, error) {
	switch c.kind {
	case leafF32:
		f, err := mem.ReadF32(at)
		if err != nil {
			return jheap.Slot{}, err
		}
		return jheap.FloatSlot(float64(f)), nil
	case leafF64:
		f, err := mem.ReadF64(at)
		if err != nil {
			return jheap.Slot{}, err
		}
		return jheap.FloatSlot(f), nil
	case leafChar:
		u, err := mem.ReadU(at, c.size)
		if err != nil {
			return jheap.Slot{}, err
		}
		if jk == leafInt {
			return jheap.IntSlot(int64(u)), nil
		}
		return jheap.CharSlot(rune(u)), nil
	default:
		n, err := mem.ReadI(at, c.size)
		if err != nil {
			return jheap.Slot{}, err
		}
		if jk == leafChar {
			return jheap.CharSlot(rune(n)), nil
		}
		return jheap.IntSlot(n), nil
	}
}

// compatible reports whether a Java leaf kind can feed a C leaf kind.
func compatible(j leafKind, c leafKind) bool {
	switch j {
	case leafF32, leafF64:
		return c == leafF32 || c == leafF64
	default:
		return c == leafInt || c == leafChar
	}
}
