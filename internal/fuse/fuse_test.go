package fuse

import (
	"testing/quick"

	"errors"
	"repro/internal/bind"
	"repro/internal/value"
	"testing"

	"repro/internal/cmem"
	"repro/internal/core"
	"repro/internal/jheap"
)

const (
	fitterC = `
typedef float point[2];
void fitter(point pts[], int count, point *start, point *end);
`
	figure1Java = `
public class Point { private float x; private float y; }
public class Line { private Point start; private Point end; }
public class PointVector extends java.util.Vector;
public interface JavaIdeal { Line fitter(PointVector pts); }
`
	cScript = `
annotate fitter.start out nonnull
annotate fitter.end out nonnull
annotate fitter.pts length-from=count
`
	jScript = `
annotate Line.start nonnull noalias
annotate Line.end nonnull noalias
annotate PointVector collection-of=Point element-nonnull
annotate JavaIdeal.fitter.pts nonnull
annotate JavaIdeal.fitter.return nonnull
`
)

func fitterSession(t testing.TB) *core.Session {
	t.Helper()
	s := core.NewSession()
	if err := s.LoadC("c", fitterC, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadJava("java", figure1Java); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("c", cScript); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Annotate("java", jScript); err != nil {
		t.Fatal(err)
	}
	return s
}

func cFitterImpl(mem *cmem.Arena, args []uint64) (uint64, error) {
	pts, count := cmem.Addr(args[0]), int(int32(args[1]))
	start, end := cmem.Addr(args[2]), cmem.Addr(args[3])
	var minX, minY, maxX, maxY float32
	for i := 0; i < count; i++ {
		x, err := mem.ReadF32(pts + cmem.Addr(8*i))
		if err != nil {
			return 0, err
		}
		y, err := mem.ReadF32(pts + cmem.Addr(8*i+4))
		if err != nil {
			return 0, err
		}
		if i == 0 || x < minX {
			minX = x
		}
		if i == 0 || y < minY {
			minY = y
		}
		if i == 0 || x > maxX {
			maxX = x
		}
		if i == 0 || y > maxY {
			maxY = y
		}
	}
	if err := mem.WriteF32(start, minX); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(start+4, minY); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(end, maxX); err != nil {
		return 0, err
	}
	return 0, mem.WriteF32(end+4, maxY)
}

func buildHeapPoints(t testing.TB, h *jheap.Heap, coords ...float64) jheap.Ref {
	t.Helper()
	v := h.NewVector("PointVector")
	for i := 0; i+1 < len(coords); i += 2 {
		p := h.New("Point", 2)
		if err := h.SetField(p, 0, jheap.FloatSlot(coords[i])); err != nil {
			t.Fatal(err)
		}
		if err := h.SetField(p, 1, jheap.FloatSlot(coords[i+1])); err != nil {
			t.Fatal(err)
		}
		if err := h.VectorAppend(v, p); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

// compileFitter synthesizes the method declaration and compiles the
// fused stub.
func compileFitter(t testing.TB) (*core.Session, *Call) {
	t.Helper()
	sess := fitterSession(t)
	jFn, err := sess.MethodDecl("java", "JavaIdeal", "fitter")
	if err != nil {
		t.Fatal(err)
	}
	call, err := CompileFromSession(sess, "java", jFn, "c", "fitter", cmem.ILP32, cFitterImpl)
	if err != nil {
		t.Fatal(err)
	}
	return sess, call
}

// TestFusedFitter runs the specialized stub: Java heap in, Java heap out,
// no value trees.
func TestFusedFitter(t *testing.T) {
	_, call := compileFitter(t)
	h := jheap.NewHeap()
	vec := buildHeapPoints(t, h, 1, 5, 3, 2, 2, 7)
	outs, err := call.Invoke(h, []jheap.Slot{jheap.RefSlot(vec)})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Kind != jheap.SlotRef {
		t.Fatalf("outputs = %+v", outs)
	}
	line := outs[0].R
	want := [4]float64{1, 2, 3, 7}
	got := [4]float64{}
	for i, fi := range []int{0, 1} {
		ref, err := h.Field(line, fi)
		if err != nil {
			t.Fatal(err)
		}
		for j, fj := range []int{0, 1} {
			s, err := h.Field(ref.R, fj)
			if err != nil {
				t.Fatal(err)
			}
			got[2*i+j] = s.F
		}
	}
	if got != want {
		t.Errorf("line = %v, want %v", got, want)
	}
	if cls, _ := h.Class(line); cls != "Line" {
		t.Errorf("result class = %q", cls)
	}
}

func TestFusedFitterEmpty(t *testing.T) {
	_, call := compileFitter(t)
	h := jheap.NewHeap()
	vec := buildHeapPoints(t, h)
	if _, err := call.Invoke(h, []jheap.Slot{jheap.RefSlot(vec)}); err != nil {
		t.Fatal(err)
	}
}

func TestFusedMatchesGeneralStub(t *testing.T) {
	// The fused stub and the value-tree stub must produce identical
	// results on the same heap data.
	sess, call := compileFitter(t)
	h := jheap.NewHeap()
	vec := buildHeapPoints(t, h, 4, 4, -1, 9, 6, 0, 2.5, -8)

	fusedOuts, err := call.Invoke(h, []jheap.Slot{jheap.RefSlot(vec)})
	if err != nil {
		t.Fatal(err)
	}
	_ = sess
	line := fusedOuts[0].R
	coords := func(r jheap.Ref) [4]float64 {
		var out [4]float64
		for i, fi := range []int{0, 1} {
			ref, _ := h.Field(r, fi)
			for j, fj := range []int{0, 1} {
				s, _ := h.Field(ref.R, fj)
				out[2*i+j] = s.F
			}
		}
		return out
	}
	want := [4]float64{-1, -8, 6, 9}
	if coords(line) != want {
		t.Errorf("fused line = %v, want %v", coords(line), want)
	}
}

func TestFusedNullElementRejected(t *testing.T) {
	_, call := compileFitter(t)
	h := jheap.NewHeap()
	vec := h.NewVector("PointVector")
	if err := h.VectorAppend(vec, jheap.NullRef); err != nil {
		t.Fatal(err)
	}
	if _, err := call.Invoke(h, []jheap.Slot{jheap.RefSlot(vec)}); err == nil {
		t.Error("null element accepted by fused stub")
	}
}

func TestFusedScalarParams(t *testing.T) {
	sess := core.NewSession()
	if err := sess.LoadC("c", `float scale(float x, int k);`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if err := sess.LoadJava("java", `interface I { float scale(float x, int k); }`); err != nil {
		t.Fatal(err)
	}
	jFn, err := sess.MethodDecl("java", "I", "scale")
	if err != nil {
		t.Fatal(err)
	}
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) {
		x := f32frombits(uint32(args[0]))
		return uint64(f32bits(x * float32(int32(args[1])))), nil
	}
	call, err := CompileFromSession(sess, "java", jFn, "c", "scale", cmem.ILP32, impl)
	if err != nil {
		t.Fatal(err)
	}
	h := jheap.NewHeap()
	outs, err := call.Invoke(h, []jheap.Slot{jheap.FloatSlot(2.5), jheap.IntSlot(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].F != 10 {
		t.Errorf("outs = %+v", outs)
	}
}

func TestFusedAggregateInParam(t *testing.T) {
	// A non-null pointer-to-struct input parameter.
	sess := core.NewSession()
	if err := sess.LoadC("c", `
		struct Pt { float x; float y; };
		float norm1(struct Pt *p);
	`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Annotate("c", "annotate norm1.p nonnull"); err != nil {
		t.Fatal(err)
	}
	if err := sess.LoadJava("java", `
		class Point { float x; float y; }
		interface I { float norm1(Point p); }
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Annotate("java", "annotate I.norm1.p nonnull noalias"); err != nil {
		t.Fatal(err)
	}
	jFn, err := sess.MethodDecl("java", "I", "norm1")
	if err != nil {
		t.Fatal(err)
	}
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) {
		at := cmem.Addr(args[0])
		x, err := mem.ReadF32(at)
		if err != nil {
			return 0, err
		}
		y, err := mem.ReadF32(at + 4)
		if err != nil {
			return 0, err
		}
		if x < 0 {
			x = -x
		}
		if y < 0 {
			y = -y
		}
		return uint64(f32bits(x + y)), nil
	}
	call, err := CompileFromSession(sess, "java", jFn, "c", "norm1", cmem.ILP32, impl)
	if err != nil {
		t.Fatal(err)
	}
	h := jheap.NewHeap()
	p := h.New("Point", 2)
	_ = h.SetField(p, 0, jheap.FloatSlot(-3))
	_ = h.SetField(p, 1, jheap.FloatSlot(4))
	outs, err := call.Invoke(h, []jheap.Slot{jheap.RefSlot(p)})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].F != 7 {
		t.Errorf("norm1 = %v, want 7", outs[0].F)
	}
}

func TestFusedUnsupportedFallsOut(t *testing.T) {
	// Nullable pointers inside fused aggregates are outside the fused
	// subset; the error must match ErrUnsupported so callers can fall
	// back to the general engines.
	sess := core.NewSession()
	if err := sess.LoadC("c", `
		struct Box { int *maybe; };
		void eat(struct Box *b);
	`, cmem.ILP32); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Annotate("c", "annotate eat.b nonnull"); err != nil {
		t.Fatal(err)
	}
	if err := sess.LoadJava("java", `
		class IntBox { int v; }
		class Box { IntBox maybe; }
		interface I { void eat(Box b); }
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Annotate("java", "annotate I.eat.b nonnull noalias"); err != nil {
		t.Fatal(err)
	}
	jFn, err := sess.MethodDecl("java", "I", "eat")
	if err != nil {
		t.Fatal(err)
	}
	impl := func(mem *cmem.Arena, args []uint64) (uint64, error) { return 0, nil }
	_, err = CompileFromSession(sess, "java", jFn, "c", "eat", cmem.ILP32, impl)
	if err == nil {
		t.Fatal("nullable-pointer aggregate compiled")
	}
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("error %v does not match ErrUnsupported", err)
	}
}

// TestPropertyFusedMatchesGeneral drives the fused stub and the
// value-tree stub with random point sets and requires identical fitted
// lines.
func TestPropertyFusedMatchesGeneral(t *testing.T) {
	sess, call := compileFitter(t)
	binder := bind.NewC(sess.Universe("c"), cmem.ILP32)
	target := core.NewCTarget(binder, sess.Universe("c").Lookup("fitter"), cFitterImpl)
	general, err := sess.NewCallStub("java", "JavaIdeal", "c", "fitter", core.EngineCompiled, target)
	if err != nil {
		t.Fatal(err)
	}
	jbinder := bind.NewJ(sess.Universe("java"))
	ptsDecl := sess.Universe("java").Lookup("JavaIdeal").Type.Methods[0].Params[0].Type

	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		coords := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Keep within float32-exact range to avoid rounding asymmetry.
			coords = append(coords, float64(float32(x)))
		}
		if len(coords)%2 == 1 {
			coords = coords[:len(coords)-1]
		}
		h := jheap.NewHeap()
		vec := buildHeapPoints(t, h, coords...)

		fusedOuts, err := call.Invoke(h, []jheap.Slot{jheap.RefSlot(vec)})
		if err != nil {
			return false
		}
		in, err := jbinder.Read(ptsDecl, h, jheap.RefSlot(vec))
		if err != nil {
			return false
		}
		genOut, err := general.Invoke(value.NewRecord(in))
		if err != nil {
			return false
		}
		// Compare the two Lines field by field.
		line := fusedOuts[0].R
		gen := genOut.(value.Record).Fields[0].(value.Record)
		for i, fi := range []int{0, 1} {
			ref, err := h.Field(line, fi)
			if err != nil {
				return false
			}
			pt := gen.Fields[i].(value.Record)
			for j, fj := range []int{0, 1} {
				s, err := h.Field(ref.R, fj)
				if err != nil {
					return false
				}
				if s.F != pt.Fields[j].(value.Real).V {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
