package fuse

import (
	"fmt"

	"repro/internal/cmem"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/stype"
)

// CompileFromSession builds a fused Java→C stub from declarations loaded
// in a session: jDecl names a function-shaped Java declaration (use
// core.Session.MethodDecl to synthesize one from an interface method),
// cDecl a C function. The comparison runs with the session's default
// rules; both request and reply correspondences are specialized.
func CompileFromSession(
	sess *core.Session,
	jUniverse, jDecl, cUniverse, cDecl string,
	model cmem.Model,
	impl func(mem *cmem.Arena, args []uint64) (uint64, error),
) (*Call, error) {
	jU := sess.Universe(jUniverse)
	cU := sess.Universe(cUniverse)
	if jU == nil || cU == nil {
		return nil, fmt.Errorf("fuse: unknown universe")
	}
	jd := jU.Lookup(jDecl)
	cd := cU.Lookup(cDecl)
	if jd == nil || cd == nil {
		return nil, fmt.Errorf("fuse: unknown declaration")
	}
	mtJ, err := sess.Mtype(jUniverse, jDecl)
	if err != nil {
		return nil, err
	}
	mtC, err := sess.Mtype(cUniverse, cDecl)
	if err != nil {
		return nil, err
	}
	reqJ, repJ, err := callShapeM(mtJ)
	if err != nil {
		return nil, err
	}
	reqC, repC, err := callShapeM(mtC)
	if err != nil {
		return nil, err
	}
	c := compare.NewComparer(compare.DefaultRules())
	m, ok := c.Equivalent(mtJ, mtC)
	if !ok {
		return nil, fmt.Errorf("fuse: declarations are not equivalent:\n%s", c.Explain(mtJ, mtC, compare.ModeEqual))
	}
	reqPlan, err := plan.BuildFor(m, reqJ, reqC)
	if err != nil {
		return nil, err
	}
	m2, ok := c.Equivalent(repC, repJ)
	if !ok {
		return nil, fmt.Errorf("fuse: reply records not equivalent in reverse")
	}
	repPlan, err := plan.BuildFor(m2, repC, repJ)
	if err != nil {
		return nil, err
	}
	jFn := jd.Type
	cFn := cd.Type
	if jFn.Kind != stype.KFunc || cFn.Kind != stype.KFunc {
		return nil, fmt.Errorf("fuse: both declarations must be functions (got %s, %s)", jFn.Kind, cFn.Kind)
	}
	return CompileCall(jU, jFn, cU, cFn, model, reqPlan, repPlan, impl)
}

// callShapeM extracts the request and reply records of a lowered function
// port.
func callShapeM(mt *mtype.Type) (req, rep *mtype.Type, err error) {
	u := mt
	for u != nil && u.Kind() == mtype.KindRecursive {
		u = u.Body()
	}
	if u == nil || u.Kind() != mtype.KindPort {
		return nil, nil, fmt.Errorf("fuse: not a function port")
	}
	req = u.Elem()
	for req.Kind() == mtype.KindRecursive {
		req = req.Body()
	}
	if req.Kind() != mtype.KindRecord || len(req.Fields()) == 0 {
		return nil, nil, fmt.Errorf("fuse: malformed request record")
	}
	last := req.Fields()[len(req.Fields())-1].Type
	for last.Kind() == mtype.KindRecursive {
		last = last.Body()
	}
	if last.Kind() != mtype.KindPort {
		return nil, nil, fmt.Errorf("fuse: request has no reply port")
	}
	rep = last.Elem()
	for rep.Kind() == mtype.KindRecursive {
		rep = rep.Body()
	}
	return req, rep, nil
}
