package fuse

import (
	"fmt"
	"math"

	"repro/internal/cmem"
	"repro/internal/compare"
	"repro/internal/jheap"
	"repro/internal/lower"
	"repro/internal/mtype"
	"repro/internal/plan"
	"repro/internal/stype"
)

// Call is a fully specialized Java→C call stub: it reads Java argument
// slots, writes C argument memory, invokes the implementation, and
// constructs Java result objects, with no dynamic value trees anywhere.
type Call struct {
	model cmem.Model
	impl  func(mem *cmem.Arena, args []uint64) (uint64, error)

	inMovers  []inMover
	outMovers []outMover
	nCArgs    int
	buildOuts []outBuilder
}

// inMover fills one C argument word (and any backing memory) from the
// Java arguments.
type inMover func(h *jheap.Heap, args []jheap.Slot, mem *cmem.Arena, cargs []uint64) error

// outMover allocates one C output buffer before the call and remembers
// its address.
type outMover struct {
	argIndex int
	size     int
	align    int
}

// outBuilder constructs one Java output from the C output buffers and the
// return word.
type outBuilder func(h *jheap.Heap, mem *cmem.Arena, outAddrs []cmem.Addr, ret uint64) (jheap.Slot, error)

// CompileCall builds a fused stub between a Java function-shaped
// declaration (a synthesized method declaration works, see
// core.MethodDecl) and a C function declaration. reqPlan is the coercion
// plan for the request records (Java→C) and repPlan for the reply records
// (C→Java); both come from a successful equivalence match (see
// CompileFromSession, which assembles all of this from a core.Session).
// Returns ErrUnsupported-wrapped errors for constructs outside the fused
// subset.
func CompileCall(
	jU *stype.Universe, jFn *stype.Type,
	cU *stype.Universe, cFn *stype.Type,
	model cmem.Model,
	reqPlan, repPlan *plan.Plan,
	impl func(mem *cmem.Arena, args []uint64) (uint64, error),
) (*Call, error) {
	if jFn.Kind != stype.KFunc || cFn.Kind != stype.KFunc {
		return nil, fmt.Errorf("fuse: both declarations must be functions")
	}
	jc := &jContext{u: jU}
	cc := &cContext{u: cU, lay: cmem.NewLayouts(cU, model)}

	jSig, err := lower.SignatureOf(jFn.Params, jFn.Result)
	if err != nil {
		return nil, err
	}
	cSig, err := lower.SignatureOf(cFn.Params, cFn.Result)
	if err != nil {
		return nil, err
	}
	for name, role := range jSig.Roles {
		if role != lower.RoleIn {
			return nil, unsupported("java parameter %s has role %s", name, role)
		}
	}

	call := &Call{model: model, impl: impl, nCArgs: len(cFn.Params)}

	// --- Request direction ---
	if reqPlan.Root.Kind != compare.DecRecord {
		return nil, unsupported("request plan root is not a record")
	}
	rn := reqPlan.Root

	// Java-side leaf metadata: group FlatA leaves by their input-record
	// field (path[0]) and precompute accessors for prim groups.
	type aParamInfo struct {
		param   stype.Param
		argIdx  int // position in the Java argument slots
		leafIdx []int
	}
	var aParams []aParamInfo
	{
		idx := 0
		for _, p := range jFn.Params {
			aParams = append(aParams, aParamInfo{param: p, argIdx: idx})
			idx++
		}
	}
	aFieldOf := func(i int) (int, error) {
		leaf := rn.FlatA[i]
		if len(leaf.Path) == 0 {
			return -1, unsupported("request collapsed to a single leaf")
		}
		return leaf.Path[0], nil
	}
	for i, leaf := range rn.FlatA {
		if leaf.Unit {
			continue
		}
		fld, err := aFieldOf(i)
		if err != nil {
			return nil, err
		}
		if fld >= len(aParams) {
			continue // the reply-port field
		}
		aParams[fld].leafIdx = append(aParams[fld].leafIdx, i)
	}

	// C-side: group FlatB leaves by input-record field; map input-record
	// fields back to parameter positions.
	cInputIdx := make([]int, 0, len(cFn.Params)) // input-record field → param position
	for k, p := range cFn.Params {
		if cSig.Roles[p.Name] == lower.RoleIn || cSig.Roles[p.Name] == lower.RoleInOut {
			cInputIdx = append(cInputIdx, k)
		}
	}
	bLeavesByField := make(map[int][]int)
	for j, leaf := range rn.FlatB {
		if leaf.Unit {
			continue
		}
		if len(leaf.Path) == 0 {
			return nil, unsupported("request collapsed to a single leaf")
		}
		bLeavesByField[leaf.Path[0]] = append(bLeavesByField[leaf.Path[0]], j)
	}
	// Inverse of Perm: FlatB index → FlatA index.
	invPerm := make(map[int]int, len(rn.Perm))
	for i, j := range rn.Perm {
		if j >= 0 {
			invPerm[j] = i
		}
	}

	// aLeafAccessor resolves the accessor + kind for one FlatA leaf index
	// by locating the owning parameter and the leaf's position inside it.
	jlsByParam := make(map[int][]jLeaf)
	aLeafInfo := func(i int) (jAccessor, leafKind, error) {
		fld, err := aFieldOf(i)
		if err != nil {
			return jAccessor{}, 0, err
		}
		ap := aParams[fld]
		jls, ok := jlsByParam[fld]
		if !ok {
			jls, err = jc.jLeaves(ap.param.Type, nil)
			if err != nil {
				return jAccessor{}, 0, err
			}
			jlsByParam[fld] = jls
		}
		// Position of i within its parameter's leaves.
		pos := -1
		for k, li := range ap.leafIdx {
			if li == i {
				pos = k
				break
			}
		}
		if pos < 0 || pos >= len(jls) {
			return jAccessor{}, 0, unsupported("leaf alignment mismatch in parameter %s", ap.param.Name)
		}
		// Prefix the argument position: readJArg's first index selects the
		// argument slot, the rest navigate object fields.
		fields := append([]int{ap.argIdx}, jls[pos].acc.fields...)
		return jAccessor{fields: fields}, jls[pos].kind, nil
	}

	// Compile a mover per C parameter.
	listLenSources := make(map[string]func(h *jheap.Heap, args []jheap.Slot) (int, error))
	for k, p := range cFn.Params {
		k := k
		role := cSig.Roles[p.Name]
		switch role {
		case lower.RoleInOut:
			return nil, unsupported("inout parameter %s", p.Name)
		case lower.RoleOut:
			if p.Type.Kind != stype.KPointer {
				return nil, unsupported("out parameter %s is not a pointer", p.Name)
			}
			lay, err := cc.lay.Of(p.Type.ElemType)
			if err != nil {
				return nil, err
			}
			call.outMovers = append(call.outMovers, outMover{argIndex: k, size: lay.Size, align: lay.Align})
		case lower.RoleLength:
			arrName := cSig.LengthOf[p.Name]
			name := p.Name
			call.inMovers = append(call.inMovers, func(h *jheap.Heap, args []jheap.Slot, mem *cmem.Arena, cargs []uint64) error {
				src, ok := listLenSources[arrName]
				if !ok {
					return fmt.Errorf("fuse: length source for %s (%s) not compiled", arrName, name)
				}
				n, err := src(h, args)
				if err != nil {
					return err
				}
				cargs[k] = uint64(int64(n))
				return nil
			})
		case lower.RoleIn:
			// Which input-record field is this parameter?
			fieldIdx := -1
			for fi, pk := range cInputIdx {
				if pk == k {
					fieldIdx = fi
					break
				}
			}
			if fieldIdx < 0 {
				return nil, fmt.Errorf("fuse: parameter %s not in input record", p.Name)
			}
			mover, lenSrc, err := compileInParam(jc, cc, rn, aLeafInfo, invPerm,
				bLeavesByField[fieldIdx], p, k, reqPlan)
			if err != nil {
				return nil, fmt.Errorf("parameter %s: %w", p.Name, err)
			}
			call.inMovers = append(call.inMovers, mover)
			if lenSrc != nil {
				listLenSources[p.Name] = lenSrc
			}
		}
	}

	// --- Reply direction ---
	if err := compileReply(jc, cc, call, jFn, cFn, cSig, repPlan); err != nil {
		return nil, err
	}
	return call, nil
}

// compileInParam builds the mover for one C input parameter.
func compileInParam(
	jc *jContext, cc *cContext,
	rn *plan.Node,
	aLeafInfo func(int) (jAccessor, leafKind, error),
	invPerm map[int]int,
	bLeafIdx []int,
	p stype.Param, argIdx int,
	reqPlan *plan.Plan,
) (inMover, func(h *jheap.Heap, args []jheap.Slot) (int, error), error) {
	// Case 1: single B leaf: either a fused collection (a μ list node) or
	// a scalar.
	if len(bLeafIdx) == 1 {
		j := bLeafIdx[0]
		ai, ok := invPerm[j]
		if !ok {
			return nil, nil, unsupported("no source for parameter %s", p.Name)
		}
		if isListParam(p.Type) {
			return compileListParam(jc, cc, rn, aLeafInfo, ai, p, argIdx, reqPlan)
		}
		// Scalar parameter.
		if isScalarParam(cc, p.Type) {
			acc, jk, err := aLeafInfo(ai)
			if err != nil {
				return nil, nil, err
			}
			ck, size, err := scalarKind(cc, p.Type)
			if err != nil {
				return nil, nil, err
			}
			if !compatible(jk, ck) {
				return nil, nil, unsupported("leaf kinds incompatible for %s", p.Name)
			}
			mover := func(h *jheap.Heap, args []jheap.Slot, mem *cmem.Arena, cargs []uint64) error {
				s, err := readJArg(h, args, acc)
				if err != nil {
					return err
				}
				cargs[argIdx] = encodeWord(s, ck, size)
				return nil
			}
			return mover, nil, nil
		}
	}
	// Case 2: aggregate parameter (pointer to struct/array, by value
	// region): every B leaf of this parameter is a primitive; write them
	// into an allocated region.
	return compileAggregateParam(jc, cc, rn, aLeafInfo, invPerm, bLeafIdx, p, argIdx)
}

func isListParam(t *stype.Type) bool {
	return (t.Kind == stype.KPointer || t.Kind == stype.KArray) && t.Ann.LengthFrom != ""
}

func isScalarParam(cc *cContext, t *stype.Type) bool {
	tt, _, err := resolveNamed(cc.u, t)
	if err != nil {
		return false
	}
	return tt.Kind == stype.KPrim || tt.Kind == stype.KEnum
}

func scalarKind(cc *cContext, t *stype.Type) (leafKind, int, error) {
	tt, _, err := resolveNamed(cc.u, t)
	if err != nil {
		return 0, 0, err
	}
	if tt.Kind == stype.KEnum {
		return leafInt, 4, nil
	}
	return func() (leafKind, int, error) { return cPrimKind(tt) }()
}

func encodeWord(s jheap.Slot, ck leafKind, size int) uint64 {
	switch ck {
	case leafF32:
		return uint64(f32bits(float32(s.F)))
	case leafF64:
		return f64bits(s.F)
	case leafChar:
		if s.Kind == jheap.SlotChar {
			return uint64(s.C)
		}
		return uint64(s.I)
	default:
		if s.Kind == jheap.SlotChar {
			return uint64(s.C)
		}
		return uint64(s.I)
	}
}

// readJArg navigates from the argument slots: the first accessor index
// selects the argument, the rest are field loads.
func readJArg(h *jheap.Heap, args []jheap.Slot, acc jAccessor) (jheap.Slot, error) {
	if len(acc.fields) == 0 {
		return jheap.Slot{}, fmt.Errorf("fuse: empty argument accessor")
	}
	idx := acc.fields[0]
	if idx >= len(args) {
		return jheap.Slot{}, fmt.Errorf("fuse: argument %d missing", idx)
	}
	return readJ(h, args[idx], jAccessor{fields: acc.fields[1:]})
}

// compileListParam fuses a Vector-like Java argument into a contiguous C
// array with out-of-band length.
func compileListParam(
	jc *jContext, cc *cContext,
	rn *plan.Node,
	aLeafInfo func(int) (jAccessor, leafKind, error),
	ai int,
	p stype.Param, argIdx int,
	reqPlan *plan.Plan,
) (inMover, func(h *jheap.Heap, args []jheap.Slot) (int, error), error) {
	// The A leaf accessor locates the collection reference.
	acc, err := listLeafAccessor(rn, ai)
	if err != nil {
		return nil, nil, err
	}
	// Element plans: the list pair's element correspondence is the cons
	// record's first leaf plan. Locate the list plan node for this pair.
	listNode := findChildPlan(reqPlan, rn, ai)
	if listNode == nil || listNode.Kind != compare.DecChoice {
		return nil, nil, unsupported("list parameter %s has no list plan", p.Name)
	}
	consPlan := listNode.AltPlans[1]
	if consPlan == nil || consPlan.Kind != compare.DecRecord {
		return nil, nil, unsupported("list parameter %s has no cons plan", p.Name)
	}
	// Element mover: Java element reference → C element region.
	cElem := p.Type.ElemType
	elemLay, err := cc.lay.Of(cElem)
	if err != nil {
		return nil, nil, err
	}
	elemMover, err := compileElementMover(cc, consPlan, cElem)
	if err != nil {
		return nil, nil, fmt.Errorf("element: %w", err)
	}

	lenSrc := func(h *jheap.Heap, args []jheap.Slot) (int, error) {
		s, err := readJArg(h, args, acc)
		if err != nil {
			return 0, err
		}
		if s.Kind != jheap.SlotRef || s.R == jheap.NullRef {
			return 0, fmt.Errorf("fuse: collection argument is null")
		}
		return h.VectorLen(s.R)
	}
	mover := func(h *jheap.Heap, args []jheap.Slot, mem *cmem.Arena, cargs []uint64) error {
		s, err := readJArg(h, args, acc)
		if err != nil {
			return err
		}
		if s.Kind != jheap.SlotRef || s.R == jheap.NullRef {
			return fmt.Errorf("fuse: collection argument is null")
		}
		n, err := h.VectorLen(s.R)
		if err != nil {
			return err
		}
		base := cmem.Null
		if n > 0 {
			base = mem.Alloc(n*elemLay.Size, elemLay.Align)
		}
		for i := 0; i < n; i++ {
			er, err := h.VectorAt(s.R, i)
			if err != nil {
				return err
			}
			if er == jheap.NullRef {
				return fmt.Errorf("fuse: null element %d", i)
			}
			if err := elemMover(h, jheap.RefSlot(er), mem, base+cmem.Addr(i*elemLay.Size)); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		cargs[argIdx] = uint64(base)
		return nil
	}
	return mover, lenSrc, nil
}

// listLeafAccessor returns the accessor of the collection reference
// itself (not its elements): the leaf is a μ node, so jLeaves does not
// apply; the accessor is the parameter slot.
func listLeafAccessor(rn *plan.Node, ai int) (jAccessor, error) {
	leaf := rn.FlatA[ai]
	if len(leaf.Path) != 1 {
		return jAccessor{}, unsupported("collection nested inside an aggregate")
	}
	return jAccessor{fields: []int{leaf.Path[0]}}, nil
}

// compileElementMover builds the per-element fused mover from the cons
// plan: FlatA leaves are the element's Java leaves (plus the tail μ),
// FlatB the C element leaves (plus tail).
func compileElementMover(cc *cContext, consPlan *plan.Node, cElem *stype.Type) (func(h *jheap.Heap, s jheap.Slot, mem *cmem.Arena, at cmem.Addr) error, error) {
	// C element leaves in lowering order.
	cls, err := cc.cLeaves(cElem, cAccessor{})
	if err != nil {
		return nil, err
	}
	// Java element leaves: FlatA of the cons record excludes the tail μ
	// leaf; its accessors come from the element class via the plan's A
	// mtype tags is unavailable — instead walk the Java element type.
	// The cons record's A side is Record(elem, tail): leaves with path
	// prefix [0] belong to the element.
	var aElemLeaves, bElemLeaves []int
	for i, l := range consPlan.FlatA {
		if l.Unit {
			continue
		}
		if len(l.Path) > 0 && l.Path[0] == 0 {
			aElemLeaves = append(aElemLeaves, i)
		}
	}
	for j, l := range consPlan.FlatB {
		if l.Unit {
			continue
		}
		if len(l.Path) > 0 && l.Path[0] == 0 {
			bElemLeaves = append(bElemLeaves, j)
		}
	}
	if len(bElemLeaves) != len(cls) {
		return nil, unsupported("element leaf count mismatch (%d plan vs %d C)", len(bElemLeaves), len(cls))
	}
	// Map B element leaf order → position, then A leaf i → its C leaf.
	bPos := make(map[int]int, len(bElemLeaves))
	for pos, j := range bElemLeaves {
		bPos[j] = pos
	}
	type pairMove struct {
		jacc jAccessor
		jk   leafKind
		cl   cLeaf
	}
	var moves []pairMove
	// The Java element's own leaf accessors must be derived from the
	// class the element values come from. The accessor is simply the
	// flatten path with the leading element index stripped: field chains
	// of by-value classes align one-to-one with mtype record nesting.
	for _, i := range aElemLeaves {
		j := consPlan.Perm[i]
		if j < 0 {
			return nil, unsupported("element leaf unmatched")
		}
		pos, ok := bPos[j]
		if !ok {
			return nil, unsupported("element leaf maps outside the element")
		}
		jk := leafKindOfMtype(consPlan.FlatA[i].Node)
		if jk == 0 {
			return nil, unsupported("element leaf is not a primitive")
		}
		if !compatible(jk, cls[pos].kind) {
			return nil, unsupported("element leaf kinds incompatible")
		}
		moves = append(moves, pairMove{
			jacc: jAccessor{fields: consPlan.FlatA[i].Path[1:]},
			jk:   jk,
			cl:   cls[pos],
		})
	}
	model := cc.lay.Model()
	return func(h *jheap.Heap, s jheap.Slot, mem *cmem.Arena, at cmem.Addr) error {
		for _, mv := range moves {
			slot, err := readJ(h, s, mv.jacc)
			if err != nil {
				return err
			}
			dst, err := resolveC(mem, model, at, mv.cl.acc)
			if err != nil {
				return err
			}
			if err := moveJ2C(mem, dst, mv.cl, slot); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// leafKindOfMtype classifies a flattened Mtype leaf for compatibility
// checks; 0 means non-primitive.
func leafKindOfMtype(t *mtype.Type) leafKind {
	for t != nil && t.Kind() == mtype.KindRecursive {
		t = t.Body()
	}
	if t == nil {
		return 0
	}
	switch t.Kind() {
	case mtype.KindReal:
		return leafF64
	case mtype.KindInteger:
		return leafInt
	case mtype.KindCharacter:
		return leafChar
	default:
		return 0
	}
}

// compileAggregateParam fuses a pointer-to-aggregate or by-value region
// input parameter.
func compileAggregateParam(
	jc *jContext, cc *cContext,
	rn *plan.Node,
	aLeafInfo func(int) (jAccessor, leafKind, error),
	invPerm map[int]int,
	bLeafIdx []int,
	p stype.Param, argIdx int,
) (inMover, func(h *jheap.Heap, args []jheap.Slot) (int, error), error) {
	pt := p.Type
	deref := false
	if pt.Kind == stype.KPointer {
		if pt.Ann.LengthFrom != "" || !pt.Ann.NonNull && pt.Ann.FixedLen == 0 {
			return nil, nil, unsupported("nullable or indefinite pointer parameter %s", p.Name)
		}
		deref = true
		if pt.Ann.FixedLen > 0 {
			inner := stype.NewArray(pt.ElemType, pt.Ann.FixedLen)
			pt = inner
		} else {
			pt = pt.ElemType
		}
	}
	cls, err := cc.cLeaves(pt, cAccessor{})
	if err != nil {
		return nil, nil, err
	}
	if len(cls) != len(bLeafIdx) {
		return nil, nil, unsupported("aggregate leaf mismatch for %s", p.Name)
	}
	lay, err := cc.lay.Of(pt)
	if err != nil {
		return nil, nil, err
	}
	type pairMove struct {
		jacc jAccessor
		cl   cLeaf
	}
	moves := make([]pairMove, 0, len(cls))
	for pos, j := range bLeafIdx {
		ai, ok := invPerm[j]
		if !ok {
			return nil, nil, unsupported("no source for a leaf of %s", p.Name)
		}
		acc, jk, err := aLeafInfo(ai)
		if err != nil {
			return nil, nil, err
		}
		if !compatible(jk, cls[pos].kind) {
			return nil, nil, unsupported("leaf kinds incompatible in %s", p.Name)
		}
		moves = append(moves, pairMove{jacc: acc, cl: cls[pos]})
	}
	model := cc.lay.Model()
	mover := func(h *jheap.Heap, args []jheap.Slot, mem *cmem.Arena, cargs []uint64) error {
		base := mem.Alloc(lay.Size, lay.Align)
		for _, mv := range moves {
			slot, err := readJArg(h, args, mv.jacc)
			if err != nil {
				return err
			}
			dst, err := resolveC(mem, model, base, mv.cl.acc)
			if err != nil {
				return err
			}
			if err := moveJ2C(mem, dst, mv.cl, slot); err != nil {
				return err
			}
		}
		if !deref {
			return unsupported("by-value aggregate argument passing for %s", p.Name)
		}
		cargs[argIdx] = uint64(base)
		return nil
	}
	return mover, nil, nil
}

// compileReply builds the C→Java output constructors from the reply
// plan. repPlan's FlatA side is the C reply record (out params in order,
// then the return), FlatB the Java reply record.
func compileReply(jc *jContext, cc *cContext, call *Call,
	jFn, cFn *stype.Type, cSig lower.Signature, repPlan *plan.Plan) error {
	if repPlan.Root.Kind != compare.DecRecord {
		return unsupported("reply plan root is not a record")
	}
	rn := repPlan.Root

	// C-side outputs, in lowering order: out params then return.
	type cOut struct {
		isReturn bool
		outIdx   int // index into the allocated out buffers
		elem     *stype.Type
	}
	var cOuts []cOut
	outIdx := 0
	for _, p := range cFn.Params {
		if cSig.Roles[p.Name] != lower.RoleOut {
			continue
		}
		cOuts = append(cOuts, cOut{outIdx: outIdx, elem: p.Type.ElemType})
		outIdx++
	}
	if cFn.Result != nil {
		cOuts = append(cOuts, cOut{isReturn: true})
	}

	// Precompute C leaf accessors per output.
	cLeafAt := make(map[int]struct {
		out cOut
		cl  cLeaf
		pos int
	})
	{
		byField := make(map[int][]int)
		for i, l := range rn.FlatA {
			if l.Unit {
				continue
			}
			if len(l.Path) == 0 {
				return unsupported("reply collapsed to a single leaf")
			}
			byField[l.Path[0]] = append(byField[l.Path[0]], i)
		}
		for fld, leafIdxs := range byField {
			if fld >= len(cOuts) {
				return unsupported("reply leaf outside outputs")
			}
			out := cOuts[fld]
			if out.isReturn {
				if len(leafIdxs) != 1 {
					return unsupported("aggregate return value")
				}
				kind, size, err := scalarKind(cc, cFn.Result)
				if err != nil {
					return err
				}
				cLeafAt[leafIdxs[0]] = struct {
					out cOut
					cl  cLeaf
					pos int
				}{out, cLeaf{kind: kind, size: size}, 0}
				continue
			}
			cls, err := cc.cLeaves(out.elem, cAccessor{})
			if err != nil {
				return err
			}
			if len(cls) != len(leafIdxs) {
				return unsupported("output leaf count mismatch")
			}
			for pos, i := range leafIdxs {
				cLeafAt[i] = struct {
					out cOut
					cl  cLeaf
					pos int
				}{out, cls[pos], pos}
			}
		}
	}

	// Java-side outputs: out params (none allowed) then the return.
	if jFn.Result == nil {
		return unsupported("void java side with outputs")
	}
	// Group FlatB leaves by output; only one Java output (the return).
	var jLeafIdxs []int
	for j, l := range rn.FlatB {
		if l.Unit {
			continue
		}
		if len(l.Path) == 0 {
			return unsupported("reply collapsed to a single leaf")
		}
		if l.Path[0] != 0 {
			return unsupported("multiple java outputs")
		}
		jLeafIdxs = append(jLeafIdxs, j)
	}
	builder, nLeaves, err := compileJBuilder(jc, jFn.Result)
	if err != nil {
		return err
	}
	if nLeaves != len(jLeafIdxs) {
		return unsupported("java result leaf count mismatch (%d vs %d)", nLeaves, len(jLeafIdxs))
	}
	jPos := make(map[int]int, len(jLeafIdxs))
	for pos, j := range jLeafIdxs {
		jPos[j] = pos
	}

	type replyMove struct {
		src struct {
			out cOut
			cl  cLeaf
			pos int
		}
		dstPos int
		jk     leafKind
	}
	var moves []replyMove
	jlsKinds, err := jc.jLeaves(jFn.Result, nil)
	if err != nil {
		return err
	}
	for i, j := range rn.Perm {
		if j < 0 {
			continue
		}
		src, ok := cLeafAt[i]
		if !ok {
			return unsupported("reply leaf with no C source")
		}
		pos, ok := jPos[j]
		if !ok {
			return unsupported("reply leaf with no java destination")
		}
		if !compatible(jlsKinds[pos].kind, src.cl.kind) {
			return unsupported("reply leaf kinds incompatible")
		}
		moves = append(moves, replyMove{src: src, dstPos: pos, jk: jlsKinds[pos].kind})
	}

	model := cc.lay.Model()
	call.buildOuts = append(call.buildOuts, func(h *jheap.Heap, mem *cmem.Arena, outAddrs []cmem.Addr, ret uint64) (jheap.Slot, error) {
		leaves := make([]jheap.Slot, nLeaves)
		for _, mv := range moves {
			var slot jheap.Slot
			var err error
			if mv.src.out.isReturn {
				slot, err = decodeReturnWord(ret, mv.src.cl, mv.jk)
			} else {
				var at cmem.Addr
				at, err = resolveC(mem, model, outAddrs[mv.src.out.outIdx], mv.src.cl.acc)
				if err == nil {
					slot, err = moveC2J(mem, at, mv.src.cl, mv.jk)
				}
			}
			if err != nil {
				return jheap.Slot{}, err
			}
			leaves[mv.dstPos] = slot
		}
		return builder(h, leaves)
	})
	return nil
}

func decodeReturnWord(ret uint64, cl cLeaf, jk leafKind) (jheap.Slot, error) {
	switch cl.kind {
	case leafF32:
		return jheap.FloatSlot(float64(f32frombits(uint32(ret)))), nil
	case leafF64:
		return jheap.FloatSlot(f64frombits(ret)), nil
	default:
		shift := uint(64 - 8*cl.size)
		n := int64(ret<<shift) >> shift
		if jk == leafChar {
			return jheap.CharSlot(rune(n)), nil
		}
		return jheap.IntSlot(n), nil
	}
}

// compileJBuilder compiles a constructor for the Java result type: given
// leaf slots in jLeaves order it builds the object graph and returns the
// root slot.
func compileJBuilder(jc *jContext, t *stype.Type) (func(h *jheap.Heap, leaves []jheap.Slot) (jheap.Slot, error), int, error) {
	t, decl, err := resolveNamed(jc.u, t)
	if err != nil {
		return nil, 0, err
	}
	switch t.Kind {
	case stype.KPrim:
		if _, err := jPrimKind(t); err != nil {
			return nil, 0, err
		}
		return func(h *jheap.Heap, leaves []jheap.Slot) (jheap.Slot, error) {
			return leaves[0], nil
		}, 1, nil
	case stype.KNamed:
		target := decl.Type
		if !t.Ann.NonNull || !lower.ByValueOf(decl, t.Ann) {
			return nil, 0, unsupported("fused result must be a non-null by-value class")
		}
		type fieldBuilder struct {
			idx   int
			build func(h *jheap.Heap, leaves []jheap.Slot) (jheap.Slot, error)
			width int
		}
		var fbs []fieldBuilder
		total := 0
		for i, f := range target.Fields {
			if f.Type.Ann.Ignore {
				continue
			}
			fb, width, err := compileJBuilder(jc, f.Type)
			if err != nil {
				return nil, 0, fmt.Errorf("%s.%s: %w", decl.Name, f.Name, err)
			}
			fbs = append(fbs, fieldBuilder{idx: i, build: fb, width: width})
			total += width
		}
		class := decl.Name
		nFields := len(target.Fields)
		return func(h *jheap.Heap, leaves []jheap.Slot) (jheap.Slot, error) {
			r := h.New(class, nFields)
			off := 0
			for _, fb := range fbs {
				slot, err := fb.build(h, leaves[off:off+fb.width])
				if err != nil {
					return jheap.Slot{}, err
				}
				if err := h.SetField(r, fb.idx, slot); err != nil {
					return jheap.Slot{}, err
				}
				off += fb.width
			}
			return jheap.RefSlot(r), nil
		}, total, nil
	default:
		return nil, 0, unsupported("fused result of kind %s", t.Kind)
	}
}

// findChildPlan returns the plan node for the A-side leaf's pair, if the
// request plan recorded one.
func findChildPlan(p *plan.Plan, rn *plan.Node, aLeaf int) *plan.Node {
	return rn.LeafPlans[aLeaf]
}

// Invoke runs the fused call: Java argument slots in, Java output slots
// out (out parameters in order, then the return value).
func (c *Call) Invoke(h *jheap.Heap, args []jheap.Slot) ([]jheap.Slot, error) {
	mem := cmem.NewArena()
	cargs := make([]uint64, c.nCArgs)
	outAddrs := make([]cmem.Addr, len(c.outMovers))
	for i, om := range c.outMovers {
		buf := mem.Alloc(om.size, om.align)
		outAddrs[i] = buf
		cargs[om.argIndex] = uint64(buf)
	}
	for _, mv := range c.inMovers {
		if err := mv(h, args, mem, cargs); err != nil {
			return nil, err
		}
	}
	ret, err := c.impl(mem, cargs)
	if err != nil {
		return nil, err
	}
	outs := make([]jheap.Slot, 0, len(c.buildOuts))
	for _, b := range c.buildOuts {
		slot, err := b(h, mem, outAddrs, ret)
		if err != nil {
			return nil, err
		}
		outs = append(outs, slot)
	}
	return outs, nil
}

func f32bits(f float32) uint32     { return math.Float32bits(f) }
func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f32frombits(u uint32) float32 { return math.Float32frombits(u) }
func f64frombits(u uint64) float64 { return math.Float64frombits(u) }
