package baseline

import (
	"testing"

	"repro/internal/cmem"
	"repro/internal/jheap"
)

// fitterImpl computes the bounding-box diagonal, as in the stub tests.
func fitterImpl(mem *cmem.Arena, args []uint64) (uint64, error) {
	pts := cmem.Addr(args[0])
	count := int(int32(args[1]))
	start := cmem.Addr(args[2])
	end := cmem.Addr(args[3])
	var minX, minY, maxX, maxY float32
	for i := 0; i < count; i++ {
		x, err := mem.ReadF32(pts + cmem.Addr(8*i))
		if err != nil {
			return 0, err
		}
		y, err := mem.ReadF32(pts + cmem.Addr(8*i+4))
		if err != nil {
			return 0, err
		}
		if i == 0 || x < minX {
			minX = x
		}
		if i == 0 || y < minY {
			minY = y
		}
		if i == 0 || x > maxX {
			maxX = x
		}
		if i == 0 || y > maxY {
			maxY = y
		}
	}
	if err := mem.WriteF32(start, minX); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(start+4, minY); err != nil {
		return 0, err
	}
	if err := mem.WriteF32(end, maxX); err != nil {
		return 0, err
	}
	return 0, mem.WriteF32(end+4, maxY)
}

// appPoints builds the application-side PointVector.
func appPoints(h *jheap.Heap, coords ...float64) jheap.Ref {
	v := h.NewVector("PointVector")
	for i := 0; i+1 < len(coords); i += 2 {
		p := h.New("Point", 2)
		_ = h.SetField(p, 0, jheap.FloatSlot(coords[i]))
		_ = h.SetField(p, 1, jheap.FloatSlot(coords[i+1]))
		_ = h.VectorAppend(v, p)
	}
	return v
}

func lineCoords(t *testing.T, h *jheap.Heap, line jheap.Ref) [4]float64 {
	t.Helper()
	var out [4]float64
	for i, fi := range []int{0, 1} {
		ref, err := h.Field(line, fi)
		if err != nil {
			t.Fatal(err)
		}
		for j, fj := range []int{0, 1} {
			s, err := h.Field(ref.R, fj)
			if err != nil {
				t.Fatal(err)
			}
			out[2*i+j] = s.F
		}
	}
	return out
}

func TestFitterViaIDL(t *testing.T) {
	h := jheap.NewHeap()
	pts := appPoints(h, 1, 5, 3, 2, 2, 7)
	line, err := FitterViaIDL(h, pts, fitterImpl)
	if err != nil {
		t.Fatal(err)
	}
	got := lineCoords(t, h, line)
	want := [4]float64{1, 2, 3, 7}
	if got != want {
		t.Errorf("line = %v, want %v", got, want)
	}
}

func TestFitterHandWritten(t *testing.T) {
	h := jheap.NewHeap()
	pts := appPoints(h, 0, 0, 10, 10, 5, -3)
	line, err := FitterHandWritten(h, pts, fitterImpl)
	if err != nil {
		t.Fatal(err)
	}
	got := lineCoords(t, h, line)
	want := [4]float64{0, -3, 10, 10}
	if got != want {
		t.Errorf("line = %v, want %v", got, want)
	}
}

func TestBothPathsAgree(t *testing.T) {
	h := jheap.NewHeap()
	pts := appPoints(h, 4, 4, -1, 9, 6, 0)
	l1, err := FitterViaIDL(h, pts, fitterImpl)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := FitterHandWritten(h, pts, fitterImpl)
	if err != nil {
		t.Fatal(err)
	}
	if lineCoords(t, h, l1) != lineCoords(t, h, l2) {
		t.Error("baseline paths disagree")
	}
}

func TestEmptyVector(t *testing.T) {
	h := jheap.NewHeap()
	pts := appPoints(h)
	if _, err := FitterViaIDL(h, pts, fitterImpl); err != nil {
		t.Errorf("empty vector via IDL: %v", err)
	}
	if _, err := FitterHandWritten(h, pts, fitterImpl); err != nil {
		t.Errorf("empty vector hand-written: %v", err)
	}
}

func TestBridgeRejectsNullElement(t *testing.T) {
	h := jheap.NewHeap()
	v := h.NewVector("PointVector")
	_ = h.VectorAppend(v, jheap.NullRef)
	if _, err := BridgeFromApp(h, v); err == nil {
		t.Error("null element accepted")
	}
}
