// Package baseline implements the competing technology of the paper's
// §6 performance question: an IDL-compiler-style path for the fitter
// example. An IDL compiler imposes its own translated types on the
// application (the Figure 4 classes), so the programmer must write bridge
// code copying between the application's types and the imposed ones; the
// generated IDL stub itself is a fixed, monomorphic marshaler.
//
// The package provides exactly those pieces, hand-written the way an IDL
// user would write them against the simulated Java heap and C memory:
//
//   - the imposed Go-side types (Point, Line — the Figure 4 translation);
//   - the bridge code (application PointVector/Point objects → imposed
//     values and back), the error-prone chore §1 describes;
//   - the fixed stub that marshals imposed values into C memory and
//     invokes the callee.
//
// The §6-perf benchmarks run this path next to the Mockingbird stub and
// a fully hand-written conversion to compare overheads.
package baseline

import (
	"fmt"

	"repro/internal/bind"
	"repro/internal/cmem"
	"repro/internal/jheap"
)

// Point is the imposed point type (Figure 4's generated class).
type Point struct {
	X, Y float32
}

// Line is the imposed line type.
type Line struct {
	Start, End Point
}

// BridgeFromApp is the programmer-written bridge from the application's
// PointVector of Point objects to the imposed []Point. Field indices
// follow the Figure 1 declaration (x at 0, y at 1).
func BridgeFromApp(h *jheap.Heap, pts jheap.Ref) ([]Point, error) {
	n, err := h.VectorLen(pts)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		ref, err := h.VectorAt(pts, i)
		if err != nil {
			return nil, err
		}
		if ref == jheap.NullRef {
			return nil, fmt.Errorf("baseline: null Point at %d", i)
		}
		xs, err := h.Field(ref, 0)
		if err != nil {
			return nil, err
		}
		ys, err := h.Field(ref, 1)
		if err != nil {
			return nil, err
		}
		out[i] = Point{X: float32(xs.F), Y: float32(ys.F)}
	}
	return out, nil
}

// BridgeToApp is the reverse bridge: the imposed Line back into
// application Line/Point objects.
func BridgeToApp(h *jheap.Heap, l Line) (jheap.Ref, error) {
	mk := func(p Point) (jheap.Ref, error) {
		r := h.New("Point", 2)
		if err := h.SetField(r, 0, jheap.FloatSlot(float64(p.X))); err != nil {
			return jheap.NullRef, err
		}
		if err := h.SetField(r, 1, jheap.FloatSlot(float64(p.Y))); err != nil {
			return jheap.NullRef, err
		}
		return r, nil
	}
	start, err := mk(l.Start)
	if err != nil {
		return jheap.NullRef, err
	}
	end, err := mk(l.End)
	if err != nil {
		return jheap.NullRef, err
	}
	line := h.New("Line", 2)
	if err := h.SetField(line, 0, jheap.RefSlot(start)); err != nil {
		return jheap.NullRef, err
	}
	if err := h.SetField(line, 1, jheap.RefSlot(end)); err != nil {
		return jheap.NullRef, err
	}
	return line, nil
}

// CallFitter is the generated IDL stub: it lays the imposed values out in
// C memory exactly as the CFriendly interface implies (a contiguous
// float[2] array, a count, two output buffers) and invokes the C
// implementation.
func CallFitter(impl bind.CFunc, pts []Point) (Line, error) {
	mem := cmem.NewArena()
	base := cmem.Null
	if len(pts) > 0 {
		base = mem.Alloc(8*len(pts), 4)
		for i, p := range pts {
			if err := mem.WriteF32(base+cmem.Addr(8*i), p.X); err != nil {
				return Line{}, err
			}
			if err := mem.WriteF32(base+cmem.Addr(8*i+4), p.Y); err != nil {
				return Line{}, err
			}
		}
	}
	start := mem.Alloc(8, 4)
	end := mem.Alloc(8, 4)
	if _, err := impl(mem, []uint64{uint64(base), uint64(int32(len(pts))), uint64(start), uint64(end)}); err != nil {
		return Line{}, err
	}
	var out Line
	var err error
	if out.Start.X, err = mem.ReadF32(start); err != nil {
		return Line{}, err
	}
	if out.Start.Y, err = mem.ReadF32(start + 4); err != nil {
		return Line{}, err
	}
	if out.End.X, err = mem.ReadF32(end); err != nil {
		return Line{}, err
	}
	if out.End.Y, err = mem.ReadF32(end + 4); err != nil {
		return Line{}, err
	}
	return out, nil
}

// FitterViaIDL is the complete baseline path: bridge from the
// application, call through the fixed stub, bridge back.
func FitterViaIDL(h *jheap.Heap, pts jheap.Ref, impl bind.CFunc) (jheap.Ref, error) {
	imposed, err := BridgeFromApp(h, pts)
	if err != nil {
		return jheap.NullRef, err
	}
	line, err := CallFitter(impl, imposed)
	if err != nil {
		return jheap.NullRef, err
	}
	return BridgeToApp(h, line)
}

// FitterHandWritten is the lower bound: a direct conversion from the
// application heap to C memory with no intermediate representation at
// all — the code a careful human would write for this one interface.
func FitterHandWritten(h *jheap.Heap, pts jheap.Ref, impl bind.CFunc) (jheap.Ref, error) {
	n, err := h.VectorLen(pts)
	if err != nil {
		return jheap.NullRef, err
	}
	mem := cmem.NewArena()
	base := cmem.Null
	if n > 0 {
		base = mem.Alloc(8*n, 4)
	}
	for i := 0; i < n; i++ {
		ref, err := h.VectorAt(pts, i)
		if err != nil {
			return jheap.NullRef, err
		}
		xs, err := h.Field(ref, 0)
		if err != nil {
			return jheap.NullRef, err
		}
		ys, err := h.Field(ref, 1)
		if err != nil {
			return jheap.NullRef, err
		}
		if err := mem.WriteF32(base+cmem.Addr(8*i), float32(xs.F)); err != nil {
			return jheap.NullRef, err
		}
		if err := mem.WriteF32(base+cmem.Addr(8*i+4), float32(ys.F)); err != nil {
			return jheap.NullRef, err
		}
	}
	start := mem.Alloc(8, 4)
	end := mem.Alloc(8, 4)
	if _, err := impl(mem, []uint64{uint64(base), uint64(int32(n)), uint64(start), uint64(end)}); err != nil {
		return jheap.NullRef, err
	}
	read := func(at cmem.Addr) (jheap.Ref, error) {
		x, err := mem.ReadF32(at)
		if err != nil {
			return jheap.NullRef, err
		}
		y, err := mem.ReadF32(at + 4)
		if err != nil {
			return jheap.NullRef, err
		}
		r := h.New("Point", 2)
		if err := h.SetField(r, 0, jheap.FloatSlot(float64(x))); err != nil {
			return jheap.NullRef, err
		}
		if err := h.SetField(r, 1, jheap.FloatSlot(float64(y))); err != nil {
			return jheap.NullRef, err
		}
		return r, nil
	}
	startRef, err := read(start)
	if err != nil {
		return jheap.NullRef, err
	}
	endRef, err := read(end)
	if err != nil {
		return jheap.NullRef, err
	}
	line := h.New("Line", 2)
	if err := h.SetField(line, 0, jheap.RefSlot(startRef)); err != nil {
		return jheap.NullRef, err
	}
	if err := h.SetField(line, 1, jheap.RefSlot(endRef)); err != nil {
		return jheap.NullRef, err
	}
	return line, nil
}
