package wire

import (
	"encoding/binary"
	"fmt"
	"math/big"

	"repro/internal/mtype"
	"repro/internal/value"
)

// This file implements the dynamic type construct of §6: "we support a
// dynamic type construct of our own which is similar to Any". A dynamic
// value travels with its own Mtype descriptor, so a receiver with no
// prior declaration can decode it, inspect it, or compare its type
// against a local declaration and convert.
//
// Descriptor encoding: the node list of the Mtype graph in preorder, each
// node as kind byte + parameters + child node ids, with cycles expressed
// by ids (every cycle passes through a Recursive node, which is the only
// node decoded in two phases).

// descriptor node kind codes (stable wire values, independent of
// mtype.Kind ordering).
const (
	dynInteger   = 1
	dynCharacter = 2
	dynReal      = 3
	dynUnit      = 4
	dynRecord    = 5
	dynChoice    = 6
	dynRecursive = 7
	dynPort      = 8
)

// maxDynNodes bounds descriptor size against hostile input.
const maxDynNodes = 1 << 16

// MarshalDynamic encodes v preceded by ty's descriptor.
func MarshalDynamic(ty *mtype.Type, v value.Value) ([]byte, error) {
	if err := mtype.Validate(ty); err != nil {
		return nil, fmt.Errorf("wire: dynamic type invalid: %w", err)
	}
	desc, err := encodeDescriptor(ty)
	if err != nil {
		return nil, err
	}
	body, err := Marshal(ty, v)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 8+len(desc)+len(body))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(desc)))
	out = append(out, desc...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	return out, nil
}

// UnmarshalDynamic decodes a dynamic value: its carried Mtype and the
// value itself.
func UnmarshalDynamic(data []byte) (*mtype.Type, value.Value, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("wire: truncated dynamic value")
	}
	dlen := binary.LittleEndian.Uint32(data)
	rest := data[4:]
	if uint64(dlen) > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("wire: truncated dynamic descriptor")
	}
	ty, err := decodeDescriptor(rest[:dlen])
	if err != nil {
		return nil, nil, err
	}
	rest = rest[dlen:]
	if len(rest) < 4 {
		return nil, nil, fmt.Errorf("wire: truncated dynamic body")
	}
	blen := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(blen) != uint64(len(rest)) {
		return nil, nil, fmt.Errorf("wire: dynamic body length mismatch")
	}
	v, err := Unmarshal(ty, rest)
	if err != nil {
		return nil, nil, err
	}
	return ty, v, nil
}

func encodeDescriptor(ty *mtype.Type) ([]byte, error) {
	nodes := mtype.Nodes(ty)
	if len(nodes) > maxDynNodes {
		return nil, fmt.Errorf("wire: dynamic type too large (%d nodes)", len(nodes))
	}
	id := make(map[*mtype.Type]uint32, len(nodes))
	for i, n := range nodes {
		id[n] = uint32(i)
	}
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nodes)))
	appendStr := func(s string) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	for _, n := range nodes {
		switch n.Kind() {
		case mtype.KindInteger:
			buf = append(buf, dynInteger)
			lo, hi := n.IntegerRange()
			appendStr(lo.String())
			appendStr(hi.String())
		case mtype.KindCharacter:
			buf = append(buf, dynCharacter, byte(n.Repertoire()))
		case mtype.KindReal:
			buf = append(buf, dynReal)
			p, e := n.RealParams()
			buf = binary.LittleEndian.AppendUint16(buf, uint16(p))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(e))
		case mtype.KindUnit:
			buf = append(buf, dynUnit)
		case mtype.KindRecord:
			buf = append(buf, dynRecord)
			fields := n.Fields()
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fields)))
			for _, f := range fields {
				buf = binary.LittleEndian.AppendUint32(buf, id[f.Type])
			}
		case mtype.KindChoice:
			buf = append(buf, dynChoice)
			alts := n.Alts()
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(alts)))
			for _, a := range alts {
				buf = binary.LittleEndian.AppendUint32(buf, id[a.Type])
			}
		case mtype.KindRecursive:
			buf = append(buf, dynRecursive)
			buf = binary.LittleEndian.AppendUint32(buf, id[n.Body()])
		case mtype.KindPort:
			buf = append(buf, dynPort)
			buf = binary.LittleEndian.AppendUint32(buf, id[n.Elem()])
		default:
			return nil, fmt.Errorf("wire: cannot encode %s in a dynamic descriptor", n.Kind())
		}
	}
	return buf, nil
}

// rawNode is the parsed but unlinked form of a descriptor node.
type rawNode struct {
	kind     byte
	lo, hi   string
	rep      byte
	prec     uint16
	exp      uint16
	children []uint32
}

func decodeDescriptor(data []byte) (*mtype.Type, error) {
	off := 0
	readU32 := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("wire: truncated descriptor")
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	readU16 := func() (uint16, error) {
		if off+2 > len(data) {
			return 0, fmt.Errorf("wire: truncated descriptor")
		}
		v := binary.LittleEndian.Uint16(data[off:])
		off += 2
		return v, nil
	}
	readByte := func() (byte, error) {
		if off >= len(data) {
			return 0, fmt.Errorf("wire: truncated descriptor")
		}
		b := data[off]
		off++
		return b, nil
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if uint64(off)+uint64(n) > uint64(len(data)) || n > 4096 {
			return "", fmt.Errorf("wire: truncated descriptor string")
		}
		s := string(data[off : off+int(n)])
		off += int(n)
		return s, nil
	}

	count, err := readU32()
	if err != nil {
		return nil, err
	}
	if count == 0 || count > maxDynNodes {
		return nil, fmt.Errorf("wire: descriptor has %d nodes", count)
	}
	raw := make([]rawNode, count)
	for i := range raw {
		k, err := readByte()
		if err != nil {
			return nil, err
		}
		raw[i].kind = k
		switch k {
		case dynInteger:
			if raw[i].lo, err = readStr(); err != nil {
				return nil, err
			}
			if raw[i].hi, err = readStr(); err != nil {
				return nil, err
			}
		case dynCharacter:
			if raw[i].rep, err = readByte(); err != nil {
				return nil, err
			}
		case dynReal:
			if raw[i].prec, err = readU16(); err != nil {
				return nil, err
			}
			if raw[i].exp, err = readU16(); err != nil {
				return nil, err
			}
		case dynUnit:
		case dynRecord, dynChoice:
			n, err := readU32()
			if err != nil {
				return nil, err
			}
			if n > uint32(count) {
				return nil, fmt.Errorf("wire: descriptor node with %d children", n)
			}
			raw[i].children = make([]uint32, n)
			for j := range raw[i].children {
				if raw[i].children[j], err = readU32(); err != nil {
					return nil, err
				}
			}
		case dynRecursive, dynPort:
			c, err := readU32()
			if err != nil {
				return nil, err
			}
			raw[i].children = []uint32{c}
		default:
			return nil, fmt.Errorf("wire: unknown descriptor kind %d", k)
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("wire: %d trailing descriptor bytes", len(data)-off)
	}

	// Link. Cycles pass through Recursive nodes only, so preallocate
	// those and build everything else recursively.
	built := make([]*mtype.Type, count)
	building := make([]bool, count)
	var build func(i uint32) (*mtype.Type, error)
	build = func(i uint32) (*mtype.Type, error) {
		if i >= count {
			return nil, fmt.Errorf("wire: descriptor reference %d out of range", i)
		}
		if built[i] != nil {
			return built[i], nil
		}
		if building[i] {
			return nil, fmt.Errorf("wire: descriptor cycle without a recursive node")
		}
		r := raw[i]
		if r.kind == dynRecursive {
			rec := mtype.NewRecursive()
			built[i] = rec
			body, err := build(r.children[0])
			if err != nil {
				return nil, err
			}
			rec.SetBody(body)
			return rec, nil
		}
		building[i] = true
		defer func() { building[i] = false }()
		var out *mtype.Type
		switch r.kind {
		case dynInteger:
			lo, ok1 := new(big.Int).SetString(r.lo, 10)
			hi, ok2 := new(big.Int).SetString(r.hi, 10)
			if !ok1 || !ok2 || lo.Cmp(hi) > 0 {
				return nil, fmt.Errorf("wire: bad integer range in descriptor")
			}
			out = mtype.NewInteger(lo, hi)
		case dynCharacter:
			if r.rep < byte(mtype.RepASCII) || r.rep > byte(mtype.RepUnicode) {
				return nil, fmt.Errorf("wire: bad repertoire %d", r.rep)
			}
			out = mtype.NewCharacter(mtype.Repertoire(r.rep))
		case dynReal:
			if r.prec == 0 || r.exp == 0 {
				return nil, fmt.Errorf("wire: bad real parameters")
			}
			out = mtype.NewReal(int(r.prec), int(r.exp))
		case dynUnit:
			out = mtype.Unit()
		case dynRecord:
			fields := make([]mtype.Field, len(r.children))
			for j, c := range r.children {
				child, err := build(c)
				if err != nil {
					return nil, err
				}
				fields[j] = mtype.Field{Type: child}
			}
			out = mtype.NewRecord(fields...)
		case dynChoice:
			alts := make([]mtype.Alt, len(r.children))
			for j, c := range r.children {
				child, err := build(c)
				if err != nil {
					return nil, err
				}
				alts[j] = mtype.Alt{Type: child}
			}
			out = mtype.NewChoice(alts...)
		case dynPort:
			child, err := build(r.children[0])
			if err != nil {
				return nil, err
			}
			out = mtype.NewPort(child)
		}
		built[i] = out
		return out, nil
	}
	root, err := build(0)
	if err != nil {
		return nil, err
	}
	if err := mtype.Validate(root); err != nil {
		return nil, fmt.Errorf("wire: decoded dynamic type invalid: %w", err)
	}
	return root, nil
}
