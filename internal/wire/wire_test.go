package wire

import (
	"testing"
	"testing/quick"

	"repro/internal/mtype"
	"repro/internal/value"
)

func roundTrip(t *testing.T, ty *mtype.Type, v value.Value) {
	t.Helper()
	data, err := Marshal(ty, v)
	if err != nil {
		t.Fatalf("marshal %s : %s: %v", v, ty, err)
	}
	got, err := Unmarshal(ty, data)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", ty, err)
	}
	if !value.Equal(got, v) {
		t.Errorf("round trip %s = %s", v, got)
	}
}

func TestPrimitiveRoundTrips(t *testing.T) {
	roundTrip(t, mtype.NewIntegerBits(8, true), value.NewInt(-128))
	roundTrip(t, mtype.NewIntegerBits(16, true), value.NewInt(32767))
	roundTrip(t, mtype.NewIntegerBits(32, false), value.NewInt(3000000000))
	roundTrip(t, mtype.NewIntegerBits(64, true), value.NewInt(-1<<62))
	roundTrip(t, mtype.NewBool(), value.NewInt(1))
	roundTrip(t, mtype.NewCharacter(mtype.RepLatin1), value.Char{R: 'é'})
	roundTrip(t, mtype.NewCharacter(mtype.RepUCS2), value.Char{R: 'λ'})
	roundTrip(t, mtype.NewCharacter(mtype.RepUnicode), value.Char{R: '🦜'})
	roundTrip(t, mtype.NewFloat32(), value.Real{V: 2.5})
	roundTrip(t, mtype.NewFloat64(), value.Real{V: -1.0 / 3})
	roundTrip(t, mtype.Unit(), value.Unit{})
}

func TestOddRanges(t *testing.T) {
	// An enum 0..6 fits one byte; a bit-field -8..7 fits one byte.
	roundTrip(t, mtype.NewEnum(7), value.NewInt(6))
}

func TestRecordEncoding(t *testing.T) {
	point := mtype.RecordOf(mtype.NewFloat32(), mtype.NewFloat32())
	roundTrip(t, point, value.NewRecord(value.Real{V: 1}, value.Real{V: 2}))

	// Alignment: a byte then a float64 must pad to offset 8.
	padded := mtype.RecordOf(mtype.NewIntegerBits(8, true), mtype.NewFloat64())
	data, err := Marshal(padded, value.NewRecord(value.NewInt(1), value.Real{V: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 16 {
		t.Errorf("aligned record is %d bytes, want 16", len(data))
	}
	roundTrip(t, padded, value.NewRecord(value.NewInt(-1), value.Real{V: 3.25}))
}

func TestChoiceEncoding(t *testing.T) {
	opt := mtype.NewOptional(mtype.NewFloat32())
	roundTrip(t, opt, value.Null())
	roundTrip(t, opt, value.Some(value.Real{V: 9}))
}

func TestListAsSequence(t *testing.T) {
	lst := mtype.NewList(mtype.NewFloat32())
	elems := []value.Value{value.Real{V: 1}, value.Real{V: 2}, value.Real{V: 3}}
	v := value.FromSlice(elems)
	data, err := Marshal(lst, v)
	if err != nil {
		t.Fatal(err)
	}
	// CDR sequence: 4-byte length + 3 × 4-byte floats = 16 bytes, not one
	// discriminant per cons cell.
	if len(data) != 16 {
		t.Errorf("sequence encoding = %d bytes, want 16", len(data))
	}
	roundTrip(t, lst, v)
	roundTrip(t, lst, value.FromSlice(nil))
}

func TestNestedListOfRecords(t *testing.T) {
	point := mtype.RecordOf(mtype.NewFloat32(), mtype.NewFloat32())
	lst := mtype.NewList(point)
	v := value.FromSlice([]value.Value{
		value.NewRecord(value.Real{V: 1}, value.Real{V: 2}),
		value.NewRecord(value.Real{V: 3}, value.Real{V: 4}),
	})
	roundTrip(t, lst, v)
}

func TestPortEncoding(t *testing.T) {
	p := mtype.NewPort(mtype.NewFloat32())
	roundTrip(t, p, value.Port{Ref: "tcp://127.0.0.1:9999/obj/7"})
	roundTrip(t, p, value.Port{Ref: ""})
}

func TestFitterRequestRoundTrip(t *testing.T) {
	// The full §3.4 request record: list of points plus a reply port.
	point := mtype.RecordOf(mtype.NewFloat32(), mtype.NewFloat32())
	req := mtype.NewRecord(
		mtype.Field{Name: "pts", Type: mtype.NewList(point)},
		mtype.Field{Name: "reply", Type: mtype.NewPort(mtype.RecordOf(point, point))},
	)
	v := value.NewRecord(
		value.FromSlice([]value.Value{
			value.NewRecord(value.Real{V: 1}, value.Real{V: 5}),
			value.NewRecord(value.Real{V: 3}, value.Real{V: 2}),
		}),
		value.Port{Ref: "reply:42"},
	)
	roundTrip(t, req, v)
}

func TestRecursiveNonListType(t *testing.T) {
	// A by-value IntList: μ.Record(int, Choice(unit, ↑)). Not the list
	// shape, so it encodes cons-by-cons — still round-trips.
	rec := mtype.NewRecursive()
	rec.SetBody(mtype.NewRecord(
		mtype.Field{Name: "value", Type: mtype.NewIntegerBits(32, true)},
		mtype.Field{Name: "next", Type: mtype.NewOptional(rec)},
	))
	v := value.NewRecord(value.NewInt(1), value.Some(
		value.NewRecord(value.NewInt(2), value.Null()),
	))
	roundTrip(t, rec, v)
}

func TestMarshalErrors(t *testing.T) {
	i8 := mtype.NewIntegerBits(8, true)
	if _, err := Marshal(i8, value.NewInt(200)); err == nil {
		t.Error("out-of-range integer accepted")
	}
	if _, err := Marshal(i8, value.Real{V: 1}); err == nil {
		t.Error("mistyped value accepted")
	}
	rec := mtype.RecordOf(i8)
	if _, err := Marshal(rec, value.NewRecord()); err == nil {
		t.Error("short record accepted")
	}
	opt := mtype.NewOptional(i8)
	if _, err := Marshal(opt, value.Choice{Alt: 9, V: value.Unit{}}); err == nil {
		t.Error("bad alternative accepted")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	i32 := mtype.NewIntegerBits(32, true)
	if _, err := Unmarshal(i32, []byte{1, 2}); err == nil {
		t.Error("truncated input accepted")
	}
	if _, err := Unmarshal(i32, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("trailing bytes accepted")
	}
	opt := mtype.NewOptional(i32)
	if _, err := Unmarshal(opt, []byte{9, 0, 0, 0}); err == nil {
		t.Error("bad discriminant accepted")
	}
	lst := mtype.NewList(i32)
	if _, err := Unmarshal(lst, []byte{255, 255, 255, 255}); err == nil {
		t.Error("absurd list length accepted")
	}
	// Decoded integer outside the Mtype range must be rejected.
	enum := mtype.NewEnum(3)
	if _, err := Unmarshal(enum, []byte{7}); err == nil {
		t.Error("out-of-range enum value accepted")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	point := mtype.RecordOf(mtype.NewFloat64(), mtype.NewFloat64())
	lst := mtype.NewList(point)
	f := func(xs []float64) bool {
		var elems []value.Value
		for i := 0; i+1 < len(xs); i += 2 {
			elems = append(elems, value.NewRecord(value.Real{V: xs[i]}, value.Real{V: xs[i+1]}))
		}
		v := value.FromSlice(elems)
		data, err := Marshal(lst, v)
		if err != nil {
			return false
		}
		got, err := Unmarshal(lst, data)
		if err != nil {
			return false
		}
		return value.Equal(got, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntegersRoundTrip(t *testing.T) {
	i64 := mtype.NewIntegerBits(64, true)
	u64 := mtype.NewIntegerBits(64, false)
	f := func(n int64) bool {
		data, err := Marshal(i64, value.NewInt(n))
		if err != nil {
			return false
		}
		got, err := Unmarshal(i64, data)
		if err != nil || !value.Equal(got, value.NewInt(n)) {
			return false
		}
		if n >= 0 {
			data, err = Marshal(u64, value.NewInt(n))
			if err != nil {
				return false
			}
			got, err = Unmarshal(u64, data)
			if err != nil || !value.Equal(got, value.NewInt(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNestingTransparentOnWire documents a structural property of the CDR
// encoding: records add no bytes of their own (no tags or length
// prefixes), so two equivalent Mtypes that differ only in record nesting
// (the associativity isomorphism) produce identical encodings, and a
// value can be decoded with the other side's shape directly.
func TestNestingTransparentOnWire(t *testing.T) {
	point := mtype.RecordOf(mtype.NewFloat32(), mtype.NewFloat32())
	nested := mtype.RecordOf(point, point)
	flat := mtype.RecordOf(mtype.NewFloat32(), mtype.NewFloat32(), mtype.NewFloat32(), mtype.NewFloat32())

	v := value.NewRecord(
		value.NewRecord(value.Real{V: 1}, value.Real{V: 2}),
		value.NewRecord(value.Real{V: 3}, value.Real{V: 4}),
	)
	dataNested, err := Marshal(nested, v)
	if err != nil {
		t.Fatal(err)
	}
	flatV := value.NewRecord(value.Real{V: 1}, value.Real{V: 2}, value.Real{V: 3}, value.Real{V: 4})
	dataFlat, err := Marshal(flat, flatV)
	if err != nil {
		t.Fatal(err)
	}
	if string(dataNested) != string(dataFlat) {
		t.Errorf("nesting changed the wire bytes: %x vs %x", dataNested, dataFlat)
	}
	// Cross-decode: bytes written under the nested shape decode under the
	// flat shape.
	got, err := Unmarshal(flat, dataNested)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, flatV) {
		t.Errorf("cross-decoded = %s", got)
	}
}

// TestMarshalAppendOddOffsets pins the alignment-restart contract:
// MarshalAppend aligns relative to len(dst) at entry, so the appended
// bytes are identical to a standalone Marshal even when the destination
// ends at an odd, non-8-aligned offset. The broker's batch protocol and
// the gateway's transcoder both rely on this to pack independently
// framed CDR values into one buffer.
func TestMarshalAppendOddOffsets(t *testing.T) {
	str := func(s string) value.Value {
		elems := make([]value.Value, len(s))
		for i, r := range s {
			elems[i] = value.Char{R: r}
		}
		return value.FromSlice(elems)
	}
	cases := []struct {
		name string
		ty   *mtype.Type
		v    value.Value
	}{
		{
			// Internal padding: the u64 must land 8-aligned relative to
			// the value's own first byte, not the buffer's.
			name: "i8-then-i64",
			ty:   mtype.RecordOf(mtype.NewIntegerBits(8, true), mtype.NewIntegerBits(64, true)),
			v:    value.NewRecord(value.NewInt(-5), value.NewInt(1<<40)),
		},
		{
			name: "f64",
			ty:   mtype.NewFloat64(),
			v:    value.Real{V: -1.0 / 3},
		},
		{
			name: "string-then-i32",
			ty: mtype.RecordOf(mtype.NewList(mtype.NewCharacter(mtype.RepLatin1)),
				mtype.NewIntegerBits(32, true)),
			v: value.NewRecord(str("odd"), value.NewInt(99)),
		},
		{
			name: "list-of-i16",
			ty:   mtype.NewList(mtype.NewIntegerBits(16, true)),
			v:    value.FromSlice([]value.Value{value.NewInt(1), value.NewInt(2), value.NewInt(3)}),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Marshal(tc.ty, tc.v)
			if err != nil {
				t.Fatal(err)
			}
			enc := NewEncoder(tc.ty)
			for _, off := range []int{1, 2, 3, 5, 7, 9, 11, 13, 63} {
				prefix := make([]byte, off)
				for i := range prefix {
					prefix[i] = 0xAA
				}
				out, err := enc.MarshalAppend(prefix, tc.v)
				if err != nil {
					t.Fatalf("offset %d: %v", off, err)
				}
				if len(out) != off+len(want) {
					t.Fatalf("offset %d: appended %d bytes, standalone is %d",
						off, len(out)-off, len(want))
				}
				for i := 0; i < off; i++ {
					if out[i] != 0xAA {
						t.Fatalf("offset %d: prefix byte %d overwritten", off, i)
					}
				}
				if got := out[off:]; !slicesEqual(got, want) {
					t.Fatalf("offset %d: appended bytes % x, standalone % x", off, got, want)
				}
				// The suffix must decode on its own, as a standalone frame.
				back, err := Unmarshal(tc.ty, out[off:])
				if err != nil {
					t.Fatalf("offset %d: decode appended bytes: %v", off, err)
				}
				if !value.Equal(back, tc.v) {
					t.Fatalf("offset %d: round trip = %s, want %s", off, back, tc.v)
				}
			}
		})
	}
}

func slicesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
