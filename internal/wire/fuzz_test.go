package wire

import (
	"testing"

	"repro/internal/mtype"
	"repro/internal/value"
)

// fuzzWireType is a fixed, structurally rich target for the typed
// decoder: record, list, choice, and primitive ranges all reachable
// from hostile bytes.
func fuzzWireType() *mtype.Type {
	return mtype.NewRecord(
		mtype.Field{Name: "n", Type: mtype.NewIntegerBits(32, true)},
		mtype.Field{Name: "r", Type: mtype.NewFloat64()},
		mtype.Field{Name: "xs", Type: mtype.NewList(mtype.NewIntegerBits(16, false))},
		mtype.Field{Name: "opt", Type: mtype.NewOptional(mtype.NewCharacter(mtype.RepUnicode))},
	)
}

// FuzzWireDecode throws arbitrary bytes at both CDR decoders. Neither
// may panic, hang, or overflow the stack; when the self-describing
// decoder does accept the input, re-encoding the result must round-trip
// to an equal value.
func FuzzWireDecode(f *testing.F) {
	ty := fuzzWireType()
	good := value.NewRecord(
		value.NewInt(-7),
		value.Real{V: 0.5},
		value.FromSlice([]value.Value{value.NewInt(1), value.NewInt(65535)}),
		value.Some(value.Char{R: '🦜'}),
	)
	if data, err := Marshal(ty, good); err == nil {
		f.Add(data)
	}
	if data, err := MarshalDynamic(ty, good); err == nil {
		f.Add(data)
	}
	if data, err := MarshalDynamic(chainType(), chainValue(32)); err == nil {
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Unmarshal(ty, data)

		dty, v, err := UnmarshalDynamic(data)
		if err != nil {
			return
		}
		re, err := MarshalDynamic(dty, v)
		if err != nil {
			t.Fatalf("accepted value does not re-encode: %v", err)
		}
		_, v2, err := UnmarshalDynamic(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if !value.Equal(v, v2) {
			t.Fatalf("round-trip drift: %v != %v", v, v2)
		}
	})
}
