package wire

import (
	"errors"
	"testing"

	"repro/internal/limits"
	"repro/internal/mtype"
	"repro/internal/value"
)

// chainType is a by-value IntList — μ.Record(int, Choice(unit, ↑)) —
// which is NOT the recognized list shape, so decoding recurses node by
// node and exercises the depth budget.
func chainType() *mtype.Type {
	rec := mtype.NewRecursive()
	rec.SetBody(mtype.NewRecord(
		mtype.Field{Name: "value", Type: mtype.NewIntegerBits(32, true)},
		mtype.Field{Name: "next", Type: mtype.NewOptional(rec)},
	))
	return rec
}

// chainValue builds an n-node chain; each node costs several levels of
// decode recursion (record, choice, payload).
func chainValue(n int) value.Value {
	v := value.NewRecord(value.NewInt(0), value.Null())
	for i := 1; i < n; i++ {
		v = value.NewRecord(value.NewInt(int64(i)), value.Some(v))
	}
	return v
}

// TestDecodeDepthBudget feeds a hostile (deeply nested but well-formed)
// payload through Unmarshal: it must come back as a typed budget error,
// not a stack overflow, while ordinary deep-but-sane values still
// round-trip.
func TestDecodeDepthBudget(t *testing.T) {
	ty := chainType()

	// A modest chain is routine traffic.
	roundTrip(t, ty, chainValue(64))

	// A chain deeper than the decode budget is hostile input.
	deep, err := Marshal(ty, chainValue(MaxDecodeDepth))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	_, err = Unmarshal(ty, deep)
	if !errors.Is(err, limits.ErrBudget) {
		t.Fatalf("deep unmarshal err = %v, want limits.ErrBudget", err)
	}
}

// TestDecodeDepthBudgetDynamic runs the same hostile payload through the
// self-describing codec, whose value phase shares the decoder.
func TestDecodeDepthBudgetDynamic(t *testing.T) {
	ty := chainType()
	deep, err := MarshalDynamic(ty, chainValue(MaxDecodeDepth))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	_, _, err = UnmarshalDynamic(deep)
	if !errors.Is(err, limits.ErrBudget) {
		t.Fatalf("deep dynamic unmarshal err = %v, want limits.ErrBudget", err)
	}
}

// TestListLengthTyped asserts the long-standing list-length cap now
// reports through the shared budget sentinel.
func TestListLengthTyped(t *testing.T) {
	lst := mtype.NewList(mtype.NewIntegerBits(32, true))
	_, err := Unmarshal(lst, []byte{255, 255, 255, 255})
	if !errors.Is(err, limits.ErrBudget) {
		t.Fatalf("err = %v, want limits.ErrBudget", err)
	}
}
