package wire

import (
	"testing"

	"repro/internal/compare"
	"repro/internal/mtype"
	"repro/internal/value"
)

func dynRoundTrip(t *testing.T, ty *mtype.Type, v value.Value) (*mtype.Type, value.Value) {
	t.Helper()
	data, err := MarshalDynamic(ty, v)
	if err != nil {
		t.Fatalf("MarshalDynamic(%s): %v", ty, err)
	}
	gotTy, gotV, err := UnmarshalDynamic(data)
	if err != nil {
		t.Fatalf("UnmarshalDynamic: %v", err)
	}
	return gotTy, gotV
}

func TestDynamicPrimitive(t *testing.T) {
	ty, v := dynRoundTrip(t, mtype.NewIntegerBits(16, true), value.NewInt(-1234))
	c := compare.NewComparer(compare.DefaultRules())
	if _, ok := c.Equivalent(ty, mtype.NewIntegerBits(16, true)); !ok {
		t.Errorf("decoded type = %s", ty)
	}
	if !value.Equal(v, value.NewInt(-1234)) {
		t.Errorf("decoded value = %s", v)
	}
}

func TestDynamicRecord(t *testing.T) {
	point := mtype.RecordOf(mtype.NewFloat32(), mtype.NewFloat32())
	in := value.NewRecord(value.Real{V: 1}, value.Real{V: 2})
	ty, v := dynRoundTrip(t, point, in)
	if !value.Equal(v, in) {
		t.Errorf("value = %s", v)
	}
	if err := value.Check(v, ty); err != nil {
		t.Error(err)
	}
}

func TestDynamicRecursiveList(t *testing.T) {
	// The descriptor must survive a cyclic Mtype.
	lst := mtype.NewList(mtype.RecordOf(mtype.NewFloat32(), mtype.NewFloat32()))
	in := value.FromSlice([]value.Value{
		value.NewRecord(value.Real{V: 1}, value.Real{V: 2}),
		value.NewRecord(value.Real{V: 3}, value.Real{V: 4}),
	})
	ty, v := dynRoundTrip(t, lst, in)
	c := compare.NewComparer(compare.DefaultRules())
	if _, ok := c.Equivalent(ty, lst); !ok {
		t.Errorf("decoded list type differs: %s", ty)
	}
	if !value.Equal(v, in) {
		t.Errorf("value = %s", v)
	}
}

func TestDynamicChoiceAndPort(t *testing.T) {
	ty := mtype.NewRecord(
		mtype.Field{Name: "opt", Type: mtype.NewOptional(mtype.NewCharacter(mtype.RepUCS2))},
		mtype.Field{Name: "p", Type: mtype.NewPort(mtype.Unit())},
	)
	in := value.NewRecord(value.Some(value.Char{R: 'λ'}), value.Port{Ref: "obj:1"})
	_, v := dynRoundTrip(t, ty, in)
	if !value.Equal(v, in) {
		t.Errorf("value = %s", v)
	}
}

// TestDynamicReceiverConverts models the Any workflow: the receiver has
// its own declaration and converts the arriving dynamic value into it.
func TestDynamicReceiverConverts(t *testing.T) {
	// Sender ships a (float, int16) record.
	sent := mtype.RecordOf(mtype.NewFloat32(), mtype.NewIntegerBits(16, true))
	data, err := MarshalDynamic(sent, value.NewRecord(value.Real{V: 2.5}, value.NewInt(7)))
	if err != nil {
		t.Fatal(err)
	}
	// Receiver expects (int16, float) — commuted.
	local := mtype.RecordOf(mtype.NewIntegerBits(16, true), mtype.NewFloat32())
	gotTy, gotV, err := UnmarshalDynamic(data)
	if err != nil {
		t.Fatal(err)
	}
	c := compare.NewComparer(compare.DefaultRules())
	m, ok := c.Equivalent(gotTy, local)
	if !ok {
		t.Fatalf("dynamic type does not match local declaration:\n%s", c.Explain(gotTy, local, compare.ModeEqual))
	}
	_ = m
	_ = gotV
}

func TestDynamicErrors(t *testing.T) {
	if _, _, err := UnmarshalDynamic(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := UnmarshalDynamic([]byte{9, 0, 0, 0, 1}); err == nil {
		t.Error("truncated descriptor accepted")
	}
	// Valid marshal, then corrupt the descriptor kind byte.
	data, err := MarshalDynamic(mtype.Unit(), value.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[8] = 0xFF // first node kind
	if _, _, err := UnmarshalDynamic(bad); err == nil {
		t.Error("corrupt kind accepted")
	}
	// Truncated body.
	data2, _ := MarshalDynamic(mtype.NewIntegerBits(32, true), value.NewInt(5))
	if _, _, err := UnmarshalDynamic(data2[:len(data2)-2]); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestDynamicRejectsInvalidType(t *testing.T) {
	rec := mtype.NewRecursive() // unbound
	if _, err := MarshalDynamic(rec, value.Unit{}); err == nil {
		t.Error("unbound recursive type accepted")
	}
}
