// Package wire marshals values to bytes guided by their Mtype, in the
// style of CORBA CDR (the encoding under IIOP, which the paper's
// network-enabled stubs speak): little-endian primitives aligned to their
// size, length-prefixed sequences, and discriminated unions with a 4-byte
// discriminant. The Mtype drives both directions, so any two declarations
// that lower to equivalent Mtypes interoperate across the wire without an
// IDL file.
//
// The low-level primitives (AppendUint, ReadUint, AlignUp, the width
// functions) are exported so layout-aware consumers — notably
// internal/transcode, which rewrites CDR bytes without building value
// trees — stay bit-compatible with this package by construction.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/big"

	"repro/internal/limits"
	"repro/internal/mtype"
	"repro/internal/value"
)

// MaxDecodeDepth bounds the nesting depth of decoded values (and of the
// type structure driving the decode). Without it a hostile body for a
// recursive type — or a hostile dynamic type descriptor — drives decode
// into unbounded recursion and blows the stack. Violations wrap
// limits.ErrBudget.
const MaxDecodeDepth = limits.DefaultMaxValueDepth

// maxUnfold bounds the Recursive-node unwrapping loop: a cycle of
// Recursive nodes with no structural node in between would otherwise spin
// forever. No legitimate type nests binders this deep.
const maxUnfold = 1 << 10

// Encoder marshals values of one Mtype. Create with NewEncoder; the
// encoder precomputes nothing and is safe to reuse sequentially. Reset
// repoints an existing encoder so pooled encoders carry no per-call
// allocation.
type Encoder struct {
	ty *mtype.Type
}

// NewEncoder returns an encoder for values of ty.
func NewEncoder(ty *mtype.Type) *Encoder { return &Encoder{ty: ty} }

// Reset repoints the encoder at ty, allowing reuse without allocation.
func (e *Encoder) Reset(ty *mtype.Type) { e.ty = ty }

// Marshal encodes v.
func (e *Encoder) Marshal(v value.Value) ([]byte, error) {
	var buf []byte
	if est, _ := EstimateSize(e.ty); est > 0 {
		buf = make([]byte, 0, est)
	}
	return e.MarshalAppend(buf, v)
}

// MarshalAppend encodes v and appends the bytes to dst, returning the
// extended slice. Alignment is relative to len(dst) at entry, so the
// appended bytes are identical to a standalone Marshal — callers can pack
// multiple independently-framed values into one buffer.
func (e *Encoder) MarshalAppend(dst []byte, v value.Value) ([]byte, error) {
	out, err := encode(dst, len(dst), e.ty, v)
	if err != nil {
		return dst, err
	}
	return out, nil
}

// Decoder unmarshals values of one Mtype. Reset repoints an existing
// decoder so pooled decoders carry no per-call allocation.
type Decoder struct {
	ty *mtype.Type
}

// NewDecoder returns a decoder for values of ty.
func NewDecoder(ty *mtype.Type) *Decoder { return &Decoder{ty: ty} }

// Reset repoints the decoder at ty, allowing reuse without allocation.
func (d *Decoder) Reset(ty *mtype.Type) { d.ty = ty }

// Unmarshal decodes one value and requires the input to be fully
// consumed.
func (d *Decoder) Unmarshal(data []byte) (value.Value, error) {
	v, rest, err := decode(data, 0, d.ty, 0)
	if err != nil {
		return nil, err
	}
	if rest != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(data)-rest)
	}
	return v, nil
}

// Marshal is a convenience one-shot encoder.
func Marshal(ty *mtype.Type, v value.Value) ([]byte, error) {
	return NewEncoder(ty).Marshal(v)
}

// Unmarshal is a convenience one-shot decoder.
func Unmarshal(ty *mtype.Type, data []byte) (value.Value, error) {
	return NewDecoder(ty).Unmarshal(data)
}

// UnmarshalPrefix decodes one value of ty from the front of data and
// returns the number of bytes consumed, allowing callers to frame a CDR
// value followed by further payload (the broker protocol's convert op
// does exactly this). Alignment is relative to the start of data.
func UnmarshalPrefix(ty *mtype.Type, data []byte) (value.Value, int, error) {
	v, n, err := decode(data, 0, ty, 0)
	if err != nil {
		return nil, 0, err
	}
	return v, n, nil
}

// Unfold strips Recursive binders until a structural node is reached. It
// returns nil if the unwrapping budget is exhausted (a degenerate cycle
// of binders with no structure in between).
func Unfold(t *mtype.Type) *mtype.Type {
	for i := 0; t != nil && t.Kind() == mtype.KindRecursive; i++ {
		if i >= maxUnfold {
			return nil
		}
		t = t.Body()
	}
	return t
}

func unfold(t *mtype.Type) *mtype.Type { return Unfold(t) }

// listShape recognizes the recursive list encoding
// μL.Choice(Unit, Record(τ, L)) and returns its element type, so lists go
// on the wire as CDR sequences (length + elements) rather than one
// discriminant per cons cell.
func listShape(t *mtype.Type) (elem *mtype.Type, ok bool) {
	return mtype.ListElem(t)
}

// IntWidth returns the CDR width (1, 2, 4, or 8 bytes) and signedness
// able to hold the integer type's range.
func IntWidth(t *mtype.Type) (size int, signed bool, err error) {
	lo, hi := t.IntegerRange()
	signed = lo.Sign() < 0
	for _, size := range []int{1, 2, 4, 8} {
		var min, max *big.Int
		one := big.NewInt(1)
		if signed {
			max = new(big.Int).Lsh(one, uint(8*size-1))
			min = new(big.Int).Neg(max)
			max = new(big.Int).Sub(max, one)
		} else {
			min = big.NewInt(0)
			max = new(big.Int).Lsh(one, uint(8*size))
			max.Sub(max, one)
		}
		if lo.Cmp(min) >= 0 && hi.Cmp(max) <= 0 {
			return size, signed, nil
		}
	}
	return 0, false, fmt.Errorf("wire: integer range [%s..%s] exceeds 64 bits", lo, hi)
}

// CharWidth returns the CDR width (1, 2, or 4 bytes) of the character
// type's repertoire.
func CharWidth(t *mtype.Type) int {
	switch t.Repertoire() {
	case mtype.RepASCII, mtype.RepLatin1:
		return 1
	case mtype.RepUCS2:
		return 2
	default:
		return 4
	}
}

// RealWidth returns the CDR width (4 or 8 bytes) able to hold the real
// type's precision and exponent.
func RealWidth(t *mtype.Type) (int, error) {
	p, e := t.RealParams()
	switch {
	case p <= 24 && e <= 8:
		return 4, nil
	case p <= 53 && e <= 11:
		return 8, nil
	default:
		return 0, fmt.Errorf("wire: real(%d,%d) exceeds binary64", p, e)
	}
}

// align pads buf to a multiple of n bytes past base (CDR primitive
// alignment, relative to the start of the enclosing value).
func align(buf []byte, base, n int) []byte {
	for (len(buf)-base)%n != 0 {
		buf = append(buf, 0)
	}
	return buf
}

// AppendUint aligns buf to size bytes past base, then appends u as a
// little-endian integer of that size. size must be 1, 2, 4, or 8.
func AppendUint(buf []byte, base, size int, u uint64) []byte {
	buf = align(buf, base, size)
	switch size {
	case 1:
		buf = append(buf, byte(u))
	case 2:
		buf = binary.LittleEndian.AppendUint16(buf, uint16(u))
	case 4:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(u))
	case 8:
		buf = binary.LittleEndian.AppendUint64(buf, u)
	}
	return buf
}

func putUint(buf []byte, base, size int, u uint64) []byte {
	return AppendUint(buf, base, size, u)
}

func encode(buf []byte, base int, t *mtype.Type, v value.Value) ([]byte, error) {
	if elem, ok := listShape(t); ok {
		elems, err := value.ToSlice(v)
		if err != nil {
			return nil, err
		}
		buf = putUint(buf, base, 4, uint64(len(elems)))
		for i, e := range elems {
			buf, err = encode(buf, base, elem, e)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
		}
		return buf, nil
	}
	ut := unfold(t)
	if ut == nil {
		return nil, fmt.Errorf("wire: unbound recursive type")
	}
	switch ut.Kind() {
	case mtype.KindInteger:
		iv, ok := v.(value.Int)
		if !ok || iv.V == nil {
			return nil, fmt.Errorf("wire: integer wants Int, got %T", v)
		}
		lo, hi := ut.IntegerRange()
		if iv.V.Cmp(lo) < 0 || iv.V.Cmp(hi) > 0 {
			return nil, fmt.Errorf("wire: %s outside range [%s..%s]", iv.V, lo, hi)
		}
		size, signed, err := IntWidth(ut)
		if err != nil {
			return nil, err
		}
		var u uint64
		if signed {
			u = uint64(iv.V.Int64())
		} else {
			u = iv.V.Uint64()
		}
		return putUint(buf, base, size, u), nil
	case mtype.KindCharacter:
		cv, ok := v.(value.Char)
		if !ok {
			return nil, fmt.Errorf("wire: character wants Char, got %T", v)
		}
		return putUint(buf, base, CharWidth(ut), uint64(cv.R)), nil
	case mtype.KindReal:
		rv, ok := v.(value.Real)
		if !ok {
			return nil, fmt.Errorf("wire: real wants Real, got %T", v)
		}
		size, err := RealWidth(ut)
		if err != nil {
			return nil, err
		}
		if size == 4 {
			return putUint(buf, base, 4, uint64(math.Float32bits(float32(rv.V)))), nil
		}
		return putUint(buf, base, 8, math.Float64bits(rv.V)), nil
	case mtype.KindUnit:
		if _, ok := v.(value.Unit); !ok {
			return nil, fmt.Errorf("wire: unit wants Unit, got %T", v)
		}
		return buf, nil
	case mtype.KindRecord:
		rv, ok := v.(value.Record)
		if !ok {
			return nil, fmt.Errorf("wire: record wants Record, got %T", v)
		}
		fields := ut.Fields()
		if len(rv.Fields) != len(fields) {
			return nil, fmt.Errorf("wire: record has %d fields, type wants %d", len(rv.Fields), len(fields))
		}
		var err error
		for i, f := range fields {
			buf, err = encode(buf, base, f.Type, rv.Fields[i])
			if err != nil {
				return nil, fmt.Errorf("field %d (%s): %w", i, f.Name, err)
			}
		}
		return buf, nil
	case mtype.KindChoice:
		cv, ok := v.(value.Choice)
		if !ok {
			return nil, fmt.Errorf("wire: choice wants Choice, got %T", v)
		}
		alts := ut.Alts()
		if cv.Alt < 0 || cv.Alt >= len(alts) {
			return nil, fmt.Errorf("wire: alternative %d out of range", cv.Alt)
		}
		buf = putUint(buf, base, 4, uint64(cv.Alt))
		return encode(buf, base, alts[cv.Alt].Type, cv.V)
	case mtype.KindPort:
		pv, ok := v.(value.Port)
		if !ok {
			return nil, fmt.Errorf("wire: port wants Port, got %T", v)
		}
		buf = putUint(buf, base, 4, uint64(len(pv.Ref)))
		return append(buf, pv.Ref...), nil
	default:
		return nil, fmt.Errorf("wire: cannot encode %s", ut.Kind())
	}
}

// AlignUp rounds off up to a multiple of n.
func AlignUp(off, n int) int {
	return (off + n - 1) / n * n
}

// ErrShort marks errors caused by the input ending before the value did.
// Streaming decoders classify on it: while more input may still arrive, a
// wrapped ErrShort means "feed me more bytes", whereas any other decode
// error is final no matter how much input follows. One-shot decoding
// semantics are unchanged — the sentinel only adds errors.Is identity to
// the truncation errors that already existed.
var ErrShort = errors.New("truncated input")

// ReadUint aligns off to size bytes (relative to the start of data),
// bounds-checks, and reads a little-endian integer of that size,
// returning the value and the offset just past it.
func ReadUint(data []byte, off, size int) (uint64, int, error) {
	off = AlignUp(off, size)
	if off+size > len(data) {
		return 0, 0, fmt.Errorf("wire: %w at offset %d", ErrShort, off)
	}
	var u uint64
	switch size {
	case 1:
		u = uint64(data[off])
	case 2:
		u = uint64(binary.LittleEndian.Uint16(data[off:]))
	case 4:
		u = uint64(binary.LittleEndian.Uint32(data[off:]))
	case 8:
		u = binary.LittleEndian.Uint64(data[off:])
	}
	return u, off + size, nil
}

func getUint(data []byte, off, size int) (uint64, int, error) {
	return ReadUint(data, off, size)
}

// MaxListLen bounds decoded list lengths to keep malformed or hostile
// inputs from exhausting memory.
const MaxListLen = 1 << 24

// EstimateSize returns a lower bound on the encoded size of a value of t
// (assuming the value starts at alignment 0), and whether that bound is
// exact — it is exact precisely when the type is fixed-size (no lists,
// choices, or ports anywhere). Callers use it to pre-size encode buffers
// and pooled scratch.
func EstimateSize(t *mtype.Type) (int, bool) {
	end, exact := estimateAt(t, 0, make(map[*mtype.Type]bool))
	return end, exact
}

func estimateAt(t *mtype.Type, off int, seen map[*mtype.Type]bool) (int, bool) {
	if seen[t] {
		return off, false
	}
	seen[t] = true
	defer delete(seen, t)
	if _, ok := listShape(t); ok {
		return AlignUp(off, 4) + 4, false
	}
	ut := unfold(t)
	if ut == nil {
		return off, false
	}
	switch ut.Kind() {
	case mtype.KindInteger:
		size, _, err := IntWidth(ut)
		if err != nil {
			return off, false
		}
		return AlignUp(off, size) + size, true
	case mtype.KindCharacter:
		size := CharWidth(ut)
		return AlignUp(off, size) + size, true
	case mtype.KindReal:
		size, err := RealWidth(ut)
		if err != nil {
			return off, false
		}
		return AlignUp(off, size) + size, true
	case mtype.KindUnit:
		return off, true
	case mtype.KindRecord:
		exact := true
		for _, f := range ut.Fields() {
			var fe bool
			off, fe = estimateAt(f.Type, off, seen)
			exact = exact && fe
			if !fe {
				// Past the first variable-size field the running
				// offset is a lower bound only; stop accumulating.
				return off, false
			}
		}
		return off, exact
	case mtype.KindChoice:
		off = AlignUp(off, 4) + 4
		min, first := 0, true
		for _, a := range ut.Alts() {
			end, _ := estimateAt(a.Type, off, seen)
			if first || end < min {
				min, first = end, false
			}
		}
		if first {
			return off, false
		}
		return min, false
	case mtype.KindPort:
		return AlignUp(off, 4) + 4, false
	default:
		return off, false
	}
}

const maxWireList = MaxListLen

func decode(data []byte, off int, t *mtype.Type, depth int) (value.Value, int, error) {
	if depth > MaxDecodeDepth {
		return nil, 0, limits.Exceededf("wire: value nesting exceeds depth budget of %d", MaxDecodeDepth)
	}
	if elem, ok := listShape(t); ok {
		n, off, err := getUint(data, off, 4)
		if err != nil {
			return nil, 0, err
		}
		if n > maxWireList {
			return nil, 0, limits.Exceededf("wire: list length %d exceeds limit of %d", n, maxWireList)
		}
		elems := make([]value.Value, n)
		for i := range elems {
			var ev value.Value
			ev, off, err = decode(data, off, elem, depth+1)
			if err != nil {
				return nil, 0, fmt.Errorf("element %d: %w", i, err)
			}
			elems[i] = ev
		}
		return value.FromSlice(elems), off, nil
	}
	ut := unfold(t)
	if ut == nil {
		return nil, 0, fmt.Errorf("wire: unbound recursive type")
	}
	switch ut.Kind() {
	case mtype.KindInteger:
		size, signed, err := IntWidth(ut)
		if err != nil {
			return nil, 0, err
		}
		u, off, err := getUint(data, off, size)
		if err != nil {
			return nil, 0, err
		}
		var iv value.Int
		if signed {
			shift := uint(64 - 8*size)
			iv = value.NewInt(int64(u<<shift) >> shift)
		} else {
			iv = value.Int{V: new(big.Int).SetUint64(u)}
		}
		lo, hi := ut.IntegerRange()
		if iv.V.Cmp(lo) < 0 || iv.V.Cmp(hi) > 0 {
			return nil, 0, fmt.Errorf("wire: decoded %s outside range [%s..%s]", iv.V, lo, hi)
		}
		return iv, off, nil
	case mtype.KindCharacter:
		u, off, err := getUint(data, off, CharWidth(ut))
		if err != nil {
			return nil, 0, err
		}
		return value.Char{R: rune(u)}, off, nil
	case mtype.KindReal:
		size, err := RealWidth(ut)
		if err != nil {
			return nil, 0, err
		}
		u, off, err := getUint(data, off, size)
		if err != nil {
			return nil, 0, err
		}
		if size == 4 {
			return value.Real{V: float64(math.Float32frombits(uint32(u)))}, off, nil
		}
		return value.Real{V: math.Float64frombits(u)}, off, nil
	case mtype.KindUnit:
		return value.Unit{}, off, nil
	case mtype.KindRecord:
		fields := ut.Fields()
		out := make([]value.Value, len(fields))
		var err error
		for i, f := range fields {
			out[i], off, err = decode(data, off, f.Type, depth+1)
			if err != nil {
				return nil, 0, fmt.Errorf("field %d (%s): %w", i, f.Name, err)
			}
		}
		return value.Record{Fields: out}, off, nil
	case mtype.KindChoice:
		disc, off, err := getUint(data, off, 4)
		if err != nil {
			return nil, 0, err
		}
		alts := ut.Alts()
		if disc >= uint64(len(alts)) {
			return nil, 0, fmt.Errorf("wire: discriminant %d out of range (%d alternatives)", disc, len(alts))
		}
		payload, off, err := decode(data, off, alts[disc].Type, depth+1)
		if err != nil {
			return nil, 0, err
		}
		return value.Choice{Alt: int(disc), V: payload}, off, nil
	case mtype.KindPort:
		n, off, err := getUint(data, off, 4)
		if err != nil {
			return nil, 0, err
		}
		if uint64(off)+n > uint64(len(data)) {
			return nil, 0, fmt.Errorf("wire: truncated port reference")
		}
		ref := string(data[off : off+int(n)])
		return value.Port{Ref: ref}, off + int(n), nil
	default:
		return nil, 0, fmt.Errorf("wire: cannot decode %s", ut.Kind())
	}
}
