// Package limits defines input budgets shared by every layer that
// consumes untrusted bytes: the three declaration parsers, the CDR wire
// codec, and the JSON value codec. A budget violation is always reported
// as an error wrapping ErrBudget so callers (and the broker protocol)
// can classify hostile input without string matching.
//
// The zero Budget means "defaults", not "unlimited": every consumer
// calls WithDefaults so a caller who never thinks about budgets still
// gets a bounded parser. Explicit negative fields disable a dimension.
package limits

import (
	"errors"
	"fmt"
)

// ErrBudget is the sentinel wrapped by every budget-violation error.
var ErrBudget = errors.New("input budget exceeded")

// Defaults. Declaration sources are human-written headers, so the depth
// default is small; wire/JSON values legitimately nest deeper (lists of
// records of lists), so they get their own, larger depth default.
const (
	DefaultMaxBytes  = 8 << 20 // size of one source file or JSON document
	DefaultMaxTokens = 1 << 20 // tokens scanned from one source file
	DefaultMaxDepth  = 200     // nesting depth of declarations
	// DefaultMaxValueDepth bounds nesting of decoded values and of the
	// types driving decode (CDR bodies, dynamic descriptors, JSON). It is
	// deliberately larger than DefaultMaxDepth so any type that survived
	// parsing can always be decoded.
	DefaultMaxValueDepth = 1000
)

// Budget caps what a single untrusted input may cost. Zero fields take
// the package default; negative fields mean unlimited.
type Budget struct {
	MaxBytes  int // total input size in bytes
	MaxTokens int // tokens produced by the scanner
	MaxDepth  int // recursion depth of nested constructs
}

// WithDefaults resolves zero fields to the package defaults and negative
// fields to "unlimited" (represented as a value no input can reach).
func (b Budget) WithDefaults() Budget {
	resolve := func(v, def int) int {
		switch {
		case v == 0:
			return def
		case v < 0:
			return int(^uint(0) >> 1) // MaxInt: effectively unlimited
		default:
			return v
		}
	}
	return Budget{
		MaxBytes:  resolve(b.MaxBytes, DefaultMaxBytes),
		MaxTokens: resolve(b.MaxTokens, DefaultMaxTokens),
		MaxDepth:  resolve(b.MaxDepth, DefaultMaxDepth),
	}
}

// Exceededf builds a budget-violation error: the formatted message,
// wrapping ErrBudget so errors.Is(err, limits.ErrBudget) holds.
func Exceededf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrBudget)...)
}
