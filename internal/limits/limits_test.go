package limits

import (
	"errors"
	"testing"
)

func TestWithDefaults(t *testing.T) {
	b := Budget{}.WithDefaults()
	if b.MaxBytes != DefaultMaxBytes || b.MaxTokens != DefaultMaxTokens || b.MaxDepth != DefaultMaxDepth {
		t.Fatalf("zero budget resolved to %+v", b)
	}
	b = Budget{MaxBytes: 10, MaxTokens: -1, MaxDepth: 3}.WithDefaults()
	if b.MaxBytes != 10 {
		t.Errorf("explicit MaxBytes = %d, want 10", b.MaxBytes)
	}
	if b.MaxTokens <= DefaultMaxTokens {
		t.Errorf("negative MaxTokens = %d, want effectively unlimited", b.MaxTokens)
	}
	if b.MaxDepth != 3 {
		t.Errorf("explicit MaxDepth = %d, want 3", b.MaxDepth)
	}
}

func TestExceededf(t *testing.T) {
	err := Exceededf("file %q too large (%d bytes)", "x.h", 99)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("Exceededf result does not wrap ErrBudget: %v", err)
	}
	want := `file "x.h" too large (99 bytes): input budget exceeded`
	if err.Error() != want {
		t.Errorf("message = %q, want %q", err.Error(), want)
	}
}
