package scan

import (
	"strings"
	"testing"
)

func collect(t *testing.T, src string) []Token {
	t.Helper()
	s := New("test", src)
	var out []Token
	for {
		tok := s.Next()
		if tok.Kind == TokEOF {
			break
		}
		out = append(out, tok)
		if len(out) > 1000 {
			t.Fatal("runaway scanner")
		}
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scan error: %v", err)
	}
	return out
}

func TestIdentifiersAndPunct(t *testing.T) {
	toks := collect(t, "typedef float point[2];")
	texts := make([]string, len(toks))
	for i, tok := range toks {
		texts[i] = tok.Text
	}
	want := []string{"typedef", "float", "point", "[", "2", "]", ";"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestComments(t *testing.T) {
	toks := collect(t, "a // line comment\nb /* block\ncomment */ c")
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Text != "c" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestPreprocessorSkipped(t *testing.T) {
	toks := collect(t, "#include <stdio.h>\nint x;\n#pragma once\n")
	if len(toks) != 3 {
		t.Errorf("tokens = %v", toks)
	}
}

func TestPositions(t *testing.T) {
	s := New("f.c", "ab\n  cd")
	first := s.Next()
	if first.Line != 1 || first.Col != 1 {
		t.Errorf("first at %d:%d", first.Line, first.Col)
	}
	second := s.Next()
	if second.Line != 2 || second.Col != 3 {
		t.Errorf("second at %d:%d", second.Line, second.Col)
	}
}

func TestMultiPunct(t *testing.T) {
	toks := collect(t, "a::b ... <<")
	texts := []string{}
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	want := "a :: b ... <<"
	if strings.Join(texts, " ") != want {
		t.Errorf("tokens = %v", texts)
	}
}

func TestStringAndCharLiterals(t *testing.T) {
	toks := collect(t, `"hello \"x\"" 'c' '\n'`)
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].Kind != TokString || toks[0].Text != `hello \"x\"` {
		t.Errorf("string = %+v", toks[0])
	}
	if toks[1].Kind != TokChar || toks[1].Text != "c" {
		t.Errorf("char = %+v", toks[1])
	}
	if toks[2].Kind != TokChar || toks[2].Text != `\n` {
		t.Errorf("escaped char = %+v", toks[2])
	}
}

func TestUnterminatedString(t *testing.T) {
	s := New("f", `"abc`)
	s.Next()
	if s.Err() == nil {
		t.Error("unterminated string not reported")
	}
}

func TestUnterminatedComment(t *testing.T) {
	s := New("f", "/* oops")
	tok := s.Next()
	if tok.Kind != TokEOF {
		t.Errorf("token = %+v, want EOF", tok)
	}
	if s.Err() == nil {
		t.Error("unterminated comment not reported")
	}
}

func TestNumbers(t *testing.T) {
	toks := collect(t, "0 42 0x1F 3.25 1e9 10L")
	want := []string{"0", "42", "0x1F", "3.25", "1e9", "10L"}
	for i, w := range want {
		if toks[i].Kind != TokNumber || toks[i].Text != w {
			t.Errorf("token %d = %+v, want number %q", i, toks[i], w)
		}
	}
}

func TestPeekAndPeek2(t *testing.T) {
	s := New("f", "a b c")
	if s.Peek().Text != "a" || s.Peek2().Text != "b" {
		t.Error("peek wrong")
	}
	if s.Next().Text != "a" || s.Peek().Text != "b" || s.Peek2().Text != "c" {
		t.Error("peek after next wrong")
	}
}

func TestAcceptAndExpect(t *testing.T) {
	s := New("f", "( foo )")
	if !s.Accept("(") {
		t.Fatal("Accept ( failed")
	}
	if s.Accept(")") {
		t.Fatal("Accept ) should not match foo")
	}
	tok, err := s.ExpectIdent()
	if err != nil || tok.Text != "foo" {
		t.Fatalf("ExpectIdent = %v, %v", tok, err)
	}
	if _, err := s.Expect(")"); err != nil {
		t.Fatalf("Expect ) failed: %v", err)
	}
	if _, err := s.Expect(";"); err == nil {
		t.Error("Expect ; at EOF should fail")
	}
}

func TestAcceptIdent(t *testing.T) {
	s := New("f", "typedef x")
	if !s.AcceptIdent("typedef") {
		t.Error("AcceptIdent typedef failed")
	}
	if s.AcceptIdent("struct") {
		t.Error("AcceptIdent struct matched x")
	}
}

func TestEOFForever(t *testing.T) {
	s := New("f", "")
	for i := 0; i < 3; i++ {
		if tok := s.Next(); tok.Kind != TokEOF {
			t.Fatalf("token %d = %+v, want EOF", i, tok)
		}
	}
}

func TestErrorFormat(t *testing.T) {
	e := &Error{File: "x.idl", Line: 3, Col: 7, Msg: "boom"}
	if e.Error() != "x.idl:3:7: boom" {
		t.Errorf("Error() = %q", e.Error())
	}
	e2 := &Error{Line: 1, Col: 2, Msg: "m"}
	if e2.Error() != "1:2: m" {
		t.Errorf("Error() = %q", e2.Error())
	}
}

func TestRawStringLiteral(t *testing.T) {
	toks := collect(t, "`mbird:\"char\"` x")
	if toks[0].Kind != TokString || toks[0].Text != `mbird:"char"` {
		t.Errorf("raw string = %+v", toks[0])
	}
	// No escape processing: a backslash is itself.
	toks = collect(t, "`a\\nb`")
	if toks[0].Text != `a\nb` {
		t.Errorf("raw string kept escapes: %q", toks[0].Text)
	}
	// Newlines are allowed inside.
	toks = collect(t, "`two\nlines`")
	if toks[0].Text != "two\nlines" {
		t.Errorf("multiline raw string = %q", toks[0].Text)
	}
}

func TestUnterminatedRawString(t *testing.T) {
	s := New("test", "`never closed")
	for s.Next().Kind != TokEOF {
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "raw string") {
		t.Errorf("err = %v", err)
	}
}

// TestAfterNL checks the newline flag that drives Go's semicolon
// insertion: set exactly on the first token of each new line.
func TestAfterNL(t *testing.T) {
	toks := collect(t, "a b\nc d\n\ne")
	want := map[string]bool{"a": false, "b": false, "c": true, "d": false, "e": true}
	for _, tok := range toks {
		if w, ok := want[tok.Text]; ok && tok.AfterNL != w {
			t.Errorf("%s AfterNL = %v, want %v", tok.Text, tok.AfterNL, w)
		}
	}
	// A comment spanning the newline still marks the next token.
	toks = collect(t, "a /* x\n y */ b")
	if !toks[1].AfterNL {
		t.Error("token after multi-line comment not marked AfterNL")
	}
}
